/**
 * @file
 * Quickstart: bake a NeRF model for a procedural scene, render a frame,
 * compare against ground truth, then warp it to the next camera pose
 * with SPARW and report how little had to be re-rendered.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "cicero/sparw.hh"
#include "nerf/models.hh"
#include "scene/trajectory.hh"

using namespace cicero;

int
main()
{
    // 1. A scene and a short 30 FPS camera orbit.
    Scene scene = makeScene("lego");
    OrbitParams orbit;
    orbit.radius = scene.cameraDistance;
    std::vector<Pose> traj = orbitTrajectory(orbit, 8);

    // 2. Bake a DirectVoxGO-style model from the scene.
    std::printf("baking DirectVoxGO model for '%s'...\n",
                scene.name.c_str());
    auto model = buildModel(ModelKind::DirectVoxGO, scene);
    std::printf("model size: %.1f MB, %u fetches/sample\n",
                model->modelBytes() / 1048576.0,
                model->encoding().fetchesPerSample());

    // 3. Render the first frame and compare with ground truth.
    Camera cam = Camera::fromFov(96, 96, scene.fovYDeg, traj[0]);
    RenderResult nerf = model->render(cam);
    RenderResult gt = renderGroundTruth(scene, cam);
    std::printf("frame 0: %llu rays, %llu samples, PSNR vs GT: %.2f dB\n",
                static_cast<unsigned long long>(nerf.work.rays),
                static_cast<unsigned long long>(nerf.work.samples),
                psnr(nerf.image, gt.image));
    nerf.image.writePpm("quickstart_frame0.ppm");

    // 4. SPARW: warp frame 0 to the next pose; only disoccluded pixels
    //    go through the NeRF model.
    Camera tgt = cam;
    tgt.pose = traj[1];
    WarpOutput w = warpFrame(nerf.image, nerf.depth, cam, tgt,
                             &model->occupancy(), scene.background);
    std::printf("warp to frame 1: %.1f%% warped, %.2f%% disoccluded, "
                "%.1f%% void\n",
                100.0 * w.stats.overlapFraction(),
                100.0 * w.stats.rerenderFraction(),
                100.0 * w.stats.voidHoles / w.stats.totalPixels);

    StageWork sparse =
        model->renderPixels(tgt, w.needRender, w.image, w.depth);
    RenderResult gt1 = renderGroundTruth(scene, tgt);
    std::printf("frame 1 (SPARW): sparse samples %llu (full frame had "
                "%llu), PSNR vs GT: %.2f dB\n",
                static_cast<unsigned long long>(sparse.samples),
                static_cast<unsigned long long>(nerf.work.samples),
                psnr(w.image, gt1.image));
    w.image.writePpm("quickstart_frame1_sparw.ppm");

    std::printf("done.\n");
    return 0;
}
