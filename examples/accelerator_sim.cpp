/**
 * @file
 * Accelerator simulation walkthrough: probes a NeRF workload (memory
 * traces -> cache/DRAM/bank behaviour), then prices it on the four
 * systems of the paper — baseline GPU+NPU, +SPARW, +fully-streaming,
 * and full Cicero with the Gathering Unit — in both the local and the
 * remote (wirelessly tethered workstation) scenarios.
 *
 * Usage: accelerator_sim [scene] [model]
 *   model: ngp | dvgo | tensorf (default dvgo)
 */

#include <cstdio>
#include <string>

#include "cicero/probe.hh"
#include "nerf/models.hh"
#include "common/stats.hh"
#include "scene/trajectory.hh"

using namespace cicero;

int
main(int argc, char **argv)
{
    std::string sceneName = argc > 1 ? argv[1] : "lego";
    std::string modelArg = argc > 2 ? argv[2] : "dvgo";
    ModelKind kind = modelArg == "ngp"       ? ModelKind::InstantNgp
                     : modelArg == "tensorf" ? ModelKind::TensoRF
                                             : ModelKind::DirectVoxGO;

    Scene scene = makeScene(sceneName);
    std::printf("probing %s on '%s' (baking full-scale model)...\n",
                modelName(kind), sceneName.c_str());
    ModelBuildOptions opts;
    opts.preset = ModelPreset::Full;
    opts.gridLayout = GridLayout::MVoxelBlocked;
    auto model = buildModel(kind, scene, opts);

    OrbitParams orbit;
    orbit.radius = scene.cameraDistance;
    auto traj = orbitTrajectory(orbit, 18);
    WorkloadInputs in = probeWorkload(*model, traj);

    std::printf("\nmeasured workload (scaled to 800x800):\n");
    std::printf("  samples/frame:        %.1f M\n",
                in.fullFrame.samples / 1e6);
    std::printf("  vertex fetches/frame: %.1f M\n",
                in.fullFrame.vertexFetches / 1e6);
    std::printf("  cache miss rate:      %.1f %%\n",
                100.0 * in.gatherProfile.cacheMissRate);
    std::printf("  non-streaming DRAM:   %.1f %%\n",
                100.0 * in.gatherProfile.randomFraction);
    std::printf("  bank conflict rate:   %.1f %%\n",
                100.0 * in.bankConflictRate);
    std::printf("  FS streamed bytes:    %s\n",
                formatBytes(static_cast<double>(
                                in.fullStreamPlan.streamedBytes))
                    .c_str());
    std::printf("  RIT entries/frame:    %.1f M\n",
                in.fullStreamPlan.ritEntries / 1e6);

    PerformanceModel pm;
    Table table({"variant", "local ms", "local FPS", "local mJ",
                 "remote ms", "remote mJ"});
    for (SystemVariant v :
         {SystemVariant::Baseline, SystemVariant::Sparw,
          SystemVariant::SparwFs, SystemVariant::Cicero}) {
        FramePrice local = pm.priceLocal(v, in);
        FramePrice remote = pm.priceRemote(v, in);
        table.row()
            .cell(variantName(v))
            .cell(local.timeMs, 1)
            .cell(1000.0 / local.timeMs, 1)
            .cell(local.energyNj * 1e-6, 1)
            .cell(remote.timeMs, 1)
            .cell(remote.energyNj * 1e-6, 1);
    }
    std::printf("\n");
    table.print();

    auto g = pm.priceGatherOnly(in);
    std::printf("\nFeature gathering alone: GPU %.1f ms vs GU %.2f ms "
                "(%.0fx), energy %.1f vs %.2f mJ (%.0fx)\n",
                g.gpuMs, g.guMs, g.gpuMs / g.guMs, g.gpuEnergyNj * 1e-6,
                g.guEnergyNj * 1e-6, g.gpuEnergyNj / g.guEnergyNj);
    return 0;
}
