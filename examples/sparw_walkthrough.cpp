/**
 * @file
 * SPARW walkthrough: runs the full sparse-radiance-warping pipeline over
 * a camera trajectory the way a VR runtime would — one reference frame
 * per warping window (extrapolated *off* the trajectory so its
 * rendering can overlap target frames), warped targets, sparse NeRF
 * disocclusion fill — and reports per-frame statistics plus the work
 * saved versus rendering every frame fully.
 *
 * Usage: sparw_walkthrough [scene] [window]
 *   scene  one of the ten built-in scenes (default: lego)
 *   window target frames per reference (default: 6)
 */

#include <cstdio>
#include <cstdlib>

#include "cicero/sparw.hh"
#include "nerf/models.hh"
#include "scene/trajectory.hh"

using namespace cicero;

int
main(int argc, char **argv)
{
    std::string sceneName = argc > 1 ? argv[1] : "lego";
    int window = argc > 2 ? std::atoi(argv[2]) : 6;

    Scene scene = makeScene(sceneName);
    std::printf("scene '%s', warping window %d\n", sceneName.c_str(),
                window);

    auto model = buildModel(ModelKind::DirectVoxGO, scene);

    OrbitParams orbit;
    orbit.radius = scene.cameraDistance;
    std::vector<Pose> traj = orbitTrajectory(orbit, 3 * window);
    Camera cam = Camera::fromFov(96, 96, scene.fovYDeg, traj[0]);

    SparwConfig cfg;
    cfg.window = window;
    SparwPipeline pipe(*model, cam, cfg);
    SparwRun run = pipe.run(traj);

    std::printf("\n%-6s %-5s %-9s %-10s %-8s\n", "frame", "ref",
                "warped%", "rerender%", "void%");
    for (std::size_t i = 0; i < run.frames.size(); ++i) {
        const SparwFrame &f = run.frames[i];
        std::printf("%-6zu %-5d %-9.1f %-10.2f %-8.1f\n", i,
                    f.referenceIndex,
                    100.0 * f.warpStats.overlapFraction(),
                    100.0 * f.warpStats.rerenderFraction(),
                    100.0 * f.warpStats.voidHoles /
                        std::max<std::uint64_t>(1,
                                                f.warpStats.totalPixels));
    }

    StageWork refWork = run.totalReferenceWork();
    StageWork sparseWork = run.totalSparseWork();
    std::uint64_t fullSamples = 0;
    {
        // What rendering every frame fully would have cost.
        Camera c = cam;
        c.pose = traj[0];
        fullSamples =
            model->render(c).work.samples * run.frames.size();
    }
    std::uint64_t sparwSamples = refWork.samples + sparseWork.samples;
    std::printf("\nreferences rendered: %zu (%zu off-trajectory)\n",
                run.references.size(),
                run.references.size() -
                    static_cast<std::size_t>(
                        run.references.front().onTrajectory));
    std::printf("NeRF samples: SPARW %llu vs full rendering ~%llu "
                "(%.1f%% avoided — the paper reports up to 88%%)\n",
                static_cast<unsigned long long>(sparwSamples),
                static_cast<unsigned long long>(fullSamples),
                100.0 * (1.0 - static_cast<double>(sparwSamples) /
                                   fullSamples));

    run.frames.back().image.writePpm("sparw_last_frame.ppm");
    std::printf("wrote sparw_last_frame.ppm\n");
    return 0;
}
