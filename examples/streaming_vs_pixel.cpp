/**
 * @file
 * Memory-centric vs pixel-centric rendering, side by side: renders the
 * same frame through both data flows, verifies the images match, and
 * contrasts their DRAM behaviour — the Sec. IV-A result in miniature.
 *
 * Usage: streaming_vs_pixel [scene]
 */

#include <cstdio>

#include "cicero/hierarchical_streaming.hh"
#include "cicero/streaming_renderer.hh"
#include "common/stats.hh"
#include "memory/cache_model.hh"
#include "memory/dram_model.hh"
#include "nerf/models.hh"
#include "scene/trajectory.hh"

using namespace cicero;

int
main(int argc, char **argv)
{
    std::string sceneName = argc > 1 ? argv[1] : "lego";
    Scene scene = makeScene(sceneName);

    ModelBuildOptions opts;
    opts.gridLayout = GridLayout::MVoxelBlocked;
    auto model = buildModel(ModelKind::DirectVoxGO, scene, opts);

    OrbitParams orbit;
    orbit.radius = scene.cameraDistance;
    Camera cam = Camera::fromFov(96, 96, scene.fovYDeg,
                                 orbitTrajectory(orbit, 1)[0]);

    // Pixel-centric: the baseline order. Trace its gather accesses.
    DramModel pixelDram;
    LruCache pixelCache;
    WarpInterleaver interleaver(32); // GPU warp scheduling
    interleaver.addSink(&pixelDram);
    interleaver.addSink(&pixelCache);
    StageWork pixelWork = model->traceWorkload(cam, &interleaver);
    RenderResult pixel = model->render(cam);

    // Memory-centric: MVoxels streamed once, in address order.
    StreamingRenderer streaming(*model);
    DramModel streamDram;
    RenderResult streamed = streaming.render(cam, &streamDram);

    std::printf("functional equivalence: PSNR(streaming, pixel) = %.1f "
                "dB (identical up to the early-termination cutoff)\n\n",
                psnr(streamed.image, pixel.image));

    std::printf("%-28s %14s %14s\n", "", "pixel-centric",
                "memory-centric");
    std::printf("%-28s %13.1f%% %13.1f%%\n", "non-streaming DRAM",
                100.0 * pixelDram.stats().nonStreamingFraction(),
                100.0 * streamDram.stats().nonStreamingFraction());
    std::printf("%-28s %14s %14s\n", "DRAM traffic",
                formatBytes(static_cast<double>(
                                pixelDram.stats().bytes))
                    .c_str(),
                formatBytes(static_cast<double>(
                                streamDram.stats().bytes))
                    .c_str());
    std::printf("%-28s %13.1f%% %14s\n", "2MB cache miss rate",
                100.0 * pixelCache.stats().missRate(), "n/a (1 visit)");
    std::printf("%-28s %14s %14s\n", "DRAM energy",
                formatDouble(pixelDram.energyNj() * 1e-6, 2).append(" mJ")
                    .c_str(),
                formatDouble(streamDram.energyNj() * 1e-6, 3)
                    .append(" mJ")
                    .c_str());

    auto stats = streaming.lastStats();
    std::printf("\nstreaming stats: %llu MVoxels loaded once "
                "(%s), %llu RIT entries (%llu partial/boundary), "
                "%llu samples\n",
                static_cast<unsigned long long>(stats.mvoxelsLoaded),
                formatBytes(static_cast<double>(stats.streamedBytes))
                    .c_str(),
                static_cast<unsigned long long>(stats.ritEntries),
                static_cast<unsigned long long>(stats.boundaryEntries),
                static_cast<unsigned long long>(stats.samples));
    std::printf("pixel-centric issued %llu vertex fetches for the same "
                "frame.\n",
                static_cast<unsigned long long>(
                    pixelWork.vertexFetches));

    // Hierarchical case: the hash grid streams its dense levels and
    // reverts to random access for the hashed ones (Sec. IV-A).
    std::printf("\n--- hierarchical encoding (Instant-NGP-like) ---\n");
    auto ngp = buildModel(ModelKind::InstantNgp, scene, opts);
    HierarchicalStreamingRenderer hier(*ngp);
    DramModel hierDram;
    RenderResult h = hier.render(cam, &hierDram);
    RenderResult hRef = ngp->render(cam);
    auto hs = hier.lastStats();
    std::printf("PSNR vs pixel-centric: %.1f dB\n",
                psnr(h.image, hRef.image));
    std::printf("levels: %d streamed (dense), %d reverted (hashed)\n",
                hs.denseLevels, hs.hashedLevels);
    std::printf("traffic: %s streamed + %s random -> %.0f%% "
                "non-streaming by bytes (by levels the split is %d/%d,\n"
                "the paper's 'about half' for Instant-NGP)\n",
                formatBytes(static_cast<double>(hs.streamedBytes))
                    .c_str(),
                formatBytes(static_cast<double>(hs.randomBytes))
                    .c_str(),
                100.0 * hs.nonStreamingFraction(), hs.hashedLevels,
                hs.denseLevels + hs.hashedLevels);
    return 0;
}
