/**
 * @file
 * `cicero_dse` — replay-driven design-space exploration:
 *
 *   cicero_dse sweep --corpus DIR [--spec FILE] [-o OUT.json]
 *              [--threads N] [--serial] [--check] [--check-all]
 *       Expand the sweep spec (or the default axes) into a config
 *       grid, price every (trace, config) pair by replaying the
 *       corpus through the accelerator stacks, and write the full
 *       results + Pareto frontier JSON. --check additionally gates
 *       the run on the subsystem's two identity contracts:
 *       replayed accelerator stats bit-identical to a live re-render
 *       of the first corpus entry, and pool-sharded results
 *       byte-identical to a serial run. --check-all re-renders and
 *       verifies *every* corpus entry instead of only the first.
 *
 *   cicero_dse pareto OUT.json
 *       Print the Pareto-optimal configs of a sweep result.
 *
 *   cicero_dse show OUT.json
 *       Print the per-config summary table of a sweep result.
 */

#include <cctype>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <exception>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/errors.hh"
#include "common/parallel.hh"
#include "dse/corpus.hh"
#include "dse/driver.hh"
#include "dse/minijson.hh"
#include "nerf/models.hh"
#include "scene/trajectory.hh"

using namespace cicero;
using namespace cicero::dse;

namespace {

int
usage()
{
    std::fprintf(
        stderr,
        "usage: cicero_dse <command> [options]\n"
        "\n"
        "commands:\n"
        "  sweep --corpus DIR [--spec FILE] [-o OUT.json]\n"
        "        [--threads N] [--serial] [--check] [--check-all]\n"
        "      run the config sweep over a trace corpus; --check gates\n"
        "      on replay-vs-live and parallel-vs-serial identity\n"
        "      (--check-all verifies every corpus entry, not just the\n"
        "      first)\n"
        "  pareto OUT.json\n"
        "      print the Pareto-optimal configs of a sweep result\n"
        "  show OUT.json\n"
        "      print the per-config summary of a sweep result\n"
        "\n"
        "exit codes: 0 ok, 1 check failed, 2 usage, 3 I/O error,\n"
        "            4 parse error, 5 other failure\n");
    return 2;
}

const char *
optValue(int argc, char **argv, const char *name)
{
    for (int i = 2; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], name) == 0)
            return argv[i + 1];
    return nullptr;
}

bool
optFlag(int argc, char **argv, const char *name)
{
    for (int i = 2; i < argc; ++i)
        if (std::strcmp(argv[i], name) == 0)
            return true;
    return false;
}

const char *
positional(int argc, char **argv, int index)
{
    int seen = 0;
    for (int i = 2; i < argc; ++i) {
        if (argv[i][0] == '-' && argv[i][1] == '-') {
            if (std::strcmp(argv[i], "--serial") != 0 &&
                std::strcmp(argv[i], "--check") != 0 &&
                std::strcmp(argv[i], "--check-all") != 0)
                ++i; // skip the option's value
            continue;
        }
        if (seen++ == index)
            return argv[i];
    }
    return nullptr;
}

/** --threads N, validated like CICERO_THREADS; invalid warns + default. */
void
applyThreadsOption(int argc, char **argv)
{
    const char *v = optValue(argc, argv, "--threads");
    if (!v)
        return;
    int n = parallelParseThreadSpec(v);
    if (n == 0) {
        std::fprintf(stderr,
                     "cicero_dse: ignoring invalid --threads=\"%s\" "
                     "(want an integer in [1, %d]); falling back to "
                     "the automatic default\n",
                     v, kMaxParallelThreads);
        setParallelThreadCount(0);
        return;
    }
    setParallelThreadCount(n);
}

std::string
readFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        throw IoError("cannot open", path, errno);
    std::string out;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    if (std::ferror(f)) {
        int err = errno;
        std::fclose(f);
        throw IoError("read error on", path, err);
    }
    std::fclose(f);
    return out;
}

/**
 * Replay-vs-live identity gate for one corpus entry: re-render it
 * from its manifest metadata and compare every accelerator stack's
 * stats JSON, live stream vs persisted trace, byte for byte.
 */
bool
checkReplayMatchesLive(const Corpus &corpus, const CorpusEntry &entry)
{
    ModelKind kind = ModelKind::DirectVoxGO;
    std::string token;
    for (char c : entry.model)
        if (c != '-' && c != '_')
            token += static_cast<char>(std::tolower(c));
    if (token == "ngp" || token == "instantngp")
        kind = ModelKind::InstantNgp;
    else if (token == "dvgo" || token == "directvoxgo")
        kind = ModelKind::DirectVoxGO;
    else if (token == "tensorf")
        kind = ModelKind::TensoRF;
    else if (token == "enerf" || token == "efficientnerf")
        kind = ModelKind::EfficientNeRF;
    else
        throw std::runtime_error("check: unknown model kind \"" +
                                 entry.model + "\" in manifest");

    ModelBuildOptions opts;
    opts.preset = entry.preset == "full" ? ModelPreset::Full
                                         : ModelPreset::Fast;
    opts.gridLayout = entry.layout == "mvoxel" ? GridLayout::MVoxelBlocked
                                               : GridLayout::Linear;

    Scene scene = makeScene(entry.scene);
    auto model = buildModel(kind, scene, opts);
    if (entry.fp16)
        model->encoding().quantizeFeaturesFp16();

    OrbitParams orbit;
    orbit.radius = scene.cameraDistance;
    std::vector<Pose> traj = orbitTrajectory(orbit, entry.frame + 1);
    Camera cam = Camera::fromFov(entry.res, entry.res, scene.fovYDeg,
                                 traj[entry.frame]);

    TraceWorkloadDescriptor live = measureWorkload(*model, cam);
    TraceSourceFn liveSrc = liveSource(*model, cam);

    TraceFileReader reader(corpus.tracePath(entry));
    TraceWorkloadDescriptor replayed = workloadFromTrace(reader);
    TraceSourceFn fileSrc = fileSource(reader);

    struct Pair
    {
        const char *name;
        std::string liveJson;
        std::string replayJson;
    };
    Pair pairs[] = {
        {"gpu", statsJson(runGpuStack(liveSrc, live)),
         statsJson(runGpuStack(fileSrc, replayed))},
        {"npu", statsJson(runNpuStack(liveSrc, live)),
         statsJson(runNpuStack(fileSrc, replayed))},
        {"gu", statsJson(runGuStack(liveSrc, live)),
         statsJson(runGuStack(fileSrc, replayed))},
        {"baselines", statsJson(runBaselineStack(liveSrc, live)),
         statsJson(runBaselineStack(fileSrc, replayed))},
    };
    bool ok = true;
    for (const Pair &p : pairs) {
        if (p.liveJson != p.replayJson) {
            ok = false;
            std::fprintf(stderr,
                         "cicero_dse: check FAILED: entry \"%s\": %s "
                         "stack replay diverges from live\n  live:   "
                         "%s\n  replay: %s\n",
                         entry.id.c_str(), p.name, p.liveJson.c_str(),
                         p.replayJson.c_str());
        }
    }
    return ok;
}

int
cmdSweep(int argc, char **argv)
{
    const char *corpusDir = optValue(argc, argv, "--corpus");
    if (!corpusDir) {
        std::fprintf(stderr, "sweep: missing --corpus DIR\n");
        return usage();
    }
    const char *specFile = optValue(argc, argv, "--spec");
    const char *outFile = optValue(argc, argv, "-o");
    if (!outFile)
        outFile = optValue(argc, argv, "--out");
    bool serial = optFlag(argc, argv, "--serial");
    bool checkAll = optFlag(argc, argv, "--check-all");
    bool check = checkAll || optFlag(argc, argv, "--check");

    SweepAxes axes;
    if (specFile)
        axes = parseSweepSpec(readFile(specFile));

    Corpus corpus = Corpus::load(corpusDir);
    DseDriver driver(axes);
    DseResult result = driver.run(corpus, !serial);

    bool replayMatchesLive = true;
    bool parallelMatchesSerial = true;
    std::size_t checkedEntries = 0;
    if (check) {
        // --check verifies the first entry; --check-all re-renders
        // and verifies every one (a model rebuild per entry — the
        // thorough gate for refreshed or hand-edited corpora).
        const std::size_t nCheck =
            checkAll ? corpus.entries().size() : std::size_t(1);
        for (std::size_t i = 0; i < nCheck; ++i)
            if (!checkReplayMatchesLive(corpus, corpus.entries()[i]))
                replayMatchesLive = false;
        checkedEntries = nCheck;
        DseResult other = driver.run(corpus, serial);
        parallelMatchesSerial = other.json() == result.json();
        if (!parallelMatchesSerial)
            std::fprintf(stderr,
                         "cicero_dse: check FAILED: parallel and "
                         "serial sweeps produced different JSON\n");
    }

    std::string json;
    if (check) {
        json = "{\n  \"replay_matches_live\": ";
        json += replayMatchesLive ? "true" : "false";
        json += ",\n  \"parallel_matches_serial\": ";
        json += parallelMatchesSerial ? "true" : "false";
        json += ",\n  \"checked_entries\": " +
                std::to_string(checkedEntries);
        json += ",\n  \"sweep\": " + result.json() + "}\n";
    } else {
        json = result.json();
    }

    if (outFile) {
        std::FILE *f = std::fopen(outFile, "wb");
        if (!f)
            throw IoError("cannot write", outFile, errno);
        if (std::fwrite(json.data(), 1, json.size(), f) != json.size()) {
            int err = errno;
            std::fclose(f);
            throw IoError("short write on", outFile, err);
        }
        if (std::fclose(f) != 0)
            throw IoError("cannot finalize", outFile, errno);
    } else {
        std::fwrite(json.data(), 1, json.size(), stdout);
    }

    std::size_t frontier = 0;
    for (const DseConfigSummary &s : result.summaries)
        frontier += s.pareto ? 1 : 0;
    std::fprintf(stderr,
                 "cicero_dse: %zu trace(s) x %zu config(s), %zu "
                 "Pareto-optimal, threads=%d%s\n",
                 result.traceCount, result.configCount, frontier,
                 parallelThreadCount(),
                 check ? (replayMatchesLive && parallelMatchesSerial
                              ? ", checks passed"
                              : ", CHECKS FAILED")
                       : "");
    return (replayMatchesLive && parallelMatchesSerial) ? 0 : 1;
}

/** Load a sweep result, unwrapping the --check envelope if present. */
JsonValue
loadSweepJson(const std::string &path)
{
    JsonValue root = parseJson(readFile(path));
    if (const JsonValue *sweep = root.find("sweep"))
        return *sweep;
    return root;
}

int
printSummary(int argc, char **argv, bool paretoOnly)
{
    const char *file = positional(argc, argv, 0);
    if (!file) {
        std::fprintf(stderr, "%s: missing result file\n",
                     paretoOnly ? "pareto" : "show");
        return usage();
    }
    JsonValue root = loadSweepJson(file);
    const JsonValue *summary = root.find("summary");
    if (!summary)
        throw std::runtime_error(
            std::string(file) + ": not a sweep result (no \"summary\")");

    std::printf("%-44s %12s %16s %12s %s\n", "config", "fps",
                "energy_nj", "sram_kb", "pareto");
    for (const JsonValue &s : summary->asArray("summary")) {
        bool pareto =
            s.find("pareto") && s.find("pareto")->asBool("pareto");
        if (paretoOnly && !pareto)
            continue;
        std::printf("%-44s %12.4f %16.1f %12.1f %s\n",
                    s.find("config")
                        ? s.find("config")->asString("config").c_str()
                        : "?",
                    s.find("fps") ? s.find("fps")->asNumber("fps") : 0.0,
                    s.find("energy_nj")
                        ? s.find("energy_nj")->asNumber("energy_nj")
                        : 0.0,
                    s.find("sram_bytes")
                        ? s.find("sram_bytes")->asNumber("sram_bytes") /
                              1024.0
                        : 0.0,
                    pareto ? "*" : "");
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    std::string cmd = argv[1];
    applyThreadsOption(argc, argv);
    try {
        if (cmd == "sweep")
            return cmdSweep(argc, argv);
        if (cmd == "pareto")
            return printSummary(argc, argv, true);
        if (cmd == "show")
            return printSummary(argc, argv, false);
    } catch (const IoError &e) {
        std::fprintf(stderr, "cicero_dse: %s\n", e.what());
        return 3;
    } catch (const ParseError &e) {
        std::fprintf(stderr, "cicero_dse: %s\n", e.what());
        return 4;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "cicero_dse: %s\n", e.what());
        return 5;
    }
    std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
    return usage();
}
