/**
 * @file
 * `cicero_trace` — trace-file workbench for the capture-once /
 * replay-many workflow:
 *
 *   cicero_trace capture --scene lego --model dvgo --res 64 -o t.ctrace
 *       Render (workload-trace) a scene frame and persist the gather
 *       access stream as a compressed .ctrace file.
 *
 *   cicero_trace replay t.ctrace --stack cache
 *       Stream a persisted trace through a memory-model stack (cache,
 *       bank or dram) and print its stats JSON. Replaying a capture
 *       reproduces the live-render statistics bit-identically.
 *
 *   cicero_trace capture-set -o DIR --scenes lego,chair --models dvgo
 *       Capture a corpus: one trace per scene x model x frame, plus a
 *       corpus.json manifest the DSE driver consumes.
 *
 *   cicero_trace stats t.ctrace
 *       Ray/access counts, per-event-type payload breakdown, address
 *       histogram, compression ratio.
 *
 *   cicero_trace diff a.ctrace b.ctrace
 *       Event-level comparison of two traces; exit 1 on mismatch.
 *
 *   cicero_trace recover damaged.ctrace -o salvaged.ctrace
 *       Salvage the longest checksum-valid event prefix of a truncated
 *       or corrupted trace and (optionally) rewrite it as a clean
 *       container.
 *
 * All commands accept --threads N (validated like CICERO_THREADS) and
 * --faults SPEC (arm fault-injection sites; same grammar as
 * CICERO_FAULTS).
 *
 * Exit codes: 0 success, 1 comparison mismatch / check failure,
 * 2 usage error, 3 I/O error, 4 parse error (malformed trace or
 * manifest), 5 other runtime failure (including injected faults).
 */

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include <sys/stat.h>

#include "common/errors.hh"
#include "common/fault.hh"
#include "common/parallel.hh"
#include "dse/accel_replay.hh"
#include "dse/corpus.hh"
#include "memory/replay.hh"
#include "memory/tracefile.hh"
#include "nerf/models.hh"
#include "scene/trajectory.hh"

using namespace cicero;

namespace {

int
usage()
{
    std::fprintf(
        stderr,
        "usage: cicero_trace <command> [options]\n"
        "\n"
        "commands:\n"
        "  capture -o FILE [--scene NAME] [--model ngp|dvgo|tensorf|enerf]\n"
        "          [--res N] [--frame K] [--preset fast|full]\n"
        "          [--layout linear|mvoxel] [--codec range|varint]\n"
        "          [--mode workload|render] [--fp16]\n"
        "      render one frame and persist its gather access stream;\n"
        "      --fp16 quantizes feature storage first, so the trace's\n"
        "      2 B/channel featureBytes accounting matches the run\n"
        "  capture-set -o DIR [--scenes A,B] [--models A,B] [--res N]\n"
        "          [--frames K] [--preset fast|full] [--layout ...]\n"
        "          [--codec ...] [--mode workload|render] [--fp16]\n"
        "      capture one trace per scene x model x frame into DIR and\n"
        "      write a corpus.json manifest (DSE corpus input)\n"
        "  replay FILE [--stack cache|bank|dram|gpu|npu|gu|accels]\n"
        "          [--ways N] [--capacity-mb N] [--banks N] [--rays N]\n"
        "          [--sram-layout feature|channel] [--salvage]\n"
        "      run a persisted trace through a memory-model or\n"
        "      accelerator stack, print stats JSON\n"
        "  stats FILE [--salvage]\n"
        "      counts, event breakdown, address histogram, ratio\n"
        "  diff FILE_A FILE_B\n"
        "      compare two traces event by event; exit 1 if they differ\n"
        "  recover FILE [-o OUT]\n"
        "      salvage the longest checksum-valid event prefix of a\n"
        "      damaged trace; with -o, rewrite it as a clean container\n"
        "\n"
        "global: --threads N    set worker count (like CICERO_THREADS)\n"
        "        --faults SPEC  arm fault injection (CICERO_FAULTS "
        "grammar)\n"
        "\n"
        "exit codes: 0 ok, 1 mismatch, 2 usage, 3 I/O error,\n"
        "            4 parse error, 5 other failure\n");
    return 2;
}

/** Value of option --name in argv, or nullptr. */
const char *
optValue(int argc, char **argv, const char *name)
{
    for (int i = 2; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], name) == 0)
            return argv[i + 1];
    return nullptr;
}

const char *
optValueOr(int argc, char **argv, const char *name, const char *fallback)
{
    const char *v = optValue(argc, argv, name);
    return v ? v : fallback;
}

/** True when valueless flag --name appears in argv. */
bool
optFlag(int argc, char **argv, const char *name)
{
    for (int i = 2; i < argc; ++i)
        if (std::strcmp(argv[i], name) == 0)
            return true;
    return false;
}

/**
 * Strict numeric option: absent -> @p fallback; present -> must parse
 * as a decimal integer in [@p minV, @p maxV] (atoi-style silent
 * garbage = 0 is exactly the failure mode the memory-model configs
 * cannot tolerate: 0 banks is a division by zero, 0 rays a livelock).
 */
bool
optUint(int argc, char **argv, const char *name, std::uint32_t fallback,
        std::uint32_t minV, std::uint32_t maxV, std::uint32_t &out)
{
    const char *v = optValue(argc, argv, name);
    if (!v) {
        out = fallback;
        return true;
    }
    char *end = nullptr;
    errno = 0;
    unsigned long parsed = std::strtoul(v, &end, 10);
    if (end == v || *end != '\0' || errno == ERANGE || parsed < minV ||
        parsed > maxV) {
        std::fprintf(stderr,
                     "%s: want an integer in [%u, %u], got \"%s\"\n",
                     name, minV, maxV, v);
        return false;
    }
    out = static_cast<std::uint32_t>(parsed);
    return true;
}

/** Options that take no value (everything else is --name VALUE). */
bool
optIsValueless(const char *name)
{
    return std::strcmp(name, "--fp16") == 0 ||
           std::strcmp(name, "--salvage") == 0;
}

/** First non-option argument after the command, or nullptr. */
const char *
positional(int argc, char **argv, int index)
{
    int seen = 0;
    for (int i = 2; i < argc; ++i) {
        if (argv[i][0] == '-') {
            if (!optIsValueless(argv[i]))
                ++i; // skip the option's value
            continue;
        }
        if (seen++ == index)
            return argv[i];
    }
    return nullptr;
}

/**
 * Apply --threads N: validated with the CICERO_THREADS parser; an
 * invalid spec warns and falls back to the automatic default instead
 * of silently running with a garbage count.
 */
void
applyThreadsOption(int argc, char **argv)
{
    const char *v = optValue(argc, argv, "--threads");
    if (!v)
        return;
    int n = parallelParseThreadSpec(v);
    if (n == 0) {
        std::fprintf(stderr,
                     "cicero_trace: ignoring invalid --threads=\"%s\" "
                     "(want an integer in [1, %d]); falling back to "
                     "the automatic default\n",
                     v, kMaxParallelThreads);
        setParallelThreadCount(0);
        return;
    }
    setParallelThreadCount(n);
}

/**
 * Apply --faults SPEC. Unlike the CICERO_FAULTS env (operator typo →
 * warn and ignore), an explicit CLI spec that fails to parse is a
 * usage error.
 */
bool
applyFaultsOption(int argc, char **argv)
{
    const char *v = optValue(argc, argv, "--faults");
    if (!v)
        return true;
    try {
        faultArmSpec(v);
    } catch (const FaultSpecError &e) {
        std::fprintf(stderr, "cicero_trace: --faults: %s\n", e.what());
        return false;
    }
    return true;
}

/** Read mode for commands accepting --salvage. */
TraceReadMode
readMode(int argc, char **argv)
{
    return optFlag(argc, argv, "--salvage") ? TraceReadMode::Salvage
                                            : TraceReadMode::Strict;
}

/** Report what a salvage-mode read had to recover (stderr). */
void
reportRecovery(const char *file, const TraceFileReader &reader)
{
    const TraceRecoveryInfo &r = reader.recovery();
    if (!r.salvaged)
        return;
    std::fprintf(stderr,
                 "cicero_trace: %s was damaged; salvaged %llu events "
                 "(%llu checkpoint(s) verified, %llu payload bytes "
                 "dropped)\n",
                 file, static_cast<unsigned long long>(r.keptEvents),
                 static_cast<unsigned long long>(r.checkpointsVerified),
                 static_cast<unsigned long long>(r.droppedPayloadBytes));
}

bool
parseModelKind(const std::string &name, ModelKind &kind)
{
    std::string s;
    for (char c : name)
        if (c != '-' && c != '_')
            s += static_cast<char>(std::tolower(c));
    if (s == "ngp" || s == "instantngp")
        kind = ModelKind::InstantNgp;
    else if (s == "dvgo" || s == "directvoxgo")
        kind = ModelKind::DirectVoxGO;
    else if (s == "tensorf")
        kind = ModelKind::TensoRF;
    else if (s == "enerf" || s == "efficientnerf")
        kind = ModelKind::EfficientNeRF;
    else
        return false;
    return true;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

std::string
metaJson(const TraceFileReader &reader)
{
    const TraceFileMeta &m = reader.meta();
    const TraceFileCounts &c = reader.counts();
    char buf[384];
    std::snprintf(buf, sizeof(buf),
                  "\"width\": %u, \"height\": %u, \"threads\": %u, "
                  "\"feature_bytes\": %u, \"storage\": \"%s\", "
                  "\"storage_consistent\": %s, \"accesses\": %llu, "
                  "\"ray_ends\": %llu, \"flushes\": %llu",
                  m.width, m.height, m.threads, m.featureBytes,
                  traceStorageModeName(m.storageMode),
                  traceMetaStorageConsistent(m) ? "true" : "false",
                  static_cast<unsigned long long>(c.accesses),
                  static_cast<unsigned long long>(c.rayEnds),
                  static_cast<unsigned long long>(c.flushes));
    return "{\"scene\": \"" + jsonEscape(m.scene) + "\", \"encoding\": \"" +
           jsonEscape(m.encoding) + "\", \"model\": \"" +
           jsonEscape(m.model) + "\", " + buf + "}";
}

// ---------------------------------------------------------------------
// capture
// ---------------------------------------------------------------------

/** One capture's parameters, shared by capture and capture-set. */
struct CaptureSpec
{
    ModelKind kind = ModelKind::DirectVoxGO;
    std::string sceneName = "lego";
    std::uint32_t res = 64;
    std::uint32_t frame = 0;
    ModelBuildOptions opts;
    TraceCodec codec = TraceCodec::Range;
    bool fp16 = false;
    bool renderMode = false; //!< full render instead of workload trace
};

/**
 * Capture one trace to @p outPath: builds the model, renders the frame
 * into a TraceFileWriter, and embeds the workload summary (StageWork +
 * streaming footprint + vertex size) that replay-driven accelerator
 * runs read back.
 */
void
captureOne(const CaptureSpec &spec, const NerfModel &model,
           const Scene &scene, const std::string &outPath)
{
    OrbitParams orbit;
    orbit.radius = scene.cameraDistance;
    std::vector<Pose> traj = orbitTrajectory(orbit, spec.frame + 1);
    Camera cam = Camera::fromFov(spec.res, spec.res, scene.fovYDeg,
                                 traj[spec.frame]);

    TraceFileMeta meta;
    meta.scene = scene.name;
    meta.encoding = model.encoding().name();
    meta.model = modelName(spec.kind);
    meta.width = spec.res;
    meta.height = spec.res;
    meta.threads = static_cast<std::uint32_t>(parallelThreadCount());
    meta.featureBytes = static_cast<std::uint32_t>(
        model.encoding().featureDim() * kBytesPerChannel);
    meta.storageMode = model.encoding().featuresFp16()
                           ? TraceStorageMode::Fp16
                           : TraceStorageMode::Fp32;

    TraceFileWriter writer(outPath, meta, spec.codec);
    TraceWorkloadDescriptor desc;
    if (spec.renderMode) {
        RenderResult result = model.render(cam, &writer);
        desc.work = result.work;
    } else {
        desc.work = model.traceWorkload(cam, &writer);
    }
    desc.plan = model.encoding().streamingFootprint(
        model.collectSamplePositions(cam));
    desc.vertexBytes = meta.featureBytes;
    writer.setWorkloadSummary(toSummary(desc));
    writer.close();

    double ratio =
        writer.counts().rawStreamBytes()
            ? static_cast<double>(writer.fileBytes()) /
                  writer.counts().rawStreamBytes()
            : 0.0;
    std::printf("captured %s: %llu accesses, %llu rays, %llu bytes "
                "(%.1f%% of raw %llu-byte stream)\n",
                outPath.c_str(),
                static_cast<unsigned long long>(writer.counts().accesses),
                static_cast<unsigned long long>(writer.counts().rayEnds),
                static_cast<unsigned long long>(writer.fileBytes()),
                100.0 * ratio,
                static_cast<unsigned long long>(
                    writer.counts().rawStreamBytes()));
}

/** Parse shared capture options into @p spec. */
bool
parseCaptureOpts(int argc, char **argv, CaptureSpec &spec)
{
    if (!optUint(argc, argv, "--res", 64, 1, 4096, spec.res) ||
        !optUint(argc, argv, "--frame", 0, 0, 100000, spec.frame))
        return false;
    std::string presetStr = optValueOr(argc, argv, "--preset", "fast");
    std::string layoutStr = optValueOr(argc, argv, "--layout", "linear");
    std::string codecStr = optValueOr(argc, argv, "--codec", "range");
    std::string mode = optValueOr(argc, argv, "--mode", "workload");
    spec.opts.preset =
        presetStr == "full" ? ModelPreset::Full : ModelPreset::Fast;
    spec.opts.gridLayout = layoutStr == "mvoxel"
                               ? GridLayout::MVoxelBlocked
                               : GridLayout::Linear;
    spec.codec =
        codecStr == "varint" ? TraceCodec::Varint : TraceCodec::Range;
    spec.fp16 = optFlag(argc, argv, "--fp16");
    spec.renderMode = mode == "render";
    return true;
}

int
cmdCapture(int argc, char **argv)
{
    const char *out = optValue(argc, argv, "-o");
    if (!out)
        out = optValue(argc, argv, "--out");
    if (!out) {
        std::fprintf(stderr, "capture: missing -o FILE\n");
        return usage();
    }

    CaptureSpec spec;
    if (!parseModelKind(optValueOr(argc, argv, "--model", "dvgo"),
                        spec.kind)) {
        std::fprintf(stderr, "capture: unknown --model\n");
        return usage();
    }
    spec.sceneName = optValueOr(argc, argv, "--scene", "lego");
    if (!parseCaptureOpts(argc, argv, spec))
        return usage();

    Scene scene = makeScene(spec.sceneName);
    auto model = buildModel(spec.kind, scene, spec.opts);
    if (spec.fp16)
        model->encoding().quantizeFeaturesFp16();
    captureOne(spec, *model, scene, out);
    return 0;
}

// ---------------------------------------------------------------------
// capture-set
// ---------------------------------------------------------------------

std::vector<std::string>
splitCsv(const std::string &text)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : text) {
        if (c == ',') {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

int
cmdCaptureSet(int argc, char **argv)
{
    const char *dir = optValue(argc, argv, "-o");
    if (!dir)
        dir = optValue(argc, argv, "--out");
    if (!dir) {
        std::fprintf(stderr, "capture-set: missing -o DIR\n");
        return usage();
    }

    std::vector<std::string> scenes =
        splitCsv(optValueOr(argc, argv, "--scenes", "lego"));
    std::vector<std::string> models =
        splitCsv(optValueOr(argc, argv, "--models", "dvgo"));
    std::uint32_t frames;
    CaptureSpec base;
    if (!optUint(argc, argv, "--frames", 1, 1, 1000, frames) ||
        !parseCaptureOpts(argc, argv, base))
        return usage();
    if (scenes.empty() || models.empty()) {
        std::fprintf(stderr, "capture-set: empty --scenes/--models\n");
        return usage();
    }

    if (::mkdir(dir, 0755) != 0 && errno != EEXIST) {
        std::fprintf(stderr, "capture-set: cannot create %s: %s\n", dir,
                     std::strerror(errno));
        return 3;
    }

    dse::Corpus corpus(dir);
    for (const std::string &sceneName : scenes) {
        for (const std::string &modelName : models) {
            CaptureSpec spec = base;
            spec.sceneName = sceneName;
            if (!parseModelKind(modelName, spec.kind)) {
                std::fprintf(stderr, "capture-set: unknown model '%s'\n",
                             modelName.c_str());
                return usage();
            }
            // One model build serves every frame of the orbit.
            Scene scene = makeScene(sceneName);
            auto model = buildModel(spec.kind, scene, spec.opts);
            if (spec.fp16)
                model->encoding().quantizeFeaturesFp16();
            for (std::uint32_t f = 0; f < frames; ++f) {
                spec.frame = f;
                dse::CorpusEntry entry;
                entry.id = sceneName + "_" + modelName + "_" +
                           std::to_string(spec.res) + "_f" +
                           std::to_string(f);
                entry.file = entry.id + ".ctrace";
                entry.scene = sceneName;
                entry.model = modelName;
                entry.encoding = model->encoding().name();
                entry.res = spec.res;
                entry.frame = f;
                entry.preset = spec.opts.preset == ModelPreset::Full
                                   ? "full"
                                   : "fast";
                entry.layout =
                    spec.opts.gridLayout == GridLayout::MVoxelBlocked
                        ? "mvoxel"
                        : "linear";
                entry.fp16 = spec.fp16;
                captureOne(spec, *model, scene,
                           corpus.tracePath(entry));
                corpus.add(std::move(entry));
            }
        }
    }
    corpus.save();
    std::printf("corpus %s: %llu traces, manifest corpus.json\n", dir,
                static_cast<unsigned long long>(corpus.size()));
    return 0;
}

// ---------------------------------------------------------------------
// replay
// ---------------------------------------------------------------------

int
cmdReplay(int argc, char **argv)
{
    const char *file = positional(argc, argv, 0);
    if (!file) {
        std::fprintf(stderr, "replay: missing trace file\n");
        return usage();
    }
    std::string stack = optValueOr(argc, argv, "--stack", "cache");
    if (stack != "cache" && stack != "bank" && stack != "dram" &&
        stack != "gpu" && stack != "npu" && stack != "gu" &&
        stack != "accels") {
        std::fprintf(stderr, "replay: unknown --stack '%s'\n",
                     stack.c_str());
        return usage();
    }

    TraceFileReader reader(file, readMode(argc, argv));
    reportRecovery(file, reader);
    if (!traceMetaStorageConsistent(reader.meta()))
        std::fprintf(stderr,
                     "cicero_trace: warning: %s was captured with %s "
                     "feature storage but its featureBytes accounting "
                     "assumes fp16-class 2 B/channel — replayed byte "
                     "counts under-count the functional run\n",
                     file,
                     traceStorageModeName(reader.meta().storageMode));

    // Validate everything and run the stack *before* printing, so
    // stdout carries either one complete JSON object or nothing.
    std::string stats;
    if (stack == "cache") {
        CacheStackConfig cfg;
        std::uint32_t capacityMb;
        if (!optUint(argc, argv, "--ways", 32, 1, 4096, cfg.warpWays) ||
            !optUint(argc, argv, "--capacity-mb", 2, 1, 65536,
                     capacityMb))
            return usage();
        cfg.cache.capacityBytes = static_cast<std::uint64_t>(capacityMb)
                                  << 20;
        stats = statsJson(runCacheStack(fileSource(reader), cfg));
    } else if (stack == "bank") {
        SramBankConfig cfg;
        if (!optUint(argc, argv, "--banks", 16, 1, 65536, cfg.numBanks) ||
            !optUint(argc, argv, "--rays", 16, 1, 65536,
                     cfg.concurrentRays))
            return usage();
        cfg.featureBytes = reader.meta().featureBytes
                               ? reader.meta().featureBytes
                               : cfg.featureBytes;
        cfg.layout = std::string(optValueOr(argc, argv, "--sram-layout",
                                            "feature")) == "channel"
                         ? SramLayout::ChannelMajor
                         : SramLayout::FeatureMajor;
        stats = statsJson(runBankStack(fileSource(reader), cfg));
    } else if (stack == "dram") {
        stats = statsJson(runDramStack(fileSource(reader)));
    } else {
        // Accelerator stacks need the capture-time workload summary
        // (version-2 containers); workloadFromTrace throws otherwise.
        TraceWorkloadDescriptor desc = workloadFromTrace(reader);
        if (stack == "gpu") {
            GpuStackConfig cfg;
            std::uint32_t capacityMb;
            if (!optUint(argc, argv, "--ways", 32, 1, 4096,
                         cfg.warpWays) ||
                !optUint(argc, argv, "--capacity-mb", 2, 1, 65536,
                         capacityMb))
                return usage();
            cfg.cache.capacityBytes =
                static_cast<std::uint64_t>(capacityMb) << 20;
            stats = statsJson(runGpuStack(fileSource(reader), desc, cfg));
        } else if (stack == "npu") {
            stats = statsJson(runNpuStack(fileSource(reader), desc));
        } else if (stack == "gu") {
            GuStackConfig cfg;
            if (!optUint(argc, argv, "--banks", 32, 1, 65536,
                         cfg.gu.banks) ||
                !optUint(argc, argv, "--rays", 16, 1, 65536,
                         cfg.concurrentRays))
                return usage();
            stats = statsJson(runGuStack(fileSource(reader), desc, cfg));
        } else { // accels: the NeuRex/NGPC baselines
            BaselineStackConfig cfg;
            if (!optUint(argc, argv, "--banks", 16, 1, 65536,
                         cfg.bank.numBanks) ||
                !optUint(argc, argv, "--rays", 16, 1, 65536,
                         cfg.bank.concurrentRays))
                return usage();
            stats = statsJson(
                runBaselineStack(fileSource(reader), desc, cfg));
        }
    }

    std::printf("{\"meta\": %s,\n \"stats\": %s}\n",
                metaJson(reader).c_str(), stats.c_str());
    return 0;
}

// ---------------------------------------------------------------------
// stats
// ---------------------------------------------------------------------

/** Streaming min/max/bytes scan — never materializes the trace. */
struct RangeScan : public TraceSink
{
    std::uint64_t minAddr = ~0ull;
    std::uint64_t maxAddr = 0;
    std::uint64_t bytes = 0;
    std::uint64_t accesses = 0;

    void
    onAccess(const MemAccess &a) override
    {
        minAddr = std::min(minAddr, a.addr);
        maxAddr = std::max(maxAddr, a.addr);
        bytes += a.bytes;
        ++accesses;
    }
};

/** Streaming fixed-bucket address histogram (second pass). */
struct HistogramScan : public TraceSink
{
    static constexpr int kBuckets = 16;
    std::uint64_t base = 0;
    std::uint64_t bucketWidth = 1;
    std::uint64_t hist[kBuckets] = {};

    void
    onAccess(const MemAccess &a) override
    {
        ++hist[(a.addr - base) / bucketWidth];
    }
};

int
cmdStats(int argc, char **argv)
{
    const char *file = positional(argc, argv, 0);
    if (!file) {
        std::fprintf(stderr, "stats: missing trace file\n");
        return usage();
    }
    TraceFileReader reader(file, readMode(argc, argv));
    reportRecovery(file, reader);

    // Two streaming replays (range, then histogram) keep memory O(1)
    // however long the trace is — the whole point of sink plumbing.
    RangeScan range;
    reader.replay(&range);
    std::uint64_t minAddr = range.minAddr, maxAddr = range.maxAddr,
                  bytes = range.bytes;

    const TraceFileMeta &m = reader.meta();
    std::printf("trace %s\n", file);
    std::printf("  scene=%s encoding=%s model=%s %ux%u threads=%u\n",
                m.scene.c_str(), m.encoding.c_str(), m.model.c_str(),
                m.width, m.height, m.threads);
    // featureBytes distinguishes capture-time feature storage at a
    // glance: fp16-class 2 B/channel captures decompose cleanly.
    if (m.featureBytes % kBytesPerChannel == 0)
        std::printf("  featureBytes=%u (%u channels x %u B, "
                    "fp16-class storage) storage=%s\n",
                    m.featureBytes, m.featureBytes / kBytesPerChannel,
                    kBytesPerChannel,
                    traceStorageModeName(m.storageMode));
    else
        std::printf("  featureBytes=%u (not %u B/channel) storage=%s\n",
                    m.featureBytes, kBytesPerChannel,
                    traceStorageModeName(m.storageMode));
    if (!traceMetaStorageConsistent(m)) {
        if (m.storageMode == TraceStorageMode::Fp32)
            std::printf("  STORAGE MISMATCH: featureBytes assumes "
                        "%u B/channel but the capture-time encoding "
                        "stored fp32 features (featuresFp16() not set) "
                        "— byte accounting under-counts; recapture "
                        "with --fp16 to quantize storage to match\n",
                        kBytesPerChannel);
        else
            std::printf("  STORAGE MISMATCH: storage recorded as %s "
                        "but featureBytes=%u does not decompose into "
                        "%u B channels\n",
                        traceStorageModeName(m.storageMode),
                        m.featureBytes, kBytesPerChannel);
    }
    std::printf("  codec=%s\n",
                reader.codec() == TraceCodec::Range ? "range" : "varint");
    std::printf("  accesses=%llu rayEnds=%llu flushes=%llu "
                "bytesAccessed=%llu\n",
                static_cast<unsigned long long>(reader.counts().accesses),
                static_cast<unsigned long long>(reader.counts().rayEnds),
                static_cast<unsigned long long>(reader.counts().flushes),
                static_cast<unsigned long long>(bytes));
    std::printf("  file=%llu B payload=%llu B raw-stream=%llu B "
                "ratio=%.1f%%\n",
                static_cast<unsigned long long>(reader.fileBytes()),
                static_cast<unsigned long long>(reader.payloadBytes()),
                static_cast<unsigned long long>(
                    reader.counts().rawStreamBytes()),
                100.0 * reader.compressionRatio());

    // Per-event-type payload accounting (varint stage): where the
    // encoded bytes go, and how often the writer's elisions fired.
    TraceEventBreakdown ev = reader.eventBreakdown();
    std::printf("  events: access=%llu (%llu B) rayEnd=%llu (%llu B) "
                "flush=%llu (%llu B) end=%llu B\n",
                static_cast<unsigned long long>(ev.accessEvents),
                static_cast<unsigned long long>(ev.accessBytes),
                static_cast<unsigned long long>(ev.rayEndEvents),
                static_cast<unsigned long long>(ev.rayEndBytes),
                static_cast<unsigned long long>(ev.flushEvents),
                static_cast<unsigned long long>(ev.flushBytes),
                static_cast<unsigned long long>(ev.terminatorBytes));
    std::printf("  elisions: same-bytes=%llu same-ray=%llu\n",
                static_cast<unsigned long long>(ev.sameBytesElisions),
                static_cast<unsigned long long>(ev.sameRayElisions));

    std::printf("  version=%u workload-summary=%s\n", reader.version(),
                reader.hasWorkloadSummary() ? "yes" : "no");
    if (reader.hasWorkloadSummary()) {
        const TraceWorkloadSummary &w = reader.workloadSummary();
        std::printf("  workload: rays=%llu samples=%llu "
                    "vertexFetches=%llu mlpMacs=%llu\n",
                    static_cast<unsigned long long>(w.rays),
                    static_cast<unsigned long long>(w.samples),
                    static_cast<unsigned long long>(w.vertexFetches),
                    static_cast<unsigned long long>(w.mlpMacs));
        std::printf("  stream-plan: streamed=%llu B random=%llu B "
                    "ritEntries=%llu vertexBytes=%u\n",
                    static_cast<unsigned long long>(w.streamedBytes),
                    static_cast<unsigned long long>(w.randomBytes),
                    static_cast<unsigned long long>(w.ritEntries),
                    w.vertexBytes);
    }

    if (range.accesses > 0) {
        HistogramScan histo;
        histo.base = minAddr;
        std::uint64_t span = maxAddr - minAddr + 1;
        histo.bucketWidth =
            (span + HistogramScan::kBuckets - 1) / HistogramScan::kBuckets;
        reader.replay(&histo);
        std::uint64_t peak = *std::max_element(
            histo.hist, histo.hist + HistogramScan::kBuckets);
        std::printf("  address histogram [0x%llx .. 0x%llx], %llu B "
                    "buckets:\n",
                    static_cast<unsigned long long>(minAddr),
                    static_cast<unsigned long long>(maxAddr),
                    static_cast<unsigned long long>(histo.bucketWidth));
        for (int b = 0; b < HistogramScan::kBuckets; ++b) {
            int bars =
                peak ? static_cast<int>(40 * histo.hist[b] / peak) : 0;
            std::printf("    [%2d] %10llu %.*s\n", b,
                        static_cast<unsigned long long>(histo.hist[b]),
                        bars,
                        "########################################");
        }
    }
    return 0;
}

// ---------------------------------------------------------------------
// diff
// ---------------------------------------------------------------------

/** Flattens a replay into a comparable event list. */
struct EventLog : public TraceSink
{
    struct Event
    {
        std::uint8_t kind; // 0 access, 1 rayEnd, 2 flush
        MemAccess access;
        std::uint32_t rayId = 0;

        bool
        operator==(const Event &o) const
        {
            if (kind != o.kind)
                return false;
            if (kind == 0)
                return access.addr == o.access.addr &&
                       access.bytes == o.access.bytes &&
                       access.rayId == o.access.rayId;
            if (kind == 1)
                return rayId == o.rayId;
            return true;
        }
    };

    std::vector<Event> events;

    void
    onAccess(const MemAccess &a) override
    {
        events.push_back(Event{0, a, 0});
    }
    void
    onRayEnd(std::uint32_t rayId) override
    {
        events.push_back(Event{1, MemAccess{}, rayId});
    }
    void onFlush() override { events.push_back(Event{2, MemAccess{}, 0}); }
};

std::string
describe(const EventLog::Event &e)
{
    char buf[96];
    if (e.kind == 0)
        std::snprintf(buf, sizeof(buf),
                      "access addr=0x%llx bytes=%u ray=%u",
                      static_cast<unsigned long long>(e.access.addr),
                      e.access.bytes, e.access.rayId);
    else if (e.kind == 1)
        std::snprintf(buf, sizeof(buf), "rayEnd ray=%u", e.rayId);
    else
        std::snprintf(buf, sizeof(buf), "flush");
    return buf;
}

int
cmdDiff(int argc, char **argv)
{
    const char *fileA = positional(argc, argv, 0);
    const char *fileB = positional(argc, argv, 1);
    if (!fileA || !fileB) {
        std::fprintf(stderr, "diff: need two trace files\n");
        return usage();
    }

    TraceFileReader readerA(fileA), readerB(fileB);
    EventLog a, b;
    readerA.replay(&a);
    readerB.replay(&b);

    std::size_t n = std::min(a.events.size(), b.events.size());
    for (std::size_t i = 0; i < n; ++i) {
        if (!(a.events[i] == b.events[i])) {
            std::printf("traces differ at event %llu:\n  %s: %s\n  %s: "
                        "%s\n",
                        static_cast<unsigned long long>(i), fileA,
                        describe(a.events[i]).c_str(), fileB,
                        describe(b.events[i]).c_str());
            return 1;
        }
    }
    if (a.events.size() != b.events.size()) {
        std::printf("traces differ in length: %s has %llu events, %s has "
                    "%llu\n",
                    fileA,
                    static_cast<unsigned long long>(a.events.size()),
                    fileB,
                    static_cast<unsigned long long>(b.events.size()));
        return 1;
    }
    std::printf("traces identical: %llu events\n",
                static_cast<unsigned long long>(a.events.size()));
    return 0;
}

// ---------------------------------------------------------------------
// recover
// ---------------------------------------------------------------------

int
cmdRecover(int argc, char **argv)
{
    const char *file = positional(argc, argv, 0);
    if (!file) {
        std::fprintf(stderr, "recover: missing trace file\n");
        return usage();
    }
    const char *out = optValue(argc, argv, "-o");
    if (!out)
        out = optValue(argc, argv, "--out");

    TraceFileReader reader(file, TraceReadMode::Salvage);
    const TraceRecoveryInfo &r = reader.recovery();
    std::printf("recover %s: %s\n", file,
                r.salvaged ? "damage found, tail dropped"
                           : "file intact, nothing to do");
    std::printf("  kept: accesses=%llu rayEnds=%llu flushes=%llu\n",
                static_cast<unsigned long long>(reader.counts().accesses),
                static_cast<unsigned long long>(reader.counts().rayEnds),
                static_cast<unsigned long long>(reader.counts().flushes));
    if (r.salvaged)
        std::printf("  salvage: events=%llu checkpointsVerified=%llu "
                    "droppedPayloadBytes=%llu\n",
                    static_cast<unsigned long long>(r.keptEvents),
                    static_cast<unsigned long long>(r.checkpointsVerified),
                    static_cast<unsigned long long>(
                        r.droppedPayloadBytes));

    if (out) {
        // Re-encode the recovered prefix as a fresh, clean container
        // (checkpoints and checksums rebuilt by the writer).
        TraceFileWriter writer(out, reader.meta(), reader.codec());
        reader.replay(&writer);
        if (reader.hasWorkloadSummary())
            writer.setWorkloadSummary(reader.workloadSummary());
        writer.close();
        std::printf("  rewrote %s: %llu bytes\n", out,
                    static_cast<unsigned long long>(writer.fileBytes()));
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    std::string cmd = argv[1];
    applyThreadsOption(argc, argv);
    if (!applyFaultsOption(argc, argv))
        return usage();
    try {
        if (cmd == "capture")
            return cmdCapture(argc, argv);
        if (cmd == "capture-set")
            return cmdCaptureSet(argc, argv);
        if (cmd == "replay")
            return cmdReplay(argc, argv);
        if (cmd == "stats")
            return cmdStats(argc, argv);
        if (cmd == "diff")
            return cmdDiff(argc, argv);
        if (cmd == "recover")
            return cmdRecover(argc, argv);
    } catch (const IoError &e) {
        std::fprintf(stderr, "cicero_trace: %s\n", e.what());
        return 3;
    } catch (const ParseError &e) {
        std::fprintf(stderr, "cicero_trace: %s\n", e.what());
        return 4;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "cicero_trace: %s\n", e.what());
        return 5;
    }
    std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
    return usage();
}
