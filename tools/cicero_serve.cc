/**
 * @file
 * cicero_serve — demo CLI for the multi-session render service.
 *
 * Spins up an in-process RenderService, admits N synthetic client
 * sessions (orbit trajectories with per-client phase; optionally
 * bursty or heavy-tailed mixes), waits for all of them, and prints a
 * per-session latency/throughput table plus the service, cache and
 * fusion counters. This is the operational smoke tool — the measured
 * bench with bit-identity gates is bench/bench_serve.
 *
 * Usage:
 *   cicero_serve [--sessions N] [--frames N] [--res N] [--scene NAME]
 *                [--model ngp|dvgo|tensorf|enerf] [--preset fast|full]
 *                [--window N] [--mix uniform|bursty|heavy]
 *                [--no-fuse] [--no-fanout] [--premium-weight N]
 *                [--fp16] [--quantum N] [--faults SPEC]
 *
 * --no-fanout disables intra-frame ray-block fan-out (each served
 * frame renders as one scheduler task, as before). --premium-weight N
 * gives session 0 a QoS weight of N in the fused-decode deficit
 * round-robin, demoing per-session quality-of-service.
 *
 * Exit codes: 0 success, 2 usage error, 3 I/O error, 4 parse error,
 * 5 other runtime failure (including injected faults that exhaust the
 * service's retry/quarantine budget).
 */

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/errors.hh"
#include "common/fault.hh"
#include "common/parallel.hh"
#include "scene/trajectory.hh"
#include "serve/render_service.hh"

using namespace cicero;

namespace {

const char *
optValue(int argc, char **argv, const char *name)
{
    for (int i = 1; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], name) == 0)
            return argv[i + 1];
    return nullptr;
}

const char *
optValueOr(int argc, char **argv, const char *name, const char *fallback)
{
    const char *v = optValue(argc, argv, name);
    return v ? v : fallback;
}

bool
optFlag(int argc, char **argv, const char *name)
{
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], name) == 0)
            return true;
    return false;
}

bool
optUint(int argc, char **argv, const char *name, std::uint32_t fallback,
        std::uint32_t minV, std::uint32_t maxV, std::uint32_t &out)
{
    const char *v = optValue(argc, argv, name);
    if (!v) {
        out = fallback;
        return true;
    }
    char *end = nullptr;
    errno = 0;
    unsigned long parsed = std::strtoul(v, &end, 10);
    if (end == v || *end != '\0' || errno == ERANGE || parsed < minV ||
        parsed > maxV) {
        std::fprintf(stderr,
                     "%s: want an integer in [%u, %u], got \"%s\"\n",
                     name, minV, maxV, v);
        return false;
    }
    out = static_cast<std::uint32_t>(parsed);
    return true;
}

bool
parseModelKind(const std::string &name, ModelKind &kind)
{
    std::string s;
    for (char c : name)
        if (c != '-' && c != '_')
            s += static_cast<char>(std::tolower(c));
    if (s == "ngp" || s == "instantngp")
        kind = ModelKind::InstantNgp;
    else if (s == "dvgo" || s == "directvoxgo")
        kind = ModelKind::DirectVoxGO;
    else if (s == "tensorf")
        kind = ModelKind::TensoRF;
    else if (s == "enerf" || s == "efficientnerf")
        kind = ModelKind::EfficientNeRF;
    else
        return false;
    return true;
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: cicero_serve [--sessions N] [--frames N] [--res N]\n"
        "                    [--scene NAME] [--model KIND]\n"
        "                    [--preset fast|full] [--window N]\n"
        "                    [--mix uniform|bursty|heavy] [--no-fuse]\n"
        "                    [--no-fanout] [--premium-weight N]\n"
        "                    [--fp16] [--quantum N] [--threads N]\n"
        "                    [--faults SPEC]\n"
        "\n"
        "exit codes: 0 ok, 2 usage, 3 I/O error, 4 parse error,\n"
        "            5 other failure\n");
    return 2;
}

/** --threads N, validated like CICERO_THREADS; invalid warns + default. */
void
applyThreadsOption(int argc, char **argv)
{
    const char *v = optValue(argc, argv, "--threads");
    if (!v)
        return;
    int n = parallelParseThreadSpec(v);
    if (n == 0) {
        std::fprintf(stderr,
                     "cicero_serve: ignoring invalid --threads=\"%s\" "
                     "(want an integer in [1, %d]); falling back to "
                     "the automatic default\n",
                     v, kMaxParallelThreads);
        setParallelThreadCount(0);
        return;
    }
    setParallelThreadCount(n);
}

double
percentileMs(std::vector<double> v, double p)
{
    if (v.empty())
        return 0.0;
    std::sort(v.begin(), v.end());
    const double rank = p * static_cast<double>(v.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, v.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return 1e3 * (v[lo] * (1.0 - frac) + v[hi] * frac);
}

/** --faults SPEC: a malformed CLI spec is a usage error. */
bool
applyFaultsOption(int argc, char **argv)
{
    const char *v = optValue(argc, argv, "--faults");
    if (!v)
        return true;
    try {
        faultArmSpec(v);
    } catch (const FaultSpecError &e) {
        std::fprintf(stderr, "cicero_serve: --faults: %s\n", e.what());
        return false;
    }
    return true;
}

int
run(int argc, char **argv)
{
    applyThreadsOption(argc, argv);
    if (!applyFaultsOption(argc, argv))
        return usage();
    std::uint32_t sessions, frames, res, window, quantum, premium;
    if (!optUint(argc, argv, "--sessions", 4, 1, 1024, sessions) ||
        !optUint(argc, argv, "--frames", 8, 1, 100000, frames) ||
        !optUint(argc, argv, "--res", 64, 1, 4096, res) ||
        !optUint(argc, argv, "--window", 2, 1, 1024, window) ||
        !optUint(argc, argv, "--quantum", 128, 1, 1 << 20, quantum) ||
        !optUint(argc, argv, "--premium-weight", 1, 1, 1024, premium))
        return usage();

    ModelKind kind = ModelKind::DirectVoxGO;
    if (!parseModelKind(optValueOr(argc, argv, "--model", "dvgo"),
                        kind)) {
        std::fprintf(stderr, "unknown --model\n");
        return usage();
    }
    const std::string sceneName = optValueOr(argc, argv, "--scene", "lego");
    const std::string presetStr =
        optValueOr(argc, argv, "--preset", "fast");
    const std::string mix = optValueOr(argc, argv, "--mix", "uniform");
    if (mix != "uniform" && mix != "bursty" && mix != "heavy") {
        std::fprintf(stderr, "unknown --mix\n");
        return usage();
    }

    ModelKey key;
    key.scene = sceneName;
    key.kind = kind;
    key.preset =
        presetStr == "full" ? ModelPreset::Full : ModelPreset::Fast;
    key.fp16 = optFlag(argc, argv, "--fp16");

    RenderServiceConfig cfg;
    cfg.fuseDecode = !optFlag(argc, argv, "--no-fuse");
    cfg.intraFrameFanOut = !optFlag(argc, argv, "--no-fanout");
    cfg.fusionQuantumSamples = static_cast<int>(quantum);
    cfg.maxSessions = static_cast<int>(sessions) + 1;
    cfg.defaultInflightWindow = static_cast<int>(window);
    RenderService svc(cfg);

    const Scene scene = makeScene(sceneName);
    auto makeClient = [&](int i, int numFrames) {
        OrbitParams orbit;
        orbit.radius = scene.cameraDistance;
        orbit.startDeg = static_cast<float>(i) * (360.0f / 17.0f);
        ServeSessionConfig sc;
        sc.model = key;
        sc.width = static_cast<int>(res);
        sc.height = static_cast<int>(res);
        sc.trajectory = orbitTrajectory(orbit, numFrames);
        if (i == 0)
            sc.qosWeight = static_cast<int>(premium);
        if (mix == "heavy" && i == 0) {
            JitterParams jitter;
            jitter.posSigma = 0.01f;
            jitter.rotSigmaDeg = 0.5f;
            applyJitter(sc.trajectory, jitter);
        }
        return sc;
    };

    std::printf("cicero_serve: %u session(s) x %u frame(s) @ %ux%u, "
                "%s/%s, fuse=%s, fanout=%s, fp16=%s, window=%u, "
                "mix=%s, premium_weight=%u, threads=%d\n",
                sessions, frames, res, res, sceneName.c_str(),
                modelName(kind), cfg.fuseDecode ? "on" : "off",
                cfg.intraFrameFanOut ? "on" : "off",
                key.fp16 ? "on" : "off", window, mix.c_str(), premium,
                parallelThreadCount());

    std::vector<int> ids(sessions, -1);
    auto t0 = std::chrono::steady_clock::now();
    const std::uint32_t firstWave =
        mix == "bursty" ? std::max(1u, sessions / 2) : sessions;
    for (std::uint32_t i = 0; i < firstWave; ++i)
        ids[i] = svc.admit(makeClient(
            static_cast<int>(i),
            static_cast<int>(mix == "heavy" && i == 0 ? 4 * frames
                                                      : frames)));
    if (firstWave < sessions) {
        for (std::uint32_t i = 0; i < firstWave; ++i)
            svc.waitFrame(ids[i], 0); // wave 2 arrives mid-flight
        for (std::uint32_t i = firstWave; i < sessions; ++i)
            ids[i] = svc.admit(
                makeClient(static_cast<int>(i), static_cast<int>(frames)));
    }

    std::uint64_t totalRays = 0;
    for (std::uint32_t i = 0; i < sessions; ++i) {
        ServeSessionResult r = svc.wait(ids[i]);
        std::vector<double> lat;
        double renderS = 0.0;
        for (const ServeFrame &f : r.frames) {
            lat.push_back(f.latencyS);
            renderS += f.renderS;
            totalRays += f.work.rays;
        }
        std::printf("  session %-3d %3zu frames  p50 %8.2f ms  "
                    "p95 %8.2f ms  render %7.3f s\n",
                    r.sessionId, r.frames.size(), percentileMs(lat, 0.5),
                    percentileMs(lat, 0.95), renderS);
    }
    const double wallS = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - t0)
                             .count();

    const ServiceCounters sc = svc.counters();
    const ModelCacheStats mc = svc.cache().stats();
    const FusionStats fu = svc.cache().fusionStatsTotal();
    std::printf("total: %.3f s wall, %.1f rays/s aggregate\n", wallS,
                wallS > 0.0 ? totalRays / wallS : 0.0);
    std::printf("service: admitted=%llu rejected=%llu frames=%llu\n",
                static_cast<unsigned long long>(sc.admitted),
                static_cast<unsigned long long>(sc.rejected),
                static_cast<unsigned long long>(sc.framesCompleted));
    std::printf("cache:   hits=%llu misses=%llu evictions=%llu\n",
                static_cast<unsigned long long>(mc.hits),
                static_cast<unsigned long long>(mc.misses),
                static_cast<unsigned long long>(mc.evictions));
    std::printf("fusion:  blocks=%llu samples=%llu passes=%llu "
                "fused=%llu cross_session=%llu max_batch=%llu "
                "avg_batch_samples=%.2f avg_batch_blocks=%.2f "
                "weighted_sessions=%llu\n",
                static_cast<unsigned long long>(fu.blocks),
                static_cast<unsigned long long>(fu.samples),
                static_cast<unsigned long long>(fu.passes),
                static_cast<unsigned long long>(fu.fusedPasses),
                static_cast<unsigned long long>(fu.crossSessionPasses),
                static_cast<unsigned long long>(fu.maxBatchSamples),
                sc.avgBatchSamples, sc.avgBatchBlocks,
                static_cast<unsigned long long>(fu.weightedSessions));
    std::printf("robust:  retries=%llu failed=%llu skipped=%llu "
                "quarantined=%llu shed=%llu deadline_miss=%llu "
                "split_retries=%llu failed_blocks=%llu\n",
                static_cast<unsigned long long>(sc.frameRetries),
                static_cast<unsigned long long>(sc.framesFailed),
                static_cast<unsigned long long>(sc.framesSkipped),
                static_cast<unsigned long long>(sc.quarantinedSessions),
                static_cast<unsigned long long>(sc.shedAdmissions),
                static_cast<unsigned long long>(sc.deadlineMisses),
                static_cast<unsigned long long>(fu.splitRetries),
                static_cast<unsigned long long>(fu.failedBlocks));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const IoError &e) {
        std::fprintf(stderr, "cicero_serve: %s\n", e.what());
        return 3;
    } catch (const ParseError &e) {
        std::fprintf(stderr, "cicero_serve: %s\n", e.what());
        return 4;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "cicero_serve: %s\n", e.what());
        return 5;
    }
}
