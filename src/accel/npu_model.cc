#include "accel/npu_model.hh"

namespace cicero {

NpuModel::NpuModel(const NpuConfig &config) : _config(config)
{
}

std::uint64_t
NpuModel::layerCycles(int batch, int in, int out) const
{
    // Weight-stationary tiling: each (rows x cols) tile streams `in`
    // activations plus pipeline fill/drain.
    std::uint64_t tilesB = (batch + _config.rows - 1) / _config.rows;
    std::uint64_t tilesO = (out + _config.cols - 1) / _config.cols;
    std::uint64_t fill = _config.rows + _config.cols;
    return tilesB * tilesO * (static_cast<std::uint64_t>(in) + fill);
}

double
NpuModel::mlpTimeMs(std::uint64_t macs) const
{
    double macsPerSecond = static_cast<double>(_config.rows) *
                           _config.cols * _config.freqGHz * 1e9 *
                           _config.utilization;
    return macs / macsPerSecond * 1e3;
}

double
NpuModel::scalarTimeMs(std::uint64_t ops) const
{
    return ops / _config.scalarOpsPerSecond * 1e3;
}

} // namespace cicero
