#include "accel/gpu_model.hh"
#include <algorithm>

namespace cicero {

GpuConfig
GpuConfig::remote2080Ti()
{
    GpuConfig c;
    c.name = "RTX2080Ti";
    // ~12x the mobile part on compute, ~18x on bandwidth (616 GB/s).
    c.macThroughput = 4.5e12;
    c.aluThroughput = 4.0e12;
    c.fetchIssueRate = 14e9;
    c.randomPenalty = 6.0;
    c.activePowerW = 220.0;
    c.pointOpsPerSecond = 20e9;
    c.dram.bandwidthGBs = 616.0;
    return c;
}

GpuModel::GpuModel(const GpuConfig &config) : _config(config)
{
}

std::uint64_t
GpuModel::gatherDramBytes(const StageWork &work,
                          const GatherProfile &profile) const
{
    // Every missing fetch moves one cache-line-sized DRAM transaction.
    return static_cast<std::uint64_t>(work.vertexFetches *
                                      profile.cacheMissRate *
                                      _config.cacheMissTransactionBytes);
}

double
GpuModel::gatherDramEnergyNj(const StageWork &work,
                             const GatherProfile &profile,
                             const EnergyConstants &energy) const
{
    std::uint64_t bytes = gatherDramBytes(work, profile);
    double randomBytes = bytes * profile.randomFraction;
    double streamBytes = bytes - randomBytes;
    return randomBytes * energy.dramRandomPjPerByte * 1e-3 +
           streamBytes * energy.dramStreamPjPerByte * 1e-3;
}

GpuStageTimes
GpuModel::timeNerfFrame(const StageWork &work,
                        const GatherProfile &profile) const
{
    GpuStageTimes t;

    // Indexing (I): scalar arithmetic bound.
    t.indexMs = work.indexOps / _config.aluThroughput * 1e3;

    // Feature Gathering (G): the maximum of load-slot issue, DRAM
    // transfer (random accesses derate bandwidth), and interpolation
    // arithmetic. On a GPU these overlap, so the bottleneck wins.
    double issueMs = work.vertexFetches / _config.fetchIssueRate * 1e3;
    double dramBytes = static_cast<double>(gatherDramBytes(work, profile));
    double effBw = _config.dram.bandwidthGBs * 1e9 *
                   ((1.0 - profile.randomFraction) +
                    profile.randomFraction / _config.randomPenalty);
    double dramMs = dramBytes / effBw * 1e3;
    double interpMs = work.interpOps / _config.aluThroughput * 1e3;
    t.gatherMs = std::max({issueMs, dramMs, interpMs});

    // Feature Computation (F): MLP MAC bound.
    t.mlpMs = work.mlpMacs / _config.macThroughput * 1e3;

    // Compositing and misc.
    t.compositeMs = work.compositeOps / _config.aluThroughput * 1e3;

    return t;
}

} // namespace cicero
