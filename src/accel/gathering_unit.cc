#include "accel/gathering_unit.hh"

#include <algorithm>
#include <cmath>

namespace cicero {

GatheringUnitModel::GatheringUnitModel(const GatheringUnitConfig &config)
    : _config(config)
{
}

double
GatheringUnitModel::sramEnergyScale(std::uint64_t vftBytes)
{
    constexpr double kneeBytes = 64.0 * 1024.0;
    if (vftBytes <= kneeBytes)
        return 1.0;
    return 1.0 + 0.45 * std::log2(vftBytes / kneeBytes);
}

int
GatheringUnitModel::mvoxelEdgeForBuffer(std::uint64_t vftBytes,
                                        std::uint32_t vertexBytes)
{
    int edge = static_cast<int>(
        std::cbrt(static_cast<double>(vftBytes) / vertexBytes));
    return std::max(2, edge);
}

GuCost
GatheringUnitModel::price(const StreamPlan &plan,
                          std::uint32_t vertexBytes,
                          const DramConfig &dram,
                          const EnergyConstants &energy) const
{
    GuCost cost;

    // Compute: one RIT entry = one ray sample (possibly partial across
    // MVoxels) = 8 vertex reads; channel-major striping packs
    // floor(B / channels) vertices side by side across the banks, so a
    // cycle retrieves that many vertices per port, and M entries are in
    // flight at once.
    std::uint32_t channels =
        std::max<std::uint32_t>(1, vertexBytes / kBytesPerChannel);
    std::uint32_t vertsPerCycle =
        std::max<std::uint32_t>(1, _config.banks / channels);
    std::uint64_t cyclesPerEntry = (8 + vertsPerCycle - 1) / vertsPerCycle;
    cost.cycles = plan.ritEntries * cyclesPerEntry / _config.ports;
    // Non-streamable (reverted-level) fetches still pass through the
    // VFT datapath one vertex at a time.
    std::uint64_t randomFetches = plan.randomBytes / vertexBytes;
    cost.cycles += randomFetches / (vertsPerCycle * _config.ports);
    cost.computeMs = cost.cycles / (_config.freqGHz * 1e9) * 1e3;

    // DRAM: MVoxels stream at full bandwidth; residual (non-streamable
    // level) traffic pays the random derating.
    double streamMs =
        plan.streamedBytes / (dram.bandwidthGBs * 1e9) * 1e3;
    // The GU keeps many outstanding requests, so non-streamable level
    // traffic still extracts bank parallelism (half of peak).
    double randomBw = dram.bandwidthGBs * 1e9 / 2.0;
    double randomMs = plan.randomBytes / randomBw * 1e3;
    // The RIT is produced by the GPU and DMA-streamed to the GU once.
    double ritMs = plan.ritBytes / (dram.bandwidthGBs * 1e9) * 1e3;
    cost.dramMs = streamMs + randomMs + ritMs;

    // Double buffering overlaps MVoxel loads with reduction.
    cost.timeMs = std::max(cost.computeMs, cost.dramMs);

    // Energy: VFT reads (8 vertices per entry), reducers, RIT traffic
    // (written by GPU, read by GU), and the DRAM traffic itself.
    double scale = sramEnergyScale(_config.vftBytes);
    double sramNj = plan.ritEntries * 8.0 * vertexBytes *
                    energy.sramPjPerByte * scale * 1e-3;
    double reducerNj =
        plan.ritEntries * 8.0 * channels * energy.aluOpPj * 1e-3;
    double dramNj = plan.streamedBytes * energy.dramStreamPjPerByte * 1e-3 +
                    plan.randomBytes * energy.dramRandomPjPerByte * 1e-3 +
                    plan.ritBytes * energy.dramStreamPjPerByte * 1e-3;
    double staticNj = _config.activePowerW * cost.timeMs * 1e6;
    cost.energyNj = sramNj + reducerNj + dramNj + staticNj;
    return cost;
}

} // namespace cicero
