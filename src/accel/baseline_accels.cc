#include "accel/baseline_accels.hh"

#include <algorithm>

namespace cicero {

namespace {

NpuConfig
npuFor(int rows, int cols, double freqGHz)
{
    NpuConfig c;
    c.rows = rows;
    c.cols = cols;
    c.freqGHz = freqGHz;
    return c;
}

} // namespace

NeurexModel::NeurexModel(const NeurexConfig &config)
    : _config(config),
      _npu(npuFor(config.peRows, config.peCols, config.freqGHz))
{
}

AccelFrameCost
NeurexModel::price(const StageWork &work, double bankConflictRate,
                   const DramConfig &dram,
                   const EnergyConstants &energy) const
{
    AccelFrameCost cost;

    // Gather: lanes issue one vertex fetch per cycle; conflicts stall
    // (retried issues), inflating cycles by 1/(1 - conflictRate).
    double stall = 1.0 / std::max(0.05, 1.0 - bankConflictRate);
    double cycles =
        static_cast<double>(work.vertexFetches) / _config.gatherLanes *
        stall;
    double onChipMs = cycles / (_config.freqGHz * 1e9) * 1e3;

    // Buffer misses fetch from DRAM at random-burst cost.
    double missBytes = work.vertexFetches * _config.bufferMissRate * 32.0;
    double randomBw = dram.bandwidthGBs * 1e9 / 2.0;
    double dramMs = missBytes / randomBw * 1e3;

    // NeuRex's modest buffering cannot fully overlap miss traffic with
    // on-chip gathering, so the two serialize.
    cost.gatherMs = onChipMs + dramMs;
    cost.mlpMs = _npu.mlpTimeMs(work.mlpMacs);
    cost.timeMs = cost.gatherMs + cost.mlpMs;

    double sramNj = work.vertexFetches * 32.0 * energy.sramPjPerByte *
                    1e-3 * stall;
    double dramNj = missBytes * energy.dramRandomPjPerByte * 1e-3;
    double macNj = work.mlpMacs * energy.macPj * 1e-3;
    double staticNj = _config.activePowerW * cost.timeMs * 1e6;
    cost.energyNj = sramNj + dramNj + macNj + staticNj;
    return cost;
}

NgpcModel::NgpcModel(const NgpcConfig &config)
    : _config(config),
      _npu(npuFor(config.peRows, config.peCols, config.freqGHz))
{
}

AccelFrameCost
NgpcModel::price(const StageWork &work,
                 const EnergyConstants &energy) const
{
    AccelFrameCost cost;

    // Conflict-free gathering from the 16 MB buffer; no DRAM traffic for
    // encodings (they are fully resident).
    double cycles =
        static_cast<double>(work.vertexFetches) / _config.gatherLanes;
    cost.gatherMs = cycles / (_config.freqGHz * 1e9) * 1e3;
    cost.mlpMs = _npu.mlpTimeMs(work.mlpMacs);
    cost.timeMs = cost.gatherMs + cost.mlpMs;

    // The huge SRAM costs extra per access (Fig. 23's size effect).
    double scale = 1.0 + 0.45 * 8.0; // 16 MB >> 64 KB knee
    double sramNj =
        work.vertexFetches * 32.0 * energy.sramPjPerByte * scale * 1e-3;
    double macNj = work.mlpMacs * energy.macPj * 1e-3;
    double staticNj = _config.activePowerW * cost.timeMs * 1e6;
    cost.energyNj = sramNj + macNj + staticNj;
    return cost;
}

} // namespace cicero
