/**
 * @file
 * Timing/energy models of the prior NeRF accelerators the paper compares
 * against in Fig. 24, implementing each design's published organization:
 *
 *  - NeuRex (ISCA'23): 32x32 PE array with a 64 KB encoding buffer;
 *    feature vectors are stored feature-major, so concurrent gathers
 *    suffer SRAM bank conflicts (the inefficiency Cicero's GU removes).
 *  - NGPC (ISCA'23): 24x24 PEs with a 16 MB on-chip encoding buffer —
 *    one bank per hash level, hence conflict-free, but all of the
 *    encoding must fit on chip.
 *
 * Both are tailored to Instant-NGP; the models price an Instant-NGP
 * frame's StageWork.
 */

#ifndef CICERO_ACCEL_BASELINE_ACCELS_HH
#define CICERO_ACCEL_BASELINE_ACCELS_HH

#include "accel/npu_model.hh"
#include "memory/dram_model.hh"
#include "memory/energy_model.hh"
#include "nerf/workload.hh"

namespace cicero {

/** Priced frame on a prior accelerator. */
struct AccelFrameCost
{
    double gatherMs = 0.0;
    double mlpMs = 0.0;
    double timeMs = 0.0;
    double energyNj = 0.0;
};

/** NeuRex organization parameters. */
struct NeurexConfig
{
    int peRows = 32;
    int peCols = 32;
    std::uint32_t gatherLanes = 32;  //!< concurrent ray-sample gathers
    std::uint64_t bufferBytes = 64 * 1024;
    double freqGHz = 1.0;
    double bufferMissRate = 0.10;    //!< NeuRex's restructured hash buffering
    double activePowerW = 4.5;

    /** On-chip SRAM footprint: the encoding buffer. */
    std::uint64_t sramBytes() const { return bufferBytes; }
};

/** NGPC organization parameters. */
struct NgpcConfig
{
    int peRows = 24;
    int peCols = 24;
    std::uint32_t gatherLanes = 32;
    std::uint64_t bufferBytes = 16ull << 20; //!< 16 MB on-chip encodings
    double freqGHz = 1.0;
    double activePowerW = 7.0; //!< large SRAM macro is power-hungry

    /** On-chip SRAM footprint: the encoding buffer. */
    std::uint64_t sramBytes() const { return bufferBytes; }
};

/**
 * NeuRex model: gather lanes stall on bank conflicts (rate measured by
 * the BankConflictSim on the same trace), misses from the small buffer
 * go to DRAM at random-access cost.
 */
class NeurexModel
{
  public:
    explicit NeurexModel(const NeurexConfig &config = {});

    /**
     * @param work           Instant-NGP frame work
     * @param bankConflictRate measured feature-major conflict rate
     */
    AccelFrameCost price(const StageWork &work, double bankConflictRate,
                         const DramConfig &dram = DramConfig{},
                         const EnergyConstants &energy = {}) const;

    const NeurexConfig &config() const { return _config; }

  private:
    NeurexConfig _config;
    NpuModel _npu;
};

/**
 * NGPC model: conflict-free on-chip gathering (one bank per level), no
 * DRAM traffic for encodings once resident.
 */
class NgpcModel
{
  public:
    explicit NgpcModel(const NgpcConfig &config = {});

    AccelFrameCost price(const StageWork &work,
                         const EnergyConstants &energy = {}) const;

    const NgpcConfig &config() const { return _config; }

  private:
    NgpcConfig _config;
    NpuModel _npu;
};

} // namespace cicero

#endif // CICERO_ACCEL_BASELINE_ACCELS_HH
