/**
 * @file
 * Systolic-array NPU timing model (Sec. V hardware details): a 24x24
 * MAC array in the TPU style with a 1.5 MB double-buffered global
 * feature buffer and a 96 KB weight buffer, plus a scalar unit for
 * element-wise work.
 */

#ifndef CICERO_ACCEL_NPU_MODEL_HH
#define CICERO_ACCEL_NPU_MODEL_HH

#include <cstdint>
#include <vector>

#include "memory/energy_model.hh"

namespace cicero {

/** NPU hardware parameters. */
struct NpuConfig
{
    int rows = 24;
    int cols = 24;
    double freqGHz = 1.0;
    double utilization = 0.75;       //!< sustained MAC-array efficiency
    std::uint64_t featureBufBytes = 1536 * 1024; //!< 1.5 MB, double-buffered
    std::uint64_t weightBufBytes = 96 * 1024;
    double activePowerW = 3.5;
    double scalarOpsPerSecond = 50e9;

    /** On-chip SRAM footprint: feature + weight buffers. */
    std::uint64_t
    sramBytes() const
    {
        return featureBufBytes + weightBufBytes;
    }
};

/**
 * Timing of MLP inference batches on the systolic array.
 */
class NpuModel
{
  public:
    explicit NpuModel(const NpuConfig &config = NpuConfig{});

    const NpuConfig &config() const { return _config; }

    /**
     * Time to run @p macs multiply-accumulates of dense layers through
     * the array at sustained utilization, in ms.
     */
    double mlpTimeMs(std::uint64_t macs) const;

    /**
     * Time of one batched layer (explicit tiling model): @p batch
     * samples through a (@p in x @p out) layer, in cycles.
     */
    std::uint64_t layerCycles(int batch, int in, int out) const;

    /** Scalar-unit time (activations, compositing), in ms. */
    double scalarTimeMs(std::uint64_t ops) const;

    /** Busy energy for @p ms, in nJ. */
    double energyNj(double ms) const
    {
        return _config.activePowerW * ms * 1e6;
    }

    /** MAC energy for @p macs at the ledger's constants, in nJ. */
    double macEnergyNj(std::uint64_t macs,
                       const EnergyConstants &c = EnergyConstants{}) const
    {
        return macs * c.macPj * 1e-3;
    }

  private:
    NpuConfig _config;
};

} // namespace cicero

#endif // CICERO_ACCEL_NPU_MODEL_HH
