/**
 * @file
 * Timing/energy model of the Gathering Unit (GU) of Sec. IV-C / Fig. 15:
 * a double-buffered Ray Index Table (128 entries x 48 B), a Vertex
 * Feature Table of B independent SRAM arrays with M ports each (32 KB,
 * B = 32, M = 2), address generation, and B x M trilinear reducers.
 *
 * With the channel-major layout the VFT needs no crossbar and never
 * conflicts: reading one vertex's feature takes one cycle across all
 * banks, so one ray sample (8 vertices) takes 8 cycles, and M samples
 * proceed in parallel. MVoxel loads stream from DRAM and overlap with
 * compute through double buffering.
 */

#ifndef CICERO_ACCEL_GATHERING_UNIT_HH
#define CICERO_ACCEL_GATHERING_UNIT_HH

#include <cstdint>

#include "memory/dram_model.hh"
#include "memory/energy_model.hh"
#include "nerf/encoding.hh"

namespace cicero {

/** GU hardware parameters (paper defaults). */
struct GatheringUnitConfig
{
    std::uint32_t banks = 32;       //!< B: independent SRAM arrays
    std::uint32_t ports = 2;        //!< M: ports per bank
    std::uint64_t vftBytes = 32 * 1024;
    std::uint64_t ritEntryBytes = 48;
    std::uint32_t ritEntries = 128; //!< per buffer (double-buffered)
    double freqGHz = 1.0;
    double activePowerW = 0.25;     //!< datapath + SRAM leakage

    /** On-chip SRAM footprint: VFT plus the double-buffered RIT. */
    std::uint64_t
    sramBytes() const
    {
        return vftBytes + 2ull * ritEntries * ritEntryBytes;
    }
};

/** Priced GU execution of a gather workload. */
struct GuCost
{
    double computeMs = 0.0; //!< reducer/VFT-bound time
    double dramMs = 0.0;    //!< MVoxel + residual streaming time
    double timeMs = 0.0;    //!< max of the two (double buffering)
    double energyNj = 0.0;
    std::uint64_t cycles = 0;
};

/**
 * Analytic GU model. The workload is a StreamPlan (from
 * Encoding::streamingFootprint) — MVoxel bytes streamed once, residual
 * random bytes for non-streamable levels, and RIT entries to process.
 */
class GatheringUnitModel
{
  public:
    explicit GatheringUnitModel(const GatheringUnitConfig &config = {});

    const GatheringUnitConfig &config() const { return _config; }

    /**
     * Price a gather workload.
     *
     * @param plan        streaming footprint of the frame/batch
     * @param vertexBytes bytes of one vertex feature vector
     * @param dram        DRAM device parameters
     * @param energy      energy constants
     */
    GuCost price(const StreamPlan &plan, std::uint32_t vertexBytes,
                 const DramConfig &dram = DramConfig{},
                 const EnergyConstants &energy = EnergyConstants{}) const;

    /**
     * Per-byte VFT access energy scale as a function of buffer size —
     * the Fig. 23 sensitivity: flat up to 64 KB, growing beyond as
     * larger SRAM arrays cost more per access.
     */
    static double sramEnergyScale(std::uint64_t vftBytes);

    /**
     * Largest MVoxel edge (in vertices) whose chunk fits the VFT for a
     * given vertex size — how the paper sizes MVoxels (Sec. IV-A).
     */
    static int mvoxelEdgeForBuffer(std::uint64_t vftBytes,
                                   std::uint32_t vertexBytes);

  private:
    GatheringUnitConfig _config;
};

} // namespace cicero

#endif // CICERO_ACCEL_GATHERING_UNIT_HH
