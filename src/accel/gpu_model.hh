/**
 * @file
 * Analytic timing/energy model of the mobile Volta GPU (Nvidia Xavier
 * SoC) the paper measures on, plus the remote workstation GPU (2080 Ti)
 * used by the remote-rendering scenario.
 *
 * The paper parameterizes its cycle-level simulator from GPU
 * measurements; we parameterize this model from the paper's published
 * characterization: DirectVoxGO ~0.8 FPS at 800x800 with Feature
 * Gathering >56% of execution (Figs. 2-3), Instant-NGP ~6 s/frame, and
 * the SPARW warping stages costing <1 ms per million points (Sec. III-B).
 */

#ifndef CICERO_ACCEL_GPU_MODEL_HH
#define CICERO_ACCEL_GPU_MODEL_HH

#include "memory/dram_model.hh"
#include "memory/energy_model.hh"
#include "nerf/workload.hh"

namespace cicero {

/** Throughput parameters of a GPU. */
struct GpuConfig
{
    std::string name = "XavierVolta";
    double macThroughput = 0.35e12;  //!< effective MAC/s for small MLPs
    double aluThroughput = 0.30e12;  //!< scalar ops/s (indexing, interp)
    /**
     * Effective gather-fetch throughput: an irregular gather costs
     * address arithmetic, bounds checks and an uncoalesced load —
     * roughly 1 G fetches/s sustained on the mobile part.
     */
    double fetchIssueRate = 1e9;
    /**
     * Utilization penalty for *sparse* (disocclusion) rendering: a few
     * thousand scattered pixels cannot fill the machine the way a full
     * frame does (small kernels, divergent warps, poor MVoxel
     * utilization on the GU side alike).
     */
    double sparseDispatchOverhead = 4.0;
    double cacheMissTransactionBytes = 64.0; //!< DRAM bytes per miss
    double randomPenalty = 8.0;      //!< bandwidth derating for random
    double activePowerW = 18.0;
    double pointOpsPerSecond = 1.2e9; //!< warp/projection points per s
    DramConfig dram;

    /** The remote workstation GPU (RTX 2080 Ti class). */
    static GpuConfig remote2080Ti();
};

/** Per-stage execution time of a NeRF frame on the GPU, in ms. */
struct GpuStageTimes
{
    double indexMs = 0.0;
    double gatherMs = 0.0;
    double mlpMs = 0.0;
    double compositeMs = 0.0;

    double
    totalMs() const
    {
        return indexMs + gatherMs + mlpMs + compositeMs;
    }
};

/** Memory behaviour of the gather stage, as measured on a trace. */
struct GatherProfile
{
    double cacheMissRate = 0.38;     //!< fraction of fetches missing 2 MB
    double randomFraction = 0.81;    //!< non-streaming DRAM fraction
};

/**
 * The GPU timing/energy model.
 */
class GpuModel
{
  public:
    explicit GpuModel(const GpuConfig &config = GpuConfig{});

    const GpuConfig &config() const { return _config; }

    /**
     * Time the three pipeline stages of a (full or sparse) NeRF frame.
     */
    GpuStageTimes timeNerfFrame(const StageWork &work,
                                const GatherProfile &profile) const;

    /** Energy of running the GPU busy for @p ms, in nJ. */
    double energyNj(double ms) const
    {
        return _config.activePowerW * ms * 1e6;
    }

    /**
     * Time of the SPARW warping stages (point-cloud conversion,
     * transformation, re-projection) for @p points points, in ms.
     */
    double warpTimeMs(std::uint64_t points) const
    {
        return points / _config.pointOpsPerSecond * 1e3;
    }

    /** DRAM traffic the gather stage generates, in bytes. */
    std::uint64_t gatherDramBytes(const StageWork &work,
                                  const GatherProfile &profile) const;

    /**
     * DRAM energy of the gather stage, in nJ: gatherDramBytes split
     * into random and streaming shares by the profile and priced at
     * the ledger's per-byte constants.
     */
    double gatherDramEnergyNj(const StageWork &work,
                              const GatherProfile &profile,
                              const EnergyConstants &energy = {}) const;

  private:
    GpuConfig _config;
};

} // namespace cicero

#endif // CICERO_ACCEL_GPU_MODEL_HH
