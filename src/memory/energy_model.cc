#include "memory/energy_model.hh"

namespace cicero {

double
EnergyLedger::get(const std::string &name) const
{
    auto it = _entries.find(name);
    return it == _entries.end() ? 0.0 : it->second;
}

double
EnergyLedger::totalNj() const
{
    double acc = 0.0;
    for (const auto &[k, v] : _entries)
        acc += v;
    return acc;
}

} // namespace cicero
