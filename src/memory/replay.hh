/**
 * @file
 * Offline replay engine: run a gather access stream — live from a
 * functional render or persisted in a trace file — through the
 * memory-model stacks of the paper's characterization figures, and
 * serialize the resulting statistics deterministically.
 *
 * Every stack takes a TraceSourceFn, a callback that emits the stream
 * into a sink: a lambda around a render call for live runs, or
 * fileSource() around a TraceFileReader for persisted traces. The same
 * stack runs either way and — because a
 * persisted trace replays byte-identically — produces bit-identical
 * stats JSON in both modes (the capture-once / replay-many contract).
 */

#ifndef CICERO_MEMORY_REPLAY_HH
#define CICERO_MEMORY_REPLAY_HH

#include <functional>
#include <string>

#include "memory/cache_model.hh"
#include "memory/dram_model.hh"
#include "memory/energy_model.hh"
#include "memory/sram_bank_model.hh"
#include "memory/tracefile.hh"

namespace cicero {

/** Emits one full trace (accesses, ray ends, flush) into @p sink. */
using TraceSourceFn = std::function<void(TraceSink *sink)>;

/** Trace source that replays a persisted trace file. */
inline TraceSourceFn
fileSource(const TraceFileReader &reader)
{
    return [&reader](TraceSink *sink) { reader.replay(sink); };
}

/**
 * Fig. 5 stack: a WarpInterleaver models GPU warp scheduling in front
 * of an LRU and a Belady (oracle) cache sharing one stream.
 */
struct CacheStackConfig
{
    CacheConfig cache;            //!< 2 MB / 64 B lines by default
    std::uint32_t warpWays = 32;  //!< interleaved rays
    EnergyConstants energy;       //!< per-byte costs for the ledger
};

/**
 * Results of the Fig. 5 cache stack. Energy uses the EnergyModel
 * ledger: every access reads one line from SRAM, every miss fills the
 * line from DRAM at random-access cost — the same per-byte constants
 * the figure benches price with.
 */
struct CacheStackResult
{
    CacheStats lru;
    CacheStats belady;
    double lruEnergyNj = 0.0;
    double beladyEnergyNj = 0.0;
};

/** Run the interleaver → {LRU, Belady} stack over @p source. */
CacheStackResult runCacheStack(const TraceSourceFn &source,
                               const CacheStackConfig &config = {});

/**
 * Results of the Fig. 6 bank stack: conflict stats plus the SRAM
 * energy of the completed and re-issued (stalled) fetch attempts.
 */
struct BankStackResult
{
    BankConflictStats stats;
    double energyNj = 0.0;
};

/** Run the Fig. 6 bank-conflict simulator over @p source. */
BankStackResult runBankStack(const TraceSourceFn &source,
                             const SramBankConfig &config,
                             const EnergyConstants &energy = {});

/** Results of the DRAM stack: classification stats plus cost. */
struct DramStackResult
{
    DramStats stats;
    double energyNj = 0.0;
    double timeMs = 0.0;
};

/** Run the streaming-vs-random DRAM classifier over @p source. */
DramStackResult runDramStack(const TraceSourceFn &source,
                             const DramConfig &config = {});

/**
 * Deterministic JSON serialization of stack results: integer fields
 * verbatim, derived rates with fixed precision — equal stats always
 * produce byte-identical strings.
 */
std::string statsJson(const CacheStackResult &result);
std::string statsJson(const BankStackResult &result);
std::string statsJson(const DramStackResult &result);

} // namespace cicero

#endif // CICERO_MEMORY_REPLAY_HH
