/**
 * @file
 * Persistent trace files: capture a gather access stream once, replay
 * it many times.
 *
 * Every memory-model experiment in this repo is a function of the
 * access stream a functional render emits into a TraceSink. A
 * TraceFileWriter is itself a TraceSink, so it drops into any existing
 * capture path (including the parallel RayTraceBuffer replay) and
 * persists the stream into a versioned `.ctrace` container; a
 * TraceFileReader replays a container into any TraceSink — so the
 * cache, DRAM, SRAM-bank and energy models consume persisted traces
 * with zero changes. One expensive render becomes a reusable artifact:
 * sweep N memory configs from one capture.
 *
 * On-disk format (all integers little-endian):
 *
 *   "CTRC"  u16 version  u8 codec  u8 storageMode
 *   str scene  str encoding  str model        (u32 length + bytes)
 *   u32 width  u32 height  u32 threads  u32 featureBytes
 *   u64 accesses  u64 rayEnds  u64 flushes
 *   u8 hasWorkload  [12 x u64 + u32 summary]      (version >= 2)
 *   u64 storedPayloadBytes  u64 rawPayloadBytes
 *   u32 headerCrc32                               (version >= 3)
 *   payload
 *
 * Version 2 adds the optional workload-summary block: the StageWork
 * and StreamPlan counters of the captured frame. The accel models
 * (GPU/NPU/GU/baselines) price *derived* workload quantities — MLP
 * MACs depend on occupancy, the streaming footprint on sample
 * positions — which cannot be re-derived from the access stream alone,
 * so replay-driven accelerator runs read them from the header instead
 * of re-rendering. Version-1 files still parse (summary absent).
 *
 * Version 3 adds crash-safety checksums. The header is covered by a
 * trailing CRC32 (over every header byte before the CRC field), and
 * the varint-stage payload embeds *checkpoint events* (tag 7): every
 * ~kTraceCheckpointInterval events, and once more right before the
 * terminator, the writer records the cumulative event count and the
 * CRC32 of the payload section since the previous checkpoint. Strict
 * reads verify every checkpoint at parse time; the salvage read mode
 * (TraceReadMode::Salvage) uses them to recover the longest
 * checksum-valid event prefix of a truncated or corrupted capture —
 * a capture process killed mid-run loses one trace's tail, not the
 * corpus. The file-backed writer additionally finalizes via temp file
 * + atomic rename, so a completed `.ctrace` path is always a complete
 * container.
 *
 * The payload is an event stream framed to mirror the TraceSink
 * interface exactly (onAccess / onRayEnd / onFlush), encoded with
 * delta-of-address + zigzag varints: gather addresses are locally
 * correlated (neighbouring grid vertices), so deltas are short, and
 * ray ids / access sizes rarely change between events, so both are
 * elided when repeated. With codec Range an adaptive order-0 binary
 * range coder (the delta-filter + entropy-coding idiom of classic
 * stream compressors) squeezes the residual varint bytes further.
 */

#ifndef CICERO_MEMORY_TRACEFILE_HH
#define CICERO_MEMORY_TRACEFILE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/errors.hh"
#include "memory/trace.hh"

namespace cicero {

/**
 * A `.ctrace` container that does not parse: bad magic, unsupported
 * version, corrupt or truncated payload, checksum mismatch. Derives
 * ParseError (itself a runtime_error), so the CLI tools map it to the
 * parse-failure exit code.
 */
class TraceFileError : public ParseError
{
  public:
    using ParseError::ParseError;
};

/** Payload compression stage. */
enum class TraceCodec : std::uint8_t
{
    Varint = 0, //!< delta + zigzag-varint event stream only
    Range = 1,  //!< varint stream re-coded by an order-0 range coder
};

/** Trace-file container version this build writes. */
constexpr std::uint16_t kTraceFileVersion = 3;

/** Oldest container version this build still reads. */
constexpr std::uint16_t kTraceFileMinVersion = 1;

/** Events between embedded payload checkpoints (version >= 3). */
constexpr std::uint64_t kTraceCheckpointInterval = 1024;

/** How strictly TraceFileReader treats a damaged container. */
enum class TraceReadMode
{
    /** Any truncation or corruption throws TraceFileError (default). */
    Strict,
    /**
     * Recover what the checksums vouch for: keep the longest
     * checkpoint-valid event prefix of a truncated/corrupted payload
     * and recompute the counts from it. A file damaged *in the header*
     * still throws — there is nothing trustworthy to salvage without
     * the header.
     */
    Salvage,
};

/** What a salvage-mode read had to do (all zeros for a clean file). */
struct TraceRecoveryInfo
{
    bool salvaged = false;          //!< tail was dropped
    std::uint64_t keptEvents = 0;   //!< events in the recovered prefix
    std::uint64_t droppedPayloadBytes = 0; //!< varint-stage bytes cut
    std::uint64_t checkpointsVerified = 0; //!< CRC-valid checkpoints
};

/**
 * Capture-time feature storage of the traced encoding. Occupies the
 * byte that was reserved in the original version-1 header, so legacy
 * files read back as Unknown and new files stay readable by old
 * builds.
 */
enum class TraceStorageMode : std::uint8_t
{
    Unknown = 0, //!< legacy capture; storage mode not recorded
    Fp32 = 1,    //!< functional arrays held 4-byte floats
    Fp16 = 2,    //!< quantizeFeaturesFp16() storage (2-byte values)
};

/** Human-readable name of a storage mode ("fp32", "fp16", "unknown"). */
const char *traceStorageModeName(TraceStorageMode mode);

/** Capture metadata recorded in the trace-file header. */
struct TraceFileMeta
{
    std::string scene;    //!< scene name ("lego", ...)
    std::string encoding; //!< Encoding::name() of the traced model
    std::string model;    //!< modelName() of the traced model
    std::uint32_t width = 0;
    std::uint32_t height = 0;
    std::uint32_t threads = 0;      //!< parallelThreadCount() at capture
    std::uint32_t featureBytes = 0; //!< featureDim * kBytesPerChannel
    TraceStorageMode storageMode = TraceStorageMode::Unknown;
};

/**
 * Whether @p meta's featureBytes accounting is consistent with its
 * recorded capture-time storage mode. featureBytes is written as
 * featureDim x kBytesPerChannel — the 2-byte-per-channel DRAM model of
 * the paper — which is only faithful to the functional run when the
 * encoding's storage really was fp16 (featuresFp16() set) at capture:
 * an Fp32 capture moved 4-byte channels the trace under-counts.
 * Unknown (legacy files) is vacuously consistent. `cicero_trace
 * stats`/`replay` flag inconsistent captures.
 */
bool traceMetaStorageConsistent(const TraceFileMeta &meta);

/**
 * Workload summary persisted in a version-2 container: the StageWork
 * counters of the captured frame plus its fully-streaming StreamPlan
 * and vertex size. Kept as plain integers (mirroring
 * nerf/workload.hh's StageWork and nerf/encoding.hh's StreamPlan) so
 * the memory layer does not depend on the nerf layer; src/dse converts
 * both ways. These are exact capture-time integers, which is what
 * makes replayed accelerator stats bit-identical to live runs.
 */
struct TraceWorkloadSummary
{
    // StageWork mirror.
    std::uint64_t rays = 0;
    std::uint64_t samples = 0;
    std::uint64_t indexOps = 0;
    std::uint64_t vertexFetches = 0;
    std::uint64_t gatherBytes = 0;
    std::uint64_t interpOps = 0;
    std::uint64_t mlpMacs = 0;
    std::uint64_t compositeOps = 0;
    // StreamPlan mirror.
    std::uint64_t streamedBytes = 0;
    std::uint64_t randomBytes = 0;
    std::uint64_t ritEntries = 0;
    std::uint64_t ritBytes = 0;
    // Bytes of one vertex feature vector (featureDim x channel bytes).
    std::uint32_t vertexBytes = 0;
};

/**
 * Per-event-type accounting of a container's encoded payload — how
 * many events of each kind the stream holds and how many varint-stage
 * bytes each kind costs, plus how often the writer's same-bytes /
 * same-ray elisions fired. Observability groundwork for the
 * per-field-context codec work: it shows where the encoded bytes go.
 */
struct TraceEventBreakdown
{
    std::uint64_t accessEvents = 0;
    std::uint64_t accessBytes = 0; //!< varint-stage bytes of access events
    std::uint64_t rayEndEvents = 0;
    std::uint64_t rayEndBytes = 0;
    std::uint64_t flushEvents = 0;
    std::uint64_t flushBytes = 0;
    std::uint64_t checkpointEvents = 0; //!< embedded v3 checkpoints
    std::uint64_t checkpointBytes = 0;
    std::uint64_t terminatorBytes = 0;
    std::uint64_t sameBytesElisions = 0; //!< access size repeated, elided
    std::uint64_t sameRayElisions = 0;   //!< ray id repeated, elided
};

/** Event counts recorded in the trace-file header. */
struct TraceFileCounts
{
    std::uint64_t accesses = 0;
    std::uint64_t rayEnds = 0;
    std::uint64_t flushes = 0;

    /** Bytes of the equivalent raw in-memory MemAccess stream. */
    std::uint64_t
    rawStreamBytes() const
    {
        return accesses * sizeof(MemAccess);
    }
};

/**
 * TraceSink that persists the observed event stream into a `.ctrace`
 * container (file or memory buffer).
 *
 * The encoded payload is buffered in memory (a few bytes per access —
 * far smaller than the live stream) and finalized by close(): the
 * optional range-coder stage runs, then header + payload are written
 * in one pass. close() is idempotent and called by the destructor;
 * call it explicitly to observe counts/sizes or write failures.
 *
 * The file backend is crash-safe: close() writes to `<path>.tmp` and
 * atomically renames onto @p path, so the destination either holds the
 * previous content or a complete container — never a torn write. A
 * process killed mid-close leaves at worst a stale `.tmp` beside it.
 *
 * @throws IoError if the output file cannot be opened, written, or
 *         renamed into place.
 */
class TraceFileWriter : public TraceSink
{
  public:
    /** Write to @p path. */
    TraceFileWriter(const std::string &path, const TraceFileMeta &meta,
                    TraceCodec codec = TraceCodec::Range);

    /** Write into @p buffer (cleared first); no filesystem involved. */
    TraceFileWriter(std::vector<std::uint8_t> &buffer,
                    const TraceFileMeta &meta,
                    TraceCodec codec = TraceCodec::Range);

    ~TraceFileWriter() override;

    TraceFileWriter(const TraceFileWriter &) = delete;
    TraceFileWriter &operator=(const TraceFileWriter &) = delete;

    void onAccess(const MemAccess &access) override;
    void onRayEnd(std::uint32_t rayId) override;
    void onFlush() override;

    /**
     * Attach the captured frame's workload summary; must be called
     * before close(). Capture paths fill it from the StageWork the
     * traced render returned plus the encoding's streaming footprint.
     */
    void
    setWorkloadSummary(const TraceWorkloadSummary &summary)
    {
        _workload = summary;
        _hasWorkload = true;
    }

    /** Finalize the container. Idempotent. */
    void close();

    const TraceFileCounts &counts() const { return _counts; }

    /** Container size in bytes (valid after close()). */
    std::uint64_t fileBytes() const { return _fileBytes; }

    /** Stored (post-codec) payload size in bytes (after close()). */
    std::uint64_t payloadBytes() const { return _storedPayloadBytes; }

  private:
    void putVarint(std::uint64_t v);
    void putSignedDelta(std::int64_t d);
    void noteEvent();
    void emitCheckpoint();

    TraceFileMeta _meta;
    TraceCodec _codec;
    TraceFileCounts _counts;
    TraceWorkloadSummary _workload;
    bool _hasWorkload = false;

    std::string _path;                     //!< empty => memory backend
    std::vector<std::uint8_t> *_memoryOut = nullptr;

    std::vector<std::uint8_t> _payload; //!< varint event stream
    std::uint64_t _lastAddr = 0;
    std::uint32_t _lastBytes = 0;
    std::uint32_t _lastRay = 0;
    bool _haveBytes = false;

    std::uint64_t _eventCount = 0;          //!< events emitted so far
    std::uint64_t _eventsSinceCheckpoint = 0;
    std::size_t _checkpointStart = 0; //!< payload offset the next CRC covers from

    bool _closed = false;
    std::uint64_t _fileBytes = 0;
    std::uint64_t _storedPayloadBytes = 0;
};

/**
 * Parses a `.ctrace` container and replays it into TraceSinks.
 *
 * The payload is decoded to the varint stage once at construction and
 * fully validated — every event parses, every version-3 checkpoint
 * CRC matches, the walked counts agree with the header; replay() then
 * re-walks that stream, so a reader replays any number of times (the
 * capture-once / replay-many pattern).
 *
 * @throws IoError on I/O failure; TraceFileError on bad magic,
 *         unsupported version or codec, and truncated or corrupt
 *         containers (in Strict mode — Salvage mode instead recovers
 *         the longest checksum-valid event prefix; see recovery()).
 */
class TraceFileReader
{
  public:
    explicit TraceFileReader(const std::string &path,
                             TraceReadMode mode = TraceReadMode::Strict);

    /** Parse an in-memory container (the bytes are not retained). */
    TraceFileReader(const std::uint8_t *data, std::size_t size,
                    TraceReadMode mode = TraceReadMode::Strict);
    explicit TraceFileReader(const std::vector<std::uint8_t> &buffer,
                             TraceReadMode mode = TraceReadMode::Strict);

    const TraceFileMeta &meta() const { return _meta; }
    const TraceFileCounts &counts() const { return _counts; }
    TraceCodec codec() const { return _codec; }

    /** Container version the file was written with (1, 2, or 3). */
    std::uint16_t version() const { return _version; }

    /** What a Salvage-mode read recovered (all zeros when clean). */
    const TraceRecoveryInfo &recovery() const { return _recovery; }

    /** True when a workload summary was captured (version >= 2). */
    bool hasWorkloadSummary() const { return _hasWorkload; }

    /** The captured workload summary; zeros when absent. */
    const TraceWorkloadSummary &workloadSummary() const
    {
        return _workload;
    }

    /**
     * Per-event-type byte accounting of the decoded varint payload —
     * one extra walk over the in-memory event stream, no replay sink
     * involved.
     */
    TraceEventBreakdown eventBreakdown() const;

    /** Total container size in bytes. */
    std::uint64_t fileBytes() const { return _fileBytes; }

    /** Stored (post-codec) payload size in bytes. */
    std::uint64_t payloadBytes() const { return _storedPayloadBytes; }

    /**
     * Compression ratio: container size over the raw
     * sizeof(MemAccess)-stream size (smaller is better).
     */
    double
    compressionRatio() const
    {
        std::uint64_t raw = _counts.rawStreamBytes();
        return raw ? static_cast<double>(_fileBytes) / raw : 0.0;
    }

    /**
     * Replay the recorded stream into @p sink: every onAccess,
     * onRayEnd and onFlush event exactly as captured, in order.
     * Callable any number of times.
     */
    void replay(TraceSink *sink) const;

  private:
    void parse(const std::uint8_t *data, std::size_t size,
               TraceReadMode mode);
    void validatePayload(TraceReadMode mode);

    TraceFileMeta _meta;
    TraceFileCounts _counts;
    TraceCodec _codec = TraceCodec::Varint;
    std::uint16_t _version = kTraceFileVersion;
    TraceWorkloadSummary _workload;
    bool _hasWorkload = false;
    std::uint64_t _fileBytes = 0;
    std::uint64_t _storedPayloadBytes = 0;
    TraceRecoveryInfo _recovery;
    std::vector<std::uint8_t> _events; //!< decoded varint event stream
};

} // namespace cicero

#endif // CICERO_MEMORY_TRACEFILE_HH
