/**
 * @file
 * Memory access trace plumbing.
 *
 * Functional rendering emits every feature-gather access into a
 * TraceSink; the DRAM, cache and SRAM-bank models in this module are all
 * sinks, so arbitrarily long traces stream through them without being
 * materialized. A ray boundary marker lets sinks that care about
 * concurrency (the bank-conflict simulator) reconstruct per-ray streams.
 */

#ifndef CICERO_MEMORY_TRACE_HH
#define CICERO_MEMORY_TRACE_HH

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

namespace cicero {

/** One memory access emitted during Feature Gathering. */
struct MemAccess
{
    std::uint64_t addr = 0; //!< byte address in the encoding's space
    std::uint32_t bytes = 0;
    std::uint32_t rayId = 0; //!< issuing camera ray
};

/**
 * Consumer of a gather access stream. Implementations must tolerate any
 * interleaving of onAccess and onRayEnd, and multiple onFlush calls.
 */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** One feature fetch. */
    virtual void onAccess(const MemAccess &access) = 0;

    /** All accesses of ray @p rayId have been emitted. */
    virtual void onRayEnd(std::uint32_t rayId) { (void)rayId; }

    /** End of the trace; drain any buffered state. */
    virtual void onFlush() {}
};

/**
 * Fans a trace out to several sinks so one functional render can feed
 * the DRAM, cache and bank models simultaneously.
 */
class TraceTee : public TraceSink
{
  public:
    void addSink(TraceSink *sink) { _sinks.push_back(sink); }

    void
    onAccess(const MemAccess &access) override
    {
        for (auto *s : _sinks)
            s->onAccess(access);
    }

    void
    onRayEnd(std::uint32_t rayId) override
    {
        for (auto *s : _sinks)
            s->onRayEnd(rayId);
    }

    void
    onFlush() override
    {
        for (auto *s : _sinks)
            s->onFlush();
    }

  private:
    std::vector<TraceSink *> _sinks;
};

/**
 * Models GPU warp scheduling: buffers the per-ray access streams of
 * `ways` rays and forwards them round-robin (one access per ray per
 * round). A GPU runs thousands of threads concurrently, so the DRAM
 * sees their requests interleaved — which is precisely what destroys
 * the intra-ray locality a single-ray trace would overstate (Fig. 4).
 */
class WarpInterleaver : public TraceSink
{
  public:
    explicit WarpInterleaver(std::uint32_t ways = 32)
        : _ways(ways ? ways : 1)
    {
    }

    void addSink(TraceSink *sink) { _out.addSink(sink); }

    void
    onAccess(const MemAccess &access) override
    {
        if (access.rayId != _currentRay && !_current.empty())
            onRayEnd(_currentRay);
        _currentRay = access.rayId;
        _current.push_back(access);
    }

    void
    onRayEnd(std::uint32_t rayId) override
    {
        (void)rayId;
        if (_current.empty())
            return;
        // The group's ray id is fixed here, at enqueue time — drain()
        // must never synthesize one for downstream sinks.
        _pending.push_back(PendingRay{_currentRay, std::move(_current)});
        _current.clear();
        _currentRay = ~0u;
        if (_pending.size() >= _ways)
            drain();
    }

    void
    onFlush() override
    {
        if (!_current.empty())
            onRayEnd(_currentRay);
        while (!_pending.empty())
            drain();
        _out.onFlush();
    }

  private:
    /** A completed per-ray access group awaiting interleaved replay. */
    struct PendingRay
    {
        std::uint32_t rayId;
        std::vector<MemAccess> accesses;
    };

    void
    drain()
    {
        std::size_t n = std::min<std::size_t>(_ways, _pending.size());
        bool any = true;
        for (std::size_t i = 0; any; ++i) {
            any = false;
            for (std::size_t r = 0; r < n; ++r) {
                if (i < _pending[r].accesses.size()) {
                    _out.onAccess(_pending[r].accesses[i]);
                    any = true;
                }
            }
        }
        for (std::size_t r = 0; r < n; ++r) {
            assert(!_pending[r].accesses.empty());
            _out.onRayEnd(_pending[r].rayId);
        }
        _pending.erase(_pending.begin(), _pending.begin() + n);
    }

    std::uint32_t _ways;
    TraceTee _out;
    std::uint32_t _currentRay = ~0u;
    std::vector<MemAccess> _current;
    std::vector<PendingRay> _pending;
};

/**
 * Deterministic parallel trace capture.
 *
 * A traced render used to be serial by necessity: the access-stream
 * order is part of the memory-model contract, and a shared TraceSink
 * cannot be fed from several workers at once. RayTraceBuffer decouples
 * capture from delivery: each ray (more generally, each *slot* of a
 * canonically ordered work list) records its MemAccess stream into a
 * private buffer during a parallel render, and replay() then walks the
 * slots in canonical order, reproducing the serial TraceSink stream
 * byte-for-byte — accesses, onRayEnd markers and all.
 *
 * Concurrency contract: distinct slots may record concurrently; a
 * single slot is only ever touched by one thread. replay() must be
 * called after the parallel loop has completed (it is not itself
 * thread-safe). replay() does not flush the downstream sink — the
 * caller ends the trace with downstream->onFlush(), exactly where the
 * serial code did.
 *
 * Windowed prefix drain: waiting for the whole frame before replaying
 * buffers every ray's accesses at once, so peak memory grows with the
 * frame. Workers can instead call markCompleted(begin, end) once a
 * chunk of slots will receive no further events; whenever the
 * completed set forms a prefix beyond what has been delivered, one
 * thread (guarded by a drain baton) streams those slots into the
 * downstream sink — in canonical order, while trailing chunks still
 * render — and frees their storage. The final replay() delivers
 * whatever remains, so the stream stays byte-identical to the
 * full-buffer path no matter how completions interleave. The
 * downstream sink is only ever entered by one thread at a time, with
 * the baton mutex ordering successive drains.
 */
class RayTraceBuffer
{
  public:
    /**
     * @param slotCount  number of rays (work items) in canonical order.
     * @param downstream sink receiving the ordered replay.
     */
    RayTraceBuffer(std::size_t slotCount, TraceSink *downstream);

    /**
     * Lightweight per-slot recording sink, handed to the per-ray render
     * in place of the real downstream sink. Cheap to construct; value
     * semantics (holds a pointer into the parent buffer).
     */
    class SlotSink : public TraceSink
    {
      public:
        void onAccess(const MemAccess &access) override;
        void onRayEnd(std::uint32_t rayId) override;

      private:
        friend class RayTraceBuffer;
        SlotSink(RayTraceBuffer &buf, std::size_t slot)
            : _buf(&buf), _slot(slot)
        {
        }
        RayTraceBuffer *_buf;
        std::size_t _slot;
    };

    /** The recording sink of slot @p slot (0 .. slotCount-1). */
    SlotSink sink(std::size_t slot)
    {
        assert(slot < _slots.size());
        return SlotSink(*this, slot);
    }

    /**
     * Note that slots [begin, end) are complete — no further events
     * will be recorded into them — and opportunistically drain the
     * completed prefix into the downstream sink. Thread-safe; called
     * by workers as their chunks finish. Purely an optimization: peak
     * buffered memory drops from the whole frame to roughly the
     * out-of-order window, while the delivered stream is unchanged.
     */
    void markCompleted(std::size_t begin, std::size_t end);

    /**
     * Replay every not-yet-drained slot's recorded stream into the
     * downstream sink, in slot order: all accesses of slot 0, its
     * onRayEnd (if recorded), then slot 1, ... Does not call
     * onFlush(). Call after the parallel loop; with markCompleted in
     * play this delivers only the un-drained suffix.
     */
    void replay();

    /**
     * High-water mark of buffered accesses (windowed-drain
     * effectiveness metric): with prefix draining this stays near the
     * completion out-of-order window instead of the full trace size.
     */
    std::uint64_t
    peakBufferedAccesses() const
    {
        return _peakBuffered.load(std::memory_order_relaxed);
    }

  private:
    struct Slot
    {
        std::vector<MemAccess> accesses;
        std::uint32_t endRayId = 0;
        bool ended = false;
    };

    void drainRange(std::size_t begin, std::size_t end);
    void tryDrain();

    std::vector<Slot> _slots;
    TraceSink *_downstream;

    std::atomic<std::uint64_t> _buffered{0};
    std::atomic<std::uint64_t> _peakBuffered{0};

    std::mutex _stateMutex; //!< guards _completed and _drained
    std::mutex _drainMutex; //!< drain baton: one drainer at a time
    std::map<std::size_t, std::size_t> _completed; //!< merged intervals
    std::size_t _drained = 0; //!< slots [0, _drained) already delivered
};

/** A sink that simply stores the trace (tests and small experiments). */
class TraceRecorder : public TraceSink
{
  public:
    void onAccess(const MemAccess &access) override
    {
        _trace.push_back(access);
    }

    const std::vector<MemAccess> &trace() const { return _trace; }
    void clear() { _trace.clear(); }

  private:
    std::vector<MemAccess> _trace;
};

} // namespace cicero

#endif // CICERO_MEMORY_TRACE_HH
