#include "memory/dram_model.hh"

#include <algorithm>

namespace cicero {

DramModel::DramModel(const DramConfig &config) : _config(config)
{
}

void
DramModel::onAccess(const MemAccess &access)
{
    // Split the access into bursts; each burst is classified separately.
    std::uint64_t first = access.addr / _config.burstBytes;
    std::uint64_t last = (access.addr + std::max(access.bytes, 1u) - 1) /
                         _config.burstBytes;
    for (std::uint64_t b = first; b <= last; ++b) {
        // Continuity (Fig. 4): the burst repeats or directly extends the
        // previous one. The very first access has no predecessor and is
        // random by definition.
        bool streaming = _hasLast &&
                         (b == _lastBurst || b == _lastBurst + 1);
        _lastBurst = b;
        _hasLast = true;

        ++_stats.accesses;
        _stats.bytes += _config.burstBytes;
        if (streaming) {
            ++_stats.streamingAccesses;
            _stats.streamingBytes += _config.burstBytes;
        } else {
            ++_stats.randomAccesses;
            _stats.randomBytes += _config.burstBytes;
        }
    }
}

void
DramModel::reset()
{
    _stats = DramStats{};
    _lastBurst = ~0ull;
    _hasLast = false;
}

double
DramModel::energyNj() const
{
    double pj = _stats.streamingBytes * _config.streamEnergyPjPerByte +
                _stats.randomBytes * _config.randomEnergyPjPerByte;
    return pj * 1e-3;
}

double
DramModel::timeMs() const
{
    // Streaming bytes are bandwidth-bound; each random burst additionally
    // pays the row-activation latency (amortized over banks).
    double streamS = _stats.bytes / (_config.bandwidthGBs * 1e9);
    double randomS = _stats.randomAccesses *
                     (_config.randomAccessNs * 1e-9) / _config.numBanks;
    return (streamS + randomS) * 1e3;
}

double
DramModel::streamingEnergyNj(std::uint64_t bytes) const
{
    return bytes * _config.streamEnergyPjPerByte * 1e-3;
}

double
DramModel::streamingTimeMs(std::uint64_t bytes) const
{
    return bytes / (_config.bandwidthGBs * 1e9) * 1e3;
}

} // namespace cicero
