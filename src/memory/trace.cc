#include "memory/trace.hh"

namespace cicero {

RayTraceBuffer::RayTraceBuffer(std::size_t slotCount,
                               TraceSink *downstream)
    : _slots(slotCount), _downstream(downstream)
{
    assert(downstream != nullptr);
}

void
RayTraceBuffer::SlotSink::onAccess(const MemAccess &access)
{
    _buf->_slots[_slot].accesses.push_back(access);
}

void
RayTraceBuffer::SlotSink::onRayEnd(std::uint32_t rayId)
{
    Slot &s = _buf->_slots[_slot];
    s.endRayId = rayId;
    s.ended = true;
}

void
RayTraceBuffer::replay()
{
    for (Slot &s : _slots) {
        for (const MemAccess &a : s.accesses)
            _downstream->onAccess(a);
        if (s.ended)
            _downstream->onRayEnd(s.endRayId);
        // Release the slot's storage as it drains so peak memory decays
        // over the replay instead of doubling inside downstream sinks
        // that buffer (e.g. WarpInterleaver).
        s.accesses = std::vector<MemAccess>();
    }
}

} // namespace cicero
