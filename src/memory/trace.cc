#include "memory/trace.hh"

namespace cicero {

RayTraceBuffer::RayTraceBuffer(std::size_t slotCount,
                               TraceSink *downstream)
    : _slots(slotCount), _downstream(downstream)
{
    assert(downstream != nullptr);
}

void
RayTraceBuffer::SlotSink::onAccess(const MemAccess &access)
{
    _buf->_slots[_slot].accesses.push_back(access);

    std::uint64_t cur =
        _buf->_buffered.fetch_add(1, std::memory_order_relaxed) + 1;
    std::uint64_t peak =
        _buf->_peakBuffered.load(std::memory_order_relaxed);
    while (peak < cur && !_buf->_peakBuffered.compare_exchange_weak(
                             peak, cur, std::memory_order_relaxed)) {
    }
}

void
RayTraceBuffer::SlotSink::onRayEnd(std::uint32_t rayId)
{
    Slot &s = _buf->_slots[_slot];
    s.endRayId = rayId;
    s.ended = true;
}

void
RayTraceBuffer::drainRange(std::size_t begin, std::size_t end)
{
    std::uint64_t delivered = 0;
    for (std::size_t i = begin; i < end; ++i) {
        Slot &s = _slots[i];
        for (const MemAccess &a : s.accesses)
            _downstream->onAccess(a);
        if (s.ended)
            _downstream->onRayEnd(s.endRayId);
        delivered += s.accesses.size();
        // Release the slot's storage as it drains so peak memory decays
        // over the replay instead of doubling inside downstream sinks
        // that buffer (e.g. WarpInterleaver).
        s.accesses = std::vector<MemAccess>();
    }
    _buffered.fetch_sub(delivered, std::memory_order_relaxed);
}

void
RayTraceBuffer::markCompleted(std::size_t begin, std::size_t end)
{
    if (begin >= end)
        return;
    assert(end <= _slots.size());
    {
        std::lock_guard<std::mutex> lk(_stateMutex);
        // Merge [begin, end) into the interval set: absorb any
        // intervals it touches, then insert the union.
        auto it = _completed.lower_bound(begin);
        if (it != _completed.begin()) {
            auto prev = std::prev(it);
            if (prev->second >= begin)
                it = prev;
        }
        while (it != _completed.end() && it->first <= end) {
            begin = std::min(begin, it->first);
            end = std::max(end, it->second);
            it = _completed.erase(it);
        }
        _completed[begin] = end;
    }
    tryDrain();
}

void
RayTraceBuffer::tryDrain()
{
    // The drain baton: only one thread delivers to the (single-
    // threaded) downstream sink; others just mark completion and move
    // on. A completion that lands while the baton holder is past its
    // last check waits for the next markCompleted or the final
    // replay() — correctness never depends on eager drains.
    while (_drainMutex.try_lock()) {
        std::size_t begin, end;
        {
            std::lock_guard<std::mutex> lk(_stateMutex);
            // Discard intervals already covered by the drained prefix
            // (a stray duplicate markCompleted must never rewind
            // _drained and re-deliver events).
            auto it = _completed.begin();
            while (it != _completed.end() && it->second <= _drained)
                it = _completed.erase(it);
            if (it == _completed.end() || it->first > _drained) {
                _drainMutex.unlock();
                return;
            }
            begin = _drained;
            end = it->second;
            _completed.erase(it);
            // _drained advances only after delivery, but holding the
            // baton makes the gap invisible to other drainers.
        }
        drainRange(begin, end);
        {
            std::lock_guard<std::mutex> lk(_stateMutex);
            _drained = end;
        }
        _drainMutex.unlock();
        // Loop: a completion may have extended the prefix while this
        // thread was draining.
    }
}

void
RayTraceBuffer::replay()
{
    // Post-loop, single-threaded by contract: deliver whatever the
    // windowed drain has not already streamed out.
    drainRange(_drained, _slots.size());
    _drained = _slots.size();
    _completed.clear();
}

} // namespace cicero
