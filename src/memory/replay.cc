#include "memory/replay.hh"

#include <cstdio>

namespace cicero {

namespace {

std::string
fmt(const char *format, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), format, v);
    return buf;
}

std::string
u64s(std::uint64_t v)
{
    return std::to_string(v);
}

std::string
cacheStatsFields(const CacheStats &s)
{
    return "\"accesses\": " + u64s(s.accesses) +
           ", \"hits\": " + u64s(s.hits) +
           ", \"misses\": " + u64s(s.misses) +
           ", \"miss_rate\": " + fmt("%.6f", s.missRate());
}

} // namespace

CacheStackResult
runCacheStack(const TraceSourceFn &source, const CacheStackConfig &config)
{
    LruCache lru(config.cache);
    BeladyCache belady(config.cache);
    WarpInterleaver interleaver(config.warpWays);
    interleaver.addSink(&lru);
    interleaver.addSink(&belady);
    source(&interleaver);
    return CacheStackResult{lru.stats(), belady.simulate()};
}

BankConflictStats
runBankStack(const TraceSourceFn &source, const SramBankConfig &config)
{
    BankConflictSim sim(config);
    source(&sim);
    return sim.stats();
}

DramStackResult
runDramStack(const TraceSourceFn &source, const DramConfig &config)
{
    DramModel dram(config);
    source(&dram);
    return DramStackResult{dram.stats(), dram.energyNj(), dram.timeMs()};
}

std::string
statsJson(const CacheStackResult &result)
{
    return "{\"stack\": \"cache\", \"lru\": {" +
           cacheStatsFields(result.lru) + "}, \"belady\": {" +
           cacheStatsFields(result.belady) + "}}";
}

std::string
statsJson(const BankConflictStats &stats)
{
    return "{\"stack\": \"bank\", \"requests\": " + u64s(stats.requests) +
           ", \"stalls\": " + u64s(stats.stalls) +
           ", \"cycles\": " + u64s(stats.cycles) +
           ", \"fetches\": " + u64s(stats.fetches) +
           ", \"conflict_rate\": " + fmt("%.6f", stats.conflictRate()) +
           "}";
}

std::string
statsJson(const DramStackResult &result)
{
    const DramStats &s = result.stats;
    return "{\"stack\": \"dram\", \"accesses\": " + u64s(s.accesses) +
           ", \"streaming_accesses\": " + u64s(s.streamingAccesses) +
           ", \"random_accesses\": " + u64s(s.randomAccesses) +
           ", \"bytes\": " + u64s(s.bytes) +
           ", \"streaming_bytes\": " + u64s(s.streamingBytes) +
           ", \"random_bytes\": " + u64s(s.randomBytes) +
           ", \"non_streaming_fraction\": " +
           fmt("%.6f", s.nonStreamingFraction()) +
           ", \"energy_nj\": " + fmt("%.3f", result.energyNj) +
           ", \"time_ms\": " + fmt("%.6f", result.timeMs) + "}";
}

} // namespace cicero
