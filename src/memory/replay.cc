#include "memory/replay.hh"

#include <cstdio>

namespace cicero {

namespace {

std::string
fmt(const char *format, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), format, v);
    return buf;
}

std::string
u64s(std::uint64_t v)
{
    return std::to_string(v);
}

std::string
cacheStatsFields(const CacheStats &s)
{
    return "\"accesses\": " + u64s(s.accesses) +
           ", \"hits\": " + u64s(s.hits) +
           ", \"misses\": " + u64s(s.misses) +
           ", \"miss_rate\": " + fmt("%.6f", s.missRate());
}

} // namespace

namespace {

/** Ledger pricing of a cache run: SRAM line reads + DRAM line fills. */
double
cacheEnergyNj(const CacheStats &s, const CacheConfig &cache,
              const EnergyConstants &energy)
{
    EnergyLedger ledger(energy);
    ledger.addSramBytes("sram", s.accesses * cache.lineBytes);
    ledger.addDramRandomBytes("fill", s.misses * cache.lineBytes);
    return ledger.totalNj();
}

} // namespace

CacheStackResult
runCacheStack(const TraceSourceFn &source, const CacheStackConfig &config)
{
    LruCache lru(config.cache);
    BeladyCache belady(config.cache);
    WarpInterleaver interleaver(config.warpWays);
    interleaver.addSink(&lru);
    interleaver.addSink(&belady);
    source(&interleaver);
    CacheStackResult result{lru.stats(), belady.simulate(), 0.0, 0.0};
    result.lruEnergyNj =
        cacheEnergyNj(result.lru, config.cache, config.energy);
    result.beladyEnergyNj =
        cacheEnergyNj(result.belady, config.cache, config.energy);
    return result;
}

BankStackResult
runBankStack(const TraceSourceFn &source, const SramBankConfig &config,
             const EnergyConstants &energy)
{
    BankConflictSim sim(config);
    source(&sim);
    BankStackResult result{sim.stats(), 0.0};
    // Completed fetches read a feature vector from SRAM; every stalled
    // attempt re-issues, paying the access again.
    EnergyLedger ledger(energy);
    ledger.addSramBytes("sram", (result.stats.fetches +
                                 result.stats.stalls) *
                                    config.featureBytes);
    result.energyNj = ledger.totalNj();
    return result;
}

DramStackResult
runDramStack(const TraceSourceFn &source, const DramConfig &config)
{
    DramModel dram(config);
    source(&dram);
    return DramStackResult{dram.stats(), dram.energyNj(), dram.timeMs()};
}

std::string
statsJson(const CacheStackResult &result)
{
    return "{\"stack\": \"cache\", \"lru\": {" +
           cacheStatsFields(result.lru) +
           ", \"energy_nj\": " + fmt("%.3f", result.lruEnergyNj) +
           "}, \"belady\": {" + cacheStatsFields(result.belady) +
           ", \"energy_nj\": " + fmt("%.3f", result.beladyEnergyNj) +
           "}}";
}

std::string
statsJson(const BankStackResult &result)
{
    const BankConflictStats &stats = result.stats;
    return "{\"stack\": \"bank\", \"requests\": " + u64s(stats.requests) +
           ", \"stalls\": " + u64s(stats.stalls) +
           ", \"cycles\": " + u64s(stats.cycles) +
           ", \"fetches\": " + u64s(stats.fetches) +
           ", \"conflict_rate\": " + fmt("%.6f", stats.conflictRate()) +
           ", \"energy_nj\": " + fmt("%.3f", result.energyNj) + "}";
}

std::string
statsJson(const DramStackResult &result)
{
    const DramStats &s = result.stats;
    return "{\"stack\": \"dram\", \"accesses\": " + u64s(s.accesses) +
           ", \"streaming_accesses\": " + u64s(s.streamingAccesses) +
           ", \"random_accesses\": " + u64s(s.randomAccesses) +
           ", \"bytes\": " + u64s(s.bytes) +
           ", \"streaming_bytes\": " + u64s(s.streamingBytes) +
           ", \"random_bytes\": " + u64s(s.randomBytes) +
           ", \"non_streaming_fraction\": " +
           fmt("%.6f", s.nonStreamingFraction()) +
           ", \"energy_nj\": " + fmt("%.3f", result.energyNj) +
           ", \"time_ms\": " + fmt("%.6f", result.timeMs) + "}";
}

} // namespace cicero
