/**
 * @file
 * On-chip SRAM bank-conflict simulation (paper Sec. II-D / IV-B).
 *
 * The baseline layout is *feature-major*: all channels of a feature
 * vector live in one bank, so concurrent rays gathering different feature
 * vectors collide whenever two vectors map to the same bank. Cicero's
 * *channel-major* layout spreads channels across banks and dedicates each
 * PE to one bank, which makes conflicts structurally impossible; the
 * simulator verifies this property rather than assuming it.
 */

#ifndef CICERO_MEMORY_SRAM_BANK_MODEL_HH
#define CICERO_MEMORY_SRAM_BANK_MODEL_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "memory/trace.hh"

namespace cicero {

/** The two on-chip data layout strategies compared in the paper. */
enum class SramLayout
{
    FeatureMajor, //!< whole feature vector in one bank (prior accelerators)
    ChannelMajor, //!< channel c of every vector in bank c (Cicero)
};

/** Geometry of the banked feature buffer. */
struct SramBankConfig
{
    std::uint32_t numBanks = 16;
    std::uint32_t portsPerBank = 1;
    std::uint32_t concurrentRays = 16; //!< parallel ray queries (PE groups)
    std::uint32_t featureBytes = 32;   //!< bytes of one feature vector
    std::uint32_t channelBytes = 2;    //!< bytes of one channel
    SramLayout layout = SramLayout::FeatureMajor;
};

/** Results of a bank-conflict simulation. */
struct BankConflictStats
{
    std::uint64_t requests = 0;  //!< feature-vector fetch attempts issued
    std::uint64_t stalls = 0;    //!< attempts that lost bank arbitration
    std::uint64_t cycles = 0;    //!< total arbitration cycles
    std::uint64_t fetches = 0;   //!< feature-vector fetches completed

    /** Fraction of issue attempts that conflicted, as in Fig. 6. */
    double
    conflictRate() const
    {
        return requests ? static_cast<double>(stalls) / requests : 0.0;
    }
};

/**
 * Cycle-approximate simulator of concurrent rays gathering feature
 * vectors from a banked SRAM.
 *
 * Fed as a TraceSink: accesses buffer per ray; completed rays enter a
 * pending queue; `concurrentRays` slots replay their fetch streams in
 * lockstep, arbitrating for banks each cycle. Feature-major mode issues
 * one whole-vector request per ray per cycle; channel-major mode issues
 * the schedule of Sec. IV-B (PEs sweep channels, M samples in parallel)
 * which by construction never conflicts — the simulator still checks.
 */
class BankConflictSim : public TraceSink
{
  public:
    explicit BankConflictSim(const SramBankConfig &config = {});

    void onAccess(const MemAccess &access) override;
    void onRayEnd(std::uint32_t rayId) override;
    void onFlush() override;

    const BankConflictStats &stats() const { return _stats; }
    const SramBankConfig &config() const { return _config; }
    void reset();

    /** Bank index a feature-vector fetch contends for (feature-major). */
    std::uint32_t bankOfVector(std::uint64_t addr) const;

  private:
    void drain(bool force);
    void simulateBatch(std::vector<std::deque<std::uint32_t>> &slots);

    SramBankConfig _config;
    BankConflictStats _stats;

    std::vector<MemAccess> _currentRay;
    std::uint32_t _currentRayId = ~0u;
    std::deque<std::deque<std::uint32_t>> _pendingRays;
};

} // namespace cicero

#endif // CICERO_MEMORY_SRAM_BANK_MODEL_HH
