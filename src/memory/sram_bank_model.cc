#include "memory/sram_bank_model.hh"

#include <algorithm>

namespace cicero {

BankConflictSim::BankConflictSim(const SramBankConfig &config)
    : _config(config)
{
}

std::uint32_t
BankConflictSim::bankOfVector(std::uint64_t addr) const
{
    return (addr / _config.featureBytes) % _config.numBanks;
}

void
BankConflictSim::onAccess(const MemAccess &access)
{
    if (access.rayId != _currentRayId && !_currentRay.empty())
        onRayEnd(_currentRayId);
    _currentRayId = access.rayId;
    _currentRay.push_back(access);
}

void
BankConflictSim::onRayEnd(std::uint32_t rayId)
{
    (void)rayId;
    if (_currentRay.empty())
        return;

    std::deque<std::uint32_t> banks;
    if (_config.layout == SramLayout::FeatureMajor) {
        // One whole-vector request per access; it contends for the single
        // bank holding the vector.
        for (const MemAccess &a : _currentRay)
            banks.push_back(bankOfVector(a.addr));
    } else {
        // Channel-major: PE c always reads bank c. A ray's fetch of one
        // vector becomes a column access where each PE hits its own bank;
        // the request is tagged by the slot's dedicated bank lane, i.e.
        // requests from different samples of the same lane serialize over
        // ports but never collide across lanes. We model the per-vector
        // request as contending for bank (slot-assigned), handled in
        // simulateBatch; the deque records one token per vector.
        for (std::size_t i = 0; i < _currentRay.size(); ++i)
            banks.push_back(0);
    }
    _currentRay.clear();
    _currentRayId = ~0u;
    _pendingRays.push_back(std::move(banks));
    drain(false);
}

void
BankConflictSim::onFlush()
{
    if (!_currentRay.empty())
        onRayEnd(_currentRayId);
    drain(true);
}

void
BankConflictSim::drain(bool force)
{
    // Simulate in batches of `concurrentRays` complete rays so memory
    // stays bounded for arbitrarily long traces.
    while (_pendingRays.size() >= _config.concurrentRays ||
           (force && !_pendingRays.empty())) {
        std::vector<std::deque<std::uint32_t>> slots;
        std::uint32_t n = std::min<std::uint32_t>(
            _config.concurrentRays,
            static_cast<std::uint32_t>(_pendingRays.size()));
        for (std::uint32_t i = 0; i < n; ++i) {
            slots.push_back(std::move(_pendingRays.front()));
            _pendingRays.pop_front();
        }
        simulateBatch(slots);
    }
}

void
BankConflictSim::simulateBatch(std::vector<std::deque<std::uint32_t>> &slots)
{
    const std::uint32_t B = _config.numBanks;
    const std::uint32_t M = _config.portsPerBank;

    if (_config.layout == SramLayout::ChannelMajor) {
        // Sec. IV-B schedule: every PE owns one bank; per cycle the B
        // banks deliver B channel words through each of the M ports, so
        // floor(B * M / channels) whole vectors complete per cycle with
        // zero arbitration failures.
        std::uint64_t vectors = 0;
        for (auto &s : slots)
            vectors += s.size();
        std::uint32_t channels =
            std::max(1u, _config.featureBytes / _config.channelBytes);
        std::uint64_t vectorsPerCycle =
            std::max<std::uint64_t>(1, (std::uint64_t)B * M / channels);
        _stats.requests += vectors;
        _stats.fetches += vectors;
        _stats.cycles += (vectors + vectorsPerCycle - 1) / vectorsPerCycle;
        return;
    }

    // Feature-major: per cycle, each slot with work issues its head
    // request; each bank grants up to M of them; losers retry.
    std::vector<std::uint32_t> grants(B);
    bool anyWork = true;
    while (anyWork) {
        anyWork = false;
        std::fill(grants.begin(), grants.end(), 0);
        ++_stats.cycles;
        for (auto &slot : slots) {
            if (slot.empty())
                continue;
            anyWork = true;
            std::uint32_t bank = slot.front();
            ++_stats.requests;
            if (grants[bank] < M) {
                ++grants[bank];
                ++_stats.fetches;
                slot.pop_front();
            } else {
                ++_stats.stalls;
            }
        }
        if (!anyWork)
            --_stats.cycles; // final empty iteration does not cost a cycle
    }
}

void
BankConflictSim::reset()
{
    _stats = BankConflictStats{};
    _currentRay.clear();
    _currentRayId = ~0u;
    _pendingRays.clear();
}

} // namespace cicero
