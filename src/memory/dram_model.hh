/**
 * @file
 * DRAM timing/energy model.
 *
 * Modeled after a 4-channel LPDDR3-1600 part as in the paper's setup
 * (Sec. V): accesses that hit the open row of a bank count as streaming;
 * row misses count as random. The paper's published energy ratios are
 * used: random : streaming : SRAM approx. 25 : 8.3 : 1 per byte (i.e.
 * random/streaming = 3, random/SRAM = 25).
 */

#ifndef CICERO_MEMORY_DRAM_MODEL_HH
#define CICERO_MEMORY_DRAM_MODEL_HH

#include <cstdint>
#include <vector>

#include "memory/trace.hh"

namespace cicero {

/** Configuration of the DRAM device model. */
struct DramConfig
{
    std::uint32_t numBanks = 8;
    std::uint32_t rowBytes = 2048;      //!< row-buffer size per bank
    std::uint32_t burstBytes = 64;      //!< minimum transfer granularity
    double bandwidthGBs = 25.6;         //!< peak streaming bandwidth
    double randomAccessNs = 45.0;       //!< latency of a row-miss access
    double streamEnergyPjPerByte = 33.3; //!< energy of a streaming byte
    double randomEnergyPjPerByte = 100.0; //!< energy of a random byte
};

/** Aggregate DRAM statistics accumulated over a trace. */
struct DramStats
{
    std::uint64_t accesses = 0;
    std::uint64_t streamingAccesses = 0;
    std::uint64_t randomAccesses = 0;
    std::uint64_t bytes = 0;
    std::uint64_t streamingBytes = 0;
    std::uint64_t randomBytes = 0;

    double nonStreamingFraction() const
    {
        return accesses ? static_cast<double>(randomAccesses) / accesses
                        : 0.0;
    }
};

/**
 * Streaming-vs-random DRAM classifier and energy/latency estimator.
 *
 * Feed it a gather access trace (as a TraceSink); it classifies each
 * burst by the paper's Fig. 4 notion of continuity: a burst is
 * *streaming* if it repeats or immediately follows the previously
 * accessed burst (a sequential stream the memory controller can prefetch
 * and keep within an open row); any jump is a *random* access.
 */
class DramModel : public TraceSink
{
  public:
    explicit DramModel(const DramConfig &config = DramConfig{});

    void onAccess(const MemAccess &access) override;

    const DramStats &stats() const { return _stats; }
    const DramConfig &config() const { return _config; }
    void reset();

    /** Total DRAM energy of the observed trace, in nanojoules. */
    double energyNj() const;

    /** Total DRAM time of the observed trace, in milliseconds. */
    double timeMs() const;

    /**
     * Energy of @p bytes transferred fully streaming, in nJ — used to
     * price the MVoxel streaming traffic of the FS data flow directly.
     */
    double streamingEnergyNj(std::uint64_t bytes) const;

    /** Time in ms of @p bytes transferred fully streaming. */
    double streamingTimeMs(std::uint64_t bytes) const;

  private:
    DramConfig _config;
    DramStats _stats;
    std::uint64_t _lastBurst = ~0ull; //!< previously accessed burst id
    bool _hasLast = false;
};

} // namespace cicero

#endif // CICERO_MEMORY_DRAM_MODEL_HH
