/**
 * @file
 * On-chip buffer (cache) models for the Fig. 5 characterization:
 * an LRU set-associative cache and a Belady (oracle replacement) cache,
 * matching the paper's "2 MB on-chip buffer with oracle replacement".
 */

#ifndef CICERO_MEMORY_CACHE_MODEL_HH
#define CICERO_MEMORY_CACHE_MODEL_HH

#include <algorithm>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "memory/trace.hh"

namespace cicero {

/** Shared cache geometry. */
struct CacheConfig
{
    std::uint64_t capacityBytes = 2ull << 20; //!< 2 MB as in the paper
    std::uint32_t lineBytes = 64;
    /**
     * Associativity: lines per set. 0 (the default) = fully
     * associative, the paper's generous baseline assumption; a real
     * design point sets e.g. 4/8/16 ways and pays extra conflict
     * misses — the DSE sweeps this axis to price that gap.
     */
    std::uint32_t ways = 0;

    std::uint64_t numLines() const { return capacityBytes / lineBytes; }

    /** Sets at the configured associativity (1 when fully assoc). */
    std::uint64_t numSets() const
    {
        if (ways == 0)
            return 1;
        return std::max<std::uint64_t>(1, numLines() / ways);
    }
};

/** Hit/miss statistics. */
struct CacheStats
{
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;

    double missRate() const
    {
        return accesses ? static_cast<double>(misses) / accesses : 0.0;
    }
};

/**
 * LRU cache simulated as a TraceSink.
 *
 * With CacheConfig::ways == 0 (the default) it is fully associative —
 * the generous assumption for the baseline: real caches only do
 * worse, so the measured inefficiency is a lower bound. With ways set
 * it models a set-associative cache (set = line mod numSets, LRU
 * within the set), which adds the conflict misses a real design point
 * pays; the DSE sweeps associativity through this path.
 */
class LruCache : public TraceSink
{
  public:
    explicit LruCache(const CacheConfig &config = CacheConfig{});

    void onAccess(const MemAccess &access) override;

    const CacheStats &stats() const { return _stats; }
    void reset();

  private:
    void touch(std::uint64_t line);
    void touchSetAssoc(std::uint64_t line);

    CacheConfig _config;
    CacheStats _stats;
    std::list<std::uint64_t> _lru; //!< front = most recent (fully assoc)
    std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator>
        _where;
    /**
     * Set-associative mode only: per-set resident lines, most
     * recently used at the front. Sets are at most `ways` long, so a
     * linear scan matches real hardware cost models and beats a
     * per-set map at these sizes.
     */
    std::vector<std::vector<std::uint64_t>> _sets;
};

/**
 * Belady/oracle-replacement cache. Because the oracle needs the future,
 * this is a two-pass simulator: record the line-ID sequence as the trace
 * streams in, then simulate() computes the optimal-replacement miss rate.
 */
class BeladyCache : public TraceSink
{
  public:
    explicit BeladyCache(const CacheConfig &config = CacheConfig{});

    void onAccess(const MemAccess &access) override;

    /** Run the oracle simulation over the recorded sequence. */
    CacheStats simulate() const;

    std::size_t recordedAccesses() const { return _sequence.size(); }
    void reset();

  private:
    CacheConfig _config;
    std::vector<std::uint32_t> _sequence; //!< compressed line IDs
    std::unordered_map<std::uint64_t, std::uint32_t> _lineId;
};

} // namespace cicero

#endif // CICERO_MEMORY_CACHE_MODEL_HH
