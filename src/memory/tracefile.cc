#include "memory/tracefile.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "common/fault.hh"

namespace cicero {

namespace {

// ---------------------------------------------------------------------
// Event framing
//
// Each event starts with a tag byte. The low 2 bits are the event
// type; access events use two more bits to elide fields that repeat
// the previous event's value (the common case by far).
// ---------------------------------------------------------------------

constexpr std::uint8_t kEvAccess = 0;
constexpr std::uint8_t kEvRayEnd = 1;
constexpr std::uint8_t kEvFlush = 2;
constexpr std::uint8_t kEvEnd = 3; //!< stream terminator
constexpr std::uint8_t kFlagSameBytes = 1u << 2;
constexpr std::uint8_t kFlagSameRay = 1u << 3;

//! Version-3 checkpoint: the terminator type with bit 2 set, followed
//! by varint(cumulative event count) + varint(section CRC32). Old
//! writers never set high bits on non-access tags, so the encoding is
//! unambiguous across versions.
constexpr std::uint8_t kFlagCheckpoint = 1u << 2;
constexpr std::uint8_t kEvCheckpoint = kEvEnd | kFlagCheckpoint;

// ---------------------------------------------------------------------
// CRC32 (IEEE 802.3 polynomial, table-driven) — the per-section
// payload checksums and the header checksum of version-3 containers.
// ---------------------------------------------------------------------

struct Crc32Table
{
    std::uint32_t t[256];

    Crc32Table()
    {
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
    }
};

std::uint32_t
crc32(const std::uint8_t *data, std::size_t n,
      std::uint32_t seed = 0)
{
    static const Crc32Table table;
    std::uint32_t c = seed ^ 0xFFFFFFFFu;
    for (std::size_t i = 0; i < n; ++i)
        c = table.t[(c ^ data[i]) & 0xFF] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

inline std::uint64_t
zigzag(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t
unzigzag(std::uint64_t v)
{
    return static_cast<std::int64_t>(v >> 1) ^
           -static_cast<std::int64_t>(v & 1);
}

void
appendVarint(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

// ---------------------------------------------------------------------
// Order-0 adaptive binary range coder (carry-less, byte-renormalized —
// the classic LZMA-style coder; see /root/related Moruga for the
// idiom). The model is a 255-node bit tree: one adaptive probability
// per (bit position, more-significant-bits) context of a byte.
// ---------------------------------------------------------------------

constexpr std::uint32_t kProbBits = 11;
constexpr std::uint16_t kProbInit = 1u << (kProbBits - 1);
constexpr std::uint32_t kTopValue = 1u << 24;
constexpr int kProbShift = 5;

struct ByteModel
{
    std::uint16_t probs[256];

    ByteModel()
    {
        for (auto &p : probs)
            p = kProbInit;
    }
};

class RangeEncoder
{
  public:
    explicit RangeEncoder(std::vector<std::uint8_t> &out) : _out(out) {}

    void
    encodeByte(ByteModel &model, std::uint8_t byte)
    {
        std::uint32_t ctx = 1;
        for (int bit = 7; bit >= 0; --bit) {
            std::uint32_t b = (byte >> bit) & 1;
            encodeBit(model.probs[ctx], b);
            ctx = (ctx << 1) | b;
        }
    }

    void
    flush()
    {
        for (int i = 0; i < 5; ++i)
            shiftLow();
    }

  private:
    void
    encodeBit(std::uint16_t &prob, std::uint32_t bit)
    {
        std::uint32_t bound = (_range >> kProbBits) * prob;
        if (bit == 0) {
            _range = bound;
            prob += (static_cast<std::uint16_t>(1u << kProbBits) - prob) >>
                    kProbShift;
        } else {
            _low += bound;
            _range -= bound;
            prob -= prob >> kProbShift;
        }
        while (_range < kTopValue) {
            _range <<= 8;
            shiftLow();
        }
    }

    void
    shiftLow()
    {
        if (static_cast<std::uint32_t>(_low) < 0xFF000000u ||
            static_cast<std::uint32_t>(_low >> 32) != 0) {
            std::uint8_t carry = static_cast<std::uint8_t>(_low >> 32);
            _out.push_back(static_cast<std::uint8_t>(_cache + carry));
            while (--_cacheSize)
                _out.push_back(static_cast<std::uint8_t>(0xFF + carry));
            _cache = static_cast<std::uint8_t>(_low >> 24);
        }
        ++_cacheSize;
        _low = (_low << 8) & 0xFFFFFFFFull;
    }

    std::vector<std::uint8_t> &_out;
    std::uint64_t _low = 0;
    std::uint32_t _range = 0xFFFFFFFFu;
    std::uint8_t _cache = 0;
    std::uint64_t _cacheSize = 1;
};

class RangeDecoder
{
  public:
    RangeDecoder(const std::uint8_t *data, std::size_t size)
        : _data(data), _size(size)
    {
        for (int i = 0; i < 5; ++i)
            _code = (_code << 8) | nextByte();
    }

    std::uint8_t
    decodeByte(ByteModel &model)
    {
        std::uint32_t ctx = 1;
        for (int bit = 7; bit >= 0; --bit)
            ctx = (ctx << 1) | decodeBit(model.probs[ctx]);
        return static_cast<std::uint8_t>(ctx);
    }

  private:
    std::uint32_t
    decodeBit(std::uint16_t &prob)
    {
        std::uint32_t bound = (_range >> kProbBits) * prob;
        std::uint32_t bit;
        if (_code < bound) {
            _range = bound;
            prob += (static_cast<std::uint16_t>(1u << kProbBits) - prob) >>
                    kProbShift;
            bit = 0;
        } else {
            _code -= bound;
            _range -= bound;
            prob -= prob >> kProbShift;
            bit = 1;
        }
        while (_range < kTopValue) {
            _range <<= 8;
            _code = (_code << 8) | nextByte();
        }
        return bit;
    }

    /** Past-the-end reads pad with zero, as range decoders expect. */
    std::uint8_t
    nextByte()
    {
        return _pos < _size ? _data[_pos++] : 0;
    }

    const std::uint8_t *_data;
    std::size_t _size;
    std::size_t _pos = 0;
    std::uint32_t _code = 0;
    std::uint32_t _range = 0xFFFFFFFFu;
};

std::vector<std::uint8_t>
rangeCompress(const std::vector<std::uint8_t> &in)
{
    std::vector<std::uint8_t> out;
    out.reserve(in.size() / 2 + 16);
    ByteModel model;
    RangeEncoder enc(out);
    for (std::uint8_t b : in)
        enc.encodeByte(model, b);
    enc.flush();
    return out;
}

std::vector<std::uint8_t>
rangeDecompress(const std::uint8_t *data, std::size_t size,
                std::uint64_t rawBytes)
{
    std::vector<std::uint8_t> out;
    // Reserve only what the *stored* bytes make plausible; rawBytes is
    // attacker-controlled header data and must not size an allocation
    // on its own (the caller bounds the loop separately).
    out.reserve(static_cast<std::size_t>(
        std::min<std::uint64_t>(rawBytes, size * 16 + 4096)));
    ByteModel model;
    RangeDecoder dec(data, size);
    for (std::uint64_t i = 0; i < rawBytes; ++i)
        out.push_back(dec.decodeByte(model));
    return out;
}

// ---------------------------------------------------------------------
// Container header serialization
// ---------------------------------------------------------------------

constexpr char kMagic[4] = {'C', 'T', 'R', 'C'};

void
appendU16(std::vector<std::uint8_t> &out, std::uint16_t v)
{
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void
appendU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
appendU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
appendStr(std::vector<std::uint8_t> &out, const std::string &s)
{
    appendU32(out, static_cast<std::uint32_t>(s.size()));
    out.insert(out.end(), s.begin(), s.end());
}

/** Bounds-checked cursor over a parsed container. */
struct Cursor
{
    const std::uint8_t *data;
    std::size_t size;
    std::size_t pos = 0;

    void
    need(std::size_t n) const
    {
        if (size - pos < n)
            throw TraceFileError("truncated trace file");
    }

    std::uint16_t
    u16()
    {
        need(2);
        std::uint16_t v = static_cast<std::uint16_t>(
            data[pos] | (data[pos + 1] << 8));
        pos += 2;
        return v;
    }

    std::uint8_t
    u8()
    {
        need(1);
        return data[pos++];
    }

    std::uint32_t
    u32()
    {
        need(4);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(data[pos + i]) << (8 * i);
        pos += 4;
        return v;
    }

    std::uint64_t
    u64()
    {
        need(8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(data[pos + i]) << (8 * i);
        pos += 8;
        return v;
    }

    std::string
    str()
    {
        std::uint32_t n = u32();
        need(n);
        std::string s(reinterpret_cast<const char *>(data + pos), n);
        pos += n;
        return s;
    }
};

std::uint64_t
readVarint(const std::vector<std::uint8_t> &events, std::size_t &pos)
{
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
        if (pos >= events.size())
            throw TraceFileError(
                "corrupt trace payload: truncated varint");
        std::uint8_t b = events[pos++];
        v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
        if (!(b & 0x80))
            return v;
        shift += 7;
        if (shift >= 64)
            throw TraceFileError(
                "corrupt trace payload: varint overflow");
    }
}

/**
 * Largest varint-stage payload the header's event counts can honestly
 * describe (worst-case encodings + checkpoint overhead), saturating.
 * Anything above it is a forged header — rejecting here bounds the
 * range-decoder loop, so a 40-byte fuzzed file cannot demand an
 * exabyte decompression.
 */
std::uint64_t
plausiblePayloadBytes(const TraceFileCounts &counts)
{
    auto satMul = [](std::uint64_t a, std::uint64_t b) {
        if (a != 0 && b > UINT64_MAX / a)
            return UINT64_MAX;
        return a * b;
    };
    auto satAdd = [](std::uint64_t a, std::uint64_t b) {
        return a > UINT64_MAX - b ? UINT64_MAX : a + b;
    };
    // Worst case per event: access = tag + 10B addr delta + 5B bytes +
    // 10B ray delta; rayEnd = tag + 10B delta; flush = tag.
    std::uint64_t bytes = satMul(counts.accesses, 26);
    bytes = satAdd(bytes, satMul(counts.rayEnds, 11));
    bytes = satAdd(bytes, counts.flushes);
    // Checkpoints: one per interval plus the final one, each at most
    // tag + 10B count + 5B crc; plus terminator and slack.
    std::uint64_t events = satAdd(
        satAdd(counts.accesses, counts.rayEnds), counts.flushes);
    bytes = satAdd(bytes,
                   satMul(events / kTraceCheckpointInterval + 2, 16));
    return satAdd(bytes, 64);
}

} // namespace

const char *
traceStorageModeName(TraceStorageMode mode)
{
    switch (mode) {
      case TraceStorageMode::Fp32:
        return "fp32";
      case TraceStorageMode::Fp16:
        return "fp16";
      case TraceStorageMode::Unknown:
        break;
    }
    return "unknown";
}

bool
traceMetaStorageConsistent(const TraceFileMeta &meta)
{
    switch (meta.storageMode) {
      case TraceStorageMode::Fp16:
        // 2 B/channel accounting must decompose into whole channels.
        return meta.featureBytes % 2 == 0;
      case TraceStorageMode::Fp32:
        // The trace's featureBytes assumes fp16-class storage, but the
        // capture-time encoding held 4-byte floats.
        return false;
      case TraceStorageMode::Unknown:
        break;
    }
    return true; // legacy capture: nothing recorded, nothing to check
}

// ---------------------------------------------------------------------
// TraceFileWriter
// ---------------------------------------------------------------------

TraceFileWriter::TraceFileWriter(const std::string &path,
                                 const TraceFileMeta &meta,
                                 TraceCodec codec)
    : _meta(meta), _codec(codec), _path(path)
{
}

TraceFileWriter::TraceFileWriter(std::vector<std::uint8_t> &buffer,
                                 const TraceFileMeta &meta,
                                 TraceCodec codec)
    : _meta(meta), _codec(codec), _memoryOut(&buffer)
{
    _memoryOut->clear();
}

TraceFileWriter::~TraceFileWriter()
{
    try {
        close();
    } catch (...) {
        // A destructor cannot report the failure; explicit close()
        // callers get the exception.
    }
}

void
TraceFileWriter::putVarint(std::uint64_t v)
{
    appendVarint(_payload, v);
}

void
TraceFileWriter::putSignedDelta(std::int64_t d)
{
    appendVarint(_payload, zigzag(d));
}

void
TraceFileWriter::noteEvent()
{
    ++_eventCount;
    if (++_eventsSinceCheckpoint >= kTraceCheckpointInterval)
        emitCheckpoint();
}

/**
 * Seal the payload section since the previous checkpoint under a CRC.
 * The checkpoint event itself starts the next section.
 */
void
TraceFileWriter::emitCheckpoint()
{
    std::uint32_t crc = crc32(_payload.data() + _checkpointStart,
                              _payload.size() - _checkpointStart);
    _payload.push_back(kEvCheckpoint);
    putVarint(_eventCount);
    putVarint(crc);
    _checkpointStart = _payload.size();
    _eventsSinceCheckpoint = 0;
}

void
TraceFileWriter::onAccess(const MemAccess &access)
{
    std::uint8_t tag = kEvAccess;
    bool sameBytes = _haveBytes && access.bytes == _lastBytes;
    bool sameRay = access.rayId == _lastRay;
    if (sameBytes)
        tag |= kFlagSameBytes;
    if (sameRay)
        tag |= kFlagSameRay;

    _payload.push_back(tag);
    putSignedDelta(static_cast<std::int64_t>(access.addr - _lastAddr));
    if (!sameBytes)
        putVarint(access.bytes);
    if (!sameRay)
        putSignedDelta(static_cast<std::int64_t>(access.rayId) -
                       static_cast<std::int64_t>(_lastRay));

    _lastAddr = access.addr;
    _lastBytes = access.bytes;
    _lastRay = access.rayId;
    _haveBytes = true;
    ++_counts.accesses;
    noteEvent();
}

void
TraceFileWriter::onRayEnd(std::uint32_t rayId)
{
    _payload.push_back(kEvRayEnd);
    putSignedDelta(static_cast<std::int64_t>(rayId) -
                   static_cast<std::int64_t>(_lastRay));
    _lastRay = rayId;
    ++_counts.rayEnds;
    noteEvent();
}

void
TraceFileWriter::onFlush()
{
    faultCheck(FaultSite::TraceFlush);
    _payload.push_back(kEvFlush);
    ++_counts.flushes;
    noteEvent();
}

void
TraceFileWriter::close()
{
    if (_closed)
        return;
    _closed = true;

    // Final checkpoint seals the tail section, so salvage can recover
    // every event of a file whose only damage is past the payload.
    emitCheckpoint();
    _payload.push_back(kEvEnd);

    std::vector<std::uint8_t> stored;
    const std::vector<std::uint8_t> *payload = &_payload;
    if (_codec == TraceCodec::Range) {
        stored = rangeCompress(_payload);
        payload = &stored;
    }
    _storedPayloadBytes = payload->size();

    std::vector<std::uint8_t> header;
    header.insert(header.end(), kMagic, kMagic + 4);
    appendU16(header, kTraceFileVersion);
    header.push_back(static_cast<std::uint8_t>(_codec));
    header.push_back(static_cast<std::uint8_t>(_meta.storageMode));
    appendStr(header, _meta.scene);
    appendStr(header, _meta.encoding);
    appendStr(header, _meta.model);
    appendU32(header, _meta.width);
    appendU32(header, _meta.height);
    appendU32(header, _meta.threads);
    appendU32(header, _meta.featureBytes);
    appendU64(header, _counts.accesses);
    appendU64(header, _counts.rayEnds);
    appendU64(header, _counts.flushes);
    header.push_back(_hasWorkload ? 1 : 0);
    if (_hasWorkload) {
        appendU64(header, _workload.rays);
        appendU64(header, _workload.samples);
        appendU64(header, _workload.indexOps);
        appendU64(header, _workload.vertexFetches);
        appendU64(header, _workload.gatherBytes);
        appendU64(header, _workload.interpOps);
        appendU64(header, _workload.mlpMacs);
        appendU64(header, _workload.compositeOps);
        appendU64(header, _workload.streamedBytes);
        appendU64(header, _workload.randomBytes);
        appendU64(header, _workload.ritEntries);
        appendU64(header, _workload.ritBytes);
        appendU32(header, _workload.vertexBytes);
    }
    appendU64(header, _storedPayloadBytes);
    appendU64(header, _payload.size());
    appendU32(header, crc32(header.data(), header.size()));

    _fileBytes = header.size() + payload->size();

    faultCheck(FaultSite::TraceWrite);

    if (_memoryOut) {
        *_memoryOut = header;
        _memoryOut->insert(_memoryOut->end(), payload->begin(),
                           payload->end());
    } else {
        // Temp file + atomic rename: the destination path either keeps
        // its previous content or gains a complete container. A crash
        // mid-write orphans only the .tmp.
        const std::string tmp = _path + ".tmp";
        std::FILE *f = std::fopen(tmp.c_str(), "wb");
        if (!f)
            throw IoError("cannot open trace file for write", tmp,
                          errno);
        bool ok =
            std::fwrite(header.data(), 1, header.size(), f) ==
                header.size() &&
            (payload->empty() ||
             std::fwrite(payload->data(), 1, payload->size(), f) ==
                 payload->size());
        int writeErr = ok ? 0 : errno;
        ok = std::fclose(f) == 0 && ok;
        if (writeErr == 0 && !ok)
            writeErr = errno;
        if (!ok) {
            std::remove(tmp.c_str());
            throw IoError("short write on trace file", tmp, writeErr);
        }
        if (std::rename(tmp.c_str(), _path.c_str()) != 0) {
            int renameErr = errno;
            std::remove(tmp.c_str());
            throw IoError("cannot rename trace file into place", _path,
                          renameErr);
        }
    }

    _payload = std::vector<std::uint8_t>();
}

// ---------------------------------------------------------------------
// TraceFileReader
// ---------------------------------------------------------------------

TraceFileReader::TraceFileReader(const std::string &path,
                                 TraceReadMode mode)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        throw IoError("cannot open trace file", path, errno);
    std::vector<std::uint8_t> bytes;
    std::uint8_t chunk[65536];
    std::size_t n;
    while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0)
        bytes.insert(bytes.end(), chunk, chunk + n);
    bool readError = std::ferror(f) != 0;
    int readErrno = errno;
    std::fclose(f);
    if (readError)
        throw IoError("read error on trace file", path, readErrno);
    parse(bytes.data(), bytes.size(), mode);
}

TraceFileReader::TraceFileReader(const std::uint8_t *data,
                                 std::size_t size, TraceReadMode mode)
{
    parse(data, size, mode);
}

TraceFileReader::TraceFileReader(const std::vector<std::uint8_t> &buffer,
                                 TraceReadMode mode)
{
    parse(buffer.data(), buffer.size(), mode);
}

void
TraceFileReader::parse(const std::uint8_t *data, std::size_t size,
                       TraceReadMode mode)
{
    faultCheck(FaultSite::TraceRead);

    Cursor c{data, size};

    c.need(4);
    if (std::memcmp(data, kMagic, 4) != 0)
        throw TraceFileError("not a trace file (bad magic)");
    c.pos = 4;

    std::uint16_t version = c.u16();
    if (version < kTraceFileMinVersion || version > kTraceFileVersion)
        throw TraceFileError(
            "unsupported trace-file version " + std::to_string(version) +
            " (this build reads versions " +
            std::to_string(kTraceFileMinVersion) + ".." +
            std::to_string(kTraceFileVersion) + ")");
    _version = version;

    std::uint8_t codec = c.u8();
    if (codec > static_cast<std::uint8_t>(TraceCodec::Range))
        throw TraceFileError("unknown trace-file codec " +
                             std::to_string(codec));
    _codec = static_cast<TraceCodec>(codec);
    std::uint8_t storage = c.u8();
    _meta.storageMode =
        storage <= static_cast<std::uint8_t>(TraceStorageMode::Fp16)
            ? static_cast<TraceStorageMode>(storage)
            : TraceStorageMode::Unknown;

    _meta.scene = c.str();
    _meta.encoding = c.str();
    _meta.model = c.str();
    _meta.width = c.u32();
    _meta.height = c.u32();
    _meta.threads = c.u32();
    _meta.featureBytes = c.u32();
    _counts.accesses = c.u64();
    _counts.rayEnds = c.u64();
    _counts.flushes = c.u64();
    if (version >= 2) {
        _hasWorkload = c.u8() != 0;
        if (_hasWorkload) {
            _workload.rays = c.u64();
            _workload.samples = c.u64();
            _workload.indexOps = c.u64();
            _workload.vertexFetches = c.u64();
            _workload.gatherBytes = c.u64();
            _workload.interpOps = c.u64();
            _workload.mlpMacs = c.u64();
            _workload.compositeOps = c.u64();
            _workload.streamedBytes = c.u64();
            _workload.randomBytes = c.u64();
            _workload.ritEntries = c.u64();
            _workload.ritBytes = c.u64();
            _workload.vertexBytes = c.u32();
        }
    }
    _storedPayloadBytes = c.u64();
    std::uint64_t rawPayloadBytes = c.u64();

    if (version >= 3) {
        std::size_t crcPos = c.pos;
        std::uint32_t storedCrc = c.u32();
        // Header damage is unrecoverable in any mode: the counts,
        // codec and sizes below the CRC are what salvage itself
        // depends on.
        if (crc32(data, crcPos) != storedCrc)
            throw TraceFileError(
                "corrupt trace file: header checksum mismatch");
    }

    // A forged header must not size an allocation or a decode loop:
    // bound the claimed raw payload by what the event counts and the
    // stored bytes can honestly produce.
    if (rawPayloadBytes > plausiblePayloadBytes(_counts))
        throw TraceFileError(
            "corrupt trace file: implausible payload size");

    std::uint64_t availableBytes = size - c.pos;
    std::uint64_t storedUsed = _storedPayloadBytes;
    if (availableBytes < _storedPayloadBytes) {
        if (mode == TraceReadMode::Strict)
            throw TraceFileError("truncated trace file");
        storedUsed = availableBytes;
    }
    _fileBytes = c.pos + storedUsed;

    if (_codec == TraceCodec::Range) {
        if (rawPayloadBytes > _storedPayloadBytes * 4096 + 4096)
            throw TraceFileError(
                "corrupt trace file: implausible payload size");
        _events = rangeDecompress(data + c.pos,
                                  static_cast<std::size_t>(storedUsed),
                                  rawPayloadBytes);
    } else {
        if (_storedPayloadBytes != rawPayloadBytes &&
            mode == TraceReadMode::Strict)
            throw TraceFileError(
                "corrupt trace file: payload size mismatch");
        _events.assign(data + c.pos, data + c.pos + storedUsed);
    }

    validatePayload(mode);
}

/**
 * Walk the decoded varint event stream end to end, checking framing,
 * checkpoint CRCs (version >= 3), and that the walked event counts
 * match the header. Strict mode throws on the first defect; Salvage
 * mode cuts the stream back to the last trustworthy prefix — the last
 * CRC-verified checkpoint for version >= 3, the last well-formed event
 * boundary for older files — re-terminates it, and recomputes the
 * counts from what was kept.
 */
void
TraceFileReader::validatePayload(TraceReadMode mode)
{
    TraceFileCounts walked;
    std::uint64_t walkedEvents = 0;
    std::size_t pos = 0;
    std::size_t sectionStart = 0;

    // Salvage cut candidate: everything before it is trustworthy.
    std::size_t lastGood = 0;
    TraceFileCounts lastGoodCounts;
    std::uint64_t lastGoodEvents = 0;

    bool terminated = false;
    std::string defect;

    try {
        while (pos < _events.size()) {
            const std::size_t start = pos;
            std::uint8_t tag = _events[pos++];
            switch (tag & 3) {
              case kEvAccess:
                if (tag & ~(kFlagSameBytes | kFlagSameRay))
                    throw TraceFileError(
                        "corrupt trace payload: invalid event tag");
                readVarint(_events, pos); // address delta
                if (!(tag & kFlagSameBytes))
                    readVarint(_events, pos);
                if (!(tag & kFlagSameRay))
                    readVarint(_events, pos);
                ++walked.accesses;
                ++walkedEvents;
                break;
              case kEvRayEnd:
                if (tag != kEvRayEnd)
                    throw TraceFileError(
                        "corrupt trace payload: invalid event tag");
                readVarint(_events, pos);
                ++walked.rayEnds;
                ++walkedEvents;
                break;
              case kEvFlush:
                if (tag != kEvFlush)
                    throw TraceFileError(
                        "corrupt trace payload: invalid event tag");
                ++walked.flushes;
                ++walkedEvents;
                break;
              case kEvEnd:
                if (tag == kEvCheckpoint) {
                    std::uint64_t cumEvents = readVarint(_events, pos);
                    std::uint64_t crc = readVarint(_events, pos);
                    std::uint32_t computed =
                        crc32(_events.data() + sectionStart,
                              start - sectionStart);
                    if (crc > 0xFFFFFFFFull || cumEvents != walkedEvents ||
                        static_cast<std::uint32_t>(crc) != computed)
                        throw TraceFileError(
                            "corrupt trace payload: checkpoint "
                            "checksum mismatch");
                    sectionStart = pos;
                    lastGood = pos;
                    lastGoodCounts = walked;
                    lastGoodEvents = walkedEvents;
                    ++_recovery.checkpointsVerified;
                    break;
                }
                if (tag != kEvEnd)
                    throw TraceFileError(
                        "corrupt trace payload: invalid event tag");
                if (pos != _events.size())
                    throw TraceFileError(
                        "corrupt trace payload: trailing bytes after "
                        "terminator");
                terminated = true;
                break;
            }
            if (terminated)
                break;
            // Pre-checkpoint files have no CRC anchors; the best
            // trustworthy prefix is the last well-formed event.
            if (_version < 3)
                lastGood = pos, lastGoodCounts = walked,
                lastGoodEvents = walkedEvents;
        }
        if (!terminated)
            throw TraceFileError(
                "corrupt trace file: missing stream terminator");
        if (walked.accesses != _counts.accesses ||
            walked.rayEnds != _counts.rayEnds ||
            walked.flushes != _counts.flushes)
            throw TraceFileError(
                "corrupt trace file: header/payload event count "
                "mismatch");
    } catch (const TraceFileError &e) {
        if (mode == TraceReadMode::Strict)
            throw;
        defect = e.what();
    }

    if (!defect.empty()) {
        _recovery.salvaged = true;
        _recovery.droppedPayloadBytes = _events.size() - lastGood;
        _events.resize(lastGood);
        _events.push_back(kEvEnd);
        _counts = lastGoodCounts;
        walkedEvents = lastGoodEvents;
    }
    _recovery.keptEvents = walkedEvents;
}

TraceEventBreakdown
TraceFileReader::eventBreakdown() const
{
    TraceEventBreakdown out;
    std::size_t pos = 0;
    for (;;) {
        if (pos >= _events.size())
            throw TraceFileError(
                "corrupt trace payload: unterminated event stream");
        const std::size_t start = pos;
        std::uint8_t tag = _events[pos++];
        switch (tag & 3) {
          case kEvAccess:
            readVarint(_events, pos); // address delta
            if (tag & kFlagSameBytes)
                ++out.sameBytesElisions;
            else
                readVarint(_events, pos);
            if (tag & kFlagSameRay)
                ++out.sameRayElisions;
            else
                readVarint(_events, pos);
            ++out.accessEvents;
            out.accessBytes += pos - start;
            break;
          case kEvRayEnd:
            readVarint(_events, pos);
            ++out.rayEndEvents;
            out.rayEndBytes += pos - start;
            break;
          case kEvFlush:
            ++out.flushEvents;
            out.flushBytes += pos - start;
            break;
          case kEvEnd:
            if (tag & kFlagCheckpoint) {
                readVarint(_events, pos); // cumulative event count
                readVarint(_events, pos); // section CRC
                ++out.checkpointEvents;
                out.checkpointBytes += pos - start;
                break;
            }
            out.terminatorBytes += pos - start;
            return out;
        }
    }
}

void
TraceFileReader::replay(TraceSink *sink) const
{
    std::size_t pos = 0;
    std::uint64_t lastAddr = 0;
    std::uint32_t lastBytes = 0;
    std::uint32_t lastRay = 0;

    for (;;) {
        if (pos >= _events.size())
            throw TraceFileError(
                "corrupt trace payload: unterminated event stream");
        std::uint8_t tag = _events[pos++];
        switch (tag & 3) {
          case kEvAccess: {
            MemAccess a;
            lastAddr += static_cast<std::uint64_t>(
                unzigzag(readVarint(_events, pos)));
            a.addr = lastAddr;
            if (tag & kFlagSameBytes) {
                a.bytes = lastBytes;
            } else {
                a.bytes = static_cast<std::uint32_t>(
                    readVarint(_events, pos));
                lastBytes = a.bytes;
            }
            if (tag & kFlagSameRay) {
                a.rayId = lastRay;
            } else {
                a.rayId = static_cast<std::uint32_t>(
                    static_cast<std::int64_t>(lastRay) +
                    unzigzag(readVarint(_events, pos)));
                lastRay = a.rayId;
            }
            sink->onAccess(a);
            break;
          }
          case kEvRayEnd: {
            lastRay = static_cast<std::uint32_t>(
                static_cast<std::int64_t>(lastRay) +
                unzigzag(readVarint(_events, pos)));
            sink->onRayEnd(lastRay);
            break;
          }
          case kEvFlush:
            sink->onFlush();
            break;
          case kEvEnd:
            if (tag & kFlagCheckpoint) {
                // Checkpoints are integrity metadata, not sink events;
                // they were verified at parse time.
                readVarint(_events, pos);
                readVarint(_events, pos);
                break;
            }
            return;
        }
    }
}

} // namespace cicero
