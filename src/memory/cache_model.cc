#include "memory/cache_model.hh"

#include <algorithm>
#include <queue>

namespace cicero {

LruCache::LruCache(const CacheConfig &config) : _config(config)
{
}

void
LruCache::touchSetAssoc(std::uint64_t line)
{
    ++_stats.accesses;
    if (_sets.empty())
        _sets.resize(_config.numSets());
    std::vector<std::uint64_t> &set = _sets[line % _sets.size()];
    auto it = std::find(set.begin(), set.end(), line);
    if (it != set.end()) {
        ++_stats.hits;
        set.erase(it);
        set.insert(set.begin(), line); // move to MRU
        return;
    }
    ++_stats.misses;
    if (set.size() >= _config.ways)
        set.pop_back(); // evict the set's LRU line
    set.insert(set.begin(), line);
}

void
LruCache::touch(std::uint64_t line)
{
    if (_config.ways != 0) {
        touchSetAssoc(line);
        return;
    }
    ++_stats.accesses;
    auto it = _where.find(line);
    if (it != _where.end()) {
        ++_stats.hits;
        _lru.erase(it->second);
        _lru.push_front(line);
        it->second = _lru.begin();
        return;
    }
    ++_stats.misses;
    if (_lru.size() >= _config.numLines()) {
        std::uint64_t victim = _lru.back();
        _lru.pop_back();
        _where.erase(victim);
    }
    _lru.push_front(line);
    _where[line] = _lru.begin();
}

void
LruCache::onAccess(const MemAccess &access)
{
    std::uint64_t first = access.addr / _config.lineBytes;
    std::uint64_t last = (access.addr + std::max(access.bytes, 1u) - 1) /
                         _config.lineBytes;
    for (std::uint64_t l = first; l <= last; ++l)
        touch(l);
}

void
LruCache::reset()
{
    _stats = CacheStats{};
    _lru.clear();
    _where.clear();
    _sets.clear();
}

BeladyCache::BeladyCache(const CacheConfig &config) : _config(config)
{
}

void
BeladyCache::onAccess(const MemAccess &access)
{
    std::uint64_t first = access.addr / _config.lineBytes;
    std::uint64_t last = (access.addr + std::max(access.bytes, 1u) - 1) /
                         _config.lineBytes;
    for (std::uint64_t l = first; l <= last; ++l) {
        auto [it, inserted] = _lineId.try_emplace(
            l, static_cast<std::uint32_t>(_lineId.size()));
        _sequence.push_back(it->second);
    }
}

CacheStats
BeladyCache::simulate() const
{
    CacheStats stats;
    const std::size_t n = _sequence.size();
    if (n == 0)
        return stats;

    // next[i]: position of the next access to the same line after i.
    constexpr std::uint64_t kNever = ~0ull;
    std::vector<std::uint64_t> next(n, kNever);
    std::vector<std::uint64_t> lastSeen(_lineId.size(), kNever);
    for (std::size_t i = n; i-- > 0;) {
        std::uint32_t line = _sequence[i];
        next[i] = lastSeen[line];
        lastSeen[line] = i;
    }

    // Max-heap of (nextUse, line) identifies the Belady victim: the
    // resident line whose next use is farthest away. Entries are lazily
    // invalidated via residentNext.
    using Entry = std::pair<std::uint64_t, std::uint32_t>;
    std::priority_queue<Entry> heap;
    std::vector<std::uint64_t> residentNext(_lineId.size(), kNever);
    std::vector<char> resident(_lineId.size(), 0);
    std::uint64_t used = 0;
    const std::uint64_t capacity = _config.numLines();

    for (std::size_t i = 0; i < n; ++i) {
        std::uint32_t line = _sequence[i];
        ++stats.accesses;
        if (resident[line]) {
            ++stats.hits;
        } else {
            ++stats.misses;
            if (used >= capacity) {
                // Evict the farthest-next-use resident line.
                while (true) {
                    auto [nu, victim] = heap.top();
                    heap.pop();
                    if (resident[victim] && residentNext[victim] == nu) {
                        resident[victim] = 0;
                        --used;
                        break;
                    }
                }
            }
            resident[line] = 1;
            ++used;
        }
        residentNext[line] = next[i];
        heap.emplace(next[i], line);
    }
    return stats;
}

void
BeladyCache::reset()
{
    _sequence.clear();
    _lineId.clear();
}

} // namespace cicero
