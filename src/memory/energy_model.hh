/**
 * @file
 * Unified energy constants and accounting.
 *
 * The absolute picojoule numbers are calibrated so the *ratios* match the
 * paper's measurements (Sec. V): random DRAM : streaming DRAM = 3 : 1 per
 * byte and random DRAM : SRAM = 25 : 1 per byte; wireless transfer costs
 * 100 nJ/B at 10 MB/s. Every result in the paper is reported relative to
 * a baseline, so these ratios are what determine the reproduction.
 */

#ifndef CICERO_MEMORY_ENERGY_MODEL_HH
#define CICERO_MEMORY_ENERGY_MODEL_HH

#include <cstdint>
#include <map>
#include <string>

namespace cicero {

/** Energy unit constants, all in picojoules unless noted. */
struct EnergyConstants
{
    double sramPjPerByte = 4.0;
    double dramStreamPjPerByte = 33.3;
    double dramRandomPjPerByte = 100.0;
    double macPj = 0.6;            //!< one 16-bit MAC at ~12 nm
    double aluOpPj = 0.4;          //!< scalar ALU op (interp., indexing)
    double wirelessNjPerByte = 100.0;
    double wirelessMBps = 10.0;
    double socStaticW = 1.5;       //!< SoC-wide static power floor
    double gpuIdleW = 1.5;         //!< SoC GPU rail static power
    double gpuActiveW = 18.0;      //!< mobile Volta GPU busy power
    double npuActiveW = 3.5;       //!< systolic NPU busy power
    double remoteGpuActiveW = 220.0; //!< workstation 2080Ti busy power
};

/**
 * An energy ledger: named contributions in nanojoules, so benches can
 * report both totals and breakdowns (e.g. Fig. 21's decomposition).
 */
class EnergyLedger
{
  public:
    explicit EnergyLedger(const EnergyConstants &constants = {})
        : _constants(constants)
    {
    }

    const EnergyConstants &constants() const { return _constants; }

    /** Add @p nj nanojoules to category @p name. */
    void
    add(const std::string &name, double nj)
    {
        _entries[name] += nj;
    }

    void addSramBytes(const std::string &name, std::uint64_t bytes)
    {
        add(name, bytes * _constants.sramPjPerByte * 1e-3);
    }

    void addDramStreamBytes(const std::string &name, std::uint64_t bytes)
    {
        add(name, bytes * _constants.dramStreamPjPerByte * 1e-3);
    }

    void addDramRandomBytes(const std::string &name, std::uint64_t bytes)
    {
        add(name, bytes * _constants.dramRandomPjPerByte * 1e-3);
    }

    void addMacs(const std::string &name, std::uint64_t macs)
    {
        add(name, macs * _constants.macPj * 1e-3);
    }

    void addAluOps(const std::string &name, std::uint64_t ops)
    {
        add(name, ops * _constants.aluOpPj * 1e-3);
    }

    /** Wireless transfer of @p bytes; returns the transfer time in ms. */
    double
    addWirelessBytes(const std::string &name, std::uint64_t bytes)
    {
        add(name, bytes * _constants.wirelessNjPerByte);
        return bytes / (_constants.wirelessMBps * 1e6) * 1e3;
    }

    /** Busy-power integration: @p watts for @p ms milliseconds. */
    void
    addPowerTime(const std::string &name, double watts, double ms)
    {
        add(name, watts * ms * 1e6); // W * ms = mJ = 1e6 nJ
    }

    double get(const std::string &name) const;
    double totalNj() const;
    const std::map<std::string, double> &entries() const
    {
        return _entries;
    }

    void reset() { _entries.clear(); }

  private:
    EnergyConstants _constants;
    std::map<std::string, double> _entries;
};

} // namespace cicero

#endif // CICERO_MEMORY_ENERGY_MODEL_HH
