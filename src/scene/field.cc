#include "scene/field.hh"

#include <cmath>

namespace cicero {

namespace {

/** Smoothstep-like falloff: 1 well inside, 0 beyond the softness band. */
float
densityFalloff(float sd, float softness)
{
    // sd < 0: inside. Map sd in [-softness, softness] smoothly 1 -> 0.
    float t = clamp(0.5f - 0.5f * sd / softness, 0.0f, 1.0f);
    return t * t * (3.0f - 2.0f * t);
}

float
sdfSphere(const Vec3 &p, float r)
{
    return p.norm() - r;
}

float
sdfBox(const Vec3 &p, const Vec3 &half)
{
    Vec3 q{std::fabs(p.x) - half.x, std::fabs(p.y) - half.y,
           std::fabs(p.z) - half.z};
    Vec3 qmax = Vec3::max(q, Vec3{0.0f});
    float outside = qmax.norm();
    float inside = std::fmin(std::fmax(q.x, std::fmax(q.y, q.z)), 0.0f);
    return outside + inside;
}

float
sdfTorus(const Vec3 &p, float majorR, float minorR)
{
    float qx = std::sqrt(p.x * p.x + p.z * p.z) - majorR;
    return std::sqrt(qx * qx + p.y * p.y) - minorR;
}

float
sdfCylinder(const Vec3 &p, float r, float halfH)
{
    float dxz = std::sqrt(p.x * p.x + p.z * p.z) - r;
    float dy = std::fabs(p.y) - halfH;
    float ox = std::fmax(dxz, 0.0f);
    float oy = std::fmax(dy, 0.0f);
    return std::fmin(std::fmax(dxz, dy), 0.0f) +
           std::sqrt(ox * ox + oy * oy);
}

} // namespace

float
Primitive::sdf(const Vec3 &p) const
{
    Vec3 local = rot * (p - center);
    switch (shape) {
      case PrimShape::Sphere:
        return sdfSphere(local, size.x);
      case PrimShape::Box:
        return sdfBox(local, size);
      case PrimShape::Torus:
        return sdfTorus(local, size.x, size.y);
      case PrimShape::Cylinder:
        return sdfCylinder(local, size.x, size.y);
      case PrimShape::RoundBox:
        return sdfBox(local, size) - 0.25f * size.minComponent();
    }
    return 1e30f;
}

float
AnalyticField::unionSdf(const Vec3 &p) const
{
    float d = 1e30f;
    for (const auto &prim : _prims)
        d = std::fmin(d, prim.sdf(p));
    return d;
}

float
AnalyticField::density(const Vec3 &p) const
{
    if (!_bounds.contains(p))
        return 0.0f;
    float sigma = 0.0f;
    for (const auto &prim : _prims) {
        float sd = prim.sdf(p);
        if (sd < prim.softness)
            sigma += prim.sigmaMax * densityFalloff(sd, prim.softness);
    }
    return sigma;
}

Vec3
AnalyticField::normalAt(const Vec3 &p) const
{
    constexpr float h = 1e-3f;
    float dx = unionSdf({p.x + h, p.y, p.z}) - unionSdf({p.x - h, p.y, p.z});
    float dy = unionSdf({p.x, p.y + h, p.z}) - unionSdf({p.x, p.y - h, p.z});
    float dz = unionSdf({p.x, p.y, p.z + h}) - unionSdf({p.x, p.y, p.z - h});
    return Vec3{dx, dy, dz}.normalized();
}

Vec3
shadePoint(const BakedPoint &pt, const Vec3 &viewDir, const Vec3 &lightDir)
{
    Vec3 rgb = pt.diffuse;
    if (pt.specular > 0.0f) {
        // Blinn-Phong lobe: the view-dependent component that makes the
        // radiance approximation degrade for large view-angle changes
        // (paper Sec. VIII).
        Vec3 toEye = -viewDir.normalized();
        Vec3 h = (toEye + lightDir).normalized();
        float sl = std::pow(std::fmax(0.0f, pt.normal.dot(h)),
                            pt.shininess);
        rgb += Vec3{1.0f, 1.0f, 1.0f} * (pt.specular * sl);
    }
    return Vec3::min(rgb, Vec3{1.0f, 1.0f, 1.0f});
}

BakedPoint
AnalyticField::bakePoint(const Vec3 &p) const
{
    BakedPoint out;
    if (!_bounds.contains(p))
        return out;

    Vec3 colorAcc;
    float weightAcc = 0.0f;
    float specAcc = 0.0f;
    float shinAcc = 0.0f;

    for (const auto &prim : _prims) {
        float sd = prim.sdf(p);
        if (sd >= prim.softness)
            continue;
        float w = prim.sigmaMax * densityFalloff(sd, prim.softness);
        if (w <= 0.0f)
            continue;
        out.sigma += w;
        weightAcc += w;
        colorAcc += prim.albedo * w;
        specAcc += prim.specular * w;
        shinAcc += prim.shininess * w;
    }

    Vec3 albedo;
    if (weightAcc > 0.0f) {
        albedo = colorAcc / weightAcc;
        out.specular = specAcc / weightAcc;
        out.shininess = std::fmax(1.0f, shinAcc / weightAcc);
    } else {
        // Empty space: extend the appearance of the *nearest* primitive
        // so that interpolating across a surface blends meaningful
        // colors instead of darkening toward zero — the behaviour a
        // trained NeRF grid exhibits (colors bleed past surfaces while
        // density alone carves the geometry).
        const Primitive *nearest = nullptr;
        float best = 1e30f;
        for (const auto &prim : _prims) {
            float sd = prim.sdf(p);
            if (sd < best) {
                best = sd;
                nearest = &prim;
            }
        }
        if (!nearest)
            return out;
        albedo = nearest->albedo;
        out.specular = nearest->specular;
        out.shininess = std::fmax(1.0f, nearest->shininess);
    }

    out.normal = normalAt(p);
    float lambert =
        0.35f + 0.65f * std::fmax(0.0f, out.normal.dot(_lightDir));
    out.diffuse = albedo * lambert;
    return out;
}

FieldSample
AnalyticField::sample(const Vec3 &p, const Vec3 &viewDir) const
{
    BakedPoint b = bakePoint(p);
    FieldSample out;
    out.sigma = b.sigma;
    if (b.sigma > 0.0f)
        out.rgb = shadePoint(b, viewDir, _lightDir);
    return out;
}

} // namespace cicero
