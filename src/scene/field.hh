/**
 * @file
 * Analytic volumetric radiance fields.
 *
 * The paper evaluates on trained NeRF checkpoints; we substitute a
 * procedural ground-truth field (signed-distance primitives with smooth
 * density falloff, per-primitive albedo and a controllable specular lobe)
 * that the NeRF encodings in src/nerf are *baked* from. See DESIGN.md §2.
 */

#ifndef CICERO_SCENE_FIELD_HH
#define CICERO_SCENE_FIELD_HH

#include <memory>
#include <string>
#include <vector>

#include "common/geometry.hh"
#include "common/math.hh"

namespace cicero {

/** Supported signed-distance primitive shapes. */
enum class PrimShape
{
    Sphere,
    Box,
    Torus,
    Cylinder,
    RoundBox,
};

/**
 * One volumetric primitive: a signed-distance shape with appearance.
 *
 * Density is sigmaMax inside the surface and decays smoothly over
 * `softness` world units outside it, so primitives have fuzzy NeRF-like
 * boundaries rather than hard surfaces.
 */
struct Primitive
{
    PrimShape shape = PrimShape::Sphere;
    Vec3 center;              //!< world-space position
    Vec3 size{0.25f, 0.25f, 0.25f}; //!< radius / half-extent / (R, r) for torus
    Mat3 rot = Mat3::identity();    //!< world-to-local rotation
    Vec3 albedo{0.8f, 0.8f, 0.8f};  //!< diffuse base color
    float specular = 0.0f;    //!< strength of view-dependent lobe [0, 1]
    float shininess = 16.0f;  //!< specular exponent
    float sigmaMax = 40.0f;   //!< peak volume density
    float softness = 0.02f;   //!< density falloff width (world units)

    /** Signed distance from @p p to the primitive surface (<0 inside). */
    float sdf(const Vec3 &p) const;
};

/**
 * Point-sample of a radiance field: volume density plus view-dependent
 * emitted radiance. This is exactly what a NeRF MLP regresses.
 */
struct FieldSample
{
    float sigma = 0.0f; //!< volume density
    Vec3 rgb;           //!< emitted radiance toward the query direction
};

/**
 * The view-independent appearance of a point, i.e. what NeRF encodings
 * bake into their feature grids (DESIGN.md §2). The view-dependent
 * radiance is reconstructed from it by shadePoint().
 */
struct BakedPoint
{
    float sigma = 0.0f;   //!< volume density
    Vec3 diffuse;         //!< Lambert-shaded base color
    Vec3 normal{0.0f, 1.0f, 0.0f}; //!< surface normal estimate
    float specular = 0.0f; //!< view-dependent lobe strength
    float shininess = 16.0f;
};

/**
 * Reconstruct view-dependent radiance from a baked point: diffuse term
 * plus a Blinn-Phong lobe toward @p lightDir seen from @p viewDir.
 */
Vec3 shadePoint(const BakedPoint &pt, const Vec3 &viewDir,
                const Vec3 &lightDir);

/**
 * An analytic radiance field: union of Primitives over an AABB with a
 * fixed directional light providing Lambertian shading and per-primitive
 * Blinn-Phong specular view dependence (the "non-diffuse surfaces" of the
 * paper's Sec. VIII).
 */
class AnalyticField
{
  public:
    AnalyticField() = default;

    void addPrimitive(const Primitive &prim) { _prims.push_back(prim); }
    const std::vector<Primitive> &primitives() const { return _prims; }

    void setBounds(const Aabb &b) { _bounds = b; }
    const Aabb &bounds() const { return _bounds; }

    void setLightDir(const Vec3 &d) { _lightDir = d.normalized(); }
    const Vec3 &lightDir() const { return _lightDir; }

    /** Volume density at @p p; zero outside the bounds. */
    float density(const Vec3 &p) const;

    /**
     * Density and radiance at @p p for a ray travelling in @p viewDir.
     * Radiance blends the contributions of overlapping primitives by
     * their local densities. Equivalent to shading bakePoint(p).
     */
    FieldSample sample(const Vec3 &p, const Vec3 &viewDir) const;

    /** View-independent appearance at @p p, for encoding bakes. */
    BakedPoint bakePoint(const Vec3 &p) const;

    /** Numerical SDF-union gradient (outward normal direction). */
    Vec3 normalAt(const Vec3 &p) const;

    /** Minimum signed distance over all primitives. */
    float unionSdf(const Vec3 &p) const;

  private:
    std::vector<Primitive> _prims;
    Aabb _bounds{Vec3{-1.0f, -1.0f, -1.0f}, Vec3{1.0f, 1.0f, 1.0f}};
    Vec3 _lightDir{0.4f, 0.8f, 0.45f};
};

} // namespace cicero

#endif // CICERO_SCENE_FIELD_HH
