#include "scene/trajectory.hh"

#include <cmath>

#include "common/rng.hh"

namespace cicero {

std::vector<Pose>
orbitTrajectory(const OrbitParams &params, int numFrames)
{
    std::vector<Pose> traj;
    traj.reserve(numFrames);
    for (int i = 0; i < numFrames; ++i) {
        float t = i / params.fps;
        float az = deg2rad(params.startDeg + params.degPerSecond * t);
        float h = params.height +
                  params.heightWobble *
                      std::sin(2.0f * kPi * t / params.wobblePeriodS);
        Vec3 eye{params.target.x + params.radius * std::cos(az),
                 params.target.y + h,
                 params.target.z + params.radius * std::sin(az)};
        traj.push_back(Pose::lookAt(eye, params.target,
                                    {0.0f, 1.0f, 0.0f}));
    }
    return traj;
}

void
applyJitter(std::vector<Pose> &traj, const JitterParams &params)
{
    Rng rng(params.seed);
    for (Pose &p : traj) {
        if (params.posSigma > 0.0f) {
            p.pos += Vec3{rng.normal(), rng.normal(), rng.normal()} *
                     params.posSigma;
        }
        if (params.rotSigmaDeg > 0.0f) {
            Vec3 axis = rng.uniformDirection();
            float ang = deg2rad(rng.normal() * params.rotSigmaDeg);
            p.rot = Mat3::rotation(axis, ang) * p.rot;
        }
    }
}

std::vector<Pose>
decimate(const std::vector<Pose> &traj, int stride)
{
    std::vector<Pose> out;
    for (std::size_t i = 0; i < traj.size();
         i += static_cast<std::size_t>(stride))
        out.push_back(traj[i]);
    return out;
}

double
meanConsecutiveAngleDeg(const std::vector<Pose> &traj)
{
    if (traj.size() < 2)
        return 0.0;
    double acc = 0.0;
    for (std::size_t i = 1; i < traj.size(); ++i) {
        acc += rad2deg(
            angleBetween(traj[i - 1].forward(), traj[i].forward()));
    }
    return acc / (traj.size() - 1);
}

} // namespace cicero
