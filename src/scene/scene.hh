/**
 * @file
 * The procedural scene library.
 *
 * Substitutes the paper's datasets (DESIGN.md §2):
 *  - 8 "synthetic" scenes stand in for Synthetic-NeRF (chair, drums,
 *    ficus, hotdog, lego, materials, mic, ship);
 *  - "bonsai" stands in for Unbounded-360 Bonsai;
 *  - "ignatius" stands in for Tanks and Temples Ignatius — it is built
 *    with strongly non-diffuse materials and high depth complexity, the
 *    properties the paper's Sec. VI-F analysis depends on.
 */

#ifndef CICERO_SCENE_SCENE_HH
#define CICERO_SCENE_SCENE_HH

#include <memory>
#include <string>
#include <vector>

#include "scene/field.hh"

namespace cicero {

/**
 * A named scene: an analytic field plus the rendering metadata shared by
 * every experiment (background color, recommended camera distance).
 */
struct Scene
{
    std::string name;
    AnalyticField field;
    Vec3 background{1.0f, 1.0f, 1.0f}; //!< Synthetic-NeRF uses white bg
    float cameraDistance = 3.0f;       //!< orbit radius for trajectories
    float fovYDeg = 40.0f;             //!< vertical field of view
};

/** Names of the eight Synthetic-NeRF stand-in scenes. */
const std::vector<std::string> &syntheticSceneNames();

/** Names of the two real-world stand-in scenes. */
const std::vector<std::string> &realWorldSceneNames();

/**
 * Build a scene by name. Valid names are those returned by
 * syntheticSceneNames() and realWorldSceneNames().
 *
 * @throws std::invalid_argument for unknown names.
 */
Scene makeScene(const std::string &name);

} // namespace cicero

#endif // CICERO_SCENE_SCENE_HH
