/**
 * @file
 * Camera trajectory generators.
 *
 * Real-time VR rendering visits camera poses along a smooth, temporally
 * dense path (>= 30 FPS). The paper's Fig. 7/25 analysis hinges on the
 * pose spacing of consecutive frames, so trajectories are parameterized
 * by frame rate and angular velocity; a 1 FPS sequence is obtained by
 * decimation exactly as the Tanks and Temples capture is.
 */

#ifndef CICERO_SCENE_TRAJECTORY_HH
#define CICERO_SCENE_TRAJECTORY_HH

#include <cstdint>
#include <vector>

#include "common/geometry.hh"
#include "common/math.hh"

namespace cicero {

/** Parameters of an orbiting camera path around a scene. */
struct OrbitParams
{
    Vec3 target;              //!< point the camera looks at
    float radius = 3.0f;      //!< orbit radius
    float height = 0.6f;      //!< camera height above the target
    float fps = 30.0f;        //!< temporal resolution of the sequence
    float degPerSecond = 20.0f; //!< angular velocity around the target
    float startDeg = 0.0f;    //!< initial azimuth
    float heightWobble = 0.15f; //!< vertical oscillation amplitude
    float wobblePeriodS = 4.0f; //!< vertical oscillation period (seconds)
};

/** Parameters of hand-held jitter layered on a trajectory. */
struct JitterParams
{
    float posSigma = 0.0f;  //!< per-frame positional noise (world units)
    float rotSigmaDeg = 0.0f; //!< per-frame rotational noise
    std::uint64_t seed = 1234;
};

/**
 * Generate @p numFrames poses orbiting per @p params; every pose looks at
 * the orbit target.
 */
std::vector<Pose> orbitTrajectory(const OrbitParams &params, int numFrames);

/** Apply hand-held jitter to an existing trajectory (in place). */
void applyJitter(std::vector<Pose> &traj, const JitterParams &params);

/**
 * Keep every @p stride-th pose — e.g. stride 30 turns a 30 FPS sequence
 * into the 1 FPS sequence used in the paper's Fig. 25a.
 */
std::vector<Pose> decimate(const std::vector<Pose> &traj, int stride);

/**
 * Mean fractional angular pose difference between consecutive frames,
 * in degrees — a quick characterization statistic for a trajectory.
 */
double meanConsecutiveAngleDeg(const std::vector<Pose> &traj);

} // namespace cicero

#endif // CICERO_SCENE_TRAJECTORY_HH
