#include "scene/scene.hh"

#include <stdexcept>

#include "common/rng.hh"

namespace cicero {

namespace {

Primitive
prim(PrimShape shape, Vec3 center, Vec3 size, Vec3 albedo,
     float specular = 0.0f, float sigmaMax = 40.0f)
{
    Primitive p;
    p.shape = shape;
    p.center = center;
    p.size = size;
    p.albedo = albedo;
    p.specular = specular;
    p.sigmaMax = sigmaMax;
    return p;
}

/** A flat ground slab shared by several scenes. */
Primitive
ground(float y = -0.8f, Vec3 albedo = {0.55f, 0.5f, 0.45f})
{
    return prim(PrimShape::Box, {0.0f, y - 0.05f, 0.0f},
                {0.95f, 0.05f, 0.95f}, albedo);
}

Scene
sceneChair()
{
    Scene s;
    s.name = "chair";
    // Seat, backrest and four legs.
    s.field.addPrimitive(prim(PrimShape::Box, {0.0f, -0.1f, 0.0f},
                              {0.35f, 0.05f, 0.35f},
                              {0.65f, 0.4f, 0.25f}));
    s.field.addPrimitive(prim(PrimShape::Box, {0.0f, 0.35f, -0.32f},
                              {0.35f, 0.4f, 0.04f},
                              {0.6f, 0.38f, 0.22f}));
    for (int ix = -1; ix <= 1; ix += 2) {
        for (int iz = -1; iz <= 1; iz += 2) {
            s.field.addPrimitive(
                prim(PrimShape::Cylinder,
                     {0.3f * ix, -0.45f, 0.3f * iz},
                     {0.04f, 0.35f, 0.0f}, {0.4f, 0.26f, 0.16f}));
        }
    }
    s.field.addPrimitive(ground());
    return s;
}

Scene
sceneDrums()
{
    Scene s;
    s.name = "drums";
    s.field.addPrimitive(prim(PrimShape::Cylinder, {-0.35f, -0.3f, 0.1f},
                              {0.28f, 0.18f, 0.0f},
                              {0.75f, 0.15f, 0.15f}, 0.25f));
    s.field.addPrimitive(prim(PrimShape::Cylinder, {0.35f, -0.3f, 0.1f},
                              {0.28f, 0.18f, 0.0f},
                              {0.15f, 0.25f, 0.7f}, 0.25f));
    s.field.addPrimitive(prim(PrimShape::Cylinder, {0.0f, -0.1f, -0.35f},
                              {0.34f, 0.22f, 0.0f},
                              {0.85f, 0.75f, 0.3f}, 0.3f));
    // Cymbals: thin discs with strong specular.
    s.field.addPrimitive(prim(PrimShape::Cylinder, {-0.45f, 0.35f, -0.2f},
                              {0.24f, 0.015f, 0.0f},
                              {0.9f, 0.85f, 0.5f}, 0.7f));
    s.field.addPrimitive(prim(PrimShape::Cylinder, {0.45f, 0.4f, -0.2f},
                              {0.2f, 0.015f, 0.0f},
                              {0.9f, 0.85f, 0.5f}, 0.7f));
    s.field.addPrimitive(ground());
    return s;
}

Scene
sceneFicus()
{
    Scene s;
    s.name = "ficus";
    // Pot, trunk and a canopy of foliage blobs.
    s.field.addPrimitive(prim(PrimShape::Cylinder, {0.0f, -0.6f, 0.0f},
                              {0.22f, 0.15f, 0.0f},
                              {0.7f, 0.35f, 0.2f}));
    s.field.addPrimitive(prim(PrimShape::Cylinder, {0.0f, -0.2f, 0.0f},
                              {0.05f, 0.3f, 0.0f},
                              {0.45f, 0.3f, 0.15f}));
    Rng rng(42);
    for (int i = 0; i < 14; ++i) {
        Vec3 off = rng.uniformDirection() * rng.uniform(0.05f, 0.3f);
        off.y = std::fabs(off.y) * 0.8f;
        float r = rng.uniform(0.08f, 0.18f);
        s.field.addPrimitive(prim(PrimShape::Sphere,
                                  Vec3{0.0f, 0.25f, 0.0f} + off,
                                  {r, r, r},
                                  {0.15f + rng.uniform() * 0.1f,
                                   0.5f + rng.uniform() * 0.25f, 0.15f},
                                  0.05f, 25.0f));
    }
    return s;
}

Scene
sceneHotdog()
{
    Scene s;
    s.name = "hotdog";
    s.field.addPrimitive(prim(PrimShape::Box, {0.0f, -0.35f, 0.0f},
                              {0.55f, 0.04f, 0.4f},
                              {0.92f, 0.92f, 0.9f}, 0.35f));
    auto bun = prim(PrimShape::RoundBox, {0.0f, -0.22f, 0.0f},
                    {0.45f, 0.08f, 0.16f}, {0.85f, 0.6f, 0.3f});
    s.field.addPrimitive(bun);
    auto sausage = prim(PrimShape::Cylinder, {0.0f, -0.1f, 0.0f},
                        {0.07f, 0.42f, 0.0f}, {0.75f, 0.25f, 0.12f}, 0.4f);
    sausage.rot = Mat3::rotationZ(deg2rad(90.0f));
    s.field.addPrimitive(sausage);
    return s;
}

Scene
sceneLego()
{
    Scene s;
    s.name = "lego";
    // A stepped "bulldozer" silhouette out of bricks.
    s.field.addPrimitive(prim(PrimShape::Box, {0.0f, -0.5f, 0.0f},
                              {0.55f, 0.1f, 0.35f},
                              {0.9f, 0.75f, 0.1f}));
    s.field.addPrimitive(prim(PrimShape::Box, {-0.1f, -0.28f, 0.0f},
                              {0.4f, 0.12f, 0.3f},
                              {0.85f, 0.7f, 0.08f}));
    s.field.addPrimitive(prim(PrimShape::Box, {-0.25f, -0.02f, 0.0f},
                              {0.22f, 0.14f, 0.26f},
                              {0.3f, 0.3f, 0.32f}));
    // Blade.
    auto blade = prim(PrimShape::Box, {0.52f, -0.38f, 0.0f},
                      {0.06f, 0.18f, 0.38f}, {0.75f, 0.72f, 0.7f}, 0.5f);
    blade.rot = Mat3::rotationZ(deg2rad(12.0f));
    s.field.addPrimitive(blade);
    // Wheels.
    for (int ix = -1; ix <= 1; ix += 2) {
        for (int iz = -1; iz <= 1; iz += 2) {
            auto wheel = prim(PrimShape::Torus,
                              {0.28f * ix, -0.52f, 0.3f * iz},
                              {0.1f, 0.045f, 0.0f},
                              {0.12f, 0.12f, 0.12f});
            wheel.rot = Mat3::rotationX(deg2rad(90.0f));
            s.field.addPrimitive(wheel);
        }
    }
    return s;
}

Scene
sceneMaterials()
{
    Scene s;
    s.name = "materials";
    // A grid of spheres with increasing specularity — the classic
    // materials test; strongly view-dependent by construction.
    int idx = 0;
    for (int i = -1; i <= 1; ++i) {
        for (int j = -1; j <= 1; ++j) {
            float spec = idx / 9.0f;
            Vec3 albedo{0.3f + 0.2f * (i + 1), 0.25f + 0.2f * (j + 1),
                        0.6f - 0.15f * (i + 1)};
            s.field.addPrimitive(prim(PrimShape::Sphere,
                                      {0.45f * i, -0.35f, 0.45f * j},
                                      {0.16f, 0.16f, 0.16f}, albedo,
                                      spec, 45.0f));
            ++idx;
        }
    }
    s.field.addPrimitive(ground(-0.6f, {0.2f, 0.2f, 0.22f}));
    return s;
}

Scene
sceneMic()
{
    Scene s;
    s.name = "mic";
    s.field.addPrimitive(prim(PrimShape::Sphere, {0.0f, 0.3f, 0.0f},
                              {0.2f, 0.2f, 0.2f},
                              {0.7f, 0.7f, 0.75f}, 0.6f));
    auto arm = prim(PrimShape::Cylinder, {0.12f, -0.05f, 0.0f},
                    {0.035f, 0.38f, 0.0f}, {0.3f, 0.3f, 0.32f}, 0.3f);
    arm.rot = Mat3::rotationZ(deg2rad(-20.0f));
    s.field.addPrimitive(arm);
    s.field.addPrimitive(prim(PrimShape::Cylinder, {0.2f, -0.45f, 0.0f},
                              {0.3f, 0.04f, 0.0f},
                              {0.25f, 0.25f, 0.28f}, 0.2f));
    return s;
}

Scene
sceneShip()
{
    Scene s;
    s.name = "ship";
    // Hull, deck, mast — floating above a specular "water" slab.
    auto hull = prim(PrimShape::RoundBox, {0.0f, -0.3f, 0.0f},
                     {0.5f, 0.12f, 0.18f}, {0.45f, 0.28f, 0.15f});
    s.field.addPrimitive(hull);
    s.field.addPrimitive(prim(PrimShape::Box, {0.0f, -0.14f, 0.0f},
                              {0.42f, 0.03f, 0.15f},
                              {0.6f, 0.45f, 0.3f}));
    s.field.addPrimitive(prim(PrimShape::Cylinder, {0.0f, 0.2f, 0.0f},
                              {0.03f, 0.35f, 0.0f},
                              {0.4f, 0.3f, 0.2f}));
    s.field.addPrimitive(prim(PrimShape::Box, {0.18f, 0.25f, 0.0f},
                              {0.14f, 0.2f, 0.01f},
                              {0.9f, 0.88f, 0.8f}));
    // Water: large thin slab, very specular.
    s.field.addPrimitive(prim(PrimShape::Box, {0.0f, -0.62f, 0.0f},
                              {0.95f, 0.08f, 0.95f},
                              {0.1f, 0.25f, 0.4f}, 0.75f));
    return s;
}

/** Bonsai (Unbounded-360 stand-in): dense foliage over a table top. */
Scene
sceneBonsai()
{
    Scene s;
    s.name = "bonsai";
    s.cameraDistance = 2.6f;
    s.background = {0.35f, 0.35f, 0.4f};
    s.field.addPrimitive(prim(PrimShape::Cylinder, {0.0f, -0.65f, 0.0f},
                              {0.7f, 0.08f, 0.0f},
                              {0.5f, 0.4f, 0.3f}));
    s.field.addPrimitive(prim(PrimShape::RoundBox, {0.0f, -0.45f, 0.0f},
                              {0.3f, 0.12f, 0.2f},
                              {0.35f, 0.25f, 0.5f}, 0.3f));
    auto trunk = prim(PrimShape::Cylinder, {0.05f, -0.15f, 0.0f},
                      {0.06f, 0.25f, 0.0f}, {0.4f, 0.28f, 0.18f});
    trunk.rot = Mat3::rotationZ(deg2rad(15.0f));
    s.field.addPrimitive(trunk);
    Rng rng(7);
    for (int i = 0; i < 18; ++i) {
        Vec3 off = rng.uniformDirection() * rng.uniform(0.08f, 0.35f);
        off.y = std::fabs(off.y) * 0.6f;
        float r = rng.uniform(0.07f, 0.16f);
        s.field.addPrimitive(prim(PrimShape::Sphere,
                                  Vec3{0.1f, 0.22f, 0.0f} + off,
                                  {r, r, r},
                                  {0.2f, 0.45f + rng.uniform() * 0.2f,
                                   0.12f},
                                  0.1f, 30.0f));
    }
    return s;
}

/**
 * Ignatius (Tanks and Temples stand-in): a statue-like figure with a
 * polished bronze finish — the strongly non-diffuse case that stresses
 * the radiance approximation at low temporal resolution (Sec. VI-F).
 */
Scene
sceneIgnatius()
{
    Scene s;
    s.name = "ignatius";
    s.cameraDistance = 2.8f;
    s.background = {0.45f, 0.5f, 0.55f};
    const Vec3 bronze{0.55f, 0.35f, 0.18f};
    const float spec = 0.65f;
    // Torso, head, arms, legs and a pedestal.
    s.field.addPrimitive(prim(PrimShape::RoundBox, {0.0f, 0.05f, 0.0f},
                              {0.18f, 0.3f, 0.12f}, bronze, spec));
    s.field.addPrimitive(prim(PrimShape::Sphere, {0.0f, 0.5f, 0.0f},
                              {0.12f, 0.12f, 0.12f}, bronze, spec));
    for (int ix = -1; ix <= 1; ix += 2) {
        auto arm = prim(PrimShape::Cylinder, {0.26f * ix, 0.12f, 0.0f},
                        {0.05f, 0.24f, 0.0f}, bronze, spec);
        arm.rot = Mat3::rotationZ(deg2rad(14.0f * ix));
        s.field.addPrimitive(arm);
        s.field.addPrimitive(prim(PrimShape::Cylinder,
                                  {0.1f * ix, -0.5f, 0.0f},
                                  {0.06f, 0.26f, 0.0f}, bronze, spec));
    }
    s.field.addPrimitive(prim(PrimShape::Cylinder, {0.0f, -0.82f, 0.0f},
                              {0.4f, 0.07f, 0.0f},
                              {0.4f, 0.4f, 0.42f}, 0.2f));
    return s;
}

} // namespace

const std::vector<std::string> &
syntheticSceneNames()
{
    static const std::vector<std::string> names = {
        "chair", "drums", "ficus", "hotdog",
        "lego", "materials", "mic", "ship",
    };
    return names;
}

const std::vector<std::string> &
realWorldSceneNames()
{
    static const std::vector<std::string> names = {"bonsai", "ignatius"};
    return names;
}

Scene
makeScene(const std::string &name)
{
    if (name == "chair") return sceneChair();
    if (name == "drums") return sceneDrums();
    if (name == "ficus") return sceneFicus();
    if (name == "hotdog") return sceneHotdog();
    if (name == "lego") return sceneLego();
    if (name == "materials") return sceneMaterials();
    if (name == "mic") return sceneMic();
    if (name == "ship") return sceneShip();
    if (name == "bonsai") return sceneBonsai();
    if (name == "ignatius") return sceneIgnatius();
    throw std::invalid_argument("unknown scene: " + name);
}

} // namespace cicero
