/**
 * @file
 * Reference-pose extrapolation (Sec. III-C, Eqs. 5-6).
 *
 * SPARW's key scheduling idea: reference frames need not sit on the
 * camera trajectory — they only have to be *near* it. Their poses are
 * extrapolated from already-known target poses (velocity at the latest
 * pose, projected half a window ahead), which breaks the
 * reference-to-target dependency and lets reference rendering overlap
 * target rendering (Fig. 11b).
 */

#ifndef CICERO_CICERO_POSE_EXTRAPOLATION_HH
#define CICERO_CICERO_POSE_EXTRAPOLATION_HH

#include "common/math.hh"

namespace cicero {

/**
 * Extrapolate the reference pose for the *next* warping window.
 *
 * @param prev       pose T_{k-1} (older of the two known poses)
 * @param curr       pose T_k (latest known pose)
 * @param dtSeconds  frame interval Δt
 * @param window     N, the number of target frames per reference
 * @param leadFrames extra frames between `curr` and the start of the
 *                   next window (how far ahead the window begins)
 *
 * Position follows Eq. 6: R = T_k + v * t_r with v = (T_k - T_{k-1})/Δt
 * and t_r = (leadFrames + N/2) * Δt, placing the reference near the
 * center of its window. Orientation is slerp-extrapolated at the same
 * rate.
 */
Pose extrapolateReferencePose(const Pose &prev, const Pose &curr,
                              float dtSeconds, int window,
                              int leadFrames = 1);

} // namespace cicero

#endif // CICERO_CICERO_POSE_EXTRAPOLATION_HH
