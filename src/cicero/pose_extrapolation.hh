/**
 * @file
 * Reference-pose extrapolation (Sec. III-C, Eqs. 5-6).
 *
 * SPARW's key scheduling idea: reference frames need not sit on the
 * camera trajectory — they only have to be *near* it. Their poses are
 * extrapolated from already-known target poses (velocity at the latest
 * pose, projected half a window ahead), which breaks the
 * reference-to-target dependency and lets reference rendering overlap
 * target rendering (Fig. 11b).
 *
 * The real-time SPARW mode extends the same idea to the per-frame
 * level: it estimates a PoseVelocity from the last two delivered poses
 * and renders ahead of the *predicted* pose so a frame is ready by its
 * deadline. estimatePoseVelocity/extrapolatePose are that reusable
 * core; extrapolateReferencePose is the window-level convenience the
 * offline pipeline uses.
 */

#ifndef CICERO_CICERO_POSE_EXTRAPOLATION_HH
#define CICERO_CICERO_POSE_EXTRAPOLATION_HH

#include "common/math.hh"

namespace cicero {

/**
 * Smallest frame interval estimatePoseVelocity will divide by. Pose
 * deltas over intervals shorter than this (duplicate timestamps,
 * clock glitches) would explode the velocity estimate; the dt is
 * clamped up to this floor instead.
 */
constexpr float kMinPoseDtSeconds = 1e-4f;

/**
 * First-order rigid-body velocity estimated from two poses: linear
 * velocity plus an axis/angular-rate decomposition of the relative
 * rotation (Eq. 5). `axis` is unit length, or zero when the two poses
 * share an orientation (angularRadPerS is then zero too).
 */
struct PoseVelocity
{
    Vec3 linear;                 //!< m/s
    Vec3 axis;                   //!< unit rotation axis (world frame)
    float angularRadPerS = 0.0f; //!< signed rate about `axis`
};

/**
 * Estimate the velocity carrying @p prev to @p curr over @p dtSeconds.
 * dtSeconds is clamped to kMinPoseDtSeconds so degenerate intervals
 * cannot produce NaN/inf velocities.
 */
PoseVelocity estimatePoseVelocity(const Pose &prev, const Pose &curr,
                                  float dtSeconds);

/**
 * Project @p curr forward by @p aheadSeconds at velocity @p vel
 * (Eq. 6: constant linear velocity, constant-rate rotation about the
 * estimated axis). When @p maxAheadSeconds is non-negative the horizon
 * is clamped to it — long prediction horizons amplify velocity noise,
 * so real-time callers bound them; window-level extrapolation passes a
 * negative value and keeps the full horizon.
 */
Pose extrapolatePose(const Pose &curr, const PoseVelocity &vel,
                     float aheadSeconds, float maxAheadSeconds = -1.0f);

/**
 * Extrapolate the reference pose for the *next* warping window.
 *
 * @param prev       pose T_{k-1} (older of the two known poses)
 * @param curr       pose T_k (latest known pose)
 * @param dtSeconds  frame interval Δt
 * @param window     N, the number of target frames per reference
 * @param leadFrames extra frames between `curr` and the start of the
 *                   next window (how far ahead the window begins)
 *
 * Position follows Eq. 6: R = T_k + v * t_r with v = (T_k - T_{k-1})/Δt
 * and t_r = (leadFrames + N/2) * Δt, placing the reference near the
 * center of its window. Orientation extrapolates the relative rotation
 * at its estimated angular rate. The horizon is *not* clamped here —
 * large windows legitimately look many frames ahead.
 */
Pose extrapolateReferencePose(const Pose &prev, const Pose &curr,
                              float dtSeconds, int window,
                              int leadFrames = 1);

} // namespace cicero

#endif // CICERO_CICERO_POSE_EXTRAPOLATION_HH
