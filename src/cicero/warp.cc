#include "cicero/warp.hh"

#include <cmath>

#include "common/parallel.hh"

namespace cicero {

namespace {

/**
 * Shared warp implementation; when @p gbuffer is non-null, each splat's
 * color is re-shaded from the reference view direction to the target
 * view direction using the per-pixel material attributes (the
 * radiance-transfer extension).
 */
WarpOutput
warpImpl(const Image &refImage, const DepthMap &refDepth,
         const GBuffer *gbuffer, const Camera &refCam,
         const Camera &tgtCam, const OccupancyGrid *occupancy,
         const Vec3 &background, const Vec3 &lightDir,
         const WarpParams &params)
{
    WarpOutput out;
    out.image = Image(tgtCam.width, tgtCam.height);
    out.depth = DepthMap(tgtCam.width, tgtCam.height, kInfiniteDepth);
    out.stats.totalPixels =
        static_cast<std::uint64_t>(tgtCam.width) * tgtCam.height;

    const float cosThresh =
        std::cos(deg2rad(clamp(params.maxAngleDeg, 0.0f, 180.0f)));

    const std::size_t numPixels =
        static_cast<std::size_t>(tgtCam.width) * tgtCam.height;

    // Bilinear forward splatting in two passes: pass 1 builds a
    // min-depth z-buffer; pass 2 accumulates bilinearly weighted colors
    // from the points that (nearly) win the depth test. This removes
    // the half-pixel rounding error of nearest-pixel splatting, which
    // otherwise dominates the warping PSNR loss.
    std::vector<float> zbuf(numPixels, kInfiniteDepth);
    std::vector<float> wacc(numPixels, 0.0f);
    std::vector<Vec3> cacc(numPixels);
    std::vector<float> bestZ(numPixels, kInfiniteDepth);
    std::vector<Vec3> bestColor(numPixels);

    // Eq. (2): point cloud transform ref-camera -> target-camera frame.
    Mat4 refToTgt = refCam.pose.transformTo(tgtCam.pose);

    // Projection results are cached between the passes.
    struct Splat
    {
        float x, y, z;
        float tol; //!< depth-test tolerance (gradient-aware)
        Vec3 color; //!< (possibly re-shaded) source color
    };

    // Stage A — transform / angle-test / re-shade / project every
    // reference pixel (Eqs. 1-3, the compute-heavy part). Row chunks
    // run in parallel, each producing an ordered local splat list and
    // local counters; concatenating in chunk order reproduces the
    // serial row-major splat order exactly, so the (serial) z-buffer
    // passes below see an identical stream at any thread count.
    struct SplatPart
    {
        std::vector<Splat> splats;
        std::uint64_t transformed = 0;
        std::uint64_t angleRejected = 0;
    };
    std::vector<SplatPart> splatParts = parallelMapChunks<SplatPart>(
        refCam.height,
        [&](SplatPart &part, std::int64_t row0, std::int64_t row1) {
        std::vector<Splat> &localSplats = part.splats;
        localSplats.reserve(static_cast<std::size_t>(row1 - row0) *
                            refCam.width / 2);
        std::uint64_t transformed = 0;
        std::uint64_t angleRejected = 0;

        for (int py = static_cast<int>(row0); py < row1; ++py) {
        for (int px = 0; px < refCam.width; ++px) {
            float d = refDepth.at(px, py);
            if (!std::isfinite(d))
                continue;

            // Eq. (1): back-project to the reference camera frame.
            Vec3 pRef = refCam.backproject(static_cast<float>(px),
                                           static_cast<float>(py), d);
            ++transformed;

            Vec3 pWorld = refCam.pose.cameraToWorld(pRef);
            Vec3 toRef = (refCam.pose.pos - pWorld).normalized();
            Vec3 toTgt = (tgtCam.pose.pos - pWorld).normalized();

            // Warping heuristic (Sec. III-C): angle subtended at the
            // scene point by the two camera centers.
            if (cosThresh > -1.0f + 1e-6f &&
                toRef.dot(toTgt) < cosThresh) {
                ++angleRejected;
                continue;
            }

            Vec3 color = refImage.at(
                static_cast<std::size_t>(py) * refCam.width + px);
            if (gbuffer) {
                // Radiance transfer (Sec. VIII): replace the
                // view-dependent shading of the reference ray with that
                // of the target ray; keep the unmodeled residual.
                const BakedPoint &m = gbuffer->at(
                    static_cast<std::size_t>(py) * refCam.width + px);
                // Only re-shade where the material estimate is
                // unambiguous: a (near-)opaque single surface. Blended
                // G-buffer entries (silhouettes, semi-transparent
                // stacks) carry averaged normals whose predicted
                // highlight would be wrong.
                if (m.sigma > 0.7f && m.specular > 1e-3f) {
                    Vec3 shadeRef = shadePoint(m, -toRef, lightDir);
                    Vec3 shadeTgt = shadePoint(m, -toTgt, lightDir);
                    color += (shadeTgt - shadeRef) * m.sigma;
                    color = Vec3::max(
                        Vec3{}, Vec3::min(color, Vec3{1.f, 1.f, 1.f}));
                }
            }

            Vec3 pTgt = refToTgt.transformPoint(pRef);

            // Eq. (3): perspective projection into the target frame.
            Vec3 proj = tgtCam.projectCameraSpace(pTgt);
            if (proj.z <= 0.0f)
                continue;
            if (proj.x <= -1.0f || proj.y <= -1.0f ||
                proj.x >= tgtCam.width || proj.y >= tgtCam.height)
                continue;

            // Depth-test tolerance: a grazing surface legitimately spans
            // a large depth range within one pixel, so scale the
            // tolerance with the local reference depth gradient (capped
            // so foreground/background stay separated).
            float grad = 0.0f;
            for (auto [nx, ny] : {std::pair{px + 1, py},
                                  std::pair{px - 1, py},
                                  std::pair{px, py + 1},
                                  std::pair{px, py - 1}}) {
                if (nx < 0 || ny < 0 || nx >= refCam.width ||
                    ny >= refCam.height)
                    continue;
                float nd = refDepth.at(nx, ny);
                if (std::isfinite(nd))
                    grad = std::fmax(grad, std::fabs(nd - d));
            }
            float tol = clamp(1.5f * grad, 0.02f * proj.z,
                              0.10f * proj.z);

            localSplats.push_back(
                Splat{proj.x, proj.y, proj.z, tol, color});
        }
        }
        part.transformed = transformed;
        part.angleRejected = angleRejected;
    });

    std::vector<Splat> splats;
    {
        std::size_t total = 0;
        for (const auto &p : splatParts)
            total += p.splats.size();
        splats.reserve(total);
        for (const SplatPart &p : splatParts) {
            splats.insert(splats.end(), p.splats.begin(),
                          p.splats.end());
            out.stats.pointsTransformed += p.transformed;
            out.stats.angleRejected += p.angleRejected;
        }
    }

    // Pass 1: min-depth z-buffer over each splat's 2x2 bilinear
    // footprint. Cheap memory-bound fmin scatter; kept serial (fmin is
    // order-independent, but neighboring splats contend for pixels).
    for (const Splat &s : splats) {
        int x0 = static_cast<int>(std::floor(s.x));
        int y0 = static_cast<int>(std::floor(s.y));
        for (int dy = 0; dy < 2; ++dy) {
            for (int dx = 0; dx < 2; ++dx) {
                int tx = x0 + dx, ty = y0 + dy;
                if (!out.image.inBounds(tx, ty))
                    continue;
                float w = (dx ? s.x - x0 : 1.0f - (s.x - x0)) *
                          (dy ? s.y - y0 : 1.0f - (s.y - y0));
                if (w < 0.05f)
                    continue;
                std::size_t idx =
                    static_cast<std::size_t>(ty) * tgtCam.width + tx;
                zbuf[idx] = std::fmin(zbuf[idx], s.z);
            }
        }
    }

    // Pass 2: accumulate colors of near-winning points.
    for (const Splat &s : splats) {
        int x0 = static_cast<int>(std::floor(s.x));
        int y0 = static_cast<int>(std::floor(s.y));
        const Vec3 &color = s.color;
        for (int dy = 0; dy < 2; ++dy) {
            for (int dx = 0; dx < 2; ++dx) {
                int tx = x0 + dx, ty = y0 + dy;
                if (!out.image.inBounds(tx, ty))
                    continue;
                float w = (dx ? s.x - x0 : 1.0f - (s.x - x0)) *
                          (dy ? s.y - y0 : 1.0f - (s.y - y0));
                if (w < 0.05f)
                    continue;
                std::size_t idx =
                    static_cast<std::size_t>(ty) * tgtCam.width + tx;
                // Tolerate depth spread around the winner so adjacent
                // surface points blend instead of z-fighting.
                if (s.z <= zbuf[idx] + s.tol) {
                    wacc[idx] += w;
                    cacc[idx] += color * w;
                }
                if (s.z < bestZ[idx]) {
                    bestZ[idx] = s.z;
                    bestColor[idx] = color;
                }
            }
        }
    }

    // Resolve: per-pixel, independent writes — parallel.
    parallelFor(
        0, static_cast<std::int64_t>(numPixels), -1,
        [&](std::int64_t i0, std::int64_t i1) {
            for (std::size_t idx = static_cast<std::size_t>(i0);
                 idx < static_cast<std::size_t>(i1); ++idx) {
                // A pixel is covered once it accumulated meaningful
                // splat weight; weakly touched pixels become holes for
                // the sparse NeRF pass (this is what keeps silhouettes
                // sharp).
                if (wacc[idx] > 0.3f) {
                    int tx = static_cast<int>(idx % tgtCam.width);
                    int ty = static_cast<int>(idx / tgtCam.width);
                    out.image.at(tx, ty) = cacc[idx] / wacc[idx];
                    out.depth.at(tx, ty) = zbuf[idx];
                } else {
                    zbuf[idx] = kInfiniteDepth;
                }
            }
        });

    // Pinhole filling: single-pixel forward splatting leaves isolated
    // holes under magnification/rotation. A hole surrounded by covered
    // pixels (>= 6 of 8 neighbors) is a sampling artifact, not a
    // disocclusion — fill it from the nearest-depth neighbor, the
    // standard fix in point-based rendering.
    {
        // Detection reads a consistent zbuf snapshot: parallel row
        // chunks, candidate lists concatenated in row order.
        std::vector<std::uint32_t> fills =
            parallelConcatChunks<std::uint32_t>(
                tgtCam.height, [&](std::vector<std::uint32_t> &local,
                                   std::int64_t row0, std::int64_t row1) {
            for (int ty = static_cast<int>(row0); ty < row1; ++ty) {
            for (int tx = 0; tx < tgtCam.width; ++tx) {
                std::size_t idx =
                    static_cast<std::size_t>(ty) * tgtCam.width + tx;
                if (std::isfinite(zbuf[idx]))
                    continue;
                int covered = 0;
                for (int dy = -1; dy <= 1; ++dy) {
                    for (int dx = -1; dx <= 1; ++dx) {
                        if (dx == 0 && dy == 0)
                            continue;
                        int nx = tx + dx, ny = ty + dy;
                        if (!out.image.inBounds(nx, ny))
                            continue;
                        std::size_t nidx =
                            static_cast<std::size_t>(ny) * tgtCam.width +
                            nx;
                        covered += std::isfinite(zbuf[nidx]);
                    }
                }
                if (covered >= 6)
                    local.push_back(static_cast<std::uint32_t>(idx));
            }
            }
        });

        // Filling mutates zbuf while later fills read it (an earlier
        // fill can seed a later one's neighborhood), so application is
        // order-dependent and stays serial.
        for (std::uint32_t idx : fills) {
            int tx = idx % tgtCam.width;
            int ty = idx / tgtCam.width;
            float best = kInfiniteDepth;
            Vec3 color;
            for (int dy = -1; dy <= 1; ++dy) {
                for (int dx = -1; dx <= 1; ++dx) {
                    int nx = tx + dx, ny = ty + dy;
                    if (!out.image.inBounds(nx, ny))
                        continue;
                    std::size_t nidx =
                        static_cast<std::size_t>(ny) * tgtCam.width + nx;
                    if (zbuf[nidx] < best) {
                        best = zbuf[nidx];
                        color = out.image.at(nx, ny);
                    }
                }
            }
            zbuf[idx] = best;
            out.image.at(tx, ty) = color;
            out.depth.at(tx, ty) = best;
        }
    }

    // Hole classification: void (skip) vs disoccluded (sparse NeRF).
    // The occupancy ray test per hole is the expensive part; row
    // chunks run in parallel with per-chunk counters and needRender
    // lists concatenated in row order (the sparse renderer receives
    // the same pixel order as the serial pass).
    {
        struct ClassifyPart
        {
            std::uint64_t warped = 0;
            std::uint64_t disoccluded = 0;
            std::uint64_t voidHoles = 0;
            std::vector<std::uint32_t> needRender;
        };
        std::vector<ClassifyPart> classParts =
            parallelMapChunks<ClassifyPart>(
                tgtCam.height, [&](ClassifyPart &part, std::int64_t row0,
                                   std::int64_t row1) {
            for (int ty = static_cast<int>(row0); ty < row1; ++ty) {
            for (int tx = 0; tx < tgtCam.width; ++tx) {
                std::size_t idx =
                    static_cast<std::size_t>(ty) * tgtCam.width + tx;
                if (std::isfinite(zbuf[idx])) {
                    ++part.warped;
                    continue;
                }
                bool hit = true;
                if (occupancy) {
                    Ray ray = tgtCam.generateRay(tx, ty);
                    hit = occupancy->rayHitsOccupied(ray);
                }
                if (hit) {
                    ++part.disoccluded;
                    part.needRender.push_back(
                        static_cast<std::uint32_t>(idx));
                } else {
                    ++part.voidHoles;
                    out.image.at(tx, ty) = background;
                    out.depth.at(tx, ty) = kInfiniteDepth;
                }
            }
            }
        });
        for (const ClassifyPart &part : classParts) {
            out.stats.warped += part.warped;
            out.stats.disoccluded += part.disoccluded;
            out.stats.voidHoles += part.voidHoles;
            out.needRender.insert(out.needRender.end(),
                                  part.needRender.begin(),
                                  part.needRender.end());
        }
    }

    return out;
}

} // namespace

WarpOutput
warpFrame(const Image &refImage, const DepthMap &refDepth,
          const Camera &refCam, const Camera &tgtCam,
          const OccupancyGrid *occupancy, const Vec3 &background,
          const WarpParams &params)
{
    return warpImpl(refImage, refDepth, nullptr, refCam, tgtCam,
                    occupancy, background, Vec3{0.0f, 1.0f, 0.0f},
                    params);
}

WarpOutput
warpFrameTransfer(const Image &refImage, const DepthMap &refDepth,
                  const GBuffer &gbuffer, const Camera &refCam,
                  const Camera &tgtCam, const OccupancyGrid *occupancy,
                  const Vec3 &background, const Vec3 &lightDir,
                  const WarpParams &params)
{
    return warpImpl(refImage, refDepth, &gbuffer, refCam, tgtCam,
                    occupancy, background, lightDir, params);
}

} // namespace cicero
