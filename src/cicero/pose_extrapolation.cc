#include "cicero/pose_extrapolation.hh"

#include <algorithm>
#include <cmath>

namespace cicero {

namespace {

/**
 * Decompose a unit quaternion into axis + angle on the shortest arc.
 * Returns angle 0 and a zero axis for (numerically) identity rotations.
 */
void
toAxisAngle(Quat q, Vec3 &axis, float &angle)
{
    // Double cover: q and -q are the same rotation; force w >= 0 so the
    // extracted angle is the short way around.
    if (q.w < 0.0f) {
        q.w = -q.w;
        q.x = -q.x;
        q.y = -q.y;
        q.z = -q.z;
    }
    float s = std::sqrt(q.x * q.x + q.y * q.y + q.z * q.z);
    if (s < 1e-8f) {
        axis = {0.0f, 0.0f, 0.0f};
        angle = 0.0f;
        return;
    }
    axis = Vec3{q.x / s, q.y / s, q.z / s};
    angle = 2.0f * std::atan2(s, q.w);
}

} // namespace

PoseVelocity
estimatePoseVelocity(const Pose &prev, const Pose &curr, float dtSeconds)
{
    float dt = std::max(dtSeconds, kMinPoseDtSeconds);

    PoseVelocity vel;
    vel.linear = (curr.pos - prev.pos) / dt;

    // Relative rotation carrying prev to curr, in the world frame.
    Quat qPrev = Quat::fromMatrix(prev.rot);
    Quat qCurr = Quat::fromMatrix(curr.rot);
    Quat rel = (qCurr * qPrev.conjugate()).normalized();
    float angle = 0.0f;
    toAxisAngle(rel, vel.axis, angle);
    vel.angularRadPerS = angle / dt;
    return vel;
}

Pose
extrapolatePose(const Pose &curr, const PoseVelocity &vel,
                float aheadSeconds, float maxAheadSeconds)
{
    float ahead = aheadSeconds;
    if (maxAheadSeconds >= 0.0f)
        ahead = std::min(ahead, maxAheadSeconds);

    Pose out;
    out.pos = curr.pos + vel.linear * ahead;
    float angle = vel.angularRadPerS * ahead;
    if (std::fabs(angle) < 1e-8f) {
        out.rot = curr.rot;
        return out;
    }
    Quat qCurr = Quat::fromMatrix(curr.rot);
    Quat spin = Quat::fromAxisAngle(vel.axis, angle);
    out.rot = (spin * qCurr).normalized().toMatrix();
    return out;
}

Pose
extrapolateReferencePose(const Pose &prev, const Pose &curr,
                         float dtSeconds, int window, int leadFrames)
{
    // Eq. 5: velocity from the last two rendered poses; Eq. 6 projects
    // it t_r = (leadFrames + N/2) Δt ahead, near the window center.
    float dt = std::max(dtSeconds, kMinPoseDtSeconds);
    PoseVelocity vel = estimatePoseVelocity(prev, curr, dt);
    float framesAhead = leadFrames + 0.5f * window;
    return extrapolatePose(curr, vel, framesAhead * dt);
}

} // namespace cicero
