#include "cicero/pose_extrapolation.hh"

namespace cicero {

Pose
extrapolateReferencePose(const Pose &prev, const Pose &curr,
                         float dtSeconds, int window, int leadFrames)
{
    // Eq. 5: velocity from the last two rendered poses. dtSeconds
    // cancels in position extrapolation (v * t_r = delta * frames), but
    // is kept for clarity and future variable-rate trajectories.
    (void)dtSeconds;
    float framesAhead = leadFrames + 0.5f * window; // t_r = (N/2) Δt lead

    Pose ref;
    Vec3 delta = curr.pos - prev.pos;
    ref.pos = curr.pos + delta * framesAhead;

    // Orientation: extrapolate the relative rotation at the same rate.
    Quat qPrev = Quat::fromMatrix(prev.rot);
    Quat qCurr = Quat::fromMatrix(curr.rot);
    Quat qRef = Quat::slerp(qPrev, qCurr, 1.0f + framesAhead);
    ref.rot = qRef.toMatrix();
    return ref;
}

} // namespace cicero
