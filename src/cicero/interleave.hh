/**
 * @file
 * On-chip data-layout maps for the Vertex Feature Table (Sec. IV-B,
 * Fig. 13): feature-major (prior accelerators) vs Cicero's channel-major
 * interleaving.
 *
 * Feature-major places all channels of vertex v in bank (v mod B) — two
 * concurrent PEs gathering different vertices collide whenever their
 * vertices share a bank. Channel-major places channel c of *every*
 * vertex in bank (c mod B) and dedicates PE c to bank c, so no two PEs
 * can ever address the same bank: conflict-freedom is structural. The
 * property test in tests/cicero_interleave_test.cc verifies both claims
 * exhaustively over random access patterns.
 */

#ifndef CICERO_CICERO_INTERLEAVE_HH
#define CICERO_CICERO_INTERLEAVE_HH

#include <cstdint>

namespace cicero {

/** Feature-major VFT map: whole vectors per bank. */
struct FeatureMajorMap
{
    std::uint32_t banks;

    /** Bank hosting the whole feature vector of @p vertexIdx. */
    std::uint32_t
    bankOf(std::uint32_t vertexIdx) const
    {
        return vertexIdx % banks;
    }

    /** Row within the bank holding the vector. */
    std::uint32_t
    rowOf(std::uint32_t vertexIdx) const
    {
        return vertexIdx / banks;
    }
};

/** Channel-major VFT map: channels striped across banks. */
struct ChannelMajorMap
{
    std::uint32_t banks;

    /**
     * Bank hosting channel @p channel of any vertex. When the feature
     * dimension exceeds the bank count, the striping wraps (the paper's
     * "storing sequence restarts from bank 1").
     */
    std::uint32_t
    bankOf(std::uint32_t channel) const
    {
        return channel % banks;
    }

    /** Row within the bank: one row per vertex (per wrap). */
    std::uint32_t
    rowOf(std::uint32_t vertexIdx, std::uint32_t channel,
          std::uint32_t featureDim) const
    {
        std::uint32_t wraps = (featureDim + banks - 1) / banks;
        return vertexIdx * wraps + channel / banks;
    }

    /**
     * The PE that owns @p channel under the channel-parallel schedule —
     * identical to bankOf, which is exactly why conflicts are
     * impossible: PE i only ever talks to bank i.
     */
    std::uint32_t
    peOf(std::uint32_t channel) const
    {
        return bankOf(channel);
    }
};

} // namespace cicero

#endif // CICERO_CICERO_INTERLEAVE_HH
