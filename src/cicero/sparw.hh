/**
 * @file
 * The SPARW rendering pipeline (Sec. III): orchestrates reference-frame
 * selection, warping, and sparse NeRF re-rendering over a camera
 * trajectory, producing per-frame images plus the work records the
 * performance models price.
 *
 * Three strategies are provided:
 *  - Cicero: references extrapolated *off* the trajectory (Eqs. 5-6),
 *    one reference per window of N target frames — reference and target
 *    rendering can overlap (Fig. 11b);
 *  - Temporal (TEMP-N): the previous *output* frame is the reference, as
 *    in prior temporal-reuse work — errors accumulate and reference /
 *    target rendering serialize (Fig. 11a);
 *  - Downsample (DS-k): no warping; render every frame at 1/k resolution
 *    and bilinearly upsample (the DS-2 baseline).
 */

#ifndef CICERO_CICERO_SPARW_HH
#define CICERO_CICERO_SPARW_HH

#include <vector>

#include "cicero/warp.hh"
#include "nerf/renderer.hh"

namespace cicero {

/**
 * Schedule of the Cicero strategy's window loop. All schedules produce
 * bit-identical output — only the overlap structure differs.
 */
enum class SparwSchedule
{
    /**
     * Per-window dependency graph (the full Fig. 11b overlap): each
     * window's warp + sparse frames depend only on *its own*
     * reference, so one straggling reference render no longer gates
     * any other window's lookahead. Reference renders stream ahead
     * continuously, bounded by a live-reference cap of max(2, 2 x
     * threads) windows (a frame->future-reference dependency edge), so
     * peak memory stays O(threads) full-resolution references.
     */
    DependencyGraph,
    /**
     * The PR 5 batch overlap: while a batch of windows' target frames
     * is in flight, the *whole next batch* of references is submitted
     * as one task — a single slow reference delays every window in
     * the batch. Kept selectable for the throughput bench and the
     * bit-identity tests.
     */
    Pipelined,
    /**
     * The pre-pipelining baseline: per batch, render every reference,
     * barrier, then process every target frame. Kept selectable for
     * the throughput bench and the bit-identity tests.
     */
    TwoPhase,
};

/** SPARW configuration. */
struct SparwConfig
{
    int window = 6;    //!< N: target frames sharing one reference
    WarpParams warp;   //!< warping heuristic parameters
    float dtSeconds = 1.0f / 30.0f; //!< trajectory frame interval
    SparwSchedule schedule = SparwSchedule::DependencyGraph;
};

/** Everything produced for one displayed (target) frame. */
struct SparwFrame
{
    Image image;
    DepthMap depth;
    WarpStats warpStats;
    StageWork sparseWork;    //!< sparse NeRF work for disocclusions
    std::uint64_t warpPoints = 0; //!< points through Eqs. 1-3
    int referenceIndex = -1; //!< which reference frame was used
};

/** A reference frame and the work that produced it. */
struct SparwReference
{
    Pose pose;
    StageWork work;     //!< full-frame NeRF work
    bool onTrajectory = false;
};

/** Real-time (deadline-driven) SPARW configuration. */
struct SparwRealtimeConfig
{
    /**
     * Per-frame wall-clock budget: frame i must be delivered by
     * (i+1) * frameBudgetS after the run starts. Windows whose
     * first-frame deadline has already passed when their reference
     * *would* be submitted fall back to downsampled rendering instead
     * of rendering a reference they cannot use in time.
     */
    float frameBudgetS = 1.0f / 30.0f;

    /** Downsample factor of the fallback path (the DS-k baseline). */
    int fallbackFactor = 2;
};

/** Deadline accounting of one real-time SPARW run. */
struct SparwDeadlineStats
{
    int frames = 0;          //!< frames delivered
    int deadlineMisses = 0;  //!< frames completed after their deadline
    int fallbackFrames = 0;  //!< frames that took the downsampled path
    int predictedReferences = 0; //!< references rendered at extrapolated poses
    double wallS = 0.0;      //!< wall time of the whole run

    double missRate() const;
    double fallbackRate() const;
};

/** Output of running SPARW over a trajectory. */
struct SparwRun
{
    std::vector<SparwFrame> frames;
    std::vector<SparwReference> references;

    /** Mean fraction of pixels warped (not NeRF-rendered). */
    double meanOverlap() const;

    /** Mean fraction of pixels re-rendered by sparse NeRF. */
    double meanRerender() const;

    /** Total sparse-NeRF work across target frames. */
    StageWork totalSparseWork() const;

    /** Total full-frame work across references. */
    StageWork totalReferenceWork() const;
};

/** Output of a real-time SPARW run: the frames plus deadline stats. */
struct SparwRealtimeRun
{
    SparwRun run;
    SparwDeadlineStats deadline;
};

/**
 * Runs SPARW functionally over a trajectory with a given model.
 */
class SparwPipeline
{
  public:
    /**
     * @param model     baked NeRF model for the scene
     * @param intrinsics camera intrinsics (pose field is ignored)
     */
    SparwPipeline(const NerfModel &model, const Camera &intrinsics,
                  const SparwConfig &config);

    /** Cicero strategy: extrapolated off-trajectory references. */
    SparwRun run(const std::vector<Pose> &trajectory) const;

    /** TEMP-N strategy: previous output frame as reference. */
    SparwRun runTemporal(const std::vector<Pose> &trajectory) const;

    /** DS-k strategy: downsampled full rendering, no warping. */
    SparwRun runDownsampled(const std::vector<Pose> &trajectory,
                            int factor) const;

    /**
     * Real-time mode: the Cicero strategy driven by per-frame
     * deadlines. References are rendered one window ahead at
     * pose-extrapolated (predicted) positions while the current
     * window's frames are processed; when the deadline budget is
     * exhausted a window falls back to downsampled rendering
     * (runDownsampled math, bit for bit). At the extremes the output
     * is deterministic: an effectively infinite budget reproduces
     * run() exactly, a zero budget reproduces runDownsampled(
     * fallbackFactor) frame images exactly — in between, which windows
     * fall back depends on measured wall time.
     */
    SparwRealtimeRun runRealtime(const std::vector<Pose> &trajectory,
                                 const SparwRealtimeConfig &rt) const;

    const SparwConfig &config() const { return _config; }

  private:
    Camera cameraAt(const Pose &pose) const;

    const NerfModel &_model;
    Camera _intrinsics;
    SparwConfig _config;
};

} // namespace cicero

#endif // CICERO_CICERO_SPARW_HH
