/**
 * @file
 * The SPARW rendering pipeline (Sec. III): orchestrates reference-frame
 * selection, warping, and sparse NeRF re-rendering over a camera
 * trajectory, producing per-frame images plus the work records the
 * performance models price.
 *
 * Three strategies are provided:
 *  - Cicero: references extrapolated *off* the trajectory (Eqs. 5-6),
 *    one reference per window of N target frames — reference and target
 *    rendering can overlap (Fig. 11b);
 *  - Temporal (TEMP-N): the previous *output* frame is the reference, as
 *    in prior temporal-reuse work — errors accumulate and reference /
 *    target rendering serialize (Fig. 11a);
 *  - Downsample (DS-k): no warping; render every frame at 1/k resolution
 *    and bilinearly upsample (the DS-2 baseline).
 */

#ifndef CICERO_CICERO_SPARW_HH
#define CICERO_CICERO_SPARW_HH

#include <vector>

#include "cicero/warp.hh"
#include "nerf/renderer.hh"

namespace cicero {

/**
 * Batch schedule of the Cicero strategy's window loop. Both schedules
 * produce bit-identical output — only the overlap structure differs.
 */
enum class SparwSchedule
{
    /**
     * Fig. 11b overlap: while window w's target frames (warp + sparse
     * re-render) are still in flight, window w+1's reference render is
     * already submitted to the scheduler. Bounded lookahead of one
     * batch keeps at most 2 x threads full-resolution references
     * alive.
     */
    Pipelined,
    /**
     * The pre-pipelining baseline: per batch, render every reference,
     * barrier, then process every target frame. Kept selectable for
     * the throughput bench and the bit-identity tests.
     */
    TwoPhase,
};

/** SPARW configuration. */
struct SparwConfig
{
    int window = 6;    //!< N: target frames sharing one reference
    WarpParams warp;   //!< warping heuristic parameters
    float dtSeconds = 1.0f / 30.0f; //!< trajectory frame interval
    SparwSchedule schedule = SparwSchedule::Pipelined;
};

/** Everything produced for one displayed (target) frame. */
struct SparwFrame
{
    Image image;
    DepthMap depth;
    WarpStats warpStats;
    StageWork sparseWork;    //!< sparse NeRF work for disocclusions
    std::uint64_t warpPoints = 0; //!< points through Eqs. 1-3
    int referenceIndex = -1; //!< which reference frame was used
};

/** A reference frame and the work that produced it. */
struct SparwReference
{
    Pose pose;
    StageWork work;     //!< full-frame NeRF work
    bool onTrajectory = false;
};

/** Output of running SPARW over a trajectory. */
struct SparwRun
{
    std::vector<SparwFrame> frames;
    std::vector<SparwReference> references;

    /** Mean fraction of pixels warped (not NeRF-rendered). */
    double meanOverlap() const;

    /** Mean fraction of pixels re-rendered by sparse NeRF. */
    double meanRerender() const;

    /** Total sparse-NeRF work across target frames. */
    StageWork totalSparseWork() const;

    /** Total full-frame work across references. */
    StageWork totalReferenceWork() const;
};

/**
 * Runs SPARW functionally over a trajectory with a given model.
 */
class SparwPipeline
{
  public:
    /**
     * @param model     baked NeRF model for the scene
     * @param intrinsics camera intrinsics (pose field is ignored)
     */
    SparwPipeline(const NerfModel &model, const Camera &intrinsics,
                  const SparwConfig &config);

    /** Cicero strategy: extrapolated off-trajectory references. */
    SparwRun run(const std::vector<Pose> &trajectory) const;

    /** TEMP-N strategy: previous output frame as reference. */
    SparwRun runTemporal(const std::vector<Pose> &trajectory) const;

    /** DS-k strategy: downsampled full rendering, no warping. */
    SparwRun runDownsampled(const std::vector<Pose> &trajectory,
                            int factor) const;

    const SparwConfig &config() const { return _config; }

  private:
    Camera cameraAt(const Pose &pose) const;

    const NerfModel &_model;
    Camera _intrinsics;
    SparwConfig _config;
};

} // namespace cicero

#endif // CICERO_CICERO_SPARW_HH
