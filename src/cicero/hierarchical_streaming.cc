#include "cicero/hierarchical_streaming.hh"

#include <stdexcept>

#include "nerf/volume_renderer.hh"

namespace cicero {

namespace {

/** One corner contribution queued under a (level, block). */
struct CornerRef
{
    std::uint32_t sample;
    std::uint16_t ix, iy, iz; //!< global vertex coords at the level
    float weight;
};

struct SampleRec
{
    Vec3 pn;
    float t;
    float dt;
};

} // namespace

HierarchicalStreamingRenderer::HierarchicalStreamingRenderer(
    const NerfModel &model)
    : _model(model),
      _grid([&]() -> const HashGridEncoding & {
          auto *g =
              dynamic_cast<const HashGridEncoding *>(&model.encoding());
          if (!g) {
              throw std::invalid_argument(
                  "HierarchicalStreamingRenderer requires a "
                  "HashGridEncoding");
          }
          return *g;
      }()),
      _blockVerts(_grid.config().blockVerts)
{
}

RenderResult
HierarchicalStreamingRenderer::render(const Camera &camera,
                                      TraceSink *trace) const
{
    _stats = Stats{};

    RenderResult out;
    out.image = Image(camera.width, camera.height);
    out.depth = DepthMap(camera.width, camera.height);

    const int numLevels = _grid.config().numLevels;
    const int bv = _blockVerts;
    const std::uint32_t vb = _grid.vertexBytes();
    const std::uint64_t blockBytes =
        static_cast<std::uint64_t>(bv) * bv * bv * vb;

    // ---- Stage I: march rays once, remember samples ------------------
    std::vector<SampleRec> samples;
    std::vector<std::uint32_t> rayFirstSample(
        static_cast<std::size_t>(camera.width) * camera.height + 1, 0);
    {
        std::vector<RaySample> raySamples;
        std::uint32_t rayId = 0;
        for (int py = 0; py < camera.height; ++py) {
            for (int px = 0; px < camera.width; ++px, ++rayId) {
                rayFirstSample[rayId] =
                    static_cast<std::uint32_t>(samples.size());
                Ray ray = camera.generateRay(px, py);
                int n = _model.sampler().sample(ray, raySamples);
                out.work.rays += 1;
                out.work.indexOps +=
                    static_cast<std::uint64_t>(n) *
                    _grid.indexOpsPerSample();
                for (int i = 0; i < n; ++i) {
                    samples.push_back(SampleRec{raySamples[i].pn,
                                                raySamples[i].t,
                                                raySamples[i].dt});
                }
            }
        }
        rayFirstSample.back() =
            static_cast<std::uint32_t>(samples.size());
    }
    _stats.samples = samples.size();

    std::vector<float> features(samples.size() *
                                static_cast<std::size_t>(kFeatureDim),
                                0.0f);

    // ---- Stage G: level by level --------------------------------------
    for (int l = 0; l < numLevels; ++l) {
        const int res = _grid.levelRes(l);
        auto cornersOf = [&](const Vec3 &pn, int (&c0)[3],
                             float (&frac)[3]) {
            float f[3] = {clamp(pn.x, 0.0f, 1.0f) * res,
                          clamp(pn.y, 0.0f, 1.0f) * res,
                          clamp(pn.z, 0.0f, 1.0f) * res};
            for (int a = 0; a < 3; ++a) {
                c0[a] = std::min(static_cast<int>(f[a]), res - 1);
                frac[a] = f[a] - c0[a];
            }
        };

        if (_grid.levelDense(l)) {
            ++_stats.denseLevels;
            // Partition the level into MVoxel blocks and build its RIT.
            std::uint32_t blocksPerAxis = (res + 1 + bv - 1) / bv;
            std::vector<std::vector<CornerRef>> rit(
                static_cast<std::size_t>(blocksPerAxis) * blocksPerAxis *
                blocksPerAxis);

            for (std::uint32_t s = 0;
                 s < static_cast<std::uint32_t>(samples.size()); ++s) {
                int c0[3];
                float frac[3];
                cornersOf(samples[s].pn, c0, frac);
                std::uint32_t seen[8];
                int nSeen = 0;
                for (int c = 0; c < 8; ++c) {
                    int ix = c0[0] + (c & 1);
                    int iy = c0[1] + ((c >> 1) & 1);
                    int iz = c0[2] + ((c >> 2) & 1);
                    float w = ((c & 1) ? frac[0] : 1.0f - frac[0]) *
                              (((c >> 1) & 1) ? frac[1]
                                              : 1.0f - frac[1]) *
                              (((c >> 2) & 1) ? frac[2]
                                              : 1.0f - frac[2]);
                    std::uint32_t blk =
                        (static_cast<std::uint32_t>(iz / bv) *
                             blocksPerAxis +
                         iy / bv) *
                            blocksPerAxis +
                        ix / bv;
                    rit[blk].push_back(CornerRef{
                        s, static_cast<std::uint16_t>(ix),
                        static_cast<std::uint16_t>(iy),
                        static_cast<std::uint16_t>(iz), w});
                    bool dup = false;
                    for (int k = 0; k < nSeen; ++k)
                        dup = dup || seen[k] == blk;
                    if (!dup)
                        seen[nSeen++] = blk;
                }
                _stats.ritEntries += nSeen;
            }

            // Stream touched blocks in address order, exactly once.
            for (std::uint32_t blk = 0; blk < rit.size(); ++blk) {
                if (rit[blk].empty())
                    continue;
                ++_stats.blocksLoaded;
                _stats.streamedBytes += blockBytes;
                if (trace) {
                    trace->onAccess(MemAccess{
                        _grid.levelBaseAddr(l) + blk * blockBytes,
                        static_cast<std::uint32_t>(blockBytes), blk});
                }
                for (const CornerRef &c : rit[blk]) {
                    std::uint32_t slot =
                        _grid.levelSlot(l, c.ix, c.iy, c.iz);
                    const float *v = _grid.levelData(l, slot);
                    float *dst =
                        features.data() +
                        static_cast<std::size_t>(c.sample) * kFeatureDim;
                    for (int ch = 0; ch < kFeatureDim; ++ch)
                        dst[ch] += c.weight * v[ch];
                }
            }
        } else {
            ++_stats.hashedLevels;
            // Revert to the original data flow: per-sample random
            // fetches straight out of the hash table.
            for (std::uint32_t s = 0;
                 s < static_cast<std::uint32_t>(samples.size()); ++s) {
                int c0[3];
                float frac[3];
                cornersOf(samples[s].pn, c0, frac);
                float *dst =
                    features.data() +
                    static_cast<std::size_t>(s) * kFeatureDim;
                for (int c = 0; c < 8; ++c) {
                    int ix = c0[0] + (c & 1);
                    int iy = c0[1] + ((c >> 1) & 1);
                    int iz = c0[2] + ((c >> 2) & 1);
                    float w = ((c & 1) ? frac[0] : 1.0f - frac[0]) *
                              (((c >> 1) & 1) ? frac[1]
                                              : 1.0f - frac[1]) *
                              (((c >> 2) & 1) ? frac[2]
                                              : 1.0f - frac[2]);
                    std::uint32_t slot = _grid.levelSlot(l, ix, iy, iz);
                    _stats.randomBytes += vb;
                    if (trace) {
                        trace->onAccess(MemAccess{
                            _grid.levelBaseAddr(l) +
                                static_cast<std::uint64_t>(slot) * vb,
                            vb, s});
                    }
                    const float *v = _grid.levelData(l, slot);
                    for (int ch = 0; ch < kFeatureDim; ++ch)
                        dst[ch] += w * v[ch];
                }
            }
        }
    }
    if (trace)
        trace->onFlush();

    out.work.samples = samples.size();
    out.work.vertexFetches =
        samples.size() * static_cast<std::uint64_t>(8) * numLevels;
    out.work.gatherBytes = _stats.streamedBytes + _stats.randomBytes;
    out.work.interpOps =
        samples.size() * _grid.interpOpsPerSample();

    // ---- Stage F: unchanged ------------------------------------------
    std::uint32_t rayId = 0;
    for (int py = 0; py < camera.height; ++py) {
        for (int px = 0; px < camera.width; ++px, ++rayId) {
            Ray ray = camera.generateRay(px, py);
            Compositor comp;
            for (std::uint32_t s = rayFirstSample[rayId];
                 s < rayFirstSample[rayId + 1]; ++s) {
                const float *feat =
                    features.data() +
                    static_cast<std::size_t>(s) * kFeatureDim;
                DecodedSample d =
                    _model.decoder().decode(feat, ray.dir);
                out.work.mlpMacs += _model.nominalMlpMacs();
                out.work.compositeOps += 12;
                comp.add(d.sigma, d.rgb, samples[s].t, samples[s].dt);
            }
            CompositeResult r = comp.finish(_model.scene().background);
            out.image.at(px, py) = r.rgb;
            out.depth.at(px, py) = r.depth;
        }
    }
    return out;
}

} // namespace cicero
