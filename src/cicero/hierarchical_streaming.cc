#include "cicero/hierarchical_streaming.hh"

#include <memory>
#include <stdexcept>

#include "common/parallel.hh"
#include "common/simd.hh"
#include "nerf/volume_renderer.hh"

namespace cicero {

namespace {

/** One corner contribution queued under a (level, block). */
struct CornerRef
{
    std::uint32_t sample;
    std::uint16_t ix, iy, iz; //!< global vertex coords at the level
    float weight;
};

struct SampleRec
{
    Vec3 pn;
    float t;
    float dt;
};

/** Per-chunk partial of the parallel Stage I (marching) loop. */
struct MarchChunk
{
    std::vector<SampleRec> samples;
    std::vector<std::uint32_t> rayFirst; //!< chunk-local sample offsets
    StageWork work;
};

/** Per-chunk partial of a dense level's parallel RIT build. */
struct RitChunk
{
    std::vector<std::vector<CornerRef>> rit; //!< global sample ids
    std::uint64_t ritEntries = 0;
};

} // namespace

HierarchicalStreamingRenderer::HierarchicalStreamingRenderer(
    const NerfModel &model)
    : _model(model),
      _grid([&]() -> const HashGridEncoding & {
          auto *g =
              dynamic_cast<const HashGridEncoding *>(&model.encoding());
          if (!g) {
              throw std::invalid_argument(
                  "HierarchicalStreamingRenderer requires a "
                  "HashGridEncoding");
          }
          return *g;
      }()),
      _blockVerts(_grid.config().blockVerts)
{
}

RenderResult
HierarchicalStreamingRenderer::render(const Camera &camera,
                                      TraceSink *trace) const
{
    _stats = Stats{};

    RenderResult out;
    out.image = Image(camera.width, camera.height);
    out.depth = DepthMap(camera.width, camera.height);

    const int W = camera.width;
    const int H = camera.height;
    const int numLevels = _grid.config().numLevels;
    const int bv = _blockVerts;
    const std::uint32_t vb = _grid.vertexBytes();
    const std::uint64_t blockBytes =
        static_cast<std::uint64_t>(bv) * bv * bv * vb;

    // ---- Stage I: march rays once, remember samples ------------------
    // Row-parallel; per-chunk sample lists merge in chunk order so the
    // global sample numbering matches the serial walk exactly.
    std::vector<SampleRec> samples;
    std::vector<std::uint32_t> rayFirstSample(
        static_cast<std::size_t>(W) * H + 1, 0);
    {
        std::vector<MarchChunk> chunks = parallelMapChunks<MarchChunk>(
            H, [&](MarchChunk &c, std::int64_t y0, std::int64_t y1) {
                thread_local std::vector<RaySample> raySamples;
                for (int py = static_cast<int>(y0); py < y1; ++py) {
                    for (int px = 0; px < W; ++px) {
                        c.rayFirst.push_back(static_cast<std::uint32_t>(
                            c.samples.size()));
                        Ray ray = camera.generateRay(px, py);
                        int n = _model.sampler().sample(ray, raySamples);
                        c.work.rays += 1;
                        c.work.indexOps +=
                            static_cast<std::uint64_t>(n) *
                            _grid.indexOpsPerSample();
                        for (int i = 0; i < n; ++i) {
                            c.samples.push_back(
                                SampleRec{raySamples[i].pn,
                                          raySamples[i].t,
                                          raySamples[i].dt});
                        }
                    }
                }
            });

        std::size_t rayBase = 0;
        for (MarchChunk &c : chunks) {
            const std::uint32_t sampleBase =
                static_cast<std::uint32_t>(samples.size());
            for (std::size_t r = 0; r < c.rayFirst.size(); ++r)
                rayFirstSample[rayBase + r] = sampleBase + c.rayFirst[r];
            rayBase += c.rayFirst.size();
            samples.insert(samples.end(), c.samples.begin(),
                           c.samples.end());
            out.work += c.work;
            c = MarchChunk{};
        }
        rayFirstSample.back() =
            static_cast<std::uint32_t>(samples.size());
    }
    _stats.samples = samples.size();

    // Sample-major accumulation (each corner update touches one
    // sample's contiguous 36 B); a bulk transposition before Stage F
    // hands the SoA batched decode its channel-major layout.
    const std::size_t S = samples.size();
    std::vector<float> features(
        S * static_cast<std::size_t>(kFeatureDim), 0.0f);
    const std::int64_t numSamples =
        static_cast<std::int64_t>(samples.size());

    // ---- Stage G: level by level --------------------------------------
    // A dense level's RIT build is a pure function of the sample list:
    // it touches neither `features`, the trace stream, nor the stats
    // members the accumulation walk writes. The loop below therefore
    // builds level l+1's RIT on the scheduler *while* level l streams
    // blocks and accumulates (the cross-level extension of the SPARW
    // dependency overlap). Accumulation itself stays strictly
    // level-ordered on the driver thread, so features sums and the
    // trace stream are bit-identical to the serial walk; two builds
    // never run concurrently (one lookahead task at a time), and the
    // build/accumulate pair of a level touches disjoint Stats members.
    auto cornersOf = [&](int res, const Vec3 &pn, int (&c0)[3],
                         float (&frac)[3]) {
        float f[3] = {clamp(pn.x, 0.0f, 1.0f) * res,
                      clamp(pn.y, 0.0f, 1.0f) * res,
                      clamp(pn.z, 0.0f, 1.0f) * res};
        for (int a = 0; a < 3; ++a) {
            c0[a] = std::min(static_cast<int>(f[a]), res - 1);
            frac[a] = f[a] - c0[a];
        }
    };

    // Prebuilt, accumulation-independent part of one dense level.
    struct LevelBuild
    {
        std::uint32_t blocksPerAxis = 0;
        std::vector<std::vector<CornerRef>> rit;
    };

    auto buildLevel = [&](int l, LevelBuild &lb) {
        if (!_grid.levelDense(l))
            return; // hashed gather has no accumulation-free prefix
        const int res = _grid.levelRes(l);
        // Partition the level into MVoxel blocks and build its RIT,
        // sample-parallel: chunk-local RITs carry global sample ids
        // and merge in chunk order, keeping every block's entry
        // list ascending in sample id (the serial order).
        lb.blocksPerAxis = (res + 1 + bv - 1) / bv;
        const std::uint32_t blocksPerAxis = lb.blocksPerAxis;
        const std::size_t numBlocks =
            static_cast<std::size_t>(blocksPerAxis) * blocksPerAxis *
            blocksPerAxis;

        std::vector<RitChunk> chunks = parallelMapChunks<RitChunk>(
            numSamples, [&](RitChunk &c, std::int64_t b, std::int64_t e) {
                c.rit.resize(numBlocks);
                for (std::int64_t si = b; si < e; ++si) {
                    std::uint32_t s = static_cast<std::uint32_t>(si);
                    int c0[3];
                    float frac[3];
                    cornersOf(res, samples[s].pn, c0, frac);
                    std::uint32_t seen[8];
                    int nSeen = 0;
                    for (int cr = 0; cr < 8; ++cr) {
                        int ix = c0[0] + (cr & 1);
                        int iy = c0[1] + ((cr >> 1) & 1);
                        int iz = c0[2] + ((cr >> 2) & 1);
                        float w =
                            ((cr & 1) ? frac[0] : 1.0f - frac[0]) *
                            (((cr >> 1) & 1) ? frac[1] : 1.0f - frac[1]) *
                            (((cr >> 2) & 1) ? frac[2] : 1.0f - frac[2]);
                        std::uint32_t blk =
                            (static_cast<std::uint32_t>(iz / bv) *
                                 blocksPerAxis +
                             iy / bv) *
                                blocksPerAxis +
                            ix / bv;
                        c.rit[blk].push_back(CornerRef{
                            s, static_cast<std::uint16_t>(ix),
                            static_cast<std::uint16_t>(iy),
                            static_cast<std::uint16_t>(iz), w});
                        bool dup = false;
                        for (int k = 0; k < nSeen; ++k)
                            dup = dup || seen[k] == blk;
                        if (!dup)
                            seen[nSeen++] = blk;
                    }
                    c.ritEntries += nSeen;
                }
            });

        lb.rit.assign(numBlocks, {});
        for (RitChunk &c : chunks) {
            for (std::size_t blk = 0; blk < numBlocks; ++blk) {
                lb.rit[blk].insert(lb.rit[blk].end(), c.rit[blk].begin(),
                                   c.rit[blk].end());
            }
            _stats.ritEntries += c.ritEntries;
            c = RitChunk{};
        }
    };

    auto accumulateDense = [&](int l, LevelBuild &lb) {
        ++_stats.denseLevels;
        // Stream touched blocks in address order, exactly once —
        // serial: this walk is the trace stream, and boundary
        // samples accumulate across blocks in block order.
        for (std::uint32_t blk = 0; blk < lb.rit.size(); ++blk) {
            if (lb.rit[blk].empty())
                continue;
            ++_stats.blocksLoaded;
            _stats.streamedBytes += blockBytes;
            if (trace) {
                trace->onAccess(MemAccess{
                    _grid.levelBaseAddr(l) + blk * blockBytes,
                    static_cast<std::uint32_t>(blockBytes), blk});
            }
            for (const CornerRef &c : lb.rit[blk]) {
                std::uint32_t slot = _grid.levelSlot(l, c.ix, c.iy, c.iz);
                const float *v = _grid.levelData(l, slot);
                float *dst =
                    features.data() +
                    static_cast<std::size_t>(c.sample) * kFeatureDim;
                for (int ch = 0; ch < kFeatureDim; ++ch)
                    dst[ch] += c.weight * v[ch];
            }
        }
    };

    auto accumulateHashed = [&](int l) {
        const int res = _grid.levelRes(l);
        ++_stats.hashedLevels;
        // Revert to the original data flow: per-sample random
        // fetches straight out of the hash table. Every sample
        // owns its feature slice, so the gather is
        // sample-parallel; when tracing, each sample records its
        // fetches into a RayTraceBuffer slot and the replay below
        // restores the serial per-sample emission order.
        // One thread runs the sample loop inline in order, so the
        // accesses can stream straight into the sink un-buffered.
        std::unique_ptr<RayTraceBuffer> buf;
        if (trace && parallelThreadCount() > 1)
            buf = std::make_unique<RayTraceBuffer>(samples.size(), trace);
        auto gatherSample = [&](std::uint32_t s, TraceSink *sink) {
            int c0[3];
            float frac[3];
            cornersOf(res, samples[s].pn, c0, frac);
            float *dst = features.data() +
                         static_cast<std::size_t>(s) * kFeatureDim;
            for (int cr = 0; cr < 8; ++cr) {
                int ix = c0[0] + (cr & 1);
                int iy = c0[1] + ((cr >> 1) & 1);
                int iz = c0[2] + ((cr >> 2) & 1);
                float w = ((cr & 1) ? frac[0] : 1.0f - frac[0]) *
                          (((cr >> 1) & 1) ? frac[1] : 1.0f - frac[1]) *
                          (((cr >> 2) & 1) ? frac[2] : 1.0f - frac[2]);
                std::uint32_t slot = _grid.levelSlot(l, ix, iy, iz);
                if (sink) {
                    sink->onAccess(MemAccess{
                        _grid.levelBaseAddr(l) +
                            static_cast<std::uint64_t>(slot) * vb,
                        vb, s});
                }
                const float *v = _grid.levelData(l, slot);
                for (int ch = 0; ch < kFeatureDim; ++ch)
                    dst[ch] += w * v[ch];
            }
        };
        parallelFor(0, numSamples, -1,
                    [&](std::int64_t b, std::int64_t e) {
                        for (std::int64_t si = b; si < e; ++si) {
                            std::uint32_t s =
                                static_cast<std::uint32_t>(si);
                            if (buf) {
                                RayTraceBuffer::SlotSink sink =
                                    buf->sink(s);
                                gatherSample(s, &sink);
                            } else {
                                gatherSample(s, trace);
                            }
                        }
                    });
        if (buf)
            buf->replay();
        _stats.randomBytes +=
            static_cast<std::uint64_t>(samples.size()) * 8ull * vb;
    };

    // Drive the levels with a one-level build lookahead: submit level
    // l+1's RIT build to the scheduler, accumulate level l, then wait.
    // The wait (plus the alternating double-buffer slot) is what keeps
    // at most one prebuilt level alive beyond the one accumulating.
    LevelBuild builds[2];
    if (numLevels > 0)
        buildLevel(0, builds[0]);
    for (int l = 0; l < numLevels; ++l) {
        TaskGroup lookahead;
        if (l + 1 < numLevels) {
            LevelBuild &next = builds[(l + 1) & 1];
            lookahead.run(
                [&buildLevel, &next, l] { buildLevel(l + 1, next); });
        }
        if (_grid.levelDense(l))
            accumulateDense(l, builds[l & 1]);
        else
            accumulateHashed(l);
        lookahead.wait();
        builds[l & 1] = LevelBuild{};
    }
    if (trace)
        trace->onFlush();

    out.work.samples = samples.size();
    out.work.vertexFetches =
        samples.size() * static_cast<std::uint64_t>(8) * numLevels;
    out.work.gatherBytes = _stats.streamedBytes + _stats.randomBytes;
    out.work.interpOps =
        samples.size() * _grid.interpOpsPerSample();

    // One pass into the channel-major layout (channel ch of sample s
    // at [ch * S + s]) the SoA batched decode consumes; the
    // sample-major accumulation buffer is released immediately after.
    std::vector<float> featuresSoA(features.size());
    simd::transposeToChannelMajor(features.data(), static_cast<int>(S),
                                  kFeatureDim, featuresSoA.data());
    std::vector<float>().swap(features);

    // ---- Stage F: decode + composite ---------------------------------
    // Row-parallel with a per-ray batched SoA decode over the ray's
    // feature columns (bit-identical to scalar decode).
    for (const StageWork &w : parallelMapChunks<StageWork>(
             H, [&](StageWork &fw, std::int64_t y0, std::int64_t y1) {
                 thread_local std::vector<DecodedSample> decoded;
                 for (int py = static_cast<int>(y0); py < y1; ++py) {
                     std::uint32_t rayId =
                         static_cast<std::uint32_t>(py) * W;
                     for (int px = 0; px < W; ++px, ++rayId) {
                         Ray ray = camera.generateRay(px, py);
                         Compositor comp;
                         std::uint32_t s0 = rayFirstSample[rayId];
                         std::uint32_t s1 = rayFirstSample[rayId + 1];
                         const int m = static_cast<int>(s1 - s0);
                         decoded.resize(m);
                         _model.decoder().decodeBatchSoA(
                             featuresSoA.data() + s0, S, m, ray.dir,
                             decoded.data());
                         for (int i = 0; i < m; ++i) {
                             std::uint32_t s = s0 + i;
                             fw.mlpMacs += _model.nominalMlpMacs();
                             fw.compositeOps += 12;
                             comp.add(decoded[i].sigma, decoded[i].rgb,
                                      samples[s].t, samples[s].dt);
                         }
                         CompositeResult r =
                             comp.finish(_model.scene().background);
                         out.image.at(px, py) = r.rgb;
                         out.depth.at(px, py) = r.depth;
                     }
                 }
             }))
        out.work += w;

    return out;
}

} // namespace cicero
