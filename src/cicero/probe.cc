#include "cicero/probe.hh"

#include <cassert>

#include "memory/cache_model.hh"
#include "memory/sram_bank_model.hh"

namespace cicero {

namespace {

double
scaleFactor(const ProbeOptions &options)
{
    return static_cast<double>(options.targetRes) * options.targetRes /
           (static_cast<double>(options.traceRes) * options.traceRes);
}

StreamPlan
scalePlan(const StreamPlan &plan, double k)
{
    StreamPlan out = plan;
    // RIT entries grow with ray count; the touched-MVoxel set saturates.
    out.ritEntries = static_cast<std::uint64_t>(plan.ritEntries * k);
    out.ritBytes = static_cast<std::uint64_t>(plan.ritBytes * k);
    out.randomBytes = static_cast<std::uint64_t>(plan.randomBytes * k);
    return out;
}

} // namespace

WorkloadInputs
probeFullFrame(const NerfModel &model, const Pose &pose,
               const ProbeOptions &options)
{
    const double k = scaleFactor(options);
    Camera cam = Camera::fromFov(options.traceRes, options.traceRes,
                                 options.fovYDeg, pose);

    WorkloadInputs inputs;
    inputs.window = options.window;
    inputs.framePixels =
        static_cast<std::uint64_t>(options.targetRes) * options.targetRes;
    inputs.vertexBytes =
        model.encoding().featureDim() * kBytesPerChannel;

    DramModel dram;
    LruCache cache;
    BankConflictSim bank;
    WarpInterleaver interleaver(options.interleaveWays);
    interleaver.addSink(&dram);
    interleaver.addSink(&cache);
    TraceTee tee;
    tee.addSink(&interleaver);
    tee.addSink(&bank); // the bank sim does its own ray slotting

    StageWork work = model.traceWorkload(cam, &tee);
    inputs.fullFrame = work.scaled(k);
    inputs.gatherProfile.cacheMissRate = cache.stats().missRate();
    inputs.gatherProfile.randomFraction =
        dram.stats().nonStreamingFraction();
    inputs.bankConflictRate = bank.stats().conflictRate();

    StreamPlan plan = model.encoding().streamingFootprint(
        model.collectSamplePositions(cam));
    inputs.fullStreamPlan = scalePlan(plan, k);
    return inputs;
}

void
probeSparseFrame(WorkloadInputs &inputs, const NerfModel &model,
                 const Pose &refPose, const Pose &tgtPose,
                 const ProbeOptions &options)
{
    const double k = scaleFactor(options);
    Camera refCam = Camera::fromFov(options.traceRes, options.traceRes,
                                    options.fovYDeg, refPose);
    Camera tgtCam = refCam;
    tgtCam.pose = tgtPose;

    RenderResult ref = model.render(refCam);
    WarpOutput w =
        warpFrame(ref.image, ref.depth, refCam, tgtCam,
                  &model.occupancy(), model.scene().background);

    inputs.sparsePerFrame =
        model.traceWorkloadPixels(tgtCam, w.needRender).scaled(k);
    StreamPlan plan = model.encoding().streamingFootprint(
        model.collectSamplePositionsPixels(tgtCam, w.needRender));
    inputs.sparseStreamPlan = scalePlan(plan, k);
    inputs.warpPointsPerFrame = static_cast<std::uint64_t>(
        w.stats.pointsTransformed * k);
}

WorkloadInputs
probeWorkload(const NerfModel &model, const std::vector<Pose> &trajectory,
              const ProbeOptions &options)
{
    assert(trajectory.size() >= 2);
    WorkloadInputs inputs =
        probeFullFrame(model, trajectory[0], options);
    // A mid-window pose pairing is representative of average warp
    // distance within a window.
    std::size_t mid =
        std::min<std::size_t>(trajectory.size() - 1,
                              std::max(1, options.window / 2));
    probeSparseFrame(inputs, model, trajectory[0], trajectory[mid],
                     options);
    return inputs;
}

} // namespace cicero
