#include "cicero/streaming_renderer.hh"

#include <stdexcept>

#include "nerf/volume_renderer.hh"

namespace cicero {

namespace {

/** One corner contribution queued under an MVoxel. */
struct CornerRef
{
    std::uint32_t sample; //!< global sample index
    std::uint8_t ix, iy, iz; //!< vertex coords *within* the MVoxel block
    float weight;
};

/** Per-sample record kept until Feature Computation. */
struct SampleRec
{
    float t;
    float dt;
};

} // namespace

StreamingRenderer::StreamingRenderer(const NerfModel &model)
    : _model(model),
      _grid([&]() -> const DenseGridEncoding & {
          auto *g =
              dynamic_cast<const DenseGridEncoding *>(&model.encoding());
          if (!g) {
              throw std::invalid_argument(
                  "StreamingRenderer requires a DenseGridEncoding");
          }
          return *g;
      }())
{
}

RenderResult
StreamingRenderer::render(const Camera &camera, TraceSink *trace) const
{
    _stats = Stats{};

    RenderResult out;
    out.image = Image(camera.width, camera.height);
    out.depth = DepthMap(camera.width, camera.height);

    const int bv = _grid.blockVerts();
    const std::uint32_t numMv = _grid.numMVoxels();

    // ---- Stage I: ray marching + RIT construction -------------------
    std::vector<SampleRec> samples;
    std::vector<std::uint32_t> rayFirstSample(
        static_cast<std::size_t>(camera.width) * camera.height + 1, 0);
    std::vector<std::vector<CornerRef>> rit(numMv);

    std::vector<RaySample> raySamples;
    std::uint32_t rayId = 0;
    for (int py = 0; py < camera.height; ++py) {
        for (int px = 0; px < camera.width; ++px, ++rayId) {
            rayFirstSample[rayId] =
                static_cast<std::uint32_t>(samples.size());
            Ray ray = camera.generateRay(px, py);
            int n = _model.sampler().sample(ray, raySamples);
            out.work.rays += 1;
            out.work.indexOps +=
                static_cast<std::uint64_t>(n) *
                _model.encoding().indexOpsPerSample();
            for (int i = 0; i < n; ++i) {
                std::uint32_t sid =
                    static_cast<std::uint32_t>(samples.size());
                samples.push_back(
                    SampleRec{raySamples[i].t, raySamples[i].dt});
                auto cs = _grid.corners(raySamples[i].pn);
                std::uint32_t touched[8];
                int nTouched = 0;
                for (const GridCorner &c : cs) {
                    rit[c.mvoxel].push_back(CornerRef{
                        sid, static_cast<std::uint8_t>(c.ix % bv),
                        static_cast<std::uint8_t>(c.iy % bv),
                        static_cast<std::uint8_t>(c.iz % bv), c.weight});
                    bool dup = false;
                    for (int k = 0; k < nTouched; ++k)
                        dup = dup || touched[k] == c.mvoxel;
                    if (!dup)
                        touched[nTouched++] = c.mvoxel;
                }
                _stats.ritEntries += nTouched;
                if (nTouched > 1)
                    _stats.boundaryEntries += nTouched - 1;
            }
        }
    }
    rayFirstSample.back() = static_cast<std::uint32_t>(samples.size());
    _stats.samples = samples.size();
    _stats.ritBytes = _stats.ritEntries * 48;

    // ---- Stage G: stream MVoxels in address order --------------------
    std::vector<float> features(samples.size() *
                                static_cast<std::size_t>(kFeatureDim),
                                0.0f);
    for (std::uint32_t mv = 0; mv < numMv; ++mv) {
        const auto &entries = rit[mv];
        if (entries.empty())
            continue;
        ++_stats.mvoxelsLoaded;
        _stats.streamedBytes += _grid.mvoxelBytes();
        if (trace) {
            trace->onAccess(MemAccess{
                _grid.mvoxelBaseAddr(mv),
                static_cast<std::uint32_t>(_grid.mvoxelBytes()), mv});
        }

        // Recover the block's global vertex origin from its id.
        std::uint32_t bpa = _grid.blocksPerAxis();
        int bx = static_cast<int>(mv % bpa);
        int by = static_cast<int>((mv / bpa) % bpa);
        int bz = static_cast<int>(mv / (bpa * bpa));

        for (const CornerRef &c : entries) {
            const float *v =
                _grid.vertexData(bx * bv + c.ix, by * bv + c.iy,
                                 bz * bv + c.iz);
            float *dst = features.data() +
                         static_cast<std::size_t>(c.sample) * kFeatureDim;
            for (int ch = 0; ch < kFeatureDim; ++ch)
                dst[ch] += c.weight * v[ch];
        }
    }
    if (trace)
        trace->onFlush();

    out.work.samples = samples.size();
    out.work.vertexFetches =
        samples.size() * static_cast<std::uint64_t>(8);
    out.work.gatherBytes = _stats.streamedBytes;
    out.work.interpOps =
        samples.size() * _model.encoding().interpOpsPerSample();

    // ---- Stage F: decode + composite (unchanged) ---------------------
    rayId = 0;
    for (int py = 0; py < camera.height; ++py) {
        for (int px = 0; px < camera.width; ++px, ++rayId) {
            Ray ray = camera.generateRay(px, py);
            Compositor comp;
            std::uint32_t s0 = rayFirstSample[rayId];
            std::uint32_t s1 = rayFirstSample[rayId + 1];
            for (std::uint32_t s = s0; s < s1; ++s) {
                const float *feat =
                    features.data() +
                    static_cast<std::size_t>(s) * kFeatureDim;
                DecodedSample d =
                    _model.decoder().decode(feat, ray.dir);
                out.work.mlpMacs += _model.nominalMlpMacs();
                out.work.compositeOps += 12;
                // No early termination: the memory-centric order has
                // already gathered every indexed sample.
                comp.add(d.sigma, d.rgb, samples[s].t, samples[s].dt);
            }
            CompositeResult r = comp.finish(_model.scene().background);
            out.image.at(px, py) = r.rgb;
            out.depth.at(px, py) = r.depth;
        }
    }
    return out;
}

} // namespace cicero
