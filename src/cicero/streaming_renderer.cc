#include "cicero/streaming_renderer.hh"

#include <stdexcept>

#include "common/parallel.hh"
#include "common/simd.hh"
#include "nerf/volume_renderer.hh"

namespace cicero {

namespace {

/** One corner contribution queued under an MVoxel. */
struct CornerRef
{
    std::uint32_t sample; //!< global sample index
    std::uint8_t ix, iy, iz; //!< vertex coords *within* the MVoxel block
    float weight;
};

/** Per-sample record kept until Feature Computation. */
struct SampleRec
{
    float t;
    float dt;
};

/** Per-chunk partial of the parallel Stage I (Indexing) loop. */
struct IndexChunk
{
    std::vector<SampleRec> samples;
    std::vector<std::uint32_t> rayFirst; //!< chunk-local sample offsets
    std::vector<std::vector<CornerRef>> rit; //!< chunk-local sample ids
    StageWork work;
    std::uint64_t ritEntries = 0;
    std::uint64_t boundaryEntries = 0;
};

} // namespace

StreamingRenderer::StreamingRenderer(const NerfModel &model)
    : _model(model),
      _grid([&]() -> const DenseGridEncoding & {
          auto *g =
              dynamic_cast<const DenseGridEncoding *>(&model.encoding());
          if (!g) {
              throw std::invalid_argument(
                  "StreamingRenderer requires a DenseGridEncoding");
          }
          return *g;
      }())
{
}

RenderResult
StreamingRenderer::render(const Camera &camera, TraceSink *trace) const
{
    _stats = Stats{};

    RenderResult out;
    out.image = Image(camera.width, camera.height);
    out.depth = DepthMap(camera.width, camera.height);

    const int W = camera.width;
    const int H = camera.height;
    const int bv = _grid.blockVerts();
    const std::uint32_t numMv = _grid.numMVoxels();

    // ---- Stage I: ray marching + RIT construction -------------------
    // Row-parallel with chunk-local sample lists and RITs, merged in
    // chunk order: the global sample numbering, the per-MVoxel entry
    // order (ascending sample id) and therefore Stage G's accumulation
    // order are exactly those of the serial walk.
    std::vector<IndexChunk> chunks = parallelMapChunks<IndexChunk>(
        H, [&](IndexChunk &c, std::int64_t y0, std::int64_t y1) {
            thread_local std::vector<RaySample> raySamples;
            c.rit.resize(numMv);
            for (int py = static_cast<int>(y0); py < y1; ++py) {
                for (int px = 0; px < W; ++px) {
                    c.rayFirst.push_back(
                        static_cast<std::uint32_t>(c.samples.size()));
                    Ray ray = camera.generateRay(px, py);
                    int n = _model.sampler().sample(ray, raySamples);
                    c.work.rays += 1;
                    c.work.indexOps +=
                        static_cast<std::uint64_t>(n) *
                        _model.encoding().indexOpsPerSample();
                    for (int i = 0; i < n; ++i) {
                        std::uint32_t sid = static_cast<std::uint32_t>(
                            c.samples.size());
                        c.samples.push_back(SampleRec{raySamples[i].t,
                                                      raySamples[i].dt});
                        auto cs = _grid.corners(raySamples[i].pn);
                        std::uint32_t touched[8];
                        int nTouched = 0;
                        for (const GridCorner &gc : cs) {
                            c.rit[gc.mvoxel].push_back(CornerRef{
                                sid,
                                static_cast<std::uint8_t>(gc.ix % bv),
                                static_cast<std::uint8_t>(gc.iy % bv),
                                static_cast<std::uint8_t>(gc.iz % bv),
                                gc.weight});
                            bool dup = false;
                            for (int k = 0; k < nTouched; ++k)
                                dup = dup || touched[k] == gc.mvoxel;
                            if (!dup)
                                touched[nTouched++] = gc.mvoxel;
                        }
                        c.ritEntries += nTouched;
                        if (nTouched > 1)
                            c.boundaryEntries += nTouched - 1;
                    }
                }
            }
        });

    // Sample/ray merges stay serial up front (they are cheap); per-chunk
    // sample bases are recorded so the RIT merge below can run
    // MVoxel-major on the scheduler.
    std::vector<SampleRec> samples;
    std::vector<std::uint32_t> rayFirstSample(
        static_cast<std::size_t>(W) * H + 1, 0);
    std::vector<std::uint32_t> chunkSampleBase(chunks.size(), 0);
    {
        std::size_t totalSamples = 0;
        for (const IndexChunk &c : chunks)
            totalSamples += c.samples.size();
        samples.reserve(totalSamples);

        std::size_t rayBase = 0;
        for (std::size_t ci = 0; ci < chunks.size(); ++ci) {
            IndexChunk &c = chunks[ci];
            const std::uint32_t sampleBase =
                static_cast<std::uint32_t>(samples.size());
            chunkSampleBase[ci] = sampleBase;
            for (std::size_t r = 0; r < c.rayFirst.size(); ++r)
                rayFirstSample[rayBase + r] = sampleBase + c.rayFirst[r];
            rayBase += c.rayFirst.size();
            samples.insert(samples.end(), c.samples.begin(),
                           c.samples.end());
            out.work += c.work;
            _stats.ritEntries += c.ritEntries;
            _stats.boundaryEntries += c.boundaryEntries;
        }
    }
    rayFirstSample.back() = static_cast<std::uint32_t>(samples.size());
    _stats.samples = samples.size();
    _stats.ritBytes = _stats.ritEntries * 48;

    // ---- RIT merge + Stage G: a merge/walk dependency chain ----------
    // The MVoxel range is cut into segments. Each segment's RIT merge
    // (concatenate the chunks' per-MVoxel entry lists in chunk order —
    // the serial order) is independent of every other segment and runs
    // in parallel; the address-order walk of segment s depends on its
    // own merge *and* on walk s-1, so walks execute strictly in MVoxel
    // order: the single-visit walk *is* the trace stream, and boundary
    // samples accumulate across MVoxels in that order (partial
    // interpolation). Later merges overlap earlier walks, but neither
    // the trace stream nor any accumulation order changes — output is
    // bit-identical to the serial pipeline. Segment count only shapes
    // task granularity, never results. The Stage I chunks must stay
    // alive until the whole chain drains (a modest peak-memory cost
    // over the old merge-then-release loop).
    //
    // Accumulation is sample-major (each corner update touches one
    // sample's contiguous 36 B, not kFeatureDim strided cache lines);
    // one bulk transposition below hands Stage F the channel-major
    // layout the SoA batched decode consumes.
    const std::size_t S = samples.size();
    std::vector<float> features(
        S * static_cast<std::size_t>(kFeatureDim), 0.0f);
    std::vector<std::vector<CornerRef>> rit(numMv);
    {
        auto mergeSegment = [&](std::uint32_t mv0, std::uint32_t mv1) {
            for (std::uint32_t mv = mv0; mv < mv1; ++mv) {
                for (std::size_t ci = 0; ci < chunks.size(); ++ci) {
                    for (CornerRef e : chunks[ci].rit[mv]) {
                        e.sample += chunkSampleBase[ci];
                        rit[mv].push_back(e);
                    }
                }
            }
        };

        auto walkSegment = [&](std::uint32_t mv0, std::uint32_t mv1) {
            for (std::uint32_t mv = mv0; mv < mv1; ++mv) {
                const auto &entries = rit[mv];
                if (entries.empty())
                    continue;
                ++_stats.mvoxelsLoaded;
                _stats.streamedBytes += _grid.mvoxelBytes();
                if (trace) {
                    trace->onAccess(MemAccess{
                        _grid.mvoxelBaseAddr(mv),
                        static_cast<std::uint32_t>(_grid.mvoxelBytes()),
                        mv});
                }

                // Recover the block's global vertex origin from its id.
                std::uint32_t bpa = _grid.blocksPerAxis();
                int bx = static_cast<int>(mv % bpa);
                int by = static_cast<int>((mv / bpa) % bpa);
                int bz = static_cast<int>(mv / (bpa * bpa));

                for (const CornerRef &c : entries) {
                    const float *v =
                        _grid.vertexData(bx * bv + c.ix, by * bv + c.iy,
                                         bz * bv + c.iz);
                    float *dst =
                        features.data() +
                        static_cast<std::size_t>(c.sample) * kFeatureDim;
                    for (int ch = 0; ch < kFeatureDim; ++ch)
                        dst[ch] += c.weight * v[ch];
                }
            }
        };

        const std::uint32_t numSegs = std::min<std::uint32_t>(
            std::max(1u, numMv),
            static_cast<std::uint32_t>(
                std::max(1, 4 * parallelThreadCount())));
        const std::uint32_t segLen = (numMv + numSegs - 1) / numSegs;
        TaskGroup graph;
        TaskHandle prevWalk;
        for (std::uint32_t mv0 = 0; mv0 < numMv; mv0 += segLen) {
            const std::uint32_t mv1 = std::min(mv0 + segLen, numMv);
            TaskHandle merge = graph.run(
                [&mergeSegment, mv0, mv1] { mergeSegment(mv0, mv1); });
            std::vector<TaskHandle> deps{merge};
            if (prevWalk.valid())
                deps.push_back(prevWalk);
            prevWalk = graph.runAfter(
                deps, [&walkSegment, mv0, mv1] { walkSegment(mv0, mv1); });
        }
        graph.wait();
        for (IndexChunk &c : chunks)
            c = IndexChunk{}; // release Stage I storage
    }
    if (trace)
        trace->onFlush();

    out.work.samples = samples.size();
    out.work.vertexFetches =
        samples.size() * static_cast<std::uint64_t>(8);
    out.work.gatherBytes = _stats.streamedBytes;
    out.work.interpOps =
        samples.size() * _model.encoding().interpOpsPerSample();

    // One pass into the channel-major layout (channel ch of sample s
    // at [ch * S + s]) the SoA batched decode consumes; the
    // sample-major accumulation buffer is released immediately after.
    std::vector<float> featuresSoA(features.size());
    simd::transposeToChannelMajor(features.data(), static_cast<int>(S),
                                  kFeatureDim, featuresSoA.data());
    std::vector<float>().swap(features);

    // ---- Stage F: decode + composite ---------------------------------
    // Row-parallel: rays write disjoint pixels and read disjoint
    // feature slices; per-chunk work counters merge in chunk order.
    for (const StageWork &w : parallelMapChunks<StageWork>(
             H, [&](StageWork &fw, std::int64_t y0, std::int64_t y1) {
                 for (int py = static_cast<int>(y0); py < y1; ++py) {
                     std::uint32_t rayId =
                         static_cast<std::uint32_t>(py) * W;
                     thread_local std::vector<DecodedSample> decoded;
                     for (int px = 0; px < W; ++px, ++rayId) {
                         Ray ray = camera.generateRay(px, py);
                         Compositor comp;
                         std::uint32_t s0 = rayFirstSample[rayId];
                         std::uint32_t s1 = rayFirstSample[rayId + 1];
                         const int m = static_cast<int>(s1 - s0);
                         decoded.resize(m);
                         // The ray's feature columns start at s0 with
                         // the frame-wide channel stride: one batched
                         // SoA decode replaces the per-sample MLP
                         // round trips (bit-identical to scalar
                         // decode).
                         _model.decoder().decodeBatchSoA(
                             featuresSoA.data() + s0, S, m, ray.dir,
                             decoded.data());
                         for (int i = 0; i < m; ++i) {
                             std::uint32_t s = s0 + i;
                             fw.mlpMacs += _model.nominalMlpMacs();
                             fw.compositeOps += 12;
                             // No early termination: the memory-centric
                             // order has already gathered every indexed
                             // sample.
                             comp.add(decoded[i].sigma, decoded[i].rgb,
                                      samples[s].t, samples[s].dt);
                         }
                         CompositeResult r =
                             comp.finish(_model.scene().background);
                         out.image.at(px, py) = r.rgb;
                         out.depth.at(px, py) = r.depth;
                     }
                 }
             }))
        out.work += w;

    return out;
}

} // namespace cicero
