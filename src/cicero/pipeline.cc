#include "cicero/pipeline.hh"

#include <algorithm>

namespace cicero {

const char *
variantName(SystemVariant variant)
{
    switch (variant) {
      case SystemVariant::Baseline:
        return "Baseline";
      case SystemVariant::Sparw:
        return "SPARW";
      case SystemVariant::SparwFs:
        return "SPARW+FS";
      case SystemVariant::Cicero:
        return "CICERO";
    }
    return "?";
}

PerformanceModel::PerformanceModel(const GpuConfig &localGpu,
                                   const NpuConfig &npu,
                                   const GatheringUnitConfig &gu,
                                   const GpuConfig &remoteGpu,
                                   const EnergyConstants &energy)
    : _localGpu(localGpu), _npu(npu), _gu(gu), _remoteGpu(remoteGpu),
      _energy(energy)
{
}

FramePrice
PerformanceModel::nerfCost(SystemVariant variant, const StageWork &work,
                           const GatherProfile &profile,
                           const StreamPlan &plan,
                           std::uint32_t vertexBytes) const
{
    FramePrice price;
    const DramConfig &dram = _localGpu.config().dram;

    // Indexing always runs on the GPU (Fig. 14).
    GpuStageTimes t = _localGpu.timeNerfFrame(work, profile);
    double gpuMs = t.indexMs + t.compositeMs;
    double npuMs = _npu.mlpTimeMs(work.mlpMacs);
    double gatherMs = 0.0;
    double dramNj = 0.0;
    double guNj = 0.0;

    switch (variant) {
      case SystemVariant::Baseline:
      case SystemVariant::Sparw: {
        // Pixel-centric gather on the GPU: cache misses produce
        // random-heavy DRAM traffic.
        gatherMs = t.gatherMs;
        dramNj = _localGpu.gatherDramEnergyNj(work, profile, _energy);
        gpuMs += gatherMs;
        break;
      }
      case SystemVariant::SparwFs: {
        // Memory-centric gather in software: the RIT (built against the
        // occupancy grid during Indexing) prunes empty samples, every
        // MVoxel is read once and streaming; hashed-level residue stays
        // random. Fetch issue covers only RIT entries.
        double streamMs =
            plan.streamedBytes / (dram.bandwidthGBs * 1e9) * 1e3;
        double randomMs = plan.randomBytes /
                          (dram.bandwidthGBs * 1e9 /
                           _localGpu.config().randomPenalty) *
                          1e3;
        // Software gathering out of on-chip storage still pays the
        // feature-major SRAM bank conflicts of Fig. 6 — only the GU's
        // channel-major layout removes them. Sustained software gather
        // throughput is ~40% of the raw load-issue rate.
        double issueMs = plan.ritEntries * 8.0 /
                         (0.4 * _localGpu.config().fetchIssueRate) * 1e3;
        gatherMs = std::max(streamMs + randomMs, issueMs);
        dramNj =
            plan.streamedBytes * _energy.dramStreamPjPerByte * 1e-3 +
            plan.randomBytes * _energy.dramRandomPjPerByte * 1e-3 +
            plan.ritBytes * _energy.dramStreamPjPerByte * 1e-3;
        gpuMs += gatherMs;
        break;
      }
      case SystemVariant::Cicero: {
        // The GU performs gathering; it overlaps with NPU MLP work via
        // the double-buffered global feature buffer.
        GuCost gu = _gu.price(plan, vertexBytes,
                              _localGpu.config().dram, _energy);
        gatherMs = gu.timeMs;
        guNj = gu.energyNj; // includes its DRAM traffic
        break;
      }
    }

    double npuNj = _npu.energyNj(npuMs) +
                   work.mlpMacs * _energy.macPj * 1e-3;
    double gpuNj = _localGpu.energyNj(gpuMs);

    if (variant == SystemVariant::Cicero) {
        // GPU indexing, then gather (GU) overlapped with MLP (NPU).
        price.timeMs = t.indexMs + t.compositeMs +
                       std::max(gatherMs, npuMs);
    } else {
        price.timeMs = gpuMs + npuMs;
    }
    price.energyNj = gpuNj + npuNj + dramNj + guNj;
    price.dramEnergyNj = dramNj + (variant == SystemVariant::Cicero
                                       ? guNj // GU ledger includes DRAM
                                       : 0.0);
    price.fullFrameMs = price.timeMs;
    return price;
}

FramePrice
PerformanceModel::warpCost(std::uint64_t points) const
{
    FramePrice price;
    // Eqs. 1-3 each touch every point once; the depth test adds a
    // projection pass. The paper measures <1 ms per million points.
    price.warpMs = _localGpu.warpTimeMs(points * 2);
    price.timeMs = price.warpMs;
    price.energyNj = _localGpu.energyNj(price.timeMs);
    return price;
}

FramePrice
PerformanceModel::priceFullFrame(SystemVariant variant,
                                 const WorkloadInputs &inputs) const
{
    return nerfCost(variant, inputs.fullFrame, inputs.gatherProfile,
                    inputs.fullStreamPlan, inputs.vertexBytes);
}

FramePrice
PerformanceModel::priceLocal(SystemVariant variant,
                             const WorkloadInputs &inputs) const
{
    if (variant == SystemVariant::Baseline)
        return priceFullFrame(variant, inputs);

    // Reference frames amortize over the window but contend for the
    // same device resources, so their time adds (Sec. VI-C).
    FramePrice ref = priceFullFrame(variant, inputs);
    FramePrice sparse =
        nerfCost(variant, inputs.sparsePerFrame, inputs.gatherProfile,
                 inputs.sparseStreamPlan, inputs.vertexBytes);
    double overhead = _localGpu.config().sparseDispatchOverhead;
    sparse.timeMs *= overhead;
    sparse.energyNj *= overhead;
    FramePrice warp = warpCost(inputs.warpPointsPerFrame);

    FramePrice price;
    double n = std::max(1, inputs.window);
    price.fullFrameMs = ref.timeMs / n;
    price.sparseMs = sparse.timeMs;
    price.warpMs = warp.timeMs;
    price.timeMs = price.fullFrameMs + price.sparseMs + price.warpMs;
    price.energyNj = ref.energyNj / n + sparse.energyNj + warp.energyNj +
                     _energy.socStaticW * price.timeMs * 1e6;
    price.dramEnergyNj = ref.dramEnergyNj / n + sparse.dramEnergyNj;
    return price;
}

FramePrice
PerformanceModel::priceRemote(SystemVariant variant,
                              const WorkloadInputs &inputs) const
{
    // Frame transfer: RGB (3 B/px); references also ship a 2 B/px depth
    // map for warping.
    const double bytesPerPixelFrame = 3.0;
    const double bytesPerPixelRef = 5.0;
    const double wirelessBps = _energy.wirelessMBps * 1e6;

    if (variant == SystemVariant::Baseline) {
        // Entire rendering offloaded; the device only receives pixels.
        GpuStageTimes t = _remoteGpu.timeNerfFrame(inputs.fullFrame,
                                                   inputs.gatherProfile);
        double renderMs = t.totalMs();
        double commBytes = inputs.framePixels * bytesPerPixelFrame;
        double commMs = commBytes / wirelessBps * 1e3;

        FramePrice price;
        // Streamed frames pipeline: rendering and transfer overlap.
        price.timeMs = std::max(renderMs, commMs);
        price.otherMs = commMs;
        price.fullFrameMs = renderMs;
        // Device-side energy: wireless reception only (Sec. VI-C).
        price.energyNj = commBytes * _energy.wirelessNjPerByte;
        return price;
    }

    // SPARW variants: the reference renders remotely and its pixels +
    // depth ship once per window; targets render locally with the
    // variant's engines for the sparse work.
    GpuStageTimes t = _remoteGpu.timeNerfFrame(inputs.fullFrame,
                                               inputs.gatherProfile);
    double n = std::max(1, inputs.window);
    double refRemoteMs = t.totalMs();
    double refCommBytes = inputs.framePixels * bytesPerPixelRef;
    double refCommMs = refCommBytes / wirelessBps * 1e3;

    FramePrice sparse =
        nerfCost(variant, inputs.sparsePerFrame, inputs.gatherProfile,
                 inputs.sparseStreamPlan, inputs.vertexBytes);
    double overhead = _localGpu.config().sparseDispatchOverhead;
    sparse.timeMs *= overhead;
    sparse.energyNj *= overhead;
    FramePrice warp = warpCost(inputs.warpPointsPerFrame);

    FramePrice price;
    double localMs = sparse.timeMs + warp.timeMs;
    // Remote rendering and transfer overlap target-frame production;
    // they bound throughput only if slower than N local frames.
    price.timeMs = std::max(localMs, (refRemoteMs + refCommMs) / n);
    price.fullFrameMs = (refRemoteMs + refCommMs) / n;
    price.sparseMs = sparse.timeMs;
    price.warpMs = warp.timeMs;
    price.otherMs = refCommMs / n;
    price.energyNj = sparse.energyNj + warp.energyNj +
                     refCommBytes * _energy.wirelessNjPerByte / n;
    price.dramEnergyNj = sparse.dramEnergyNj;
    return price;
}

PerformanceModel::GatherPrice
PerformanceModel::priceGatherOnly(const WorkloadInputs &inputs) const
{
    GatherPrice out;
    GpuStageTimes t = _localGpu.timeNerfFrame(inputs.fullFrame,
                                              inputs.gatherProfile);
    out.gpuMs = t.gatherMs;
    std::uint64_t bytes =
        _localGpu.gatherDramBytes(inputs.fullFrame, inputs.gatherProfile);
    double randomBytes = bytes * inputs.gatherProfile.randomFraction;
    out.gpuEnergyNj = _localGpu.energyNj(out.gpuMs) +
                      randomBytes * _energy.dramRandomPjPerByte * 1e-3 +
                      (bytes - randomBytes) *
                          _energy.dramStreamPjPerByte * 1e-3;

    GuCost gu = _gu.price(inputs.fullStreamPlan, inputs.vertexBytes,
                          _localGpu.config().dram, _energy);
    out.guMs = gu.timeMs;
    out.guEnergyNj = gu.energyNj;
    return out;
}

} // namespace cicero
