/**
 * @file
 * Fully-streaming (memory-centric) NeRF rendering — Sec. IV-A / Fig. 12.
 *
 * Instead of walking rays and letting their samples scatter DRAM reads,
 * the renderer:
 *  1. Indexing: marches every ray once, building a Ray Index Table (RIT)
 *     that records, per MVoxel, the ray samples (with trilinear weights)
 *     whose vertices live there;
 *  2. Gathering: streams MVoxels from DRAM *in address order, exactly
 *     once*, scattering weighted vertex features into per-sample
 *     accumulators. A sample whose 8 corners straddle MVoxel boundaries
 *     is processed partially in each — trilinear interpolation is a
 *     weighted sum, so partial accumulation is exact and vertex storage
 *     needs no duplication;
 *  3. Feature Computation: unchanged — decode + composite per ray.
 *
 * The result is bit-equal to the pixel-centric renderer up to the
 * early-termination cutoff (transmittance < 1e-3), which the
 * memory-centric order cannot exploit.
 *
 * Works on models whose encoding is a DenseGridEncoding in
 * MVoxelBlocked layout (DirectVoxGO / EfficientNeRF classes); for
 * hierarchical encodings the per-level split is captured by
 * Encoding::streamingFootprint (see DESIGN.md).
 */

#ifndef CICERO_CICERO_STREAMING_RENDERER_HH
#define CICERO_CICERO_STREAMING_RENDERER_HH

#include "nerf/dense_grid.hh"
#include "nerf/renderer.hh"

namespace cicero {

/**
 * Memory-centric renderer over a dense-grid model.
 */
class StreamingRenderer
{
  public:
    /** Measured streaming statistics of the last render. */
    struct Stats
    {
        std::uint64_t mvoxelsLoaded = 0;
        std::uint64_t streamedBytes = 0;
        std::uint64_t ritEntries = 0;   //!< (sample, MVoxel) pairs
        std::uint64_t ritBytes = 0;
        std::uint64_t samples = 0;
        std::uint64_t boundaryEntries = 0; //!< partial (straddling) entries
    };

    /**
     * @param model model whose encoding is a DenseGridEncoding; throws
     *              std::invalid_argument otherwise.
     */
    explicit StreamingRenderer(const NerfModel &model);

    /**
     * Render a frame in memory-centric order.
     * @param trace optional sink; receives one streaming access per
     *              loaded MVoxel chunk (burst-split by the DRAM model).
     */
    RenderResult render(const Camera &camera,
                        TraceSink *trace = nullptr) const;

    const Stats &lastStats() const { return _stats; }

  private:
    const NerfModel &_model;
    const DenseGridEncoding &_grid;
    mutable Stats _stats;
};

} // namespace cicero

#endif // CICERO_CICERO_STREAMING_RENDERER_HH
