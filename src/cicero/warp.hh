/**
 * @file
 * Sparse radiance warping — the image-warping core of SPARW
 * (Sec. III-B, Eqs. 1-4).
 *
 * A rendered reference frame (color + depth) is lifted to a point cloud
 * in the reference camera frame (Eq. 1), rigidly transformed into the
 * target camera frame (Eq. 2), and perspective-projected with z-buffer
 * splatting (Eq. 3). Pixels the splat does not reach are holes; a cheap
 * ray-vs-occupancy test separates *void* holes (nothing there — use the
 * background) from *disoccluded* holes, which are returned for sparse
 * NeRF re-rendering (Eq. 4). The warping heuristic of Sec. III-C
 * optionally rejects warps whose subtended angle exceeds a threshold ϕ.
 */

#ifndef CICERO_CICERO_WARP_HH
#define CICERO_CICERO_WARP_HH

#include <vector>

#include "common/geometry.hh"
#include "common/image.hh"
#include "nerf/renderer.hh"
#include "nerf/sampler.hh"

namespace cicero {

/** Warping controls. */
struct WarpParams
{
    /**
     * Warping threshold ϕ in degrees (Sec. III-C): a reference pixel is
     * only reused if the angle between the reference ray and the target
     * ray through the same scene point is below ϕ. 180 disables the
     * heuristic (used everywhere except Sec. VI-F).
     */
    float maxAngleDeg = 180.0f;
};

/** Per-warp statistics (drives Fig. 7 and the workload accounting). */
struct WarpStats
{
    std::uint64_t totalPixels = 0;
    std::uint64_t warped = 0;       //!< pixels filled by reprojection
    std::uint64_t voidHoles = 0;    //!< holes classified as background
    std::uint64_t disoccluded = 0;  //!< holes needing sparse NeRF
    std::uint64_t angleRejected = 0; //!< reference pixels failing ϕ
    std::uint64_t pointsTransformed = 0; //!< point-cloud size (Eqs. 1-3)

    /** Fraction of target pixels covered by warping (Fig. 7). */
    double
    overlapFraction() const
    {
        return totalPixels ? static_cast<double>(warped) / totalPixels
                           : 0.0;
    }

    /** Fraction of target pixels requiring NeRF rendering. */
    double
    rerenderFraction() const
    {
        return totalPixels
                   ? static_cast<double>(disoccluded) / totalPixels
                   : 0.0;
    }
};

/** Result of warping one reference frame to one target pose. */
struct WarpOutput
{
    Image image;
    DepthMap depth;
    std::vector<std::uint32_t> needRender; //!< disoccluded pixel ids
    WarpStats stats;
};

/**
 * Warp @p refImage / @p refDepth (rendered at @p refCam) to @p tgtCam.
 *
 * @param occupancy optional occupancy grid for the void-vs-disocclusion
 *                  depth test; without it every hole is disoccluded.
 * @param background color for void holes.
 */
WarpOutput warpFrame(const Image &refImage, const DepthMap &refDepth,
                     const Camera &refCam, const Camera &tgtCam,
                     const OccupancyGrid *occupancy,
                     const Vec3 &background,
                     const WarpParams &params = {});

/**
 * Radiance-transfer warping — the Sec. VIII extension implemented.
 *
 * Plain SPARW reuses a pixel's radiance unchanged (an identity
 * transfer function), which breaks on non-diffuse surfaces when the
 * view angle changes. With the reference frame's G-buffer (per-pixel
 * normal / diffuse / specular material attributes), the view-dependent
 * part of each warped pixel can be *re-shaded* for the target view:
 *
 *   L_tgt = shade(material, dir_tgt) + [L_ref - shade(material, dir_ref)]
 *
 * The bracketed residual keeps whatever the shading model does not
 * capture. This removes the warping threshold's quality/speed
 * trade-off for specular content (see bench_ext_transfer).
 *
 * @param gbuffer  material buffer rendered with the reference frame
 *                 (NerfModel::render(..., wantGBuffer = true))
 * @param lightDir scene light direction (Scene::field.lightDir())
 */
WarpOutput warpFrameTransfer(const Image &refImage,
                             const DepthMap &refDepth,
                             const GBuffer &gbuffer,
                             const Camera &refCam, const Camera &tgtCam,
                             const OccupancyGrid *occupancy,
                             const Vec3 &background,
                             const Vec3 &lightDir,
                             const WarpParams &params = {});

} // namespace cicero

#endif // CICERO_CICERO_WARP_HH
