#include "cicero/sparw.hh"

#include "cicero/pose_extrapolation.hh"

namespace cicero {

double
SparwRun::meanOverlap() const
{
    if (frames.empty())
        return 0.0;
    double acc = 0.0;
    for (const auto &f : frames)
        acc += f.warpStats.overlapFraction();
    return acc / frames.size();
}

double
SparwRun::meanRerender() const
{
    if (frames.empty())
        return 0.0;
    double acc = 0.0;
    for (const auto &f : frames)
        acc += f.warpStats.rerenderFraction();
    return acc / frames.size();
}

StageWork
SparwRun::totalSparseWork() const
{
    StageWork w;
    for (const auto &f : frames)
        w += f.sparseWork;
    return w;
}

StageWork
SparwRun::totalReferenceWork() const
{
    StageWork w;
    for (const auto &r : references)
        w += r.work;
    return w;
}

SparwPipeline::SparwPipeline(const NerfModel &model,
                             const Camera &intrinsics,
                             const SparwConfig &config)
    : _model(model), _intrinsics(intrinsics), _config(config)
{
}

Camera
SparwPipeline::cameraAt(const Pose &pose) const
{
    Camera c = _intrinsics;
    c.pose = pose;
    return c;
}

SparwRun
SparwPipeline::run(const std::vector<Pose> &trajectory) const
{
    SparwRun out;
    const int n = static_cast<int>(trajectory.size());
    const int window = std::max(1, _config.window);

    Camera refCam;
    RenderResult refRender;

    for (int i = 0; i < n; ++i) {
        if (i % window == 0) {
            // Start of a window: pick the reference pose. The first
            // window has no history to extrapolate from, so its
            // reference is the first trajectory pose itself; later
            // windows extrapolate from the two poses preceding the
            // window (known before the window starts, Fig. 10).
            Pose refPose;
            bool onTraj = false;
            if (i >= 2) {
                refPose =
                    extrapolateReferencePose(trajectory[i - 2],
                                             trajectory[i - 1],
                                             _config.dtSeconds, window);
            } else {
                refPose = trajectory[0];
                onTraj = true;
            }
            refCam = cameraAt(refPose);
            refRender = _model.render(refCam);
            out.references.push_back(
                SparwReference{refPose, refRender.work, onTraj});
        }

        Camera tgtCam = cameraAt(trajectory[i]);
        WarpOutput w =
            warpFrame(refRender.image, refRender.depth, refCam, tgtCam,
                      &_model.occupancy(), _model.scene().background,
                      _config.warp);

        SparwFrame frame;
        frame.warpStats = w.stats;
        frame.warpPoints = w.stats.pointsTransformed;
        frame.referenceIndex =
            static_cast<int>(out.references.size()) - 1;

        // Eq. 4: sparse NeRF rendering of the disoccluded pixels.
        frame.sparseWork = _model.renderPixels(tgtCam, w.needRender,
                                               w.image, w.depth);
        frame.image = std::move(w.image);
        frame.depth = std::move(w.depth);
        out.frames.push_back(std::move(frame));
    }
    return out;
}

SparwRun
SparwPipeline::runTemporal(const std::vector<Pose> &trajectory) const
{
    SparwRun out;
    const int n = static_cast<int>(trajectory.size());
    const int window = std::max(1, _config.window);

    // The reference is always the most recent *output* frame of a window
    // boundary — warped content warps again, accumulating error.
    Camera refCam;
    Image refImage;
    DepthMap refDepth;

    for (int i = 0; i < n; ++i) {
        Camera tgtCam = cameraAt(trajectory[i]);

        if (i == 0) {
            // Bootstrap: full render of the first frame.
            RenderResult r = _model.render(tgtCam);
            out.references.push_back(
                SparwReference{trajectory[0], r.work, true});
            refCam = tgtCam;
            refImage = r.image;
            refDepth = r.depth;

            SparwFrame frame;
            frame.referenceIndex = 0;
            frame.warpStats.totalPixels =
                static_cast<std::uint64_t>(tgtCam.width) * tgtCam.height;
            frame.warpStats.warped = frame.warpStats.totalPixels;
            frame.image = std::move(r.image);
            frame.depth = std::move(r.depth);
            out.frames.push_back(std::move(frame));
            continue;
        }

        WarpOutput w = warpFrame(refImage, refDepth, refCam, tgtCam,
                                 &_model.occupancy(),
                                 _model.scene().background, _config.warp);

        SparwFrame frame;
        frame.warpStats = w.stats;
        frame.warpPoints = w.stats.pointsTransformed;
        frame.referenceIndex =
            static_cast<int>(out.references.size()) - 1;
        frame.sparseWork = _model.renderPixels(tgtCam, w.needRender,
                                               w.image, w.depth);
        frame.image = std::move(w.image);
        frame.depth = std::move(w.depth);

        if (i % window == 0) {
            // This output becomes the next reference (serialized reuse).
            refCam = tgtCam;
            refImage = frame.image;
            refDepth = frame.depth;
        }
        out.frames.push_back(std::move(frame));
    }
    return out;
}

SparwRun
SparwPipeline::runDownsampled(const std::vector<Pose> &trajectory,
                              int factor) const
{
    SparwRun out;
    Camera low = _intrinsics;
    low.width = std::max(1, _intrinsics.width / factor);
    low.height = std::max(1, _intrinsics.height / factor);
    low.focal = _intrinsics.focal / factor;
    low.cx = _intrinsics.cx / factor;
    low.cy = _intrinsics.cy / factor;

    for (const Pose &pose : trajectory) {
        Camera cam = low;
        cam.pose = pose;
        RenderResult r = _model.render(cam);
        out.references.push_back(SparwReference{pose, r.work, true});

        SparwFrame frame;
        frame.referenceIndex =
            static_cast<int>(out.references.size()) - 1;
        frame.warpStats.totalPixels =
            static_cast<std::uint64_t>(_intrinsics.width) *
            _intrinsics.height;
        frame.image = r.image.upsampleBilinear(_intrinsics.width,
                                               _intrinsics.height);
        frame.depth = DepthMap(_intrinsics.width, _intrinsics.height);
        out.frames.push_back(std::move(frame));
    }
    return out;
}

} // namespace cicero
