#include "cicero/sparw.hh"

#include <algorithm>
#include <chrono>
#include <functional>

#include "cicero/pose_extrapolation.hh"
#include "common/parallel.hh"

namespace cicero {

namespace {

/**
 * Per-window dependency-graph driver (SparwSchedule::DependencyGraph):
 * for every window wi, frameTask(wi) depends on refTask(wi) and on
 * nothing else, so a straggling reference delays only its own window.
 * References stream ahead continuously; the edge
 * refTask(wi) -> after frameTask(wi - cap) bounds the number of
 * windows whose reference can be alive at once to cap = max(2,
 * 2 x threads), keeping peak memory O(threads) instead of O(windows).
 *
 * Tasks are submitted in topological order (frame wi-cap before ref
 * wi before frame wi), so on a one-thread pool the graph degenerates
 * to the serial ref/frames walk. Both callbacks write disjoint slots,
 * making output bit-identical to every other schedule.
 */
void
runWindowGraph(int numWindows, const std::function<void(int)> &renderRef,
               const std::function<void(int)> &processWindow)
{
    const int cap = std::max(2, 2 * parallelThreadCount());
    TaskGroup graph;
    std::vector<TaskHandle> frameTasks(numWindows);
    for (int wi = 0; wi < numWindows; ++wi) {
        std::vector<TaskHandle> refDeps;
        if (wi >= cap)
            refDeps.push_back(frameTasks[wi - cap]);
        TaskHandle ref = graph.runAfter(
            refDeps, [&renderRef, wi] { renderRef(wi); });
        frameTasks[wi] = graph.runAfter(
            {ref}, [&processWindow, wi] { processWindow(wi); });
    }
    graph.wait();
}

/**
 * Window-batch driver shared by run() and runDownsampled(): walks
 * [0, numWindows) in batches of @p batch windows, calling
 * renderRefs(w0, w1) and then processFrames(w0, w1) per batch.
 *
 * Pipelined (Fig. 11b), the next batch's renderRefs is submitted as a
 * scheduler task *before* the current batch's processFrames runs, so
 * reference rendering overlaps the in-flight warp + sparse-render
 * frames; the group wait after processFrames is the only barrier. The
 * lookahead is exactly one batch, so at most two batches of references
 * are alive at once. Both stages write disjoint slots and all merges
 * inside them are chunk-indexed, so the output is bit-identical to the
 * two-phase walk — scheduling is the only thing that changes.
 */
void
runWindowBatches(int numWindows, int batch, SparwSchedule schedule,
                 const std::function<void(int, int)> &renderRefs,
                 const std::function<void(int, int)> &processFrames)
{
    batch = std::max(1, batch);
    if (schedule == SparwSchedule::TwoPhase) {
        for (int w0 = 0; w0 < numWindows; w0 += batch) {
            const int w1 = std::min(w0 + batch, numWindows);
            renderRefs(w0, w1);
            processFrames(w0, w1);
        }
        return;
    }

    if (numWindows > 0)
        renderRefs(0, std::min(batch, numWindows));
    for (int w0 = 0; w0 < numWindows; w0 += batch) {
        const int w1 = std::min(w0 + batch, numWindows);
        TaskGroup lookahead;
        if (w1 < numWindows) {
            const int n1 = std::min(w1 + batch, numWindows);
            lookahead.run([&renderRefs, w1, n1] { renderRefs(w1, n1); });
        }
        processFrames(w0, w1);
        lookahead.wait();
    }
}

/**
 * Fallback camera of the DS-k paths. runDownsampled() and
 * runRealtime()'s deadline fallback must construct the *same* camera
 * so a budget-exhausted real-time run reproduces runDownsampled
 * images bit for bit.
 */
Camera
downsampledCamera(const Camera &intrinsics, int factor)
{
    Camera low = intrinsics;
    low.width = std::max(1, intrinsics.width / factor);
    low.height = std::max(1, intrinsics.height / factor);
    low.focal = intrinsics.focal / factor;
    low.cx = intrinsics.cx / factor;
    low.cy = intrinsics.cy / factor;
    return low;
}

} // namespace

double
SparwDeadlineStats::missRate() const
{
    return frames > 0 ? static_cast<double>(deadlineMisses) / frames : 0.0;
}

double
SparwDeadlineStats::fallbackRate() const
{
    return frames > 0 ? static_cast<double>(fallbackFrames) / frames : 0.0;
}

double
SparwRun::meanOverlap() const
{
    if (frames.empty())
        return 0.0;
    double acc = 0.0;
    for (const auto &f : frames)
        acc += f.warpStats.overlapFraction();
    return acc / frames.size();
}

double
SparwRun::meanRerender() const
{
    if (frames.empty())
        return 0.0;
    double acc = 0.0;
    for (const auto &f : frames)
        acc += f.warpStats.rerenderFraction();
    return acc / frames.size();
}

StageWork
SparwRun::totalSparseWork() const
{
    StageWork w;
    for (const auto &f : frames)
        w += f.sparseWork;
    return w;
}

StageWork
SparwRun::totalReferenceWork() const
{
    StageWork w;
    for (const auto &r : references)
        w += r.work;
    return w;
}

SparwPipeline::SparwPipeline(const NerfModel &model,
                             const Camera &intrinsics,
                             const SparwConfig &config)
    : _model(model), _intrinsics(intrinsics), _config(config)
{
}

Camera
SparwPipeline::cameraAt(const Pose &pose) const
{
    Camera c = _intrinsics;
    c.pose = pose;
    return c;
}

SparwRun
SparwPipeline::run(const std::vector<Pose> &trajectory) const
{
    SparwRun out;
    const int n = static_cast<int>(trajectory.size());
    const int window = std::max(1, _config.window);
    if (n == 0)
        return out;

    // Reference poses depend only on the *input* trajectory (the two
    // poses preceding each window, known before it starts — Fig. 10),
    // never on rendered output. That makes the whole frame loop
    // data-parallel: resolve every window's reference pose first,
    // render the references, then warp + sparse-render each target
    // frame independently. Results are identical to the serial
    // window-by-window walk.
    const int numWindows = (n + window - 1) / window;
    out.references.resize(numWindows);
    std::vector<Camera> refCams(numWindows);
    std::vector<RenderResult> refRenders(numWindows);

    for (int wi = 0; wi < numWindows; ++wi) {
        const int i = wi * window;
        Pose refPose;
        bool onTraj = false;
        if (i >= 2) {
            refPose = extrapolateReferencePose(trajectory[i - 2],
                                               trajectory[i - 1],
                                               _config.dtSeconds, window);
        } else {
            refPose = trajectory[0];
            onTraj = true;
        }
        refCams[wi] = cameraAt(refPose);
        out.references[wi] = SparwReference{refPose, StageWork{}, onTraj};
    }

    // Work through windows in pool-width batches: render a batch's
    // references (one heavy unit per window; nested row loops share
    // the pool via work stealing), process the batch's target frames —
    // warp from the window's reference, then sparse NeRF rendering of
    // the disocclusions (Eq. 4) — and release each batch's reference
    // images once its frames are done, so peak memory stays O(threads)
    // full-resolution references instead of O(numWindows). Under the
    // pipelined schedule the driver below overlaps the next batch's
    // reference rendering with this batch's frames (Fig. 11b); the
    // slots the two stages touch are disjoint, so output matches the
    // two-phase walk bit for bit.
    out.frames.resize(n);
    const int batch = std::max(1, parallelThreadCount());

    auto renderRefs = [&](int w0, int w1) {
        parallelForOuter(w1 - w0, [&, w0](std::int64_t k) {
            const std::int64_t wi = w0 + k;
            refRenders[wi] = _model.render(refCams[wi]);
        });
        for (int wi = w0; wi < w1; ++wi)
            out.references[wi].work = refRenders[wi].work;
    };

    auto processFrames = [&](int w0, int w1) {
        const int f0 = w0 * window;
        const int f1 = std::min(w1 * window, n);
        parallelForOuter(f1 - f0, [&, f0](std::int64_t k) {
            const std::int64_t i = f0 + k;
            const int wi = static_cast<int>(i) / window;
            Camera tgtCam = cameraAt(trajectory[i]);
            WarpOutput w = warpFrame(refRenders[wi].image,
                                     refRenders[wi].depth, refCams[wi],
                                     tgtCam, &_model.occupancy(),
                                     _model.scene().background,
                                     _config.warp);

            SparwFrame frame;
            frame.warpStats = w.stats;
            frame.warpPoints = w.stats.pointsTransformed;
            frame.referenceIndex = wi;
            frame.sparseWork = _model.renderPixels(tgtCam, w.needRender,
                                                   w.image, w.depth);
            frame.image = std::move(w.image);
            frame.depth = std::move(w.depth);
            out.frames[i] = std::move(frame);
        });
        for (int wi = w0; wi < w1; ++wi)
            refRenders[wi] = RenderResult{};
    };

    if (_config.schedule == SparwSchedule::DependencyGraph)
        runWindowGraph(
            numWindows, [&](int wi) { renderRefs(wi, wi + 1); },
            [&](int wi) { processFrames(wi, wi + 1); });
    else
        runWindowBatches(numWindows, batch, _config.schedule, renderRefs,
                         processFrames);
    return out;
}

SparwRun
SparwPipeline::runTemporal(const std::vector<Pose> &trajectory) const
{
    SparwRun out;
    const int n = static_cast<int>(trajectory.size());
    const int window = std::max(1, _config.window);

    // The reference is always the most recent *output* frame of a window
    // boundary — warped content warps again, accumulating error. Each
    // frame therefore depends on its predecessors' outputs: the frame
    // loop is inherently serial (the serialization Fig. 11a charges
    // this strategy with); only the per-frame internals parallelize.
    Camera refCam;
    Image refImage;
    DepthMap refDepth;

    for (int i = 0; i < n; ++i) {
        Camera tgtCam = cameraAt(trajectory[i]);

        if (i == 0) {
            // Bootstrap: full render of the first frame.
            RenderResult r = _model.render(tgtCam);
            out.references.push_back(
                SparwReference{trajectory[0], r.work, true});
            refCam = tgtCam;
            refImage = r.image;
            refDepth = r.depth;

            SparwFrame frame;
            frame.referenceIndex = 0;
            frame.warpStats.totalPixels =
                static_cast<std::uint64_t>(tgtCam.width) * tgtCam.height;
            frame.warpStats.warped = frame.warpStats.totalPixels;
            frame.image = std::move(r.image);
            frame.depth = std::move(r.depth);
            out.frames.push_back(std::move(frame));
            continue;
        }

        WarpOutput w = warpFrame(refImage, refDepth, refCam, tgtCam,
                                 &_model.occupancy(),
                                 _model.scene().background, _config.warp);

        SparwFrame frame;
        frame.warpStats = w.stats;
        frame.warpPoints = w.stats.pointsTransformed;
        frame.referenceIndex =
            static_cast<int>(out.references.size()) - 1;
        frame.sparseWork = _model.renderPixels(tgtCam, w.needRender,
                                               w.image, w.depth);
        frame.image = std::move(w.image);
        frame.depth = std::move(w.depth);

        if (i % window == 0) {
            // This output becomes the next reference (serialized reuse).
            refCam = tgtCam;
            refImage = frame.image;
            refDepth = frame.depth;
        }
        out.frames.push_back(std::move(frame));
    }
    return out;
}

SparwRun
SparwPipeline::runDownsampled(const std::vector<Pose> &trajectory,
                              int factor) const
{
    SparwRun out;
    Camera low = downsampledCamera(_intrinsics, factor);

    // Every frame is an independent downsampled render + upsample: a
    // degenerate SPARW window whose reference *is* the displayed frame
    // (upsampling stands in for the frame stage). Scheduling goes
    // through the same window-batch driver as run(), so DS-k inherits
    // the pipelined overlap instead of duplicating batch logic.
    const int n = static_cast<int>(trajectory.size());
    out.references.resize(n);
    out.frames.resize(n);
    std::vector<RenderResult> renders(n);

    auto renderRefs = [&](int w0, int w1) {
        parallelForOuter(w1 - w0, [&, w0](std::int64_t k) {
            const std::int64_t i = w0 + k;
            Camera cam = low;
            cam.pose = trajectory[i];
            renders[i] = _model.render(cam);
            out.references[i] =
                SparwReference{trajectory[i], renders[i].work, true};
        });
    };

    auto processFrames = [&](int w0, int w1) {
        parallelForOuter(w1 - w0, [&, w0](std::int64_t k) {
            const std::int64_t i = w0 + k;
            SparwFrame frame;
            frame.referenceIndex = static_cast<int>(i);
            frame.warpStats.totalPixels =
                static_cast<std::uint64_t>(_intrinsics.width) *
                _intrinsics.height;
            frame.image = renders[i].image.upsampleBilinear(
                _intrinsics.width, _intrinsics.height);
            frame.depth = DepthMap(_intrinsics.width, _intrinsics.height);
            out.frames[i] = std::move(frame);
            renders[i] = RenderResult{};
        });
    };

    if (_config.schedule == SparwSchedule::DependencyGraph)
        runWindowGraph(
            n, [&](int i) { renderRefs(i, i + 1); },
            [&](int i) { processFrames(i, i + 1); });
    else
        runWindowBatches(n, parallelThreadCount(), _config.schedule,
                         renderRefs, processFrames);
    return out;
}

SparwRealtimeRun
SparwPipeline::runRealtime(const std::vector<Pose> &trajectory,
                           const SparwRealtimeConfig &rt) const
{
    SparwRealtimeRun out;
    const int n = static_cast<int>(trajectory.size());
    const int window = std::max(1, _config.window);
    if (n == 0)
        return out;
    const int numWindows = (n + window - 1) / window;

    // Reference poses exactly as run() resolves them — an unlimited
    // budget must reproduce run()'s frames bit for bit.
    std::vector<Camera> refCams(numWindows);
    std::vector<SparwReference> refMeta(numWindows);
    for (int wi = 0; wi < numWindows; ++wi) {
        const int i = wi * window;
        Pose refPose;
        bool onTraj = false;
        if (i >= 2) {
            refPose = extrapolateReferencePose(trajectory[i - 2],
                                               trajectory[i - 1],
                                               _config.dtSeconds, window);
        } else {
            refPose = trajectory[0];
            onTraj = true;
        }
        refCams[wi] = cameraAt(refPose);
        refMeta[wi] = SparwReference{refPose, StageWork{}, onTraj};
    }

    const Camera low =
        downsampledCamera(_intrinsics, std::max(1, rt.fallbackFactor));

    using Clock = std::chrono::steady_clock;
    const Clock::time_point t0 = Clock::now();
    auto elapsedS = [t0] {
        return std::chrono::duration<double>(Clock::now() - t0).count();
    };
    const double budget = rt.frameBudgetS;
    auto deadlineOf = [budget](int frame) { return (frame + 1) * budget; };

    out.run.frames.resize(n);
    SparwDeadlineStats &dl = out.deadline;

    // One-window render-ahead: while window wi's frames are warped and
    // sparse-rendered, window wi+1's reference renders concurrently at
    // its *predicted* (extrapolated) pose. Two alternating groups +
    // render slots double-buffer the lookahead.
    TaskGroup groups[2];
    RenderResult renders[2];
    std::vector<char> refLive(numWindows, 0);

    auto startRef = [&](int wi) {
        refLive[wi] = 1;
        groups[wi & 1].run([this, &renders, &refCams, wi] {
            renders[wi & 1] = _model.render(refCams[wi]);
        });
    };

    if (elapsedS() < deadlineOf(0))
        startRef(0);

    for (int wi = 0; wi < numWindows; ++wi) {
        const int f0 = wi * window;
        const int f1 = std::min(f0 + window, n);

        // Decide on the next window's reference *before* processing
        // this window's frames (that ordering is the overlap). Skip it
        // when the next window's first-frame deadline has already
        // passed — a reference that cannot be ready in time is pure
        // wasted work; those frames take the fallback path instead.
        if (wi + 1 < numWindows &&
            elapsedS() < deadlineOf((wi + 1) * window))
            startRef(wi + 1);

        if (refLive[wi]) {
            groups[wi & 1].wait();
            RenderResult &ref = renders[wi & 1];
            const int refIndex =
                static_cast<int>(out.run.references.size());
            refMeta[wi].work = ref.work;
            out.run.references.push_back(refMeta[wi]);
            if (!refMeta[wi].onTrajectory)
                ++dl.predictedReferences;
            for (int i = f0; i < f1; ++i) {
                Camera tgtCam = cameraAt(trajectory[i]);
                WarpOutput w = warpFrame(ref.image, ref.depth,
                                         refCams[wi], tgtCam,
                                         &_model.occupancy(),
                                         _model.scene().background,
                                         _config.warp);
                SparwFrame frame;
                frame.warpStats = w.stats;
                frame.warpPoints = w.stats.pointsTransformed;
                frame.referenceIndex = refIndex;
                frame.sparseWork = _model.renderPixels(
                    tgtCam, w.needRender, w.image, w.depth);
                frame.image = std::move(w.image);
                frame.depth = std::move(w.depth);
                out.run.frames[i] = std::move(frame);
                if (elapsedS() > deadlineOf(i))
                    ++dl.deadlineMisses;
            }
            ref = RenderResult{};
        } else {
            for (int i = f0; i < f1; ++i) {
                Camera cam = low;
                cam.pose = trajectory[i];
                RenderResult r = _model.render(cam);
                SparwFrame frame;
                frame.referenceIndex =
                    static_cast<int>(out.run.references.size());
                frame.warpStats.totalPixels =
                    static_cast<std::uint64_t>(_intrinsics.width) *
                    _intrinsics.height;
                frame.image = r.image.upsampleBilinear(
                    _intrinsics.width, _intrinsics.height);
                frame.depth =
                    DepthMap(_intrinsics.width, _intrinsics.height);
                out.run.references.push_back(
                    SparwReference{trajectory[i], r.work, true});
                out.run.frames[i] = std::move(frame);
                ++dl.fallbackFrames;
                if (elapsedS() > deadlineOf(i))
                    ++dl.deadlineMisses;
            }
        }
    }
    dl.frames = n;
    dl.wallS = elapsedS();
    return out;
}

} // namespace cicero
