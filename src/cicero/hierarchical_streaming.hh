/**
 * @file
 * Fully-streaming rendering for *hierarchical* encodings — the
 * Sec. IV-A paragraph "Accommodating Hierarchical Data Encodings",
 * realized for the multiresolution hash grid:
 *
 *  - rays are grouped and features collected level by level;
 *  - levels stored densely are partitioned into MVoxel blocks and
 *    streamed from DRAM in address order, exactly once, with partial
 *    trilinear accumulation across block boundaries (as in the dense
 *    StreamingRenderer);
 *  - hashed levels have no spatial layout to stream, so the renderer
 *    reverts to the original (random-access) data flow for them — in
 *    Instant-NGP this happens from the revertLevel() onward, making
 *    "about half of the DRAM traffic non-streaming", which the paper
 *    notes is faithfully captured in its evaluation.
 *
 * The dense levels are assumed laid out block-major in DRAM (the same
 * reordering the dense grid uses); functional values are unaffected.
 */

#ifndef CICERO_CICERO_HIERARCHICAL_STREAMING_HH
#define CICERO_CICERO_HIERARCHICAL_STREAMING_HH

#include "nerf/hash_grid.hh"
#include "nerf/renderer.hh"

namespace cicero {

/**
 * Memory-centric renderer over a hash-grid (Instant-NGP-like) model.
 */
class HierarchicalStreamingRenderer
{
  public:
    /** Measured streaming statistics of the last render. */
    struct Stats
    {
        std::uint64_t samples = 0;
        std::uint64_t streamedBytes = 0;   //!< dense-level block loads
        std::uint64_t randomBytes = 0;     //!< hashed-level fetches
        std::uint64_t ritEntries = 0;      //!< (sample, level-block)
        std::uint64_t blocksLoaded = 0;
        int denseLevels = 0;
        int hashedLevels = 0;

        double
        nonStreamingFraction() const
        {
            double total = static_cast<double>(streamedBytes) +
                           static_cast<double>(randomBytes);
            return total > 0.0 ? randomBytes / total : 0.0;
        }
    };

    /**
     * @param model model whose encoding is a HashGridEncoding; throws
     *              std::invalid_argument otherwise.
     */
    explicit HierarchicalStreamingRenderer(const NerfModel &model);

    /**
     * Render a frame level-by-level in memory-centric order.
     * @param trace optional sink: one streaming access per dense-level
     *              block, individual accesses for hashed levels.
     */
    RenderResult render(const Camera &camera,
                        TraceSink *trace = nullptr) const;

    const Stats &lastStats() const { return _stats; }

  private:
    const NerfModel &_model;
    const HashGridEncoding &_grid;
    int _blockVerts;
    mutable Stats _stats;
};

} // namespace cicero

#endif // CICERO_CICERO_HIERARCHICAL_STREAMING_HH
