/**
 * @file
 * End-to-end performance/energy composition — the "cycle-level
 * simulator" of Sec. V, assembled from the component models:
 * GpuModel (local Xavier GPU and remote 2080 Ti), NpuModel (24x24
 * systolic array), GatheringUnitModel (the GU), and the DRAM/energy
 * models.
 *
 * It prices a *displayed frame* under the paper's four systems:
 *   Baseline  — every frame full NeRF: I+G on GPU, F on NPU;
 *   SPARW     — one reference per window N, warping + sparse NeRF for
 *               targets, same hardware as Baseline;
 *   SPARW+FS  — plus fully-streaming gathering (software data flow);
 *   CICERO    — plus the GU (conflict-free, streaming gather in HW);
 * under the two deployment scenarios of Sec. V:
 *   Local     — everything on-device (reference work shares the device,
 *               so its cost amortizes over the window but still adds);
 *   Remote    — reference frames rendered on a tethered workstation GPU
 *               and shipped over the 10 MB/s / 100 nJ/B wireless link;
 *               target-frame work stays local.
 */

#ifndef CICERO_CICERO_PIPELINE_HH
#define CICERO_CICERO_PIPELINE_HH

#include "accel/baseline_accels.hh"
#include "accel/gathering_unit.hh"
#include "accel/gpu_model.hh"
#include "accel/npu_model.hh"
#include "memory/energy_model.hh"
#include "nerf/encoding.hh"
#include "nerf/workload.hh"

namespace cicero {

/** The four systems of Fig. 19. */
enum class SystemVariant
{
    Baseline,
    Sparw,
    SparwFs,
    Cicero,
};

const char *variantName(SystemVariant variant);

/**
 * Everything the pricer needs to know about a (model, scene, window)
 * workload; measured once by the benches from functional runs.
 */
struct WorkloadInputs
{
    // Full-frame NeRF rendering (a reference frame).
    StageWork fullFrame;
    GatherProfile gatherProfile;  //!< measured cache/streaming behaviour
    double bankConflictRate = 0.5; //!< measured feature-major conflicts
    StreamPlan fullStreamPlan;    //!< FS footprint of a full frame
    std::uint32_t vertexBytes = 18;

    // Per displayed (target) frame under SPARW, averaged over a run.
    StageWork sparsePerFrame;     //!< sparse NeRF work (Eq. 4)
    StreamPlan sparseStreamPlan;  //!< FS footprint of the sparse work
    std::uint64_t warpPointsPerFrame = 0;
    int window = 16;              //!< N target frames per reference

    std::uint64_t framePixels = 0; //!< for wireless transfer sizing
};

/** A priced displayed frame. */
struct FramePrice
{
    double timeMs = 0.0;
    double energyNj = 0.0; //!< device-side energy

    /** Attribution, for Fig. 18 / Fig. 21 style breakdowns. */
    double fullFrameMs = 0.0; //!< reference (full NeRF) share
    double sparseMs = 0.0;    //!< sparse NeRF share
    double warpMs = 0.0;      //!< warping + projection share
    double otherMs = 0.0;     //!< comm/misc share
    double dramEnergyNj = 0.0;
};

/**
 * The composed performance model.
 */
class PerformanceModel
{
  public:
    PerformanceModel(const GpuConfig &localGpu = GpuConfig{},
                     const NpuConfig &npu = NpuConfig{},
                     const GatheringUnitConfig &gu = GatheringUnitConfig{},
                     const GpuConfig &remoteGpu = GpuConfig::remote2080Ti(),
                     const EnergyConstants &energy = EnergyConstants{});

    /** Price one displayed frame in the local-rendering scenario. */
    FramePrice priceLocal(SystemVariant variant,
                          const WorkloadInputs &inputs) const;

    /** Price one displayed frame in the remote-rendering scenario. */
    FramePrice priceRemote(SystemVariant variant,
                           const WorkloadInputs &inputs) const;

    /**
     * Cost of one *full NeRF frame* under a variant's gather engine —
     * the unit Figs. 17/24 compare (no SPARW amortization).
     */
    FramePrice priceFullFrame(SystemVariant variant,
                              const WorkloadInputs &inputs) const;

    /** Gather-stage-only comparison for Fig. 20 (GPU vs GU). */
    struct GatherPrice
    {
        double gpuMs = 0.0, gpuEnergyNj = 0.0;
        double guMs = 0.0, guEnergyNj = 0.0;
    };
    GatherPrice priceGatherOnly(const WorkloadInputs &inputs) const;

    const GpuModel &localGpu() const { return _localGpu; }
    const GpuModel &remoteGpu() const { return _remoteGpu; }
    const NpuModel &npu() const { return _npu; }
    const GatheringUnitModel &gu() const { return _gu; }
    const EnergyConstants &energy() const { return _energy; }

  private:
    /** Time+energy of a NeRF render (full or sparse) on engines chosen
     *  by @p variant; @p plan used by FS/Cicero variants. */
    FramePrice nerfCost(SystemVariant variant, const StageWork &work,
                        const GatherProfile &profile,
                        const StreamPlan &plan,
                        std::uint32_t vertexBytes) const;

    /** Warping cost (Eqs. 1-3 + depth test) on the local GPU. */
    FramePrice warpCost(std::uint64_t points) const;

    GpuModel _localGpu;
    NpuModel _npu;
    GatheringUnitModel _gu;
    GpuModel _remoteGpu;
    EnergyConstants _energy;
};

} // namespace cicero

#endif // CICERO_CICERO_PIPELINE_HH
