/**
 * @file
 * Workload probing: runs the functional model in trace mode, feeds the
 * memory models, and assembles the WorkloadInputs the PerformanceModel
 * prices. This is the bridge between the functional half of the repo
 * (scene/nerf/cicero algorithms) and the timing half (memory/accel).
 *
 * Traces are collected at a reduced `traceRes` and linearly scaled to
 * the paper's 800x800 target: per-sample work scales with ray count,
 * while the set of *touched MVoxels* saturates (denser rays re-touch
 * the same occupied blocks), so streamed bytes are left unscaled.
 */

#ifndef CICERO_CICERO_PROBE_HH
#define CICERO_CICERO_PROBE_HH

#include "cicero/pipeline.hh"
#include "cicero/sparw.hh"
#include "nerf/renderer.hh"

namespace cicero {

/** Probe configuration. */
struct ProbeOptions
{
    int traceRes = 64;           //!< trace image resolution (square)
    int targetRes = 800;         //!< resolution results are scaled to
    std::uint32_t interleaveWays = 32; //!< GPU warp interleaving model
    int window = 16;             //!< SPARW window for sparse stats
    float fovYDeg = 40.0f;
};

/**
 * Measure the full-frame workload of @p model at @p pose: stage work,
 * gather profile (cache miss + streaming fraction), feature-major bank
 * conflict rate, and the FS streaming plan — all scaled to targetRes.
 */
WorkloadInputs probeFullFrame(const NerfModel &model, const Pose &pose,
                              const ProbeOptions &options = {});

/**
 * Add SPARW per-target-frame statistics to @p inputs: sparse NeRF work,
 * sparse streaming plan and warp point counts, measured by warping
 * between @p refPose and @p tgtPose.
 */
void probeSparseFrame(WorkloadInputs &inputs, const NerfModel &model,
                      const Pose &refPose, const Pose &tgtPose,
                      const ProbeOptions &options = {});

/**
 * Convenience: probe full + sparse inputs from two consecutive
 * trajectory poses.
 */
WorkloadInputs probeWorkload(const NerfModel &model,
                             const std::vector<Pose> &trajectory,
                             const ProbeOptions &options = {});

} // namespace cicero

#endif // CICERO_CICERO_PROBE_HH
