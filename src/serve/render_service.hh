/**
 * @file
 * The multi-session render service: a persistent in-process server
 * admitting many concurrent client sessions and running them over the
 * work-stealing pool.
 *
 * Execution model (the paraLLEl-RDP idiom, adapted): a session's
 * frames are scheduler *tasks* submitted up-front as a dependency
 * chain on the session's own TaskGroup — frame f waits on frame
 * f - window, so each session keeps at most `inflightWindow` frames
 * in flight (the client-side latency/throughput knob). Each frame is
 * itself fanned out into contiguous *ray-block* tasks (row ranges
 * rendered via NerfModel::renderServeRows) plus one finalize task that
 * runs after all of the frame's blocks and carries the frame's
 * bookkeeping; the finalize task is what the next window frame chains
 * on, so window pipelining is preserved. Parallelism therefore comes
 * from two axes: many sessions' frames running concurrently AND one
 * frame's ray blocks spreading across workers — the intra-frame
 * fan-out is what feeds the MLP decode fusion queue
 * (FusedDecodeQueue) dense batches even at 1-2 live sessions, since
 * same-frame blocks fuse into one kernel pass just like cross-session
 * blocks do. `intraFrameFanOut` / `fanOutBlockRows` control the
 * decomposition (off = one block per frame, the PR 7 behavior).
 *
 * Fairness: admission control caps concurrent sessions (admit()
 * throws, tryAdmit() declines); the in-flight window bounds any one
 * session's task-queue share; and the fused decode queue serves
 * sessions by deficit round-robin — weighted by the session's
 * `qosWeight`, so a premium session earns a larger share of each
 * fused batch — so an elephant session cannot starve mice of decode
 * bandwidth.
 *
 * Correctness contract: a session's frames are bit-identical to the
 * same (scene, model, trajectory, resolution) rendered solo —
 * NerfModel::renderServeRows reproduces render()'s pixel walk exactly
 * on disjoint row ranges (per-ray decode blocking is internal to each
 * ray, so the row decomposition cannot change bits) and fused decode
 * preserves per-block bits (see FusedDecodeQueue). Fusion reorders
 * whole ray blocks only — across sessions or across a frame's blocks
 * — never samples within a block.
 *
 * Failure semantics (see README "Failure semantics & fault
 * injection"): a transiently failing frame is retried with bounded
 * exponential backoff; a session whose frames keep failing past the
 * retry budget is *quarantined* — its remaining frames short-circuit
 * (skipped, counted) while every other session's output stays
 * bit-identical to its solo render — and surfaces a typed error at
 * wait(). Per-frame deadlines mark (never corrupt) late frames, and
 * under load pressure admissions degrade to the downsampled path
 * (half resolution) instead of growing the queue — the DS-k shape of
 * the paper applied to admission control.
 */

#ifndef CICERO_SERVE_RENDER_SERVICE_HH
#define CICERO_SERVE_RENDER_SERVICE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/geometry.hh"
#include "serve/model_cache.hh"

namespace cicero {

/**
 * Thrown when a frame is requested from a session the service
 * quarantined after repeated frame failures. Carries the session id;
 * the session's *first real* error is what wait() rethrows.
 */
class SessionQuarantinedError : public std::runtime_error
{
  public:
    explicit SessionQuarantinedError(int sessionId)
        : std::runtime_error("RenderService: session " +
                             std::to_string(sessionId) +
                             " is quarantined after repeated frame "
                             "failures"),
          _sessionId(sessionId)
    {
    }

    int sessionId() const { return _sessionId; }

  private:
    int _sessionId;
};

/** Thrown by waitFrameFor() when the timeout elapses first. */
class WaitTimeoutError : public std::runtime_error
{
  public:
    WaitTimeoutError(int sessionId, int frameIndex, double timeoutS)
        : std::runtime_error(
              "RenderService: frame " + std::to_string(frameIndex) +
              " of session " + std::to_string(sessionId) +
              " not done within " + std::to_string(timeoutS) + " s"),
          _sessionId(sessionId), _frameIndex(frameIndex)
    {
    }

    int sessionId() const { return _sessionId; }
    int frameIndex() const { return _frameIndex; }

  private:
    int _sessionId;
    int _frameIndex;
};

/** One client session's request: model + trajectory + schedule. */
struct ServeSessionConfig
{
    ModelKey model;
    int width = 64;
    int height = 64;
    std::vector<Pose> trajectory; //!< one frame rendered per pose
    /**
     * Frames this session may have in flight at once; 0 takes the
     * service default. 1 = strictly serial frames (lowest latency
     * variance), larger = deeper pipelining (higher throughput).
     */
    int inflightWindow = 0;
    /**
     * Per-frame render deadline in seconds; 0 takes the service
     * default (which defaults to "none"). A frame that renders past
     * its deadline is *marked* (ServeFrame::deadlineMiss, the
     * deadlineMisses counter) but never altered — deadlines inform
     * the client, they do not corrupt output.
     */
    double frameDeadlineS = 0.0;
    /** Retry budget per frame; < 0 takes the service default. */
    int maxFrameRetries = -1;
    /**
     * QoS weight for the fused decode queue's deficit round-robin
     * (clamped to >= 1). A weight-w session earns w quanta of decode
     * credit per scheduling round, so its ray blocks claim a larger
     * share of each fused batch under contention. Shapes scheduling
     * only — output bits are weight-independent.
     */
    int qosWeight = 1;
};

/** Service-wide configuration. */
struct RenderServiceConfig
{
    int maxSessions = 64;          //!< admission-control cap
    bool fuseDecode = true;        //!< route decode through the fusion queue
    int fusionQuantumSamples = 128; //!< DRR quantum (FusedDecodeQueue)
    int defaultInflightWindow = 2;
    /**
     * Intra-frame ray-block fan-out: split each served frame into
     * row-range tasks that render concurrently and feed the fusion
     * queue dense same-frame batches. Off = one block per frame (a
     * frame occupies a single worker, parallelism comes only from
     * concurrent frames/sessions).
     */
    bool intraFrameFanOut = true;
    /**
     * Rows per ray-block task when fan-out is on; 0 = auto (size the
     * frame into ~2x the pool's thread count blocks). Smaller blocks
     * = denser fusion and better load balance, more scheduling
     * overhead. Ignored with fan-out off.
     */
    int fanOutBlockRows = 0;

    // --- graceful degradation ---
    /** Retry budget for a transiently failing frame. */
    int maxFrameRetries = 2;
    /** Base retry backoff in seconds (doubles per retry). */
    double retryBackoffS = 0.0005;
    /**
     * Frames that may fail (after retries) before the session is
     * quarantined: its remaining frames are skipped instead of
     * rendered, isolating the fault from healthy sessions.
     */
    int quarantineThreshold = 2;
    /** Default per-frame deadline in seconds (0 = none). */
    double defaultFrameDeadlineS = 0.0;
    /**
     * Overload shedding: when active sessions reach
     * shedThreshold x maxSessions, new admissions are downgraded to
     * the downsampled path (half resolution, floor 8) instead of
     * rendered at full cost — predictable degradation, the DS-k
     * fallback applied at admission time.
     */
    bool shedOnOverload = true;
    double shedThreshold = 0.75;
};

/** One completed frame. */
struct ServeFrame
{
    Image image;
    DepthMap depth;
    StageWork work;
    /**
     * Seconds from the frame becoming *eligible* (admission for the
     * first window's frames, completion of frame f - window after) to
     * its completion — the latency a pipelined client observes.
     */
    double latencyS = 0.0;
    double renderS = 0.0; //!< seconds spent rendering on the worker
    int retries = 0;      //!< failed attempts before this frame succeeded
    bool deadlineMiss = false; //!< rendered past its deadline
};

/** Everything a finished session produced. */
struct ServeSessionResult
{
    int sessionId = -1;
    std::vector<ServeFrame> frames;
    /** True when overload shedding downsampled this session. */
    bool downsampled = false;
};

/** Service traffic counters. */
struct ServiceCounters
{
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t framesCompleted = 0;

    // --- robustness ---
    /**
     * Retry rounds across completed frames. With fan-out a frame's
     * blocks retry independently; the frame contributes the *max*
     * retry count over its blocks (the rounds the frame needed), so
     * the counter is decomposition-independent for deterministic
     * faults.
     */
    std::uint64_t frameRetries = 0;
    std::uint64_t framesFailed = 0;   //!< frames that exhausted their retries
    std::uint64_t framesSkipped = 0;  //!< frames short-circuited by quarantine
    std::uint64_t quarantinedSessions = 0;
    std::uint64_t shedAdmissions = 0; //!< admissions downgraded to downsampled
    std::uint64_t deadlineMisses = 0;

    // --- fused-batch density (derived from the model cache's fusion
    // totals at counters() time; how full the decode kernel ran) ---
    std::uint64_t decodeKernelPasses = 0; //!< fused-queue kernel passes
    double avgBatchSamples = 0.0; //!< samples per kernel pass, mean
    double avgBatchBlocks = 0.0;  //!< ray blocks per kernel pass, mean
    std::uint64_t maxBatchSamples = 0; //!< widest pass (samples)
    std::uint64_t maxBatchBlocks = 0;  //!< widest pass (blocks)
};

/**
 * The render service. Thread-safe: sessions may be admitted, polled
 * and collected from any thread.
 */
class RenderService
{
  public:
    explicit RenderService(const RenderServiceConfig &config = {});
    ~RenderService();

    RenderService(const RenderService &) = delete;
    RenderService &operator=(const RenderService &) = delete;

    /**
     * Admit a session and submit its whole frame chain; returns its
     * session id immediately (frames render asynchronously). Throws
     * std::runtime_error when the service is at maxSessions or the
     * config is invalid (empty trajectory, non-positive resolution).
     */
    int admit(const ServeSessionConfig &config);

    /** As admit(), but returns -1 instead of throwing when full. */
    int tryAdmit(const ServeSessionConfig &config);

    /**
     * Block until session @p sessionId's frame @p frameIndex is done
     * and return it (copy; the session keeps its frames until
     * wait()). Rethrows a frame task's exception;
     * SessionQuarantinedError for a frame skipped by quarantine.
     */
    ServeFrame waitFrame(int sessionId, int frameIndex);

    /**
     * As waitFrame(), but gives up after @p timeoutS seconds.
     * @throws WaitTimeoutError when the frame is not done in time (the
     *         frame keeps rendering; the call can be retried).
     */
    ServeFrame waitFrameFor(int sessionId, int frameIndex,
                            double timeoutS);

    /** True when @p sessionId has been quarantined. */
    bool sessionQuarantined(int sessionId) const;

    /**
     * Block until every frame of @p sessionId is done and collect the
     * session's results, retiring the session. Each session id can be
     * waited exactly once; unknown ids throw.
     */
    ServeSessionResult wait(int sessionId);

    /** Sessions admitted and not yet finished rendering. */
    int activeSessions() const;

    ServiceCounters counters() const;

    /** The shared-model cache (stats, live entries, fusion totals). */
    SharedModelCache &cache() { return _cache; }

    const RenderServiceConfig &config() const { return _config; }

  private:
    struct Session;

    std::shared_ptr<Session> findSession(int sessionId) const;
    int admitImpl(const ServeSessionConfig &config, bool throwOnFull);
    void setupSession(const std::shared_ptr<Session> &s,
                      const ServeSessionConfig &config);

    RenderServiceConfig _config;
    SharedModelCache _cache;

    mutable std::mutex _mu;
    std::map<int, std::shared_ptr<Session>> _sessions;
    int _nextId = 0;
    int _active = 0;
    ServiceCounters _counters;
};

} // namespace cicero

#endif // CICERO_SERVE_RENDER_SERVICE_HH
