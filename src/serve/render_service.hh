/**
 * @file
 * The multi-session render service: a persistent in-process server
 * admitting many concurrent client sessions and running them over the
 * work-stealing pool.
 *
 * Execution model (the paraLLEl-RDP idiom, adapted): a session's
 * frames are scheduler *tasks*, one per frame, submitted up-front as a
 * dependency chain on the session's own TaskGroup — frame f waits on
 * frame f - window, so each session keeps at most `inflightWindow`
 * frames in flight (the client-side latency/throughput knob).
 * Parallelism comes from many sessions' frame tasks running on pool
 * workers simultaneously, NOT from intra-frame fan-out
 * (NerfModel::renderServe walks its pixels serially on its worker);
 * cross-session MLP decode fusion (FusedDecodeQueue) then merges those
 * concurrent frames' ray blocks into shared kernel batches.
 *
 * Fairness: admission control caps concurrent sessions (admit()
 * throws, tryAdmit() declines); the in-flight window bounds any one
 * session's task-queue share; and the fused decode queue serves
 * sessions by deficit round-robin, so an elephant session cannot
 * starve mice of decode bandwidth.
 *
 * Correctness contract: a session's frames are bit-identical to the
 * same (scene, model, trajectory, resolution) rendered solo —
 * NerfModel::renderServe reproduces render()'s pixel walk exactly and
 * fused decode preserves per-block bits (see FusedDecodeQueue).
 * Fusion reorders work across sessions only, never within a ray
 * block.
 */

#ifndef CICERO_SERVE_RENDER_SERVICE_HH
#define CICERO_SERVE_RENDER_SERVICE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/geometry.hh"
#include "serve/model_cache.hh"

namespace cicero {

/** One client session's request: model + trajectory + schedule. */
struct ServeSessionConfig
{
    ModelKey model;
    int width = 64;
    int height = 64;
    std::vector<Pose> trajectory; //!< one frame rendered per pose
    /**
     * Frames this session may have in flight at once; 0 takes the
     * service default. 1 = strictly serial frames (lowest latency
     * variance), larger = deeper pipelining (higher throughput).
     */
    int inflightWindow = 0;
};

/** Service-wide configuration. */
struct RenderServiceConfig
{
    int maxSessions = 64;          //!< admission-control cap
    bool fuseDecode = true;        //!< route decode through the fusion queue
    int fusionQuantumSamples = 128; //!< DRR quantum (FusedDecodeQueue)
    int defaultInflightWindow = 2;
};

/** One completed frame. */
struct ServeFrame
{
    Image image;
    DepthMap depth;
    StageWork work;
    /**
     * Seconds from the frame becoming *eligible* (admission for the
     * first window's frames, completion of frame f - window after) to
     * its completion — the latency a pipelined client observes.
     */
    double latencyS = 0.0;
    double renderS = 0.0; //!< seconds spent rendering on the worker
};

/** Everything a finished session produced. */
struct ServeSessionResult
{
    int sessionId = -1;
    std::vector<ServeFrame> frames;
};

/** Service traffic counters. */
struct ServiceCounters
{
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t framesCompleted = 0;
};

/**
 * The render service. Thread-safe: sessions may be admitted, polled
 * and collected from any thread.
 */
class RenderService
{
  public:
    explicit RenderService(const RenderServiceConfig &config = {});
    ~RenderService();

    RenderService(const RenderService &) = delete;
    RenderService &operator=(const RenderService &) = delete;

    /**
     * Admit a session and submit its whole frame chain; returns its
     * session id immediately (frames render asynchronously). Throws
     * std::runtime_error when the service is at maxSessions or the
     * config is invalid (empty trajectory, non-positive resolution).
     */
    int admit(const ServeSessionConfig &config);

    /** As admit(), but returns -1 instead of throwing when full. */
    int tryAdmit(const ServeSessionConfig &config);

    /**
     * Block until session @p sessionId's frame @p frameIndex is done
     * and return it (copy; the session keeps its frames until
     * wait()). Rethrows a frame task's exception.
     */
    ServeFrame waitFrame(int sessionId, int frameIndex);

    /**
     * Block until every frame of @p sessionId is done and collect the
     * session's results, retiring the session. Each session id can be
     * waited exactly once; unknown ids throw.
     */
    ServeSessionResult wait(int sessionId);

    /** Sessions admitted and not yet finished rendering. */
    int activeSessions() const;

    ServiceCounters counters() const;

    /** The shared-model cache (stats, live entries, fusion totals). */
    SharedModelCache &cache() { return _cache; }

    const RenderServiceConfig &config() const { return _config; }

  private:
    struct Session;

    std::shared_ptr<Session> findSession(int sessionId) const;
    int admitImpl(const ServeSessionConfig &config, bool throwOnFull);
    void setupSession(const std::shared_ptr<Session> &s,
                      const ServeSessionConfig &config);

    RenderServiceConfig _config;
    SharedModelCache _cache;

    mutable std::mutex _mu;
    std::map<int, std::shared_ptr<Session>> _sessions;
    int _nextId = 0;
    int _active = 0;
    ServiceCounters _counters;
};

} // namespace cicero

#endif // CICERO_SERVE_RENDER_SERVICE_HH
