/**
 * @file
 * Shared-model cache for the render service.
 *
 * N sessions of the same scene/model configuration share ONE baked
 * NerfModel instance (the encoding is immutable after bake; every
 * render entry point is const) and one FusedDecodeQueue, so resident
 * footprint and fused-decode opportunity both scale with *distinct*
 * models, not with sessions. Entries are refcounted through move-only
 * Lease handles: the first acquire of a key builds and bakes the
 * model (expensive — seconds at Full preset), later acquires bump the
 * refcount, and the last release evicts the entry. fp16 and fp32
 * variants of the same model are distinct keys — quantization changes
 * stored bits, so sessions must opt into one deliberately.
 */

#ifndef CICERO_SERVE_MODEL_CACHE_HH
#define CICERO_SERVE_MODEL_CACHE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "nerf/models.hh"
#include "serve/fused_decode_queue.hh"

namespace cicero {

/** Everything that identifies one shareable baked model. */
struct ModelKey
{
    std::string scene = "lego";
    ModelKind kind = ModelKind::DirectVoxGO;
    ModelPreset preset = ModelPreset::Fast;
    GridLayout gridLayout = GridLayout::Linear;
    bool fp16 = false; //!< fp16 feature + weight storage variant
    std::uint64_t seed = 7;

    friend bool operator<(const ModelKey &a, const ModelKey &b)
    {
        auto tup = [](const ModelKey &k) {
            return std::make_tuple(k.scene, static_cast<int>(k.kind),
                                   static_cast<int>(k.preset),
                                   static_cast<int>(k.gridLayout),
                                   k.fp16, k.seed);
        };
        return tup(a) < tup(b);
    }
    friend bool operator==(const ModelKey &a, const ModelKey &b)
    {
        return !(a < b) && !(b < a);
    }
};

/** Cache traffic counters. */
struct ModelCacheStats
{
    std::uint64_t hits = 0;      //!< acquires served by a live entry
    std::uint64_t misses = 0;    //!< acquires that built a model
    std::uint64_t evictions = 0; //!< entries destroyed on last release
};

/**
 * Refcounted build-on-miss cache of baked models. Thread-safe.
 */
class SharedModelCache
{
  public:
    SharedModelCache() = default;
    SharedModelCache(const SharedModelCache &) = delete;
    SharedModelCache &operator=(const SharedModelCache &) = delete;

    class Lease;

    /**
     * Acquire a lease on @p key's model, building (scene + bake +
     * optional fp16 quantization) on miss. The build runs outside the
     * cache lock keyed on a per-entry latch, so concurrent first
     * acquires of the same key build once and different keys build in
     * parallel.
     */
    Lease acquire(const ModelKey &key);

    ModelCacheStats stats() const;

    /** Number of currently resident models. */
    std::size_t liveEntries() const;

    /**
     * Fusion counters summed over live entries *and* entries already
     * evicted (their totals are folded into a retired accumulator at
     * eviction, so a finished session's fusion work stays visible).
     */
    FusionStats fusionStatsTotal() const;

    /**
     * RAII share of one cached model. Move-only; releasing the last
     * lease of a key evicts and destroys the model.
     */
    class Lease
    {
      public:
        Lease() = default;
        Lease(Lease &&o) noexcept : _cache(o._cache), _entry(o._entry)
        {
            o._cache = nullptr;
            o._entry = nullptr;
        }
        Lease &operator=(Lease &&o) noexcept
        {
            if (this != &o) {
                release();
                _cache = o._cache;
                _entry = o._entry;
                o._cache = nullptr;
                o._entry = nullptr;
            }
            return *this;
        }
        Lease(const Lease &) = delete;
        Lease &operator=(const Lease &) = delete;
        ~Lease() { release(); }

        explicit operator bool() const { return _entry != nullptr; }

        const NerfModel &model() const;
        FusedDecodeQueue &fusion() const;
        const ModelKey &key() const;

        /** Drop the share now (idempotent). */
        void release();

      private:
        friend class SharedModelCache;
        struct Entry;
        Lease(SharedModelCache *cache, Entry *entry)
            : _cache(cache), _entry(entry)
        {
        }

        SharedModelCache *_cache = nullptr;
        Entry *_entry = nullptr;
    };

  private:
    friend class Lease;

    struct Lease::Entry
    {
        ModelKey key;
        int refs = 0;
        bool built = false;
        std::unique_ptr<NerfModel> model;
        std::unique_ptr<FusedDecodeQueue> fusion;
        std::mutex buildMu; //!< serializes the one-time build
    };
    using Entry = Lease::Entry;

    void releaseEntry(Entry *entry);

    mutable std::mutex _mu;
    std::map<ModelKey, std::unique_ptr<Entry>> _entries;
    ModelCacheStats _stats;
    FusionStats _retiredFusion;
};

} // namespace cicero

#endif // CICERO_SERVE_MODEL_CACHE_HH
