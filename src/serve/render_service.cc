#include "serve/render_service.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <stdexcept>
#include <thread>

#include "common/fault.hh"
#include "common/parallel.hh"

namespace cicero {

namespace {

using Clock = std::chrono::steady_clock;

double
seconds(Clock::duration d)
{
    return std::chrono::duration<double>(d).count();
}

} // namespace

/**
 * One admitted session: its config, model lease, frame chain and
 * completion state. Owned by a shared_ptr held by the service map and
 * by waiters; frame tasks deliberately capture only a *raw* pointer —
 * a capture with a destructor could otherwise drop the session (and
 * its model lease) on a pool worker racing service teardown. Lifetime
 * is instead guaranteed structurally: the session leaves the map only
 * after its TaskGroup fully drained (RenderService::wait and the
 * service destructor both drain before releasing their reference), so
 * destruction always happens on the collecting thread while the
 * shared cache is still alive.
 */
struct RenderService::Session
{
    int id = -1;
    ServeSessionConfig cfg;
    int window = 1;
    SharedModelCache::Lease lease;
    std::unique_ptr<FusedDecodeQueue::SessionSink> sink;
    TaskGroup group;

    int maxRetries = 0;     //!< resolved per-frame retry budget
    double deadlineS = 0.0; //!< resolved per-frame deadline (0 = none)
    bool downsampled = false; //!< admission was shed to half resolution

    /**
     * Row ranges [first, second) of the frame's ray-block tasks —
     * identical for every frame of the session (one entry spanning
     * the whole frame when fan-out is off).
     */
    std::vector<std::pair<int, int>> blocks;

    /**
     * Per-frame aggregation across the frame's ray-block tasks,
     * folded into the ServeFrame by the finalize task. Guarded by mu
     * while blocks run; the finalize task additionally sees all block
     * writes through its scheduler dependency edges.
     */
    struct FrameState
    {
        std::exception_ptr err; //!< first permanently failing block
        bool anySkip = false;   //!< a block observed quarantine
        bool started = false;   //!< startAt is valid
        Clock::time_point startAt; //!< first block's render start
        int retriesMax = 0; //!< max retry rounds over the frame's blocks
    };

    std::mutex mu;
    std::condition_variable cv;
    std::vector<ServeFrame> frames;
    std::vector<FrameState> fstate;
    std::vector<char> done;
    std::vector<char> failed;
    std::vector<char> skipped; //!< failed because quarantine skipped it
    std::vector<Clock::time_point> eligibleAt;
    int completed = 0;
    int failedFrames = 0;    //!< frames that exhausted their retries
    bool quarantined = false;
    bool finished = false;
    std::exception_ptr error;
};

RenderService::RenderService(const RenderServiceConfig &config)
    : _config(config)
{
}

RenderService::~RenderService()
{
    // Drain every session still rendering before members go away:
    // frame tasks touch the service counters and the shared cache.
    // Draining the group (not just waiting on `finished`) is what
    // makes that safe — it returns only after every task body has
    // fully retired, including the post-notify bookkeeping.
    std::vector<std::shared_ptr<Session>> live;
    {
        std::lock_guard<std::mutex> lock(_mu);
        for (auto &kv : _sessions)
            live.push_back(kv.second);
    }
    for (auto &s : live)
        s->group.wait();
}

int
RenderService::admit(const ServeSessionConfig &config)
{
    return admitImpl(config, /*throwOnFull=*/true);
}

int
RenderService::tryAdmit(const ServeSessionConfig &config)
{
    return admitImpl(config, /*throwOnFull=*/false);
}

int
RenderService::admitImpl(const ServeSessionConfig &config,
                         bool throwOnFull)
{
    faultCheck(FaultSite::SessionAdmit);

    if (config.trajectory.empty() || config.width <= 0 ||
        config.height <= 0)
        throw std::runtime_error("RenderService: invalid session config");

    auto s = std::make_shared<Session>();
    bool shed = false;
    {
        std::lock_guard<std::mutex> lock(_mu);
        if (_active >= _config.maxSessions) {
            ++_counters.rejected;
            if (throwOnFull)
                throw std::runtime_error(
                    "RenderService: at session capacity");
            return -1;
        }
        // Overload shedding: past the pressure threshold, admit at
        // half resolution instead of full cost. Decided (and fixed) at
        // admission so a session's frames stay mutually consistent —
        // the service never changes resolution mid-session.
        if (_config.shedOnOverload) {
            int pressure = std::max(
                1, static_cast<int>(std::ceil(_config.shedThreshold *
                                              _config.maxSessions)));
            shed = _active >= pressure;
        }
        if (shed)
            ++_counters.shedAdmissions;
        s->id = _nextId++;
        ++_active;
        ++_counters.admitted;
        _sessions.emplace(s->id, s);
    }

    ServeSessionConfig effective = config;
    if (shed) {
        effective.width = std::max(8, config.width / 2);
        effective.height = std::max(8, config.height / 2);
        s->downsampled = true;
    }

    // Heavy setup outside the service lock: model build (on cache
    // miss) and the whole frame-chain submission. On failure (say an
    // unknown scene) the reserved slot must be handed back.
    try {
        setupSession(s, effective);
    } catch (...) {
        std::lock_guard<std::mutex> lock(_mu);
        _sessions.erase(s->id);
        --_active;
        throw;
    }
    return s->id;
}

void
RenderService::setupSession(const std::shared_ptr<Session> &s,
                            const ServeSessionConfig &config)
{
    s->cfg = config;
    s->lease = _cache.acquire(config.model);
    if (_config.fuseDecode) {
        s->sink = std::make_unique<FusedDecodeQueue::SessionSink>(
            &s->lease.fusion(), s->id);
        // QoS: a premium session's ray blocks earn a larger share of
        // each fused batch (weighted deficit round-robin).
        s->lease.fusion().setSessionWeight(
            s->id, std::max(1, config.qosWeight));
    }

    const int n = static_cast<int>(config.trajectory.size());
    int window = config.inflightWindow > 0 ? config.inflightWindow
                                           : _config.defaultInflightWindow;
    window = std::min(std::max(window, 1), n);
    s->window = window;
    s->maxRetries = config.maxFrameRetries >= 0
                        ? config.maxFrameRetries
                        : std::max(0, _config.maxFrameRetries);
    s->deadlineS = config.frameDeadlineS > 0
                       ? config.frameDeadlineS
                       : _config.defaultFrameDeadlineS;
    s->frames.resize(n);
    s->fstate.resize(n);
    s->done.assign(n, 0);
    s->failed.assign(n, 0);
    s->skipped.assign(n, 0);
    s->eligibleAt.resize(n);

    // Intra-frame ray-block decomposition: contiguous row ranges,
    // identical for every frame. Auto-sizing targets ~2x the pool's
    // thread count blocks per frame — enough slack for load balancing
    // and for same-frame blocks to meet in the fusion queue, without
    // drowning the scheduler in tiny tasks. Fan-out off = one block
    // spanning the frame (the whole frame renders on one worker).
    {
        const int H = config.height;
        int rowsPer = H;
        if (_config.intraFrameFanOut) {
            if (_config.fanOutBlockRows > 0) {
                rowsPer = std::min(_config.fanOutBlockRows, H);
            } else {
                const int targetTasks =
                    std::max(1, 2 * parallelThreadCount());
                rowsPer = std::max(1, (H + targetTasks - 1) / targetTasks);
            }
        }
        s->blocks.clear();
        for (int r0 = 0; r0 < H; r0 += rowsPer)
            s->blocks.emplace_back(r0, std::min(H, r0 + rowsPer));
    }

    const Clock::time_point admitted = Clock::now();
    for (int f = 0; f < window; ++f)
        s->eligibleAt[f] = admitted;

    // Submit the whole graph from this thread (TaskGroup is
    // single-submitter): frame f is its ray-block tasks plus one
    // finalize task that runs after all of them — the finalize handle
    // is what frame f + window chains on, so the per-session
    // in-flight window is preserved under fan-out. The first
    // `window` frames' blocks are immediately runnable. On a
    // one-thread pool runnable tasks execute inline right here in
    // submission order (blocks, then finalize, frame by frame), so
    // admit() of a later session sees earlier sessions already done;
    // with workers one frame's blocks spread across the pool and
    // their decode submissions fuse in the queue. Lambdas capture the
    // session by raw pointer on purpose: the captures stay trivially
    // destructible, so a worker retiring a task cannot run the
    // session destructor (see the Session doc).
    std::vector<TaskHandle> frameDone(n);
    std::vector<TaskHandle> blockHandles;
    const int nBlocks = static_cast<int>(s->blocks.size());
    for (int f = 0; f < n; ++f) {
        blockHandles.clear();
        blockHandles.reserve(nBlocks);
        for (int b = 0; b < nBlocks; ++b) {
            const int r0 = s->blocks[b].first;
            const int r1 = s->blocks[b].second;
            auto task = [this, sp = s.get(), f, r0, r1] {
                Session *const s = sp;

                // Quarantine short-circuit: the render is skipped but
                // the frame still completes through its finalize task
                // — wait() blocks on `finished`, which only flips
                // inside task bodies, so a quarantined session drains
                // fast instead of deadlocking its waiter. The first
                // non-skipping block stamps the frame's render start
                // and allocates its output surfaces; afterwards
                // sibling blocks write disjoint rows lock-free (the
                // mutexed allocation check gives them a happens-before
                // on the buffers).
                bool skip;
                {
                    std::lock_guard<std::mutex> lock(s->mu);
                    skip = s->quarantined;
                    Session::FrameState &fs = s->fstate[f];
                    if (skip) {
                        fs.anySkip = true;
                    } else {
                        if (!fs.started) {
                            fs.started = true;
                            fs.startAt = Clock::now();
                        }
                        if (s->frames[f].image.pixelCount() == 0) {
                            s->frames[f].image =
                                Image(s->cfg.width, s->cfg.height);
                            s->frames[f].depth =
                                DepthMap(s->cfg.width, s->cfg.height);
                        }
                    }
                }
                if (skip)
                    return;

                // Bounded retry with exponential backoff: transient
                // failures (an injected fault window, a briefly
                // unavailable resource) cost latency, not the frame.
                // Re-rendering is safe — renderServeRows is
                // deterministic and rewrites only this block's rows,
                // so a retried block is bit-identical to an
                // untroubled one.
                StageWork work;
                std::exception_ptr err;
                int retries = 0;
                for (int attempt = 0;; ++attempt) {
                    err = nullptr;
                    try {
                        faultCheck(FaultSite::FrameRender, s->id);
                        Camera cam = Camera::fromFov(
                            s->cfg.width, s->cfg.height,
                            s->lease.model().scene().fovYDeg,
                            s->cfg.trajectory[f]);
                        work = s->lease.model().renderServeRows(
                            cam, r0, r1, s->frames[f].image,
                            s->frames[f].depth, s->sink.get());
                        break;
                    } catch (...) {
                        err = std::current_exception();
                    }
                    if (attempt >= s->maxRetries)
                        break;
                    ++retries;
                    std::this_thread::sleep_for(
                        std::chrono::duration<double>(
                            _config.retryBackoffS *
                            static_cast<double>(1 << attempt)));
                }

                std::lock_guard<std::mutex> lock(s->mu);
                Session::FrameState &fs = s->fstate[f];
                // Frame retry accounting is the MAX over its blocks —
                // the retry *rounds* the frame needed — so the count
                // is independent of the block decomposition for
                // deterministic faults.
                fs.retriesMax = std::max(fs.retriesMax, retries);
                if (err) {
                    if (!fs.err)
                        fs.err = err;
                } else {
                    s->frames[f].work += work;
                }
            };
            blockHandles.push_back(
                f < window
                    ? s->group.run(task)
                    : s->group.runAfter({frameDone[f - window]}, task));
        }

        auto finalize = [this, sp = s.get(), f] {
            Session *const s = sp;
            const int nFrames = static_cast<int>(s->frames.size());
            const Clock::time_point t1 = Clock::now();

            bool skip;
            bool started;
            std::exception_ptr err;
            int retries;
            Clock::time_point startAt;
            {
                std::lock_guard<std::mutex> lock(s->mu);
                Session::FrameState &fs = s->fstate[f];
                skip = fs.anySkip;
                started = fs.started;
                err = fs.err;
                retries = fs.retriesMax;
                startAt = fs.startAt;
            }

            const double renderS =
                started ? seconds(t1 - startAt) : 0.0;
            bool deadlineMiss =
                !skip && !err &&
                ((s->deadlineS > 0 && renderS > s->deadlineS) ||
                 faultShouldFire(FaultSite::FrameDeadline, s->id));

            bool sessionDone = false;
            bool newlyQuarantined = false;
            {
                std::lock_guard<std::mutex> lock(s->mu);
                ServeFrame &frame = s->frames[f];
                frame.latencyS = seconds(t1 - s->eligibleAt[f]);
                frame.renderS = renderS;
                frame.retries = retries;
                frame.deadlineMiss = deadlineMiss;
                if (skip) {
                    // A skipped frame delivers no pixels, even when
                    // quarantine flipped mid-frame and some blocks
                    // had already rendered.
                    frame.image = Image();
                    frame.depth = DepthMap();
                    frame.work = StageWork{};
                }
                s->done[f] = 1;
                if (skip) {
                    s->failed[f] = 1;
                    s->skipped[f] = 1;
                } else if (err) {
                    s->failed[f] = 1;
                    if (!s->error)
                        s->error = err;
                    if (++s->failedFrames >= _config.quarantineThreshold &&
                        !s->quarantined) {
                        s->quarantined = true;
                        newlyQuarantined = true;
                    }
                }
                if (f + s->window < nFrames)
                    s->eligibleAt[f + s->window] = t1;
                if (++s->completed == nFrames) {
                    s->finished = true;
                    sessionDone = true;
                }
            }
            s->cv.notify_all();

            {
                std::lock_guard<std::mutex> lock(_mu);
                ++_counters.framesCompleted;
                _counters.frameRetries +=
                    static_cast<std::uint64_t>(retries);
                if (skip)
                    ++_counters.framesSkipped;
                else if (err)
                    ++_counters.framesFailed;
                if (deadlineMiss)
                    ++_counters.deadlineMisses;
                if (newlyQuarantined)
                    ++_counters.quarantinedSessions;
                if (sessionDone)
                    --_active;
            }
            if (sessionDone && s->sink)
                s->lease.fusion().releaseSession(s->id);
        };
        frameDone[f] = s->group.runAfter(blockHandles, finalize);
    }
}

std::shared_ptr<RenderService::Session>
RenderService::findSession(int sessionId) const
{
    std::lock_guard<std::mutex> lock(_mu);
    auto it = _sessions.find(sessionId);
    if (it == _sessions.end())
        throw std::runtime_error(
            "RenderService: unknown (or already collected) session id");
    return it->second;
}

ServeFrame
RenderService::waitFrame(int sessionId, int frameIndex)
{
    std::shared_ptr<Session> s = findSession(sessionId);
    if (frameIndex < 0 ||
        frameIndex >= static_cast<int>(s->frames.size()))
        throw std::runtime_error("RenderService: frame index out of range");

    std::unique_lock<std::mutex> lock(s->mu);
    s->cv.wait(lock, [&] { return s->done[frameIndex] != 0; });
    if (s->failed[frameIndex]) {
        if (s->skipped[frameIndex])
            throw SessionQuarantinedError(sessionId);
        std::rethrow_exception(s->error);
    }
    return s->frames[frameIndex];
}

ServeFrame
RenderService::waitFrameFor(int sessionId, int frameIndex,
                            double timeoutS)
{
    std::shared_ptr<Session> s = findSession(sessionId);
    if (frameIndex < 0 ||
        frameIndex >= static_cast<int>(s->frames.size()))
        throw std::runtime_error("RenderService: frame index out of range");

    std::unique_lock<std::mutex> lock(s->mu);
    bool done = s->cv.wait_for(
        lock, std::chrono::duration<double>(timeoutS),
        [&] { return s->done[frameIndex] != 0; });
    if (!done)
        throw WaitTimeoutError(sessionId, frameIndex, timeoutS);
    if (s->failed[frameIndex]) {
        if (s->skipped[frameIndex])
            throw SessionQuarantinedError(sessionId);
        std::rethrow_exception(s->error);
    }
    return s->frames[frameIndex];
}

bool
RenderService::sessionQuarantined(int sessionId) const
{
    std::shared_ptr<Session> s = findSession(sessionId);
    std::lock_guard<std::mutex> lock(s->mu);
    return s->quarantined;
}

ServeSessionResult
RenderService::wait(int sessionId)
{
    std::shared_ptr<Session> s;
    {
        std::lock_guard<std::mutex> lock(_mu);
        auto it = _sessions.find(sessionId);
        if (it == _sessions.end())
            throw std::runtime_error(
                "RenderService: unknown (or already collected) session id");
        s = it->second;
        _sessions.erase(it);
    }

    // Drain the session's group: `finished` flips inside the last
    // frame's task body, so the task (and its post-notify service
    // bookkeeping) may still be retiring on a worker — the group wait
    // returns only once nothing references the session anymore, making
    // it safe to destroy when our reference (the last) goes away.
    s->group.wait();

    ServeSessionResult out;
    out.sessionId = sessionId;
    out.downsampled = s->downsampled;
    {
        std::unique_lock<std::mutex> lock(s->mu);
        s->cv.wait(lock, [&] { return s->finished; });
        if (s->error)
            std::rethrow_exception(s->error);
        out.frames = std::move(s->frames);
    }
    return out;
}

int
RenderService::activeSessions() const
{
    std::lock_guard<std::mutex> lock(_mu);
    return _active;
}

ServiceCounters
RenderService::counters() const
{
    ServiceCounters out;
    {
        std::lock_guard<std::mutex> lock(_mu);
        out = _counters;
    }
    // Fused-batch density, derived from the model cache's fusion
    // totals (live + retired entries): how full the decode kernel ran.
    const FusionStats fusion = _cache.fusionStatsTotal();
    out.decodeKernelPasses = fusion.passes;
    if (fusion.passes > 0) {
        out.avgBatchSamples = static_cast<double>(fusion.samples) /
                              static_cast<double>(fusion.passes);
        out.avgBatchBlocks = static_cast<double>(fusion.blocks) /
                             static_cast<double>(fusion.passes);
    }
    out.maxBatchSamples = fusion.maxBatchSamples;
    out.maxBatchBlocks = fusion.maxBatchBlocks;
    return out;
}

} // namespace cicero
