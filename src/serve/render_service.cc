#include "serve/render_service.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <stdexcept>
#include <thread>

#include "common/fault.hh"
#include "common/parallel.hh"

namespace cicero {

namespace {

using Clock = std::chrono::steady_clock;

double
seconds(Clock::duration d)
{
    return std::chrono::duration<double>(d).count();
}

} // namespace

/**
 * One admitted session: its config, model lease, frame chain and
 * completion state. Owned by a shared_ptr held by the service map and
 * by waiters; frame tasks deliberately capture only a *raw* pointer —
 * a capture with a destructor could otherwise drop the session (and
 * its model lease) on a pool worker racing service teardown. Lifetime
 * is instead guaranteed structurally: the session leaves the map only
 * after its TaskGroup fully drained (RenderService::wait and the
 * service destructor both drain before releasing their reference), so
 * destruction always happens on the collecting thread while the
 * shared cache is still alive.
 */
struct RenderService::Session
{
    int id = -1;
    ServeSessionConfig cfg;
    int window = 1;
    SharedModelCache::Lease lease;
    std::unique_ptr<FusedDecodeQueue::SessionSink> sink;
    TaskGroup group;

    int maxRetries = 0;     //!< resolved per-frame retry budget
    double deadlineS = 0.0; //!< resolved per-frame deadline (0 = none)
    bool downsampled = false; //!< admission was shed to half resolution

    std::mutex mu;
    std::condition_variable cv;
    std::vector<ServeFrame> frames;
    std::vector<char> done;
    std::vector<char> failed;
    std::vector<char> skipped; //!< failed because quarantine skipped it
    std::vector<Clock::time_point> eligibleAt;
    int completed = 0;
    int failedFrames = 0;    //!< frames that exhausted their retries
    bool quarantined = false;
    bool finished = false;
    std::exception_ptr error;
};

RenderService::RenderService(const RenderServiceConfig &config)
    : _config(config)
{
}

RenderService::~RenderService()
{
    // Drain every session still rendering before members go away:
    // frame tasks touch the service counters and the shared cache.
    // Draining the group (not just waiting on `finished`) is what
    // makes that safe — it returns only after every task body has
    // fully retired, including the post-notify bookkeeping.
    std::vector<std::shared_ptr<Session>> live;
    {
        std::lock_guard<std::mutex> lock(_mu);
        for (auto &kv : _sessions)
            live.push_back(kv.second);
    }
    for (auto &s : live)
        s->group.wait();
}

int
RenderService::admit(const ServeSessionConfig &config)
{
    return admitImpl(config, /*throwOnFull=*/true);
}

int
RenderService::tryAdmit(const ServeSessionConfig &config)
{
    return admitImpl(config, /*throwOnFull=*/false);
}

int
RenderService::admitImpl(const ServeSessionConfig &config,
                         bool throwOnFull)
{
    faultCheck(FaultSite::SessionAdmit);

    if (config.trajectory.empty() || config.width <= 0 ||
        config.height <= 0)
        throw std::runtime_error("RenderService: invalid session config");

    auto s = std::make_shared<Session>();
    bool shed = false;
    {
        std::lock_guard<std::mutex> lock(_mu);
        if (_active >= _config.maxSessions) {
            ++_counters.rejected;
            if (throwOnFull)
                throw std::runtime_error(
                    "RenderService: at session capacity");
            return -1;
        }
        // Overload shedding: past the pressure threshold, admit at
        // half resolution instead of full cost. Decided (and fixed) at
        // admission so a session's frames stay mutually consistent —
        // the service never changes resolution mid-session.
        if (_config.shedOnOverload) {
            int pressure = std::max(
                1, static_cast<int>(std::ceil(_config.shedThreshold *
                                              _config.maxSessions)));
            shed = _active >= pressure;
        }
        if (shed)
            ++_counters.shedAdmissions;
        s->id = _nextId++;
        ++_active;
        ++_counters.admitted;
        _sessions.emplace(s->id, s);
    }

    ServeSessionConfig effective = config;
    if (shed) {
        effective.width = std::max(8, config.width / 2);
        effective.height = std::max(8, config.height / 2);
        s->downsampled = true;
    }

    // Heavy setup outside the service lock: model build (on cache
    // miss) and the whole frame-chain submission. On failure (say an
    // unknown scene) the reserved slot must be handed back.
    try {
        setupSession(s, effective);
    } catch (...) {
        std::lock_guard<std::mutex> lock(_mu);
        _sessions.erase(s->id);
        --_active;
        throw;
    }
    return s->id;
}

void
RenderService::setupSession(const std::shared_ptr<Session> &s,
                            const ServeSessionConfig &config)
{
    s->cfg = config;
    s->lease = _cache.acquire(config.model);
    if (_config.fuseDecode)
        s->sink = std::make_unique<FusedDecodeQueue::SessionSink>(
            &s->lease.fusion(), s->id);

    const int n = static_cast<int>(config.trajectory.size());
    int window = config.inflightWindow > 0 ? config.inflightWindow
                                           : _config.defaultInflightWindow;
    window = std::min(std::max(window, 1), n);
    s->window = window;
    s->maxRetries = config.maxFrameRetries >= 0
                        ? config.maxFrameRetries
                        : std::max(0, _config.maxFrameRetries);
    s->deadlineS = config.frameDeadlineS > 0
                       ? config.frameDeadlineS
                       : _config.defaultFrameDeadlineS;
    s->frames.resize(n);
    s->done.assign(n, 0);
    s->failed.assign(n, 0);
    s->skipped.assign(n, 0);
    s->eligibleAt.resize(n);

    const Clock::time_point admitted = Clock::now();
    for (int f = 0; f < window; ++f)
        s->eligibleAt[f] = admitted;

    // Submit the whole chain from this thread (TaskGroup is
    // single-submitter): the first `window` frames are immediately
    // runnable, frame f >= window stays dormant until frame
    // f - window completes — the per-session in-flight window. On a
    // one-thread pool runnable tasks execute inline right here, so
    // admit() of a later session sees earlier sessions already done;
    // with workers the chains of all admitted sessions interleave.
    // The lambda captures the session by raw pointer on purpose: the
    // captures stay trivially destructible, so a worker retiring the
    // task cannot run the session destructor (see the Session doc).
    std::vector<TaskHandle> handles(n);
    for (int f = 0; f < n; ++f) {
        auto task = [this, sp = s.get(), f] {
            Session *const s = sp;
            const int nFrames = static_cast<int>(s->frames.size());

            // Quarantine short-circuit: the render is skipped, but the
            // completion bookkeeping below must still run — wait()
            // blocks on `finished`, which only flips inside task
            // bodies, so a quarantined session drains fast instead of
            // deadlocking its waiter.
            bool skip;
            {
                std::lock_guard<std::mutex> lock(s->mu);
                skip = s->quarantined;
            }

            const Clock::time_point t0 = Clock::now();
            ServeFrame frame;
            std::exception_ptr err;
            int retries = 0;
            if (!skip) {
                // Bounded retry with exponential backoff: transient
                // failures (an injected fault window, a briefly
                // unavailable resource) cost latency, not the frame.
                // Re-rendering is safe — renderServe is deterministic,
                // so a retried frame is bit-identical to an untroubled
                // one.
                for (int attempt = 0;; ++attempt) {
                    err = nullptr;
                    try {
                        faultCheck(FaultSite::FrameRender, s->id);
                        Camera cam = Camera::fromFov(
                            s->cfg.width, s->cfg.height,
                            s->lease.model().scene().fovYDeg,
                            s->cfg.trajectory[f]);
                        RenderResult r = s->lease.model().renderServe(
                            cam, s->sink.get());
                        frame.image = std::move(r.image);
                        frame.depth = std::move(r.depth);
                        frame.work = r.work;
                        break;
                    } catch (...) {
                        err = std::current_exception();
                    }
                    if (attempt >= s->maxRetries)
                        break;
                    ++retries;
                    {
                        std::lock_guard<std::mutex> lock(_mu);
                        ++_counters.frameRetries;
                    }
                    std::this_thread::sleep_for(
                        std::chrono::duration<double>(
                            _config.retryBackoffS *
                            static_cast<double>(1 << attempt)));
                }
            }
            const Clock::time_point t1 = Clock::now();

            const double renderS = seconds(t1 - t0);
            bool deadlineMiss =
                !skip && !err &&
                ((s->deadlineS > 0 && renderS > s->deadlineS) ||
                 faultShouldFire(FaultSite::FrameDeadline, s->id));

            bool sessionDone = false;
            bool newlyQuarantined = false;
            {
                std::lock_guard<std::mutex> lock(s->mu);
                frame.latencyS = seconds(t1 - s->eligibleAt[f]);
                frame.renderS = renderS;
                frame.retries = retries;
                frame.deadlineMiss = deadlineMiss;
                s->frames[f] = std::move(frame);
                s->done[f] = 1;
                if (skip) {
                    s->failed[f] = 1;
                    s->skipped[f] = 1;
                } else if (err) {
                    s->failed[f] = 1;
                    if (!s->error)
                        s->error = err;
                    if (++s->failedFrames >= _config.quarantineThreshold &&
                        !s->quarantined) {
                        s->quarantined = true;
                        newlyQuarantined = true;
                    }
                }
                if (f + s->window < nFrames)
                    s->eligibleAt[f + s->window] = t1;
                if (++s->completed == nFrames) {
                    s->finished = true;
                    sessionDone = true;
                }
            }
            s->cv.notify_all();

            {
                std::lock_guard<std::mutex> lock(_mu);
                ++_counters.framesCompleted;
                if (skip)
                    ++_counters.framesSkipped;
                else if (err)
                    ++_counters.framesFailed;
                if (deadlineMiss)
                    ++_counters.deadlineMisses;
                if (newlyQuarantined)
                    ++_counters.quarantinedSessions;
                if (sessionDone)
                    --_active;
            }
            if (sessionDone && s->sink)
                s->lease.fusion().releaseSession(s->id);
        };
        if (f < window)
            handles[f] = s->group.run(task);
        else
            handles[f] = s->group.runAfter({handles[f - window]}, task);
    }
}

std::shared_ptr<RenderService::Session>
RenderService::findSession(int sessionId) const
{
    std::lock_guard<std::mutex> lock(_mu);
    auto it = _sessions.find(sessionId);
    if (it == _sessions.end())
        throw std::runtime_error(
            "RenderService: unknown (or already collected) session id");
    return it->second;
}

ServeFrame
RenderService::waitFrame(int sessionId, int frameIndex)
{
    std::shared_ptr<Session> s = findSession(sessionId);
    if (frameIndex < 0 ||
        frameIndex >= static_cast<int>(s->frames.size()))
        throw std::runtime_error("RenderService: frame index out of range");

    std::unique_lock<std::mutex> lock(s->mu);
    s->cv.wait(lock, [&] { return s->done[frameIndex] != 0; });
    if (s->failed[frameIndex]) {
        if (s->skipped[frameIndex])
            throw SessionQuarantinedError(sessionId);
        std::rethrow_exception(s->error);
    }
    return s->frames[frameIndex];
}

ServeFrame
RenderService::waitFrameFor(int sessionId, int frameIndex,
                            double timeoutS)
{
    std::shared_ptr<Session> s = findSession(sessionId);
    if (frameIndex < 0 ||
        frameIndex >= static_cast<int>(s->frames.size()))
        throw std::runtime_error("RenderService: frame index out of range");

    std::unique_lock<std::mutex> lock(s->mu);
    bool done = s->cv.wait_for(
        lock, std::chrono::duration<double>(timeoutS),
        [&] { return s->done[frameIndex] != 0; });
    if (!done)
        throw WaitTimeoutError(sessionId, frameIndex, timeoutS);
    if (s->failed[frameIndex]) {
        if (s->skipped[frameIndex])
            throw SessionQuarantinedError(sessionId);
        std::rethrow_exception(s->error);
    }
    return s->frames[frameIndex];
}

bool
RenderService::sessionQuarantined(int sessionId) const
{
    std::shared_ptr<Session> s = findSession(sessionId);
    std::lock_guard<std::mutex> lock(s->mu);
    return s->quarantined;
}

ServeSessionResult
RenderService::wait(int sessionId)
{
    std::shared_ptr<Session> s;
    {
        std::lock_guard<std::mutex> lock(_mu);
        auto it = _sessions.find(sessionId);
        if (it == _sessions.end())
            throw std::runtime_error(
                "RenderService: unknown (or already collected) session id");
        s = it->second;
        _sessions.erase(it);
    }

    // Drain the session's group: `finished` flips inside the last
    // frame's task body, so the task (and its post-notify service
    // bookkeeping) may still be retiring on a worker — the group wait
    // returns only once nothing references the session anymore, making
    // it safe to destroy when our reference (the last) goes away.
    s->group.wait();

    ServeSessionResult out;
    out.sessionId = sessionId;
    out.downsampled = s->downsampled;
    {
        std::unique_lock<std::mutex> lock(s->mu);
        s->cv.wait(lock, [&] { return s->finished; });
        if (s->error)
            std::rethrow_exception(s->error);
        out.frames = std::move(s->frames);
    }
    return out;
}

int
RenderService::activeSessions() const
{
    std::lock_guard<std::mutex> lock(_mu);
    return _active;
}

ServiceCounters
RenderService::counters() const
{
    std::lock_guard<std::mutex> lock(_mu);
    return _counters;
}

} // namespace cicero
