#include "serve/model_cache.hh"

#include "scene/scene.hh"

namespace cicero {

const NerfModel &
SharedModelCache::Lease::model() const
{
    return *_entry->model;
}

FusedDecodeQueue &
SharedModelCache::Lease::fusion() const
{
    return *_entry->fusion;
}

const ModelKey &
SharedModelCache::Lease::key() const
{
    return _entry->key;
}

void
SharedModelCache::Lease::release()
{
    if (_cache && _entry)
        _cache->releaseEntry(_entry);
    _cache = nullptr;
    _entry = nullptr;
}

SharedModelCache::Lease
SharedModelCache::acquire(const ModelKey &key)
{
    Entry *entry = nullptr;
    {
        std::lock_guard<std::mutex> lock(_mu);
        auto it = _entries.find(key);
        if (it == _entries.end()) {
            auto fresh = std::make_unique<Entry>();
            fresh->key = key;
            entry = fresh.get();
            _entries.emplace(key, std::move(fresh));
            ++_stats.misses;
        } else {
            entry = it->second.get();
            ++_stats.hits;
        }
        ++entry->refs;
    }

    // Build outside the cache lock so different keys bake in parallel;
    // the per-entry latch makes concurrent first-acquires of one key
    // build once and share.
    {
        std::lock_guard<std::mutex> lock(entry->buildMu);
        if (!entry->built) {
            Scene scene = makeScene(key.scene);
            ModelBuildOptions opts;
            opts.preset = key.preset;
            opts.gridLayout = key.gridLayout;
            opts.seed = key.seed;
            entry->model = buildModel(key.kind, scene, opts);
            if (key.fp16)
                entry->model->quantizeFp16();
            entry->fusion = std::make_unique<FusedDecodeQueue>(
                entry->model->decoder());
            entry->built = true;
        }
    }
    return Lease(this, entry);
}

void
SharedModelCache::releaseEntry(Entry *entry)
{
    std::lock_guard<std::mutex> lock(_mu);
    if (--entry->refs > 0)
        return;
    if (entry->fusion)
        _retiredFusion += entry->fusion->stats();
    ++_stats.evictions;
    _entries.erase(entry->key);
}

ModelCacheStats
SharedModelCache::stats() const
{
    std::lock_guard<std::mutex> lock(_mu);
    return _stats;
}

std::size_t
SharedModelCache::liveEntries() const
{
    std::lock_guard<std::mutex> lock(_mu);
    return _entries.size();
}

FusionStats
SharedModelCache::fusionStatsTotal() const
{
    std::lock_guard<std::mutex> lock(_mu);
    FusionStats total = _retiredFusion;
    for (const auto &kv : _entries)
        if (kv.second->fusion)
            total += kv.second->fusion->stats();
    return total;
}

} // namespace cicero
