#include "serve/fused_decode_queue.hh"

#include <algorithm>

namespace cicero {

FusionStats &
FusionStats::operator+=(const FusionStats &o)
{
    blocks += o.blocks;
    samples += o.samples;
    passes += o.passes;
    fusedPasses += o.fusedPasses;
    crossSessionPasses += o.crossSessionPasses;
    maxBatchSamples = std::max(maxBatchSamples, o.maxBatchSamples);
    maxBatchBlocks = std::max(maxBatchBlocks, o.maxBatchBlocks);
    splitRetries += o.splitRetries;
    failedBlocks += o.failedBlocks;
    weightedSessions += o.weightedSessions;
    return *this;
}

FusedDecodeQueue::FusedDecodeQueue(const Decoder &decoder,
                                   int quantumSamples)
    : _decoder(decoder), _quantum(std::max(1, quantumSamples))
{
}

void
FusedDecodeQueue::decode(int session, const float *features,
                         std::size_t featureStride, int count,
                         const Vec3 &viewDir, DecodedSample *out)
{
    DecodeBlock blk;
    blk.features = features;
    blk.featureStride = featureStride;
    blk.count = count;
    blk.viewDir = viewDir;
    blk.out = out;
    decodeBlocks(session, &blk, 1);
}

void
FusedDecodeQueue::decodeBlocks(int session, const DecodeBlock *blocks,
                               int numBlocks)
{
    int remaining = 0;
    std::exception_ptr error;

    std::unique_lock<std::mutex> lock(_mu);
    auto ins = _sessions.emplace(session, SessionQueue{});
    if (ins.second) {
        _order.push_back(session);
        auto w = _weights.find(session);
        if (w != _weights.end())
            ins.first->second.weight = w->second;
    }
    SessionQueue &q = ins.first->second;
    for (int i = 0; i < numBlocks; ++i) {
        if (blocks[i].count <= 0)
            continue;
        q.items.push_back(Item{blocks[i], &remaining, &error});
        ++remaining;
        ++_pendingBlocks;
    }
    if (remaining == 0)
        return;

    // Flat combining: the first submitter to find no active combiner
    // takes the role and drains the whole queue (including blocks
    // that arrive while it runs); everyone else sleeps until their
    // submission completes. Any waiter still pending when the
    // combiner retires takes over, so no submission is ever stranded.
    // combineLocked() never throws — decode failures are delivered
    // through each item's error slot — so the combiner role is always
    // handed back and waiters always wake.
    while (remaining > 0) {
        if (!_combinerActive) {
            _combinerActive = true;
            combineLocked(lock);
            _combinerActive = false;
            _cv.notify_all();
        } else {
            _cv.wait(lock);
        }
    }
    // Rethrow on the *owning* submitter: a combiner that failed some
    // other session's block must not see that session's error.
    if (error)
        std::rethrow_exception(error);
}

void
FusedDecodeQueue::setSessionWeight(int session, int weight)
{
    const int w = std::max(1, weight);
    std::lock_guard<std::mutex> lock(_mu);
    _weights[session] = w;
    auto it = _sessions.find(session);
    if (it != _sessions.end())
        it->second.weight = w;
    if (w > 1)
        ++_stats.weightedSessions;
}

void
FusedDecodeQueue::releaseSession(int session)
{
    std::lock_guard<std::mutex> lock(_mu);
    _weights.erase(session);
    auto it = _sessions.find(session);
    if (it == _sessions.end())
        return;
    _sessions.erase(it);
    auto o = std::find(_order.begin(), _order.end(), session);
    if (o != _order.end()) {
        if (static_cast<std::size_t>(o - _order.begin()) < _cursor)
            --_cursor;
        _order.erase(o);
    }
    if (!_order.empty())
        _cursor %= _order.size();
    else
        _cursor = 0;
}

FusionStats
FusedDecodeQueue::stats() const
{
    std::lock_guard<std::mutex> lock(_mu);
    return _stats;
}

void
FusedDecodeQueue::combineLocked(std::unique_lock<std::mutex> &lock)
{
    std::vector<DecodeBlock> batch;
    std::vector<int *> owners;
    std::vector<std::exception_ptr *> errorSlots;
    std::vector<int> contributors;

    while (_pendingBlocks > 0) {
        batch.clear();
        owners.clear();
        errorSlots.clear();
        contributors.clear();
        int batchSamples = 0;

        // Deficit round-robin across sessions: starting at the rotating
        // cursor, each backlogged session earns weight * quantum of
        // sample credit per visit and dequeues blocks while the credit
        // lasts (weight > 1 = premium QoS share).
        // The batch closes once it can fill a kernel chunk — enough to
        // amortize, small enough to bound the latency any one block
        // spends waiting behind others. A lone block wider than its
        // credit is taken anyway when the batch is empty (the fused
        // kernel chunks internally), so progress never stalls.
        const std::size_t nOrder = _order.size();
        std::size_t stopIdx = _cursor;
        for (std::size_t k = 0;
             k < nOrder && batchSamples < kDecodeChunk; ++k) {
            const std::size_t idx = (_cursor + k) % nOrder;
            SessionQueue &q = _sessions[_order[idx]];
            if (q.items.empty()) {
                q.deficit = 0;
                stopIdx = idx + 1;
                continue;
            }
            q.deficit += _quantum * q.weight;
            bool contributed = false;
            while (!q.items.empty() && batchSamples < kDecodeChunk) {
                Item &it = q.items.front();
                if (it.blk.count <= q.deficit) {
                    q.deficit -= it.blk.count;
                } else if (batch.empty()) {
                    q.deficit = 0; // oversized lone block: take as-is
                } else {
                    break;
                }
                batch.push_back(it.blk);
                owners.push_back(it.remaining);
                errorSlots.push_back(it.error);
                batchSamples += it.blk.count;
                q.items.pop_front();
                --_pendingBlocks;
                contributed = true;
            }
            if (contributed)
                contributors.push_back(_order[idx]);
            if (q.items.empty())
                q.deficit = 0;
            // Resume next pass at this session if it still has backlog
            // (its credit carries over), else after it.
            stopIdx = q.items.empty() ? idx + 1 : idx;
        }
        _cursor = nOrder ? stopIdx % nOrder : 0;

        if (batch.empty())
            break; // queue raced empty (defensive; pending was > 0)

        _stats.blocks += batch.size();
        _stats.samples += static_cast<std::uint64_t>(batchSamples);
        ++_stats.passes;
        if (batch.size() > 1)
            ++_stats.fusedPasses;
        if (contributors.size() > 1)
            ++_stats.crossSessionPasses;
        _stats.maxBatchSamples =
            std::max(_stats.maxBatchSamples,
                     static_cast<std::uint64_t>(batchSamples));
        _stats.maxBatchBlocks = std::max(
            _stats.maxBatchBlocks,
            static_cast<std::uint64_t>(batch.size()));

        // Fault isolation: a fused pass that throws falls back to
        // decoding each of the batch's blocks solo (the bit-identity
        // reference), so one poisoned block cannot fail its
        // batch-mates. A block whose solo decode also fails parks its
        // exception in its submission's error slot — the *owning*
        // submitter rethrows it from decodeBlocks(). Nothing escapes
        // this region, so the combiner role is always handed back.
        std::vector<std::exception_ptr> blockErrs;
        std::uint64_t splitRetries = 0;
        lock.unlock();
        std::exception_ptr batchErr;
        try {
            _decoder.decodeBlocksFused(batch.data(),
                                       static_cast<int>(batch.size()));
        } catch (...) {
            batchErr = std::current_exception();
        }
        if (batchErr) {
            blockErrs.resize(batch.size());
            if (batch.size() == 1) {
                // A lone block *is* its solo decode; no retry to run.
                blockErrs[0] = batchErr;
            } else {
                for (std::size_t i = 0; i < batch.size(); ++i) {
                    try {
                        ++splitRetries;
                        _decoder.decodeBlocksFused(&batch[i], 1);
                    } catch (...) {
                        blockErrs[i] = std::current_exception();
                    }
                }
            }
        }
        lock.lock();

        if (batchErr) {
            _stats.splitRetries += splitRetries;
            for (const std::exception_ptr &e : blockErrs)
                if (e)
                    ++_stats.failedBlocks;
        }
        for (std::size_t i = 0; i < owners.size(); ++i) {
            if (!blockErrs.empty() && blockErrs[i] && errorSlots[i] &&
                !*errorSlots[i])
                *errorSlots[i] = blockErrs[i];
            --*owners[i];
        }
        _cv.notify_all();
    }
}

} // namespace cicero
