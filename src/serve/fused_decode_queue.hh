/**
 * @file
 * Cross-session fused MLP decode queue — the serve layer's perf core.
 *
 * Many sessions of the same model render concurrently, each producing
 * small ray blocks (8..64 samples — renderer.cc's geometric block
 * growth). Decoded independently those blocks leave vector lanes idle
 * at remainders and, in fp16 weight mode, pay a weight-widening pass
 * per call. This queue gathers blocks from *all* sessions of one model
 * into shared batches pushed through Decoder::decodeBlocksFused, so
 * the kernel sees full batches whose cost amortizes with traffic.
 *
 * Execution model: flat combining. A submitting thread enqueues its
 * block(s) under the queue mutex, then either becomes the *combiner*
 * (if none is active) or waits on the condvar. The combiner drains the
 * queue — selecting blocks by deficit round-robin across sessions for
 * fair-share — releasing the mutex around each fused kernel pass, and
 * wakes submitters whose blocks completed. Any waiter can take over
 * combining, and the combiner never blocks, so progress is guaranteed;
 * with one thread the submitter immediately self-combines and the
 * queue degenerates to an inline decode.
 *
 * Correctness contract (the serve layer's bit-identity guarantee
 * leans on this): each block's results are bit-identical to a solo
 * Decoder::decodeBatchSoA call — decodeBlocksFused preserves
 * per-sample bits at any batching composition, and this queue only
 * ever reorders whole blocks across sessions, never samples within a
 * block.
 */

#ifndef CICERO_SERVE_FUSED_DECODE_QUEUE_HH
#define CICERO_SERVE_FUSED_DECODE_QUEUE_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "nerf/decoder.hh"

namespace cicero {

/** Counters describing how much fusion the queue achieved. */
struct FusionStats
{
    std::uint64_t blocks = 0;  //!< ray blocks decoded through the queue
    std::uint64_t samples = 0; //!< samples decoded through the queue
    std::uint64_t passes = 0;  //!< combiner kernel passes
    std::uint64_t fusedPasses = 0; //!< passes batching >1 block
    std::uint64_t crossSessionPasses = 0; //!< passes mixing sessions
    std::uint64_t maxBatchSamples = 0;    //!< widest pass (samples)
    std::uint64_t maxBatchBlocks = 0;     //!< widest pass (blocks)
    std::uint64_t splitRetries = 0; //!< solo re-decodes after a failed batch
    std::uint64_t failedBlocks = 0; //!< blocks whose solo retry failed too
    std::uint64_t weightedSessions = 0; //!< sessions registered with QoS weight > 1

    /** Aggregate (sums counts, maxes the max fields). */
    FusionStats &operator+=(const FusionStats &o);
};

/**
 * Blocking fused-decode queue over one shared Decoder. Thread-safe;
 * one instance per cached model, shared by all its sessions.
 */
class FusedDecodeQueue
{
  public:
    /**
     * @param decoder        the shared model's decoder
     * @param quantumSamples deficit round-robin quantum: samples of
     *        decode credit a session earns per scheduling round. Must
     *        cover the largest renderer block (64) so one round always
     *        admits at least one block per backlogged session.
     */
    explicit FusedDecodeQueue(const Decoder &decoder,
                              int quantumSamples = 128);

    /**
     * Decode one ray block for @p session. Blocks until the results
     * are in @p out — either decoded by this thread acting as the
     * combiner (possibly fused with other sessions' pending blocks) or
     * by another submitter combining on our behalf.
     *
     * Fault isolation: if a *fused* kernel pass throws, the combiner
     * falls back to decoding that batch's blocks one by one (bits
     * preserved — a solo block is the bit-identity reference), so a
     * failure affecting one session's block cannot fail another
     * session's submission; a block whose solo decode also fails
     * delivers its exception to its *own* submitter. The combiner
     * never exits with the queue wedged.
     */
    void decode(int session, const float *features,
                std::size_t featureStride, int count, const Vec3 &viewDir,
                DecodedSample *out);

    /**
     * Submit @p numBlocks blocks for @p session in one call and wait
     * for all of them. Lets a single thread present the combiner with
     * a multi-block batch deterministically (exercised by tests; the
     * render path submits per-block as rays produce them).
     */
    void decodeBlocks(int session, const DecodeBlock *blocks,
                      int numBlocks);

    /**
     * Set @p session's QoS weight (clamped to >= 1; default 1). A
     * session with weight w earns w quanta of decode credit per
     * round-robin visit, so a premium session's blocks fill a larger
     * share of each fused batch under contention. May be called before
     * or after the session's first decode; weights only shape
     * *scheduling order*, never per-block bits, so output stays
     * bit-identical at any weight.
     */
    void setSessionWeight(int session, int weight);

    /**
     * Forget @p session's scheduling state (deficit, round-robin
     * slot, QoS weight). Call after the session's last frame; it must
     * have no blocks in flight.
     */
    void releaseSession(int session);

    FusionStats stats() const;

    /** DecodeSink adapter binding one session id to the queue. */
    class SessionSink : public DecodeSink
    {
      public:
        SessionSink() = default;
        SessionSink(FusedDecodeQueue *queue, int session)
            : _queue(queue), _session(session)
        {
        }

        void decodeBlock(const float *features, std::size_t featureStride,
                         int count, const Vec3 &viewDir,
                         DecodedSample *out) override
        {
            _queue->decode(_session, features, featureStride, count,
                           viewDir, out);
        }

      private:
        FusedDecodeQueue *_queue = nullptr;
        int _session = 0;
    };

  private:
    /**
     * One submitted block plus its submission's completion counter and
     * error slot (first failing block of a submission wins).
     */
    struct Item
    {
        DecodeBlock blk;
        int *remaining = nullptr;
        std::exception_ptr *error = nullptr;
    };

    /** Per-session backlog, deficit round-robin credit, QoS weight. */
    struct SessionQueue
    {
        std::deque<Item> items;
        int deficit = 0;
        int weight = 1; //!< quanta earned per round-robin visit
    };

    /**
     * Drain the queue as the combiner. Entered and exited holding
     * @p lock; unlocks around each fused kernel pass.
     */
    void combineLocked(std::unique_lock<std::mutex> &lock);

    const Decoder &_decoder;
    const int _quantum;

    mutable std::mutex _mu;
    std::condition_variable _cv;
    bool _combinerActive = false;
    std::size_t _pendingBlocks = 0;
    std::unordered_map<int, SessionQueue> _sessions;
    //! Weights set before a session's first decode park here until its
    //! SessionQueue exists (setSessionWeight vs first block may race).
    std::unordered_map<int, int> _weights;
    std::vector<int> _order; //!< round-robin visit order
    std::size_t _cursor = 0; //!< next _order slot to serve
    FusionStats _stats;
};

} // namespace cicero

#endif // CICERO_SERVE_FUSED_DECODE_QUEUE_HH
