/**
 * @file
 * Minimal JSON value parser for the DSE subsystem's declarative inputs
 * (corpus manifests, sweep specs) and for re-reading the result files
 * the driver emits. Full JSON syntax on the read side (objects,
 * arrays, strings with escapes, numbers, booleans, null), DOM output
 * with ordered object members. Error messages carry the byte offset —
 * the malformed-manifest error paths are part of the tested contract.
 *
 * Deliberately not a serializer: the driver emits its JSON as
 * deterministic strings (fixed field order, fixed float precision) so
 * equal results are byte-identical — a DOM round-trip would launder
 * that guarantee.
 */

#ifndef CICERO_DSE_MINIJSON_HH
#define CICERO_DSE_MINIJSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/errors.hh"

namespace cicero::dse {

/**
 * Malformed JSON input. Derives ParseError (itself runtime_error) so
 * the tools map it to the parse-failure exit code; carries the byte
 * offset the parser stopped at.
 */
class JsonParseError : public ParseError
{
  public:
    JsonParseError(const std::string &what, std::size_t offset)
        : ParseError("json: " + what + " at byte " +
                     std::to_string(offset)),
          _offset(offset)
    {
    }

    std::size_t offset() const { return _offset; }

  private:
    std::size_t _offset;
};

/**
 * Maximum container nesting depth parseJson accepts. The parser is
 * recursive-descent; without a cap a few kilobytes of '[' would
 * overflow the stack instead of failing typed.
 */
constexpr std::size_t kJsonMaxDepth = 256;

/** A parsed JSON value (tree). */
struct JsonValue
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> items; //!< Array elements
    std::vector<std::pair<std::string, JsonValue>>
        members;                  //!< Object members, source order

    bool isNull() const { return kind == Kind::Null; }
    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isString() const { return kind == Kind::String; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isBool() const { return kind == Kind::Bool; }

    /** Member lookup on an object; nullptr when absent or not object. */
    const JsonValue *find(const std::string &key) const;

    /**
     * Typed accessors: throw std::runtime_error mentioning @p what when
     * the value has the wrong kind (or, for asU64, is negative or
     * fractional).
     */
    const std::string &asString(const std::string &what) const;
    double asNumber(const std::string &what) const;
    std::uint64_t asU64(const std::string &what) const;
    bool asBool(const std::string &what) const;
    const std::vector<JsonValue> &asArray(const std::string &what) const;
};

/**
 * Parse @p text as one JSON document.
 * @throws JsonParseError with a byte offset on malformed input,
 *         trailing garbage, or nesting deeper than kJsonMaxDepth.
 */
JsonValue parseJson(const std::string &text);

/** Escape @p s for embedding inside a JSON string literal. */
std::string jsonEscape(const std::string &s);

} // namespace cicero::dse

#endif // CICERO_DSE_MINIJSON_HH
