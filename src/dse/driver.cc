#include "dse/driver.hh"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <stdexcept>

#include "common/parallel.hh"
#include "dse/minijson.hh"

namespace cicero::dse {

namespace {

std::string
fmt(const char *format, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), format, v);
    return buf;
}

std::string
axisJson(const std::vector<double> &v)
{
    std::string out = "[";
    for (std::size_t i = 0; i < v.size(); ++i)
        out += (i ? ", " : "") + fmt("%g", v[i]);
    return out + "]";
}

std::string
axisJson(const std::vector<std::uint32_t> &v)
{
    std::string out = "[";
    for (std::size_t i = 0; i < v.size(); ++i)
        out += (i ? ", " : "") + std::to_string(v[i]);
    return out + "]";
}

void
parseDoubleAxis(const JsonValue &arr, const char *name,
                std::vector<double> &out)
{
    const auto &items = arr.asArray(name);
    if (items.empty())
        throw std::runtime_error(std::string("sweep spec: axis \"") +
                                 name + "\" must not be empty");
    out.clear();
    for (const JsonValue &v : items) {
        double d = v.asNumber(name);
        if (d <= 0)
            throw std::runtime_error(std::string("sweep spec: axis \"") +
                                     name + "\" values must be positive");
        out.push_back(d);
    }
}

void
parseU32Axis(const JsonValue &arr, const char *name,
             std::vector<std::uint32_t> &out, bool allowZero = false)
{
    const auto &items = arr.asArray(name);
    if (items.empty())
        throw std::runtime_error(std::string("sweep spec: axis \"") +
                                 name + "\" must not be empty");
    out.clear();
    for (const JsonValue &v : items) {
        std::uint64_t u = v.asU64(name);
        if ((u == 0 && !allowZero) || u > 0xffffffffull)
            throw std::runtime_error(
                std::string("sweep spec: axis \"") + name +
                "\" values must be in [" + (allowZero ? "0" : "1") +
                ", 2^32)");
        out.push_back(static_cast<std::uint32_t>(u));
    }
}

} // namespace

std::size_t
SweepAxes::configCount() const
{
    return cacheMb.size() * cacheWays.size() * warpWays.size() *
           guVftKb.size() * guBanks.size() * dramGBs.size() *
           sramBanks.size() * concurrentRays.size();
}

SweepAxes
parseSweepSpec(const std::string &jsonText)
{
    JsonValue root = parseJson(jsonText);
    if (!root.isObject())
        throw std::runtime_error("sweep spec: root must be an object");

    SweepAxes axes;
    for (const auto &m : root.members) {
        if (m.first == "cache_mb")
            parseDoubleAxis(m.second, "cache_mb", axes.cacheMb);
        else if (m.first == "cache_ways")
            // 0 = fully associative, a legal sweep point.
            parseU32Axis(m.second, "cache_ways", axes.cacheWays,
                         /*allowZero=*/true);
        else if (m.first == "warp_ways")
            parseU32Axis(m.second, "warp_ways", axes.warpWays);
        else if (m.first == "gu_vft_kb")
            parseU32Axis(m.second, "gu_vft_kb", axes.guVftKb);
        else if (m.first == "gu_banks")
            parseU32Axis(m.second, "gu_banks", axes.guBanks);
        else if (m.first == "dram_gbs")
            parseDoubleAxis(m.second, "dram_gbs", axes.dramGBs);
        else if (m.first == "sram_banks")
            parseU32Axis(m.second, "sram_banks", axes.sramBanks);
        else if (m.first == "concurrent_rays")
            parseU32Axis(m.second, "concurrent_rays",
                         axes.concurrentRays);
        else
            throw std::runtime_error("sweep spec: unknown axis \"" +
                                     m.first + "\"");
    }
    return axes;
}

std::string
DseConfig::id() const
{
    return "cache" + fmt("%g", cacheMb) + "-cw" +
           std::to_string(cacheWays) + "-ways" +
           std::to_string(warpWays) + "-vft" + std::to_string(guVftKb) +
           "k-gub" + std::to_string(guBanks) + "-dram" +
           fmt("%g", dramGBs) + "-sb" + std::to_string(sramBanks) +
           "-rays" + std::to_string(concurrentRays);
}

std::uint64_t
DseConfig::sramBytes() const
{
    GatheringUnitConfig gu;
    gu.vftBytes = static_cast<std::uint64_t>(guVftKb) * 1024;
    gu.banks = guBanks;
    return static_cast<std::uint64_t>(cacheMb * (1ull << 20)) +
           gu.sramBytes();
}

std::vector<DseConfig>
expandGrid(const SweepAxes &axes)
{
    std::vector<DseConfig> grid;
    grid.reserve(axes.configCount());
    for (double cache : axes.cacheMb)
        for (std::uint32_t cw : axes.cacheWays)
            for (std::uint32_t ways : axes.warpWays)
                for (std::uint32_t vft : axes.guVftKb)
                    for (std::uint32_t gub : axes.guBanks)
                        for (double dram : axes.dramGBs)
                            for (std::uint32_t sb : axes.sramBanks)
                                for (std::uint32_t rays :
                                     axes.concurrentRays) {
                                    DseConfig c;
                                    c.cacheMb = cache;
                                    c.cacheWays = cw;
                                    c.warpWays = ways;
                                    c.guVftKb = vft;
                                    c.guBanks = gub;
                                    c.dramGBs = dram;
                                    c.sramBanks = sb;
                                    c.concurrentRays = rays;
                                    grid.push_back(c);
                                }
    return grid;
}

DsePointResult
evaluatePoint(const TraceSourceFn &source,
              const TraceWorkloadDescriptor &desc,
              const std::string &traceId, const DseConfig &config)
{
    GpuStackConfig gpuCfg;
    gpuCfg.gpu.dram.bandwidthGBs = config.dramGBs;
    gpuCfg.cache.capacityBytes =
        static_cast<std::uint64_t>(config.cacheMb * (1ull << 20));
    gpuCfg.cache.ways = config.cacheWays;
    gpuCfg.warpWays = config.warpWays;

    GuStackConfig guCfg;
    guCfg.gu.vftBytes = static_cast<std::uint64_t>(config.guVftKb) * 1024;
    guCfg.gu.banks = config.guBanks;
    guCfg.dram.bandwidthGBs = config.dramGBs;
    guCfg.concurrentRays = config.concurrentRays;

    BaselineStackConfig baseCfg;
    baseCfg.bank.numBanks = config.sramBanks;
    baseCfg.bank.concurrentRays = config.concurrentRays;
    baseCfg.dram.bandwidthGBs = config.dramGBs;

    GpuStackResult gpu = runGpuStack(source, desc, gpuCfg);
    NpuStackResult npu = runNpuStack(source, desc);
    GuStackResult gu = runGuStack(source, desc, guCfg);
    BaselineStackResult baselines =
        runBaselineStack(source, desc, baseCfg);

    DsePointResult point;
    point.traceId = traceId;
    point.configId = config.id();

    // Cicero composition, mirroring cicero/pipeline.cc nerfCost(): the
    // GPU indexes and composites, then the GU's gather overlaps with
    // the NPU's MLP work through the double-buffered feature buffer.
    double gpuPartMs = gpu.times.indexMs + gpu.times.compositeMs;
    point.ciceroTimeMs =
        gpuPartMs + std::max(gu.cost.timeMs, npu.timeMs);
    point.ciceroFps =
        point.ciceroTimeMs > 0 ? 1000.0 / point.ciceroTimeMs : 0.0;
    point.ciceroEnergyNj = GpuModel(gpuCfg.gpu).energyNj(gpuPartMs) +
                           npu.energyNj + gu.cost.energyNj;

    point.gpuFps = gpu.timeMs > 0 ? 1000.0 / gpu.timeMs : 0.0;
    point.gpuEnergyNj = gpu.energyNj;

    point.gpuJson = statsJson(gpu);
    point.npuJson = statsJson(npu);
    point.guJson = statsJson(gu);
    point.baselinesJson = statsJson(baselines);
    return point;
}

DseDriver::DseDriver(SweepAxes axes) : _axes(std::move(axes))
{
}

DseResult
DseDriver::run(const Corpus &corpus, bool parallel) const
{
    if (corpus.empty())
        throw std::runtime_error("dse: corpus has no entries");

    // Parse every trace once; readers are shared across jobs (replay()
    // is const and reentrant).
    std::vector<std::unique_ptr<TraceFileReader>> readers;
    std::vector<TraceWorkloadDescriptor> descs;
    readers.reserve(corpus.size());
    descs.reserve(corpus.size());
    for (const CorpusEntry &entry : corpus.entries()) {
        readers.push_back(std::make_unique<TraceFileReader>(
            corpus.tracePath(entry)));
        descs.push_back(workloadFromTrace(*readers.back()));
    }

    std::vector<DseConfig> grid = expandGrid(_axes);
    const std::size_t traces = corpus.size();
    const std::size_t jobs = grid.size() * traces;

    DseResult result;
    result.traceCount = traces;
    result.configCount = grid.size();
    result.points.resize(jobs);

    // Index-addressed assembly: job j = config-major (c * traces + t),
    // so the result layout never depends on scheduling.
    auto evalJob = [&](std::size_t j) {
        std::size_t c = j / traces;
        std::size_t t = j % traces;
        result.points[j] =
            evaluatePoint(fileSource(*readers[t]), descs[t],
                          corpus.entries()[t].id, grid[c]);
    };

    if (parallel) {
        TaskGroup group;
        for (std::size_t j = 0; j < jobs; ++j)
            group.run([&evalJob, j] { evalJob(j); });
        group.wait();
    } else {
        for (std::size_t j = 0; j < jobs; ++j)
            evalJob(j);
    }

    // Per-config aggregates, accumulated in trace order.
    result.summaries.reserve(grid.size());
    for (std::size_t c = 0; c < grid.size(); ++c) {
        DseConfigSummary s;
        s.config = grid[c];
        s.sramBytes = grid[c].sramBytes();
        double fpsSum = 0.0, energySum = 0.0;
        for (std::size_t t = 0; t < traces; ++t) {
            const DsePointResult &p = result.points[c * traces + t];
            fpsSum += p.ciceroFps;
            energySum += p.ciceroEnergyNj;
        }
        s.fps = fpsSum / traces;
        s.energyNj = energySum / traces;
        result.summaries.push_back(s);
    }

    // Pareto frontier over (fps up, energy down, SRAM down).
    for (std::size_t i = 0; i < result.summaries.size(); ++i) {
        DseConfigSummary &a = result.summaries[i];
        bool dominated = false;
        for (std::size_t k = 0; k < result.summaries.size() && !dominated;
             ++k) {
            if (k == i)
                continue;
            const DseConfigSummary &b = result.summaries[k];
            bool geFps = b.fps >= a.fps;
            bool leEnergy = b.energyNj <= a.energyNj;
            bool leSram = b.sramBytes <= a.sramBytes;
            bool strict = b.fps > a.fps || b.energyNj < a.energyNj ||
                          b.sramBytes < a.sramBytes;
            dominated = geFps && leEnergy && leSram && strict;
        }
        a.pareto = !dominated;
    }
    return result;
}

namespace {

std::string
summaryJson(const DseConfigSummary &s)
{
    return "{\"config\": \"" + s.config.id() +
           "\", \"cache_mb\": " + fmt("%g", s.config.cacheMb) +
           ", \"cache_ways\": " + std::to_string(s.config.cacheWays) +
           ", \"warp_ways\": " + std::to_string(s.config.warpWays) +
           ", \"gu_vft_kb\": " + std::to_string(s.config.guVftKb) +
           ", \"gu_banks\": " + std::to_string(s.config.guBanks) +
           ", \"dram_gbs\": " + fmt("%g", s.config.dramGBs) +
           ", \"sram_banks\": " + std::to_string(s.config.sramBanks) +
           ", \"concurrent_rays\": " +
           std::to_string(s.config.concurrentRays) +
           ", \"sram_bytes\": " + std::to_string(s.sramBytes) +
           ", \"fps\": " + fmt("%.6f", s.fps) +
           ", \"energy_nj\": " + fmt("%.3f", s.energyNj) +
           ", \"pareto\": " + (s.pareto ? "true" : "false") + "}";
}

} // namespace

std::string
DseResult::json() const
{
    std::string out = "{\n  \"tool\": \"cicero_dse\",\n  \"traces\": " +
                      std::to_string(traceCount) +
                      ",\n  \"configs\": " + std::to_string(configCount) +
                      ",\n  \"points\": [";
    for (std::size_t i = 0; i < points.size(); ++i) {
        const DsePointResult &p = points[i];
        out += i ? ",\n" : "\n";
        out += "    {\"trace\": \"" + jsonEscape(p.traceId) +
               "\", \"config\": \"" + p.configId +
               "\", \"cicero_time_ms\": " + fmt("%.6f", p.ciceroTimeMs) +
               ", \"cicero_fps\": " + fmt("%.6f", p.ciceroFps) +
               ", \"cicero_energy_nj\": " +
               fmt("%.3f", p.ciceroEnergyNj) +
               ", \"gpu_fps\": " + fmt("%.6f", p.gpuFps) +
               ", \"gpu_energy_nj\": " + fmt("%.3f", p.gpuEnergyNj) +
               ", \"gpu\": " + p.gpuJson + ", \"npu\": " + p.npuJson +
               ", \"gu\": " + p.guJson +
               ", \"baselines\": " + p.baselinesJson + "}";
    }
    out += "\n  ],\n  \"summary\": [";
    for (std::size_t i = 0; i < summaries.size(); ++i) {
        out += i ? ",\n" : "\n";
        out += "    " + summaryJson(summaries[i]);
    }
    out += "\n  ],\n  \"pareto\": [";
    bool first = true;
    for (const DseConfigSummary &s : summaries) {
        if (!s.pareto)
            continue;
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"" + s.config.id() + "\"";
    }
    out += "\n  ]\n}\n";
    return out;
}

std::string
DseResult::paretoJson() const
{
    std::string out = "{\n  \"pareto\": [";
    bool first = true;
    for (const DseConfigSummary &s : summaries) {
        if (!s.pareto)
            continue;
        out += first ? "\n" : ",\n";
        first = false;
        out += "    " + summaryJson(s);
    }
    out += "\n  ]\n}\n";
    return out;
}

} // namespace cicero::dse
