/**
 * @file
 * Replay-driven design-space exploration driver.
 *
 * A declarative SweepAxes spec (cache size, warp interleaving, GU VFT
 * size and bank count, DRAM bandwidth, baseline SRAM banking,
 * concurrent rays) expands into a full cartesian config grid; the
 * driver prices every (trace, config) pair by replaying the corpus
 * traces through the accelerator stacks of dse/accel_replay.hh and
 * composing the Cicero frame price exactly as cicero/pipeline.cc does
 * (GPU indexing + compositing, then gather on the GU overlapped with
 * MLP on the NPU).
 *
 * Determinism contract: jobs are sharded over the TaskGroup scheduler
 * but write into an index-addressed result vector, so the assembled
 * results — and the emitted JSON, which uses the repo's fixed-precision
 * formatting — are byte-identical to a serial run at any thread count.
 * Trace readers are shared across jobs (TraceFileReader::replay is
 * const and reentrant).
 *
 * The Pareto frontier is computed over per-config aggregates: a config
 * is dominated when another achieves >= fps with <= energy and <= swept
 * SRAM area, at least one strictly better.
 */

#ifndef CICERO_DSE_DRIVER_HH
#define CICERO_DSE_DRIVER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "dse/accel_replay.hh"
#include "dse/corpus.hh"

namespace cicero::dse {

/** The swept axes; each vector is one dimension of the grid. */
struct SweepAxes
{
    std::vector<double> cacheMb{1.0, 2.0, 4.0};       //!< gather cache
    /**
     * Gather-cache associativity in ways; 0 = fully associative (the
     * paper's generous baseline). Real design points sweep e.g.
     * {4, 8, 16} to price the conflict-miss gap.
     */
    std::vector<std::uint32_t> cacheWays{0};
    std::vector<std::uint32_t> warpWays{32};          //!< interleaving
    std::vector<std::uint32_t> guVftKb{32, 64};       //!< GU VFT size
    std::vector<std::uint32_t> guBanks{32};           //!< GU SRAM arrays
    std::vector<double> dramGBs{25.6};                //!< DRAM bandwidth
    std::vector<std::uint32_t> sramBanks{16};         //!< baseline banks
    std::vector<std::uint32_t> concurrentRays{16};    //!< bank-sim slots

    /** Size of the expanded grid (product of the axis lengths). */
    std::size_t configCount() const;
};

/**
 * Parse a JSON sweep spec: an object whose members name axes
 * ("cache_mb", "cache_ways", "warp_ways", "gu_vft_kb", "gu_banks",
 * "dram_gbs", "sram_banks", "concurrent_rays") and hold non-empty
 * arrays of positive numbers. Missing axes keep their defaults.
 * "cache_ways" alone admits 0 (= fully associative).
 * @throws std::runtime_error on malformed JSON, unknown axis names,
 *         empty arrays, or non-positive values.
 */
SweepAxes parseSweepSpec(const std::string &jsonText);

/** One point of the expanded config grid. */
struct DseConfig
{
    double cacheMb = 2.0;
    std::uint32_t cacheWays = 0; //!< 0 = fully associative
    std::uint32_t warpWays = 32;
    std::uint32_t guVftKb = 32;
    std::uint32_t guBanks = 32;
    double dramGBs = 25.6;
    std::uint32_t sramBanks = 16;
    std::uint32_t concurrentRays = 16;

    /** Deterministic identifier, e.g. "cache2-cw0-ways32-vft32k-...". */
    std::string id() const;

    /**
     * Swept on-chip SRAM area in bytes: the gather cache plus the GU's
     * footprint (VFT + double-buffered RIT). The NPU buffers are fixed
     * across the grid and excluded.
     */
    std::uint64_t sramBytes() const;
};

/** Expand @p axes into the grid, lexicographic in axis order. */
std::vector<DseConfig> expandGrid(const SweepAxes &axes);

/** Priced (trace, config) pair. */
struct DsePointResult
{
    std::string traceId;
    std::string configId;
    double ciceroTimeMs = 0.0;
    double ciceroFps = 0.0;
    double ciceroEnergyNj = 0.0;
    double gpuFps = 0.0;      //!< GPU-only baseline on the same config
    double gpuEnergyNj = 0.0;
    // Full stack stats, serialized with the deterministic statsJson
    // overloads — the byte-comparable unit of the identity gates.
    std::string gpuJson;
    std::string npuJson;
    std::string guJson;
    std::string baselinesJson;
};

/** Per-config aggregate across the corpus. */
struct DseConfigSummary
{
    DseConfig config;
    double fps = 0.0;         //!< mean Cicero fps over the traces
    double energyNj = 0.0;    //!< mean Cicero frame energy
    std::uint64_t sramBytes = 0;
    bool pareto = false;
};

/** Complete sweep output. */
struct DseResult
{
    std::vector<DsePointResult> points;      //!< config-major order
    std::vector<DseConfigSummary> summaries; //!< grid order
    std::size_t traceCount = 0;
    std::size_t configCount = 0;

    /** Deterministic full-result JSON (points + summary + frontier). */
    std::string json() const;

    /** Deterministic JSON of the Pareto-optimal configs only. */
    std::string paretoJson() const;
};

/**
 * Evaluate one trace against one config — the unit of work the driver
 * shards. Exposed for the identity tests and the --check replay gate.
 */
DsePointResult evaluatePoint(const TraceSourceFn &source,
                             const TraceWorkloadDescriptor &desc,
                             const std::string &traceId,
                             const DseConfig &config);

/** The sweep driver. */
class DseDriver
{
  public:
    explicit DseDriver(SweepAxes axes = {});

    const SweepAxes &axes() const { return _axes; }

    /**
     * Run the sweep over @p corpus. With @p parallel the (trace,
     * config) jobs are sharded over the TaskGroup scheduler; the result
     * is byte-identical either way.
     * @throws std::runtime_error when the corpus is empty, a trace file
     *         fails to parse, or a trace lacks a workload summary.
     */
    DseResult run(const Corpus &corpus, bool parallel = true) const;

  private:
    SweepAxes _axes;
};

} // namespace cicero::dse

#endif // CICERO_DSE_DRIVER_HH
