/**
 * @file
 * Accelerator-model replay stacks: run every `src/accel/` model — GPU,
 * NPU, Gathering Unit, and the NeuRex/NGPC baselines — from a
 * TraceSourceFn, exactly like the memory-model stacks in
 * memory/replay.hh.
 *
 * The access stream alone does not determine an accelerator price:
 * the models consume derived quantities (StageWork op counts, the
 * encoding's StreamPlan, the vertex feature size) that the renderer
 * measures at capture time. Trace containers therefore persist a
 * TraceWorkloadSummary (file version 2) holding those exact integers;
 * a TraceWorkloadDescriptor is its in-memory form. A live run derives
 * the descriptor with measureWorkload(); a replay run recovers the
 * identical integers with workloadFromTrace() — so replayed
 * accelerator stats are bit-identical to live ones, extending the
 * capture-once / replay-many contract from the memory stacks to the
 * full accelerator models.
 *
 * Each stack still consumes the access stream: the GPU stack measures
 * its GatherProfile (cache miss rate, DRAM random fraction) from it,
 * the GU and baseline stacks run bank-conflict simulations over it,
 * and the NPU stack counts it — every replayed byte is observed, so a
 * stream/summary mismatch shows up in the stats.
 */

#ifndef CICERO_DSE_ACCEL_REPLAY_HH
#define CICERO_DSE_ACCEL_REPLAY_HH

#include <cstdint>
#include <string>

#include "accel/baseline_accels.hh"
#include "accel/gathering_unit.hh"
#include "accel/gpu_model.hh"
#include "accel/npu_model.hh"
#include "memory/replay.hh"
#include "nerf/encoding.hh"
#include "nerf/renderer.hh"
#include "nerf/workload.hh"

namespace cicero {

/**
 * The capture-time quantities an accelerator model needs beyond the
 * access stream. In-memory (typed) counterpart of the container's
 * TraceWorkloadSummary.
 */
struct TraceWorkloadDescriptor
{
    StageWork work;              //!< frame op counts
    StreamPlan plan;             //!< encoding streaming footprint
    std::uint32_t vertexBytes = 0; //!< bytes of one feature vector
};

/** Convert a descriptor to the container's serialized form. */
TraceWorkloadSummary toSummary(const TraceWorkloadDescriptor &desc);

/** Convert the container's serialized form back to a descriptor. */
TraceWorkloadDescriptor fromSummary(const TraceWorkloadSummary &summary);

/**
 * Measure the workload descriptor live: op counts from a functional
 * trace pass, the streaming footprint from the encoding, the vertex
 * size from the feature dimension.
 */
TraceWorkloadDescriptor measureWorkload(const NerfModel &model,
                                        const Camera &cam);

/**
 * Recover the descriptor persisted in a trace container.
 * @throws std::runtime_error when the file predates version 2 or was
 *         captured without a summary.
 */
TraceWorkloadDescriptor workloadFromTrace(const TraceFileReader &reader);

/** Live trace source: emits the model's gather stream for @p cam. */
inline TraceSourceFn
liveSource(const NerfModel &model, const Camera &cam)
{
    return [&model, cam](TraceSink *sink) {
        model.traceWorkload(cam, sink);
    };
}

// ---------------------------------------------------------------------
// GPU stack
// ---------------------------------------------------------------------

/** GPU stack: cache + DRAM probes feeding the analytic GPU model. */
struct GpuStackConfig
{
    GpuConfig gpu;               //!< includes the DRAM device (gpu.dram)
    CacheConfig cache;           //!< gather cache probed for miss rate
    std::uint32_t warpWays = 32; //!< warp interleaving in front of it
    EnergyConstants energy;
};

struct GpuStackResult
{
    GpuStageTimes times;       //!< per-stage ms for the full frame
    GatherProfile profile;     //!< measured from the replayed stream
    double timeMs = 0.0;       //!< full-frame GPU time
    double energyNj = 0.0;     //!< busy energy + gather DRAM energy
    std::uint64_t accesses = 0;
    std::uint64_t rays = 0;
};

/**
 * Replay @p source through warp-interleaved cache and DRAM probes (the
 * probe.cc arrangement), then price the frame on the GPU model with the
 * measured profile.
 */
GpuStackResult runGpuStack(const TraceSourceFn &source,
                           const TraceWorkloadDescriptor &desc,
                           const GpuStackConfig &config = {});

// ---------------------------------------------------------------------
// NPU stack
// ---------------------------------------------------------------------

struct NpuStackResult
{
    double mlpMs = 0.0;
    double scalarMs = 0.0;
    double timeMs = 0.0;       //!< mlp + scalar (shared datapath)
    double energyNj = 0.0;     //!< busy energy + MAC energy
    std::uint64_t accesses = 0;
    std::uint64_t rays = 0;
};

/** Replay @p source (counted) and price MLP + compositing on the NPU. */
NpuStackResult runNpuStack(const TraceSourceFn &source,
                           const TraceWorkloadDescriptor &desc,
                           const NpuConfig &config = {},
                           const EnergyConstants &energy = {});

// ---------------------------------------------------------------------
// Gathering Unit stack
// ---------------------------------------------------------------------

struct GuStackConfig
{
    GatheringUnitConfig gu;
    DramConfig dram;
    EnergyConstants energy;
    std::uint32_t concurrentRays = 16; //!< bank-sim ray slots
};

struct GuStackResult
{
    GuCost cost;                    //!< analytic GU price of the plan
    BankConflictStats channelMajor; //!< measured on the replayed stream
    std::uint64_t accesses = 0;
    std::uint64_t rays = 0;
};

/**
 * Replay @p source through a channel-major bank-conflict simulation
 * (verifying the GU's conflict-freedom on this very stream) and price
 * the descriptor's StreamPlan on the GU model.
 */
GuStackResult runGuStack(const TraceSourceFn &source,
                         const TraceWorkloadDescriptor &desc,
                         const GuStackConfig &config = {});

// ---------------------------------------------------------------------
// Baseline accelerators stack (NeuRex + NGPC)
// ---------------------------------------------------------------------

struct BaselineStackConfig
{
    NeurexConfig neurex;
    NgpcConfig ngpc;
    SramBankConfig bank; //!< feature-major sim; featureBytes comes from
                         //!< the descriptor's vertex size
    DramConfig dram;
    EnergyConstants energy;
};

struct BaselineStackResult
{
    AccelFrameCost neurex;
    AccelFrameCost ngpc;
    double bankConflictRate = 0.0; //!< measured feature-major rate
    std::uint64_t accesses = 0;
    std::uint64_t rays = 0;
};

/**
 * Replay @p source through a feature-major bank-conflict simulation
 * (NeuRex's layout) and price the frame on both baseline models.
 */
BaselineStackResult runBaselineStack(const TraceSourceFn &source,
                                     const TraceWorkloadDescriptor &desc,
                                     const BaselineStackConfig &config = {});

/**
 * Deterministic JSON for the accelerator stacks — same contract as the
 * memory-stack statsJson overloads: integers verbatim, fixed-precision
 * floats, byte-identical strings for equal results.
 */
std::string statsJson(const GpuStackResult &result);
std::string statsJson(const NpuStackResult &result);
std::string statsJson(const GuStackResult &result);
std::string statsJson(const BaselineStackResult &result);

} // namespace cicero

#endif // CICERO_DSE_ACCEL_REPLAY_HH
