#include "dse/corpus.hh"

#include <cerrno>
#include <cstdio>
#include <stdexcept>

#include "common/errors.hh"
#include "dse/minijson.hh"

namespace cicero::dse {

namespace {

std::string
readFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        throw IoError("cannot open corpus file", path, errno);
    std::string out;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    bool readError = std::ferror(f) != 0;
    int readErrno = errno;
    std::fclose(f);
    if (readError)
        throw IoError("read error on corpus file", path, readErrno);
    return out;
}

void
writeFile(const std::string &path, const std::string &text)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        throw IoError("cannot write corpus file", path, errno);
    std::size_t n = std::fwrite(text.data(), 1, text.size(), f);
    int writeErrno = errno;
    bool closed = std::fclose(f) == 0;
    if (n != text.size())
        throw IoError("short write to corpus file", path, writeErrno);
    if (!closed)
        throw IoError("cannot finalize corpus file", path, errno);
}

} // namespace

Corpus::Corpus(std::string dir) : _dir(std::move(dir))
{
}

Corpus
Corpus::load(const std::string &dir)
{
    return fromManifestJson(readFile(dir + "/corpus.json"), dir);
}

Corpus
Corpus::fromManifestJson(const std::string &json, const std::string &dir)
{
    JsonValue root = parseJson(json);
    if (!root.isObject())
        throw std::runtime_error("corpus manifest: root must be an object");
    const JsonValue *entries = root.find("entries");
    if (!entries)
        throw std::runtime_error(
            "corpus manifest: missing \"entries\" array");
    Corpus corpus(dir);
    for (const JsonValue &e : entries->asArray("entries")) {
        if (!e.isObject())
            throw std::runtime_error(
                "corpus manifest: entries must be objects");
        const JsonValue *id = e.find("id");
        const JsonValue *file = e.find("file");
        if (!id)
            throw std::runtime_error(
                "corpus manifest: entry missing \"id\"");
        if (!file)
            throw std::runtime_error(
                "corpus manifest: entry \"" + id->asString("id") +
                "\" missing \"file\"");
        CorpusEntry entry;
        entry.id = id->asString("id");
        entry.file = file->asString("file");
        if (const JsonValue *v = e.find("scene"))
            entry.scene = v->asString("scene");
        if (const JsonValue *v = e.find("model"))
            entry.model = v->asString("model");
        if (const JsonValue *v = e.find("encoding"))
            entry.encoding = v->asString("encoding");
        if (const JsonValue *v = e.find("res"))
            entry.res = static_cast<std::uint32_t>(v->asU64("res"));
        if (const JsonValue *v = e.find("frame"))
            entry.frame = static_cast<std::uint32_t>(v->asU64("frame"));
        if (const JsonValue *v = e.find("preset"))
            entry.preset = v->asString("preset");
        if (const JsonValue *v = e.find("layout"))
            entry.layout = v->asString("layout");
        if (const JsonValue *v = e.find("fp16"))
            entry.fp16 = v->asBool("fp16");
        corpus.add(std::move(entry));
    }
    return corpus;
}

void
Corpus::add(CorpusEntry entry)
{
    if (findEntry(entry.id))
        throw std::runtime_error("corpus: duplicate entry id \"" +
                                 entry.id + "\"");
    _entries.push_back(std::move(entry));
}

std::string
Corpus::manifestJson() const
{
    std::string out = "{\n  \"version\": 1,\n  \"entries\": [";
    bool first = true;
    for (const CorpusEntry &e : _entries) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    {\"id\": \"" + jsonEscape(e.id) + "\", \"file\": \"" +
               jsonEscape(e.file) + "\", \"scene\": \"" +
               jsonEscape(e.scene) + "\", \"model\": \"" +
               jsonEscape(e.model) + "\", \"encoding\": \"" +
               jsonEscape(e.encoding) +
               "\", \"res\": " + std::to_string(e.res) +
               ", \"frame\": " + std::to_string(e.frame) +
               ", \"preset\": \"" + jsonEscape(e.preset) +
               "\", \"layout\": \"" + jsonEscape(e.layout) +
               "\", \"fp16\": " + (e.fp16 ? "true" : "false") + "}";
    }
    out += "\n  ]\n}\n";
    return out;
}

void
Corpus::save() const
{
    writeFile(_dir + "/corpus.json", manifestJson());
}

std::string
Corpus::tracePath(const CorpusEntry &entry) const
{
    return _dir + "/" + entry.file;
}

const CorpusEntry *
Corpus::findEntry(const std::string &id) const
{
    for (const CorpusEntry &e : _entries)
        if (e.id == id)
            return &e;
    return nullptr;
}

} // namespace cicero::dse
