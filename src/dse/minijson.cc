#include "dse/minijson.hh"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace cicero::dse {

namespace {

[[noreturn]] void
fail(std::size_t pos, const std::string &what)
{
    throw JsonParseError(what, pos);
}

class Parser
{
  public:
    explicit Parser(const std::string &text) : _text(text) {}

    JsonValue
    document()
    {
        JsonValue v = value();
        skipWs();
        if (_pos != _text.size())
            fail(_pos, "trailing garbage after document");
        return v;
    }

  private:
    const std::string &_text;
    std::size_t _pos = 0;
    std::size_t _depth = 0;

    /** Depth guard: recursion bounded so deep nesting fails typed. */
    struct DepthScope
    {
        Parser &p;
        explicit DepthScope(Parser &parser) : p(parser)
        {
            if (++p._depth > kJsonMaxDepth)
                fail(p._pos, "nesting too deep");
        }
        ~DepthScope() { --p._depth; }
    };

    void
    skipWs()
    {
        while (_pos < _text.size()) {
            char c = _text[_pos];
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
                ++_pos;
            else
                break;
        }
    }

    char
    peek()
    {
        if (_pos >= _text.size())
            fail(_pos, "unexpected end of input");
        return _text[_pos];
    }

    void
    expect(char c)
    {
        if (_pos >= _text.size() || _text[_pos] != c)
            fail(_pos, std::string("expected '") + c + "'");
        ++_pos;
    }

    bool
    consumeWord(const char *word)
    {
        std::size_t n = 0;
        while (word[n])
            ++n;
        if (_text.compare(_pos, n, word) != 0)
            return false;
        _pos += n;
        return true;
    }

    JsonValue
    value()
    {
        DepthScope depth(*this);
        skipWs();
        char c = peek();
        switch (c) {
          case '{':
            return object();
          case '[':
            return array();
          case '"':
            return stringValue();
          case 't':
          case 'f':
            return boolValue();
          case 'n':
            if (!consumeWord("null"))
                fail(_pos, "invalid literal");
            return JsonValue{};
          default:
            if (c == '-' || (c >= '0' && c <= '9'))
                return numberValue();
            fail(_pos, "unexpected character");
        }
    }

    JsonValue
    object()
    {
        expect('{');
        JsonValue v;
        v.kind = JsonValue::Kind::Object;
        skipWs();
        if (peek() == '}') {
            ++_pos;
            return v;
        }
        for (;;) {
            skipWs();
            if (peek() != '"')
                fail(_pos, "expected object key string");
            std::string key = stringBody();
            skipWs();
            expect(':');
            v.members.emplace_back(std::move(key), value());
            skipWs();
            char c = peek();
            if (c == ',') {
                ++_pos;
                continue;
            }
            if (c == '}') {
                ++_pos;
                return v;
            }
            fail(_pos, "expected ',' or '}' in object");
        }
    }

    JsonValue
    array()
    {
        expect('[');
        JsonValue v;
        v.kind = JsonValue::Kind::Array;
        skipWs();
        if (peek() == ']') {
            ++_pos;
            return v;
        }
        for (;;) {
            v.items.push_back(value());
            skipWs();
            char c = peek();
            if (c == ',') {
                ++_pos;
                continue;
            }
            if (c == ']') {
                ++_pos;
                return v;
            }
            fail(_pos, "expected ',' or ']' in array");
        }
    }

    JsonValue
    stringValue()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::String;
        v.str = stringBody();
        return v;
    }

    std::string
    stringBody()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (_pos >= _text.size())
                fail(_pos, "unterminated string");
            char c = _text[_pos++];
            if (c == '"')
                return out;
            if (c == '\\') {
                if (_pos >= _text.size())
                    fail(_pos, "unterminated escape");
                char e = _text[_pos++];
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'u': {
                    if (_pos + 4 > _text.size())
                        fail(_pos, "truncated \\u escape");
                    unsigned cp = 0;
                    for (int i = 0; i < 4; ++i) {
                        char h = _text[_pos++];
                        cp <<= 4;
                        if (h >= '0' && h <= '9')
                            cp |= h - '0';
                        else if (h >= 'a' && h <= 'f')
                            cp |= h - 'a' + 10;
                        else if (h >= 'A' && h <= 'F')
                            cp |= h - 'A' + 10;
                        else
                            fail(_pos - 1, "bad hex digit in \\u escape");
                    }
                    // UTF-8 encode the BMP code point (surrogate pairs
                    // land as two 3-byte sequences; fine for our inputs).
                    if (cp < 0x80) {
                        out += static_cast<char>(cp);
                    } else if (cp < 0x800) {
                        out += static_cast<char>(0xC0 | (cp >> 6));
                        out += static_cast<char>(0x80 | (cp & 0x3F));
                    } else {
                        out += static_cast<char>(0xE0 | (cp >> 12));
                        out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
                        out += static_cast<char>(0x80 | (cp & 0x3F));
                    }
                    break;
                  }
                  default:
                    fail(_pos - 1, "unknown escape");
                }
            } else {
                out += c;
            }
        }
    }

    JsonValue
    boolValue()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Bool;
        if (consumeWord("true"))
            v.boolean = true;
        else if (consumeWord("false"))
            v.boolean = false;
        else
            fail(_pos, "invalid literal");
        return v;
    }

    JsonValue
    numberValue()
    {
        // Strict JSON grammar, validated before conversion:
        //   -? (0 | [1-9][0-9]*) (. [0-9]+)? ([eE] [+-]? [0-9]+)?
        // strtod alone is far too permissive ("01", "1.", ".5", "0x2",
        // "inf" all convert) and the fuzz contract needs these
        // rejected typed.
        const std::size_t start = _pos;
        auto digits = [this]() -> int {
            int n = 0;
            while (_pos < _text.size() && _text[_pos] >= '0' &&
                   _text[_pos] <= '9') {
                ++_pos;
                ++n;
            }
            return n;
        };

        if (_pos < _text.size() && _text[_pos] == '-')
            ++_pos;
        if (_pos < _text.size() && _text[_pos] == '0') {
            ++_pos;
            if (_pos < _text.size() && _text[_pos] >= '0' &&
                _text[_pos] <= '9')
                fail(start, "leading zero in number");
        } else if (digits() == 0) {
            fail(start, "malformed number");
        }
        if (_pos < _text.size() && _text[_pos] == '.') {
            ++_pos;
            if (digits() == 0)
                fail(start, "missing digits after decimal point");
        }
        if (_pos < _text.size() &&
            (_text[_pos] == 'e' || _text[_pos] == 'E')) {
            ++_pos;
            if (_pos < _text.size() &&
                (_text[_pos] == '+' || _text[_pos] == '-'))
                ++_pos;
            if (digits() == 0)
                fail(start, "missing digits in exponent");
        }

        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        try {
            std::size_t used = 0;
            v.number = std::stod(_text.substr(start, _pos - start), &used);
            if (used != _pos - start)
                fail(start, "malformed number");
        } catch (const std::logic_error &) {
            fail(start, "malformed number");
        }
        return v;
    }
};

} // namespace

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &m : members)
        if (m.first == key)
            return &m.second;
    return nullptr;
}

const std::string &
JsonValue::asString(const std::string &what) const
{
    if (kind != Kind::String)
        throw std::runtime_error("json: " + what + " must be a string");
    return str;
}

double
JsonValue::asNumber(const std::string &what) const
{
    if (kind != Kind::Number)
        throw std::runtime_error("json: " + what + " must be a number");
    return number;
}

std::uint64_t
JsonValue::asU64(const std::string &what) const
{
    double n = asNumber(what);
    if (n < 0 || n != std::floor(n))
        throw std::runtime_error("json: " + what +
                                 " must be a non-negative integer");
    return static_cast<std::uint64_t>(n);
}

bool
JsonValue::asBool(const std::string &what) const
{
    if (kind != Kind::Bool)
        throw std::runtime_error("json: " + what + " must be a boolean");
    return boolean;
}

const std::vector<JsonValue> &
JsonValue::asArray(const std::string &what) const
{
    if (kind != Kind::Array)
        throw std::runtime_error("json: " + what + " must be an array");
    return items;
}

JsonValue
parseJson(const std::string &text)
{
    return Parser(text).document();
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace cicero::dse
