#include "dse/accel_replay.hh"

#include <cstdio>
#include <stdexcept>

#include "memory/cache_model.hh"
#include "memory/dram_model.hh"
#include "memory/sram_bank_model.hh"
#include "memory/trace.hh"

namespace cicero {

namespace {

std::string
fmt(const char *format, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), format, v);
    return buf;
}

std::string
u64s(std::uint64_t v)
{
    return std::to_string(v);
}

/** Counts the stream so every stack observes what it replayed. */
class CountingSink : public TraceSink
{
  public:
    void
    onAccess(const MemAccess &) override
    {
        ++accesses;
    }

    void
    onRayEnd(std::uint32_t) override
    {
        ++rays;
    }

    void onFlush() override {}

    std::uint64_t accesses = 0;
    std::uint64_t rays = 0;
};

} // namespace

TraceWorkloadSummary
toSummary(const TraceWorkloadDescriptor &desc)
{
    TraceWorkloadSummary s;
    s.rays = desc.work.rays;
    s.samples = desc.work.samples;
    s.indexOps = desc.work.indexOps;
    s.vertexFetches = desc.work.vertexFetches;
    s.gatherBytes = desc.work.gatherBytes;
    s.interpOps = desc.work.interpOps;
    s.mlpMacs = desc.work.mlpMacs;
    s.compositeOps = desc.work.compositeOps;
    s.streamedBytes = desc.plan.streamedBytes;
    s.randomBytes = desc.plan.randomBytes;
    s.ritEntries = desc.plan.ritEntries;
    s.ritBytes = desc.plan.ritBytes;
    s.vertexBytes = desc.vertexBytes;
    return s;
}

TraceWorkloadDescriptor
fromSummary(const TraceWorkloadSummary &summary)
{
    TraceWorkloadDescriptor d;
    d.work.rays = summary.rays;
    d.work.samples = summary.samples;
    d.work.indexOps = summary.indexOps;
    d.work.vertexFetches = summary.vertexFetches;
    d.work.gatherBytes = summary.gatherBytes;
    d.work.interpOps = summary.interpOps;
    d.work.mlpMacs = summary.mlpMacs;
    d.work.compositeOps = summary.compositeOps;
    d.plan.streamedBytes = summary.streamedBytes;
    d.plan.randomBytes = summary.randomBytes;
    d.plan.ritEntries = summary.ritEntries;
    d.plan.ritBytes = summary.ritBytes;
    d.vertexBytes = summary.vertexBytes;
    return d;
}

TraceWorkloadDescriptor
measureWorkload(const NerfModel &model, const Camera &cam)
{
    TraceWorkloadDescriptor desc;
    desc.work = model.traceWorkload(cam, nullptr);
    desc.plan = model.encoding().streamingFootprint(
        model.collectSamplePositions(cam));
    desc.vertexBytes = model.encoding().featureDim() * kBytesPerChannel;
    return desc;
}

TraceWorkloadDescriptor
workloadFromTrace(const TraceFileReader &reader)
{
    if (!reader.hasWorkloadSummary())
        throw std::runtime_error(
            "trace has no workload summary (captured with a pre-v2 "
            "writer?); re-capture to replay accelerator models");
    return fromSummary(reader.workloadSummary());
}

GpuStackResult
runGpuStack(const TraceSourceFn &source,
            const TraceWorkloadDescriptor &desc,
            const GpuStackConfig &config)
{
    // The probe.cc arrangement: warp interleaving in front of the cache
    // and DRAM probes, the raw stream counted on the side.
    DramModel dram(config.gpu.dram);
    LruCache cache(config.cache);
    WarpInterleaver interleaver(config.warpWays);
    interleaver.addSink(&dram);
    interleaver.addSink(&cache);
    CountingSink counter;
    TraceTee tee;
    tee.addSink(&interleaver);
    tee.addSink(&counter);
    source(&tee);

    GpuStackResult result;
    result.accesses = counter.accesses;
    result.rays = counter.rays;
    result.profile.cacheMissRate = cache.stats().missRate();
    result.profile.randomFraction = dram.stats().nonStreamingFraction();

    GpuModel gpu(config.gpu);
    result.times = gpu.timeNerfFrame(desc.work, result.profile);
    result.timeMs = result.times.totalMs();
    result.energyNj =
        gpu.energyNj(result.timeMs) +
        gpu.gatherDramEnergyNj(desc.work, result.profile, config.energy);
    return result;
}

NpuStackResult
runNpuStack(const TraceSourceFn &source,
            const TraceWorkloadDescriptor &desc, const NpuConfig &config,
            const EnergyConstants &energy)
{
    CountingSink counter;
    source(&counter);

    NpuModel npu(config);
    NpuStackResult result;
    result.accesses = counter.accesses;
    result.rays = counter.rays;
    result.mlpMs = npu.mlpTimeMs(desc.work.mlpMacs);
    result.scalarMs = npu.scalarTimeMs(desc.work.compositeOps);
    result.timeMs = result.mlpMs + result.scalarMs;
    result.energyNj = npu.energyNj(result.timeMs) +
                      npu.macEnergyNj(desc.work.mlpMacs, energy);
    return result;
}

GuStackResult
runGuStack(const TraceSourceFn &source,
           const TraceWorkloadDescriptor &desc, const GuStackConfig &config)
{
    // Channel-major bank simulation over the replayed stream verifies
    // the GU's conflict-freedom claim on this trace, not by assumption.
    SramBankConfig bank;
    bank.numBanks = config.gu.banks;
    bank.portsPerBank = config.gu.ports;
    bank.concurrentRays = config.concurrentRays;
    bank.featureBytes = desc.vertexBytes ? desc.vertexBytes
                                         : bank.featureBytes;
    bank.layout = SramLayout::ChannelMajor;
    BankConflictSim sim(bank);
    CountingSink counter;
    TraceTee tee;
    tee.addSink(&sim);
    tee.addSink(&counter);
    source(&tee);

    GuStackResult result;
    result.accesses = counter.accesses;
    result.rays = counter.rays;
    result.channelMajor = sim.stats();
    result.cost = GatheringUnitModel(config.gu).price(
        desc.plan, desc.vertexBytes, config.dram, config.energy);
    return result;
}

BaselineStackResult
runBaselineStack(const TraceSourceFn &source,
                 const TraceWorkloadDescriptor &desc,
                 const BaselineStackConfig &config)
{
    SramBankConfig bank = config.bank;
    bank.featureBytes = desc.vertexBytes ? desc.vertexBytes
                                         : bank.featureBytes;
    bank.layout = SramLayout::FeatureMajor;
    BankConflictSim sim(bank);
    CountingSink counter;
    TraceTee tee;
    tee.addSink(&sim);
    tee.addSink(&counter);
    source(&tee);

    BaselineStackResult result;
    result.accesses = counter.accesses;
    result.rays = counter.rays;
    result.bankConflictRate = sim.stats().conflictRate();
    result.neurex = NeurexModel(config.neurex)
                        .price(desc.work, result.bankConflictRate,
                               config.dram, config.energy);
    result.ngpc = NgpcModel(config.ngpc).price(desc.work, config.energy);
    return result;
}

namespace {

std::string
accelCostFields(const AccelFrameCost &c)
{
    return "\"gather_ms\": " + fmt("%.6f", c.gatherMs) +
           ", \"mlp_ms\": " + fmt("%.6f", c.mlpMs) +
           ", \"time_ms\": " + fmt("%.6f", c.timeMs) +
           ", \"energy_nj\": " + fmt("%.3f", c.energyNj);
}

} // namespace

std::string
statsJson(const GpuStackResult &result)
{
    return "{\"stack\": \"gpu\", \"accesses\": " + u64s(result.accesses) +
           ", \"rays\": " + u64s(result.rays) +
           ", \"index_ms\": " + fmt("%.6f", result.times.indexMs) +
           ", \"gather_ms\": " + fmt("%.6f", result.times.gatherMs) +
           ", \"mlp_ms\": " + fmt("%.6f", result.times.mlpMs) +
           ", \"composite_ms\": " + fmt("%.6f", result.times.compositeMs) +
           ", \"time_ms\": " + fmt("%.6f", result.timeMs) +
           ", \"cache_miss_rate\": " +
           fmt("%.6f", result.profile.cacheMissRate) +
           ", \"random_fraction\": " +
           fmt("%.6f", result.profile.randomFraction) +
           ", \"energy_nj\": " + fmt("%.3f", result.energyNj) + "}";
}

std::string
statsJson(const NpuStackResult &result)
{
    return "{\"stack\": \"npu\", \"accesses\": " + u64s(result.accesses) +
           ", \"rays\": " + u64s(result.rays) +
           ", \"mlp_ms\": " + fmt("%.6f", result.mlpMs) +
           ", \"scalar_ms\": " + fmt("%.6f", result.scalarMs) +
           ", \"time_ms\": " + fmt("%.6f", result.timeMs) +
           ", \"energy_nj\": " + fmt("%.3f", result.energyNj) + "}";
}

std::string
statsJson(const GuStackResult &result)
{
    return "{\"stack\": \"gu\", \"accesses\": " + u64s(result.accesses) +
           ", \"rays\": " + u64s(result.rays) +
           ", \"compute_ms\": " + fmt("%.6f", result.cost.computeMs) +
           ", \"dram_ms\": " + fmt("%.6f", result.cost.dramMs) +
           ", \"time_ms\": " + fmt("%.6f", result.cost.timeMs) +
           ", \"cycles\": " + u64s(result.cost.cycles) +
           ", \"bank_requests\": " + u64s(result.channelMajor.requests) +
           ", \"bank_stalls\": " + u64s(result.channelMajor.stalls) +
           ", \"conflict_rate\": " +
           fmt("%.6f", result.channelMajor.conflictRate()) +
           ", \"energy_nj\": " + fmt("%.3f", result.cost.energyNj) + "}";
}

std::string
statsJson(const BaselineStackResult &result)
{
    return "{\"stack\": \"baselines\", \"accesses\": " +
           u64s(result.accesses) + ", \"rays\": " + u64s(result.rays) +
           ", \"bank_conflict_rate\": " +
           fmt("%.6f", result.bankConflictRate) + ", \"neurex\": {" +
           accelCostFields(result.neurex) + "}, \"ngpc\": {" +
           accelCostFields(result.ngpc) + "}}";
}

} // namespace cicero
