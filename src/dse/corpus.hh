/**
 * @file
 * Trace corpus: a directory of `.ctrace` captures described by a
 * `corpus.json` manifest, keyed scene x encoding x resolution. The
 * corpus is the unit of input to the DSE driver — one sweep prices
 * every configuration against every trace in the corpus — and the
 * manifest carries enough capture metadata (scene, model kind, preset,
 * resolution, frame index) to re-render any entry live and check the
 * replay against it.
 *
 * Manifest format:
 * @code
 * {
 *   "version": 1,
 *   "entries": [
 *     {"id": "lego_dvgo_48_f0", "file": "lego_dvgo_48_f0.ctrace",
 *      "scene": "lego", "model": "dvgo", "encoding": "dense-grid",
 *      "res": 48, "frame": 0, "preset": "fast", "fp16": false}
 *   ]
 * }
 * @endcode
 */

#ifndef CICERO_DSE_CORPUS_HH
#define CICERO_DSE_CORPUS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace cicero::dse {

/** One captured trace in a corpus. */
struct CorpusEntry
{
    std::string id;       //!< unique key, e.g. "lego_dvgo_48_f0"
    std::string file;     //!< trace filename, relative to the corpus dir
    std::string scene;    //!< scene name ("lego", "chair", ...)
    std::string model;    //!< model kind name ("dvgo", "ngp", "tensorf")
    std::string encoding; //!< encoding name recorded at capture
    std::uint32_t res = 0;   //!< square render resolution
    std::uint32_t frame = 0; //!< orbit frame index captured
    std::string preset = "fast"; //!< model build preset
    std::string layout = "linear"; //!< grid layout ("linear"/"mvoxel")
    bool fp16 = false;    //!< capture used fp16 feature storage
};

/**
 * A manifest-described directory of traces.
 */
class Corpus
{
  public:
    /** An empty corpus rooted at @p dir (for building then save()). */
    explicit Corpus(std::string dir);

    /**
     * Load @p dir/corpus.json.
     * @throws std::runtime_error on a missing or malformed manifest.
     */
    static Corpus load(const std::string &dir);

    /**
     * Parse a manifest text for a corpus rooted at @p dir.
     * @throws std::runtime_error on malformed JSON, a non-object root,
     *         a missing "entries" array, entries missing "id"/"file",
     *         or duplicate ids.
     */
    static Corpus fromManifestJson(const std::string &json,
                                   const std::string &dir);

    /** Append an entry. @throws std::runtime_error on a duplicate id. */
    void add(CorpusEntry entry);

    /** Write the manifest to dir()/corpus.json. */
    void save() const;

    /** Deterministic manifest serialization (fixed field order). */
    std::string manifestJson() const;

    const std::string &dir() const { return _dir; }
    const std::vector<CorpusEntry> &entries() const { return _entries; }
    bool empty() const { return _entries.empty(); }
    std::size_t size() const { return _entries.size(); }

    /** Absolute-or-relative path of an entry's trace file. */
    std::string tracePath(const CorpusEntry &entry) const;

    /** Entry by id; nullptr when absent. */
    const CorpusEntry *findEntry(const std::string &id) const;

  private:
    std::string _dir;
    std::vector<CorpusEntry> _entries;
};

} // namespace cicero::dse

#endif // CICERO_DSE_CORPUS_HH
