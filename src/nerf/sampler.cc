#include "nerf/sampler.hh"

#include <cassert>
#include <cmath>

namespace cicero {

OccupancyGrid::OccupancyGrid(const AnalyticField &field, int res,
                             float sigmaThresh)
    : _res(res), _bounds(field.bounds()),
      _cells(static_cast<std::size_t>(res) * res * res, 0)
{
    assert(res >= 2);
    Vec3 e = _bounds.extent();
    // Sample cell centers, then dilate by one cell so thin or grazing
    // features are never skipped.
    _raw.assign(_cells.size(), 0);
    std::vector<char> &raw = _raw;
    for (int z = 0; z < res; ++z) {
        for (int y = 0; y < res; ++y) {
            for (int x = 0; x < res; ++x) {
                Vec3 p{_bounds.lo.x + e.x * (x + 0.5f) / res,
                       _bounds.lo.y + e.y * (y + 0.5f) / res,
                       _bounds.lo.z + e.z * (z + 0.5f) / res};
                raw[idx(x, y, z)] = field.density(p) > sigmaThresh;
            }
        }
    }
    for (int z = 0; z < res; ++z) {
        for (int y = 0; y < res; ++y) {
            for (int x = 0; x < res; ++x) {
                bool occ = false;
                for (int dz = -1; dz <= 1 && !occ; ++dz) {
                    for (int dy = -1; dy <= 1 && !occ; ++dy) {
                        for (int dx = -1; dx <= 1 && !occ; ++dx) {
                            int nx = x + dx, ny = y + dy, nz = z + dz;
                            if (nx < 0 || ny < 0 || nz < 0 || nx >= res ||
                                ny >= res || nz >= res)
                                continue;
                            occ = raw[idx(nx, ny, nz)];
                        }
                    }
                }
                _cells[idx(x, y, z)] = occ;
            }
        }
    }
}

bool
OccupancyGrid::occupiedNormalized(const Vec3 &pn) const
{
    int x = clamp(static_cast<int>(pn.x * _res), 0, _res - 1);
    int y = clamp(static_cast<int>(pn.y * _res), 0, _res - 1);
    int z = clamp(static_cast<int>(pn.z * _res), 0, _res - 1);
    return _cells[idx(x, y, z)];
}

bool
OccupancyGrid::occupied(const Vec3 &p) const
{
    if (!_bounds.contains(p))
        return false;
    return occupiedNormalized(_bounds.normalize(p));
}

bool
OccupancyGrid::rayHitsOccupied(const Ray &ray) const
{
    auto hit = _bounds.intersect(ray);
    if (!hit)
        return false;
    auto [t0, t1] = *hit;
    float cell = _bounds.extent().minComponent() / _res;
    float step = 0.5f * cell;
    for (float t = t0 + 0.5f * step; t < t1; t += step) {
        Vec3 p = ray.at(t);
        if (!_bounds.contains(p))
            continue;
        Vec3 pn = _bounds.normalize(p);
        int x = clamp(static_cast<int>(pn.x * _res), 0, _res - 1);
        int y = clamp(static_cast<int>(pn.y * _res), 0, _res - 1);
        int z = clamp(static_cast<int>(pn.z * _res), 0, _res - 1);
        if (_raw[idx(x, y, z)])
            return true;
    }
    return false;
}

double
OccupancyGrid::occupancyFraction() const
{
    std::size_t occ = 0;
    for (char c : _cells)
        occ += c;
    return static_cast<double>(occ) / _cells.size();
}

RaySampler::RaySampler(const Aabb &bounds, const OccupancyGrid *occupancy,
                       const SamplerConfig &config)
    : _bounds(bounds), _occupancy(occupancy), _config(config),
      _step(bounds.extent().norm() / config.stepsAcross)
{
}

int
RaySampler::sample(const Ray &ray, std::vector<RaySample> &out) const
{
    out.clear();
    auto hit = _bounds.intersect(ray);
    if (!hit)
        return 0;
    auto [t0, t1] = *hit;

    Vec3 e = _bounds.extent();
    for (float t = t0 + 0.5f * _step;
         t < t1 &&
         static_cast<int>(out.size()) < _config.maxSamplesPerRay;
         t += _step) {
        Vec3 p = ray.at(t);
        Vec3 pn{(p.x - _bounds.lo.x) / e.x, (p.y - _bounds.lo.y) / e.y,
                (p.z - _bounds.lo.z) / e.z};
        if (_occupancy && !_occupancy->occupiedNormalized(pn))
            continue;
        out.push_back(RaySample{p, pn, t, _step});
    }
    return static_cast<int>(out.size());
}

} // namespace cicero
