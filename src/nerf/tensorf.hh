/**
 * @file
 * Factorized-tensor encoding (TensoRF-like VM decomposition).
 *
 * The field is represented as a sum over three axis groupings of
 * rank-R (plane x line) outer products:
 *   T[ch](x,y,z) ~= sum_g sum_r P_{g,r}[ch](u,v) * L_{g,r}[ch](w)
 * with (u,v | w) = (x,y | z), (x,z | y), (y,z | x).
 *
 * Baking runs a greedy rank-1 deflation (alternating least squares power
 * iterations) against the dense ground-truth tensor, so reconstruction
 * error behaves like a real low-rank fit.
 *
 * Plane texels store all ranks x channels contiguously, so a sample
 * gather issues 4 plane + 2 line fetches per grouping (18 per sample).
 */

#ifndef CICERO_NERF_TENSORF_HH
#define CICERO_NERF_TENSORF_HH

#include "nerf/decoder.hh"
#include "nerf/encoding.hh"

namespace cicero {

/** TensoRF shape parameters. */
struct TensoRFConfig
{
    int res = 96;   //!< grid points per axis for planes and lines
    int ranks = 4;  //!< components per axis grouping
    int alsIters = 3; //!< power-iteration sweeps per rank-1 fit
    int blockTexels = 8; //!< streaming block edge (8x8 texels)
};

class TensoRFEncoding : public Encoding
{
  public:
    explicit TensoRFEncoding(const TensoRFConfig &config = {});

    std::string name() const override { return "tensorf"; }
    int featureDim() const override { return kFeatureDim; }
    std::uint64_t modelBytes() const override;
    std::uint32_t fetchesPerSample() const override { return 3 * 6; }
    std::uint64_t interpOpsPerSample() const override;
    std::uint64_t indexOpsPerSample() const override { return 3 * 12; }

    void bake(const AnalyticField &field) override;
    void gatherFeature(const Vec3 &pn, float *out) const override;
    void gatherAccesses(const Vec3 &pn, std::uint32_t rayId,
                        std::vector<MemAccess> &out) const override;
    void gatherFeatureBatch(const Vec3 *pn, int n,
                            float *out) const override;
    void gatherAccessesBatch(const Vec3 *pn, int n, std::uint32_t rayId,
                             std::vector<MemAccess> &out) const override;
    StreamPlan
    streamingFootprint(const std::vector<Vec3> &positions) const override;

    const TensoRFConfig &config() const { return _config; }

    /**
     * Round every stored plane/line channel to its nearest fp16 value —
     * after this the functional tensors hold exactly what the 2-byte
     * DRAM storage priced by texelBytes() holds. Sticky across
     * re-bakes. Idempotent.
     */
    void quantizeFeaturesFp16();

    /** Whether feature storage has been quantized to fp16 values. */
    bool featuresFp16() const { return _featuresFp16; }

  private:
    /** Bytes of one plane texel (ranks x channels). */
    std::uint32_t texelBytes() const
    {
        return _config.ranks * kFeatureDim * kBytesPerChannel;
    }

    float &planeAt(int g, int u, int v, int r, int ch);
    float planeAt(int g, int u, int v, int r, int ch) const;
    float &lineAt(int g, int w, int r, int ch);
    float lineAt(int g, int w, int r, int ch) const;

    std::uint64_t planeBase(int g) const;
    std::uint64_t lineBase(int g) const;

    /** Map pn to (u, v, w) continuous grid coords for grouping @p g. */
    void groupCoords(int g, const Vec3 &pn, float &u, float &v,
                     float &w) const;

    /** Grouping-major scalar sweep of samples [s0, s1) into SoA out. */
    void gatherBatchScalar(const Vec3 *pn, int s0, int s1, int n,
                           float *out) const;

    /** Rebalance rank-1 component scales and round through fp16. */
    void applyFp16Quantization();

    TensoRFConfig _config;
    bool _featuresFp16 = false;
    // _planes[g]: res*res texels x ranks x channels (texel-major).
    std::vector<float> _planes[3];
    // _lines[g]: res entries x ranks x channels.
    std::vector<float> _lines[3];
};

} // namespace cicero

#endif // CICERO_NERF_TENSORF_HH
