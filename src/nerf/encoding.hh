/**
 * @file
 * The Encoding interface: a NeRF model's spatial feature representation.
 *
 * An encoding supports three queries:
 *  - gatherFeature(): the functional path — interpolate the feature
 *    vector at a normalized scene position;
 *  - gatherAccesses(): the instrumentation path — the DRAM accesses that
 *    gathering at this position performs, emitted for the memory models;
 *  - streamingFootprint(): what the fully-streaming data flow of
 *    Sec. IV-A would move for a set of sample positions (streamed MVoxel
 *    bytes, residual random bytes, RIT size).
 *
 * Both gather queries also come in batched form (gatherFeatureBatch /
 * gatherAccessesBatch) over a span of sample positions — one virtual
 * call per ray block instead of one per sample, with per-batch setup
 * hoisted out of the per-sample loop. The batched feature buffer is
 * channel-major (SoA): channel c of sample i lives at out[c * n + i],
 * so one vector lane sweep covers a whole ray block — the layout the
 * SIMD 8-corner kernels (src/common/simd.hh) and the batched decoder
 * consume directly. The base class provides fallback loops over the
 * scalar virtuals so external encodings keep working; the in-tree
 * encodings override both natively.
 */

#ifndef CICERO_NERF_ENCODING_HH
#define CICERO_NERF_ENCODING_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/math.hh"
#include "memory/trace.hh"
#include "scene/field.hh"

namespace cicero {

/** Feature channels are stored as 2-byte (fp16-class) values in DRAM. */
constexpr std::uint32_t kBytesPerChannel = 2;

/** featureDim() values up to this bound use stack temporaries in the
 *  batched-gather fallback paths; wider encodings take a heap path. */
constexpr int kMaxFeatureDim = 32;

/** A position span transposed into SoA axis arrays (thread-local
 *  backing — valid until the calling thread's next transpose). */
struct PositionsSoA
{
    const float *x;
    const float *y;
    const float *z;
};

/**
 * Transpose @p n positions into thread-local SoA axis arrays so a
 * vector kernel can lane-sweep one coordinate at a time.
 */
inline PositionsSoA
transposePositionsSoA(const Vec3 *pn, int n)
{
    thread_local std::vector<float> buf;
    if (buf.size() < 3 * static_cast<std::size_t>(n))
        buf.resize(3 * static_cast<std::size_t>(n));
    float *x = buf.data();
    float *y = x + n;
    float *z = y + n;
    for (int i = 0; i < n; ++i) {
        x[i] = pn[i].x;
        y[i] = pn[i].y;
        z[i] = pn[i].z;
    }
    return {x, y, z};
}

/**
 * What the fully-streaming data flow moves for a workload. All byte
 * counts are DRAM traffic for the voxel/feature structures only.
 */
struct StreamPlan
{
    std::uint64_t streamedBytes = 0; //!< MVoxel chunks, read exactly once
    std::uint64_t randomBytes = 0;   //!< residual non-streamable traffic
    std::uint64_t ritEntries = 0;    //!< Ray Index Table entries built
    std::uint64_t ritBytes = 0;      //!< RIT DRAM footprint (48 B/entry)
};

/**
 * Abstract spatial feature encoding over the unit cube [0,1]^3.
 */
class Encoding
{
  public:
    virtual ~Encoding() = default;

    virtual std::string name() const = 0;

    /** Channels of the interpolated feature vector. */
    virtual int featureDim() const = 0;

    /** Bytes of feature storage actually allocated. */
    virtual std::uint64_t modelBytes() const = 0;

    /** Vertex/texel fetches issued per sample gather. */
    virtual std::uint32_t fetchesPerSample() const = 0;

    /** Arithmetic ops of one interpolation. */
    virtual std::uint64_t interpOpsPerSample() const = 0;

    /** Indexing-stage ops per sample (voxel IDs, hashes, projections). */
    virtual std::uint64_t indexOpsPerSample() const = 0;

    /** Bake the encoding from the analytic ground-truth field. */
    virtual void bake(const AnalyticField &field) = 0;

    /**
     * True when feature storage is fp16-quantized — i.e. the functional
     * arrays really hold 2-byte-valued channels, matching the
     * kBytesPerChannel DRAM accounting. Trace captures record this so
     * offline tools can tell whether a trace's featureBytes reflects
     * the capture-time storage (see TraceFileMeta::storageMode).
     */
    virtual bool featuresFp16() const { return false; }

    /**
     * Round feature storage to fp16 values (sticky across re-bakes).
     * Default no-op for external encodings without a 2-byte mode; the
     * in-tree encodings all override.
     */
    virtual void quantizeFeaturesFp16() {}

    /**
     * Interpolate the feature at normalized position @p pn in [0,1]^3.
     * @param out featureDim() floats.
     */
    virtual void gatherFeature(const Vec3 &pn, float *out) const = 0;

    /**
     * Append the DRAM accesses of gathering at @p pn to @p out.
     *
     * Contract: exactly fetchesPerSample() accesses are appended per
     * call, in a deterministic per-sample order — callers slice batched
     * access streams by that stride.
     */
    virtual void gatherAccesses(const Vec3 &pn, std::uint32_t rayId,
                                std::vector<MemAccess> &out) const = 0;

    /**
     * Interpolate the features of @p n samples in one call.
     *
     * @param pn  n normalized positions (contiguous).
     * @param out n * featureDim() floats, channel-major (SoA): channel
     *            c of sample i lives at out[c * n + i].
     *
     * Results are bit-identical to n scalar gatherFeature() calls —
     * implementations may reorder *across* samples (level-major or
     * grouping-major sweeps, vector lane blocks) but must preserve
     * each sample's accumulation order.
     */
    virtual void
    gatherFeatureBatch(const Vec3 *pn, int n, float *out) const
    {
        const int dim = featureDim();
        float stackTmp[kMaxFeatureDim];
        std::vector<float> heapTmp;
        float *tmp = stackTmp;
        if (dim > kMaxFeatureDim) { // wide external encodings
            heapTmp.resize(dim);
            tmp = heapTmp.data();
        }
        for (int i = 0; i < n; ++i) {
            gatherFeature(pn[i], tmp);
            for (int c = 0; c < dim; ++c)
                out[static_cast<std::size_t>(c) * n + i] = tmp[c];
        }
    }

    /**
     * Append the DRAM accesses of gathering @p n samples (all issued by
     * ray @p rayId) to @p out, sample-major and per-sample in the exact
     * scalar gatherAccesses() order: the appended stream is
     * byte-identical to n scalar calls, fetchesPerSample() entries per
     * sample.
     */
    virtual void
    gatherAccessesBatch(const Vec3 *pn, int n, std::uint32_t rayId,
                        std::vector<MemAccess> &out) const
    {
        for (int i = 0; i < n; ++i)
            gatherAccesses(pn[i], rayId, out);
    }

    /**
     * Compute the fully-streaming footprint for @p positions (normalized
     * sample positions of one frame or batch).
     */
    virtual StreamPlan
    streamingFootprint(const std::vector<Vec3> &positions) const = 0;
};

} // namespace cicero

#endif // CICERO_NERF_ENCODING_HH
