/**
 * @file
 * The Encoding interface: a NeRF model's spatial feature representation.
 *
 * An encoding supports three queries:
 *  - gatherFeature(): the functional path — interpolate the feature
 *    vector at a normalized scene position;
 *  - gatherAccesses(): the instrumentation path — the DRAM accesses that
 *    gathering at this position performs, emitted for the memory models;
 *  - streamingFootprint(): what the fully-streaming data flow of
 *    Sec. IV-A would move for a set of sample positions (streamed MVoxel
 *    bytes, residual random bytes, RIT size).
 */

#ifndef CICERO_NERF_ENCODING_HH
#define CICERO_NERF_ENCODING_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/math.hh"
#include "memory/trace.hh"
#include "scene/field.hh"

namespace cicero {

/** Feature channels are stored as 2-byte (fp16-class) values in DRAM. */
constexpr std::uint32_t kBytesPerChannel = 2;

/**
 * What the fully-streaming data flow moves for a workload. All byte
 * counts are DRAM traffic for the voxel/feature structures only.
 */
struct StreamPlan
{
    std::uint64_t streamedBytes = 0; //!< MVoxel chunks, read exactly once
    std::uint64_t randomBytes = 0;   //!< residual non-streamable traffic
    std::uint64_t ritEntries = 0;    //!< Ray Index Table entries built
    std::uint64_t ritBytes = 0;      //!< RIT DRAM footprint (48 B/entry)
};

/**
 * Abstract spatial feature encoding over the unit cube [0,1]^3.
 */
class Encoding
{
  public:
    virtual ~Encoding() = default;

    virtual std::string name() const = 0;

    /** Channels of the interpolated feature vector. */
    virtual int featureDim() const = 0;

    /** Bytes of feature storage actually allocated. */
    virtual std::uint64_t modelBytes() const = 0;

    /** Vertex/texel fetches issued per sample gather. */
    virtual std::uint32_t fetchesPerSample() const = 0;

    /** Arithmetic ops of one interpolation. */
    virtual std::uint64_t interpOpsPerSample() const = 0;

    /** Indexing-stage ops per sample (voxel IDs, hashes, projections). */
    virtual std::uint64_t indexOpsPerSample() const = 0;

    /** Bake the encoding from the analytic ground-truth field. */
    virtual void bake(const AnalyticField &field) = 0;

    /**
     * Interpolate the feature at normalized position @p pn in [0,1]^3.
     * @param out featureDim() floats.
     */
    virtual void gatherFeature(const Vec3 &pn, float *out) const = 0;

    /** Append the DRAM accesses of gathering at @p pn to @p out. */
    virtual void gatherAccesses(const Vec3 &pn, std::uint32_t rayId,
                                std::vector<MemAccess> &out) const = 0;

    /**
     * Compute the fully-streaming footprint for @p positions (normalized
     * sample positions of one frame or batch).
     */
    virtual StreamPlan
    streamingFootprint(const std::vector<Vec3> &positions) const = 0;
};

} // namespace cicero

#endif // CICERO_NERF_ENCODING_HH
