/**
 * @file
 * Classic volume-rendering compositor (Kajiya/Levoy quadrature): per-ray
 * front-to-back alpha accumulation of (sigma, rgb) samples, producing
 * color, opacity and the expected depth SPARW's point-cloud conversion
 * consumes.
 */

#ifndef CICERO_NERF_VOLUME_RENDERER_HH
#define CICERO_NERF_VOLUME_RENDERER_HH

#include "common/image.hh"
#include "common/math.hh"

namespace cicero {

/** Final composited value of one ray. */
struct CompositeResult
{
    Vec3 rgb;
    float depth = kInfiniteDepth; //!< expected hit depth, or infinite
    float opacity = 0.0f;         //!< 1 - final transmittance
};

/**
 * Front-to-back compositor for a single ray. Usage:
 *   Compositor c;
 *   for (sample : samples)
 *       if (!c.add(sigma, rgb, t, dt)) break;   // saturated
 *   result = c.finish(background);
 */
class Compositor
{
  public:
    /** Transmittance below which accumulation early-terminates. */
    static constexpr float kEarlyStopT = 1e-3f;

    /** Opacity below which a ray is classified as hitting nothing. */
    static constexpr float kVoidOpacity = 0.2f;

    /**
     * Accumulate one sample.
     * @return false once transmittance fell below kEarlyStopT (the
     * caller should stop marching).
     */
    bool
    add(float sigma, const Vec3 &rgb, float t, float dt)
    {
        if (sigma > 0.0f) {
            float alpha = 1.0f - std::exp(-sigma * dt);
            float w = _trans * alpha;
            _color += rgb * w;
            _depthAcc += t * w;
            _trans *= 1.0f - alpha;
        }
        return _trans > kEarlyStopT;
    }

    float transmittance() const { return _trans; }

    /**
     * Blend with the @p background and derive the expected depth.
     */
    CompositeResult
    finish(const Vec3 &background) const
    {
        CompositeResult r;
        r.opacity = 1.0f - _trans;
        r.rgb = _color + background * _trans;
        if (r.opacity >= kVoidOpacity)
            r.depth = _depthAcc / r.opacity;
        return r;
    }

  private:
    float _trans = 1.0f;
    Vec3 _color;
    float _depthAcc = 0.0f;
};

} // namespace cicero

#endif // CICERO_NERF_VOLUME_RENDERER_HH
