/**
 * @file
 * Model factory: build the NeRF algorithm variants the paper evaluates
 * (Instant-NGP, DirectVoxGO, TensoRF — Sec. V) plus the
 * EfficientNeRF-like variant used in the characterization figures.
 *
 * Two presets exist:
 *  - Fast: reduced resolutions for tests and trace experiments;
 *  - Full: the scale used by quality benches.
 * Nominal (paper-scale) model sizes for Fig. 2 come from
 * nominalModelSpec(), which computes sizes from each paper's published
 * configuration without allocating storage.
 */

#ifndef CICERO_NERF_MODELS_HH
#define CICERO_NERF_MODELS_HH

#include <memory>
#include <string>
#include <vector>

#include "nerf/dense_grid.hh"
#include "nerf/renderer.hh"

namespace cicero {

/** NeRF algorithms with full functional implementations. */
enum class ModelKind
{
    InstantNgp,
    DirectVoxGO,
    TensoRF,
    EfficientNeRF,
};

/** Display name matching the paper's figures. */
const char *modelName(ModelKind kind);

/** The four fully-implemented algorithms, in figure order. */
const std::vector<ModelKind> &allModelKinds();

/** The three algorithms of the headline evaluation (Sec. V). */
const std::vector<ModelKind> &mainModelKinds();

/** Resolution/size preset. */
enum class ModelPreset
{
    Fast, //!< small grids: unit tests, trace experiments
    Full, //!< quality-bench scale
};

/** Options controlling model construction. */
struct ModelBuildOptions
{
    ModelPreset preset = ModelPreset::Fast;
    GridLayout gridLayout = GridLayout::Linear; //!< dense-grid DRAM layout
    std::uint64_t seed = 7;
};

/** Build and bake a model of @p kind for @p scene. */
std::unique_ptr<NerfModel> buildModel(ModelKind kind, const Scene &scene,
                                      const ModelBuildOptions &options = {});

/**
 * Characterization descriptor for Fig. 2: name, nominal (paper-scale)
 * model size and per-frame work at 800x800, for the six models the
 * paper charts. Models without a functional implementation here
 * (MobileNeRF, Baking/SNeRG) carry the published figures only.
 */
struct ModelSpec
{
    std::string name;
    double modelMB = 0.0;         //!< nominal model size
    double samplesPerRay = 0.0;   //!< average computed samples per ray
    double fetchesPerSample = 0.0;
    double bytesPerFetch = 0.0;
    double mlpMacsPerSample = 0.0;
    double indexOpsPerSample = 0.0;
    double interpOpsPerSample = 0.0;
    bool implemented = false;     //!< has a functional model in this repo
};

/** The six characterization specs of Fig. 2. */
const std::vector<ModelSpec> &nominalModelSpecs();

/** Nominal per-sample MLP MACs of an implemented algorithm. */
std::uint64_t nominalMlpMacs(ModelKind kind);

} // namespace cicero

#endif // CICERO_NERF_MODELS_HH
