/**
 * @file
 * Feature-to-radiance decoder (the Feature Computation stage).
 *
 * Substitution note (DESIGN.md §2): the paper's models use a *trained*
 * MLP. We decode the baked semantic channels analytically — which keeps
 * images meaningful — and add a small residual from a frozen
 * randomly-initialized MLP that is *actually executed* per sample, so
 * (a) Feature Computation costs real MLP FLOPs of the nominal model size
 * and (b) each model kind has its own reconstruction character, like
 * real per-model PSNR differences.
 *
 * Baked channel layout (featureDim = 9):
 *   0      sigma / kSigmaScale
 *   1..3   Lambert-shaded diffuse RGB
 *   4..6   normal * 0.5 + 0.5
 *   7      specular strength
 *   8      shininess / kShinScale
 */

#ifndef CICERO_NERF_DECODER_HH
#define CICERO_NERF_DECODER_HH

#include <cstddef>
#include <memory>

#include "common/math.hh"
#include "nerf/mlp.hh"
#include "scene/field.hh"

namespace cicero {

/** Number of baked semantic channels. */
constexpr int kFeatureDim = 9;

/** Density is stored as sigma / kSigmaScale to stay in [0, ~1]. */
constexpr float kSigmaScale = 64.0f;

/** Shininess is stored as shininess / kShinScale. */
constexpr float kShinScale = 64.0f;

/** Write the baked channels of @p pt into @p feature (kFeatureDim). */
void encodeBakedPoint(const BakedPoint &pt, float *feature);

/** Inverse of encodeBakedPoint (up to clamping). */
BakedPoint decodeBakedFeature(const float *feature);

/** Decoded sample: density plus view-dependent radiance. */
struct DecodedSample
{
    float sigma = 0.0f;
    Vec3 rgb;
};

/**
 * One ray block's decode request: a channel-major feature span sharing
 * a single ray direction, and the output slots to fill. The unit of
 * work the fused decode entry point (and the serve layer's
 * cross-session queue) batches — fusion may interleave *blocks*
 * freely, but a block's samples always stay contiguous and in order.
 */
struct DecodeBlock
{
    const float *features = nullptr; //!< channel-major (SoA) features
    std::size_t featureStride = 0;   //!< distance between channels
    int count = 0;                   //!< samples in the block
    Vec3 viewDir;                    //!< the block's ray direction
    DecodedSample *out = nullptr;    //!< count output slots
};

/**
 * Consumer of ray-block decode requests. The render paths decode
 * through one of these when given instead of calling the model's
 * decoder directly; the serve layer's FusedDecodeQueue implements it
 * to gather blocks from many sessions — and, with intra-frame
 * fan-out, from many concurrent ray-block tasks of the *same* frame —
 * into one batched MLP pass. Implementations must fill
 * out[0..count) with results bit-identical to Decoder::decodeBatchSoA
 * on the same block before returning, and must tolerate concurrent
 * decodeBlock() calls from multiple threads (several submitters of
 * one frame/session may be in flight at once).
 */
class DecodeSink
{
  public:
    virtual ~DecodeSink() = default;

    virtual void decodeBlock(const float *features,
                             std::size_t featureStride, int count,
                             const Vec3 &viewDir, DecodedSample *out) = 0;
};

/**
 * Items per internal decode chunk: both batched decoder entry points
 * process at most this many samples per kernel pass through
 * fixed-capacity thread-local scratch (allocated once, hard-checked
 * against — never silently regrown in the hot loop).
 */
constexpr int kDecodeChunk = 256;

/**
 * The decoder: analytic shading head plus an executed-MLP residual.
 */
class Decoder
{
  public:
    /**
     * @param hiddenWidth    width of the executed residual MLP
     * @param hiddenLayers   hidden layer count of the executed MLP
     * @param nominalMacs    MACs/sample the *nominal* (paper-size) MLP
     *                       would execute; reported for work accounting
     * @param residualAmp    amplitude of the MLP residual on radiance
     * @param seed           weight seed (fixes the model's "character")
     */
    Decoder(const Vec3 &lightDir, int hiddenWidth = 16,
            int hiddenLayers = 1, std::uint64_t nominalMacs = 0,
            float residualAmp = 0.01f, std::uint64_t seed = 7);

    /**
     * Decode an interpolated feature vector for a ray direction.
     */
    DecodedSample decode(const float *feature, const Vec3 &viewDir) const;

    /**
     * Decode @p count feature vectors sharing one ray direction in
     * batched MLP passes. @p features is sample-major
     * (count x kFeatureDim); results are bit-identical to @p count
     * scalar decode() calls. Thread-safe.
     */
    void decodeBatch(const float *features, int count,
                     const Vec3 &viewDir, DecodedSample *out) const;

    /**
     * Channel-major (SoA) batched decode: channel c of sample i lives
     * at features[c * featureStride + i] — the layout
     * Encoding::gatherFeatureBatch produces (featureStride = block
     * size) and the layout the batched MLP kernel consumes, so the
     * per-call feature transposition of the sample-major entry point
     * disappears. Results are bit-identical to scalar decode().
     * Thread-safe.
     */
    void decodeBatchSoA(const float *features, std::size_t featureStride,
                        int count, const Vec3 &viewDir,
                        DecodedSample *out) const;

    /**
     * Fused batched decode of @p numBlocks ray blocks (possibly from
     * different rays, frames or serving sessions of the same model):
     * consecutive blocks are packed into one channel-major staging
     * buffer and pushed through a single Mlp::forwardBatch pass per
     * <= kDecodeChunk samples, with each block's own view direction in
     * the direction channels. Because forwardBatch accumulates every
     * item independently in the same channel order at any batch size,
     * each block's results are bit-identical to a solo
     * decodeBatchSoA() call on that block — batching composition never
     * changes bits. What fusion buys is kernel efficiency: full vector
     * lanes instead of per-block remainders, and (in fp16 weight mode)
     * one weight-widening pass amortized over every fused block.
     * Thread-safe.
     */
    void decodeBlocksFused(const DecodeBlock *blocks,
                           int numBlocks) const;

    /**
     * Switch the residual MLP to fp16 (2-byte) weight storage — see
     * Mlp::quantizeWeightsFp16().
     */
    void quantizeWeightsFp16();

    /** Whether the residual MLP reads fp16 weight storage. */
    bool fp16Weights() const { return _mlp.fp16Weights(); }

    /** MACs/sample to account for Feature Computation. */
    std::uint64_t nominalMacs() const { return _nominalMacs; }

    /** MACs/sample actually executed by the residual MLP. */
    std::uint64_t executedMacs() const { return _mlp.macsPerInference(); }

    std::uint64_t weightBytes() const { return _mlp.weightBytes(); }

  private:
    /** One <= kDecodeChunk chunk through the fixed-capacity scratch. */
    void decodeChunk(const float *features, std::size_t featureStride,
                     int count, const Vec3 &viewDir, const Vec3 &viewNorm,
                     DecodedSample *out) const;

    Vec3 _lightDir;
    Mlp _mlp;
    std::uint64_t _nominalMacs;
    float _residualAmp;
};

} // namespace cicero

#endif // CICERO_NERF_DECODER_HH
