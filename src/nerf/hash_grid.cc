#include "nerf/hash_grid.hh"

#include <cassert>
#include <cmath>
#include <unordered_set>
#include <vector>

#include "common/simd.hh"

namespace cicero {

namespace {

/** The Instant-NGP spatial-hash primes (Teschner et al.) — one
 *  definition shared by the scalar hash and the vector kernel, so the
 *  two paths cannot silently diverge. */
constexpr std::uint32_t kHashPrimeY = 2654435761u;
constexpr std::uint32_t kHashPrimeZ = 805459861u;

/** The spatial hash of Instant-NGP. */
inline std::uint32_t
spatialHash(int ix, int iy, int iz)
{
    return static_cast<std::uint32_t>(ix) * 1u ^
           static_cast<std::uint32_t>(iy) * kHashPrimeY ^
           static_cast<std::uint32_t>(iz) * kHashPrimeZ;
}

} // namespace

HashGridConfig
HashGridConfig::full()
{
    HashGridConfig c;
    c.numLevels = 8;
    c.baseRes = 16;
    c.perLevelScale = 1.38f;
    c.tableSize = 1u << 17;
    return c;
}

HashGridEncoding::HashGridEncoding(const HashGridConfig &config)
    : _config(config)
{
    assert(config.numLevels >= 1);
    std::uint64_t addr = 0;
    float res = static_cast<float>(config.baseRes);
    for (int l = 0; l < config.numLevels; ++l) {
        Level lvl;
        lvl.res = static_cast<int>(std::floor(res));
        std::uint64_t verts = static_cast<std::uint64_t>(lvl.res + 1) *
                              (lvl.res + 1) * (lvl.res + 1);
        lvl.dense = verts <= config.tableSize;
        lvl.slots = lvl.dense ? static_cast<std::uint32_t>(verts)
                              : config.tableSize;
        lvl.baseAddr = addr;
        lvl.data.assign(static_cast<std::size_t>(lvl.slots) * kFeatureDim,
                        0.0f);
        addr += static_cast<std::uint64_t>(lvl.slots) * vertexBytes();
        _levels.push_back(std::move(lvl));
        res *= config.perLevelScale;
    }
}

std::uint64_t
HashGridEncoding::modelBytes() const
{
    std::uint64_t bytes = 0;
    for (const Level &lvl : _levels)
        bytes += static_cast<std::uint64_t>(lvl.slots) * vertexBytes();
    return bytes;
}

std::uint64_t
HashGridEncoding::interpOpsPerSample() const
{
    return static_cast<std::uint64_t>(_config.numLevels) *
           (24 + 8ull * kFeatureDim);
}

int
HashGridEncoding::revertLevel() const
{
    for (int l = 0; l < _config.numLevels; ++l)
        if (!_levels[l].dense)
            return l;
    return _config.numLevels;
}

std::uint32_t
HashGridEncoding::slotOf(const Level &lvl, int ix, int iy, int iz) const
{
    int v = lvl.res + 1;
    if (lvl.dense) {
        return (static_cast<std::uint32_t>(iz) * v + iy) * v + ix;
    }
    return spatialHash(ix, iy, iz) % lvl.slots;
}

void
HashGridEncoding::gatherUpto(const Vec3 &pn, int uptoLevel,
                             float *out) const
{
    for (int ch = 0; ch < kFeatureDim; ++ch)
        out[ch] = 0.0f;
    for (int l = 0; l < uptoLevel; ++l) {
        const Level &lvl = _levels[l];
        float fx = clamp(pn.x, 0.0f, 1.0f) * lvl.res;
        float fy = clamp(pn.y, 0.0f, 1.0f) * lvl.res;
        float fz = clamp(pn.z, 0.0f, 1.0f) * lvl.res;
        int x0 = std::min(static_cast<int>(fx), lvl.res - 1);
        int y0 = std::min(static_cast<int>(fy), lvl.res - 1);
        int z0 = std::min(static_cast<int>(fz), lvl.res - 1);
        float tx = fx - x0;
        float ty = fy - y0;
        float tz = fz - z0;
        for (int c = 0; c < 8; ++c) {
            int dx = c & 1;
            int dy = (c >> 1) & 1;
            int dz = (c >> 2) & 1;
            float w = (dx ? tx : 1.0f - tx) * (dy ? ty : 1.0f - ty) *
                      (dz ? tz : 1.0f - tz);
            std::uint32_t slot =
                slotOf(lvl, x0 + dx, y0 + dy, z0 + dz);
            const float *v =
                lvl.data.data() +
                static_cast<std::size_t>(slot) * kFeatureDim;
            for (int ch = 0; ch < kFeatureDim; ++ch)
                out[ch] += w * v[ch];
        }
    }
}

void
HashGridEncoding::gatherFeature(const Vec3 &pn, float *out) const
{
    gatherUpto(pn, _config.numLevels, out);
}

void
HashGridEncoding::gatherBatchScalar(const Vec3 *pn, int s0, int s1,
                                    int n, float *out) const
{
    // Level-major sweep: the level's metadata (res, storage kind, data
    // pointer) is hoisted out of the sample loop, so the inner loop is
    // pure index math + accumulation over one table. Per sample the
    // accumulation order (levels ascending, corners ascending) matches
    // gatherFeature() exactly, so results are bit-identical.
    for (const Level &lvl : _levels) {
        const float res = static_cast<float>(lvl.res);
        const int hi = lvl.res - 1;
        const float *data = lvl.data.data();
        for (int s = s0; s < s1; ++s) {
            float fx = clamp(pn[s].x, 0.0f, 1.0f) * res;
            float fy = clamp(pn[s].y, 0.0f, 1.0f) * res;
            float fz = clamp(pn[s].z, 0.0f, 1.0f) * res;
            int x0 = std::min(static_cast<int>(fx), hi);
            int y0 = std::min(static_cast<int>(fy), hi);
            int z0 = std::min(static_cast<int>(fz), hi);
            float tx = fx - x0;
            float ty = fy - y0;
            float tz = fz - z0;
            for (int c = 0; c < 8; ++c) {
                int dx = c & 1;
                int dy = (c >> 1) & 1;
                int dz = (c >> 2) & 1;
                float w = (dx ? tx : 1.0f - tx) * (dy ? ty : 1.0f - ty) *
                          (dz ? tz : 1.0f - tz);
                std::uint32_t slot =
                    slotOf(lvl, x0 + dx, y0 + dy, z0 + dz);
                const float *v =
                    data + static_cast<std::size_t>(slot) * kFeatureDim;
                for (int ch = 0; ch < kFeatureDim; ++ch)
                    out[static_cast<std::size_t>(ch) * n + s] +=
                        w * v[ch];
            }
        }
    }
}

void
HashGridEncoding::gatherFeatureBatch(const Vec3 *pn, int n,
                                     float *out) const
{
    using simd::VecF;
    using simd::VecI;
    constexpr int L = VecF::kLanes;

    for (std::size_t i = 0;
         i < static_cast<std::size_t>(n) * kFeatureDim; ++i)
        out[i] = 0.0f;

    // The vector kernel indexes with int32 lanes: a table whose scaled
    // element index could exceed INT32_MAX must take the scalar path
    // (slots is bounded by tableSize, so this only triggers on extreme
    // configurations).
    bool indexable = true;
    for (const Level &lvl : _levels)
        indexable = indexable &&
                    static_cast<std::uint64_t>(lvl.slots) * kFeatureDim <=
                        0x7fffffffull;

    if (!simd::simdActive() || n < L || !indexable) {
        gatherBatchScalar(pn, 0, n, n, out);
        return;
    }

    // Vectorized level-major 8-corner kernel: one lane per sample. Per
    // corner the kernel computes the trilinear weight and the table
    // slot for L samples at once, then per channel gathers the L
    // vertex values and accumulates into the channel-major output with
    // an unfused madd — per (sample, channel) the accumulation order
    // (levels ascending, corners ascending) and every arithmetic
    // expression match gatherFeature() exactly, so results are
    // bit-identical to the scalar sweep.
    const PositionsSoA pos = transposePositionsSoA(pn, n);
    const int nBlocks = n / L * L;
    const VecF vZero = VecF::zero();
    const VecF vOne = VecF::broadcast(1.0f);

    for (const Level &lvl : _levels) {
        const VecF vRes = VecF::broadcast(static_cast<float>(lvl.res));
        const VecI vHi = VecI::broadcast(lvl.res - 1);
        const VecI vDim = VecI::broadcast(kFeatureDim);
        const VecI vV = VecI::broadcast(lvl.res + 1);
        const VecI vOneI = VecI::broadcast(1);
        const float *data = lvl.data.data();
        const bool slotsPow2 = (lvl.slots & (lvl.slots - 1)) == 0;
        const VecI vSlotMask =
            VecI::broadcast(static_cast<std::int32_t>(lvl.slots - 1));

        for (int s0 = 0; s0 < nBlocks; s0 += L) {
            // fx = clamp(p, 0, 1) * res; x0 = min(int(fx), res - 1);
            // tx = fx - x0 — identical expressions, lane-wise.
            const VecF fx =
                vmin(vmax(VecF::load(pos.x + s0), vZero), vOne) * vRes;
            const VecF fy =
                vmin(vmax(VecF::load(pos.y + s0), vZero), vOne) * vRes;
            const VecF fz =
                vmin(vmax(VecF::load(pos.z + s0), vZero), vOne) * vRes;
            const VecI x0 = vmin(truncToInt(fx), vHi);
            const VecI y0 = vmin(truncToInt(fy), vHi);
            const VecI z0 = vmin(truncToInt(fz), vHi);
            const VecF tx = fx - toFloat(x0);
            const VecF ty = fy - toFloat(y0);
            const VecF tz = fz - toFloat(z0);
            const VecF mx = vOne - tx;
            const VecF my = vOne - ty;
            const VecF mz = vOne - tz;

            VecF w[8];
            VecI idx[8];
            for (int c = 0; c < 8; ++c) {
                const bool dx = c & 1;
                const bool dy = (c >> 1) & 1;
                const bool dz = (c >> 2) & 1;
                w[c] = ((dx ? tx : mx) * (dy ? ty : my)) *
                       (dz ? tz : mz);
                const VecI cx = dx ? x0 + vOneI : x0;
                const VecI cy = dy ? y0 + vOneI : y0;
                const VecI cz = dz ? z0 + vOneI : z0;
                VecI slot;
                if (lvl.dense) {
                    slot = (cz * vV + cy) * vV + cx;
                } else {
                    const VecI h =
                        cx ^
                        cy * VecI::broadcast(
                                 static_cast<std::int32_t>(kHashPrimeY)) ^
                        cz * VecI::broadcast(
                                 static_cast<std::int32_t>(kHashPrimeZ));
                    if (slotsPow2) {
                        slot = h & vSlotMask;
                    } else {
                        // Non-power-of-two tables: unsigned modulo has
                        // no vector form — round-trip through a lane
                        // array.
                        std::int32_t lanes[VecI::kLanes];
                        h.store(lanes);
                        for (std::int32_t &lv : lanes)
                            lv = static_cast<std::int32_t>(
                                static_cast<std::uint32_t>(lv) %
                                lvl.slots);
                        slot = VecI::load(lanes);
                    }
                }
                idx[c] = slot * vDim;
            }

            for (int ch = 0; ch < kFeatureDim; ++ch) {
                float *o = out + static_cast<std::size_t>(ch) * n + s0;
                VecF acc = VecF::load(o);
                for (int c = 0; c < 8; ++c)
                    acc = simd::madd(w[c], simd::gather(data + ch, idx[c]),
                                     acc);
                acc.store(o);
            }
        }
    }

    if (nBlocks < n)
        gatherBatchScalar(pn, nBlocks, n, n, out);
}

void
HashGridEncoding::quantizeFeaturesFp16()
{
    _featuresFp16 = true;
    for (Level &lvl : _levels)
        simd::roundBufferThroughFp16(lvl.data.data(), lvl.data.size());
}

void
HashGridEncoding::gatherAccessesBatch(const Vec3 *pn, int n,
                                      std::uint32_t rayId,
                                      std::vector<MemAccess> &out) const
{
    // The access stream is sample-major (part of the TraceSink ordering
    // contract), so the sample loop stays outermost; the batch still
    // amortizes the virtual dispatch and the output reallocation.
    out.reserve(out.size() +
                static_cast<std::size_t>(n) * fetchesPerSample());
    const std::uint32_t vb = vertexBytes();
    for (int s = 0; s < n; ++s) {
        for (const Level &lvl : _levels) {
            float fx = clamp(pn[s].x, 0.0f, 1.0f) * lvl.res;
            float fy = clamp(pn[s].y, 0.0f, 1.0f) * lvl.res;
            float fz = clamp(pn[s].z, 0.0f, 1.0f) * lvl.res;
            int x0 = std::min(static_cast<int>(fx), lvl.res - 1);
            int y0 = std::min(static_cast<int>(fy), lvl.res - 1);
            int z0 = std::min(static_cast<int>(fz), lvl.res - 1);
            for (int c = 0; c < 8; ++c) {
                std::uint32_t slot = slotOf(lvl, x0 + (c & 1),
                                            y0 + ((c >> 1) & 1),
                                            z0 + ((c >> 2) & 1));
                out.push_back(MemAccess{
                    lvl.baseAddr +
                        static_cast<std::uint64_t>(slot) * vb,
                    vb, rayId});
            }
        }
    }
}

void
HashGridEncoding::bake(const AnalyticField &field)
{
    // Residual-pyramid bake: level l stores (target - reconstruction of
    // levels < l) at its vertices. Hashed levels accumulate colliding
    // vertices and average them — real Instant-NGP collision behaviour.
    const Aabb &b = field.bounds();
    Vec3 e = b.extent();
    std::vector<float> target(kFeatureDim);
    std::vector<float> recon(kFeatureDim);

    for (int l = 0; l < _config.numLevels; ++l) {
        Level &lvl = _levels[l];
        std::vector<float> sum(
            static_cast<std::size_t>(lvl.slots) * kFeatureDim, 0.0f);
        std::vector<std::uint32_t> count(lvl.slots, 0);

        int v = lvl.res + 1;
        for (int iz = 0; iz < v; ++iz) {
            for (int iy = 0; iy < v; ++iy) {
                for (int ix = 0; ix < v; ++ix) {
                    Vec3 pn{static_cast<float>(ix) / lvl.res,
                            static_cast<float>(iy) / lvl.res,
                            static_cast<float>(iz) / lvl.res};
                    Vec3 p{b.lo.x + e.x * pn.x, b.lo.y + e.y * pn.y,
                           b.lo.z + e.z * pn.z};
                    BakedPoint bp = field.bakePoint(p);
                    encodeBakedPoint(bp, target.data());
                    gatherUpto(pn, l, recon.data());

                    std::uint32_t slot = slotOf(lvl, ix, iy, iz);
                    float *dst =
                        sum.data() +
                        static_cast<std::size_t>(slot) * kFeatureDim;
                    for (int ch = 0; ch < kFeatureDim; ++ch)
                        dst[ch] += target[ch] - recon[ch];
                    ++count[slot];
                }
            }
        }

        for (std::uint32_t s = 0; s < lvl.slots; ++s) {
            if (count[s] == 0)
                continue;
            float inv = 1.0f / count[s];
            float *dst =
                lvl.data.data() + static_cast<std::size_t>(s) * kFeatureDim;
            const float *src =
                sum.data() + static_cast<std::size_t>(s) * kFeatureDim;
            for (int ch = 0; ch < kFeatureDim; ++ch)
                dst[ch] = src[ch] * inv;
        }
    }

    if (_featuresFp16)
        quantizeFeaturesFp16(); // sticky: re-bakes stay 2-byte-valued
}

void
HashGridEncoding::gatherAccesses(const Vec3 &pn, std::uint32_t rayId,
                                 std::vector<MemAccess> &out) const
{
    for (const Level &lvl : _levels) {
        float fx = clamp(pn.x, 0.0f, 1.0f) * lvl.res;
        float fy = clamp(pn.y, 0.0f, 1.0f) * lvl.res;
        float fz = clamp(pn.z, 0.0f, 1.0f) * lvl.res;
        int x0 = std::min(static_cast<int>(fx), lvl.res - 1);
        int y0 = std::min(static_cast<int>(fy), lvl.res - 1);
        int z0 = std::min(static_cast<int>(fz), lvl.res - 1);
        for (int c = 0; c < 8; ++c) {
            std::uint32_t slot = slotOf(lvl, x0 + (c & 1),
                                        y0 + ((c >> 1) & 1),
                                        z0 + ((c >> 2) & 1));
            out.push_back(MemAccess{
                lvl.baseAddr +
                    static_cast<std::uint64_t>(slot) * vertexBytes(),
                vertexBytes(), rayId});
        }
    }
}

StreamPlan
HashGridEncoding::streamingFootprint(
    const std::vector<Vec3> &positions) const
{
    StreamPlan plan;
    const int bv = _config.blockVerts;
    const std::uint64_t blockBytes =
        static_cast<std::uint64_t>(bv) * bv * bv * vertexBytes();

    for (int l = 0; l < _config.numLevels; ++l) {
        const Level &lvl = _levels[l];
        if (lvl.dense) {
            // Streamable level: unique 8^3 vertex blocks touched.
            std::unordered_set<std::uint64_t> touched;
            std::uint32_t blocksPerAxis = (lvl.res + 1 + bv - 1) / bv;
            for (const Vec3 &pn : positions) {
                float fx = clamp(pn.x, 0.0f, 1.0f) * lvl.res;
                float fy = clamp(pn.y, 0.0f, 1.0f) * lvl.res;
                float fz = clamp(pn.z, 0.0f, 1.0f) * lvl.res;
                int x0 = std::min(static_cast<int>(fx), lvl.res - 1);
                int y0 = std::min(static_cast<int>(fy), lvl.res - 1);
                int z0 = std::min(static_cast<int>(fz), lvl.res - 1);
                std::uint64_t seen[8];
                int nSeen = 0;
                for (int c = 0; c < 8; ++c) {
                    std::uint64_t bx = (x0 + (c & 1)) / bv;
                    std::uint64_t by = (y0 + ((c >> 1) & 1)) / bv;
                    std::uint64_t bz = (z0 + ((c >> 2) & 1)) / bv;
                    std::uint64_t blk =
                        (bz * blocksPerAxis + by) * blocksPerAxis + bx;
                    touched.insert((static_cast<std::uint64_t>(l) << 48) |
                                   blk);
                    bool dup = false;
                    for (int i = 0; i < nSeen; ++i)
                        dup = dup || seen[i] == blk;
                    if (!dup)
                        seen[nSeen++] = blk;
                }
                plan.ritEntries += nSeen;
            }
            // Count only this level's blocks (the set is level-tagged, so
            // tally per level by size delta — simpler: accumulate at end).
            plan.streamedBytes += touched.size() * blockBytes;
        } else {
            // Hashed level: reverts to the original (random) data flow.
            plan.randomBytes += positions.size() * 8ull * vertexBytes();
        }
    }
    plan.ritBytes = plan.ritEntries * 48;
    return plan;
}

} // namespace cicero
