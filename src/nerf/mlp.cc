#include "nerf/mlp.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/rng.hh"

namespace cicero {

Mlp::Mlp(std::vector<int> dims, std::uint64_t seed) : _dims(std::move(dims))
{
    assert(_dims.size() >= 2);
    Rng rng(seed);
    int maxWidth = 0;
    for (std::size_t l = 0; l + 1 < _dims.size(); ++l) {
        int in = _dims[l];
        int out = _dims[l + 1];
        maxWidth = std::max({maxWidth, in, out});
        float scale = std::sqrt(6.0f / (in + out));
        std::vector<float> w(static_cast<std::size_t>(in) * out);
        for (auto &v : w)
            v = rng.uniform(-scale, scale);
        _weights.push_back(std::move(w));
        _biases.emplace_back(out, 0.0f);
        _macs += static_cast<std::uint64_t>(in) * out;
    }
    _scratchA.resize(maxWidth);
    _scratchB.resize(maxWidth);
}

std::uint64_t
Mlp::weightBytes() const
{
    std::uint64_t params = 0;
    for (std::size_t l = 0; l < _weights.size(); ++l)
        params += _weights[l].size() + _biases[l].size();
    return params * 2; // fp16 storage
}

void
Mlp::forward(const float *in, float *out) const
{
    const float *src = in;
    float *cur = _scratchA.data();
    float *nxt = _scratchB.data();

    for (std::size_t l = 0; l < _weights.size(); ++l) {
        int ni = _dims[l];
        int no = _dims[l + 1];
        const float *w = _weights[l].data();
        const float *b = _biases[l].data();
        bool last = l + 1 == _weights.size();
        float *dst = last ? out : nxt;
        for (int o = 0; o < no; ++o) {
            float acc = b[o];
            const float *row = w + static_cast<std::size_t>(o) * ni;
            for (int i = 0; i < ni; ++i)
                acc += row[i] * src[i];
            dst[o] = last ? acc : std::fmax(0.0f, acc); // ReLU hidden
        }
        if (!last) {
            src = dst;
            std::swap(cur, nxt);
        }
    }
}

} // namespace cicero
