#include "nerf/mlp.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/rng.hh"

namespace cicero {

namespace {

/**
 * Items per kernel block: bounds the thread-local scratch and keeps one
 * block's activations (maxWidth * kBatchBlock floats) L1-resident while
 * the weight rows stream over it.
 */
constexpr int kBatchBlock = 128;

} // namespace

Mlp::Mlp(std::vector<int> dims, std::uint64_t seed) : _dims(std::move(dims))
{
    assert(_dims.size() >= 2);
    Rng rng(seed);
    for (std::size_t l = 0; l + 1 < _dims.size(); ++l) {
        int in = _dims[l];
        int out = _dims[l + 1];
        _maxWidth = std::max({_maxWidth, in, out});
        float scale = std::sqrt(6.0f / (in + out));
        std::vector<float> w(static_cast<std::size_t>(in) * out);
        for (auto &v : w)
            v = rng.uniform(-scale, scale);
        _weights.push_back(std::move(w));
        _biases.emplace_back(out, 0.0f);
        _macs += static_cast<std::uint64_t>(in) * out;
    }
}

std::uint64_t
Mlp::weightBytes() const
{
    std::uint64_t params = 0;
    for (std::size_t l = 0; l < _weights.size(); ++l)
        params += _weights[l].size() + _biases[l].size();
    return params * 2; // fp16 storage
}

void
Mlp::forward(const float *in, float *out) const
{
    // Channel-major with count == 1 degenerates to a plain dense
    // vector, so the scalar path is the batch kernel at width 1.
    forwardBatch(in, out, 1);
}

void
Mlp::forwardBatch(const float *in, float *out, int count) const
{
    if (count <= 0)
        return;

    // Scratch lives in TLS so concurrent forward passes on one model
    // are safe (the shared mutable buffers of the old implementation
    // were UB under multi-threaded rendering).
    thread_local std::vector<float> scratchA, scratchB;
    const std::size_t need =
        static_cast<std::size_t>(_maxWidth) * kBatchBlock;
    if (scratchA.size() < need) {
        scratchA.resize(need);
        scratchB.resize(need);
    }

    for (int b0 = 0; b0 < count; b0 += kBatchBlock) {
        const int bn = std::min(kBatchBlock, count - b0);

        // Layer inputs: block columns of `in` for the first layer
        // (stride = count), then the ping-pong scratch (stride = bn,
        // the actual block width, so partial and single-item blocks —
        // forward() is forwardBatch at count 1 — stay contiguous).
        const float *src = in + b0;
        std::size_t srcStride = static_cast<std::size_t>(count);

        for (std::size_t l = 0; l < _weights.size(); ++l) {
            const int ni = _dims[l];
            const int no = _dims[l + 1];
            const float *w = _weights[l].data();
            const float *bias = _biases[l].data();
            const bool last = l + 1 == _weights.size();

            float *dst = last ? out + b0
                              : (l % 2 == 0 ? scratchA.data()
                                            : scratchB.data());
            const std::size_t dstStride =
                last ? static_cast<std::size_t>(count)
                     : static_cast<std::size_t>(bn);

            for (int o = 0; o < no; ++o) {
                float *d = dst + o * dstStride;
                const float *row = w + static_cast<std::size_t>(o) * ni;
                const float b = bias[o];
                for (int k = 0; k < bn; ++k)
                    d[k] = b;
                // Accumulate input channels in ascending order — the
                // same order as the scalar dot product, so batched and
                // scalar results are bit-identical. Contiguous over k:
                // auto-vectorizes.
                for (int i = 0; i < ni; ++i) {
                    const float wv = row[i];
                    const float *s = src + i * srcStride;
                    for (int k = 0; k < bn; ++k)
                        d[k] += wv * s[k];
                }
                if (!last)
                    for (int k = 0; k < bn; ++k)
                        d[k] = std::fmax(0.0f, d[k]); // ReLU hidden
            }
            src = dst;
            srcStride = dstStride;
        }
    }
}

} // namespace cicero
