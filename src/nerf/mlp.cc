#include "nerf/mlp.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/parallel.hh"
#include "common/rng.hh"
#include "common/simd.hh"

namespace cicero {

namespace {

/**
 * Items per kernel block: bounds the thread-local scratch and keeps one
 * block's activations (maxWidth * kBatchBlock floats) L1-resident while
 * the weight rows stream over it.
 */
constexpr int kBatchBlock = 128;

using simd::VecF;

/**
 * One R x (C * VecF::kLanes) register tile of a dense layer: R output
 * rows by C vector lanes of items, accumulators held in registers
 * across the whole input-channel sweep. Input channels accumulate in
 * ascending order with unfused multiply-adds — per lane exactly the
 * scalar expression `acc += w * s` — so the tile is bit-identical to
 * the scalar reference for every lane.
 */
template <int R, int C>
inline void
gemmTile(const float *src, std::size_t srcStride, float *dst,
         std::size_t dstStride, const float *w, const float *bias, int ni,
         int o, int k, bool relu)
{
    VecF acc[R][C];
    for (int r = 0; r < R; ++r)
        for (int c = 0; c < C; ++c)
            acc[r][c] = VecF::broadcast(bias[o + r]);
    for (int i = 0; i < ni; ++i) {
        VecF s[C];
        const float *sp = src + static_cast<std::size_t>(i) * srcStride + k;
        for (int c = 0; c < C; ++c)
            s[c] = VecF::load(sp + c * VecF::kLanes);
        for (int r = 0; r < R; ++r) {
            const VecF wv = VecF::broadcast(
                w[static_cast<std::size_t>(o + r) * ni + i]);
            for (int c = 0; c < C; ++c)
                acc[r][c] = simd::madd(wv, s[c], acc[r][c]);
        }
    }
    for (int r = 0; r < R; ++r) {
        float *d = dst + static_cast<std::size_t>(o + r) * dstStride + k;
        for (int c = 0; c < C; ++c) {
            VecF v = relu ? simd::vmax(acc[r][c], VecF::zero())
                          : acc[r][c];
            v.store(d + c * VecF::kLanes);
        }
    }
}

/**
 * Scalar items [k, bn) of a dense layer — the tail the vector tiles
 * leave, and the whole layer under the scalar backend. Same channel
 * order and unfused arithmetic as the tiles.
 */
inline void
denseLayerScalarCols(const float *src, std::size_t srcStride, float *dst,
                     std::size_t dstStride, const float *w,
                     const float *bias, int ni, int no, int k, int bn,
                     bool relu)
{
    for (int o = 0; o < no; ++o) {
        float *d = dst + static_cast<std::size_t>(o) * dstStride;
        const float *row = w + static_cast<std::size_t>(o) * ni;
        const float b = bias[o];
        for (int kk = k; kk < bn; ++kk)
            d[kk] = b;
        // Accumulate input channels in ascending order — the same order
        // as every other path, so all paths are bit-identical.
        for (int i = 0; i < ni; ++i) {
            const float wv = row[i];
            const float *s = src + static_cast<std::size_t>(i) * srcStride;
            for (int kk = k; kk < bn; ++kk)
                d[kk] += wv * s[kk];
        }
        if (relu)
            for (int kk = k; kk < bn; ++kk)
                d[kk] = std::fmax(0.0f, d[kk]); // ReLU hidden
    }
}

/** One dense layer over a bn-item block, vector tiles + scalar tail. */
inline void
denseLayer(const float *src, std::size_t srcStride, float *dst,
           std::size_t dstStride, const float *w, const float *bias,
           int ni, int no, int bn, bool relu, bool useSimd)
{
    constexpr int L = VecF::kLanes;
    int k = 0;
    if (useSimd) {
        for (; k + 2 * L <= bn; k += 2 * L) {
            int o = 0;
            for (; o + 4 <= no; o += 4)
                gemmTile<4, 2>(src, srcStride, dst, dstStride, w, bias,
                               ni, o, k, relu);
            for (; o < no; ++o)
                gemmTile<1, 2>(src, srcStride, dst, dstStride, w, bias,
                               ni, o, k, relu);
        }
        for (; k + L <= bn; k += L) {
            int o = 0;
            for (; o + 4 <= no; o += 4)
                gemmTile<4, 1>(src, srcStride, dst, dstStride, w, bias,
                               ni, o, k, relu);
            for (; o < no; ++o)
                gemmTile<1, 1>(src, srcStride, dst, dstStride, w, bias,
                               ni, o, k, relu);
        }
    }
    if (k < bn)
        denseLayerScalarCols(src, srcStride, dst, dstStride, w, bias, ni,
                             no, k, bn, relu);
}

} // namespace

Mlp::Mlp(std::vector<int> dims, std::uint64_t seed) : _dims(std::move(dims))
{
    assert(_dims.size() >= 2);
    Rng rng(seed);
    for (std::size_t l = 0; l + 1 < _dims.size(); ++l) {
        int in = _dims[l];
        int out = _dims[l + 1];
        _maxWidth = std::max({_maxWidth, in, out});
        float scale = std::sqrt(6.0f / (in + out));
        std::vector<float> w(static_cast<std::size_t>(in) * out);
        for (auto &v : w)
            v = rng.uniform(-scale, scale);
        _weights.push_back(std::move(w));
        _biases.emplace_back(out, 0.0f);
        _macs += static_cast<std::uint64_t>(in) * out;
    }
}

std::uint64_t
Mlp::weightBytes() const
{
    std::uint64_t params = 0;
    for (std::size_t l = 0; l < _weights.size(); ++l)
        params += _weights[l].size() + _biases[l].size();
    return params * 2; // fp16 storage
}

void
Mlp::quantizeWeightsFp16()
{
    if (_fp16)
        return;
    _weightsH.resize(_weights.size());
    _biasesH.resize(_biases.size());
    for (std::size_t l = 0; l < _weights.size(); ++l) {
        _weightsH[l].resize(_weights[l].size());
        _biasesH[l].resize(_biases[l].size());
        simd::convertF32ToF16(_weights[l].data(), _weightsH[l].data(),
                              _weights[l].size());
        simd::convertF32ToF16(_biases[l].data(), _biasesH[l].data(),
                              _biases[l].size());
        // The fp32 arrays become the dequantized mirror: direct weight
        // access observes exactly what the kernel computes with.
        simd::convertF16ToF32(_weightsH[l].data(), _weights[l].data(),
                              _weights[l].size());
        simd::convertF16ToF32(_biasesH[l].data(), _biases[l].data(),
                              _biases[l].size());
    }
    _fp16 = true;
}

void
Mlp::forward(const float *in, float *out) const
{
    // Channel-major with count == 1 degenerates to a plain dense
    // vector, so the scalar path is the batch kernel at width 1.
    forwardBatch(in, out, 1);
}

void
Mlp::forwardBatch(const float *in, float *out, int count) const
{
    if (count <= 0)
        return;

    // Measured batch density: every pass notes its width so benches
    // can report how full the kernel actually ran (fused serve blocks
    // should push this well past the solo block sizes).
    parallelNoteKernelBatch(static_cast<std::uint64_t>(count));

    // Scratch lives in TLS so concurrent forward passes on one model
    // are safe (the shared mutable buffers of the old implementation
    // were UB under multi-threaded rendering).
    thread_local std::vector<float> scratchA, scratchB;
    const std::size_t need =
        static_cast<std::size_t>(_maxWidth) * kBatchBlock;
    if (scratchA.size() < need) {
        scratchA.resize(need);
        scratchB.resize(need);
    }

    // One dispatch decision per call; the kernels below never re-check.
    const bool useSimd = simd::simdActive();

    // fp16 weight storage: widen every layer's halves to fp32 once per
    // call (vectorized F16C/NEON under SIMD, the exact scalar
    // conversion otherwise — identical floats either way), then run the
    // same fp32 kernel. The widening cost is O(params), amortized over
    // the O(params * count) accumulation work.
    thread_local std::vector<float> weightsF, biasesF;
    thread_local std::vector<const float *> wPtr, bPtr;
    wPtr.resize(_weights.size());
    bPtr.resize(_biases.size());
    if (_fp16) {
        std::size_t totalW = 0, totalB = 0;
        for (std::size_t l = 0; l < _weightsH.size(); ++l) {
            totalW += _weightsH[l].size();
            totalB += _biasesH[l].size();
        }
        if (weightsF.size() < totalW)
            weightsF.resize(totalW);
        if (biasesF.size() < totalB)
            biasesF.resize(totalB);
        std::size_t ow = 0, ob = 0;
        for (std::size_t l = 0; l < _weightsH.size(); ++l) {
            simd::convertF16ToF32(_weightsH[l].data(), weightsF.data() + ow,
                                  _weightsH[l].size());
            simd::convertF16ToF32(_biasesH[l].data(), biasesF.data() + ob,
                                  _biasesH[l].size());
            wPtr[l] = weightsF.data() + ow;
            bPtr[l] = biasesF.data() + ob;
            ow += _weightsH[l].size();
            ob += _biasesH[l].size();
        }
    } else {
        for (std::size_t l = 0; l < _weights.size(); ++l) {
            wPtr[l] = _weights[l].data();
            bPtr[l] = _biases[l].data();
        }
    }

    for (int b0 = 0; b0 < count; b0 += kBatchBlock) {
        const int bn = std::min(kBatchBlock, count - b0);

        // Layer inputs: block columns of `in` for the first layer
        // (stride = count), then the ping-pong scratch (stride = bn,
        // the actual block width, so partial and single-item blocks —
        // forward() is forwardBatch at count 1 — stay contiguous).
        const float *src = in + b0;
        std::size_t srcStride = static_cast<std::size_t>(count);

        for (std::size_t l = 0; l < _weights.size(); ++l) {
            const int ni = _dims[l];
            const int no = _dims[l + 1];
            const bool last = l + 1 == _weights.size();

            float *dst = last ? out + b0
                              : (l % 2 == 0 ? scratchA.data()
                                            : scratchB.data());
            const std::size_t dstStride =
                last ? static_cast<std::size_t>(count)
                     : static_cast<std::size_t>(bn);

            denseLayer(src, srcStride, dst, dstStride, wPtr[l], bPtr[l],
                       ni, no, bn, !last, useSimd);
            src = dst;
            srcStride = dstStride;
        }
    }
}

} // namespace cicero
