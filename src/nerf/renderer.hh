/**
 * @file
 * The pixel-centric NeRF renderer: ties a Scene, an Encoding, a Decoder
 * and a RaySampler into the three-stage pipeline of Fig. 1
 * (Indexing -> Feature Gathering -> Feature Computation) and accounts
 * the per-stage work. Also provides the sparse-pixel path that SPARW's
 * disocclusion fill uses, and a ground-truth renderer that marches the
 * analytic field directly.
 */

#ifndef CICERO_NERF_RENDERER_HH
#define CICERO_NERF_RENDERER_HH

#include <memory>

#include "common/geometry.hh"
#include "common/image.hh"
#include "memory/trace.hh"
#include "nerf/decoder.hh"
#include "nerf/encoding.hh"
#include "nerf/sampler.hh"
#include "nerf/workload.hh"
#include "scene/scene.hh"

namespace cicero {

/**
 * Per-pixel geometry/material buffer: the opacity-weighted baked
 * attributes (normal, diffuse, specular, shininess) accumulated along
 * each ray. This is the input to the *radiance transfer* warping
 * extension (paper Sec. VIII): with materials known, a warped pixel's
 * radiance can be re-shaded for the new view instead of reused as-is.
 */
class GBuffer
{
  public:
    GBuffer() = default;
    GBuffer(int w, int h) : _width(w), _points(std::size_t(w) * h) {}

    bool empty() const { return _points.empty(); }

    const BakedPoint &at(int x, int y) const
    {
        return _points[std::size_t(y) * _width + x];
    }
    BakedPoint &at(int x, int y)
    {
        return _points[std::size_t(y) * _width + x];
    }
    const BakedPoint &at(std::size_t i) const { return _points[i]; }
    BakedPoint &at(std::size_t i) { return _points[i]; }

  private:
    int _width = 0;
    std::vector<BakedPoint> _points;
};

/** Output of rendering a frame (or a sparse subset of it). */
struct RenderResult
{
    Image image;
    DepthMap depth;
    StageWork work;
    GBuffer gbuffer; //!< filled only when requested
};

/**
 * A complete NeRF model instance bound to one scene.
 */
class NerfModel
{
  public:
    /**
     * @param scene          the scene this model was "trained" (baked) on
     * @param encoding       feature representation (takes ownership)
     * @param nominalMlpMacs MACs/sample of the paper-size MLP, accounted
     *                       in StageWork::mlpMacs
     * @param sampler        sampling configuration
     * @param seed           decoder residual seed
     */
    NerfModel(const Scene &scene, std::unique_ptr<Encoding> encoding,
              std::uint64_t nominalMlpMacs, const SamplerConfig &sampler,
              std::uint64_t seed = 7);

    const Encoding &encoding() const { return *_encoding; }
    Encoding &encoding() { return *_encoding; }
    const OccupancyGrid &occupancy() const { return _occupancy; }
    const Scene &scene() const { return _scene; }
    const Decoder &decoder() const { return _decoder; }
    const RaySampler &sampler() const { return _sampler; }

    /** Total model size: feature storage plus MLP weights. */
    std::uint64_t modelBytes() const;

    /**
     * Render a full frame, pixel-centric (the baseline order).
     *
     * Runs tile-parallel on the global pool (common/parallel.hh) with
     * bit-identical output at any thread count. Traced runs also go
     * parallel: each ray records its gather accesses into a private
     * RayTraceBuffer slot, and the buffer replays the slots in
     * canonical ray-id order, so @p trace sees a stream byte-identical
     * to the serial walk (the memory-model access-order contract).
     *
     * @param trace optional sink receiving every gather access.
     * @param wantGBuffer also accumulate the per-pixel material buffer
     *        (used by the radiance-transfer warping extension).
     */
    RenderResult render(const Camera &camera,
                        TraceSink *trace = nullptr,
                        bool wantGBuffer = false) const;

    /**
     * Serving-path render: walk the frame's pixels serially on the
     * *calling* thread (no internal parallelFor — when the serve
     * layer wants intra-frame parallelism it fans the frame out into
     * row-block tasks itself via renderServeRows), decoding each ray
     * block through @p sink when given. The pixel walk, ray ids and
     * per-sample math are identical to render(), so with a conforming
     * sink (one whose results are bit-identical to
     * Decoder::decodeBatchSoA per block — see DecodeSink) the output
     * is bit-identical to render() on the same camera.
     * @p sink == nullptr decodes directly (the unfused serving
     * baseline).
     */
    RenderResult renderServe(const Camera &camera,
                             DecodeSink *sink = nullptr) const;

    /**
     * Serving-path render of the contiguous row range
     * [@p rowBegin, @p rowEnd): the building block of the serve
     * layer's intra-frame ray-block fan-out. Walks exactly the pixels
     * renderServe would visit in those rows, with the same ray ids and
     * per-sample math, writing into @p image / @p depth (pre-sized to
     * the camera resolution; rows are disjoint, so concurrent calls on
     * non-overlapping ranges compose to the full frame bit-identically
     * to renderServe — per-ray decode blocking is internal to each
     * ray, so the row decomposition cannot change bits). Returns the
     * StageWork for the range; StageWork is all summed counters, so
     * accumulation order across blocks is irrelevant.
     */
    StageWork renderServeRows(const Camera &camera, int rowBegin,
                              int rowEnd, Image &image, DepthMap &depth,
                              DecodeSink *sink = nullptr) const;

    /**
     * Render only @p pixelIds (y * width + x), writing into @p image and
     * @p depth which must be pre-sized; used for sparse NeRF rendering of
     * disoccluded pixels (Eq. 4).
     */
    StageWork renderPixels(const Camera &camera,
                           const std::vector<std::uint32_t> &pixelIds,
                           Image &image, DepthMap &depth,
                           TraceSink *trace = nullptr) const;

    /**
     * Workload-trace mode: walk the frame the way the *real* renderer
     * does work, without producing an image. Every marched in-bounds
     * sample gathers its features (real NeRF models probe density per
     * sample — this is what makes Feature Gathering dominate, Fig. 3),
     * while only occupied samples are charged MLP work (empty samples
     * short-circuit Feature Computation). Emits the full gather access
     * stream into @p trace.
     */
    StageWork traceWorkload(const Camera &camera,
                            TraceSink *trace = nullptr) const;

    /** Workload-trace of a sparse pixel set (SPARW's Eq. 4 path). */
    StageWork
    traceWorkloadPixels(const Camera &camera,
                        const std::vector<std::uint32_t> &pixelIds,
                        TraceSink *trace = nullptr) const;

    /**
     * Normalized positions of the samples whose features the frame must
     * actually compute — the occupied (shaded) samples. This is what the
     * Ray Index Table records: Indexing consults the SRAM-resident
     * occupancy grid, so empty samples never enter the RIT and the
     * fully-streaming flow never gathers them. Input to
     * Encoding::streamingFootprint.
     */
    std::vector<Vec3> collectSamplePositions(const Camera &camera) const;

    /** Shaded-sample positions for a sparse pixel subset. */
    std::vector<Vec3>
    collectSamplePositionsPixels(
        const Camera &camera,
        const std::vector<std::uint32_t> &pixelIds) const;

    /** Per-sample nominal MLP MACs (Feature Computation accounting). */
    std::uint64_t nominalMlpMacs() const { return _nominalMlpMacs; }

    /**
     * Quantize the whole model to fp16 storage: encoding features
     * (Encoding::quantizeFeaturesFp16) and decoder MLP weights
     * (Decoder::quantizeWeightsFp16). Halves the resident footprint —
     * the serve layer's shared-model cache keys fp16 and fp32
     * variants separately so sessions pick one deliberately. Not
     * thread-safe against concurrent renders; call before sharing.
     */
    void quantizeFp16();

  private:
    void renderOne(const Camera &camera, int px, int py,
                   std::uint32_t rayId, Vec3 &rgbOut, float &depthOut,
                   StageWork &work, TraceSink *trace,
                   BakedPoint *gbufOut = nullptr,
                   DecodeSink *decodeSink = nullptr) const;

    void traceOne(const Camera &camera, int px, int py,
                  std::uint32_t rayId, StageWork &work,
                  TraceSink *trace) const;

    Scene _scene;
    std::unique_ptr<Encoding> _encoding;
    Decoder _decoder;
    OccupancyGrid _occupancy;
    RaySampler _sampler;
    RaySampler _workloadSampler; //!< no occupancy skip: every sample
    std::uint64_t _nominalMlpMacs;
};

/**
 * Ground-truth render: march the analytic field directly with fine
 * steps. This is the PSNR reference for every quality experiment.
 */
RenderResult renderGroundTruth(const Scene &scene, const Camera &camera,
                               int stepsAcross = 384);

} // namespace cicero

#endif // CICERO_NERF_RENDERER_HH
