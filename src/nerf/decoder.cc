#include "nerf/decoder.hh"

#include <cmath>

namespace cicero {

void
encodeBakedPoint(const BakedPoint &pt, float *feature)
{
    feature[0] = pt.sigma / kSigmaScale;
    feature[1] = pt.diffuse.x;
    feature[2] = pt.diffuse.y;
    feature[3] = pt.diffuse.z;
    feature[4] = pt.normal.x * 0.5f + 0.5f;
    feature[5] = pt.normal.y * 0.5f + 0.5f;
    feature[6] = pt.normal.z * 0.5f + 0.5f;
    feature[7] = pt.specular;
    feature[8] = pt.shininess / kShinScale;
}

BakedPoint
decodeBakedFeature(const float *feature)
{
    BakedPoint pt;
    pt.sigma = std::fmax(0.0f, feature[0]) * kSigmaScale;
    pt.diffuse = {clamp(feature[1], 0.0f, 1.0f),
                  clamp(feature[2], 0.0f, 1.0f),
                  clamp(feature[3], 0.0f, 1.0f)};
    Vec3 n{feature[4] * 2.0f - 1.0f, feature[5] * 2.0f - 1.0f,
           feature[6] * 2.0f - 1.0f};
    pt.normal = n.normalized();
    pt.specular = clamp(feature[7], 0.0f, 1.0f);
    pt.shininess = std::fmax(1.0f, feature[8] * kShinScale);
    return pt;
}

Decoder::Decoder(const Vec3 &lightDir, int hiddenWidth, int hiddenLayers,
                 std::uint64_t nominalMacs, float residualAmp,
                 std::uint64_t seed)
    : _lightDir(lightDir.normalized()),
      _mlp(
          [&] {
              std::vector<int> dims;
              dims.push_back(kFeatureDim + 3); // feature + view direction
              for (int l = 0; l < hiddenLayers; ++l)
                  dims.push_back(hiddenWidth);
              dims.push_back(4); // sigma residual (unused) + rgb residual
              return dims;
          }(),
          seed),
      _nominalMacs(nominalMacs ? nominalMacs : _mlp.macsPerInference()),
      _residualAmp(residualAmp)
{
}

DecodedSample
Decoder::decode(const float *feature, const Vec3 &viewDir) const
{
    BakedPoint pt = decodeBakedFeature(feature);

    DecodedSample out;
    out.sigma = pt.sigma;
    if (pt.sigma <= 0.0f)
        return out;

    out.rgb = shadePoint(pt, viewDir, _lightDir);

    // Residual from the executed (frozen, random) MLP: stands in for the
    // irreducible reconstruction error of a trained network.
    float in[kFeatureDim + 3];
    for (int i = 0; i < kFeatureDim; ++i)
        in[i] = feature[i];
    Vec3 v = viewDir.normalized();
    in[kFeatureDim + 0] = v.x;
    in[kFeatureDim + 1] = v.y;
    in[kFeatureDim + 2] = v.z;

    float res[4];
    _mlp.forward(in, res);
    out.rgb.x = clamp(out.rgb.x + _residualAmp * std::tanh(res[1]),
                      0.0f, 1.0f);
    out.rgb.y = clamp(out.rgb.y + _residualAmp * std::tanh(res[2]),
                      0.0f, 1.0f);
    out.rgb.z = clamp(out.rgb.z + _residualAmp * std::tanh(res[3]),
                      0.0f, 1.0f);
    return out;
}

} // namespace cicero
