#include "nerf/decoder.hh"

#include <cmath>
#include <cstdlib>
#include <vector>

#include "common/fault.hh"
#include "common/simd.hh"

namespace cicero {

void
encodeBakedPoint(const BakedPoint &pt, float *feature)
{
    feature[0] = pt.sigma / kSigmaScale;
    feature[1] = pt.diffuse.x;
    feature[2] = pt.diffuse.y;
    feature[3] = pt.diffuse.z;
    feature[4] = pt.normal.x * 0.5f + 0.5f;
    feature[5] = pt.normal.y * 0.5f + 0.5f;
    feature[6] = pt.normal.z * 0.5f + 0.5f;
    feature[7] = pt.specular;
    feature[8] = pt.shininess / kShinScale;
}

BakedPoint
decodeBakedFeature(const float *feature)
{
    BakedPoint pt;
    pt.sigma = std::fmax(0.0f, feature[0]) * kSigmaScale;
    pt.diffuse = {clamp(feature[1], 0.0f, 1.0f),
                  clamp(feature[2], 0.0f, 1.0f),
                  clamp(feature[3], 0.0f, 1.0f)};
    Vec3 n{feature[4] * 2.0f - 1.0f, feature[5] * 2.0f - 1.0f,
           feature[6] * 2.0f - 1.0f};
    pt.normal = n.normalized();
    pt.specular = clamp(feature[7], 0.0f, 1.0f);
    pt.shininess = std::fmax(1.0f, feature[8] * kShinScale);
    return pt;
}

Decoder::Decoder(const Vec3 &lightDir, int hiddenWidth, int hiddenLayers,
                 std::uint64_t nominalMacs, float residualAmp,
                 std::uint64_t seed)
    : _lightDir(lightDir.normalized()),
      _mlp(
          [&] {
              std::vector<int> dims;
              dims.push_back(kFeatureDim + 3); // feature + view direction
              for (int l = 0; l < hiddenLayers; ++l)
                  dims.push_back(hiddenWidth);
              dims.push_back(4); // sigma residual (unused) + rgb residual
              return dims;
          }(),
          seed),
      _nominalMacs(nominalMacs ? nominalMacs : _mlp.macsPerInference()),
      _residualAmp(residualAmp)
{
}

DecodedSample
Decoder::decode(const float *feature, const Vec3 &viewDir) const
{
    BakedPoint pt = decodeBakedFeature(feature);

    DecodedSample out;
    out.sigma = pt.sigma;
    if (pt.sigma <= 0.0f)
        return out;

    out.rgb = shadePoint(pt, viewDir, _lightDir);

    // Residual from the executed (frozen, random) MLP: stands in for the
    // irreducible reconstruction error of a trained network.
    float in[kFeatureDim + 3];
    for (int i = 0; i < kFeatureDim; ++i)
        in[i] = feature[i];
    Vec3 v = viewDir.normalized();
    in[kFeatureDim + 0] = v.x;
    in[kFeatureDim + 1] = v.y;
    in[kFeatureDim + 2] = v.z;

    float res[4];
    _mlp.forward(in, res);
    out.rgb.x = clamp(out.rgb.x + _residualAmp * std::tanh(res[1]),
                      0.0f, 1.0f);
    out.rgb.y = clamp(out.rgb.y + _residualAmp * std::tanh(res[2]),
                      0.0f, 1.0f);
    out.rgb.z = clamp(out.rgb.z + _residualAmp * std::tanh(res[3]),
                      0.0f, 1.0f);
    return out;
}

void
Decoder::quantizeWeightsFp16()
{
    _mlp.quantizeWeightsFp16();
}

void
Decoder::decodeChunk(const float *features, std::size_t featureStride,
                     int count, const Vec3 &viewDir,
                     const Vec3 &viewNorm, DecodedSample *out) const
{
    // Fixed-capacity TLS scratch: sized once for kDecodeChunk items and
    // hard-checked against, never silently regrown — a chunked caller
    // that outgrew it would otherwise reallocate on every hot-loop call
    // (the fp16 weight path already pays a per-call widening pass; an
    // allocation on top would dwarf the kernel). The check is
    // unconditional, not an assert: release builds (-DNDEBUG) are the
    // only builds this project ships, and overflowing the scratch
    // would be silent heap corruption.
    if (count < 1 || count > kDecodeChunk)
        std::abort();
    constexpr int inDim = kFeatureDim + 3;
    thread_local std::vector<float> mlpIn(
        static_cast<std::size_t>(inDim) * kDecodeChunk);
    thread_local std::vector<float> mlpOut(
        static_cast<std::size_t>(4) * kDecodeChunk);

    // The gathered features are already channel-major: one contiguous
    // copy per channel (the old sample-major layout needed a full
    // strided transposition here), then the normalized view direction
    // broadcast into the last three channels.
    const std::size_t nC = static_cast<std::size_t>(count);
    for (int c = 0; c < kFeatureDim; ++c) {
        const float *src = features + static_cast<std::size_t>(c) *
                                          featureStride;
        float *dst = mlpIn.data() + static_cast<std::size_t>(c) * nC;
        for (int b = 0; b < count; ++b)
            dst[b] = src[b];
    }
    for (int b = 0; b < count; ++b) {
        mlpIn[(kFeatureDim + 0) * nC + b] = viewNorm.x;
        mlpIn[(kFeatureDim + 1) * nC + b] = viewNorm.y;
        mlpIn[(kFeatureDim + 2) * nC + b] = viewNorm.z;
    }

    // One blocked pass instead of count virtual-call round trips. The
    // residual of empty (sigma <= 0) samples is computed and discarded;
    // their decode below never reads it, matching the scalar path's
    // early return.
    _mlp.forwardBatch(mlpIn.data(), mlpOut.data(), count);

    float feature[kFeatureDim];
    for (int b = 0; b < count; ++b) {
        for (int c = 0; c < kFeatureDim; ++c)
            feature[c] =
                features[static_cast<std::size_t>(c) * featureStride + b];
        BakedPoint pt = decodeBakedFeature(feature);

        DecodedSample d;
        d.sigma = pt.sigma;
        if (pt.sigma > 0.0f) {
            d.rgb = shadePoint(pt, viewDir, _lightDir);
            d.rgb.x = clamp(d.rgb.x +
                                _residualAmp * std::tanh(mlpOut[1 * nC + b]),
                            0.0f, 1.0f);
            d.rgb.y = clamp(d.rgb.y +
                                _residualAmp * std::tanh(mlpOut[2 * nC + b]),
                            0.0f, 1.0f);
            d.rgb.z = clamp(d.rgb.z +
                                _residualAmp * std::tanh(mlpOut[3 * nC + b]),
                            0.0f, 1.0f);
        }
        out[b] = d;
    }
}

void
Decoder::decodeBatchSoA(const float *features, std::size_t featureStride,
                        int count, const Vec3 &viewDir,
                        DecodedSample *out) const
{
    if (count <= 0)
        return;
    const Vec3 viewNorm = viewDir.normalized();
    for (int b0 = 0; b0 < count; b0 += kDecodeChunk)
        decodeChunk(features + b0, featureStride,
                    std::min(kDecodeChunk, count - b0), viewDir, viewNorm,
                    out + b0);
}

void
Decoder::decodeBlocksFused(const DecodeBlock *blocks, int numBlocks) const
{
    faultCheck(FaultSite::MlpDecode);

    constexpr int inDim = kFeatureDim + 3;
    thread_local std::vector<float> mlpIn(
        static_cast<std::size_t>(inDim) * kDecodeChunk);
    thread_local std::vector<float> mlpOut(
        static_cast<std::size_t>(4) * kDecodeChunk);

    int b = 0;
    while (b < numBlocks) {
        // Greedily pack consecutive blocks into one staging pass. A
        // single block wider than the staging buffer goes through the
        // chunked per-block path instead (its internal chunking
        // preserves sample order, so bits are unchanged).
        int total = 0;
        int e = b;
        while (e < numBlocks &&
               total + blocks[e].count <= kDecodeChunk &&
               blocks[e].count > 0) {
            total += blocks[e].count;
            ++e;
        }
        if (e == b) {
            const DecodeBlock &blk = blocks[b];
            if (blk.count > 0)
                decodeBatchSoA(blk.features, blk.featureStride, blk.count,
                               blk.viewDir, blk.out);
            ++b;
            continue;
        }

        // Stage: each block's feature channels copied into the packed
        // channel-major layout, its normalized view direction broadcast
        // into the three direction channels of its own columns.
        const std::size_t n = static_cast<std::size_t>(total);
        std::size_t off = 0;
        for (int k = b; k < e; ++k) {
            const DecodeBlock &blk = blocks[k];
            for (int c = 0; c < kFeatureDim; ++c) {
                const float *src =
                    blk.features +
                    static_cast<std::size_t>(c) * blk.featureStride;
                float *dst = mlpIn.data() +
                             static_cast<std::size_t>(c) * n + off;
                for (int j = 0; j < blk.count; ++j)
                    dst[j] = src[j];
            }
            const Vec3 v = blk.viewDir.normalized();
            for (int j = 0; j < blk.count; ++j) {
                mlpIn[(kFeatureDim + 0) * n + off + j] = v.x;
                mlpIn[(kFeatureDim + 1) * n + off + j] = v.y;
                mlpIn[(kFeatureDim + 2) * n + off + j] = v.z;
            }
            off += static_cast<std::size_t>(blk.count);
        }

        // One MLP pass for every fused block.
        _mlp.forwardBatch(mlpIn.data(), mlpOut.data(), total);

        // Per-block epilogue — identical per-sample math to
        // decodeChunk(), reading the staged copies (same bits as the
        // source buffers).
        off = 0;
        for (int k = b; k < e; ++k) {
            const DecodeBlock &blk = blocks[k];
            float feature[kFeatureDim];
            for (int j = 0; j < blk.count; ++j) {
                for (int c = 0; c < kFeatureDim; ++c)
                    feature[c] =
                        mlpIn[static_cast<std::size_t>(c) * n + off + j];
                BakedPoint pt = decodeBakedFeature(feature);

                DecodedSample d;
                d.sigma = pt.sigma;
                if (pt.sigma > 0.0f) {
                    d.rgb = shadePoint(pt, blk.viewDir, _lightDir);
                    d.rgb.x = clamp(d.rgb.x + _residualAmp *
                                                  std::tanh(mlpOut[1 * n +
                                                                   off + j]),
                                    0.0f, 1.0f);
                    d.rgb.y = clamp(d.rgb.y + _residualAmp *
                                                  std::tanh(mlpOut[2 * n +
                                                                   off + j]),
                                    0.0f, 1.0f);
                    d.rgb.z = clamp(d.rgb.z + _residualAmp *
                                                  std::tanh(mlpOut[3 * n +
                                                                   off + j]),
                                    0.0f, 1.0f);
                }
                blk.out[j] = d;
            }
            off += static_cast<std::size_t>(blk.count);
        }
        b = e;
    }
}

void
Decoder::decodeBatch(const float *features, int count,
                     const Vec3 &viewDir, DecodedSample *out) const
{
    if (count <= 0)
        return;

    // Sample-major entry point (streaming renderers scatter-accumulate
    // their feature buffers per sample): transpose chunk-wise into the
    // channel-major layout the core consumes. Results are bit-identical
    // to decodeBatchSoA — the layouts hold the same values.
    thread_local std::vector<float> soa(
        static_cast<std::size_t>(kFeatureDim) * kDecodeChunk);
    const Vec3 viewNorm = viewDir.normalized();
    for (int b0 = 0; b0 < count; b0 += kDecodeChunk) {
        const int bn = std::min(kDecodeChunk, count - b0);
        simd::transposeToChannelMajor(
            features + static_cast<std::size_t>(b0) * kFeatureDim, bn,
            kFeatureDim, soa.data());
        decodeChunk(soa.data(), static_cast<std::size_t>(bn), bn, viewDir,
                    viewNorm, out + b0);
    }
}

} // namespace cicero
