#include "nerf/decoder.hh"

#include <cmath>
#include <vector>

namespace cicero {

void
encodeBakedPoint(const BakedPoint &pt, float *feature)
{
    feature[0] = pt.sigma / kSigmaScale;
    feature[1] = pt.diffuse.x;
    feature[2] = pt.diffuse.y;
    feature[3] = pt.diffuse.z;
    feature[4] = pt.normal.x * 0.5f + 0.5f;
    feature[5] = pt.normal.y * 0.5f + 0.5f;
    feature[6] = pt.normal.z * 0.5f + 0.5f;
    feature[7] = pt.specular;
    feature[8] = pt.shininess / kShinScale;
}

BakedPoint
decodeBakedFeature(const float *feature)
{
    BakedPoint pt;
    pt.sigma = std::fmax(0.0f, feature[0]) * kSigmaScale;
    pt.diffuse = {clamp(feature[1], 0.0f, 1.0f),
                  clamp(feature[2], 0.0f, 1.0f),
                  clamp(feature[3], 0.0f, 1.0f)};
    Vec3 n{feature[4] * 2.0f - 1.0f, feature[5] * 2.0f - 1.0f,
           feature[6] * 2.0f - 1.0f};
    pt.normal = n.normalized();
    pt.specular = clamp(feature[7], 0.0f, 1.0f);
    pt.shininess = std::fmax(1.0f, feature[8] * kShinScale);
    return pt;
}

Decoder::Decoder(const Vec3 &lightDir, int hiddenWidth, int hiddenLayers,
                 std::uint64_t nominalMacs, float residualAmp,
                 std::uint64_t seed)
    : _lightDir(lightDir.normalized()),
      _mlp(
          [&] {
              std::vector<int> dims;
              dims.push_back(kFeatureDim + 3); // feature + view direction
              for (int l = 0; l < hiddenLayers; ++l)
                  dims.push_back(hiddenWidth);
              dims.push_back(4); // sigma residual (unused) + rgb residual
              return dims;
          }(),
          seed),
      _nominalMacs(nominalMacs ? nominalMacs : _mlp.macsPerInference()),
      _residualAmp(residualAmp)
{
}

DecodedSample
Decoder::decode(const float *feature, const Vec3 &viewDir) const
{
    BakedPoint pt = decodeBakedFeature(feature);

    DecodedSample out;
    out.sigma = pt.sigma;
    if (pt.sigma <= 0.0f)
        return out;

    out.rgb = shadePoint(pt, viewDir, _lightDir);

    // Residual from the executed (frozen, random) MLP: stands in for the
    // irreducible reconstruction error of a trained network.
    float in[kFeatureDim + 3];
    for (int i = 0; i < kFeatureDim; ++i)
        in[i] = feature[i];
    Vec3 v = viewDir.normalized();
    in[kFeatureDim + 0] = v.x;
    in[kFeatureDim + 1] = v.y;
    in[kFeatureDim + 2] = v.z;

    float res[4];
    _mlp.forward(in, res);
    out.rgb.x = clamp(out.rgb.x + _residualAmp * std::tanh(res[1]),
                      0.0f, 1.0f);
    out.rgb.y = clamp(out.rgb.y + _residualAmp * std::tanh(res[2]),
                      0.0f, 1.0f);
    out.rgb.z = clamp(out.rgb.z + _residualAmp * std::tanh(res[3]),
                      0.0f, 1.0f);
    return out;
}

void
Decoder::decodeBatch(const float *features, int count,
                     const Vec3 &viewDir, DecodedSample *out) const
{
    if (count <= 0)
        return;

    // Transpose the gathered sample-major features into the
    // channel-major (SoA) layout the batched MLP kernel consumes, and
    // broadcast the (normalized) view direction channels.
    const int inDim = kFeatureDim + 3;
    const std::size_t n = static_cast<std::size_t>(count);
    thread_local std::vector<float> mlpIn, mlpOut;
    if (mlpIn.size() < static_cast<std::size_t>(inDim) * n)
        mlpIn.resize(static_cast<std::size_t>(inDim) * n);
    if (mlpOut.size() < 4 * n)
        mlpOut.resize(4 * n);

    Vec3 v = viewDir.normalized();
    for (int c = 0; c < kFeatureDim; ++c) {
        float *col = mlpIn.data() + static_cast<std::size_t>(c) * n;
        const float *src = features + c;
        for (int b = 0; b < count; ++b)
            col[b] = src[static_cast<std::size_t>(b) * kFeatureDim];
    }
    for (int b = 0; b < count; ++b) {
        mlpIn[(kFeatureDim + 0) * n + b] = v.x;
        mlpIn[(kFeatureDim + 1) * n + b] = v.y;
        mlpIn[(kFeatureDim + 2) * n + b] = v.z;
    }

    // One blocked pass instead of count virtual-call round trips. The
    // residual of empty (sigma <= 0) samples is computed and discarded;
    // their decode below never reads it, matching the scalar path's
    // early return.
    _mlp.forwardBatch(mlpIn.data(), mlpOut.data(), count);

    for (int b = 0; b < count; ++b) {
        const float *feature =
            features + static_cast<std::size_t>(b) * kFeatureDim;
        BakedPoint pt = decodeBakedFeature(feature);

        DecodedSample d;
        d.sigma = pt.sigma;
        if (pt.sigma > 0.0f) {
            d.rgb = shadePoint(pt, viewDir, _lightDir);
            d.rgb.x = clamp(d.rgb.x +
                                _residualAmp * std::tanh(mlpOut[1 * n + b]),
                            0.0f, 1.0f);
            d.rgb.y = clamp(d.rgb.y +
                                _residualAmp * std::tanh(mlpOut[2 * n + b]),
                            0.0f, 1.0f);
            d.rgb.z = clamp(d.rgb.z +
                                _residualAmp * std::tanh(mlpOut[3 * n + b]),
                            0.0f, 1.0f);
        }
        out[b] = d;
    }
}

} // namespace cicero
