/**
 * @file
 * Multiresolution hash-grid encoding (Instant-NGP-like).
 *
 * L levels of geometrically growing resolution; coarse levels whose
 * vertex count fits the per-level table are stored densely, finer levels
 * are hashed (with real collisions — baking averages colliding vertices,
 * reproducing NGP's characteristic reconstruction artifacts).
 *
 * Deviation from Instant-NGP noted in DESIGN.md §3: each level stores
 * all kFeatureDim semantic channels (a residual pyramid) rather than 2
 * learned channels; the access pattern — 8 fetches x L levels, hashed
 * addresses on fine levels — is preserved, which is what the memory
 * experiments depend on.
 */

#ifndef CICERO_NERF_HASH_GRID_HH
#define CICERO_NERF_HASH_GRID_HH

#include "nerf/decoder.hh"
#include "nerf/encoding.hh"

namespace cicero {

/** Hash-grid shape parameters. */
struct HashGridConfig
{
    int numLevels = 8;
    int baseRes = 12;            //!< coarsest level voxels per axis
    float perLevelScale = 1.3f;  //!< geometric growth factor
    std::uint32_t tableSize = 1u << 15; //!< slots per hashed level
    int blockVerts = 8;          //!< MVoxel edge for streamable levels

    /** The paper-scale configuration (finer, larger tables). */
    static HashGridConfig full();
};

class HashGridEncoding : public Encoding
{
  public:
    explicit HashGridEncoding(const HashGridConfig &config = {});

    std::string name() const override { return "hash-grid"; }
    int featureDim() const override { return kFeatureDim; }
    std::uint64_t modelBytes() const override;
    std::uint32_t fetchesPerSample() const override
    {
        return 8 * _config.numLevels;
    }
    std::uint64_t interpOpsPerSample() const override;
    std::uint64_t indexOpsPerSample() const override
    {
        // Per level: scale + floor + 8 hash computations.
        return static_cast<std::uint64_t>(_config.numLevels) * 20;
    }

    void bake(const AnalyticField &field) override;
    void gatherFeature(const Vec3 &pn, float *out) const override;
    void gatherAccesses(const Vec3 &pn, std::uint32_t rayId,
                        std::vector<MemAccess> &out) const override;
    void gatherFeatureBatch(const Vec3 *pn, int n,
                            float *out) const override;
    void gatherAccessesBatch(const Vec3 *pn, int n, std::uint32_t rayId,
                             std::vector<MemAccess> &out) const override;
    StreamPlan
    streamingFootprint(const std::vector<Vec3> &positions) const override;

    const HashGridConfig &config() const { return _config; }

    /** Resolution (voxels per axis) of level @p l. */
    int levelRes(int l) const { return _levels[l].res; }

    /** Whether level @p l is densely stored (streamable). */
    bool levelDense(int l) const { return _levels[l].dense; }

    /** Index of the first hashed (non-streaming) level, as in Sec. IV-A
     *  ("this reversion happens in Instant-NGP from level 5 onwards"). */
    int revertLevel() const;

    std::uint32_t vertexBytes() const
    {
        return kFeatureDim * kBytesPerChannel;
    }

    /**
     * Round every stored feature channel to its nearest fp16 value —
     * after this the functional tables hold exactly what the 2-byte
     * DRAM storage priced by modelBytes()/vertexBytes() holds. Sticky
     * across re-bakes. Idempotent.
     */
    void quantizeFeaturesFp16();

    /** Whether feature storage has been quantized to fp16 values. */
    bool featuresFp16() const { return _featuresFp16; }

    // --- Level internals exposed for the hierarchical streaming
    // --- renderer (Sec. IV-A "Accommodating Hierarchical Data
    // --- Encodings").

    /** Storage slot of vertex (ix,iy,iz) at level @p l. */
    std::uint32_t levelSlot(int l, int ix, int iy, int iz) const
    {
        return slotOf(_levels[l], ix, iy, iz);
    }

    /** DRAM base address of level @p l's table. */
    std::uint64_t levelBaseAddr(int l) const
    {
        return _levels[l].baseAddr;
    }

    /** Slot count of level @p l. */
    std::uint32_t levelSlots(int l) const { return _levels[l].slots; }

    /** Functional channel data of a slot at level @p l. */
    const float *
    levelData(int l, std::uint32_t slot) const
    {
        return _levels[l].data.data() +
               static_cast<std::size_t>(slot) * kFeatureDim;
    }

  private:
    struct Level
    {
        int res = 0;           //!< voxels per axis
        bool dense = false;    //!< dense (linear) vs hashed storage
        std::uint32_t slots = 0;
        std::uint64_t baseAddr = 0;
        std::vector<float> data; //!< slots x featureDim
    };

    std::uint32_t slotOf(const Level &lvl, int ix, int iy, int iz) const;

    /** Accumulate the interpolation of levels [0, uptoLevel) at @p pn. */
    void gatherUpto(const Vec3 &pn, int uptoLevel, float *out) const;

    /** Level-major scalar sweep of samples [s0, s1) into SoA @p out. */
    void gatherBatchScalar(const Vec3 *pn, int s0, int s1, int n,
                           float *out) const;

    HashGridConfig _config;
    std::vector<Level> _levels;
    bool _featuresFp16 = false;
};

} // namespace cicero

#endif // CICERO_NERF_HASH_GRID_HH
