#include "nerf/dense_grid.hh"

#include <cassert>
#include <cmath>
#include <unordered_set>
#include <vector>

#include "common/simd.hh"

namespace cicero {

DenseGridEncoding::DenseGridEncoding(int voxelsPerAxis, GridLayout layout,
                                     int blockVerts)
    : _n(voxelsPerAxis),
      _v(voxelsPerAxis + 1),
      _layout(layout),
      _blockVerts(blockVerts),
      _blocksPerAxis((_v + blockVerts - 1) / blockVerts),
      _data(static_cast<std::size_t>(_v) * _v * _v * kFeatureDim, 0.0f)
{
    assert(voxelsPerAxis >= 1 && blockVerts >= 2);
}

std::size_t
DenseGridEncoding::storageIndex(int ix, int iy, int iz) const
{
    return ((static_cast<std::size_t>(iz) * _v + iy) * _v + ix) *
           kFeatureDim;
}

std::uint64_t
DenseGridEncoding::modelBytes() const
{
    return static_cast<std::uint64_t>(_v) * _v * _v * vertexBytes();
}

std::uint64_t
DenseGridEncoding::interpOpsPerSample() const
{
    // Weight computation plus 8-corner weighted accumulation per channel.
    return 24 + 8ull * kFeatureDim;
}

void
DenseGridEncoding::bake(const AnalyticField &field)
{
    const Aabb &b = field.bounds();
    Vec3 e = b.extent();
    for (int iz = 0; iz < _v; ++iz) {
        for (int iy = 0; iy < _v; ++iy) {
            for (int ix = 0; ix < _v; ++ix) {
                Vec3 p{b.lo.x + e.x * ix / _n, b.lo.y + e.y * iy / _n,
                       b.lo.z + e.z * iz / _n};
                BakedPoint bp = field.bakePoint(p);
                encodeBakedPoint(bp,
                                 _data.data() + storageIndex(ix, iy, iz));
            }
        }
    }
    if (_featuresFp16)
        quantizeFeaturesFp16(); // sticky: re-bakes stay 2-byte-valued
}

std::uint32_t
DenseGridEncoding::mvoxelOfVertex(int ix, int iy, int iz) const
{
    std::uint32_t bx = ix / _blockVerts;
    std::uint32_t by = iy / _blockVerts;
    std::uint32_t bz = iz / _blockVerts;
    return (bz * _blocksPerAxis + by) * _blocksPerAxis + bx;
}

std::uint32_t
DenseGridEncoding::numMVoxels() const
{
    return _blocksPerAxis * _blocksPerAxis * _blocksPerAxis;
}

std::uint64_t
DenseGridEncoding::mvoxelBytes() const
{
    return static_cast<std::uint64_t>(_blockVerts) * _blockVerts *
           _blockVerts * vertexBytes();
}

std::uint64_t
DenseGridEncoding::mvoxelBaseAddr(std::uint32_t id) const
{
    return id * mvoxelBytes();
}

std::uint64_t
DenseGridEncoding::vertexAddr(int ix, int iy, int iz) const
{
    if (_layout == GridLayout::Linear) {
        return ((static_cast<std::uint64_t>(iz) * _v + iy) * _v + ix) *
               vertexBytes();
    }
    // MVoxelBlocked: block base + x-fastest offset within the block.
    std::uint32_t block = mvoxelOfVertex(ix, iy, iz);
    int lx = ix % _blockVerts;
    int ly = iy % _blockVerts;
    int lz = iz % _blockVerts;
    std::uint64_t local =
        (static_cast<std::uint64_t>(lz) * _blockVerts + ly) * _blockVerts +
        lx;
    return mvoxelBaseAddr(block) + local * vertexBytes();
}

const float *
DenseGridEncoding::vertexData(int ix, int iy, int iz) const
{
    return _data.data() + storageIndex(ix, iy, iz);
}

std::array<GridCorner, 8>
DenseGridEncoding::corners(const Vec3 &pn) const
{
    float fx = clamp(pn.x, 0.0f, 1.0f) * _n;
    float fy = clamp(pn.y, 0.0f, 1.0f) * _n;
    float fz = clamp(pn.z, 0.0f, 1.0f) * _n;
    int x0 = std::min(static_cast<int>(fx), _n - 1);
    int y0 = std::min(static_cast<int>(fy), _n - 1);
    int z0 = std::min(static_cast<int>(fz), _n - 1);
    float tx = fx - x0;
    float ty = fy - y0;
    float tz = fz - z0;

    std::array<GridCorner, 8> out;
    for (int c = 0; c < 8; ++c) {
        int dx = c & 1;
        int dy = (c >> 1) & 1;
        int dz = (c >> 2) & 1;
        GridCorner &gc = out[c];
        gc.ix = x0 + dx;
        gc.iy = y0 + dy;
        gc.iz = z0 + dz;
        gc.weight = (dx ? tx : 1.0f - tx) * (dy ? ty : 1.0f - ty) *
                    (dz ? tz : 1.0f - tz);
        gc.addr = vertexAddr(gc.ix, gc.iy, gc.iz);
        gc.mvoxel = mvoxelOfVertex(gc.ix, gc.iy, gc.iz);
    }
    return out;
}

void
DenseGridEncoding::gatherFeature(const Vec3 &pn, float *out) const
{
    auto cs = corners(pn);
    for (int ch = 0; ch < kFeatureDim; ++ch)
        out[ch] = 0.0f;
    for (const GridCorner &c : cs) {
        const float *v = vertexData(c.ix, c.iy, c.iz);
        for (int ch = 0; ch < kFeatureDim; ++ch)
            out[ch] += c.weight * v[ch];
    }
}

void
DenseGridEncoding::gatherAccesses(const Vec3 &pn, std::uint32_t rayId,
                                  std::vector<MemAccess> &out) const
{
    auto cs = corners(pn);
    for (const GridCorner &c : cs)
        out.push_back(MemAccess{c.addr, vertexBytes(), rayId});
}

void
DenseGridEncoding::gatherBatchScalar(const Vec3 *pn, int s0, int s1,
                                     int n, float *out) const
{
    // Unlike corners(), the functional batch skips the DRAM address and
    // MVoxel computations entirely — only weights and storage indices
    // matter — and hoists the grid constants out of the sample loop.
    // Weight and accumulation order match gatherFeature() exactly.
    const float scale = static_cast<float>(_n);
    const int hi = _n - 1;
    const float *data = _data.data();
    const std::size_t rowStride = static_cast<std::size_t>(_v);
    for (int s = s0; s < s1; ++s) {
        float fx = clamp(pn[s].x, 0.0f, 1.0f) * scale;
        float fy = clamp(pn[s].y, 0.0f, 1.0f) * scale;
        float fz = clamp(pn[s].z, 0.0f, 1.0f) * scale;
        int x0 = std::min(static_cast<int>(fx), hi);
        int y0 = std::min(static_cast<int>(fy), hi);
        int z0 = std::min(static_cast<int>(fz), hi);
        float tx = fx - x0;
        float ty = fy - y0;
        float tz = fz - z0;
        for (int c = 0; c < 8; ++c) {
            int dx = c & 1;
            int dy = (c >> 1) & 1;
            int dz = (c >> 2) & 1;
            float w = (dx ? tx : 1.0f - tx) * (dy ? ty : 1.0f - ty) *
                      (dz ? tz : 1.0f - tz);
            const float *v =
                data + ((static_cast<std::size_t>(z0 + dz) * rowStride +
                         (y0 + dy)) *
                            rowStride +
                        (x0 + dx)) *
                           kFeatureDim;
            for (int ch = 0; ch < kFeatureDim; ++ch)
                out[static_cast<std::size_t>(ch) * n + s] += w * v[ch];
        }
    }
}

void
DenseGridEncoding::gatherFeatureBatch(const Vec3 *pn, int n,
                                      float *out) const
{
    using simd::VecF;
    using simd::VecI;
    constexpr int L = VecF::kLanes;

    for (std::size_t i = 0;
         i < static_cast<std::size_t>(n) * kFeatureDim; ++i)
        out[i] = 0.0f;

    // The vector kernel indexes with int32 lanes: grids whose scaled
    // vertex index could exceed INT32_MAX (res >= ~644) must take the
    // scalar path, which indexes with size_t.
    const bool indexable =
        static_cast<std::uint64_t>(_v) * _v * _v * kFeatureDim <=
        0x7fffffffull;

    if (!simd::simdActive() || n < L || !indexable) {
        gatherBatchScalar(pn, 0, n, n, out);
        return;
    }

    // Vectorized 8-corner trilinear kernel, one lane per sample: the
    // corner weights and storage indices of L samples are computed at
    // once, then each channel's lane sweep gathers the corner values
    // and accumulates with unfused madds. Arithmetic expressions and
    // per-sample accumulation order match gatherFeature() exactly —
    // results are bit-identical.
    const PositionsSoA pos = transposePositionsSoA(pn, n);
    const float *px = pos.x;
    const float *py = pos.y;
    const float *pz = pos.z;

    const int nBlocks = n / L * L;
    const VecF vZero = VecF::zero();
    const VecF vOne = VecF::broadcast(1.0f);
    const VecF vScale = VecF::broadcast(static_cast<float>(_n));
    const VecI vHi = VecI::broadcast(_n - 1);
    const VecI vRow = VecI::broadcast(_v);
    const VecI vDim = VecI::broadcast(kFeatureDim);
    const VecI vOneI = VecI::broadcast(1);
    const float *data = _data.data();

    for (int s0 = 0; s0 < nBlocks; s0 += L) {
        const VecF fx =
            vmin(vmax(VecF::load(px + s0), vZero), vOne) * vScale;
        const VecF fy =
            vmin(vmax(VecF::load(py + s0), vZero), vOne) * vScale;
        const VecF fz =
            vmin(vmax(VecF::load(pz + s0), vZero), vOne) * vScale;
        const VecI x0 = vmin(truncToInt(fx), vHi);
        const VecI y0 = vmin(truncToInt(fy), vHi);
        const VecI z0 = vmin(truncToInt(fz), vHi);
        const VecF tx = fx - toFloat(x0);
        const VecF ty = fy - toFloat(y0);
        const VecF tz = fz - toFloat(z0);
        const VecF mx = vOne - tx;
        const VecF my = vOne - ty;
        const VecF mz = vOne - tz;

        VecF w[8];
        VecI idx[8];
        for (int c = 0; c < 8; ++c) {
            const bool dx = c & 1;
            const bool dy = (c >> 1) & 1;
            const bool dz = (c >> 2) & 1;
            w[c] = ((dx ? tx : mx) * (dy ? ty : my)) * (dz ? tz : mz);
            const VecI cx = dx ? x0 + vOneI : x0;
            const VecI cy = dy ? y0 + vOneI : y0;
            const VecI cz = dz ? z0 + vOneI : z0;
            idx[c] = ((cz * vRow + cy) * vRow + cx) * vDim;
        }

        for (int ch = 0; ch < kFeatureDim; ++ch) {
            float *o = out + static_cast<std::size_t>(ch) * n + s0;
            VecF acc = VecF::load(o);
            for (int c = 0; c < 8; ++c)
                acc = simd::madd(w[c], simd::gather(data + ch, idx[c]),
                                 acc);
            acc.store(o);
        }
    }

    if (nBlocks < n)
        gatherBatchScalar(pn, nBlocks, n, n, out);
}

void
DenseGridEncoding::quantizeFeaturesFp16()
{
    _featuresFp16 = true;
    simd::roundBufferThroughFp16(_data.data(), _data.size());
}

void
DenseGridEncoding::gatherAccessesBatch(const Vec3 *pn, int n,
                                       std::uint32_t rayId,
                                       std::vector<MemAccess> &out) const
{
    out.reserve(out.size() + static_cast<std::size_t>(n) * 8);
    const std::uint32_t vb = vertexBytes();
    for (int s = 0; s < n; ++s) {
        auto cs = corners(pn[s]);
        for (const GridCorner &c : cs)
            out.push_back(MemAccess{c.addr, vb, rayId});
    }
}

StreamPlan
DenseGridEncoding::streamingFootprint(
    const std::vector<Vec3> &positions) const
{
    StreamPlan plan;
    std::unordered_set<std::uint32_t> touched;
    for (const Vec3 &pn : positions) {
        auto cs = corners(pn);
        // RIT entries: one per (sample, distinct MVoxel) pair — partial
        // interpolation accumulates across MVoxel boundaries (DESIGN.md).
        std::uint32_t seen[8];
        int nSeen = 0;
        for (const GridCorner &c : cs) {
            touched.insert(c.mvoxel);
            bool dup = false;
            for (int i = 0; i < nSeen; ++i)
                dup = dup || seen[i] == c.mvoxel;
            if (!dup)
                seen[nSeen++] = c.mvoxel;
        }
        plan.ritEntries += nSeen;
    }
    plan.streamedBytes = touched.size() * mvoxelBytes();
    plan.ritBytes = plan.ritEntries * 48; // paper: 48 B per RIT entry
    return plan;
}

} // namespace cicero
