#include "nerf/renderer.hh"

#include "nerf/volume_renderer.hh"

namespace cicero {

NerfModel::NerfModel(const Scene &scene,
                     std::unique_ptr<Encoding> encoding,
                     std::uint64_t nominalMlpMacs,
                     const SamplerConfig &sampler, std::uint64_t seed)
    : _scene(scene),
      _encoding(std::move(encoding)),
      _decoder(scene.field.lightDir(), 16, 1, nominalMlpMacs, 0.01f, seed),
      _occupancy(_scene.field, sampler.occupancyRes,
                 sampler.occupancySigma),
      _sampler(_scene.field.bounds(), &_occupancy, sampler),
      _workloadSampler(_scene.field.bounds(), nullptr, sampler),
      _nominalMlpMacs(nominalMlpMacs)
{
    _encoding->bake(_scene.field);
}

std::uint64_t
NerfModel::modelBytes() const
{
    return _encoding->modelBytes() + _decoder.weightBytes();
}

void
NerfModel::renderOne(const Camera &camera, int px, int py,
                     std::uint32_t rayId, Vec3 &rgbOut, float &depthOut,
                     StageWork &work, TraceSink *trace,
                     BakedPoint *gbufOut) const
{
    thread_local std::vector<RaySample> samples;
    thread_local std::vector<MemAccess> accessBuf;
    float feature[kFeatureDim];

    Ray ray = camera.generateRay(px, py);
    int n = _sampler.sample(ray, samples);

    ++work.rays;
    work.indexOps += static_cast<std::uint64_t>(n) *
                     _encoding->indexOpsPerSample();

    // Optional G-buffer accumulation: opacity-weighted material
    // attributes, normalized at the end.
    BakedPoint gAcc;
    Vec3 gNormal;
    float gWeight = 0.0f;
    gAcc.diffuse = Vec3{};
    gAcc.specular = 0.0f;
    gAcc.shininess = 0.0f;

    Compositor comp;
    int computed = 0;
    for (int i = 0; i < n; ++i) {
        const RaySample &s = samples[i];
        ++computed;

        if (trace) {
            accessBuf.clear();
            _encoding->gatherAccesses(s.pn, rayId, accessBuf);
            for (const MemAccess &a : accessBuf)
                trace->onAccess(a);
        }

        _encoding->gatherFeature(s.pn, feature);
        DecodedSample d = _decoder.decode(feature, ray.dir);

        if (gbufOut && d.sigma > 0.0f) {
            float tBefore = comp.transmittance();
            float alpha = 1.0f - std::exp(-d.sigma * s.dt);
            float w = tBefore * alpha;
            BakedPoint bp = decodeBakedFeature(feature);
            gAcc.diffuse += bp.diffuse * w;
            gNormal += bp.normal * w;
            gAcc.specular += bp.specular * w;
            gAcc.shininess += bp.shininess * w;
            gWeight += w;
        }

        if (!comp.add(d.sigma, d.rgb, s.t, s.dt))
            break;
    }

    if (gbufOut) {
        if (gWeight > 1e-4f) {
            float inv = 1.0f / gWeight;
            gbufOut->diffuse = gAcc.diffuse * inv;
            gbufOut->normal = gNormal.normalized();
            gbufOut->specular = gAcc.specular * inv;
            gbufOut->shininess = gAcc.shininess * inv;
            gbufOut->sigma = gWeight; // records accumulated opacity
        } else {
            *gbufOut = BakedPoint{};
            gbufOut->sigma = 0.0f;
        }
    }

    work.samples += computed;
    work.vertexFetches += static_cast<std::uint64_t>(computed) *
                          _encoding->fetchesPerSample();
    work.gatherBytes += static_cast<std::uint64_t>(computed) *
                        _encoding->fetchesPerSample() *
                        (_encoding->featureDim() * kBytesPerChannel);
    work.interpOps += static_cast<std::uint64_t>(computed) *
                      _encoding->interpOpsPerSample();
    work.mlpMacs += static_cast<std::uint64_t>(computed) * _nominalMlpMacs;
    work.compositeOps += static_cast<std::uint64_t>(computed) * 12;

    if (trace)
        trace->onRayEnd(rayId);

    CompositeResult r = comp.finish(_scene.background);
    rgbOut = r.rgb;
    depthOut = r.depth;
}

RenderResult
NerfModel::render(const Camera &camera, TraceSink *trace,
                  bool wantGBuffer) const
{
    RenderResult out;
    out.image = Image(camera.width, camera.height);
    out.depth = DepthMap(camera.width, camera.height);
    if (wantGBuffer)
        out.gbuffer = GBuffer(camera.width, camera.height);

    std::uint32_t rayId = 0;
    for (int py = 0; py < camera.height; ++py) {
        for (int px = 0; px < camera.width; ++px, ++rayId) {
            Vec3 rgb;
            float d;
            renderOne(camera, px, py, rayId, rgb, d, out.work, trace,
                      wantGBuffer ? &out.gbuffer.at(px, py) : nullptr);
            out.image.at(px, py) = rgb;
            out.depth.at(px, py) = d;
        }
    }
    if (trace)
        trace->onFlush();
    return out;
}

StageWork
NerfModel::renderPixels(const Camera &camera,
                        const std::vector<std::uint32_t> &pixelIds,
                        Image &image, DepthMap &depth,
                        TraceSink *trace) const
{
    StageWork work;
    for (std::uint32_t id : pixelIds) {
        int px = id % camera.width;
        int py = id / camera.width;
        Vec3 rgb;
        float d;
        renderOne(camera, px, py, id, rgb, d, work, trace);
        image.at(px, py) = rgb;
        depth.at(px, py) = d;
    }
    if (trace)
        trace->onFlush();
    return work;
}

void
NerfModel::traceOne(const Camera &camera, int px, int py,
                    std::uint32_t rayId, StageWork &work,
                    TraceSink *trace) const
{
    thread_local std::vector<RaySample> samples;
    thread_local std::vector<MemAccess> accessBuf;

    Ray ray = camera.generateRay(px, py);
    int n = _workloadSampler.sample(ray, samples);

    ++work.rays;
    work.indexOps += static_cast<std::uint64_t>(n) *
                     _encoding->indexOpsPerSample();

    std::uint64_t shaded = 0;
    for (int i = 0; i < n; ++i) {
        const RaySample &s = samples[i];
        if (trace) {
            accessBuf.clear();
            _encoding->gatherAccesses(s.pn, rayId, accessBuf);
            for (const MemAccess &a : accessBuf)
                trace->onAccess(a);
        }
        // Only samples in occupied space reach Feature Computation.
        if (_occupancy.occupiedNormalized(s.pn))
            ++shaded;
    }
    if (trace)
        trace->onRayEnd(rayId);

    work.samples += n;
    work.vertexFetches += static_cast<std::uint64_t>(n) *
                          _encoding->fetchesPerSample();
    work.gatherBytes += static_cast<std::uint64_t>(n) *
                        _encoding->fetchesPerSample() *
                        (_encoding->featureDim() * kBytesPerChannel);
    work.interpOps += static_cast<std::uint64_t>(n) *
                      _encoding->interpOpsPerSample();
    work.mlpMacs += shaded * _nominalMlpMacs;
    work.compositeOps += shaded * 12;
}

StageWork
NerfModel::traceWorkload(const Camera &camera, TraceSink *trace) const
{
    StageWork work;
    std::uint32_t rayId = 0;
    for (int py = 0; py < camera.height; ++py)
        for (int px = 0; px < camera.width; ++px, ++rayId)
            traceOne(camera, px, py, rayId, work, trace);
    if (trace)
        trace->onFlush();
    return work;
}

StageWork
NerfModel::traceWorkloadPixels(const Camera &camera,
                               const std::vector<std::uint32_t> &pixelIds,
                               TraceSink *trace) const
{
    StageWork work;
    for (std::uint32_t id : pixelIds) {
        traceOne(camera, id % camera.width, id / camera.width, id, work,
                 trace);
    }
    if (trace)
        trace->onFlush();
    return work;
}

std::vector<Vec3>
NerfModel::collectSamplePositions(const Camera &camera) const
{
    std::vector<Vec3> positions;
    std::vector<RaySample> samples;
    for (int py = 0; py < camera.height; ++py) {
        for (int px = 0; px < camera.width; ++px) {
            Ray ray = camera.generateRay(px, py);
            int n = _sampler.sample(ray, samples);
            for (int i = 0; i < n; ++i)
                positions.push_back(samples[i].pn);
        }
    }
    return positions;
}

std::vector<Vec3>
NerfModel::collectSamplePositionsPixels(
    const Camera &camera,
    const std::vector<std::uint32_t> &pixelIds) const
{
    std::vector<Vec3> positions;
    std::vector<RaySample> samples;
    for (std::uint32_t id : pixelIds) {
        Ray ray =
            camera.generateRay(id % camera.width, id / camera.width);
        int n = _sampler.sample(ray, samples);
        for (int i = 0; i < n; ++i)
            positions.push_back(samples[i].pn);
    }
    return positions;
}

RenderResult
renderGroundTruth(const Scene &scene, const Camera &camera,
                  int stepsAcross)
{
    RenderResult out;
    out.image = Image(camera.width, camera.height);
    out.depth = DepthMap(camera.width, camera.height);

    SamplerConfig cfg;
    cfg.stepsAcross = stepsAcross;
    cfg.maxSamplesPerRay = stepsAcross * 2;
    OccupancyGrid occupancy(scene.field, cfg.occupancyRes,
                            cfg.occupancySigma);
    RaySampler sampler(scene.field.bounds(), &occupancy, cfg);

    std::vector<RaySample> samples;
    for (int py = 0; py < camera.height; ++py) {
        for (int px = 0; px < camera.width; ++px) {
            Ray ray = camera.generateRay(px, py);
            int n = sampler.sample(ray, samples);
            Compositor comp;
            for (int i = 0; i < n; ++i) {
                const RaySample &s = samples[i];
                FieldSample f = scene.field.sample(s.pos, ray.dir);
                if (!comp.add(f.sigma, f.rgb, s.t, s.dt))
                    break;
            }
            CompositeResult r = comp.finish(scene.background);
            out.image.at(px, py) = r.rgb;
            out.depth.at(px, py) = r.depth;
        }
    }
    return out;
}

} // namespace cicero
