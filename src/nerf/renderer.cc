#include "nerf/renderer.hh"

#include <algorithm>
#include <cmath>

#include "common/parallel.hh"
#include "nerf/volume_renderer.hh"

namespace cicero {

namespace {

/**
 * Batched decode block sizing: start small and grow. Most rays
 * early-terminate a few samples into the first surface, so a large
 * fixed block would gather and decode features the compositor never
 * consumes; geometric growth keeps that waste below one small block
 * while long rays still reach the wide, vectorizing block size.
 */
constexpr int kFirstDecodeBlock = 8;
constexpr int kMaxDecodeBlock = 64;

/**
 * Run @p fn(work, begin, end) over chunks of [0, n) and fold the
 * per-chunk StageWork accumulators in chunk order.
 */
template <typename Fn>
StageWork
accumulateWorkChunks(std::int64_t n, Fn &&fn)
{
    StageWork total;
    for (const StageWork &w :
         parallelMapChunks<StageWork>(n, std::forward<Fn>(fn)))
        total += w;
    return total;
}

} // namespace

NerfModel::NerfModel(const Scene &scene,
                     std::unique_ptr<Encoding> encoding,
                     std::uint64_t nominalMlpMacs,
                     const SamplerConfig &sampler, std::uint64_t seed)
    : _scene(scene),
      _encoding(std::move(encoding)),
      _decoder(scene.field.lightDir(), 16, 1, nominalMlpMacs, 0.01f, seed),
      _occupancy(_scene.field, sampler.occupancyRes,
                 sampler.occupancySigma),
      _sampler(_scene.field.bounds(), &_occupancy, sampler),
      _workloadSampler(_scene.field.bounds(), nullptr, sampler),
      _nominalMlpMacs(nominalMlpMacs)
{
    _encoding->bake(_scene.field);
}

std::uint64_t
NerfModel::modelBytes() const
{
    return _encoding->modelBytes() + _decoder.weightBytes();
}

void
NerfModel::renderOne(const Camera &camera, int px, int py,
                     std::uint32_t rayId, Vec3 &rgbOut, float &depthOut,
                     StageWork &work, TraceSink *trace,
                     BakedPoint *gbufOut, DecodeSink *decodeSink) const
{
    thread_local std::vector<RaySample> samples;
    thread_local std::vector<MemAccess> accessBuf;
    thread_local std::vector<Vec3> posBuf;
    thread_local std::vector<float> featureBuf;
    thread_local std::vector<DecodedSample> decodedBuf;

    Ray ray = camera.generateRay(px, py);
    int n = _sampler.sample(ray, samples);

    ++work.rays;
    work.indexOps += static_cast<std::uint64_t>(n) *
                     _encoding->indexOpsPerSample();

    // Optional G-buffer accumulation: opacity-weighted material
    // attributes, normalized at the end.
    BakedPoint gAcc;
    Vec3 gNormal;
    float gWeight = 0.0f;
    gAcc.diffuse = Vec3{};
    gAcc.specular = 0.0f;
    gAcc.shininess = 0.0f;

    // Reads one sample's channels out of the channel-major block
    // (stride = block size) — only on the rare G-buffer path.
    auto accumulateGBuffer = [&](const float *feats, int stride, int j,
                                 const DecodedSample &d,
                                 const RaySample &s, float tBefore) {
        float alpha = 1.0f - std::exp(-d.sigma * s.dt);
        float w = tBefore * alpha;
        float feature[kFeatureDim];
        for (int ch = 0; ch < kFeatureDim; ++ch)
            feature[ch] =
                feats[static_cast<std::size_t>(ch) * stride + j];
        BakedPoint bp = decodeBakedFeature(feature);
        gAcc.diffuse += bp.diffuse * w;
        gNormal += bp.normal * w;
        gAcc.specular += bp.specular * w;
        gAcc.shininess += bp.shininess * w;
        gWeight += w;
    };

    Compositor comp;
    int computed = 0;

    // Block-batched sample loop, traced or not: gather a block of
    // samples through one batched encoding call and decode it through
    // one batched MLP pass instead of per-sample virtual-call
    // ping-pong. Numerically identical to the per-sample loop (same
    // per-sample accumulation order everywhere). When tracing, the
    // block's access stream is gathered up front and emitted
    // per-sample at consumption time, so the TraceSink still sees
    // exactly the samples the compositor consumed, in consumption
    // order — accesses of samples past the early-termination point are
    // never emitted, matching the scalar walk byte-for-byte.
    if (featureBuf.size() <
        static_cast<std::size_t>(kMaxDecodeBlock) * kFeatureDim) {
        featureBuf.resize(
            static_cast<std::size_t>(kMaxDecodeBlock) * kFeatureDim);
        decodedBuf.resize(kMaxDecodeBlock);
        posBuf.resize(kMaxDecodeBlock);
    }
    const std::uint32_t accessesPerSample =
        trace ? _encoding->fetchesPerSample() : 0;

    int block = kFirstDecodeBlock;
    bool stopped = false;
    for (int base = 0; base < n && !stopped; base += block,
             block = std::min(2 * block, kMaxDecodeBlock)) {
        const int m = std::min(block, n - base);
        for (int j = 0; j < m; ++j)
            posBuf[j] = samples[base + j].pn;

        if (trace) {
            accessBuf.clear();
            _encoding->gatherAccessesBatch(posBuf.data(), m, rayId,
                                           accessBuf);
        }

        // Channel-major block: gatherFeatureBatch writes channel c of
        // sample j at feats[c * m + j], and the SoA decode consumes it
        // without any transposition.
        float *feats = featureBuf.data();
        _encoding->gatherFeatureBatch(posBuf.data(), m, feats);
        if (decodeSink)
            decodeSink->decodeBlock(feats, static_cast<std::size_t>(m),
                                    m, ray.dir, decodedBuf.data());
        else
            _decoder.decodeBatchSoA(feats, static_cast<std::size_t>(m),
                                    m, ray.dir, decodedBuf.data());

        for (int j = 0; j < m; ++j) {
            const RaySample &s = samples[base + j];
            const DecodedSample &d = decodedBuf[j];
            ++computed;

            if (trace) {
                const MemAccess *slice =
                    accessBuf.data() +
                    static_cast<std::size_t>(j) * accessesPerSample;
                for (std::uint32_t a = 0; a < accessesPerSample; ++a)
                    trace->onAccess(slice[a]);
            }

            if (gbufOut && d.sigma > 0.0f)
                accumulateGBuffer(feats, m, j, d, s,
                                  comp.transmittance());

            if (!comp.add(d.sigma, d.rgb, s.t, s.dt)) {
                stopped = true;
                break;
            }
        }
    }

    if (gbufOut) {
        if (gWeight > 1e-4f) {
            float inv = 1.0f / gWeight;
            gbufOut->diffuse = gAcc.diffuse * inv;
            gbufOut->normal = gNormal.normalized();
            gbufOut->specular = gAcc.specular * inv;
            gbufOut->shininess = gAcc.shininess * inv;
            gbufOut->sigma = gWeight; // records accumulated opacity
        } else {
            *gbufOut = BakedPoint{};
            gbufOut->sigma = 0.0f;
        }
    }

    work.samples += computed;
    work.vertexFetches += static_cast<std::uint64_t>(computed) *
                          _encoding->fetchesPerSample();
    work.gatherBytes += static_cast<std::uint64_t>(computed) *
                        _encoding->fetchesPerSample() *
                        (_encoding->featureDim() * kBytesPerChannel);
    work.interpOps += static_cast<std::uint64_t>(computed) *
                      _encoding->interpOpsPerSample();
    work.mlpMacs += static_cast<std::uint64_t>(computed) * _nominalMlpMacs;
    work.compositeOps += static_cast<std::uint64_t>(computed) * 12;

    if (trace)
        trace->onRayEnd(rayId);

    CompositeResult r = comp.finish(_scene.background);
    rgbOut = r.rgb;
    depthOut = r.depth;
}

RenderResult
NerfModel::render(const Camera &camera, TraceSink *trace,
                  bool wantGBuffer) const
{
    RenderResult out;
    out.image = Image(camera.width, camera.height);
    out.depth = DepthMap(camera.width, camera.height);
    if (wantGBuffer)
        out.gbuffer = GBuffer(camera.width, camera.height);

    const int W = camera.width;
    const int H = camera.height;

    if (trace) {
        // Buffered parallel trace capture: each ray records its access
        // stream into a private RayTraceBuffer slot while the rows run
        // tile-parallel, and the replay below walks the slots in
        // canonical ray-id order — the TraceSink sees a stream
        // byte-identical to the old serial walk. Completed row chunks
        // are marked so the buffer drains its finished prefix while
        // trailing chunks still render (windowed replay: peak buffer
        // memory tracks the out-of-order window, not the frame). With
        // one thread the chunks already run inline in order, so rays
        // emit straight into the sink and the trace is never
        // materialized (the old O(1)-memory serial behavior).
        std::unique_ptr<RayTraceBuffer> buf;
        if (parallelThreadCount() > 1)
            buf = std::make_unique<RayTraceBuffer>(
                static_cast<std::size_t>(W) * H, trace);
        out.work = accumulateWorkChunks(
            H, [&](StageWork &w, std::int64_t y0, std::int64_t y1) {
                for (int py = static_cast<int>(y0); py < y1; ++py) {
                    std::uint32_t rayId =
                        static_cast<std::uint32_t>(py) * W;
                    for (int px = 0; px < W; ++px, ++rayId) {
                        Vec3 rgb;
                        float d;
                        BakedPoint *g =
                            wantGBuffer ? &out.gbuffer.at(px, py)
                                        : nullptr;
                        if (buf) {
                            RayTraceBuffer::SlotSink sink =
                                buf->sink(rayId);
                            renderOne(camera, px, py, rayId, rgb, d, w,
                                      &sink, g);
                        } else {
                            renderOne(camera, px, py, rayId, rgb, d, w,
                                      trace, g);
                        }
                        out.image.at(px, py) = rgb;
                        out.depth.at(px, py) = d;
                    }
                }
                if (buf)
                    buf->markCompleted(
                        static_cast<std::size_t>(y0) * W,
                        static_cast<std::size_t>(y1) * W);
            });
        if (buf)
            buf->replay();
        trace->onFlush();
        return out;
    }

    // Tile-parallel: row chunks, per-chunk work accumulators merged in
    // chunk order. Pixels are written to disjoint locations and ray
    // ids are a function of the pixel, so the output is bit-identical
    // to the serial path at any thread count.
    out.work = accumulateWorkChunks(
        H, [&](StageWork &w, std::int64_t y0, std::int64_t y1) {
            for (int py = static_cast<int>(y0); py < y1; ++py) {
                std::uint32_t rayId =
                    static_cast<std::uint32_t>(py) * W;
                for (int px = 0; px < W; ++px, ++rayId) {
                    Vec3 rgb;
                    float d;
                    renderOne(camera, px, py, rayId, rgb, d, w, nullptr,
                              wantGBuffer ? &out.gbuffer.at(px, py)
                                          : nullptr);
                    out.image.at(px, py) = rgb;
                    out.depth.at(px, py) = d;
                }
            }
        });
    return out;
}

RenderResult
NerfModel::renderServe(const Camera &camera, DecodeSink *sink) const
{
    RenderResult out;
    out.image = Image(camera.width, camera.height);
    out.depth = DepthMap(camera.width, camera.height);
    out.work = renderServeRows(camera, 0, camera.height, out.image,
                               out.depth, sink);
    return out;
}

StageWork
NerfModel::renderServeRows(const Camera &camera, int rowBegin,
                           int rowEnd, Image &image, DepthMap &depth,
                           DecodeSink *sink) const
{
    // Serial pixel walk on the calling thread over [rowBegin, rowEnd).
    // Same traversal order and per-ray math as render(); only the
    // decode call site differs (routed through the sink). Per-ray
    // decode blocking lives inside renderOne, so composing disjoint
    // row ranges reproduces renderServe bit-for-bit.
    StageWork work;
    const int W = camera.width;
    for (int py = rowBegin; py < rowEnd; ++py) {
        std::uint32_t rayId = static_cast<std::uint32_t>(py) * W;
        for (int px = 0; px < W; ++px, ++rayId) {
            Vec3 rgb;
            float d;
            renderOne(camera, px, py, rayId, rgb, d, work, nullptr,
                      nullptr, sink);
            image.at(px, py) = rgb;
            depth.at(px, py) = d;
        }
    }
    return work;
}

void
NerfModel::quantizeFp16()
{
    _encoding->quantizeFeaturesFp16();
    _decoder.quantizeWeightsFp16();
}

StageWork
NerfModel::renderPixels(const Camera &camera,
                        const std::vector<std::uint32_t> &pixelIds,
                        Image &image, DepthMap &depth,
                        TraceSink *trace) const
{
    StageWork work;
    if (trace) {
        // Buffered parallel capture over the sparse pixel list; replay
        // follows the list order (the serial emission order), whatever
        // the ids are, with completed chunks prefix-drained as above.
        // One thread emits directly (see render()).
        std::unique_ptr<RayTraceBuffer> buf;
        if (parallelThreadCount() > 1)
            buf = std::make_unique<RayTraceBuffer>(pixelIds.size(),
                                                   trace);
        work = accumulateWorkChunks(
            static_cast<std::int64_t>(pixelIds.size()),
            [&](StageWork &w, std::int64_t b, std::int64_t e) {
                for (std::int64_t k = b; k < e; ++k) {
                    std::uint32_t id = pixelIds[k];
                    int px = id % camera.width;
                    int py = id / camera.width;
                    Vec3 rgb;
                    float d;
                    if (buf) {
                        RayTraceBuffer::SlotSink sink =
                            buf->sink(static_cast<std::size_t>(k));
                        renderOne(camera, px, py, id, rgb, d, w, &sink);
                    } else {
                        renderOne(camera, px, py, id, rgb, d, w, trace);
                    }
                    image.at(px, py) = rgb;
                    depth.at(px, py) = d;
                }
                if (buf)
                    buf->markCompleted(static_cast<std::size_t>(b),
                                       static_cast<std::size_t>(e));
            });
        if (buf)
            buf->replay();
        trace->onFlush();
        return work;
    }

    return accumulateWorkChunks(
        static_cast<std::int64_t>(pixelIds.size()),
        [&](StageWork &w, std::int64_t b, std::int64_t e) {
            for (std::int64_t k = b; k < e; ++k) {
                std::uint32_t id = pixelIds[k];
                int px = id % camera.width;
                int py = id / camera.width;
                Vec3 rgb;
                float d;
                renderOne(camera, px, py, id, rgb, d, w, nullptr);
                image.at(px, py) = rgb;
                depth.at(px, py) = d;
            }
        });
}

void
NerfModel::traceOne(const Camera &camera, int px, int py,
                    std::uint32_t rayId, StageWork &work,
                    TraceSink *trace) const
{
    thread_local std::vector<RaySample> samples;
    thread_local std::vector<MemAccess> accessBuf;
    thread_local std::vector<Vec3> posBuf;

    Ray ray = camera.generateRay(px, py);
    int n = _workloadSampler.sample(ray, samples);

    ++work.rays;
    work.indexOps += static_cast<std::uint64_t>(n) *
                     _encoding->indexOpsPerSample();

    if (trace && n > 0) {
        // Workload mode never early-terminates, so the whole ray's
        // access stream comes from one batched gather (sample-major,
        // identical to the scalar per-sample emission order).
        posBuf.resize(n);
        for (int i = 0; i < n; ++i)
            posBuf[i] = samples[i].pn;
        accessBuf.clear();
        _encoding->gatherAccessesBatch(posBuf.data(), n, rayId,
                                       accessBuf);
        for (const MemAccess &a : accessBuf)
            trace->onAccess(a);
    }

    std::uint64_t shaded = 0;
    for (int i = 0; i < n; ++i) {
        // Only samples in occupied space reach Feature Computation.
        if (_occupancy.occupiedNormalized(samples[i].pn))
            ++shaded;
    }
    if (trace)
        trace->onRayEnd(rayId);

    work.samples += n;
    work.vertexFetches += static_cast<std::uint64_t>(n) *
                          _encoding->fetchesPerSample();
    work.gatherBytes += static_cast<std::uint64_t>(n) *
                        _encoding->fetchesPerSample() *
                        (_encoding->featureDim() * kBytesPerChannel);
    work.interpOps += static_cast<std::uint64_t>(n) *
                      _encoding->interpOpsPerSample();
    work.mlpMacs += shaded * _nominalMlpMacs;
    work.compositeOps += shaded * 12;
}

StageWork
NerfModel::traceWorkload(const Camera &camera, TraceSink *trace) const
{
    StageWork work;
    const int W = camera.width;
    const int H = camera.height;

    if (trace) {
        // Buffered parallel trace: rows run tile-parallel recording
        // into per-ray slots; the replay delivers the canonical
        // (serial) access stream to the sink, prefix-draining
        // completed row chunks while trailing chunks still render.
        // One thread emits directly (see render()).
        std::unique_ptr<RayTraceBuffer> buf;
        if (parallelThreadCount() > 1)
            buf = std::make_unique<RayTraceBuffer>(
                static_cast<std::size_t>(W) * H, trace);
        work = accumulateWorkChunks(
            H, [&](StageWork &w, std::int64_t y0, std::int64_t y1) {
                for (int py = static_cast<int>(y0); py < y1; ++py) {
                    std::uint32_t rayId =
                        static_cast<std::uint32_t>(py) * W;
                    for (int px = 0; px < W; ++px, ++rayId) {
                        if (buf) {
                            RayTraceBuffer::SlotSink sink =
                                buf->sink(rayId);
                            traceOne(camera, px, py, rayId, w, &sink);
                        } else {
                            traceOne(camera, px, py, rayId, w, trace);
                        }
                    }
                }
                if (buf)
                    buf->markCompleted(
                        static_cast<std::size_t>(y0) * W,
                        static_cast<std::size_t>(y1) * W);
            });
        if (buf)
            buf->replay();
        trace->onFlush();
        return work;
    }

    return accumulateWorkChunks(
        H, [&](StageWork &w, std::int64_t y0, std::int64_t y1) {
            for (int py = static_cast<int>(y0); py < y1; ++py) {
                std::uint32_t rayId =
                    static_cast<std::uint32_t>(py) * W;
                for (int px = 0; px < W; ++px, ++rayId)
                    traceOne(camera, px, py, rayId, w, nullptr);
            }
        });
}

StageWork
NerfModel::traceWorkloadPixels(const Camera &camera,
                               const std::vector<std::uint32_t> &pixelIds,
                               TraceSink *trace) const
{
    StageWork work;
    if (trace) {
        std::unique_ptr<RayTraceBuffer> buf;
        if (parallelThreadCount() > 1)
            buf = std::make_unique<RayTraceBuffer>(pixelIds.size(),
                                                   trace);
        work = accumulateWorkChunks(
            static_cast<std::int64_t>(pixelIds.size()),
            [&](StageWork &w, std::int64_t b, std::int64_t e) {
                for (std::int64_t k = b; k < e; ++k) {
                    std::uint32_t id = pixelIds[k];
                    if (buf) {
                        RayTraceBuffer::SlotSink sink =
                            buf->sink(static_cast<std::size_t>(k));
                        traceOne(camera, id % camera.width,
                                 id / camera.width, id, w, &sink);
                    } else {
                        traceOne(camera, id % camera.width,
                                 id / camera.width, id, w, trace);
                    }
                }
                if (buf)
                    buf->markCompleted(static_cast<std::size_t>(b),
                                       static_cast<std::size_t>(e));
            });
        if (buf)
            buf->replay();
        trace->onFlush();
        return work;
    }

    return accumulateWorkChunks(
        static_cast<std::int64_t>(pixelIds.size()),
        [&](StageWork &w, std::int64_t b, std::int64_t e) {
            for (std::int64_t k = b; k < e; ++k) {
                std::uint32_t id = pixelIds[k];
                traceOne(camera, id % camera.width, id / camera.width,
                         id, w, nullptr);
            }
        });
}

std::vector<Vec3>
NerfModel::collectSamplePositions(const Camera &camera) const
{
    const int W = camera.width;
    const int H = camera.height;

    // Per-chunk position lists, concatenated in chunk (= row) order so
    // the result matches the serial traversal exactly.
    return parallelConcatChunks<Vec3>(
        H, [&](std::vector<Vec3> &out, std::int64_t y0,
               std::int64_t y1) {
            thread_local std::vector<RaySample> samples;
            for (int py = static_cast<int>(y0); py < y1; ++py) {
                for (int px = 0; px < W; ++px) {
                    Ray ray = camera.generateRay(px, py);
                    int n = _sampler.sample(ray, samples);
                    for (int i = 0; i < n; ++i)
                        out.push_back(samples[i].pn);
                }
            }
        });
}

std::vector<Vec3>
NerfModel::collectSamplePositionsPixels(
    const Camera &camera,
    const std::vector<std::uint32_t> &pixelIds) const
{
    return parallelConcatChunks<Vec3>(
        static_cast<std::int64_t>(pixelIds.size()),
        [&](std::vector<Vec3> &out, std::int64_t b, std::int64_t e) {
            thread_local std::vector<RaySample> samples;
            for (std::int64_t k = b; k < e; ++k) {
                std::uint32_t id = pixelIds[k];
                Ray ray = camera.generateRay(id % camera.width,
                                             id / camera.width);
                int cnt = _sampler.sample(ray, samples);
                for (int i = 0; i < cnt; ++i)
                    out.push_back(samples[i].pn);
            }
        });
}

RenderResult
renderGroundTruth(const Scene &scene, const Camera &camera,
                  int stepsAcross)
{
    RenderResult out;
    out.image = Image(camera.width, camera.height);
    out.depth = DepthMap(camera.width, camera.height);

    SamplerConfig cfg;
    cfg.stepsAcross = stepsAcross;
    cfg.maxSamplesPerRay = stepsAcross * 2;
    OccupancyGrid occupancy(scene.field, cfg.occupancyRes,
                            cfg.occupancySigma);
    RaySampler sampler(scene.field.bounds(), &occupancy, cfg);

    parallelFor(0, camera.height, -1,
                [&](std::int64_t y0, std::int64_t y1) {
                    thread_local std::vector<RaySample> samples;
                    for (int py = static_cast<int>(y0); py < y1; ++py) {
                        for (int px = 0; px < camera.width; ++px) {
                            Ray ray = camera.generateRay(px, py);
                            int n = sampler.sample(ray, samples);
                            Compositor comp;
                            for (int i = 0; i < n; ++i) {
                                const RaySample &s = samples[i];
                                FieldSample f =
                                    scene.field.sample(s.pos, ray.dir);
                                if (!comp.add(f.sigma, f.rgb, s.t, s.dt))
                                    break;
                            }
                            CompositeResult r =
                                comp.finish(scene.background);
                            out.image.at(px, py) = r.rgb;
                            out.depth.at(px, py) = r.depth;
                        }
                    }
                });
    return out;
}

} // namespace cicero
