/**
 * @file
 * Ray sampling: uniform marching through the scene AABB with
 * occupancy-grid empty-space skipping (the coarse grid every modern
 * NeRF model maintains).
 */

#ifndef CICERO_NERF_SAMPLER_HH
#define CICERO_NERF_SAMPLER_HH

#include <vector>

#include "common/geometry.hh"
#include "scene/field.hh"

namespace cicero {

/** Sampling parameters. */
struct SamplerConfig
{
    int stepsAcross = 192;    //!< uniform steps across the AABB diagonal
    int maxSamplesPerRay = 256;
    int occupancyRes = 64;    //!< occupancy grid voxels per axis
    float occupancySigma = 0.5f; //!< density threshold for "occupied"
};

/**
 * A binary occupancy grid over the scene bounds, baked from the analytic
 * field with one voxel of dilation. Also provides the cheap
 * ray-vs-occupancy test SPARW uses to separate void from disocclusion.
 */
class OccupancyGrid
{
  public:
    OccupancyGrid(const AnalyticField &field, int res, float sigmaThresh);

    int res() const { return _res; }
    const Aabb &bounds() const { return _bounds; }

    /** Occupancy (dilated) at normalized position @p pn in [0,1]^3. */
    bool occupiedNormalized(const Vec3 &pn) const;

    /** Occupancy (dilated) at world position @p p. */
    bool occupied(const Vec3 &p) const;

    /**
     * March @p ray through the bounds at occupancy-cell granularity.
     * Uses the *raw* (un-dilated) occupancy: the dilation exists to keep
     * sampling conservative, but the SPARW void test wants the tight
     * surface so silhouette-adjacent background pixels classify as void
     * rather than triggering needless sparse rendering.
     *
     * @return true if any occupied cell is crossed (SPARW's depth test).
     */
    bool rayHitsOccupied(const Ray &ray) const;

    /** Fraction of occupied cells (diagnostics). */
    double occupancyFraction() const;

  private:
    std::size_t idx(int x, int y, int z) const
    {
        return (static_cast<std::size_t>(z) * _res + y) * _res + x;
    }

    int _res;
    Aabb _bounds;
    std::vector<char> _cells; //!< dilated occupancy (sampling)
    std::vector<char> _raw;   //!< un-dilated occupancy (void test)
};

/** One ray sample produced by the sampler. */
struct RaySample
{
    Vec3 pos;  //!< world position
    Vec3 pn;   //!< normalized [0,1]^3 position
    float t;   //!< ray parameter
    float dt;  //!< segment length for compositing
};

/**
 * Uniform ray marcher with occupancy skipping.
 */
class RaySampler
{
  public:
    RaySampler(const Aabb &bounds, const OccupancyGrid *occupancy,
               const SamplerConfig &config);

    /**
     * Sample @p ray; appends to @p out (which is cleared first).
     * @return number of samples produced.
     */
    int sample(const Ray &ray, std::vector<RaySample> &out) const;

    float stepSize() const { return _step; }
    const SamplerConfig &config() const { return _config; }

  private:
    Aabb _bounds;
    const OccupancyGrid *_occupancy;
    SamplerConfig _config;
    float _step;
};

} // namespace cicero

#endif // CICERO_NERF_SAMPLER_HH
