/**
 * @file
 * A small fully-connected network with ReLU hidden activations — the
 * "Feature Computation" MLP of NeRF models. Weight storage is plain
 * row-major float; the forward pass reports its multiply-accumulate
 * count so timing models can price it.
 *
 * Two entry points exist: the scalar forward() and the batched
 * forwardBatch(), which evaluates many inputs through one blocked,
 * auto-vectorizable kernel. Both accumulate in the same order, so a
 * batched evaluation is bit-identical to the scalar one. Scratch
 * buffers live in thread-local storage: concurrent forward passes on
 * one model from many threads are safe.
 */

#ifndef CICERO_NERF_MLP_HH
#define CICERO_NERF_MLP_HH

#include <cstdint>
#include <vector>

namespace cicero {

/**
 * Multilayer perceptron: dims = {in, h1, ..., out}; ReLU after every
 * layer except the last.
 */
class Mlp
{
  public:
    /**
     * @param dims Layer widths, at least {in, out}.
     * @param seed Weight-init seed (Xavier-uniform).
     */
    explicit Mlp(std::vector<int> dims, std::uint64_t seed = 1);

    int inputDim() const { return _dims.front(); }
    int outputDim() const { return _dims.back(); }

    /** MACs of one forward pass. */
    std::uint64_t macsPerInference() const { return _macs; }

    /** Total bytes of weights + biases (2 bytes/param, fp16 storage). */
    std::uint64_t weightBytes() const;

    /**
     * Forward pass of a single input.
     *
     * @param in  inputDim() floats.
     * @param out outputDim() floats.
     */
    void forward(const float *in, float *out) const;

    /**
     * Batched forward pass over @p count inputs in channel-major (SoA)
     * layout: channel c of item b lives at [c * count + b], for both
     * @p in (inputDim() x count floats) and @p out (outputDim() x count
     * floats). The contiguous item axis is what lets the compiler
     * vectorize the inner accumulation loop. Results are bit-identical
     * to @p count scalar forward() calls.
     */
    void forwardBatch(const float *in, float *out, int count) const;

    /** Direct access for tests. */
    std::vector<std::vector<float>> &weights() { return _weights; }
    std::vector<std::vector<float>> &biases() { return _biases; }

  private:
    std::vector<int> _dims;
    // _weights[l] is row-major (dims[l+1] x dims[l]).
    std::vector<std::vector<float>> _weights;
    std::vector<std::vector<float>> _biases;
    std::uint64_t _macs = 0;
    int _maxWidth = 0;
};

} // namespace cicero

#endif // CICERO_NERF_MLP_HH
