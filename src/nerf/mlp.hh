/**
 * @file
 * A small fully-connected network with ReLU hidden activations — the
 * "Feature Computation" MLP of NeRF models. Weight storage is plain
 * row-major float; the forward pass reports its multiply-accumulate
 * count so timing models can price it.
 */

#ifndef CICERO_NERF_MLP_HH
#define CICERO_NERF_MLP_HH

#include <cstdint>
#include <vector>

namespace cicero {

/**
 * Multilayer perceptron: dims = {in, h1, ..., out}; ReLU after every
 * layer except the last.
 */
class Mlp
{
  public:
    /**
     * @param dims Layer widths, at least {in, out}.
     * @param seed Weight-init seed (Xavier-uniform).
     */
    explicit Mlp(std::vector<int> dims, std::uint64_t seed = 1);

    int inputDim() const { return _dims.front(); }
    int outputDim() const { return _dims.back(); }

    /** MACs of one forward pass. */
    std::uint64_t macsPerInference() const { return _macs; }

    /** Total bytes of weights + biases (2 bytes/param, fp16 storage). */
    std::uint64_t weightBytes() const;

    /**
     * Forward pass.
     *
     * @param in  inputDim() floats.
     * @param out outputDim() floats.
     */
    void forward(const float *in, float *out) const;

    /** Direct access for tests. */
    std::vector<std::vector<float>> &weights() { return _weights; }
    std::vector<std::vector<float>> &biases() { return _biases; }

  private:
    std::vector<int> _dims;
    // _weights[l] is row-major (dims[l+1] x dims[l]).
    std::vector<std::vector<float>> _weights;
    std::vector<std::vector<float>> _biases;
    std::uint64_t _macs = 0;
    mutable std::vector<float> _scratchA, _scratchB;
};

} // namespace cicero

#endif // CICERO_NERF_MLP_HH
