/**
 * @file
 * A small fully-connected network with ReLU hidden activations — the
 * "Feature Computation" MLP of NeRF models. The forward pass reports
 * its multiply-accumulate count so timing models can price it.
 *
 * Two entry points exist: the scalar forward() and the batched
 * forwardBatch(), which evaluates many inputs through one blocked,
 * register-tiled SIMD GEMM microkernel (src/common/simd.hh; scalar
 * reference under CICERO_SIMD=scalar). Both accumulate input channels
 * in the same ascending order with unfused multiply-adds, so every
 * path — scalar, SIMD, any batch size — is bit-identical. Scratch
 * buffers live in thread-local storage: concurrent forward passes on
 * one model from many threads are safe.
 *
 * Weight storage is row-major fp32 by default; quantizeWeightsFp16()
 * switches the model to 2-byte (IEEE binary16) weight storage matching
 * the DRAM model priced by weightBytes(). In fp16 mode the kernel
 * widens the stored halves to fp32 on load (F16C/NEON or the exact
 * scalar conversion) and computes in fp32: scalar and SIMD stay
 * bit-identical to each other, while outputs differ from the fp32
 * model only by the weight quantization (|dw/w| <= 2^-11 per weight).
 */

#ifndef CICERO_NERF_MLP_HH
#define CICERO_NERF_MLP_HH

#include <cstdint>
#include <vector>

namespace cicero {

/**
 * Multilayer perceptron: dims = {in, h1, ..., out}; ReLU after every
 * layer except the last.
 */
class Mlp
{
  public:
    /**
     * @param dims Layer widths, at least {in, out}.
     * @param seed Weight-init seed (Xavier-uniform).
     */
    explicit Mlp(std::vector<int> dims, std::uint64_t seed = 1);

    int inputDim() const { return _dims.front(); }
    int outputDim() const { return _dims.back(); }

    /** MACs of one forward pass. */
    std::uint64_t macsPerInference() const { return _macs; }

    /** Total bytes of weights + biases (2 bytes/param, fp16 storage). */
    std::uint64_t weightBytes() const;

    /**
     * Forward pass of a single input.
     *
     * @param in  inputDim() floats.
     * @param out outputDim() floats.
     */
    void forward(const float *in, float *out) const;

    /**
     * Batched forward pass over @p count inputs in channel-major (SoA)
     * layout: channel c of item b lives at [c * count + b], for both
     * @p in (inputDim() x count floats) and @p out (outputDim() x count
     * floats). The contiguous item axis is what the vector kernel's
     * lane sweep runs over. Results are bit-identical to @p count
     * scalar forward() calls.
     */
    void forwardBatch(const float *in, float *out, int count) const;

    /**
     * Requantize the weights and biases to fp16 (round-to-nearest-even)
     * and switch the forward kernels to 2-byte weight storage. The fp32
     * arrays are replaced by the dequantized values, so tests and
     * direct weight access observe exactly what the kernel computes
     * with. Idempotent.
     */
    void quantizeWeightsFp16();

    /** Whether the kernels read fp16 weight storage. */
    bool fp16Weights() const { return _fp16; }

    /** Direct access for tests. */
    std::vector<std::vector<float>> &weights() { return _weights; }
    std::vector<std::vector<float>> &biases() { return _biases; }

  private:
    std::vector<int> _dims;
    // _weights[l] is row-major (dims[l+1] x dims[l]).
    std::vector<std::vector<float>> _weights;
    std::vector<std::vector<float>> _biases;
    // fp16 mode: the storage of record the kernels load from.
    std::vector<std::vector<std::uint16_t>> _weightsH;
    std::vector<std::vector<std::uint16_t>> _biasesH;
    bool _fp16 = false;
    std::uint64_t _macs = 0;
    int _maxWidth = 0;
};

} // namespace cicero

#endif // CICERO_NERF_MLP_HH
