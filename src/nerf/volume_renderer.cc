// Compositor is header-only; this translation unit exists so the build
// has a home for future out-of-line additions and keeps one .cc per
// header convention.
#include "nerf/volume_renderer.hh"
