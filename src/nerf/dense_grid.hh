/**
 * @file
 * Dense voxel-grid encoding (DirectVoxGO-like).
 *
 * Vertices live at the corners of an N^3 voxel grid ((N+1)^3 vertices),
 * each carrying kFeatureDim channels. Two DRAM address layouts are
 * supported:
 *  - Linear: x-fastest row-major over vertices (the pixel-centric
 *    baseline layout);
 *  - MVoxelBlocked: vertices grouped into contiguous 8x8x8 MVoxel blocks
 *    (Sec. IV-A), the layout the fully-streaming renderer requires.
 *
 * The functional values are independent of the layout; only trace
 * addresses change.
 */

#ifndef CICERO_NERF_DENSE_GRID_HH
#define CICERO_NERF_DENSE_GRID_HH

#include <array>

#include "nerf/decoder.hh"
#include "nerf/encoding.hh"

namespace cicero {

/** DRAM address layout of the dense grid. */
enum class GridLayout
{
    Linear,
    MVoxelBlocked,
};

/**
 * One corner of the voxel containing a sample: its grid coordinates,
 * trilinear weight, DRAM address and owning MVoxel.
 */
struct GridCorner
{
    int ix = 0, iy = 0, iz = 0;
    float weight = 0.0f;
    std::uint64_t addr = 0;
    std::uint32_t mvoxel = 0;
};

class DenseGridEncoding : public Encoding
{
  public:
    /**
     * @param voxelsPerAxis N; the grid has (N+1)^3 vertices.
     * @param layout       DRAM address layout.
     * @param blockVerts   MVoxel edge length in vertices (paper: 8).
     */
    explicit DenseGridEncoding(int voxelsPerAxis,
                               GridLayout layout = GridLayout::Linear,
                               int blockVerts = 8);

    std::string name() const override { return "dense-grid"; }
    int featureDim() const override { return kFeatureDim; }
    std::uint64_t modelBytes() const override;
    std::uint32_t fetchesPerSample() const override { return 8; }
    std::uint64_t interpOpsPerSample() const override;
    std::uint64_t indexOpsPerSample() const override { return 12; }

    void bake(const AnalyticField &field) override;
    void gatherFeature(const Vec3 &pn, float *out) const override;
    void gatherAccesses(const Vec3 &pn, std::uint32_t rayId,
                        std::vector<MemAccess> &out) const override;
    void gatherFeatureBatch(const Vec3 *pn, int n,
                            float *out) const override;
    void gatherAccessesBatch(const Vec3 *pn, int n, std::uint32_t rayId,
                             std::vector<MemAccess> &out) const override;
    StreamPlan
    streamingFootprint(const std::vector<Vec3> &positions) const override;

    // --- Grid-specific API used by the fully-streaming renderer ---

    int voxelsPerAxis() const { return _n; }
    int vertsPerAxis() const { return _v; }
    GridLayout layout() const { return _layout; }
    void setLayout(GridLayout layout) { _layout = layout; }

    std::uint32_t vertexBytes() const
    {
        return kFeatureDim * kBytesPerChannel;
    }

    /**
     * Round every stored feature channel to its nearest fp16 value —
     * after this the functional grid holds exactly what the 2-byte
     * DRAM storage priced by vertexBytes() holds. Sticky across
     * re-bakes. Idempotent.
     */
    void quantizeFeaturesFp16();

    /** Whether feature storage has been quantized to fp16 values. */
    bool featuresFp16() const { return _featuresFp16; }

    /** The 8 corners (with weights/addresses) of the voxel at @p pn. */
    std::array<GridCorner, 8> corners(const Vec3 &pn) const;

    /** Functional channel data of a vertex. */
    const float *vertexData(int ix, int iy, int iz) const;

    /** DRAM address of a vertex under the current layout. */
    std::uint64_t vertexAddr(int ix, int iy, int iz) const;

    /** MVoxel that owns a vertex (MVoxelBlocked geometry). */
    std::uint32_t mvoxelOfVertex(int ix, int iy, int iz) const;

    std::uint32_t numMVoxels() const;
    std::uint32_t blocksPerAxis() const { return _blocksPerAxis; }
    int blockVerts() const { return _blockVerts; }

    /** Bytes of one MVoxel chunk in DRAM. */
    std::uint64_t mvoxelBytes() const;

    /** Base DRAM address of MVoxel @p id (MVoxelBlocked layout). */
    std::uint64_t mvoxelBaseAddr(std::uint32_t id) const;

  private:
    std::size_t storageIndex(int ix, int iy, int iz) const;

    /** Scalar sweep of samples [s0, s1) into channel-major @p out. */
    void gatherBatchScalar(const Vec3 *pn, int s0, int s1, int n,
                           float *out) const;

    int _n;          //!< voxels per axis
    int _v;          //!< vertices per axis (= _n + 1)
    GridLayout _layout;
    int _blockVerts; //!< MVoxel edge in vertices
    std::uint32_t _blocksPerAxis;
    bool _featuresFp16 = false;
    std::vector<float> _data; //!< (V^3) x featureDim, x-fastest
};

} // namespace cicero

#endif // CICERO_NERF_DENSE_GRID_HH
