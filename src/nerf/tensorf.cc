#include "nerf/tensorf.hh"

#include <cassert>
#include <cmath>
#include <unordered_set>
#include <vector>

#include "common/simd.hh"

namespace cicero {

namespace {

/** Axis triplets (u, v, w) per grouping: (x,y|z), (x,z|y), (y,z|x). */
constexpr int kAxisU[3] = {0, 0, 1};
constexpr int kAxisV[3] = {1, 2, 2};
constexpr int kAxisW[3] = {2, 1, 0};

} // namespace

TensoRFEncoding::TensoRFEncoding(const TensoRFConfig &config)
    : _config(config)
{
    assert(config.res >= 2 && config.ranks >= 1);
    std::size_t planeSize = static_cast<std::size_t>(config.res) *
                            config.res * config.ranks * kFeatureDim;
    std::size_t lineSize =
        static_cast<std::size_t>(config.res) * config.ranks * kFeatureDim;
    for (int g = 0; g < 3; ++g) {
        _planes[g].assign(planeSize, 0.0f);
        _lines[g].assign(lineSize, 0.0f);
    }
}

std::uint64_t
TensoRFEncoding::modelBytes() const
{
    std::uint64_t planeBytes = static_cast<std::uint64_t>(_config.res) *
                               _config.res * texelBytes();
    std::uint64_t lineBytes =
        static_cast<std::uint64_t>(_config.res) * texelBytes();
    return 3 * (planeBytes + lineBytes);
}

std::uint64_t
TensoRFEncoding::interpOpsPerSample() const
{
    // Per grouping: bilinear + linear weights, then R x C fused product
    // accumulations over (4 + 2 + 1) terms.
    return 3ull * (16 + static_cast<std::uint64_t>(_config.ranks) *
                            kFeatureDim * 7);
}

float &
TensoRFEncoding::planeAt(int g, int u, int v, int r, int ch)
{
    std::size_t texel = static_cast<std::size_t>(v) * _config.res + u;
    return _planes[g][(texel * _config.ranks + r) * kFeatureDim + ch];
}

float
TensoRFEncoding::planeAt(int g, int u, int v, int r, int ch) const
{
    std::size_t texel = static_cast<std::size_t>(v) * _config.res + u;
    return _planes[g][(texel * _config.ranks + r) * kFeatureDim + ch];
}

float &
TensoRFEncoding::lineAt(int g, int w, int r, int ch)
{
    return _lines[g][(static_cast<std::size_t>(w) * _config.ranks + r) *
                         kFeatureDim +
                     ch];
}

float
TensoRFEncoding::lineAt(int g, int w, int r, int ch) const
{
    return _lines[g][(static_cast<std::size_t>(w) * _config.ranks + r) *
                         kFeatureDim +
                     ch];
}

std::uint64_t
TensoRFEncoding::planeBase(int g) const
{
    std::uint64_t planeBytes = static_cast<std::uint64_t>(_config.res) *
                               _config.res * texelBytes();
    std::uint64_t lineBytes =
        static_cast<std::uint64_t>(_config.res) * texelBytes();
    return static_cast<std::uint64_t>(g) * (planeBytes + lineBytes);
}

std::uint64_t
TensoRFEncoding::lineBase(int g) const
{
    std::uint64_t planeBytes = static_cast<std::uint64_t>(_config.res) *
                               _config.res * texelBytes();
    return planeBase(g) + planeBytes;
}

void
TensoRFEncoding::groupCoords(int g, const Vec3 &pn, float &u, float &v,
                             float &w) const
{
    float s = static_cast<float>(_config.res - 1);
    u = clamp(pn[kAxisU[g]], 0.0f, 1.0f) * s;
    v = clamp(pn[kAxisV[g]], 0.0f, 1.0f) * s;
    w = clamp(pn[kAxisW[g]], 0.0f, 1.0f) * s;
}

void
TensoRFEncoding::bake(const AnalyticField &field)
{
    const int n = _config.res;
    const int R = _config.ranks;
    const Aabb &b = field.bounds();
    Vec3 e = b.extent();

    // Dense ground-truth tensor, one slab of channels at a time is not
    // needed — all channels fit comfortably for the working resolutions.
    std::vector<std::vector<float>> dense(
        kFeatureDim,
        std::vector<float>(static_cast<std::size_t>(n) * n * n));
    {
        float feat[kFeatureDim];
        std::size_t i = 0;
        for (int z = 0; z < n; ++z) {
            for (int y = 0; y < n; ++y) {
                for (int x = 0; x < n; ++x, ++i) {
                    Vec3 p{b.lo.x + e.x * x / (n - 1),
                           b.lo.y + e.y * y / (n - 1),
                           b.lo.z + e.z * z / (n - 1)};
                    encodeBakedPoint(field.bakePoint(p), feat);
                    for (int ch = 0; ch < kFeatureDim; ++ch)
                        dense[ch][i] = feat[ch];
                }
            }
        }
    }

    auto at = [n](const std::vector<float> &t, int x, int y, int z) {
        return t[(static_cast<std::size_t>(z) * n + y) * n + x];
    };
    auto coord = [n](int u, int v, int w, int g) {
        int xyz[3];
        xyz[kAxisU[g]] = u;
        xyz[kAxisV[g]] = v;
        xyz[kAxisW[g]] = w;
        return std::array<int, 3>{xyz[0], xyz[1], xyz[2]};
    };

    std::vector<float> plane(static_cast<std::size_t>(n) * n);
    std::vector<float> line(n);

    for (int ch = 0; ch < kFeatureDim; ++ch) {
        std::vector<float> &residual = dense[ch];
        for (int g = 0; g < 3; ++g) {
            for (int r = 0; r < R; ++r) {
                // Rank-1 (plane x line) fit by alternating projections.
                std::fill(line.begin(), line.end(), 1.0f);
                for (int it = 0; it < _config.alsIters; ++it) {
                    float lineSq = 0.0f;
                    for (int w = 0; w < n; ++w)
                        lineSq += line[w] * line[w];
                    if (lineSq < 1e-20f)
                        break;
                    for (int v = 0; v < n; ++v) {
                        for (int u = 0; u < n; ++u) {
                            float acc = 0.0f;
                            for (int w = 0; w < n; ++w) {
                                auto c = coord(u, v, w, g);
                                acc += at(residual, c[0], c[1], c[2]) *
                                       line[w];
                            }
                            plane[static_cast<std::size_t>(v) * n + u] =
                                acc / lineSq;
                        }
                    }
                    float planeSq = 0.0f;
                    for (float pv : plane)
                        planeSq += pv * pv;
                    if (planeSq < 1e-20f)
                        break;
                    for (int w = 0; w < n; ++w) {
                        float acc = 0.0f;
                        for (int v = 0; v < n; ++v) {
                            for (int u = 0; u < n; ++u) {
                                auto c = coord(u, v, w, g);
                                acc +=
                                    at(residual, c[0], c[1], c[2]) *
                                    plane[static_cast<std::size_t>(v) * n +
                                          u];
                            }
                        }
                        line[w] = acc / planeSq;
                    }
                }

                // Store the component and deflate the residual.
                for (int v = 0; v < n; ++v)
                    for (int u = 0; u < n; ++u)
                        planeAt(g, u, v, r, ch) =
                            plane[static_cast<std::size_t>(v) * n + u];
                for (int w = 0; w < n; ++w)
                    lineAt(g, w, r, ch) = line[w];
                for (int w = 0; w < n; ++w) {
                    for (int v = 0; v < n; ++v) {
                        for (int u = 0; u < n; ++u) {
                            auto c = coord(u, v, w, g);
                            residual[(static_cast<std::size_t>(c[2]) * n +
                                      c[1]) *
                                         n +
                                     c[0]] -=
                                plane[static_cast<std::size_t>(v) * n + u] *
                                line[w];
                        }
                    }
                }
            }
        }
    }

    if (_featuresFp16)
        applyFp16Quantization(); // sticky: re-bakes stay 2-byte-valued
}

void
TensoRFEncoding::gatherFeature(const Vec3 &pn, float *out) const
{
    const int n = _config.res;
    const int R = _config.ranks;
    for (int ch = 0; ch < kFeatureDim; ++ch)
        out[ch] = 0.0f;

    for (int g = 0; g < 3; ++g) {
        float fu, fv, fw;
        groupCoords(g, pn, fu, fv, fw);
        int u0 = std::min(static_cast<int>(fu), n - 2);
        int v0 = std::min(static_cast<int>(fv), n - 2);
        int w0 = std::min(static_cast<int>(fw), n - 2);
        float tu = fu - u0;
        float tv = fv - v0;
        float tw = fw - w0;

        float wu[2] = {1.0f - tu, tu};
        float wv[2] = {1.0f - tv, tv};
        float ww[2] = {1.0f - tw, tw};

        for (int r = 0; r < R; ++r) {
            for (int ch = 0; ch < kFeatureDim; ++ch) {
                float pval = 0.0f;
                for (int dv = 0; dv < 2; ++dv)
                    for (int du = 0; du < 2; ++du)
                        pval += wu[du] * wv[dv] *
                                planeAt(g, u0 + du, v0 + dv, r, ch);
                float lval = ww[0] * lineAt(g, w0, r, ch) +
                             ww[1] * lineAt(g, w0 + 1, r, ch);
                out[ch] += pval * lval;
            }
        }
    }
}

void
TensoRFEncoding::gatherBatchScalar(const Vec3 *pn, int s0, int s1,
                                   int n, float *out) const
{
    // Grouping-major sweep: the (plane, line) base pointers and axis
    // triplet of each grouping are resolved once per batch instead of
    // once per sample. Per sample the accumulation order (groupings
    // ascending, ranks ascending) matches gatherFeature() exactly.
    const int res = _config.res;
    const int R = _config.ranks;

    for (int g = 0; g < 3; ++g) {
        for (int s = s0; s < s1; ++s) {
            float fu, fv, fw;
            groupCoords(g, pn[s], fu, fv, fw);
            int u0 = std::min(static_cast<int>(fu), res - 2);
            int v0 = std::min(static_cast<int>(fv), res - 2);
            int w0 = std::min(static_cast<int>(fw), res - 2);
            float tu = fu - u0;
            float tv = fv - v0;
            float tw = fw - w0;

            float wu[2] = {1.0f - tu, tu};
            float wv[2] = {1.0f - tv, tv};
            float ww[2] = {1.0f - tw, tw};

            for (int r = 0; r < R; ++r) {
                for (int ch = 0; ch < kFeatureDim; ++ch) {
                    float pval = 0.0f;
                    for (int dv = 0; dv < 2; ++dv)
                        for (int du = 0; du < 2; ++du)
                            pval += wu[du] * wv[dv] *
                                    planeAt(g, u0 + du, v0 + dv, r, ch);
                    float lval = ww[0] * lineAt(g, w0, r, ch) +
                                 ww[1] * lineAt(g, w0 + 1, r, ch);
                    out[static_cast<std::size_t>(ch) * n + s] +=
                        pval * lval;
                }
            }
        }
    }
}

void
TensoRFEncoding::gatherFeatureBatch(const Vec3 *pn, int n,
                                    float *out) const
{
    using simd::VecF;
    using simd::VecI;
    constexpr int L = VecF::kLanes;

    for (std::size_t i = 0;
         i < static_cast<std::size_t>(n) * kFeatureDim; ++i)
        out[i] = 0.0f;

    // The vector kernel indexes with int32 lanes: factorizations whose
    // scaled plane-texel index could exceed INT32_MAX must take the
    // scalar path, which indexes with size_t.
    const bool indexable =
        static_cast<std::uint64_t>(_config.res) * _config.res *
            _config.ranks * kFeatureDim <=
        0x7fffffffull;

    if (!simd::simdActive() || n < L || !indexable) {
        gatherBatchScalar(pn, 0, n, n, out);
        return;
    }

    // Vectorized grouping-major sweep, one lane per sample: per block
    // the four bilinear plane weights, the scaled texel indices and the
    // two line indices are computed once, then each (rank, channel)
    // slice runs 4 plane + 2 line gathers and accumulates with the
    // exact scalar expressions ((wu*wv)*P summed dv-major,
    // ww0*l0 + ww1*l1, out += pval*lval) — bit-identical to
    // gatherFeature().
    const PositionsSoA pos = transposePositionsSoA(pn, n);
    const float *axes[3] = {pos.x, pos.y, pos.z};

    const int res = _config.res;
    const int R = _config.ranks;
    const int texelElems = R * kFeatureDim;
    const int nBlocks = n / L * L;
    const VecF vZero = VecF::zero();
    const VecF vOne = VecF::broadcast(1.0f);
    const VecF vScale = VecF::broadcast(static_cast<float>(res - 1));
    const VecI vHi = VecI::broadcast(res - 2);
    const VecI vRes = VecI::broadcast(res);
    const VecI vTexel = VecI::broadcast(texelElems);

    for (int g = 0; g < 3; ++g) {
        const float *pu = axes[kAxisU[g]];
        const float *pv = axes[kAxisV[g]];
        const float *pw = axes[kAxisW[g]];
        const float *plane = _planes[g].data();
        const float *line = _lines[g].data();

        for (int s0 = 0; s0 < nBlocks; s0 += L) {
            const VecF fu =
                vmin(vmax(VecF::load(pu + s0), vZero), vOne) * vScale;
            const VecF fv =
                vmin(vmax(VecF::load(pv + s0), vZero), vOne) * vScale;
            const VecF fw =
                vmin(vmax(VecF::load(pw + s0), vZero), vOne) * vScale;
            const VecI u0 = vmin(truncToInt(fu), vHi);
            const VecI v0 = vmin(truncToInt(fv), vHi);
            const VecI w0 = vmin(truncToInt(fw), vHi);
            const VecF tu = fu - toFloat(u0);
            const VecF tv = fv - toFloat(v0);
            const VecF tw = fw - toFloat(w0);

            const VecF wu[2] = {vOne - tu, tu};
            const VecF wv[2] = {vOne - tv, tv};
            const VecF ww0 = vOne - tw;
            const VecF ww1 = tw;

            // Scaled element indices of the 4 plane texels (dv-major,
            // matching the scalar accumulation order) and 2 line taps.
            VecF wuv[4];
            VecI tIdx[4];
            for (int dv = 0; dv < 2; ++dv)
                for (int du = 0; du < 2; ++du) {
                    wuv[dv * 2 + du] = wu[du] * wv[dv];
                    const VecI u = du ? u0 + VecI::broadcast(1) : u0;
                    const VecI v = dv ? v0 + VecI::broadcast(1) : v0;
                    tIdx[dv * 2 + du] = (v * vRes + u) * vTexel;
                }
            const VecI lIdx0 = w0 * vTexel;
            const VecI lIdx1 = lIdx0 + vTexel;

            for (int r = 0; r < R; ++r) {
                for (int ch = 0; ch < kFeatureDim; ++ch) {
                    const int off = r * kFeatureDim + ch;
                    VecF pval = VecF::zero();
                    for (int t = 0; t < 4; ++t)
                        pval = simd::madd(
                            wuv[t], simd::gather(plane + off, tIdx[t]),
                            pval);
                    const VecF lval =
                        ww0 * simd::gather(line + off, lIdx0) +
                        ww1 * simd::gather(line + off, lIdx1);
                    float *o =
                        out + static_cast<std::size_t>(ch) * n + s0;
                    simd::madd(pval, lval, VecF::load(o)).store(o);
                }
            }
        }
    }

    if (nBlocks < n)
        gatherBatchScalar(pn, nBlocks, n, n, out);
}

void
TensoRFEncoding::quantizeFeaturesFp16()
{
    // Unlike the grids' plain rounding, the rebalance below is not a
    // no-op on already-quantized tables (the factor re-derived from
    // rounded maxima is ~1 but not exactly 1), so idempotency comes
    // from the flag: quantized tables are only re-processed after a
    // re-bake refreshes them.
    if (_featuresFp16)
        return;
    _featuresFp16 = true;
    applyFp16Quantization();
}

void
TensoRFEncoding::applyFp16Quantization()
{
    const int res = _config.res;
    const int R = _config.ranks;

    // The ALS fit leaves rank-1 components with wildly unbalanced
    // magnitudes (a huge line against a tiny plane) whose larger half
    // overflows fp16 to inf — and inf * 0 turns gathers into NaN. A
    // rank-1 outer product is invariant under (plane * a, line / a),
    // so rebalance each (grouping, rank, channel) component to equal
    // peak magnitudes before rounding; both halves then land well
    // inside the fp16 range (their geometric mean is a feature-scale
    // value).
    for (int g = 0; g < 3; ++g) {
        for (int r = 0; r < R; ++r) {
            for (int ch = 0; ch < kFeatureDim; ++ch) {
                float maxP = 0.0f, maxL = 0.0f;
                for (int v = 0; v < res; ++v)
                    for (int u = 0; u < res; ++u)
                        maxP = std::max(
                            maxP, std::fabs(planeAt(g, u, v, r, ch)));
                for (int w = 0; w < res; ++w)
                    maxL =
                        std::max(maxL, std::fabs(lineAt(g, w, r, ch)));
                if (maxP <= 0.0f || maxL <= 0.0f)
                    continue;
                const float a = std::sqrt(maxL / maxP);
                const float inv = 1.0f / a;
                for (int v = 0; v < res; ++v)
                    for (int u = 0; u < res; ++u)
                        planeAt(g, u, v, r, ch) *= a;
                for (int w = 0; w < res; ++w)
                    lineAt(g, w, r, ch) *= inv;
            }
        }
        simd::roundBufferThroughFp16(_planes[g].data(), _planes[g].size());
        simd::roundBufferThroughFp16(_lines[g].data(), _lines[g].size());
    }
}

void
TensoRFEncoding::gatherAccessesBatch(const Vec3 *pn, int n,
                                     std::uint32_t rayId,
                                     std::vector<MemAccess> &out) const
{
    // Sample-major (TraceSink ordering contract); base addresses of the
    // three groupings are hoisted out of the sample loop.
    out.reserve(out.size() +
                static_cast<std::size_t>(n) * fetchesPerSample());
    const int res = _config.res;
    const std::uint32_t tb = texelBytes();
    std::uint64_t pBase[3], lBase[3];
    for (int g = 0; g < 3; ++g) {
        pBase[g] = planeBase(g);
        lBase[g] = lineBase(g);
    }
    for (int s = 0; s < n; ++s) {
        for (int g = 0; g < 3; ++g) {
            float fu, fv, fw;
            groupCoords(g, pn[s], fu, fv, fw);
            int u0 = std::min(static_cast<int>(fu), res - 2);
            int v0 = std::min(static_cast<int>(fv), res - 2);
            int w0 = std::min(static_cast<int>(fw), res - 2);
            for (int dv = 0; dv < 2; ++dv) {
                for (int du = 0; du < 2; ++du) {
                    std::uint64_t texel =
                        static_cast<std::uint64_t>(v0 + dv) * res +
                        (u0 + du);
                    out.push_back(
                        MemAccess{pBase[g] + texel * tb, tb, rayId});
                }
            }
            for (int dw = 0; dw < 2; ++dw) {
                out.push_back(MemAccess{
                    lBase[g] +
                        static_cast<std::uint64_t>(w0 + dw) * tb,
                    tb, rayId});
            }
        }
    }
}

void
TensoRFEncoding::gatherAccesses(const Vec3 &pn, std::uint32_t rayId,
                                std::vector<MemAccess> &out) const
{
    const int n = _config.res;
    for (int g = 0; g < 3; ++g) {
        float fu, fv, fw;
        groupCoords(g, pn, fu, fv, fw);
        int u0 = std::min(static_cast<int>(fu), n - 2);
        int v0 = std::min(static_cast<int>(fv), n - 2);
        int w0 = std::min(static_cast<int>(fw), n - 2);
        for (int dv = 0; dv < 2; ++dv) {
            for (int du = 0; du < 2; ++du) {
                std::uint64_t texel =
                    static_cast<std::uint64_t>(v0 + dv) * n + (u0 + du);
                out.push_back(MemAccess{
                    planeBase(g) + texel * texelBytes(), texelBytes(),
                    rayId});
            }
        }
        for (int dw = 0; dw < 2; ++dw) {
            out.push_back(MemAccess{
                lineBase(g) +
                    static_cast<std::uint64_t>(w0 + dw) * texelBytes(),
                texelBytes(), rayId});
        }
    }
}

StreamPlan
TensoRFEncoding::streamingFootprint(
    const std::vector<Vec3> &positions) const
{
    // Planes and lines are low-dimensional, so the memory-centric order
    // streams 2D texel blocks (and whole lines) with no random residue.
    StreamPlan plan;
    const int n = _config.res;
    const int bt = _config.blockTexels;
    const std::uint64_t blockBytes =
        static_cast<std::uint64_t>(bt) * bt * texelBytes();
    const std::uint32_t blocksPerAxis = (n + bt - 1) / bt;

    std::unordered_set<std::uint64_t> touchedBlocks;
    std::unordered_set<std::uint64_t> touchedLineChunks;

    for (const Vec3 &pn : positions) {
        for (int g = 0; g < 3; ++g) {
            float fu, fv, fw;
            groupCoords(g, pn, fu, fv, fw);
            int u0 = std::min(static_cast<int>(fu), n - 2);
            int v0 = std::min(static_cast<int>(fv), n - 2);
            int w0 = std::min(static_cast<int>(fw), n - 2);
            std::uint64_t seen[4];
            int nSeen = 0;
            for (int dv = 0; dv < 2; ++dv) {
                for (int du = 0; du < 2; ++du) {
                    std::uint64_t blk =
                        (static_cast<std::uint64_t>(g) << 48) |
                        (static_cast<std::uint64_t>((v0 + dv) / bt) *
                             blocksPerAxis +
                         (u0 + du) / bt);
                    touchedBlocks.insert(blk);
                    bool dup = false;
                    for (int i = 0; i < nSeen; ++i)
                        dup = dup || seen[i] == blk;
                    if (!dup)
                        seen[nSeen++] = blk;
                }
            }
            plan.ritEntries += nSeen;
            touchedLineChunks.insert((static_cast<std::uint64_t>(g) << 48) |
                                     static_cast<std::uint64_t>(w0 / bt));
        }
    }

    plan.streamedBytes =
        touchedBlocks.size() * blockBytes +
        touchedLineChunks.size() * bt * texelBytes();
    plan.ritBytes = plan.ritEntries * 48;
    return plan;
}

} // namespace cicero
