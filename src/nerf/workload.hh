/**
 * @file
 * Per-frame work accounting for the three NeRF pipeline stages
 * (Indexing, Feature Gathering, Feature Computation — Fig. 1 of the
 * paper). Timing and energy models consume these counts, so functional
 * rendering never has to be repeated for performance experiments.
 */

#ifndef CICERO_NERF_WORKLOAD_HH
#define CICERO_NERF_WORKLOAD_HH

#include <cstdint>

namespace cicero {

/**
 * Work performed to render a set of rays, broken down by pipeline stage.
 */
struct StageWork
{
    // Ray/sample population.
    std::uint64_t rays = 0;
    std::uint64_t samples = 0;

    // Indexing (I): voxel-ID / level-index computations.
    std::uint64_t indexOps = 0;

    // Feature Gathering (G): vertex fetches and interpolation arithmetic.
    std::uint64_t vertexFetches = 0;
    std::uint64_t gatherBytes = 0;
    std::uint64_t interpOps = 0;

    // Feature Computation (F): MLP multiply-accumulates + compositing.
    std::uint64_t mlpMacs = 0;
    std::uint64_t compositeOps = 0;

    StageWork &
    operator+=(const StageWork &o)
    {
        rays += o.rays;
        samples += o.samples;
        indexOps += o.indexOps;
        vertexFetches += o.vertexFetches;
        gatherBytes += o.gatherBytes;
        interpOps += o.interpOps;
        mlpMacs += o.mlpMacs;
        compositeOps += o.compositeOps;
        return *this;
    }

    StageWork
    operator+(const StageWork &o) const
    {
        StageWork r = *this;
        r += o;
        return r;
    }

    /** Scale all counts by @p f (e.g. to extrapolate resolution). */
    StageWork
    scaled(double f) const
    {
        auto s = [f](std::uint64_t v) {
            return static_cast<std::uint64_t>(v * f);
        };
        StageWork r;
        r.rays = s(rays);
        r.samples = s(samples);
        r.indexOps = s(indexOps);
        r.vertexFetches = s(vertexFetches);
        r.gatherBytes = s(gatherBytes);
        r.interpOps = s(interpOps);
        r.mlpMacs = s(mlpMacs);
        r.compositeOps = s(compositeOps);
        return r;
    }
};

} // namespace cicero

#endif // CICERO_NERF_WORKLOAD_HH
