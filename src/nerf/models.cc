#include "nerf/models.hh"

#include <stdexcept>

#include "nerf/hash_grid.hh"
#include "nerf/tensorf.hh"

namespace cicero {

const char *
modelName(ModelKind kind)
{
    switch (kind) {
      case ModelKind::InstantNgp:
        return "Instant-NGP";
      case ModelKind::DirectVoxGO:
        return "DirectVoxGO";
      case ModelKind::TensoRF:
        return "TensoRF";
      case ModelKind::EfficientNeRF:
        return "EfficientNeRF";
    }
    return "?";
}

const std::vector<ModelKind> &
allModelKinds()
{
    static const std::vector<ModelKind> kinds = {
        ModelKind::InstantNgp,
        ModelKind::DirectVoxGO,
        ModelKind::TensoRF,
        ModelKind::EfficientNeRF,
    };
    return kinds;
}

const std::vector<ModelKind> &
mainModelKinds()
{
    static const std::vector<ModelKind> kinds = {
        ModelKind::InstantNgp,
        ModelKind::DirectVoxGO,
        ModelKind::TensoRF,
    };
    return kinds;
}

std::uint64_t
nominalMlpMacs(ModelKind kind)
{
    // Paper-scale MLP widths: Instant-NGP uses 2x64 (density) + 2x64
    // (color); DirectVoxGO a shallow 2x128 RGBNet; TensoRF a 2x128
    // appearance MLP; EfficientNeRF a pruned NeRF MLP.
    switch (kind) {
      case ModelKind::InstantNgp:
        return 32 * 64 + 64 * 64 + 64 * 16 + 16 * 64 + 64 * 64 + 64 * 3;
      case ModelKind::DirectVoxGO:
        return 39 * 128 + 128 * 128 + 128 * 3;
      case ModelKind::TensoRF:
        return 27 * 128 + 128 * 128 + 128 * 3;
      case ModelKind::EfficientNeRF:
        // EfficientNeRF distills shading into a small MLP and caches
        // coarse results; its cost is memory, not compute.
        return 32 * 64 + 64 * 64 + 64 * 3;
    }
    return 0;
}

std::unique_ptr<NerfModel>
buildModel(ModelKind kind, const Scene &scene,
           const ModelBuildOptions &options)
{
    const bool fast = options.preset == ModelPreset::Fast;
    std::unique_ptr<Encoding> enc;
    SamplerConfig sampler;
    sampler.occupancyRes = fast ? 48 : 64;

    switch (kind) {
      case ModelKind::InstantNgp: {
        HashGridConfig cfg =
            fast ? HashGridConfig{} : HashGridConfig::full();
        enc = std::make_unique<HashGridEncoding>(cfg);
        sampler.stepsAcross = fast ? 160 : 256;
        break;
      }
      case ModelKind::DirectVoxGO: {
        enc = std::make_unique<DenseGridEncoding>(fast ? 96 : 160,
                                                  options.gridLayout);
        sampler.stepsAcross = fast ? 144 : 224;
        break;
      }
      case ModelKind::TensoRF: {
        TensoRFConfig cfg;
        cfg.res = fast ? 64 : 128;
        cfg.ranks = fast ? 4 : 6;
        enc = std::make_unique<TensoRFEncoding>(cfg);
        sampler.stepsAcross = fast ? 144 : 224;
        break;
      }
      case ModelKind::EfficientNeRF: {
        enc = std::make_unique<DenseGridEncoding>(fast ? 112 : 192,
                                                  options.gridLayout);
        sampler.stepsAcross = fast ? 224 : 320;
        break;
      }
    }
    if (!enc)
        throw std::invalid_argument("unknown model kind");

    return std::make_unique<NerfModel>(scene, std::move(enc),
                                       nominalMlpMacs(kind), sampler,
                                       options.seed);
}

const std::vector<ModelSpec> &
nominalModelSpecs()
{
    // Paper-scale configurations for the Fig. 2 characterization; sizes
    // follow each paper's published setup for 800x800 Synthetic-NeRF.
    // MobileNeRF and Baking (SNeRG) are rasterization/baked pipelines
    // with no volume-marching implementation here; they carry published
    // numbers only (implemented = false).
    static const std::vector<ModelSpec> specs = [] {
        std::vector<ModelSpec> v;

        ModelSpec ngp;
        ngp.name = "Instant-NGP";
        ngp.modelMB = 64.0;
        ngp.samplesPerRay = 32.0;
        ngp.fetchesPerSample = 64.0;
        ngp.bytesPerFetch = 4.0;
        ngp.mlpMacsPerSample =
            static_cast<double>(nominalMlpMacs(ModelKind::InstantNgp));
        ngp.indexOpsPerSample = 160.0;
        ngp.interpOpsPerSample = 8 * 64.0;
        ngp.implemented = true;
        v.push_back(ngp);

        ModelSpec dvgo;
        dvgo.name = "DirectVoxGO";
        dvgo.modelMB = 600.0;
        dvgo.samplesPerRay = 48.0;
        dvgo.fetchesPerSample = 8.0;
        dvgo.bytesPerFetch = 28.0;
        dvgo.mlpMacsPerSample =
            static_cast<double>(nominalMlpMacs(ModelKind::DirectVoxGO));
        dvgo.indexOpsPerSample = 12.0;
        dvgo.interpOpsPerSample = 8 * 14.0;
        dvgo.implemented = true;
        v.push_back(dvgo);

        ModelSpec tensorf;
        tensorf.name = "TensoRF";
        tensorf.modelMB = 72.0;
        tensorf.samplesPerRay = 48.0;
        tensorf.fetchesPerSample = 18.0;
        tensorf.bytesPerFetch = 96.0;
        tensorf.mlpMacsPerSample =
            static_cast<double>(nominalMlpMacs(ModelKind::TensoRF));
        tensorf.indexOpsPerSample = 36.0;
        tensorf.interpOpsPerSample = 3 * 48 * 7.0;
        tensorf.implemented = true;
        v.push_back(tensorf);

        ModelSpec eff;
        eff.name = "EfficientNeRF";
        eff.modelMB = 2800.0;
        eff.samplesPerRay = 24.0;
        eff.fetchesPerSample = 8.0;
        eff.bytesPerFetch = 128.0;
        eff.mlpMacsPerSample =
            static_cast<double>(nominalMlpMacs(ModelKind::EfficientNeRF));
        eff.indexOpsPerSample = 12.0;
        eff.interpOpsPerSample = 8 * 64.0;
        eff.implemented = true;
        v.push_back(eff);

        ModelSpec mobile;
        mobile.name = "MobileNeRF";
        mobile.modelMB = 130.0;
        mobile.implemented = false;
        v.push_back(mobile);

        ModelSpec baking;
        baking.name = "Baking(SNeRG)";
        baking.modelMB = 1800.0;
        baking.implemented = false;
        v.push_back(baking);

        return v;
    }();
    return specs;
}

} // namespace cicero
