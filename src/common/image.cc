#include "common/image.hh"

#include <cassert>
#include <cmath>
#include <fstream>

namespace cicero {

Image::Image(int w, int h, const Vec3 &fill)
    : _width(w), _height(h),
      _pixels(static_cast<std::size_t>(w) * h, fill)
{
    assert(w >= 0 && h >= 0);
}

void
Image::fill(const Vec3 &v)
{
    for (auto &p : _pixels)
        p = v;
}

Vec3
Image::sampleBilinear(float x, float y) const
{
    assert(!empty());
    x = clamp(x, 0.0f, static_cast<float>(_width - 1));
    y = clamp(y, 0.0f, static_cast<float>(_height - 1));
    int x0 = static_cast<int>(x);
    int y0 = static_cast<int>(y);
    int x1 = std::min(x0 + 1, _width - 1);
    int y1 = std::min(y0 + 1, _height - 1);
    float fx = x - x0;
    float fy = y - y0;

    Vec3 top = lerp(at(x0, y0), at(x1, y0), fx);
    Vec3 bot = lerp(at(x0, y1), at(x1, y1), fx);
    return lerp(top, bot, fy);
}

Image
Image::downsample(int factor) const
{
    assert(factor >= 1);
    int w = std::max(1, _width / factor);
    int h = std::max(1, _height / factor);
    Image out(w, h);
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            Vec3 acc;
            int n = 0;
            for (int dy = 0; dy < factor; ++dy) {
                for (int dx = 0; dx < factor; ++dx) {
                    int sx = x * factor + dx;
                    int sy = y * factor + dy;
                    if (sx < _width && sy < _height) {
                        acc += at(sx, sy);
                        ++n;
                    }
                }
            }
            out.at(x, y) = acc / static_cast<float>(std::max(n, 1));
        }
    }
    return out;
}

Image
Image::upsampleBilinear(int w, int h) const
{
    assert(!empty());
    Image out(w, h);
    float sx = static_cast<float>(_width) / w;
    float sy = static_cast<float>(_height) / h;
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            // Sample at the center of the destination pixel.
            float fx = (x + 0.5f) * sx - 0.5f;
            float fy = (y + 0.5f) * sy - 0.5f;
            out.at(x, y) = sampleBilinear(fx, fy);
        }
    }
    return out;
}

bool
Image::writePpm(const std::string &path) const
{
    std::ofstream f(path, std::ios::binary);
    if (!f)
        return false;
    f << "P6\n" << _width << " " << _height << "\n255\n";
    for (const Vec3 &p : _pixels) {
        for (int c = 0; c < 3; ++c) {
            float v = clamp(p[c], 0.0f, 1.0f);
            // Simple 2.2 display gamma.
            v = std::pow(v, 1.0f / 2.2f);
            f.put(static_cast<char>(
                static_cast<std::uint8_t>(v * 255.0f + 0.5f)));
        }
    }
    return static_cast<bool>(f);
}

DepthMap::DepthMap(int w, int h, float fill)
    : _width(w), _height(h),
      _depth(static_cast<std::size_t>(w) * h, fill)
{
}

void
DepthMap::fill(float v)
{
    for (auto &d : _depth)
        d = v;
}

double
DepthMap::coverage() const
{
    if (_depth.empty())
        return 0.0;
    std::size_t finite = 0;
    for (float d : _depth)
        if (std::isfinite(d))
            ++finite;
    return static_cast<double>(finite) / _depth.size();
}

double
mse(const Image &a, const Image &b)
{
    assert(a.width() == b.width() && a.height() == b.height());
    if (a.pixelCount() == 0)
        return 0.0;
    double acc = 0.0;
    for (std::size_t i = 0; i < a.pixelCount(); ++i) {
        Vec3 d = a.at(i) - b.at(i);
        acc += d.x * d.x + d.y * d.y + d.z * d.z;
    }
    return acc / (3.0 * a.pixelCount());
}

double
psnr(const Image &a, const Image &b)
{
    double m = mse(a, b);
    if (m <= 0.0)
        return std::numeric_limits<double>::infinity();
    return 10.0 * std::log10(1.0 / m);
}

} // namespace cicero
