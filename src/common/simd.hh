/**
 * @file
 * Portable SIMD kernel layer: one fixed-width vector API with a
 * compile-time-selected backend (AVX2 on x86 with F16C, NEON on
 * aarch64, scalar emulation everywhere else) plus exact fp16<->fp32
 * conversions matching the hardware converters bit-for-bit.
 *
 * Design rules the kernels above this layer rely on:
 *  - Lane width is fixed per build (`VecF::kLanes`); the emulated
 *    scalar backend uses the same width so kernel block structure is
 *    identical across backends.
 *  - `madd(a, b, acc)` is an UNFUSED multiply-then-add (two IEEE
 *    roundings, never an FMA), so a vector lane computes exactly what
 *    the scalar expression `acc + a * b` computes. Together with
 *    `-ffp-contract=off` at build time this is what makes the fp32
 *    SIMD kernels bit-identical to their plain scalar references.
 *  - fp16 conversion is round-to-nearest-even, with subnormal, ±inf
 *    and NaN (quieting, payload-truncating) behaviour identical to
 *    F16C/NEON hardware; the scalar bit-twiddling versions are the
 *    reference the vector paths are tested against.
 *
 * Backend selection can be overridden at runtime for determinism
 * debugging: `CICERO_SIMD=scalar` makes `simdActive()` report false so
 * kernels fall back to their scalar reference paths (`CICERO_SIMD=native`
 * or unset keeps the compiled backend). Tests flip the override
 * programmatically via setSimdBackendOverride().
 */

#ifndef CICERO_COMMON_SIMD_HH
#define CICERO_COMMON_SIMD_HH

#include <cstdint>
#include <cstring>

#if !defined(CICERO_FORCE_SCALAR) && defined(__AVX2__) && defined(__F16C__)
#define CICERO_SIMD_AVX2 1
#include <immintrin.h>
#elif !defined(CICERO_FORCE_SCALAR) && defined(__ARM_NEON)
#define CICERO_SIMD_NEON 1
#include <arm_neon.h>
#else
#define CICERO_SIMD_SCALAR 1
#endif

namespace cicero {
namespace simd {

/** The backend compiled into this binary. */
enum class Backend
{
    Scalar,
    Avx2,
    Neon,
};

constexpr Backend kCompiledBackend =
#if defined(CICERO_SIMD_AVX2)
    Backend::Avx2;
#elif defined(CICERO_SIMD_NEON)
    Backend::Neon;
#else
    Backend::Scalar;
#endif

/** "avx2" | "neon" | "scalar". */
const char *backendName(Backend b);

/**
 * The backend kernels should dispatch on: the compiled backend, unless
 * the CICERO_SIMD environment variable (read once) or a test override
 * forces scalar. Thread-safe after first call.
 */
Backend activeBackend();

/** True when vector kernels should run (activeBackend() != Scalar). */
inline bool
simdActive()
{
    return activeBackend() != Backend::Scalar;
}

/**
 * Test hook: force scalar (true) / compiled (false) dispatch, or reset
 * to the environment-derived default with reset=true. Not thread-safe
 * against concurrent kernels — call between kernel invocations only.
 */
void setSimdBackendOverride(bool forceScalar, bool reset = false);

// ---------------------------------------------------------------------
// fp16 <-> fp32 scalar conversions (exact, hardware-equivalent)
// ---------------------------------------------------------------------

/**
 * float -> IEEE binary16 bits, round-to-nearest-even. Overflow goes to
 * ±inf, subnormal halves are produced exactly, NaNs are quieted with
 * the top 9 payload bits preserved — the F16C/NEON behaviour.
 */
inline std::uint16_t
f32ToF16(float f)
{
    std::uint32_t x;
    std::memcpy(&x, &f, 4);
    const std::uint16_t sign = static_cast<std::uint16_t>((x >> 16) & 0x8000u);
    const std::uint32_t exp = (x >> 23) & 0xffu;
    std::uint32_t man = x & 0x7fffffu;

    if (exp == 0xffu) { // inf / NaN
        const std::uint16_t payload =
            man ? static_cast<std::uint16_t>(0x200u | (man >> 13)) : 0u;
        return static_cast<std::uint16_t>(sign | 0x7c00u | payload);
    }

    const std::int32_t e = static_cast<std::int32_t>(exp) - 127 + 15;
    if (e >= 31) // overflow -> inf
        return static_cast<std::uint16_t>(sign | 0x7c00u);

    if (e <= 0) { // half subnormal (or zero)
        if (e < -10) // below half of the smallest subnormal
            return sign;
        man |= 0x800000u; // make the implicit bit explicit
        const int shift = 14 - e; // in [14, 24]
        std::uint32_t h = man >> shift;
        const std::uint32_t rem = man & ((1u << shift) - 1u);
        const std::uint32_t halfway = 1u << (shift - 1);
        if (rem > halfway || (rem == halfway && (h & 1u)))
            ++h; // RNE; a carry out of the subnormal range lands on the
                 // smallest normal's bit pattern, which is correct
        return static_cast<std::uint16_t>(sign | h);
    }

    std::uint32_t h = static_cast<std::uint32_t>(e << 10) | (man >> 13);
    const std::uint32_t rem = man & 0x1fffu;
    if (rem > 0x1000u || (rem == 0x1000u && (h & 1u)))
        ++h; // RNE; mantissa carry correctly bumps the exponent and
             // rounds 65520..65536 up to the inf bit pattern
    return static_cast<std::uint16_t>(sign | h);
}

/** IEEE binary16 bits -> float. Exact for every half value. */
inline float
f16ToF32(std::uint16_t h)
{
    const std::uint32_t sign = static_cast<std::uint32_t>(h & 0x8000u) << 16;
    const std::uint32_t exp = (h >> 10) & 0x1fu;
    std::uint32_t man = h & 0x3ffu;
    std::uint32_t x;
    if (exp == 0) {
        if (man == 0) {
            x = sign; // ±0
        } else {
            // Normalize the subnormal: shift until the implicit bit.
            int sh = 0;
            while (!(man & 0x400u)) {
                man <<= 1;
                ++sh;
            }
            man &= 0x3ffu;
            x = sign | (static_cast<std::uint32_t>(113 - sh) << 23) |
                (man << 13);
        }
    } else if (exp == 31) {
        // ±inf / NaN. NaNs keep their payload but are quieted — the
        // hardware converters (F16C/NEON) quiet signaling NaNs too.
        x = sign | 0x7f800000u | (man ? 0x400000u : 0u) | (man << 13);
    } else {
        x = sign | ((exp + 112u) << 23) | (man << 13);
    }
    float f;
    std::memcpy(&f, &x, 4);
    return f;
}

// ---------------------------------------------------------------------
// Fixed-width vector types
// ---------------------------------------------------------------------

#if defined(CICERO_SIMD_AVX2)

struct VecI; // fwd

/** 8 packed floats (AVX2 ymm). */
struct VecF
{
    static constexpr int kLanes = 8;
    __m256 v;

    static VecF zero() { return {_mm256_setzero_ps()}; }
    static VecF broadcast(float x) { return {_mm256_set1_ps(x)}; }
    static VecF load(const float *p) { return {_mm256_loadu_ps(p)}; }
    void store(float *p) const { _mm256_storeu_ps(p, v); }
};

inline VecF
operator+(VecF a, VecF b)
{
    return {_mm256_add_ps(a.v, b.v)};
}
inline VecF
operator-(VecF a, VecF b)
{
    return {_mm256_sub_ps(a.v, b.v)};
}
inline VecF
operator*(VecF a, VecF b)
{
    return {_mm256_mul_ps(a.v, b.v)};
}
inline VecF
vmin(VecF a, VecF b)
{
    return {_mm256_min_ps(a.v, b.v)};
}
inline VecF
vmax(VecF a, VecF b)
{
    return {_mm256_max_ps(a.v, b.v)};
}
/** Unfused acc + a*b (two roundings — matches the scalar expression). */
inline VecF
madd(VecF a, VecF b, VecF acc)
{
    return {_mm256_add_ps(acc.v, _mm256_mul_ps(a.v, b.v))};
}

/** 8 packed 32-bit signed ints. */
struct VecI
{
    static constexpr int kLanes = 8;
    __m256i v;

    static VecI broadcast(std::int32_t x)
    {
        return {_mm256_set1_epi32(x)};
    }
    static VecI load(const std::int32_t *p)
    {
        return {_mm256_loadu_si256(reinterpret_cast<const __m256i *>(p))};
    }
    void store(std::int32_t *p) const
    {
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(p), v);
    }
};

inline VecI
operator+(VecI a, VecI b)
{
    return {_mm256_add_epi32(a.v, b.v)};
}
inline VecI
operator*(VecI a, VecI b) // low 32 bits, as scalar int32 multiply
{
    return {_mm256_mullo_epi32(a.v, b.v)};
}
inline VecI
operator^(VecI a, VecI b)
{
    return {_mm256_xor_si256(a.v, b.v)};
}
inline VecI
operator&(VecI a, VecI b)
{
    return {_mm256_and_si256(a.v, b.v)};
}
inline VecI
vmin(VecI a, VecI b)
{
    return {_mm256_min_epi32(a.v, b.v)};
}
/** Truncate-toward-zero float->int, like `static_cast<int>(f)`. */
inline VecI
truncToInt(VecF a)
{
    return {_mm256_cvttps_epi32(a.v)};
}
/** Exact int->float conversion. */
inline VecF
toFloat(VecI a)
{
    return {_mm256_cvtepi32_ps(a.v)};
}
/** out[lane] = base[idx[lane]] (32-bit indices, float elements). */
inline VecF
gather(const float *base, VecI idx)
{
    return {_mm256_i32gather_ps(base, idx.v, 4)};
}
/** Convert 8 contiguous halves to 8 floats (F16C, exact). */
inline VecF
loadF16(const std::uint16_t *p)
{
    return {_mm256_cvtph_ps(
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(p)))};
}
/** Convert 8 floats to 8 contiguous halves, RNE (F16C). */
inline void
storeF16(std::uint16_t *p, VecF a)
{
    _mm_storeu_si128(
        reinterpret_cast<__m128i *>(p),
        _mm256_cvtps_ph(a.v, _MM_FROUND_TO_NEAREST_INT |
                                 _MM_FROUND_NO_EXC));
}

#elif defined(CICERO_SIMD_NEON)

struct VecI; // fwd

/** 4 packed floats (NEON q register). */
struct VecF
{
    static constexpr int kLanes = 4;
    float32x4_t v;

    static VecF zero() { return {vdupq_n_f32(0.0f)}; }
    static VecF broadcast(float x) { return {vdupq_n_f32(x)}; }
    static VecF load(const float *p) { return {vld1q_f32(p)}; }
    void store(float *p) const { vst1q_f32(p, v); }
};

inline VecF
operator+(VecF a, VecF b)
{
    return {vaddq_f32(a.v, b.v)};
}
inline VecF
operator-(VecF a, VecF b)
{
    return {vsubq_f32(a.v, b.v)};
}
inline VecF
operator*(VecF a, VecF b)
{
    return {vmulq_f32(a.v, b.v)};
}
inline VecF
vmin(VecF a, VecF b)
{
    return {vminq_f32(a.v, b.v)};
}
inline VecF
vmax(VecF a, VecF b)
{
    return {vmaxq_f32(a.v, b.v)};
}
/** Unfused acc + a*b: explicit mul then add (NOT vmlaq/vfmaq). */
inline VecF
madd(VecF a, VecF b, VecF acc)
{
    return {vaddq_f32(acc.v, vmulq_f32(a.v, b.v))};
}

/** 4 packed 32-bit signed ints. */
struct VecI
{
    static constexpr int kLanes = 4;
    int32x4_t v;

    static VecI broadcast(std::int32_t x) { return {vdupq_n_s32(x)}; }
    static VecI load(const std::int32_t *p) { return {vld1q_s32(p)}; }
    void store(std::int32_t *p) const { vst1q_s32(p, v); }
};

inline VecI
operator+(VecI a, VecI b)
{
    return {vaddq_s32(a.v, b.v)};
}
inline VecI
operator*(VecI a, VecI b)
{
    return {vmulq_s32(a.v, b.v)};
}
inline VecI
operator^(VecI a, VecI b)
{
    return {veorq_s32(a.v, b.v)};
}
inline VecI
operator&(VecI a, VecI b)
{
    return {vandq_s32(a.v, b.v)};
}
inline VecI
vmin(VecI a, VecI b)
{
    return {vminq_s32(a.v, b.v)};
}
inline VecI
truncToInt(VecF a)
{
    return {vcvtq_s32_f32(a.v)}; // truncates toward zero
}
inline VecF
toFloat(VecI a)
{
    return {vcvtq_f32_s32(a.v)};
}
inline VecF
gather(const float *base, VecI idx)
{
    float lanes[4];
    std::int32_t i[4];
    vst1q_s32(i, idx.v);
    for (int l = 0; l < 4; ++l)
        lanes[l] = base[i[l]];
    return {vld1q_f32(lanes)};
}
inline VecF
loadF16(const std::uint16_t *p)
{
    return {vcvt_f32_f16(vreinterpret_f16_u16(vld1_u16(p)))};
}
inline void
storeF16(std::uint16_t *p, VecF a)
{
    vst1_u16(p, vreinterpret_u16_f16(vcvt_f16_f32(a.v)));
}

#else // scalar emulation

/**
 * Scalar-emulated vector: same 8-lane shape as the AVX2 backend so the
 * kernels' block structure does not change, but every op is a plain
 * scalar loop the compiler may (or may not) auto-vectorize. Lane l of
 * every operation computes exactly the scalar expression, so kernel
 * results are backend-independent.
 */
struct VecI;

struct VecF
{
    static constexpr int kLanes = 8;
    float v[kLanes];

    static VecF zero()
    {
        VecF r;
        for (float &x : r.v)
            x = 0.0f;
        return r;
    }
    static VecF broadcast(float x)
    {
        VecF r;
        for (float &y : r.v)
            y = x;
        return r;
    }
    static VecF load(const float *p)
    {
        VecF r;
        for (int l = 0; l < kLanes; ++l)
            r.v[l] = p[l];
        return r;
    }
    void store(float *p) const
    {
        for (int l = 0; l < kLanes; ++l)
            p[l] = v[l];
    }
};

#define CICERO_SIMD_LANEWISE_F(name, expr)                                \
    inline VecF name(VecF a, VecF b)                                      \
    {                                                                     \
        VecF r;                                                           \
        for (int l = 0; l < VecF::kLanes; ++l)                            \
            r.v[l] = (expr);                                              \
        return r;                                                         \
    }
CICERO_SIMD_LANEWISE_F(operator+, a.v[l] + b.v[l])
CICERO_SIMD_LANEWISE_F(operator-, a.v[l] - b.v[l])
CICERO_SIMD_LANEWISE_F(operator*, a.v[l] * b.v[l])
CICERO_SIMD_LANEWISE_F(vmin, a.v[l] < b.v[l] ? a.v[l] : b.v[l])
CICERO_SIMD_LANEWISE_F(vmax, a.v[l] > b.v[l] ? a.v[l] : b.v[l])
#undef CICERO_SIMD_LANEWISE_F

inline VecF
madd(VecF a, VecF b, VecF acc)
{
    VecF r;
    for (int l = 0; l < VecF::kLanes; ++l)
        r.v[l] = acc.v[l] + a.v[l] * b.v[l];
    return r;
}

struct VecI
{
    static constexpr int kLanes = 8;
    std::int32_t v[kLanes];

    static VecI broadcast(std::int32_t x)
    {
        VecI r;
        for (std::int32_t &y : r.v)
            y = x;
        return r;
    }
    static VecI load(const std::int32_t *p)
    {
        VecI r;
        for (int l = 0; l < kLanes; ++l)
            r.v[l] = p[l];
        return r;
    }
    void store(std::int32_t *p) const
    {
        for (int l = 0; l < kLanes; ++l)
            p[l] = v[l];
    }
};

#define CICERO_SIMD_LANEWISE_I(name, expr)                                \
    inline VecI name(VecI a, VecI b)                                      \
    {                                                                     \
        VecI r;                                                           \
        for (int l = 0; l < VecI::kLanes; ++l)                            \
            r.v[l] = (expr);                                              \
        return r;                                                         \
    }
CICERO_SIMD_LANEWISE_I(operator+, a.v[l] + b.v[l])
CICERO_SIMD_LANEWISE_I(
    operator*,
    static_cast<std::int32_t>(static_cast<std::uint32_t>(a.v[l]) *
                              static_cast<std::uint32_t>(b.v[l])))
CICERO_SIMD_LANEWISE_I(operator^, a.v[l] ^ b.v[l])
CICERO_SIMD_LANEWISE_I(operator&, a.v[l] & b.v[l])
CICERO_SIMD_LANEWISE_I(vmin, a.v[l] < b.v[l] ? a.v[l] : b.v[l])
#undef CICERO_SIMD_LANEWISE_I

inline VecI
truncToInt(VecF a)
{
    VecI r;
    for (int l = 0; l < VecF::kLanes; ++l)
        r.v[l] = static_cast<std::int32_t>(a.v[l]);
    return r;
}
inline VecF
toFloat(VecI a)
{
    VecF r;
    for (int l = 0; l < VecI::kLanes; ++l)
        r.v[l] = static_cast<float>(a.v[l]);
    return r;
}
inline VecF
gather(const float *base, VecI idx)
{
    VecF r;
    for (int l = 0; l < VecI::kLanes; ++l)
        r.v[l] = base[idx.v[l]];
    return r;
}
inline VecF
loadF16(const std::uint16_t *p)
{
    VecF r;
    for (int l = 0; l < VecF::kLanes; ++l)
        r.v[l] = f16ToF32(p[l]);
    return r;
}
inline void
storeF16(std::uint16_t *p, VecF a)
{
    for (int l = 0; l < VecF::kLanes; ++l)
        p[l] = f32ToF16(a.v[l]);
}

#endif // backend

// ---------------------------------------------------------------------
// fp16 buffer helpers
// ---------------------------------------------------------------------

/** Convert @p n halves at @p src to floats at @p dst (vectorized). */
void convertF16ToF32(const std::uint16_t *src, float *dst, std::size_t n);

/** Convert @p n floats at @p src to halves at @p dst, RNE. */
void convertF32ToF16(const float *src, std::uint16_t *dst, std::size_t n);

/**
 * Round every float in [p, p+n) to its nearest fp16 value and back —
 * after this, the buffer holds exactly what 2-byte feature storage
 * would hold. Values already fp16-representable are unchanged.
 */
void roundBufferThroughFp16(float *p, std::size_t n);

// ---------------------------------------------------------------------
// AoS <-> SoA feature-buffer transposition
// ---------------------------------------------------------------------

/**
 * Sample-major (n x dim, sample i's vector contiguous) to channel-major
 * (dim x n, channel c's lane sweep contiguous). Handles any n,
 * including non-multiples of the vector width.
 */
void transposeToChannelMajor(const float *aos, int n, int dim, float *soa);

/** Inverse of transposeToChannelMajor. */
void transposeToSampleMajor(const float *soa, int n, int dim, float *aos);

} // namespace simd
} // namespace cicero

#endif // CICERO_COMMON_SIMD_HH
