/**
 * @file
 * Rays, axis-aligned bounding boxes and the pinhole camera model.
 */

#ifndef CICERO_COMMON_GEOMETRY_HH
#define CICERO_COMMON_GEOMETRY_HH

#include <optional>
#include <utility>

#include "common/math.hh"

namespace cicero {

/** A parametric ray o + t * d. */
struct Ray
{
    Vec3 origin;
    Vec3 dir; //!< not required to be unit length

    Vec3 at(float t) const { return origin + dir * t; }
};

/** Axis-aligned bounding box. */
struct Aabb
{
    Vec3 lo{ 1e30f,  1e30f,  1e30f};
    Vec3 hi{-1e30f, -1e30f, -1e30f};

    Aabb() = default;
    Aabb(const Vec3 &lo_, const Vec3 &hi_) : lo(lo_), hi(hi_) {}

    bool
    valid() const
    {
        return lo.x <= hi.x && lo.y <= hi.y && lo.z <= hi.z;
    }

    Vec3 extent() const { return hi - lo; }
    Vec3 center() const { return (lo + hi) * 0.5f; }

    bool
    contains(const Vec3 &p) const
    {
        return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y &&
               p.z >= lo.z && p.z <= hi.z;
    }

    void
    expand(const Vec3 &p)
    {
        lo = Vec3::min(lo, p);
        hi = Vec3::max(hi, p);
    }

    /**
     * Slab-test the ray against the box.
     *
     * @return the entry/exit parameters (tmin, tmax), clipped to
     * [tLo, tHi], or nullopt if the ray misses.
     */
    std::optional<std::pair<float, float>>
    intersect(const Ray &ray, float tLo = 0.0f, float tHi = 1e30f) const
    {
        float t0 = tLo;
        float t1 = tHi;
        for (int a = 0; a < 3; ++a) {
            float d = ray.dir[a];
            float o = ray.origin[a];
            if (std::fabs(d) < 1e-12f) {
                if (o < lo[a] || o > hi[a])
                    return std::nullopt;
                continue;
            }
            float inv = 1.0f / d;
            float tn = (lo[a] - o) * inv;
            float tf = (hi[a] - o) * inv;
            if (tn > tf)
                std::swap(tn, tf);
            t0 = std::fmax(t0, tn);
            t1 = std::fmin(t1, tf);
            if (t0 > t1)
                return std::nullopt;
        }
        return std::make_pair(t0, t1);
    }

    /** Normalize @p p into [0,1]^3 coordinates of this box. */
    Vec3
    normalize(const Vec3 &p) const
    {
        Vec3 e = extent();
        return {(p.x - lo.x) / e.x, (p.y - lo.y) / e.y, (p.z - lo.z) / e.z};
    }
};

/**
 * Pinhole camera: intrinsics (focal length in pixels, principal point)
 * plus an extrinsic Pose. Matches the intrinsic matrix used by Eqs. (1)
 * and (3) of the paper.
 */
struct Camera
{
    int width = 0;      //!< image width in pixels
    int height = 0;     //!< image height in pixels
    float focal = 0.0f; //!< focal length in pixels
    float cx = 0.0f;    //!< principal point x
    float cy = 0.0f;    //!< principal point y
    Pose pose;          //!< camera-to-world pose

    /** Build a camera from a vertical field of view in degrees. */
    static Camera
    fromFov(int w, int h, float fovYDeg, const Pose &pose = Pose{})
    {
        Camera c;
        c.width = w;
        c.height = h;
        c.focal = 0.5f * h / std::tan(0.5f * deg2rad(fovYDeg));
        c.cx = 0.5f * w;
        c.cy = 0.5f * h;
        c.pose = pose;
        return c;
    }

    /**
     * Generate the world-space ray through the center of pixel
     * (@p px, @p py). Camera looks down -Z; image y grows downward.
     */
    Ray
    generateRay(int px, int py) const
    {
        float x = (px + 0.5f - cx) / focal;
        float y = -(py + 0.5f - cy) / focal;
        Vec3 dirCam{x, y, -1.0f};
        Ray r;
        r.origin = pose.pos;
        r.dir = (pose.rot * dirCam).normalized();
        return r;
    }

    /**
     * Project a camera-space point (-Z in front) to continuous pixel
     * coordinates and depth.
     *
     * @return (px, py, depth) where depth > 0 means in front of camera.
     */
    Vec3
    projectCameraSpace(const Vec3 &pc) const
    {
        float depth = -pc.z;
        if (depth <= 1e-6f)
            return {-1.0f, -1.0f, -1.0f};
        float px = focal * (pc.x / depth) + cx - 0.5f;
        float py = -focal * (pc.y / depth) + cy - 0.5f;
        return {px, py, depth};
    }

    /**
     * Back-project pixel (@p px, @p py) at depth @p depth (distance along
     * the -Z camera axis) to a camera-space point. This is Eq. (1).
     */
    Vec3
    backproject(float px, float py, float depth) const
    {
        float x = (px + 0.5f - cx) / focal * depth;
        float y = -(py + 0.5f - cy) / focal * depth;
        return {x, y, -depth};
    }

    /** World-space position of pixel (@p px, @p py) at depth @p depth. */
    Vec3
    backprojectWorld(float px, float py, float depth) const
    {
        return pose.cameraToWorld(backproject(px, py, depth));
    }
};

} // namespace cicero

#endif // CICERO_COMMON_GEOMETRY_HH
