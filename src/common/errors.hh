/**
 * @file
 * Typed error hierarchy shared across the repo.
 *
 * Every error below derives std::runtime_error, so existing catch
 * sites (and EXPECT_THROW(..., std::runtime_error) tests) keep
 * working; the subtypes let the CLI tools map failures to distinct
 * exit codes and print actionable context (which file, which errno)
 * instead of a bare what() string.
 */

#ifndef CICERO_COMMON_ERRORS_HH
#define CICERO_COMMON_ERRORS_HH

#include <cstring>
#include <stdexcept>
#include <string>

namespace cicero {

namespace detail {

inline std::string
ioErrorMessage(const std::string &what, const std::string &path, int err)
{
    std::string m = what + ": " + path;
    if (err != 0) {
        m += ": ";
        m += std::strerror(err);
    }
    return m;
}

} // namespace detail

/**
 * Operating-system I/O failure (open/read/write/rename/...): carries
 * the path and the errno at the failure point. Construct it right
 * after the failing call, before anything can clobber errno.
 */
class IoError : public std::runtime_error
{
  public:
    IoError(const std::string &what, const std::string &path, int err)
        : std::runtime_error(detail::ioErrorMessage(what, path, err)),
          _path(path), _errnum(err)
    {
    }

    const std::string &path() const { return _path; }
    int errnum() const { return _errnum; }

  private:
    std::string _path;
    int _errnum;
};

/**
 * Input that exists and was read fine but does not parse: bad magic,
 * unsupported version, corrupt payload, malformed JSON. Distinct from
 * IoError so the tools can exit with a "your file is damaged" code
 * rather than a "the filesystem failed" code.
 */
class ParseError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

} // namespace cicero

#endif // CICERO_COMMON_ERRORS_HH
