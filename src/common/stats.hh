/**
 * @file
 * Lightweight statistics utilities: named counters, scalar summaries and
 * aligned table printing for the benchmark harness output.
 */

#ifndef CICERO_COMMON_STATS_HH
#define CICERO_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cicero {

/**
 * A bag of named 64-bit counters, in the spirit of a simulator's stats
 * package. Counters are created on first use.
 */
class StatGroup
{
  public:
    /** Add @p delta to counter @p name. */
    void
    inc(const std::string &name, std::uint64_t delta = 1)
    {
        _counters[name] += delta;
    }

    /** Current value of counter @p name (0 if never touched). */
    std::uint64_t
    get(const std::string &name) const
    {
        auto it = _counters.find(name);
        return it == _counters.end() ? 0 : it->second;
    }

    /** Ratio of two counters; 0 when the denominator is 0. */
    double
    ratio(const std::string &num, const std::string &den) const
    {
        std::uint64_t d = get(den);
        return d == 0 ? 0.0 : static_cast<double>(get(num)) / d;
    }

    void reset() { _counters.clear(); }

    const std::map<std::string, std::uint64_t> &all() const
    {
        return _counters;
    }

    /** Merge another group's counters into this one. */
    void
    merge(const StatGroup &o)
    {
        for (const auto &[k, v] : o.all())
            _counters[k] += v;
    }

  private:
    std::map<std::string, std::uint64_t> _counters;
};

/**
 * Running scalar summary (count / mean / min / max / stddev) used for
 * per-frame metrics such as warp ratios and PSNR.
 */
class Summary
{
  public:
    void add(double v);

    std::uint64_t count() const { return _n; }
    double mean() const { return _n ? _sum / _n : 0.0; }
    double min() const { return _min; }
    double max() const { return _max; }
    double stddev() const;
    double sum() const { return _sum; }

  private:
    std::uint64_t _n = 0;
    double _sum = 0.0;
    double _sumSq = 0.0;
    double _min = 1e300;
    double _max = -1e300;
};

/**
 * A fixed-column text table that prints the rows/series of a paper figure
 * in aligned columns. Cells are strings; convenience adders format
 * numbers with a sensible precision.
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> header);

    /** Begin a new row; subsequent cell() calls fill it left to right. */
    Table &row();

    Table &cell(const std::string &s);
    Table &cell(double v, int precision = 2);
    Table &cell(std::uint64_t v);
    Table &cell(int v);

    /** Render the table with a separator under the header. */
    std::string str() const;

    /** Print to stdout. */
    void print() const;

  private:
    std::vector<std::string> _header;
    std::vector<std::vector<std::string>> _rows;
};

/** Format @p v with @p precision digits after the decimal point. */
std::string formatDouble(double v, int precision = 2);

/** Format a byte count with a human-readable suffix (KB/MB/GB). */
std::string formatBytes(double bytes);

} // namespace cicero

#endif // CICERO_COMMON_STATS_HH
