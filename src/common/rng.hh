/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic pieces of the reproduction (scene baking, trajectory
 * jitter, workload generators) draw from this generator so that every
 * experiment is reproducible from a single seed.
 */

#ifndef CICERO_COMMON_RNG_HH
#define CICERO_COMMON_RNG_HH

#include <cstdint>

#include "common/math.hh"

namespace cicero {

/**
 * xoshiro256** — a small, fast, high-quality PRNG with splittable seeding.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0xc0ffeeull) { reseed(seed); }

    /** Re-seed using splitmix64 expansion of @p seed. */
    void
    reseed(std::uint64_t seed)
    {
        std::uint64_t x = seed;
        for (auto &si : s)
            si = splitmix64(x);
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t result = rotl(s[1] * 5, 7) * 9;
        std::uint64_t t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = rotl(s[3], 45);
        return result;
    }

    /** Uniform float in [0, 1). */
    float
    uniform()
    {
        return static_cast<float>(next() >> 40) * (1.0f / (1ull << 24));
    }

    /** Uniform float in [lo, hi). */
    float
    uniform(float lo, float hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [0, n). @p n must be nonzero. */
    std::uint64_t
    uniformInt(std::uint64_t n)
    {
        return next() % n;
    }

    /** Standard normal via Box-Muller. */
    float
    normal()
    {
        float u1 = uniform();
        float u2 = uniform();
        if (u1 < 1e-12f)
            u1 = 1e-12f;
        return std::sqrt(-2.0f * std::log(u1)) *
               std::cos(2.0f * kPi * u2);
    }

    /** Uniform point in the unit cube. */
    Vec3
    uniformVec3()
    {
        return {uniform(), uniform(), uniform()};
    }

    /** Uniform direction on the unit sphere. */
    Vec3
    uniformDirection()
    {
        float z = uniform(-1.0f, 1.0f);
        float phi = uniform(0.0f, 2.0f * kPi);
        float r = std::sqrt(std::fmax(0.0f, 1.0f - z * z));
        return {r * std::cos(phi), r * std::sin(phi), z};
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    static std::uint64_t
    splitmix64(std::uint64_t &x)
    {
        x += 0x9e3779b97f4a7c15ull;
        std::uint64_t z = x;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    std::uint64_t s[4];
};

} // namespace cicero

#endif // CICERO_COMMON_RNG_HH
