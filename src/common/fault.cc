#include "common/fault.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <utility>
#include <vector>

namespace cicero {

namespace {

/**
 * Per-site armed state. `hits` counts matching probe calls since the
 * site was armed; the window [after, after + count) of that sequence
 * fires. All counters are atomics so concurrent probes stay exact:
 * fetch_add hands every hit a unique index, and exactly the indices
 * inside the window fire regardless of which threads land them.
 */
struct SiteState
{
    std::atomic<bool> armed{false};
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> fired{0};
    // Window parameters: written under the config mutex before `armed`
    // is released, read by probes after acquiring `armed`.
    std::uint64_t after = 0;
    std::uint64_t count = UINT64_MAX;
    std::int64_t key = kFaultAnyKey;
};

struct FaultTable
{
    std::atomic<int> armedSites{0}; //!< fast-path gate
    std::mutex configMu;            //!< serializes arm/disarm
    SiteState sites[kNumFaultSites];
};

FaultTable &
table()
{
    static FaultTable t;
    return t;
}

std::once_flag gEnvOnce;

constexpr const char *kSiteNames[kNumFaultSites] = {
    "task_exec",     "mlp_decode",   "trace_read",
    "trace_write",   "trace_flush",  "session_admit",
    "frame_render",  "frame_deadline",
};

/**
 * Probe core shared by faultCheck and faultShouldFire: count the hit,
 * decide whether it falls in the armed window.
 */
bool
probe(FaultSite site, std::int64_t key)
{
    FaultTable &t = table();
    std::call_once(gEnvOnce, faultInitFromEnv);
    if (t.armedSites.load(std::memory_order_relaxed) == 0)
        return false;
    SiteState &s = t.sites[static_cast<int>(site)];
    if (!s.armed.load(std::memory_order_acquire))
        return false;
    if (s.key != kFaultAnyKey && s.key != key)
        return false;
    std::uint64_t hit =
        s.hits.fetch_add(1, std::memory_order_relaxed) + 1;
    if (hit <= s.after || hit > s.after + s.count)
        return false;
    s.fired.fetch_add(1, std::memory_order_relaxed);
    return true;
}

std::uint64_t
parseU64(const std::string &text, const std::string &where)
{
    if (text.empty())
        throw FaultSpecError("empty value for " + where);
    std::uint64_t v = 0;
    for (char c : text) {
        if (c < '0' || c > '9')
            throw FaultSpecError("non-numeric value \"" + text +
                                 "\" for " + where);
        std::uint64_t d = static_cast<std::uint64_t>(c - '0');
        if (v > (UINT64_MAX - d) / 10)
            throw FaultSpecError("value overflow for " + where);
        v = v * 10 + d;
    }
    return v;
}

/** Parse one ';'-separated arm clause: site[:after=N][:count=N][:key=K]. */
std::pair<FaultSite, FaultSpec>
parseClause(const std::string &clause)
{
    std::size_t colon = clause.find(':');
    std::string name = clause.substr(0, colon);
    FaultSite site;
    if (!faultSiteFromName(name, site))
        throw FaultSpecError("unknown site \"" + name + "\"");

    FaultSpec spec;
    std::size_t pos = colon;
    while (pos != std::string::npos) {
        std::size_t next = clause.find(':', pos + 1);
        std::string param =
            clause.substr(pos + 1, next == std::string::npos
                                       ? std::string::npos
                                       : next - pos - 1);
        std::size_t eq = param.find('=');
        std::string pkey = param.substr(0, eq);
        std::string pval =
            eq == std::string::npos ? std::string() : param.substr(eq + 1);
        if (pkey == "after")
            spec.after = parseU64(pval, "after");
        else if (pkey == "count")
            spec.count = parseU64(pval, "count");
        else if (pkey == "key")
            spec.key = static_cast<std::int64_t>(parseU64(pval, "key"));
        else
            throw FaultSpecError("unknown parameter \"" + pkey + "\"");
        pos = next;
    }
    return {site, spec};
}

} // namespace

FaultInjectedError::FaultInjectedError(FaultSite site, std::uint64_t hit)
    : std::runtime_error(std::string("injected fault at site ") +
                         faultSiteName(site) + " (hit " +
                         std::to_string(hit) + ")"),
      _site(site), _hit(hit)
{
}

const char *
faultSiteName(FaultSite site)
{
    int i = static_cast<int>(site);
    return (i >= 0 && i < kNumFaultSites) ? kSiteNames[i] : "?";
}

bool
faultSiteFromName(const std::string &name, FaultSite &out)
{
    for (int i = 0; i < kNumFaultSites; ++i) {
        if (name == kSiteNames[i]) {
            out = static_cast<FaultSite>(i);
            return true;
        }
    }
    return false;
}

void
faultArm(FaultSite site, const FaultSpec &spec)
{
    FaultTable &t = table();
    std::lock_guard<std::mutex> lk(t.configMu);
    SiteState &s = t.sites[static_cast<int>(site)];
    bool wasArmed = s.armed.load(std::memory_order_relaxed);
    s.after = spec.after;
    s.count = spec.count;
    s.key = spec.key;
    s.hits.store(0, std::memory_order_relaxed);
    s.fired.store(0, std::memory_order_relaxed);
    if (!wasArmed)
        t.armedSites.fetch_add(1, std::memory_order_relaxed);
    s.armed.store(true, std::memory_order_release);
}

void
faultArmSpec(const std::string &spec)
{
    // An empty (or all-whitespace) spec is an explicit no-op — the
    // unset-env-var case. Anything else must parse completely; the
    // parse is two-phase so a bad later clause arms nothing at all.
    if (spec.find_first_not_of(" \t\n\r") == std::string::npos)
        return;

    std::vector<std::pair<FaultSite, FaultSpec>> parsed;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t next = spec.find(';', pos);
        std::string clause =
            spec.substr(pos, next == std::string::npos ? std::string::npos
                                                       : next - pos);
        // Trim surrounding whitespace.
        std::size_t b = clause.find_first_not_of(" \t\n\r");
        std::size_t e = clause.find_last_not_of(" \t\n\r");
        if (b == std::string::npos)
            throw FaultSpecError("empty clause in fault spec \"" + spec +
                                 "\"");
        parsed.push_back(parseClause(clause.substr(b, e - b + 1)));
        if (next == std::string::npos)
            break;
        pos = next + 1;
    }
    for (const auto &[site, clauseSpec] : parsed)
        faultArm(site, clauseSpec);
}

void
faultDisarmAll()
{
    FaultTable &t = table();
    std::lock_guard<std::mutex> lk(t.configMu);
    for (SiteState &s : t.sites) {
        if (s.armed.load(std::memory_order_relaxed))
            t.armedSites.fetch_sub(1, std::memory_order_relaxed);
        s.armed.store(false, std::memory_order_release);
        s.hits.store(0, std::memory_order_relaxed);
        s.fired.store(0, std::memory_order_relaxed);
    }
}

bool
faultsArmed()
{
    std::call_once(gEnvOnce, faultInitFromEnv);
    return table().armedSites.load(std::memory_order_relaxed) != 0;
}

void
faultCheck(FaultSite site, std::int64_t key)
{
    if (probe(site, key)) {
        SiteState &s = table().sites[static_cast<int>(site)];
        throw FaultInjectedError(site,
                                 s.hits.load(std::memory_order_relaxed));
    }
}

bool
faultShouldFire(FaultSite site, std::int64_t key)
{
    return probe(site, key);
}

FaultCounters
faultCounters()
{
    FaultTable &t = table();
    FaultCounters out;
    for (int i = 0; i < kNumFaultSites; ++i) {
        out.site[i].hits =
            t.sites[i].hits.load(std::memory_order_relaxed);
        out.site[i].fired =
            t.sites[i].fired.load(std::memory_order_relaxed);
        out.site[i].armed =
            t.sites[i].armed.load(std::memory_order_relaxed);
    }
    return out;
}

void
faultInitFromEnv()
{
    const char *env = std::getenv("CICERO_FAULTS");
    if (!env || !*env)
        return;
    try {
        faultArmSpec(env);
    } catch (const FaultSpecError &e) {
        // A typo'd operator override must not crash the process — warn
        // once and run unfaulted, mirroring CICERO_THREADS handling.
        std::fprintf(stderr,
                     "cicero: ignoring invalid CICERO_FAULTS=\"%s\": %s\n",
                     env, e.what());
        faultDisarmAll();
    }
}

} // namespace cicero
