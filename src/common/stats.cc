#include "common/stats.hh"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace cicero {

void
Summary::add(double v)
{
    ++_n;
    _sum += v;
    _sumSq += v * v;
    if (v < _min)
        _min = v;
    if (v > _max)
        _max = v;
}

double
Summary::stddev() const
{
    if (_n < 2)
        return 0.0;
    double m = mean();
    double var = _sumSq / _n - m * m;
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

Table::Table(std::vector<std::string> header) : _header(std::move(header))
{
}

Table &
Table::row()
{
    _rows.emplace_back();
    return *this;
}

Table &
Table::cell(const std::string &s)
{
    if (_rows.empty())
        row();
    _rows.back().push_back(s);
    return *this;
}

Table &
Table::cell(double v, int precision)
{
    return cell(formatDouble(v, precision));
}

Table &
Table::cell(std::uint64_t v)
{
    return cell(std::to_string(v));
}

Table &
Table::cell(int v)
{
    return cell(std::to_string(v));
}

std::string
Table::str() const
{
    std::vector<std::size_t> widths(_header.size());
    for (std::size_t c = 0; c < _header.size(); ++c)
        widths[c] = _header[c].size();
    for (const auto &r : _rows)
        for (std::size_t c = 0; c < r.size() && c < widths.size(); ++c)
            widths[c] = std::max(widths[c], r[c].size());

    auto emitRow = [&](const std::vector<std::string> &r,
                       std::ostringstream &os) {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            std::string v = c < r.size() ? r[c] : "";
            os << v;
            if (c + 1 < widths.size())
                os << std::string(widths[c] - v.size() + 2, ' ');
        }
        os << "\n";
    };

    std::ostringstream os;
    emitRow(_header, os);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    os << std::string(total, '-') << "\n";
    for (const auto &r : _rows)
        emitRow(r, os);
    return os.str();
}

void
Table::print() const
{
    std::fputs(str().c_str(), stdout);
}

std::string
formatDouble(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
formatBytes(double bytes)
{
    const char *suffix[] = {"B", "KB", "MB", "GB", "TB"};
    int s = 0;
    while (bytes >= 1024.0 && s < 4) {
        bytes /= 1024.0;
        ++s;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.1f %s", bytes, suffix[s]);
    return buf;
}

} // namespace cicero
