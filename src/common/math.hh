/**
 * @file
 * Small linear-algebra toolkit used throughout Cicero: 3-vectors,
 * 3x3 / 4x4 matrices, quaternions and rigid-body poses.
 *
 * The types are deliberately minimal (no expression templates, no SIMD)
 * so that the numerical behaviour is easy to reason about in tests.
 */

#ifndef CICERO_COMMON_MATH_HH
#define CICERO_COMMON_MATH_HH

#include <array>
#include <cmath>
#include <cstddef>
#include <iosfwd>

namespace cicero {

/** Tolerance used by approximate comparisons in this toolkit. */
constexpr float kEps = 1e-6f;

constexpr float kPi = 3.14159265358979323846f;

/** Convert degrees to radians. */
constexpr float
deg2rad(float deg)
{
    return deg * kPi / 180.0f;
}

/** Convert radians to degrees. */
constexpr float
rad2deg(float rad)
{
    return rad * 180.0f / kPi;
}

/** Clamp @p v to the inclusive range [@p lo, @p hi]. */
template <typename T>
constexpr T
clamp(T v, T lo, T hi)
{
    return v < lo ? lo : (v > hi ? hi : v);
}

/** Linear interpolation between @p a and @p b with weight @p t. */
template <typename T>
constexpr T
lerp(const T &a, const T &b, float t)
{
    return a * (1.0f - t) + b * t;
}

/**
 * A 3-component float vector used for positions, directions and RGB
 * radiance values.
 */
struct Vec3
{
    float x = 0.0f;
    float y = 0.0f;
    float z = 0.0f;

    constexpr Vec3() = default;
    constexpr Vec3(float x_, float y_, float z_) : x(x_), y(y_), z(z_) {}
    constexpr explicit Vec3(float s) : x(s), y(s), z(s) {}

    constexpr float operator[](std::size_t i) const
    {
        return i == 0 ? x : (i == 1 ? y : z);
    }

    float &operator[](std::size_t i)
    {
        return i == 0 ? x : (i == 1 ? y : z);
    }

    constexpr Vec3 operator+(const Vec3 &o) const
    {
        return {x + o.x, y + o.y, z + o.z};
    }
    constexpr Vec3 operator-(const Vec3 &o) const
    {
        return {x - o.x, y - o.y, z - o.z};
    }
    constexpr Vec3 operator*(float s) const { return {x * s, y * s, z * s}; }
    constexpr Vec3 operator/(float s) const { return {x / s, y / s, z / s}; }
    constexpr Vec3 operator-() const { return {-x, -y, -z}; }

    /** Component-wise product (Hadamard). */
    constexpr Vec3 operator*(const Vec3 &o) const
    {
        return {x * o.x, y * o.y, z * o.z};
    }

    Vec3 &operator+=(const Vec3 &o)
    {
        x += o.x; y += o.y; z += o.z;
        return *this;
    }
    Vec3 &operator-=(const Vec3 &o)
    {
        x -= o.x; y -= o.y; z -= o.z;
        return *this;
    }
    Vec3 &operator*=(float s)
    {
        x *= s; y *= s; z *= s;
        return *this;
    }

    constexpr bool operator==(const Vec3 &o) const
    {
        return x == o.x && y == o.y && z == o.z;
    }

    /** Dot product. */
    constexpr float dot(const Vec3 &o) const
    {
        return x * o.x + y * o.y + z * o.z;
    }

    /** Cross product. */
    constexpr Vec3 cross(const Vec3 &o) const
    {
        return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
    }

    float norm() const { return std::sqrt(dot(*this)); }
    constexpr float squaredNorm() const { return dot(*this); }

    /** Return a unit-length copy; returns the zero vector unchanged. */
    Vec3
    normalized() const
    {
        float n = norm();
        return n > kEps ? (*this) / n : *this;
    }

    /** Component-wise minimum. */
    static constexpr Vec3
    min(const Vec3 &a, const Vec3 &b)
    {
        return {a.x < b.x ? a.x : b.x, a.y < b.y ? a.y : b.y,
                a.z < b.z ? a.z : b.z};
    }

    /** Component-wise maximum. */
    static constexpr Vec3
    max(const Vec3 &a, const Vec3 &b)
    {
        return {a.x > b.x ? a.x : b.x, a.y > b.y ? a.y : b.y,
                a.z > b.z ? a.z : b.z};
    }

    float maxComponent() const { return std::fmax(x, std::fmax(y, z)); }
    float minComponent() const { return std::fmin(x, std::fmin(y, z)); }
};

constexpr Vec3
operator*(float s, const Vec3 &v)
{
    return v * s;
}

std::ostream &operator<<(std::ostream &os, const Vec3 &v);

/** Squared Euclidean distance between two points. */
inline float
distance(const Vec3 &a, const Vec3 &b)
{
    return (a - b).norm();
}

/** Angle in radians between two (not necessarily unit) vectors. */
float angleBetween(const Vec3 &a, const Vec3 &b);

/**
 * Row-major 3x3 float matrix; used for rotations and camera intrinsics.
 */
struct Mat3
{
    std::array<float, 9> m{};

    constexpr float operator()(std::size_t r, std::size_t c) const
    {
        return m[r * 3 + c];
    }
    float &operator()(std::size_t r, std::size_t c) { return m[r * 3 + c]; }

    static Mat3 identity();
    static Mat3 zero();

    /** Rotation of @p angle radians about unit axis @p axis (Rodrigues). */
    static Mat3 rotation(const Vec3 &axis, float angle);

    /** Rotation about the X axis. */
    static Mat3 rotationX(float angle);
    /** Rotation about the Y axis. */
    static Mat3 rotationY(float angle);
    /** Rotation about the Z axis. */
    static Mat3 rotationZ(float angle);

    Mat3 operator*(const Mat3 &o) const;
    Vec3 operator*(const Vec3 &v) const;
    Mat3 operator*(float s) const;
    Mat3 operator+(const Mat3 &o) const;

    Mat3 transposed() const;
    float determinant() const;
    /** Matrix inverse; asserts the determinant is nonzero. */
    Mat3 inverse() const;
};

/**
 * Row-major 4x4 float matrix; used for homogeneous rigid transforms and
 * the projection matrices of Eqs. (1) and (3) in the paper.
 */
struct Mat4
{
    std::array<float, 16> m{};

    constexpr float operator()(std::size_t r, std::size_t c) const
    {
        return m[r * 4 + c];
    }
    float &operator()(std::size_t r, std::size_t c) { return m[r * 4 + c]; }

    static Mat4 identity();

    Mat4 operator*(const Mat4 &o) const;

    /** Transform a point (w = 1), dividing by the resulting w. */
    Vec3 transformPoint(const Vec3 &p) const;
    /** Transform a direction (w = 0). */
    Vec3 transformDir(const Vec3 &d) const;

    Mat4 transposed() const;

    /** Build a rigid transform from a rotation and a translation. */
    static Mat4 fromRigid(const Mat3 &rot, const Vec3 &trans);

    /** Invert assuming the matrix is a rigid transform (R | t). */
    Mat4 rigidInverse() const;
};

/**
 * Unit quaternion for interpolating camera orientations during pose
 * extrapolation (Sec. III-C of the paper).
 */
struct Quat
{
    float w = 1.0f;
    float x = 0.0f;
    float y = 0.0f;
    float z = 0.0f;

    static Quat identity() { return {}; }

    /** Build from a rotation matrix (assumed orthonormal). */
    static Quat fromMatrix(const Mat3 &m);

    /** Build from axis-angle. */
    static Quat fromAxisAngle(const Vec3 &axis, float angle);

    Mat3 toMatrix() const;

    Quat operator*(const Quat &o) const;

    Quat conjugate() const { return {w, -x, -y, -z}; }

    float norm() const { return std::sqrt(w * w + x * x + y * y + z * z); }

    Quat normalized() const;

    /**
     * Spherical linear interpolation.
     *
     * @param a Start orientation (t = 0).
     * @param b End orientation (t = 1).
     * @param t Interpolation parameter; values outside [0, 1] extrapolate.
     */
    static Quat slerp(const Quat &a, const Quat &b, float t);
};

/**
 * A rigid-body camera pose: camera-to-world rotation and camera position.
 *
 * The convention matches the paper's rendering pipeline: the camera looks
 * down its local -Z axis, +X is right, +Y is up.
 */
struct Pose
{
    Mat3 rot = Mat3::identity(); //!< camera-to-world rotation
    Vec3 pos;                    //!< camera position in world space

    /** Camera-to-world homogeneous matrix. */
    Mat4 toMatrix() const { return Mat4::fromRigid(rot, pos); }

    /** World-to-camera transform of a world-space point. */
    Vec3
    worldToCamera(const Vec3 &p) const
    {
        return rot.transposed() * (p - pos);
    }

    /** Camera-to-world transform of a camera-space point. */
    Vec3 cameraToWorld(const Vec3 &p) const { return rot * p + pos; }

    /** Viewing direction (world space) of the camera's optical axis. */
    Vec3 forward() const { return rot * Vec3{0.0f, 0.0f, -1.0f}; }

    /**
     * Build a pose located at @p eye looking at @p at with up-vector @p up.
     */
    static Pose lookAt(const Vec3 &eye, const Vec3 &at, const Vec3 &up);

    /**
     * Relative transform T_{ref->tgt} of Eq. (2): maps points expressed in
     * this (reference) camera's frame into @p tgt camera's frame.
     */
    Mat4 transformTo(const Pose &tgt) const;
};

} // namespace cicero

#endif // CICERO_COMMON_MATH_HH
