/**
 * @file
 * Deterministic, seeded fault-injection framework.
 *
 * Production hardening is only as good as its tests, and failure paths
 * are untestable unless failures can be provoked *reproducibly*. This
 * framework names the injection sites the robustness contract covers —
 * task execution, MLP decode, trace read/write/flush, session
 * admission, per-session frame render/deadline — and arms them with
 * per-site trigger windows expressed in *hit counts*, never wall
 * clocks: "fire on the 3rd hit of mlp_decode, twice" behaves
 * identically on every run and at every thread count (under
 * concurrency, whichever thread lands the Nth hit fires — the total
 * fired count is still exact).
 *
 * Arming:
 *  - programmatically: faultArm(site, spec) / faultArmSpec("...") —
 *    what the test suites use;
 *  - externally: the CICERO_FAULTS environment variable or the CLI
 *    tools' --faults flag, both carrying the same spec grammar:
 *
 *        spec    := site-arm (';' site-arm)*
 *        site-arm:= site-name (':' param)*
 *        param   := 'after=' N    skip the first N hits (default 0)
 *                 | 'count=' N    then fire N times (default: forever)
 *                 | 'key=' K      only hits tagged with key K count
 *
 *    e.g. CICERO_FAULTS="trace_write;frame_render:key=2:count=4"
 *
 * An armed site *throws* FaultInjectedError from faultCheck() — the
 * error then travels the exact path a real failure would (scheduler
 * exception capture, serve retry/quarantine, CLI error mapping).
 * Sites that degrade rather than fail (frame_deadline) consult
 * faultShouldFire() instead, which fires without throwing.
 *
 * The disarmed fast path is one relaxed atomic load; the hot kernels
 * keep their cost.
 */

#ifndef CICERO_COMMON_FAULT_HH
#define CICERO_COMMON_FAULT_HH

#include <cstdint>
#include <stdexcept>
#include <string>

namespace cicero {

/** Named fault-injection sites (keep faultSiteName in sync). */
enum class FaultSite : int
{
    TaskExec = 0,    //!< scheduler task body (common/parallel.cc)
    MlpDecode,       //!< batched MLP decode entry (nerf/decoder.cc)
    TraceRead,       //!< .ctrace container parse (memory/tracefile.cc)
    TraceWrite,      //!< .ctrace container finalize/write
    TraceFlush,      //!< TraceSink::onFlush persistence path
    SessionAdmit,    //!< RenderService admission (serve/)
    FrameRender,     //!< serve frame task body (keyed by session id)
    FrameDeadline,   //!< serve frame deadline check (non-throwing)
    Count_,          //!< sentinel — not a site
};

constexpr int kNumFaultSites = static_cast<int>(FaultSite::Count_);

/** Spec name of @p site ("task_exec", "mlp_decode", ...). */
const char *faultSiteName(FaultSite site);

/** Parse a site name; returns false on an unknown name. */
bool faultSiteFromName(const std::string &name, FaultSite &out);

/** Matches any key (the default for un-keyed arms). */
constexpr std::int64_t kFaultAnyKey = INT64_MIN;

/** One site's trigger window. */
struct FaultSpec
{
    std::uint64_t after = 0; //!< skip this many matching hits first
    std::uint64_t count =
        UINT64_MAX;          //!< then fire on this many hits
    std::int64_t key = kFaultAnyKey; //!< only hits with this key match
};

/**
 * The typed error an armed site throws. Deriving from
 * std::runtime_error keeps every existing catch site working; carrying
 * the site lets handlers (and tests) tell injected faults apart.
 */
class FaultInjectedError : public std::runtime_error
{
  public:
    FaultInjectedError(FaultSite site, std::uint64_t hit);

    FaultSite site() const { return _site; }

    /** 1-based index of the matching hit that fired. */
    std::uint64_t hit() const { return _hit; }

  private:
    FaultSite _site;
    std::uint64_t _hit;
};

/** Spec-string syntax error (typed; derives runtime_error). */
class FaultSpecError : public std::runtime_error
{
  public:
    explicit FaultSpecError(const std::string &what)
        : std::runtime_error("fault spec: " + what)
    {
    }
};

/** Arm @p site with @p spec (replaces any previous arm of the site). */
void faultArm(FaultSite site, const FaultSpec &spec = {});

/**
 * Arm sites from a spec string (grammar in the file header).
 * @throws FaultSpecError on malformed text. An empty string is a
 *         no-op.
 */
void faultArmSpec(const std::string &spec);

/** Disarm every site and zero the hit/fired counters. */
void faultDisarmAll();

/** True when at least one site is armed (fast: one relaxed load). */
bool faultsArmed();

/**
 * Record a hit on @p site (tagged @p key) and throw FaultInjectedError
 * when the site's armed window covers it. The no-faults fast path is a
 * single relaxed atomic load.
 */
void faultCheck(FaultSite site, std::int64_t key = kFaultAnyKey);

/**
 * As faultCheck(), but returns true instead of throwing — for sites
 * whose contract is degradation, not failure (frame_deadline).
 */
bool faultShouldFire(FaultSite site, std::int64_t key = kFaultAnyKey);

/** Per-site observability counters. */
struct FaultSiteCounters
{
    std::uint64_t hits = 0;  //!< matching faultCheck/ShouldFire calls
    std::uint64_t fired = 0; //!< hits inside the armed window
    bool armed = false;
};

/** All sites' counters (index by static_cast<int>(site)). */
struct FaultCounters
{
    FaultSiteCounters site[kNumFaultSites];

    std::uint64_t
    totalFired() const
    {
        std::uint64_t n = 0;
        for (const auto &s : site)
            n += s.fired;
        return n;
    }
};

FaultCounters faultCounters();

/**
 * Arm from the CICERO_FAULTS environment variable. Called lazily by
 * the first faultsArmed()/faultCheck(); safe (and idempotent) to call
 * explicitly. A malformed variable is reported once on stderr and
 * ignored — an operator typo must not change program behavior beyond
 * the warning.
 */
void faultInitFromEnv();

/**
 * RAII guard for tests: disarms all sites (and zeroes counters) on
 * scope exit, so an armed test cannot leak faults into the next.
 */
struct FaultScope
{
    FaultScope() = default;
    explicit FaultScope(const std::string &spec) { faultArmSpec(spec); }
    ~FaultScope() { faultDisarmAll(); }
    FaultScope(const FaultScope &) = delete;
    FaultScope &operator=(const FaultScope &) = delete;
};

} // namespace cicero

#endif // CICERO_COMMON_FAULT_HH
