#include "common/parallel.hh"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace cicero {

namespace {

thread_local bool tInsideWorker = false;

/** One chunked loop in flight. */
struct Job
{
    std::int64_t begin = 0;
    std::int64_t grain = 1;
    std::int64_t end = 0;
    std::size_t chunkCount = 0;
    const std::function<void(std::size_t, std::int64_t, std::int64_t)>
        *fn = nullptr;

    std::atomic<std::size_t> nextChunk{0};
    std::atomic<std::size_t> pending{0};
    std::atomic<bool> failed{false};

    std::mutex doneMutex;
    std::condition_variable doneCv;
    std::exception_ptr error; //!< guarded by doneMutex
};

/**
 * The global pool. Workers sleep until a job generation is published;
 * the submitting thread participates in chunk execution, so a pool of
 * N threads runs N-1 workers.
 */
class Pool
{
  public:
    ~Pool() { shutdown(); }

    int
    threadCount()
    {
        std::lock_guard<std::mutex> lk(_configMutex);
        ensureStartedLocked();
        return _threads;
    }

    void
    configure(int n)
    {
        std::lock_guard<std::mutex> lk(_configMutex);
        stopWorkersLocked();
        _threads = n > 0 ? n : autoThreadCount();
        startWorkersLocked();
    }

    void
    run(std::int64_t begin, std::int64_t end, std::int64_t grain,
        const std::function<void(std::size_t, std::int64_t, std::int64_t)>
            &fn)
    {
        std::int64_t n = end - begin;
        std::int64_t g = parallelResolveGrain(n, grain);
        std::size_t chunks =
            static_cast<std::size_t>((n + g - 1) / g);

        // Serial fallback: one chunk, a one-thread pool, or a nested
        // call from inside a worker (running inline avoids deadlock and
        // oversubscription).
        if (chunks <= 1 || tInsideWorker || threadCount() <= 1) {
            for (std::size_t c = 0; c < chunks; ++c) {
                std::int64_t b = begin + static_cast<std::int64_t>(c) * g;
                std::int64_t e = std::min(b + g, end);
                fn(c, b, e);
            }
            return;
        }

        // One loop at a time: concurrent top-level submitters queue up.
        std::lock_guard<std::mutex> submit(_submitMutex);

        // shared_ptr keeps the job alive for workers that observe it
        // after the last chunk drained (their late nextChunk fetch).
        auto job = std::make_shared<Job>();
        job->begin = begin;
        job->end = end;
        job->grain = g;
        job->chunkCount = chunks;
        job->fn = &fn;
        job->pending.store(chunks, std::memory_order_relaxed);

        {
            std::lock_guard<std::mutex> lk(_jobMutex);
            _job = job;
            ++_generation;
        }
        _jobCv.notify_all();

        // The caller works too (flagged as a worker so nested loops
        // from these chunks run inline).
        tInsideWorker = true;
        drain(*job);
        tInsideWorker = false;

        {
            std::unique_lock<std::mutex> lk(job->doneMutex);
            job->doneCv.wait(lk, [&job] {
                return job->pending.load(std::memory_order_acquire) == 0;
            });
        }
        {
            std::lock_guard<std::mutex> lk(_jobMutex);
            _job.reset();
        }
        if (job->error)
            std::rethrow_exception(job->error);
    }

  private:
    static int
    autoThreadCount()
    {
        if (const char *env = std::getenv("CICERO_THREADS")) {
            int v = parallelParseThreadSpec(env);
            if (v > 0)
                return v;
            // Warn once: a typo'd override silently running at a
            // different width is exactly the surprise the strict
            // parser exists to prevent.
            static std::atomic<bool> warned{false};
            if (!warned.exchange(true))
                std::fprintf(stderr,
                             "cicero: ignoring invalid CICERO_THREADS="
                             "\"%s\" (want an integer in [1, %d]); "
                             "falling back to hardware concurrency\n",
                             env, kMaxParallelThreads);
        }
        unsigned hw = std::thread::hardware_concurrency();
        return hw > 0 ? static_cast<int>(hw) : 1;
    }

    void
    ensureStartedLocked()
    {
        if (_threads == 0) {
            _threads = autoThreadCount();
            startWorkersLocked();
        }
    }

    void
    startWorkersLocked()
    {
        _stop = false;
        for (int i = 0; i + 1 < _threads; ++i)
            _workers.emplace_back([this] { workerLoop(); });
    }

    void
    stopWorkersLocked()
    {
        {
            std::lock_guard<std::mutex> lk(_jobMutex);
            _stop = true;
            ++_generation;
        }
        _jobCv.notify_all();
        for (std::thread &t : _workers)
            t.join();
        _workers.clear();
    }

    void
    shutdown()
    {
        std::lock_guard<std::mutex> lk(_configMutex);
        stopWorkersLocked();
        _threads = 1;
    }

    void
    workerLoop()
    {
        tInsideWorker = true;
        std::uint64_t seen = 0;
        for (;;) {
            std::shared_ptr<Job> job;
            {
                std::unique_lock<std::mutex> lk(_jobMutex);
                _jobCv.wait(lk, [this, seen] {
                    return _stop || _generation != seen;
                });
                if (_stop)
                    return;
                seen = _generation;
                job = _job;
            }
            if (job)
                drain(*job);
        }
    }

    /** Execute chunks of @p job until none remain. */
    void
    drain(Job &job)
    {
        for (;;) {
            std::size_t c =
                job.nextChunk.fetch_add(1, std::memory_order_relaxed);
            if (c >= job.chunkCount)
                return;
            if (!job.failed.load(std::memory_order_acquire)) {
                try {
                    std::int64_t b =
                        job.begin +
                        static_cast<std::int64_t>(c) * job.grain;
                    std::int64_t e = std::min(b + job.grain, job.end);
                    (*job.fn)(c, b, e);
                } catch (...) {
                    std::lock_guard<std::mutex> lk(job.doneMutex);
                    if (!job.error)
                        job.error = std::current_exception();
                    job.failed.store(true, std::memory_order_release);
                }
            }
            if (job.pending.fetch_sub(1, std::memory_order_acq_rel) ==
                1) {
                std::lock_guard<std::mutex> lk(job.doneMutex);
                job.doneCv.notify_all();
            }
        }
    }

    std::mutex _configMutex;  //!< guards _threads/_workers lifecycle
    std::mutex _submitMutex;  //!< serializes top-level loops
    std::mutex _jobMutex;     //!< guards _job/_generation/_stop
    std::condition_variable _jobCv;
    std::vector<std::thread> _workers;
    std::shared_ptr<Job> _job;
    std::uint64_t _generation = 0;
    bool _stop = false;
    int _threads = 0; //!< 0 = not yet initialized
};

Pool &
pool()
{
    static Pool p;
    return p;
}

} // namespace

int
parallelParseThreadSpec(const char *text)
{
    if (!text)
        return 0;
    errno = 0;
    char *end = nullptr;
    long v = std::strtol(text, &end, 10);
    if (end == text)
        return 0; // empty or non-numeric
    while (*end == ' ' || *end == '\t' || *end == '\n' || *end == '\r')
        ++end;
    if (*end != '\0')
        return 0; // trailing garbage ("8x", "4,2", ...)
    if (errno == ERANGE || v < 1 || v > kMaxParallelThreads)
        return 0; // zero, negative, or absurd
    return static_cast<int>(v);
}

int
parallelThreadCount()
{
    return pool().threadCount();
}

void
setParallelThreadCount(int n)
{
    pool().configure(n);
}

std::int64_t
parallelResolveGrain(std::int64_t n, std::int64_t grain)
{
    if (grain > 0)
        return grain;
    if (n <= 0)
        return 1;
    // Several chunks per thread so uneven per-item cost load-balances.
    std::int64_t threads = parallelThreadCount();
    std::int64_t target = threads * 8;
    return std::max<std::int64_t>(1, (n + target - 1) / target);
}

std::size_t
parallelChunkCount(std::int64_t begin, std::int64_t end,
                   std::int64_t grain)
{
    std::int64_t n = end - begin;
    if (n <= 0)
        return 0;
    std::int64_t g = parallelResolveGrain(n, grain);
    return static_cast<std::size_t>((n + g - 1) / g);
}

void
parallelForChunks(
    std::int64_t begin, std::int64_t end, std::int64_t grain,
    const std::function<void(std::size_t, std::int64_t, std::int64_t)> &fn)
{
    if (end <= begin)
        return;
    pool().run(begin, end, grain, fn);
}

void
parallelFor(std::int64_t begin, std::int64_t end, std::int64_t grain,
            const std::function<void(std::int64_t, std::int64_t)> &fn)
{
    parallelForChunks(begin, end, grain,
                      [&fn](std::size_t, std::int64_t b, std::int64_t e) {
                          fn(b, e);
                      });
}

void
parallelForOuter(std::int64_t n,
                 const std::function<void(std::int64_t)> &fn)
{
    if (n <= 0)
        return;
    if (n >= parallelThreadCount()) {
        parallelFor(0, n, 1, [&fn](std::int64_t b, std::int64_t e) {
            for (std::int64_t i = b; i < e; ++i)
                fn(i);
        });
    } else {
        for (std::int64_t i = 0; i < n; ++i)
            fn(i);
    }
}

bool
insideParallelWorker()
{
    return tInsideWorker;
}

} // namespace cicero
