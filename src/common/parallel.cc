#include "common/parallel.hh"

#include "common/fault.hh"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

namespace cicero {

namespace detail {

/**
 * Completion tracking shared by one loop or one TaskGroup: how many
 * tasks are outstanding, whether one failed (remaining tasks are then
 * skipped best-effort) or was cancelled (remaining tasks are drained
 * without running), and the first captured exception.
 */
struct ParallelTaskState
{
    std::atomic<std::size_t> pending{0};
    std::atomic<bool> failed{false};
    std::atomic<bool> cancelled{false};

    std::mutex doneMutex;
    std::condition_variable doneCv;
    std::exception_ptr error;  //!< guarded by doneMutex
    std::uint64_t epoch = 0;   //!< bumped per submission; guarded by doneMutex
};

/**
 * One task submitted through a TaskGroup, possibly dormant behind
 * dependencies. `waits` counts unresolved dependencies plus one
 * submission latch (held by runAfter() while it registers with each
 * dependency, so a dep completing mid-registration cannot fire the
 * task early); whoever drops `waits` to zero enqueues the task.
 * Completion — including the skipped-by-failure case — sets `done`
 * under `m` and fires the collected successors, so a failed graph
 * always drains.
 */
struct DepTaskNode
{
    std::shared_ptr<ParallelTaskState> state;
    std::function<void()> fn;

    std::mutex m;
    bool done = false;                                    //!< guarded by m
    std::vector<std::shared_ptr<DepTaskNode>> successors; //!< guarded by m
    std::atomic<std::size_t> waits{0};

    //! Set when submitted with >=1 live dependency; submitTime then
    //! feeds the dependency-stall counter once the task becomes ready.
    bool stalled = false;
    std::chrono::steady_clock::time_point submitTime;
};

} // namespace detail

namespace {

using detail::DepTaskNode;
using detail::ParallelTaskState;

thread_local bool tInsideWorker = false;

/**
 * Process-global scheduler counters. Plain atomics bumped with relaxed
 * ordering — they are statistics, not synchronization.
 */
struct CounterBlock
{
    std::atomic<std::uint64_t> steals{0};
    std::atomic<std::uint64_t> idleWakeups{0};
    std::atomic<std::uint64_t> idleNanos{0};
    std::atomic<std::uint64_t> overflowMigrations{0};
    std::atomic<std::uint64_t> tasksExecuted{0};
    std::atomic<std::uint64_t> depTasksSubmitted{0};
    std::atomic<std::uint64_t> depStallNanos{0};
    std::atomic<std::uint64_t> tasksDrained{0};
    std::atomic<std::uint64_t> groupsCancelled{0};
    std::atomic<std::uint64_t> kernelBatchPasses{0};
    std::atomic<std::uint64_t> kernelBatchItems{0};
};

CounterBlock &
counters()
{
    static CounterBlock c;
    return c;
}

inline void
bump(std::atomic<std::uint64_t> &c, std::uint64_t n = 1)
{
    c.fetch_add(n, std::memory_order_relaxed);
}

inline std::uint64_t
nanosSince(std::chrono::steady_clock::time_point t0)
{
    auto dt = std::chrono::steady_clock::now() - t0;
    auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count();
    return ns > 0 ? static_cast<std::uint64_t>(ns) : 0;
}

/** One schedulable unit: a loop chunk or a TaskGroup function. */
struct Task
{
    std::shared_ptr<ParallelTaskState> state;
    std::function<void()> fn;
    std::shared_ptr<DepTaskNode> node; //!< null for loop chunks
};

/** Enqueue a dependency node whose `waits` just reached zero. */
void enqueueReady(std::shared_ptr<DepTaskNode> node);

/**
 * A per-thread work deque. The owning thread pushes and pops at the
 * back (newest-first, so nested submissions drain help-first); thieves
 * take from the front (oldest-first). A mutex per lane keeps the
 * implementation obviously correct — tasks are coarse (a chunk spans
 * many items), so the lock is cold.
 */
struct Lane
{
    std::mutex m;
    std::deque<Task> q;
};

/**
 * Global registry of lanes thieves may scan, plus the sleep/wake
 * channel for idle workers. Held via shared_ptr by the pool, every
 * worker, and every submitting thread's thread-local handle, so static
 * destruction order cannot leave a dangling reference.
 */
struct LaneRegistry
{
    std::mutex m;
    std::vector<std::shared_ptr<Lane>> lanes; //!< guarded by m
    std::shared_ptr<Lane> overflow;           //!< never unregistered

    std::condition_variable cv;
    std::atomic<std::uint64_t> version{0}; //!< bumped on every push
    bool stop = false;                     //!< guarded by m

    LaneRegistry() : overflow(std::make_shared<Lane>())
    {
        lanes.push_back(overflow);
    }
};

std::shared_ptr<LaneRegistry>
laneRegistry()
{
    static std::shared_ptr<LaneRegistry> reg =
        std::make_shared<LaneRegistry>();
    return reg;
}

/**
 * Registers the calling thread's lane for the life of the thread.
 * Should a thread exit with queued tasks (a TaskGroup submitter that
 * never waited), the leftovers migrate to the overflow lane so they
 * are still stolen and the group's waiter cannot hang.
 */
struct LaneHandle
{
    std::shared_ptr<LaneRegistry> reg = laneRegistry();
    std::shared_ptr<Lane> lane = std::make_shared<Lane>();

    LaneHandle()
    {
        std::lock_guard<std::mutex> lk(reg->m);
        reg->lanes.push_back(lane);
    }

    ~LaneHandle()
    {
        std::deque<Task> leftovers;
        {
            std::lock_guard<std::mutex> lk(lane->m);
            leftovers.swap(lane->q);
        }
        {
            std::lock_guard<std::mutex> lk(reg->m);
            auto &ls = reg->lanes;
            ls.erase(std::remove(ls.begin(), ls.end(), lane), ls.end());
            if (!leftovers.empty()) {
                bump(counters().overflowMigrations, leftovers.size());
                std::lock_guard<std::mutex> olk(reg->overflow->m);
                for (Task &t : leftovers)
                    reg->overflow->q.push_back(std::move(t));
            }
        }
        reg->version.fetch_add(1);
        reg->cv.notify_all();
    }
};

LaneHandle &
myLane()
{
    static thread_local LaneHandle handle;
    return handle;
}

/**
 * Mark a dependency node complete and fire its successors. Runs even
 * when the node's fn was skipped by a failed group, so dormant
 * dependents never leak and a failed graph drains.
 */
void
finishNode(std::shared_ptr<DepTaskNode> node)
{
    std::vector<std::shared_ptr<DepTaskNode>> succs;
    {
        std::lock_guard<std::mutex> lk(node->m);
        node->done = true;
        succs.swap(node->successors);
    }
    for (std::shared_ptr<DepTaskNode> &s : succs)
        if (s->waits.fetch_sub(1, std::memory_order_acq_rel) == 1)
            enqueueReady(std::move(s));
}

/** Execute one task, capturing its error into the shared state. */
void
runTask(Task &task)
{
    ParallelTaskState &state = *task.state;
    bool wasInside = tInsideWorker;
    tInsideWorker = true;
    if (state.failed.load(std::memory_order_acquire) ||
        state.cancelled.load(std::memory_order_acquire)) {
        // Drain without running: the task still counts as complete and
        // fires its dependents below, so a failed/cancelled graph never
        // leaks dormant tasks or deadlocks its waiter.
        bump(counters().tasksDrained);
    } else {
        try {
            faultCheck(FaultSite::TaskExec);
            task.fn();
        } catch (...) {
            std::lock_guard<std::mutex> lk(state.doneMutex);
            if (!state.error)
                state.error = std::current_exception();
            state.failed.store(true, std::memory_order_release);
        }
    }
    tInsideWorker = wasInside;
    bump(counters().tasksExecuted);
    if (task.node)
        finishNode(std::move(task.node));
    if (state.pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lk(state.doneMutex);
        state.doneCv.notify_all();
    }
    // Drop the captures only after the decrement is published: a
    // capture may hold the last reference to the object that owns this
    // task's own TaskGroup, and the group destructor re-enters
    // helpUntilDone — it must observe pending == 0 rather than wait
    // forever on the very task that is destroying it.
    task.fn = nullptr;
}

bool
popLocal(Lane &lane, Task &out)
{
    std::lock_guard<std::mutex> lk(lane.m);
    if (lane.q.empty())
        return false;
    out = std::move(lane.q.back());
    lane.q.pop_back();
    return true;
}

std::vector<std::shared_ptr<Lane>>
snapshotLanes(LaneRegistry &reg)
{
    std::lock_guard<std::mutex> lk(reg.m);
    return reg.lanes;
}

/** Steal the oldest task of any lane but @p own. */
bool
stealAny(LaneRegistry &reg, const Lane *own, Task &out)
{
    static thread_local std::size_t rr = 0;
    std::vector<std::shared_ptr<Lane>> lanes = snapshotLanes(reg);
    for (std::size_t i = 0; i < lanes.size(); ++i) {
        Lane &lane = *lanes[(rr + i) % lanes.size()];
        if (&lane == own)
            continue;
        std::lock_guard<std::mutex> lk(lane.m);
        if (lane.q.empty())
            continue;
        out = std::move(lane.q.front());
        lane.q.pop_front();
        ++rr;
        bump(counters().steals);
        return true;
    }
    return false;
}

/**
 * Steal the oldest task *belonging to @p state* from any lane. Used by
 * waiters: tasks of the awaited group may sit in other threads' lanes
 * (pushed there by other submitters), and a waiter that only popped
 * locally could sleep while no pool worker is free to steal them.
 */
bool
stealForState(LaneRegistry &reg, const Lane *own,
              const ParallelTaskState *state, Task &out)
{
    std::vector<std::shared_ptr<Lane>> lanes = snapshotLanes(reg);
    for (const std::shared_ptr<Lane> &laneP : lanes) {
        Lane &lane = *laneP;
        std::lock_guard<std::mutex> lk(lane.m);
        for (auto it = lane.q.begin(); it != lane.q.end(); ++it) {
            if (it->state.get() != state)
                continue;
            out = std::move(*it);
            lane.q.erase(it);
            if (&lane != own)
                bump(counters().steals);
            return true;
        }
    }
    return false;
}

/**
 * Publish @p tasks on the calling thread's lane and wake sleepers.
 * pending must have been raised before the push: a thief may run a
 * task the instant it is visible.
 */
void
pushTasks(LaneHandle &h, std::vector<Task> &&tasks,
          ParallelTaskState &state)
{
    {
        std::lock_guard<std::mutex> lk(h.lane->m);
        for (Task &t : tasks)
            h.lane->q.push_back(std::move(t));
    }
    {
        std::lock_guard<std::mutex> lk(state.doneMutex);
        ++state.epoch;
    }
    h.reg->version.fetch_add(1);
    h.reg->cv.notify_all();
    state.doneCv.notify_all();
}

/**
 * Help-first drain: execute local tasks (newest-first — the just-
 * pushed loop's chunks), then tasks of @p state wherever they queue,
 * and finally sleep until the state's stragglers (running on other
 * threads) complete or new same-state work is submitted.
 */
void
helpUntilDone(LaneHandle &h, ParallelTaskState &state)
{
    for (;;) {
        if (state.pending.load(std::memory_order_acquire) == 0)
            return;
        std::uint64_t epoch0;
        {
            std::lock_guard<std::mutex> lk(state.doneMutex);
            epoch0 = state.epoch;
        }
        Task task;
        if (popLocal(*h.lane, task) ||
            stealForState(*h.reg, h.lane.get(), &state, task)) {
            runTask(task);
            continue;
        }
        auto t0 = std::chrono::steady_clock::now();
        {
            std::unique_lock<std::mutex> lk(state.doneMutex);
            state.doneCv.wait(lk, [&state, epoch0] {
                return state.pending.load(std::memory_order_acquire) ==
                           0 ||
                       state.epoch != epoch0;
            });
        }
        bump(counters().idleWakeups);
        bump(counters().idleNanos, nanosSince(t0));
    }
}

/**
 * The global scheduler: owns the worker threads. Workers execute any
 * task from any lane; submitting threads (external callers and
 * workers issuing nested loops alike) push to their own lane and
 * drain help-first. There is no per-loop submit lock — concurrent
 * top-level submitters run on the pool simultaneously.
 */
class Pool
{
  public:
    ~Pool()
    {
        std::lock_guard<std::mutex> lk(_configMutex);
        stopWorkersLocked();
        _threads.store(1, std::memory_order_relaxed);
    }

    int
    threadCount()
    {
        int n = _threads.load(std::memory_order_acquire);
        if (n != 0)
            return n;
        std::lock_guard<std::mutex> lk(_configMutex);
        ensureStartedLocked();
        return _threads.load(std::memory_order_relaxed);
    }

    void
    configure(int n)
    {
        std::lock_guard<std::mutex> lk(_configMutex);
        stopWorkersLocked();
        _threads.store(n > 0 ? n : autoThreadCount(),
                       std::memory_order_release);
        startWorkersLocked();
    }

    void
    run(std::int64_t begin, std::int64_t end, std::int64_t grain,
        const std::function<void(std::size_t, std::int64_t, std::int64_t)>
            &fn)
    {
        std::int64_t n = end - begin;
        std::int64_t g = parallelResolveGrain(n, grain);
        std::size_t chunks = static_cast<std::size_t>((n + g - 1) / g);

        // Serial fallback: one chunk or a one-thread pool. (A nested
        // call no longer runs inline — its chunks are scheduled and
        // stolen like any other work.)
        if (chunks <= 1 || threadCount() <= 1) {
            for (std::size_t c = 0; c < chunks; ++c) {
                std::int64_t b = begin + static_cast<std::int64_t>(c) * g;
                std::int64_t e = std::min(b + g, end);
                fn(c, b, e);
            }
            return;
        }

        auto state = std::make_shared<ParallelTaskState>();
        state->pending.store(chunks, std::memory_order_relaxed);

        // One task per chunk. The decomposition is pure arithmetic on
        // (begin, end, g) — scheduling decides only who runs a chunk.
        std::vector<Task> tasks;
        tasks.reserve(chunks);
        for (std::size_t c = 0; c < chunks; ++c) {
            tasks.push_back(Task{
                state, [&fn, begin, end, g, c] {
                    std::int64_t b =
                        begin + static_cast<std::int64_t>(c) * g;
                    std::int64_t e = std::min(b + g, end);
                    fn(c, b, e);
                }});
        }

        LaneHandle &h = myLane();
        pushTasks(h, std::move(tasks), *state);
        helpUntilDone(h, *state);

        std::lock_guard<std::mutex> lk(state->doneMutex);
        if (state->error)
            std::rethrow_exception(state->error);
    }

  private:
    static int
    autoThreadCount()
    {
        if (const char *env = std::getenv("CICERO_THREADS")) {
            int v = parallelParseThreadSpec(env);
            if (v > 0)
                return v;
            // Warn once: a typo'd override silently running at a
            // different width is exactly the surprise the strict
            // parser exists to prevent.
            static std::atomic<bool> warned{false};
            if (!warned.exchange(true))
                std::fprintf(stderr,
                             "cicero: ignoring invalid CICERO_THREADS="
                             "\"%s\" (want an integer in [1, %d]); "
                             "falling back to hardware concurrency\n",
                             env, kMaxParallelThreads);
        }
        unsigned hw = std::thread::hardware_concurrency();
        return hw > 0 ? static_cast<int>(hw) : 1;
    }

    void
    ensureStartedLocked()
    {
        if (_threads.load(std::memory_order_relaxed) == 0) {
            _threads.store(autoThreadCount(), std::memory_order_release);
            startWorkersLocked();
        }
    }

    void
    startWorkersLocked()
    {
        {
            std::lock_guard<std::mutex> lk(_reg->m);
            _reg->stop = false;
        }
        int n = _threads.load(std::memory_order_relaxed);
        for (int i = 0; i + 1 < n; ++i)
            _workers.emplace_back([this] { workerLoop(); });
    }

    void
    stopWorkersLocked()
    {
        {
            std::lock_guard<std::mutex> lk(_reg->m);
            _reg->stop = true;
        }
        _reg->version.fetch_add(1);
        _reg->cv.notify_all();
        for (std::thread &t : _workers)
            t.join();
        _workers.clear();
    }

    void
    workerLoop()
    {
        tInsideWorker = true;
        LaneHandle &h = myLane();
        LaneRegistry &reg = *h.reg;
        for (;;) {
            std::uint64_t version0 = reg.version.load();
            Task task;
            if (popLocal(*h.lane, task) ||
                stealAny(reg, h.lane.get(), task)) {
                runTask(task);
                continue;
            }
            auto t0 = std::chrono::steady_clock::now();
            {
                std::unique_lock<std::mutex> lk(reg.m);
                if (reg.stop)
                    return;
                reg.cv.wait(lk, [&reg, version0] {
                    return reg.stop || reg.version.load() != version0;
                });
                if (reg.stop)
                    return;
            }
            bump(counters().idleWakeups);
            bump(counters().idleNanos, nanosSince(t0));
        }
    }

    std::mutex _configMutex; //!< guards worker lifecycle + _threads init
    std::shared_ptr<LaneRegistry> _reg = laneRegistry();
    std::vector<std::thread> _workers;
    std::atomic<int> _threads{0}; //!< 0 = not yet initialized
};

Pool &
pool()
{
    static Pool p;
    return p;
}

void
enqueueReady(std::shared_ptr<DepTaskNode> node)
{
    if (node->stalled)
        bump(counters().depStallNanos, nanosSince(node->submitTime));
    std::shared_ptr<ParallelTaskState> state = node->state;
    Task task{state, std::move(node->fn), std::move(node)};
    if (pool().threadCount() <= 1) {
        // Single-thread runs never touch the pool: a task whose deps
        // are satisfied executes inline, so a graph submitted in
        // topological order runs serially in submission order.
        runTask(task);
        return;
    }
    LaneHandle &h = myLane();
    std::vector<Task> tasks;
    tasks.push_back(std::move(task));
    pushTasks(h, std::move(tasks), *state);
}

} // namespace

int
parallelParseThreadSpec(const char *text)
{
    if (!text)
        return 0;
    errno = 0;
    char *end = nullptr;
    long v = std::strtol(text, &end, 10);
    if (end == text)
        return 0; // empty or non-numeric
    while (*end == ' ' || *end == '\t' || *end == '\n' || *end == '\r')
        ++end;
    if (*end != '\0')
        return 0; // trailing garbage ("8x", "4,2", ...)
    if (errno == ERANGE || v < 1 || v > kMaxParallelThreads)
        return 0; // zero, negative, or absurd
    return static_cast<int>(v);
}

int
parallelThreadCount()
{
    return pool().threadCount();
}

void
setParallelThreadCount(int n)
{
    pool().configure(n);
}

const char *
parallelSchedulerName()
{
    return "work-stealing";
}

SchedulerCounters
parallelSchedulerCounters()
{
    CounterBlock &c = counters();
    SchedulerCounters out;
    out.steals = c.steals.load(std::memory_order_relaxed);
    out.idleWakeups = c.idleWakeups.load(std::memory_order_relaxed);
    out.idleNanos = c.idleNanos.load(std::memory_order_relaxed);
    out.overflowMigrations =
        c.overflowMigrations.load(std::memory_order_relaxed);
    out.tasksExecuted = c.tasksExecuted.load(std::memory_order_relaxed);
    out.depTasksSubmitted =
        c.depTasksSubmitted.load(std::memory_order_relaxed);
    out.depStallNanos = c.depStallNanos.load(std::memory_order_relaxed);
    out.tasksDrained = c.tasksDrained.load(std::memory_order_relaxed);
    out.groupsCancelled =
        c.groupsCancelled.load(std::memory_order_relaxed);
    out.kernelBatchPasses =
        c.kernelBatchPasses.load(std::memory_order_relaxed);
    out.kernelBatchItems =
        c.kernelBatchItems.load(std::memory_order_relaxed);
    return out;
}

void
parallelNoteKernelBatch(std::uint64_t items)
{
    CounterBlock &c = counters();
    bump(c.kernelBatchPasses);
    bump(c.kernelBatchItems, items);
}

SchedulerCounters
parallelSchedulerCountersSince(const SchedulerCounters &base)
{
    // Saturating per-field subtraction: a counter below its baseline
    // means someone reset the globals mid-bracket — report 0 for that
    // field instead of a wrapped-around garbage delta.
    auto delta = [](std::uint64_t now, std::uint64_t then) {
        return now >= then ? now - then : std::uint64_t(0);
    };
    const SchedulerCounters now = parallelSchedulerCounters();
    SchedulerCounters out;
    out.steals = delta(now.steals, base.steals);
    out.idleWakeups = delta(now.idleWakeups, base.idleWakeups);
    out.idleNanos = delta(now.idleNanos, base.idleNanos);
    out.overflowMigrations =
        delta(now.overflowMigrations, base.overflowMigrations);
    out.tasksExecuted = delta(now.tasksExecuted, base.tasksExecuted);
    out.depTasksSubmitted =
        delta(now.depTasksSubmitted, base.depTasksSubmitted);
    out.depStallNanos = delta(now.depStallNanos, base.depStallNanos);
    out.tasksDrained = delta(now.tasksDrained, base.tasksDrained);
    out.groupsCancelled = delta(now.groupsCancelled, base.groupsCancelled);
    out.kernelBatchPasses =
        delta(now.kernelBatchPasses, base.kernelBatchPasses);
    out.kernelBatchItems =
        delta(now.kernelBatchItems, base.kernelBatchItems);
    return out;
}

void
parallelResetSchedulerCounters()
{
    CounterBlock &c = counters();
    c.steals.store(0, std::memory_order_relaxed);
    c.idleWakeups.store(0, std::memory_order_relaxed);
    c.idleNanos.store(0, std::memory_order_relaxed);
    c.overflowMigrations.store(0, std::memory_order_relaxed);
    c.tasksExecuted.store(0, std::memory_order_relaxed);
    c.depTasksSubmitted.store(0, std::memory_order_relaxed);
    c.depStallNanos.store(0, std::memory_order_relaxed);
    c.tasksDrained.store(0, std::memory_order_relaxed);
    c.groupsCancelled.store(0, std::memory_order_relaxed);
    c.kernelBatchPasses.store(0, std::memory_order_relaxed);
    c.kernelBatchItems.store(0, std::memory_order_relaxed);
}

std::int64_t
parallelResolveGrain(std::int64_t n, std::int64_t grain)
{
    if (grain > 0)
        return grain;
    if (n <= 0)
        return 1;
    // Several chunks per thread so uneven per-item cost load-balances.
    std::int64_t threads = parallelThreadCount();
    std::int64_t target = threads * 8;
    return std::max<std::int64_t>(1, (n + target - 1) / target);
}

std::size_t
parallelChunkCount(std::int64_t begin, std::int64_t end,
                   std::int64_t grain)
{
    std::int64_t n = end - begin;
    if (n <= 0)
        return 0;
    std::int64_t g = parallelResolveGrain(n, grain);
    return static_cast<std::size_t>((n + g - 1) / g);
}

void
parallelForChunks(
    std::int64_t begin, std::int64_t end, std::int64_t grain,
    const std::function<void(std::size_t, std::int64_t, std::int64_t)> &fn)
{
    if (end <= begin)
        return;
    pool().run(begin, end, grain, fn);
}

void
parallelFor(std::int64_t begin, std::int64_t end, std::int64_t grain,
            const std::function<void(std::int64_t, std::int64_t)> &fn)
{
    parallelForChunks(begin, end, grain,
                      [&fn](std::size_t, std::int64_t b, std::int64_t e) {
                          fn(b, e);
                      });
}

void
parallelForOuter(std::int64_t n,
                 const std::function<void(std::int64_t)> &fn)
{
    if (n <= 0)
        return;
    parallelFor(0, n, 1, [&fn](std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i)
            fn(i);
    });
}

bool
insideParallelWorker()
{
    return tInsideWorker;
}

// ---------------------------------------------------------------------
// TaskGroup
// ---------------------------------------------------------------------

TaskGroup::TaskGroup() : _state(std::make_shared<ParallelTaskState>()) {}

TaskGroup::~TaskGroup()
{
    // Outstanding tasks capture state owned by the caller — they must
    // finish before destruction. Errors are dropped here; wait()
    // observes them.
    helpUntilDone(myLane(), *_state);
}

TaskHandle
TaskGroup::run(std::function<void()> fn)
{
    auto node = std::make_shared<DepTaskNode>();
    node->state = _state;
    node->fn = std::move(fn);
    _state->pending.fetch_add(1, std::memory_order_acq_rel);
    TaskHandle handle;
    handle._node = node;
    enqueueReady(std::move(node));
    return handle;
}

TaskHandle
TaskGroup::runAfter(const std::vector<TaskHandle> &deps,
                    std::function<void()> fn)
{
    auto node = std::make_shared<DepTaskNode>();
    node->state = _state;
    node->fn = std::move(fn);
    _state->pending.fetch_add(1, std::memory_order_acq_rel);

    // Register with each still-live dependency while a submission
    // latch (the initial 1) keeps `waits` above zero: a dep completing
    // between two registrations then cannot fire the task early.
    node->waits.store(1, std::memory_order_relaxed);
    std::size_t live = 0;
    for (const TaskHandle &d : deps) {
        if (!d._node)
            continue;
        DepTaskNode &dep = *d._node;
        std::lock_guard<std::mutex> lk(dep.m);
        if (dep.done)
            continue;
        node->waits.fetch_add(1, std::memory_order_relaxed);
        dep.successors.push_back(node);
        ++live;
    }
    if (live > 0) {
        node->stalled = true;
        node->submitTime = std::chrono::steady_clock::now();
        bump(counters().depTasksSubmitted);
    }

    TaskHandle handle;
    handle._node = node;
    // Release the latch; if every dep already resolved this enqueues
    // (and on a one-thread pool runs) the task right here.
    if (node->waits.fetch_sub(1, std::memory_order_acq_rel) == 1)
        enqueueReady(std::move(node));
    return handle;
}

void
TaskGroup::cancel()
{
    if (!_state->cancelled.exchange(true, std::memory_order_acq_rel))
        bump(counters().groupsCancelled);
}

bool
TaskGroup::cancelled() const
{
    return _state->cancelled.load(std::memory_order_acquire);
}

void
TaskGroup::wait()
{
    helpUntilDone(myLane(), *_state);
    _state->cancelled.store(false, std::memory_order_release);
    std::lock_guard<std::mutex> lk(_state->doneMutex);
    if (_state->error) {
        std::exception_ptr error = _state->error;
        _state->error = nullptr;
        _state->failed.store(false, std::memory_order_release);
        std::rethrow_exception(error);
    }
}

} // namespace cicero
