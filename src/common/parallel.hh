/**
 * @file
 * The parallel execution subsystem: a lazily-initialized global
 * work-stealing task scheduler and a chunked parallel-for on top of it.
 *
 * Design contract (see README "Threading model"):
 *  - Work is split into contiguous chunks of a deterministic size; the
 *    chunk decomposition depends only on (range, grain, thread count),
 *    never on scheduling. Callers that must merge per-chunk results in
 *    a deterministic order index them by chunk id via
 *    parallelForChunks() / parallelChunkCount(). Work stealing moves
 *    *which thread* runs a chunk, never *what* the chunk is.
 *  - The worker count comes from CICERO_THREADS (default:
 *    hardware_concurrency) and can be overridden programmatically with
 *    setParallelThreadCount(); with one thread every loop runs serially
 *    inline, so single-thread runs never touch the pool.
 *  - Every thread that submits work owns a deque of tasks. A submitter
 *    pushes its chunks there and drains them help-first (newest-first,
 *    so a nested loop's chunks run before the enclosing level's), while
 *    idle pool workers steal oldest-first from any thread's deque.
 *    Concurrent top-level submitters therefore make progress
 *    simultaneously, and a nested parallelFor issued from inside a
 *    worker participates in the pool instead of degrading to
 *    inline-serial: the submitting worker executes chunks of its own
 *    loop while thieves take the rest.
 *  - TaskGroup is the async-submit primitive the loops are built from:
 *    run() enqueues a task and returns immediately; wait() helps
 *    execute the group's tasks, then blocks until all complete.
 *    runAfter() is the continuation/dependency layer on top: a task may
 *    be submitted with predecessor handles and stays dormant until its
 *    last dependency completes — dependency-graph pipelines (SPARW's
 *    per-window schedule, the streaming renderers' stage overlap) are
 *    built from it.
 *  - The first exception thrown by a chunk (or group task) is captured
 *    and rethrown to the waiter once the loop has drained; remaining
 *    chunks are skipped on a best-effort basis. Dormant dependency
 *    tasks still fire (and are then skipped), so a failed graph always
 *    drains.
 *  - A task must not block waiting on work that only runs after its
 *    own loop returns (the usual help-first scheduler caveat), and a
 *    dependency edge must never point forward to a task submitted
 *    later from inside the dependent's own subgraph (cycles deadlock).
 *  - The scheduler keeps process-global counters (steals, idle
 *    wakeups, measured idle time, overflow-lane migrations,
 *    dependency-stall time) so benches report *measured* idle
 *    breakdowns instead of wall-clock estimates.
 */

#ifndef CICERO_COMMON_PARALLEL_HH
#define CICERO_COMMON_PARALLEL_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace cicero {

namespace detail {
struct ParallelTaskState;
struct DepTaskNode;
} // namespace detail

/** Upper bound on an explicitly requested worker count. */
constexpr int kMaxParallelThreads = 4096;

/**
 * Number of threads parallel loops use (pool workers + the calling
 * thread). Initializes the pool on first use: CICERO_THREADS if it
 * parses per parallelParseThreadSpec(), otherwise
 * std::thread::hardware_concurrency() (an invalid CICERO_THREADS is
 * reported once on stderr and then ignored).
 */
int parallelThreadCount();

/**
 * Strict parser for a CICERO_THREADS-style thread-count spec: a
 * decimal integer in [1, kMaxParallelThreads], surrounding whitespace
 * allowed. Returns the count, or 0 if @p text is null, empty,
 * non-numeric, has trailing garbage, is zero/negative, or overflows
 * the range — callers treat 0 as "fall back to the automatic default".
 */
int parallelParseThreadSpec(const char *text);

/**
 * Reconfigure the pool to @p n threads; n <= 0 re-applies the automatic
 * default (CICERO_THREADS / hardware_concurrency). Joins the previous
 * workers. Must not race with an in-flight parallel loop.
 */
void setParallelThreadCount(int n);

/** Scheduler identifier for bench/CI tagging ("work-stealing"). */
const char *parallelSchedulerName();

/**
 * Process-global scheduler counters, cumulative since process start (or
 * the last parallelResetSchedulerCounters()). These are *measured*
 * quantities — benches report them instead of estimating idle time
 * from wall clocks.
 */
struct SchedulerCounters
{
    std::uint64_t steals = 0;          //!< tasks taken from another thread's lane
    std::uint64_t idleWakeups = 0;     //!< times a sleeping thread was woken
    std::uint64_t idleNanos = 0;       //!< wall time threads spent asleep waiting for work
    std::uint64_t overflowMigrations = 0; //!< tasks migrated to the overflow lane at thread exit
    std::uint64_t tasksExecuted = 0;   //!< tasks (chunks + group tasks) run
    std::uint64_t depTasksSubmitted = 0; //!< tasks submitted via TaskGroup::runAfter with live deps
    std::uint64_t depStallNanos = 0;   //!< dormant time: submission until the last dependency resolved
    std::uint64_t tasksDrained = 0;    //!< tasks skipped (not run) because their group failed or was cancelled
    std::uint64_t groupsCancelled = 0; //!< TaskGroup::cancel() calls
    std::uint64_t kernelBatchPasses = 0; //!< batched compute-kernel invocations (parallelNoteKernelBatch)
    std::uint64_t kernelBatchItems = 0;  //!< items those invocations processed (avg = items / passes)
};

/** Snapshot the scheduler counters (safe concurrently with running work). */
SchedulerCounters parallelSchedulerCounters();

/**
 * Record one batched compute-kernel invocation over @p items items
 * (e.g. an Mlp::forwardBatch pass over its sample count). Kernels call
 * this so benches can report *measured* batch density —
 * kernelBatchItems / kernelBatchPasses — instead of inferring it from
 * layer traffic. Lock-free relaxed counters; safe from any thread.
 */
void parallelNoteKernelBatch(std::uint64_t items);

/**
 * Delta of the current counters against @p base, per field, saturating
 * at zero (a field below its baseline means the globals were reset
 * mid-bracket). This is the bracketing primitive safe for *concurrent*
 * top-level measurers: snapshot, run, subtract — no shared reset to
 * race on, so bench_serve and bench_render_throughput (or several
 * service sessions) can bracket the same process simultaneously.
 */
SchedulerCounters
parallelSchedulerCountersSince(const SchedulerCounters &base);

/**
 * Zero the scheduler counters. Meant for bench bracketing; calling it
 * while loops are in flight is harmless but splits their counts across
 * the reset. Prefer parallelSchedulerCountersSince() bracketing when
 * anything else might be measuring concurrently — a reset here yanks
 * every other measurer's baseline.
 */
void parallelResetSchedulerCounters();

/**
 * Resolve the chunk size a loop over @p n items with requested grain
 * @p grain will use. grain > 0 is honored as-is; grain <= 0 picks a
 * default that yields several chunks per thread for load balance.
 */
std::int64_t parallelResolveGrain(std::int64_t n, std::int64_t grain);

/**
 * Number of chunks parallelFor/parallelForChunks will decompose
 * [@p begin, @p end) into at grain @p grain (resolved as above).
 */
std::size_t parallelChunkCount(std::int64_t begin, std::int64_t end,
                               std::int64_t grain);

/**
 * Chunked parallel loop: invokes @p fn(chunkBegin, chunkEnd) for each
 * chunk of [@p begin, @p end), concurrently on the global pool. The
 * calling thread participates. Returns when every chunk completed.
 * May be called from inside a worker: the nested loop's chunks are
 * scheduled like any other work (and stolen by idle threads) while the
 * submitter drains them help-first.
 */
void parallelFor(std::int64_t begin, std::int64_t end, std::int64_t grain,
                 const std::function<void(std::int64_t, std::int64_t)> &fn);

/**
 * As parallelFor, but @p fn also receives the chunk index
 * (0 .. parallelChunkCount()-1, in range order), so per-chunk partial
 * results can be merged deterministically after the loop. Chunk k spans
 * [begin + k*g, min(begin + (k+1)*g, end)) with g the resolved grain.
 */
void parallelForChunks(
    std::int64_t begin, std::int64_t end, std::int64_t grain,
    const std::function<void(std::size_t, std::int64_t, std::int64_t)> &fn);

/**
 * Outer-level loop over @p n independent heavy units (frames, windows,
 * whole renders): invokes @p fn(i) for i in [0, n). One chunk per unit;
 * the units' *internal* parallelFor loops participate in the pool via
 * work stealing, so going wide over even a handful of units no longer
 * idles the remaining threads.
 */
void parallelForOuter(std::int64_t n,
                      const std::function<void(std::int64_t)> &fn);

/** True while the current thread is executing a scheduled task. */
bool insideParallelWorker();

/**
 * Handle to a task submitted through a TaskGroup, usable as a
 * dependency of a later TaskGroup::runAfter() submission. Copyable and
 * cheap; a default-constructed handle is invalid and is ignored when
 * passed as a dependency (treated as already satisfied).
 */
class TaskHandle
{
  public:
    TaskHandle() = default;

    /** True if this handle refers to a submitted task. */
    bool valid() const { return _node != nullptr; }

  private:
    friend class TaskGroup;
    std::shared_ptr<detail::DepTaskNode> _node;
};

/**
 * A set of asynchronously submitted tasks: run() enqueues work on the
 * scheduler and returns immediately; wait() helps execute the group's
 * tasks, blocks until all have completed, and rethrows the first
 * captured exception. Usable from any thread, including from inside a
 * worker (the tasks are then stolen by idle threads — this is how
 * frame-level pipelines overlap independent stages). The destructor
 * waits for outstanding tasks but discards their errors; call wait()
 * to observe them. A group is reusable after wait() returns. Not
 * thread-safe: external synchronization is required to call run()/
 * wait() on one group from several threads at once.
 *
 * runAfter() adds the continuation layer: the task is enqueued with a
 * predecessor count and stays dormant until its last dependency
 * completes, at which point it becomes stealable like any other task.
 * Dependencies may come from any group (the handle carries its own
 * group's bookkeeping), may already be complete (the task then fires
 * immediately), and fire their dependents even when they were skipped
 * by a failure — a graph always drains. Cycles are the caller's bug
 * and deadlock.
 *
 * With a one-thread pool a task whose dependencies are all complete
 * executes inline at submission (single-thread runs never touch the
 * pool), so a graph submitted in topological order runs serially in
 * submission order; the error still surfaces at wait().
 *
 * A task's captures are destroyed on the thread that ran it, strictly
 * *after* the task counts as complete. A capture holding the last
 * shared_ptr to an object that owns the task's own group is therefore
 * safe: the owner (group included) is destructed on that worker once
 * the group already observes the task as done.
 */
class TaskGroup
{
  public:
    TaskGroup();
    ~TaskGroup();

    TaskGroup(const TaskGroup &) = delete;
    TaskGroup &operator=(const TaskGroup &) = delete;

    /** Enqueue @p fn; returns without waiting for it to run. */
    TaskHandle run(std::function<void()> fn);

    /**
     * Enqueue @p fn to run once every task in @p deps has completed;
     * returns without waiting. Invalid handles in @p deps are ignored.
     */
    TaskHandle runAfter(const std::vector<TaskHandle> &deps,
                        std::function<void()> fn);

    /**
     * Cooperatively cancel the group: tasks that have not started yet
     * (including dormant runAfter dependents) are drained — they fire,
     * count as complete, release their dependents, and are counted in
     * SchedulerCounters::tasksDrained — but their bodies never run.
     * Tasks already executing finish normally. cancel() itself does not
     * make wait() throw; an exception captured before the cancel still
     * surfaces there. Safe to call from any thread, including from
     * inside one of the group's own tasks.
     */
    void cancel();

    /** True once cancel() was called (cleared by the next wait()). */
    bool cancelled() const;

    /**
     * Help-execute and then block until every submitted task has
     * completed; rethrows the first exception a task threw. Resets the
     * failure and cancellation state, so the group is reusable.
     */
    void wait();

  private:
    std::shared_ptr<detail::ParallelTaskState> _state;
};

/**
 * Run @p fn(part, begin, end) over chunks of [0, n) and return the
 * per-chunk partials in chunk order. Pairing the chunk count and the
 * loop decomposition inside one call is the determinism-critical
 * invariant every ordered merge relies on — stated once here.
 */
template <typename T, typename Fn>
std::vector<T>
parallelMapChunks(std::int64_t n, Fn &&fn)
{
    const std::size_t chunks = parallelChunkCount(0, n, -1);
    std::vector<T> parts(chunks);
    parallelForChunks(0, n, -1,
                      [&](std::size_t c, std::int64_t b, std::int64_t e) {
                          fn(parts[c], b, e);
                      });
    return parts;
}

/**
 * Run @p fn(list, begin, end) over chunks of [0, n) and concatenate
 * the per-chunk lists in chunk order, reproducing the serial
 * traversal order exactly.
 */
template <typename T, typename Fn>
std::vector<T>
parallelConcatChunks(std::int64_t n, Fn &&fn)
{
    std::vector<std::vector<T>> parts =
        parallelMapChunks<std::vector<T>>(n, std::forward<Fn>(fn));
    std::size_t total = 0;
    for (const auto &p : parts)
        total += p.size();
    std::vector<T> out;
    out.reserve(total);
    for (const auto &p : parts)
        out.insert(out.end(), p.begin(), p.end());
    return out;
}

} // namespace cicero

#endif // CICERO_COMMON_PARALLEL_HH
