#include "common/math.hh"

#include <cassert>
#include <ostream>

namespace cicero {

std::ostream &
operator<<(std::ostream &os, const Vec3 &v)
{
    return os << "(" << v.x << ", " << v.y << ", " << v.z << ")";
}

float
angleBetween(const Vec3 &a, const Vec3 &b)
{
    float denom = a.norm() * b.norm();
    if (denom < kEps)
        return 0.0f;
    float c = clamp(a.dot(b) / denom, -1.0f, 1.0f);
    return std::acos(c);
}

Mat3
Mat3::identity()
{
    Mat3 r;
    r(0, 0) = r(1, 1) = r(2, 2) = 1.0f;
    return r;
}

Mat3
Mat3::zero()
{
    return Mat3{};
}

Mat3
Mat3::rotation(const Vec3 &axis, float angle)
{
    Vec3 u = axis.normalized();
    float c = std::cos(angle);
    float s = std::sin(angle);
    float t = 1.0f - c;

    Mat3 r;
    r(0, 0) = c + u.x * u.x * t;
    r(0, 1) = u.x * u.y * t - u.z * s;
    r(0, 2) = u.x * u.z * t + u.y * s;
    r(1, 0) = u.y * u.x * t + u.z * s;
    r(1, 1) = c + u.y * u.y * t;
    r(1, 2) = u.y * u.z * t - u.x * s;
    r(2, 0) = u.z * u.x * t - u.y * s;
    r(2, 1) = u.z * u.y * t + u.x * s;
    r(2, 2) = c + u.z * u.z * t;
    return r;
}

Mat3
Mat3::rotationX(float angle)
{
    return rotation({1.0f, 0.0f, 0.0f}, angle);
}

Mat3
Mat3::rotationY(float angle)
{
    return rotation({0.0f, 1.0f, 0.0f}, angle);
}

Mat3
Mat3::rotationZ(float angle)
{
    return rotation({0.0f, 0.0f, 1.0f}, angle);
}

Mat3
Mat3::operator*(const Mat3 &o) const
{
    Mat3 r = Mat3::zero();
    for (std::size_t i = 0; i < 3; ++i)
        for (std::size_t k = 0; k < 3; ++k)
            for (std::size_t j = 0; j < 3; ++j)
                r(i, j) += (*this)(i, k) * o(k, j);
    return r;
}

Vec3
Mat3::operator*(const Vec3 &v) const
{
    return {
        (*this)(0, 0) * v.x + (*this)(0, 1) * v.y + (*this)(0, 2) * v.z,
        (*this)(1, 0) * v.x + (*this)(1, 1) * v.y + (*this)(1, 2) * v.z,
        (*this)(2, 0) * v.x + (*this)(2, 1) * v.y + (*this)(2, 2) * v.z,
    };
}

Mat3
Mat3::operator*(float s) const
{
    Mat3 r = *this;
    for (auto &e : r.m)
        e *= s;
    return r;
}

Mat3
Mat3::operator+(const Mat3 &o) const
{
    Mat3 r = *this;
    for (std::size_t i = 0; i < 9; ++i)
        r.m[i] += o.m[i];
    return r;
}

Mat3
Mat3::transposed() const
{
    Mat3 r;
    for (std::size_t i = 0; i < 3; ++i)
        for (std::size_t j = 0; j < 3; ++j)
            r(i, j) = (*this)(j, i);
    return r;
}

float
Mat3::determinant() const
{
    const Mat3 &a = *this;
    return a(0, 0) * (a(1, 1) * a(2, 2) - a(1, 2) * a(2, 1)) -
           a(0, 1) * (a(1, 0) * a(2, 2) - a(1, 2) * a(2, 0)) +
           a(0, 2) * (a(1, 0) * a(2, 1) - a(1, 1) * a(2, 0));
}

Mat3
Mat3::inverse() const
{
    const Mat3 &a = *this;
    float det = determinant();
    assert(std::fabs(det) > 1e-12f && "singular matrix");
    float inv = 1.0f / det;

    Mat3 r;
    r(0, 0) = (a(1, 1) * a(2, 2) - a(1, 2) * a(2, 1)) * inv;
    r(0, 1) = (a(0, 2) * a(2, 1) - a(0, 1) * a(2, 2)) * inv;
    r(0, 2) = (a(0, 1) * a(1, 2) - a(0, 2) * a(1, 1)) * inv;
    r(1, 0) = (a(1, 2) * a(2, 0) - a(1, 0) * a(2, 2)) * inv;
    r(1, 1) = (a(0, 0) * a(2, 2) - a(0, 2) * a(2, 0)) * inv;
    r(1, 2) = (a(0, 2) * a(1, 0) - a(0, 0) * a(1, 2)) * inv;
    r(2, 0) = (a(1, 0) * a(2, 1) - a(1, 1) * a(2, 0)) * inv;
    r(2, 1) = (a(0, 1) * a(2, 0) - a(0, 0) * a(2, 1)) * inv;
    r(2, 2) = (a(0, 0) * a(1, 1) - a(0, 1) * a(1, 0)) * inv;
    return r;
}

Mat4
Mat4::identity()
{
    Mat4 r;
    r(0, 0) = r(1, 1) = r(2, 2) = r(3, 3) = 1.0f;
    return r;
}

Mat4
Mat4::operator*(const Mat4 &o) const
{
    Mat4 r;
    for (std::size_t i = 0; i < 4; ++i)
        for (std::size_t k = 0; k < 4; ++k)
            for (std::size_t j = 0; j < 4; ++j)
                r(i, j) += (*this)(i, k) * o(k, j);
    return r;
}

Vec3
Mat4::transformPoint(const Vec3 &p) const
{
    const Mat4 &a = *this;
    float x = a(0, 0) * p.x + a(0, 1) * p.y + a(0, 2) * p.z + a(0, 3);
    float y = a(1, 0) * p.x + a(1, 1) * p.y + a(1, 2) * p.z + a(1, 3);
    float z = a(2, 0) * p.x + a(2, 1) * p.y + a(2, 2) * p.z + a(2, 3);
    float w = a(3, 0) * p.x + a(3, 1) * p.y + a(3, 2) * p.z + a(3, 3);
    if (std::fabs(w) > kEps && std::fabs(w - 1.0f) > kEps) {
        float inv = 1.0f / w;
        return {x * inv, y * inv, z * inv};
    }
    return {x, y, z};
}

Vec3
Mat4::transformDir(const Vec3 &d) const
{
    const Mat4 &a = *this;
    return {
        a(0, 0) * d.x + a(0, 1) * d.y + a(0, 2) * d.z,
        a(1, 0) * d.x + a(1, 1) * d.y + a(1, 2) * d.z,
        a(2, 0) * d.x + a(2, 1) * d.y + a(2, 2) * d.z,
    };
}

Mat4
Mat4::transposed() const
{
    Mat4 r;
    for (std::size_t i = 0; i < 4; ++i)
        for (std::size_t j = 0; j < 4; ++j)
            r(i, j) = (*this)(j, i);
    return r;
}

Mat4
Mat4::fromRigid(const Mat3 &rot, const Vec3 &trans)
{
    Mat4 r = Mat4::identity();
    for (std::size_t i = 0; i < 3; ++i)
        for (std::size_t j = 0; j < 3; ++j)
            r(i, j) = rot(i, j);
    r(0, 3) = trans.x;
    r(1, 3) = trans.y;
    r(2, 3) = trans.z;
    return r;
}

Mat4
Mat4::rigidInverse() const
{
    Mat3 rot;
    for (std::size_t i = 0; i < 3; ++i)
        for (std::size_t j = 0; j < 3; ++j)
            rot(i, j) = (*this)(i, j);
    Vec3 t{(*this)(0, 3), (*this)(1, 3), (*this)(2, 3)};
    Mat3 rt = rot.transposed();
    return fromRigid(rt, -(rt * t));
}

Quat
Quat::fromMatrix(const Mat3 &m)
{
    Quat q;
    float trace = m(0, 0) + m(1, 1) + m(2, 2);
    if (trace > 0.0f) {
        float s = std::sqrt(trace + 1.0f) * 2.0f;
        q.w = 0.25f * s;
        q.x = (m(2, 1) - m(1, 2)) / s;
        q.y = (m(0, 2) - m(2, 0)) / s;
        q.z = (m(1, 0) - m(0, 1)) / s;
    } else if (m(0, 0) > m(1, 1) && m(0, 0) > m(2, 2)) {
        float s = std::sqrt(1.0f + m(0, 0) - m(1, 1) - m(2, 2)) * 2.0f;
        q.w = (m(2, 1) - m(1, 2)) / s;
        q.x = 0.25f * s;
        q.y = (m(0, 1) + m(1, 0)) / s;
        q.z = (m(0, 2) + m(2, 0)) / s;
    } else if (m(1, 1) > m(2, 2)) {
        float s = std::sqrt(1.0f + m(1, 1) - m(0, 0) - m(2, 2)) * 2.0f;
        q.w = (m(0, 2) - m(2, 0)) / s;
        q.x = (m(0, 1) + m(1, 0)) / s;
        q.y = 0.25f * s;
        q.z = (m(1, 2) + m(2, 1)) / s;
    } else {
        float s = std::sqrt(1.0f + m(2, 2) - m(0, 0) - m(1, 1)) * 2.0f;
        q.w = (m(1, 0) - m(0, 1)) / s;
        q.x = (m(0, 2) + m(2, 0)) / s;
        q.y = (m(1, 2) + m(2, 1)) / s;
        q.z = 0.25f * s;
    }
    return q.normalized();
}

Quat
Quat::fromAxisAngle(const Vec3 &axis, float angle)
{
    Vec3 u = axis.normalized();
    float h = 0.5f * angle;
    float s = std::sin(h);
    return Quat{std::cos(h), u.x * s, u.y * s, u.z * s};
}

Mat3
Quat::toMatrix() const
{
    Mat3 m;
    float xx = x * x, yy = y * y, zz = z * z;
    float xy = x * y, xz = x * z, yz = y * z;
    float wx = w * x, wy = w * y, wz = w * z;
    m(0, 0) = 1.0f - 2.0f * (yy + zz);
    m(0, 1) = 2.0f * (xy - wz);
    m(0, 2) = 2.0f * (xz + wy);
    m(1, 0) = 2.0f * (xy + wz);
    m(1, 1) = 1.0f - 2.0f * (xx + zz);
    m(1, 2) = 2.0f * (yz - wx);
    m(2, 0) = 2.0f * (xz - wy);
    m(2, 1) = 2.0f * (yz + wx);
    m(2, 2) = 1.0f - 2.0f * (xx + yy);
    return m;
}

Quat
Quat::operator*(const Quat &o) const
{
    return {
        w * o.w - x * o.x - y * o.y - z * o.z,
        w * o.x + x * o.w + y * o.z - z * o.y,
        w * o.y - x * o.z + y * o.w + z * o.x,
        w * o.z + x * o.y - y * o.x + z * o.w,
    };
}

Quat
Quat::normalized() const
{
    float n = norm();
    if (n < kEps)
        return identity();
    return {w / n, x / n, y / n, z / n};
}

Quat
Quat::slerp(const Quat &a, const Quat &b, float t)
{
    Quat q = b;
    float d = a.w * b.w + a.x * b.x + a.y * b.y + a.z * b.z;
    // Take the short path on the 4-sphere.
    if (d < 0.0f) {
        d = -d;
        q = {-b.w, -b.x, -b.y, -b.z};
    }
    if (d > 1.0f - kEps) {
        // Nearly parallel: fall back to nlerp, which also supports
        // extrapolation (t outside [0, 1]).
        Quat r{lerp(a.w, q.w, t), lerp(a.x, q.x, t), lerp(a.y, q.y, t),
               lerp(a.z, q.z, t)};
        return r.normalized();
    }
    float theta = std::acos(clamp(d, -1.0f, 1.0f));
    float s = std::sin(theta);
    float wa = std::sin((1.0f - t) * theta) / s;
    float wb = std::sin(t * theta) / s;
    Quat r{wa * a.w + wb * q.w, wa * a.x + wb * q.x, wa * a.y + wb * q.y,
           wa * a.z + wb * q.z};
    return r.normalized();
}

Pose
Pose::lookAt(const Vec3 &eye, const Vec3 &at, const Vec3 &up)
{
    Vec3 fwd = (at - eye).normalized();
    Vec3 right = fwd.cross(up).normalized();
    Vec3 camUp = right.cross(fwd);

    // Columns of the camera-to-world rotation are the world-space camera
    // axes: +X right, +Y up, -Z forward.
    Pose p;
    p.pos = eye;
    p.rot(0, 0) = right.x; p.rot(1, 0) = right.y; p.rot(2, 0) = right.z;
    p.rot(0, 1) = camUp.x; p.rot(1, 1) = camUp.y; p.rot(2, 1) = camUp.z;
    p.rot(0, 2) = -fwd.x;  p.rot(1, 2) = -fwd.y;  p.rot(2, 2) = -fwd.z;
    return p;
}

Mat4
Pose::transformTo(const Pose &tgt) const
{
    // world-from-ref composed with tgt-from-world.
    return tgt.toMatrix().rigidInverse() * toMatrix();
}

} // namespace cicero
