/**
 * @file
 * Image containers and quality metrics.
 *
 * Frames in Cicero are linear-RGB float images paired with a depth map;
 * quality is evaluated with PSNR exactly as in the paper's Fig. 16/25/26.
 */

#ifndef CICERO_COMMON_IMAGE_HH
#define CICERO_COMMON_IMAGE_HH

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/math.hh"

namespace cicero {

/** Depth value used to mark "no surface along this ray" (void). */
constexpr float kInfiniteDepth = std::numeric_limits<float>::infinity();

/**
 * A width x height RGB image of linear float radiance in [0, 1].
 */
class Image
{
  public:
    Image() = default;

    /** Construct a @p w x @p h image filled with @p fill. */
    Image(int w, int h, const Vec3 &fill = Vec3{});

    int width() const { return _width; }
    int height() const { return _height; }
    std::size_t pixelCount() const { return _pixels.size(); }
    bool empty() const { return _pixels.empty(); }

    const Vec3 &at(int x, int y) const { return _pixels[idx(x, y)]; }
    Vec3 &at(int x, int y) { return _pixels[idx(x, y)]; }

    const Vec3 &at(std::size_t i) const { return _pixels[i]; }
    Vec3 &at(std::size_t i) { return _pixels[i]; }

    const std::vector<Vec3> &pixels() const { return _pixels; }

    bool
    inBounds(int x, int y) const
    {
        return x >= 0 && x < _width && y >= 0 && y < _height;
    }

    /** Fill every pixel with @p v. */
    void fill(const Vec3 &v);

    /**
     * Bilinearly sample at continuous pixel coordinates (@p x, @p y);
     * coordinates are clamped to the image border.
     */
    Vec3 sampleBilinear(float x, float y) const;

    /**
     * Downsample by an integer factor using box filtering (the DS-2
     * baseline of the paper downsamples by 2).
     */
    Image downsample(int factor) const;

    /** Upsample to (@p w, @p h) with bilinear interpolation. */
    Image upsampleBilinear(int w, int h) const;

    /** Write as a binary PPM (P6) file with sRGB-ish 2.2 gamma. */
    bool writePpm(const std::string &path) const;

  private:
    std::size_t idx(int x, int y) const
    {
        return static_cast<std::size_t>(y) * _width + x;
    }

    int _width = 0;
    int _height = 0;
    std::vector<Vec3> _pixels;
};

/**
 * A per-pixel depth map; kInfiniteDepth marks rays that hit nothing.
 */
class DepthMap
{
  public:
    DepthMap() = default;
    DepthMap(int w, int h, float fill = kInfiniteDepth);

    int width() const { return _width; }
    int height() const { return _height; }
    bool empty() const { return _depth.empty(); }

    float at(int x, int y) const { return _depth[idx(x, y)]; }
    float &at(int x, int y) { return _depth[idx(x, y)]; }

    float at(std::size_t i) const { return _depth[i]; }
    float &at(std::size_t i) { return _depth[i]; }

    void fill(float v);

    /** Fraction of pixels with finite depth. */
    double coverage() const;

  private:
    std::size_t idx(int x, int y) const
    {
        return static_cast<std::size_t>(y) * _width + x;
    }

    int _width = 0;
    int _height = 0;
    std::vector<float> _depth;
};

/**
 * Peak signal-to-noise ratio between two images of identical size, in dB,
 * with a peak signal of 1.0.
 *
 * @return +infinity when the images are identical.
 */
double psnr(const Image &a, const Image &b);

/** Mean squared error over all channels of two equally-sized images. */
double mse(const Image &a, const Image &b);

} // namespace cicero

#endif // CICERO_COMMON_IMAGE_HH
