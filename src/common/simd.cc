#include "common/simd.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace cicero {
namespace simd {

const char *
backendName(Backend b)
{
    switch (b) {
    case Backend::Avx2:
        return "avx2";
    case Backend::Neon:
        return "neon";
    case Backend::Scalar:
        return "scalar";
    }
    return "scalar";
}

namespace {

/** -1 = follow environment, 0 = native, 1 = scalar. */
std::atomic<int> gOverride{-1};

Backend
backendFromEnv()
{
    const char *env = std::getenv("CICERO_SIMD");
    if (!env || !*env || std::strcmp(env, "native") == 0)
        return kCompiledBackend;
    if (std::strcmp(env, "scalar") == 0)
        return Backend::Scalar;
    std::fprintf(stderr,
                 "cicero: ignoring invalid CICERO_SIMD='%s' "
                 "(expected scalar|native)\n",
                 env);
    return kCompiledBackend;
}

} // namespace

Backend
activeBackend()
{
    const int ov = gOverride.load(std::memory_order_relaxed);
    if (ov == 0)
        return kCompiledBackend;
    if (ov == 1)
        return Backend::Scalar;
    static const Backend env = backendFromEnv();
    return env;
}

void
setSimdBackendOverride(bool forceScalar, bool reset)
{
    gOverride.store(reset ? -1 : (forceScalar ? 1 : 0),
                    std::memory_order_relaxed);
}

void
convertF16ToF32(const std::uint16_t *src, float *dst, std::size_t n)
{
    std::size_t i = 0;
    if (simdActive()) {
        for (; i + VecF::kLanes <= n; i += VecF::kLanes)
            loadF16(src + i).store(dst + i);
    }
    for (; i < n; ++i)
        dst[i] = f16ToF32(src[i]);
}

void
convertF32ToF16(const float *src, std::uint16_t *dst, std::size_t n)
{
    std::size_t i = 0;
    if (simdActive()) {
        for (; i + VecF::kLanes <= n; i += VecF::kLanes)
            storeF16(dst + i, VecF::load(src + i));
    }
    for (; i < n; ++i)
        dst[i] = f32ToF16(src[i]);
}

void
roundBufferThroughFp16(float *p, std::size_t n)
{
    // Scalar on purpose: runs once at quantization time, and the scalar
    // conversions are the reference the vector paths are tested against.
    for (std::size_t i = 0; i < n; ++i)
        p[i] = f16ToF32(f32ToF16(p[i]));
}

void
transposeToChannelMajor(const float *aos, int n, int dim, float *soa)
{
    for (int i = 0; i < n; ++i)
        for (int c = 0; c < dim; ++c)
            soa[static_cast<std::size_t>(c) * n + i] =
                aos[static_cast<std::size_t>(i) * dim + c];
}

void
transposeToSampleMajor(const float *soa, int n, int dim, float *aos)
{
    for (int i = 0; i < n; ++i)
        for (int c = 0; c < dim; ++c)
            aos[static_cast<std::size_t>(i) * dim + c] =
                soa[static_cast<std::size_t>(c) * n + i];
}

} // namespace simd
} // namespace cicero
