/**
 * @file
 * Extension bench (paper Sec. VIII, "Limitations and Future Work"):
 * the radiance *transfer function* the paper proposes as future work,
 * implemented via G-buffer re-shading — each warped pixel's
 * view-dependent shading is replaced by the target view's prediction,
 * at a few ALU ops per point and zero extra re-rendering.
 *
 * Finding (reported honestly): on smooth geometry with broad lobes the
 * correction recovers warping loss; on sharp lobes over curved
 * geometry the grid-interpolated normals misplace the predicted
 * highlight and the correction can *hurt* — corroborating the paper's
 * position that a practical transfer function must be learned jointly
 * with the model (BRDF estimation), not analytically bolted on.
 */

#include "bench_util.hh"

using namespace cicero;
using namespace cicero::bench;

namespace {

/** A smooth broad-lobe specular scene (the favourable case). */
Scene
smoothSpecularScene()
{
    Scene s;
    s.name = "smooth-specular";
    Primitive sphere;
    sphere.shape = PrimShape::Sphere;
    sphere.size = {0.45f, 0.45f, 0.45f};
    sphere.albedo = {0.8f, 0.3f, 0.2f};
    sphere.specular = 0.8f;
    sphere.shininess = 12.0f;
    s.field.addPrimitive(sphere);
    Primitive slab;
    slab.shape = PrimShape::Box;
    slab.center = {0.0f, -0.7f, 0.0f};
    slab.size = {0.9f, 0.05f, 0.9f};
    slab.albedo = {0.3f, 0.5f, 0.7f};
    s.field.addPrimitive(slab);
    s.cameraDistance = 2.5f;
    return s;
}

void
evalScene(const Scene &scene, NerfModel &model, const char *label)
{
    const Vec3 light = scene.field.lightDir();
    Table table({"view delta deg", "plain warp dB", "re-shaded dB",
                 "gain dB"});
    Summary gains;
    for (float deg : {5.0f, 10.0f, 20.0f, 30.0f}) {
        OrbitParams orbit;
        orbit.radius = scene.cameraDistance;
        orbit.degPerSecond = deg * 30.0f;
        auto traj = orbitTrajectory(orbit, 2);
        Camera ref = qualityCamera(scene, traj[0], 64);
        Camera tgt = qualityCamera(scene, traj[1], 64);

        RenderResult r = model.render(ref, nullptr, true);
        RenderResult full = model.render(tgt);

        WarpOutput plain =
            warpFrame(r.image, r.depth, ref, tgt, &model.occupancy(),
                      scene.background);
        WarpOutput transfer = warpFrameTransfer(
            r.image, r.depth, r.gbuffer, ref, tgt, &model.occupancy(),
            scene.background, light);
        model.renderPixels(tgt, plain.needRender, plain.image,
                           plain.depth);
        model.renderPixels(tgt, transfer.needRender, transfer.image,
                           transfer.depth);

        double p = std::min(60.0, psnr(plain.image, full.image));
        double t = std::min(60.0, psnr(transfer.image, full.image));
        gains.add(t - p);
        table.row().cell(deg, 0).cell(p, 2).cell(t, 2).cell(t - p, 2);
    }
    std::printf("\n%s\n", label);
    table.print();
    std::printf("mean gain: %.2f dB\n", gains.mean());
}

} // namespace

int
main()
{
    banner("Ext. (Sec. VIII)",
           "radiance-transfer warping on specular content");

    {
        Scene scene = smoothSpecularScene();
        SamplerConfig cfg;
        cfg.stepsAcross = 160;
        NerfModel model(scene,
                        std::make_unique<DenseGridEncoding>(96), 21000,
                        cfg);
        evalScene(scene, model,
                  "smooth geometry, broad lobe (favourable case):");
    }
    {
        Scene scene = makeScene("ignatius");
        auto model = fullModel(ModelKind::DirectVoxGO, scene);
        evalScene(scene, *model,
                  "curved statue, sharp lobe (adversarial case):");
    }
    std::printf("\nconclusion: analytic re-shading from an aggregated "
                "G-buffer helps exactly where normals are reliable; a "
                "learned per-surface transfer (the paper's suggestion) "
                "is needed for general content.\n");
    return 0;
}
