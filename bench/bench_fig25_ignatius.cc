/**
 * @file
 * Fig. 25 reproduction: quality on the Ignatius stand-in at two
 * temporal resolutions. At 1 FPS consecutive poses are far apart and
 * the radiance approximation suffers on the non-diffuse statue
 * (Cicero below DS-2); at the 30 FPS capture — the real-time VR case
 * the paper targets — Cicero-16 loses almost nothing.
 */

#include "bench_util.hh"

using namespace cicero;
using namespace cicero::bench;

namespace {

void
evaluate(const Scene &scene, NerfModel &model, const Camera &cam,
         const std::vector<Pose> &traj, const char *label)
{
    std::vector<Image> gt;
    for (const Pose &pose : traj) {
        Camera c = cam;
        c.pose = pose;
        gt.push_back(renderGroundTruth(scene, c, 256).image);
    }
    auto meanPsnr = [&](const SparwRun &run) {
        Summary s;
        for (std::size_t i = 0; i < traj.size(); ++i)
            s.add(std::min(60.0, psnr(run.frames[i].image, gt[i])));
        return s.mean();
    };

    Summary base;
    for (std::size_t i = 0; i < traj.size(); ++i) {
        Camera c = cam;
        c.pose = traj[i];
        base.add(std::min(60.0, psnr(model.render(c).image, gt[i])));
    }

    SparwConfig c6;
    c6.window = 6;
    SparwConfig c16;
    c16.window = 16;
    SparwPipeline p6(model, cam, c6);
    SparwPipeline p16(model, cam, c16);

    Table table({"variant", "PSNR dB"});
    table.row().cell("Baseline").cell(base.mean(), 2);
    table.row().cell("Cicero-6").cell(meanPsnr(p6.run(traj)), 2);
    table.row().cell("Cicero-16").cell(meanPsnr(p16.run(traj)), 2);
    table.row().cell("DS-2").cell(meanPsnr(p16.runDownsampled(traj, 2)),
                                  2);
    table.row().cell("Temp-16").cell(meanPsnr(p16.runTemporal(traj)), 2);
    std::printf("\n%s\n", label);
    table.print();
}

} // namespace

int
main()
{
    banner("Fig. 25", "Ignatius: 1 FPS vs 30 FPS temporal resolution");

    Scene scene = makeScene("ignatius");
    auto model = fullModel(ModelKind::DirectVoxGO, scene);
    Camera cam = qualityCamera(scene, Pose{}, 64);

    // The raw capture: 30 FPS. The dataset release: every 30th frame.
    auto dense = sceneOrbit(scene, 30 * 12, 20.0f);
    auto sparse = decimate(dense, 30);
    auto dense12 = decimate(dense, 2); // 12-frame 15FPS slice for speed
    dense12.resize(12);
    sparse.resize(12);

    evaluate(scene, *model, cam, sparse,
             "(a) sparse 1 FPS sequence "
             "(paper: 37.8 / 37.2 / 37.0 / 37.4 / 36.6 dB — Cicero "
             "below DS-2)");
    evaluate(scene, *model, cam, dense12,
             "(b) dense video-rate sequence "
             "(paper: 38.2 / 38.1 / 38.1 / 38.0 / 37.6 dB — Cicero "
             "matches DS-2 at ~4x its speed)");
    return 0;
}
