/**
 * @file
 * Render-service bench: aggregate throughput and frame-latency
 * distribution of the multi-session serving layer under synthetic
 * traffic mixes, emitted as one JSON object.
 *
 * Legs:
 *  - solo: every session's trajectory rendered alone through
 *    NerfModel::render (full-pool parallel) — the bit-identity
 *    reference for every serve leg, and a context throughput number.
 *  - serial_unfused: the serving baseline — sessions handled one at a
 *    time, in-flight window 1, decode unfused. This is what a naive
 *    server that serializes clients achieves; the headline gate
 *    compares against it.
 *  - uniform: S identical sessions admitted together for
 *    S in {1,2,4,8,16}, cross-session decode fusion on; reports
 *    p50/p95/p99 frame latency, aggregate rays/s, fusion counters and
 *    scheduler-counter deltas per S.
 *  - low_session: S in {1,2} run twice, intra-frame ray-block fan-out
 *    off vs on (decode fused both ways) — the batching-density story
 *    at low occupancy: fan-out feeds the fusion queue same-frame
 *    blocks, so the decode kernel runs dense even without many
 *    sessions. Gated (multi-core only): fan-out on must be strictly
 *    denser (avg fused batch size) and faster (aggregate rays/s) than
 *    off at both counts, the 2-session fan-out-on leg must reach
 *    >= 1.2x the serial_unfused baseline, and its mean blocks per
 *    kernel pass must exceed 1.
 *  - fp16: the 8-session uniform mix on the fp16-storage model
 *    variant (fusion also amortizes the per-call weight widening).
 *  - bursty: half the sessions admitted immediately, the second wave
 *    admitted only after the first wave's first frames completed.
 *  - heavy_tailed: one elephant session (4x the frames, jittered
 *    trajectory) among mice; reports elephant vs mice p95 latency —
 *    the fair-share check.
 *
 * Exit code gates on (a) every session of every leg bit-identical to
 * its solo render, (b) — only when the pool has >= 2 threads AND
 * the machine has >= 2 hardware cores — aggregate rays/s of the
 * 8-session fused uniform leg >= 1.5x the serial_unfused baseline,
 * and (c) under the same arming, the low_session fan-out gates. On
 * a single-core runner extra software threads only time-slice the one
 * core, so concurrent sessions cannot beat the serial walk and the
 * perf legs are smoke tests there, like the other parallel benches.
 *
 * --quick cuts resolution, frame counts and the session sweep for the
 * CI smoke step; every bit-identity check still runs.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hh"
#include "serve/render_service.hh"

using namespace cicero;
using namespace cicero::bench;

namespace {

using Clock = std::chrono::steady_clock;

double
seconds(Clock::duration d)
{
    return std::chrono::duration<double>(d).count();
}

bool
identical(const Image &a, const Image &b)
{
    if (a.pixelCount() != b.pixelCount())
        return false;
    for (std::size_t i = 0; i < a.pixelCount(); ++i)
        if (a.at(i).x != b.at(i).x || a.at(i).y != b.at(i).y ||
            a.at(i).z != b.at(i).z)
            return false;
    return true;
}

double
percentileMs(std::vector<double> latencies, double p)
{
    if (latencies.empty())
        return 0.0;
    std::sort(latencies.begin(), latencies.end());
    const double rank = p * static_cast<double>(latencies.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, latencies.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return 1e3 *
           (latencies[lo] * (1.0 - frac) + latencies[hi] * frac);
}

/** One client's request in a traffic mix. */
struct ClientSpec
{
    std::vector<Pose> trajectory;
    int width = 0;
    int height = 0;
};

/** Everything one serve leg produced. */
struct LegResult
{
    double wallS = 0.0;
    std::uint64_t rays = 0;
    bool bitIdentical = true;
    std::vector<std::vector<double>> latencyS; //!< per client, per frame
    FusionStats fusion;
    SchedulerCounters sched;
    ServiceCounters service;

    double raysPerS() const { return wallS > 0.0 ? rays / wallS : 0.0; }
    /** Mean samples per fused-queue kernel pass (batch density). */
    double avgBatchSamples() const
    {
        return fusion.passes > 0 ? static_cast<double>(fusion.samples) /
                                       static_cast<double>(fusion.passes)
                                 : 0.0;
    }
    /** Mean ray blocks per fused-queue kernel pass. */
    double avgBatchBlocks() const
    {
        return fusion.passes > 0 ? static_cast<double>(fusion.blocks) /
                                       static_cast<double>(fusion.passes)
                                 : 0.0;
    }
    std::vector<double> allLatencies() const
    {
        std::vector<double> out;
        for (const auto &c : latencyS)
            out.insert(out.end(), c.begin(), c.end());
        return out;
    }
};

/**
 * Run one leg: admit every client per @p admitWave (clients whose wave
 * is 0 immediately; wave-1 clients after every wave-0 client finished
 * its first frame), wait for all, and check each client's frames
 * against @p solo.
 */
LegResult
runLeg(const ModelKey &key, const std::vector<ClientSpec> &clients,
       const std::vector<std::vector<Image>> &solo, bool fuse, int window,
       bool fanOut = true, const std::vector<int> *admitWave = nullptr,
       bool serializeClients = false)
{
    RenderServiceConfig cfg;
    cfg.fuseDecode = fuse;
    cfg.intraFrameFanOut = fanOut;
    cfg.maxSessions = static_cast<int>(clients.size()) + 1;
    RenderService svc(cfg);

    // Pin the model so its (untimed) build happens here, not inside
    // the first admit of the timed region.
    SharedModelCache::Lease pin = svc.cache().acquire(key);

    LegResult leg;
    leg.latencyS.resize(clients.size());
    std::vector<ServeSessionResult> results(clients.size());
    std::vector<int> ids(clients.size(), -1);

    auto sessionConfig = [&](std::size_t i) {
        ServeSessionConfig sc;
        sc.model = key;
        sc.width = clients[i].width;
        sc.height = clients[i].height;
        sc.trajectory = clients[i].trajectory;
        sc.inflightWindow = window;
        return sc;
    };

    const SchedulerCounters base = parallelSchedulerCounters();
    const Clock::time_point t0 = Clock::now();
    if (serializeClients) {
        for (std::size_t i = 0; i < clients.size(); ++i) {
            ids[i] = svc.admit(sessionConfig(i));
            results[i] = svc.wait(ids[i]);
        }
    } else {
        for (std::size_t i = 0; i < clients.size(); ++i)
            if (!admitWave || (*admitWave)[i] == 0)
                ids[i] = svc.admit(sessionConfig(i));
        if (admitWave) {
            for (std::size_t i = 0; i < clients.size(); ++i)
                if ((*admitWave)[i] == 0)
                    svc.waitFrame(ids[i], 0);
            for (std::size_t i = 0; i < clients.size(); ++i)
                if ((*admitWave)[i] != 0)
                    ids[i] = svc.admit(sessionConfig(i));
        }
        for (std::size_t i = 0; i < clients.size(); ++i)
            results[i] = svc.wait(ids[i]);
    }
    leg.wallS = seconds(Clock::now() - t0);
    leg.sched = parallelSchedulerCountersSince(base);
    leg.fusion = svc.cache().fusionStatsTotal();
    leg.service = svc.counters();

    for (std::size_t i = 0; i < clients.size(); ++i) {
        const auto &frames = results[i].frames;
        for (std::size_t f = 0; f < frames.size(); ++f) {
            leg.rays += frames[f].work.rays;
            leg.latencyS[i].push_back(frames[f].latencyS);
            if (!identical(frames[f].image, solo[i][f]))
                leg.bitIdentical = false;
        }
    }
    return leg;
}

void
printFusion(const FusionStats &f)
{
    const double passes =
        f.passes > 0 ? static_cast<double>(f.passes) : 1.0;
    std::printf("\"fusion\": {\"blocks\": %llu, \"samples\": %llu, "
                "\"passes\": %llu, \"fused_passes\": %llu, "
                "\"cross_session_passes\": %llu, "
                "\"avg_batch_samples\": %.2f, "
                "\"avg_batch_blocks\": %.2f, "
                "\"max_batch_samples\": %llu, "
                "\"max_batch_blocks\": %llu, "
                "\"weighted_sessions\": %llu}",
                static_cast<unsigned long long>(f.blocks),
                static_cast<unsigned long long>(f.samples),
                static_cast<unsigned long long>(f.passes),
                static_cast<unsigned long long>(f.fusedPasses),
                static_cast<unsigned long long>(f.crossSessionPasses),
                static_cast<double>(f.samples) / passes,
                static_cast<double>(f.blocks) / passes,
                static_cast<unsigned long long>(f.maxBatchSamples),
                static_cast<unsigned long long>(f.maxBatchBlocks),
                static_cast<unsigned long long>(f.weightedSessions));
}

void
printSched(const SchedulerCounters &c)
{
    std::printf("\"counters\": {\"steals\": %llu, "
                "\"idle_wakeups\": %llu, \"idle_ms\": %.3f, "
                "\"tasks\": %llu, \"dep_tasks\": %llu, "
                "\"dep_stall_ms\": %.3f}",
                static_cast<unsigned long long>(c.steals),
                static_cast<unsigned long long>(c.idleWakeups),
                c.idleNanos * 1e-6,
                static_cast<unsigned long long>(c.tasksExecuted),
                static_cast<unsigned long long>(c.depTasksSubmitted),
                c.depStallNanos * 1e-6);
}

/**
 * Robustness counters: retries/quarantines/shedding from the service,
 * solo-retry fallbacks from the fusion queue, drained tasks from the
 * scheduler. All zero on a healthy leg — the bench asserts nothing
 * about them, it *surfaces* them so a regression that starts tripping
 * the degradation machinery is visible in the JSON.
 */
void
printRobust(const ServiceCounters &s, const FusionStats &f,
            const SchedulerCounters &c)
{
    std::printf("\"robustness\": {\"frame_retries\": %llu, "
                "\"frames_failed\": %llu, \"frames_skipped\": %llu, "
                "\"quarantined_sessions\": %llu, "
                "\"shed_admissions\": %llu, \"deadline_misses\": %llu, "
                "\"split_retries\": %llu, \"failed_blocks\": %llu, "
                "\"tasks_drained\": %llu, \"groups_cancelled\": %llu}",
                static_cast<unsigned long long>(s.frameRetries),
                static_cast<unsigned long long>(s.framesFailed),
                static_cast<unsigned long long>(s.framesSkipped),
                static_cast<unsigned long long>(s.quarantinedSessions),
                static_cast<unsigned long long>(s.shedAdmissions),
                static_cast<unsigned long long>(s.deadlineMisses),
                static_cast<unsigned long long>(f.splitRetries),
                static_cast<unsigned long long>(f.failedBlocks),
                static_cast<unsigned long long>(c.tasksDrained),
                static_cast<unsigned long long>(c.groupsCancelled));
}

void
printLatencies(const std::vector<double> &lat)
{
    std::printf("\"latency_p50_ms\": %.3f, \"latency_p95_ms\": %.3f, "
                "\"latency_p99_ms\": %.3f",
                percentileMs(lat, 0.50), percentileMs(lat, 0.95),
                percentileMs(lat, 0.99));
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    for (int i = 1; i < argc; ++i)
        if (!std::strcmp(argv[i], "--quick"))
            quick = true;

    const int res = quick ? 48 : 64;
    const int frames = quick ? 3 : 6;
    const int window = 2;
    const std::vector<int> sessionCounts =
        quick ? std::vector<int>{1, 8} : std::vector<int>{1, 2, 4, 8, 16};
    const int maxSessions =
        *std::max_element(sessionCounts.begin(), sessionCounts.end());

    ModelKey key;
    key.scene = "lego";
    key.kind = ModelKind::DirectVoxGO;
    key.preset = ModelPreset::Fast;

    banner("serve", "multi-session render service, fused MLP decode");

    const Scene scene = makeScene(key.scene);

    // Every uniform-mix client i gets a stable orbit (startDeg a
    // function of i only), so the solo references computed once for
    // the largest session count serve every leg.
    auto clientOrbit = [&](int i, int numFrames) {
        OrbitParams orbit;
        orbit.radius = scene.cameraDistance;
        orbit.startDeg = static_cast<float>(i) * (360.0f / 17.0f);
        return orbitTrajectory(orbit, numFrames);
    };

    std::vector<ClientSpec> uniform(maxSessions);
    for (int i = 0; i < maxSessions; ++i)
        uniform[i] = ClientSpec{clientOrbit(i, frames), res, res};

    // Heavy-tailed mix: one elephant (4x the frames, hand-jittered
    // path) among mice.
    const int mice = quick ? 3 : 6;
    std::vector<ClientSpec> heavy(1 + mice);
    {
        heavy[0] = ClientSpec{clientOrbit(100, 4 * frames), res, res};
        JitterParams jitter;
        jitter.posSigma = 0.01f;
        jitter.rotSigmaDeg = 0.5f;
        applyJitter(heavy[0].trajectory, jitter);
        for (int i = 0; i < mice; ++i)
            heavy[1 + i] =
                ClientSpec{clientOrbit(200 + i, frames), res, res};
    }

    // ---- solo references (and context throughput) -------------------
    // One shared cache builds each model variant once; references use
    // the full-pool parallel render (the library-call baseline a
    // single client owning the machine would get).
    SharedModelCache refCache;
    auto soloRender = [&](const ModelKey &k,
                          const std::vector<ClientSpec> &clients,
                          double *wallS) {
        SharedModelCache::Lease lease = refCache.acquire(k);
        std::vector<std::vector<Image>> out(clients.size());
        const Clock::time_point t0 = Clock::now();
        for (std::size_t i = 0; i < clients.size(); ++i)
            for (const Pose &pose : clients[i].trajectory) {
                Camera cam =
                    Camera::fromFov(clients[i].width, clients[i].height,
                                    scene.fovYDeg, pose);
                out[i].push_back(lease.model().render(cam).image);
            }
        if (wallS)
            *wallS = seconds(Clock::now() - t0);
        return out;
    };

    double soloWallS = 0.0;
    const std::vector<std::vector<Image>> soloUniform =
        soloRender(key, uniform, &soloWallS);
    std::uint64_t soloRays = 0;
    for (const auto &c : soloUniform)
        soloRays += static_cast<std::uint64_t>(c.size()) * res * res;

    const std::vector<std::vector<Image>> soloHeavy =
        soloRender(key, heavy, nullptr);

    ModelKey fp16Key = key;
    fp16Key.fp16 = true;
    const int fp16Sessions = std::min(8, maxSessions);
    std::vector<ClientSpec> fp16Clients(uniform.begin(),
                                        uniform.begin() + fp16Sessions);
    const std::vector<std::vector<Image>> soloFp16 =
        soloRender(fp16Key, fp16Clients, nullptr);

    // ---- serving legs ----------------------------------------------
    const int gateSessions = std::min(8, maxSessions);
    std::vector<ClientSpec> gateClients(uniform.begin(),
                                        uniform.begin() + gateSessions);
    std::vector<std::vector<Image>> soloGate(
        soloUniform.begin(), soloUniform.begin() + gateSessions);

    const LegResult serialUnfused =
        runLeg(key, gateClients, soloGate, /*fuse=*/false, /*window=*/1,
               /*fanOut=*/false, nullptr, /*serializeClients=*/true);

    std::vector<LegResult> uniformLegs;
    for (int s : sessionCounts) {
        std::vector<ClientSpec> clients(uniform.begin(),
                                        uniform.begin() + s);
        std::vector<std::vector<Image>> solo(soloUniform.begin(),
                                             soloUniform.begin() + s);
        uniformLegs.push_back(
            runLeg(key, clients, solo, /*fuse=*/true, window));
    }

    const LegResult fp16Leg =
        runLeg(fp16Key, fp16Clients, soloFp16, /*fuse=*/true, window);

    std::vector<int> waves(gateClients.size(), 0);
    for (std::size_t i = waves.size() / 2; i < waves.size(); ++i)
        waves[i] = 1;
    const LegResult bursty =
        runLeg(key, gateClients, soloGate, /*fuse=*/true, window,
               /*fanOut=*/true, &waves);

    const LegResult heavyLeg =
        runLeg(key, heavy, soloHeavy, /*fuse=*/true, window);

    // Low-session density legs: fan-out off vs on at 1 and 2 sessions,
    // decode fused both ways — isolates what intra-frame ray-block
    // fan-out buys when cross-session traffic is thin.
    const std::vector<int> lowCounts{1, 2};
    std::vector<LegResult> lowOff, lowOn;
    for (int s : lowCounts) {
        std::vector<ClientSpec> clients(uniform.begin(),
                                        uniform.begin() + s);
        std::vector<std::vector<Image>> solo(soloUniform.begin(),
                                             soloUniform.begin() + s);
        lowOff.push_back(runLeg(key, clients, solo, /*fuse=*/true,
                                window, /*fanOut=*/false));
        lowOn.push_back(runLeg(key, clients, solo, /*fuse=*/true,
                               window, /*fanOut=*/true));
    }

    // ---- verdicts ---------------------------------------------------
    bool allIdentical = serialUnfused.bitIdentical &&
                        fp16Leg.bitIdentical && bursty.bitIdentical &&
                        heavyLeg.bitIdentical;
    for (const LegResult &leg : uniformLegs)
        allIdentical = allIdentical && leg.bitIdentical;
    for (std::size_t i = 0; i < lowCounts.size(); ++i)
        allIdentical = allIdentical && lowOff[i].bitIdentical &&
                       lowOn[i].bitIdentical;

    double gateRaysPerS = 0.0;
    for (std::size_t i = 0; i < sessionCounts.size(); ++i)
        if (sessionCounts[i] == gateSessions)
            gateRaysPerS = uniformLegs[i].raysPerS();
    const double gain = serialUnfused.raysPerS() > 0.0
                            ? gateRaysPerS / serialUnfused.raysPerS()
                            : 0.0;
    // The gain gate asserts a property of parallel hardware: with a
    // single physical core, extra software threads only time-slice it
    // and concurrent sessions cannot beat the serial baseline, so the
    // gate arms only when both the pool and the machine are >= 2 wide.
    const int threads = parallelThreadCount();
    const unsigned hwCores = std::thread::hardware_concurrency();
    const bool gateActive = threads >= 2 && hwCores >= 2;
    const bool gainOk = !gateActive || gain >= 1.5;

    // Fan-out gates (same multi-core arming as the 1.5x gate): at 1
    // and 2 sessions fan-out must strictly raise both the average
    // fused batch size and aggregate rays/s over fan-out off; the
    // 2-session fan-out-on leg must reach 1.2x the serial-unfused
    // baseline; and its fused batches must average > 1 block. The
    // strict on-vs-off comparisons additionally require the pool to
    // have spare threads beyond the off leg's own frame concurrency
    // (sessions x window): with threads <= sessions x window the off
    // leg already saturates the pool via window pipelining, fan-out
    // cannot mechanically add parallelism, and the comparison is a
    // coin flip on scheduler noise.
    bool fanoutDenser = true;
    bool fanoutFaster = true;
    for (std::size_t i = 0; i < lowCounts.size(); ++i) {
        if (threads <= lowCounts[i] * window)
            continue;
        fanoutDenser = fanoutDenser && lowOn[i].avgBatchSamples() >
                                           lowOff[i].avgBatchSamples();
        fanoutFaster =
            fanoutFaster && lowOn[i].raysPerS() > lowOff[i].raysPerS();
    }
    const double fanoutGain2 =
        serialUnfused.raysPerS() > 0.0
            ? lowOn.back().raysPerS() / serialUnfused.raysPerS()
            : 0.0;
    const bool batchDensityOk = lowOn.back().avgBatchBlocks() > 1.0;
    const bool fanoutOk =
        !gateActive || (fanoutDenser && fanoutFaster &&
                        fanoutGain2 >= 1.2 && batchDensityOk);

    // ---- JSON -------------------------------------------------------
    std::printf("{\"bench\": \"serve\", \"scheduler\": \"%s\", "
                "\"threads\": %d, \"quick\": %s, "
                "\"scene\": \"%s\", \"model\": \"%s\", "
                "\"resolution\": %d, \"frames\": %d, \"window\": %d, "
                "\"solo_parallel_rays_per_s\": %.1f, ",
                parallelSchedulerName(), threads,
                quick ? "true" : "false", key.scene.c_str(),
                modelName(key.kind), res, frames, window,
                soloWallS > 0.0 ? soloRays / soloWallS : 0.0);

    std::printf("\"serial_unfused\": {\"sessions\": %d, "
                "\"wall_s\": %.6f, \"rays_per_s\": %.1f, ",
                gateSessions, serialUnfused.wallS,
                serialUnfused.raysPerS());
    printLatencies(serialUnfused.allLatencies());
    std::printf(", \"bit_identical\": %s}, ",
                serialUnfused.bitIdentical ? "true" : "false");

    std::printf("\"uniform\": [");
    for (std::size_t i = 0; i < uniformLegs.size(); ++i) {
        const LegResult &leg = uniformLegs[i];
        std::printf("%s{\"sessions\": %d, \"wall_s\": %.6f, "
                    "\"rays_per_s\": %.1f, ",
                    i ? ", " : "", sessionCounts[i], leg.wallS,
                    leg.raysPerS());
        printLatencies(leg.allLatencies());
        std::printf(", \"bit_identical\": %s, ",
                    leg.bitIdentical ? "true" : "false");
        printFusion(leg.fusion);
        std::printf(", ");
        printSched(leg.sched);
        std::printf(", ");
        printRobust(leg.service, leg.fusion, leg.sched);
        std::printf("}");
    }
    std::printf("], ");

    std::printf("\"fp16\": {\"sessions\": %d, \"wall_s\": %.6f, "
                "\"rays_per_s\": %.1f, ",
                fp16Sessions, fp16Leg.wallS, fp16Leg.raysPerS());
    printLatencies(fp16Leg.allLatencies());
    std::printf(", \"bit_identical\": %s, ",
                fp16Leg.bitIdentical ? "true" : "false");
    printFusion(fp16Leg.fusion);
    std::printf("}, ");

    std::printf("\"bursty\": {\"sessions\": %d, \"waves\": 2, "
                "\"wall_s\": %.6f, \"rays_per_s\": %.1f, ",
                gateSessions, bursty.wallS, bursty.raysPerS());
    printLatencies(bursty.allLatencies());
    std::printf(", \"bit_identical\": %s}, ",
                bursty.bitIdentical ? "true" : "false");

    std::printf("\"low_session\": [");
    for (std::size_t i = 0; i < lowCounts.size(); ++i) {
        std::printf("%s{\"sessions\": %d", i ? ", " : "", lowCounts[i]);
        const char *names[2] = {"fanout_off", "fanout_on"};
        const LegResult *legs[2] = {&lowOff[i], &lowOn[i]};
        for (int v = 0; v < 2; ++v) {
            std::printf(", \"%s\": {\"wall_s\": %.6f, "
                        "\"rays_per_s\": %.1f, ",
                        names[v], legs[v]->wallS, legs[v]->raysPerS());
            printLatencies(legs[v]->allLatencies());
            std::printf(", \"bit_identical\": %s, ",
                        legs[v]->bitIdentical ? "true" : "false");
            printFusion(legs[v]->fusion);
            std::printf("}");
        }
        std::printf("}");
    }
    std::printf("], ");

    std::printf("\"heavy_tailed\": {\"sessions\": %d, "
                "\"elephant_frames\": %d, \"wall_s\": %.6f, "
                "\"rays_per_s\": %.1f, "
                "\"elephant_p95_ms\": %.3f, \"mice_p95_ms\": %.3f, ",
                1 + mice, 4 * frames, heavyLeg.wallS,
                heavyLeg.raysPerS(),
                percentileMs(heavyLeg.latencyS[0], 0.95), [&] {
                    std::vector<double> miceLat;
                    for (std::size_t i = 1; i < heavyLeg.latencyS.size();
                         ++i)
                        miceLat.insert(miceLat.end(),
                                       heavyLeg.latencyS[i].begin(),
                                       heavyLeg.latencyS[i].end());
                    return percentileMs(miceLat, 0.95);
                }());
    printLatencies(heavyLeg.allLatencies());
    std::printf(", \"bit_identical\": %s}, ",
                heavyLeg.bitIdentical ? "true" : "false");

    std::printf("\"aggregate_gain_8_sessions\": %.3f, "
                "\"gain_gate_active\": %s, "
                "\"gain_gate_pass\": %s, "
                "\"fanout_gain_2_sessions\": %.3f, "
                "\"fanout_avg_batch_blocks_2_sessions\": %.2f, "
                "\"batch_density_ok\": %s, "
                "\"fanout_gate_active\": %s, "
                "\"fanout_gate_pass\": %s, "
                "\"all_bit_identical\": %s}\n",
                gain, gateActive ? "true" : "false",
                gainOk ? "true" : "false", fanoutGain2,
                lowOn.back().avgBatchBlocks(),
                batchDensityOk ? "true" : "false",
                gateActive ? "true" : "false",
                fanoutOk ? "true" : "false",
                allIdentical ? "true" : "false");

    return allIdentical && gainOk && fanoutOk ? 0 : 1;
}
