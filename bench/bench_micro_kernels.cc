/**
 * @file
 * Micro-benchmarks (google-benchmark) for the hot kernels of the
 * functional stack: feature gathers per encoding, the decoder MLP,
 * warping, compositing and the memory-model sinks.
 *
 * The JSON context carries a "simd_backend" key (avx2|neon|scalar —
 * the backend the process actually dispatches to, so a
 * CICERO_SIMD=scalar run is labeled scalar) and the batched-kernel
 * benchmarks report samples/s ("items_per_second") plus a GFLOP/s
 * counter, so BENCH trajectories are comparable across machines and
 * backends: run once natively and once under CICERO_SIMD=scalar to get
 * the kernel speedup on a given host.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "cicero/warp.hh"
#include "common/rng.hh"
#include "common/simd.hh"
#include "memory/cache_model.hh"
#include "memory/dram_model.hh"
#include "memory/sram_bank_model.hh"
#include "nerf/dense_grid.hh"
#include "nerf/hash_grid.hh"
#include "nerf/models.hh"
#include "nerf/tensorf.hh"
#include "nerf/volume_renderer.hh"
#include "scene/scene.hh"
#include "scene/trajectory.hh"

namespace {

using namespace cicero;

/** Register the active backend into the benchmark context once. */
[[maybe_unused]] const bool kContextRegistered = [] {
    benchmark::AddCustomContext(
        "simd_backend", simd::backendName(simd::activeBackend()));
    return true;
}();

/** Positions a batched-gather benchmark sweeps. */
const std::vector<Vec3> &
benchPositions()
{
    static const std::vector<Vec3> pos = [] {
        Rng rng(7);
        std::vector<Vec3> p(65536);
        for (Vec3 &v : p)
            v = rng.uniformVec3();
        return p;
    }();
    return pos;
}

/**
 * Run one batched-gather benchmark: samples/s via items_per_second,
 * GFLOP/s from the encoding's own interpolation-op accounting.
 */
void
runGatherBatch(benchmark::State &state, const Encoding &enc)
{
    const std::vector<Vec3> &pos = benchPositions();
    const int n = static_cast<int>(pos.size());
    std::vector<float> out(static_cast<std::size_t>(n) *
                           enc.featureDim());
    for (auto _ : state) {
        enc.gatherFeatureBatch(pos.data(), n, out.data());
        benchmark::DoNotOptimize(out[0]);
    }
    state.SetItemsProcessed(state.iterations() * n);
    state.counters["gflops"] = benchmark::Counter(
        static_cast<double>(state.iterations()) * n *
            static_cast<double>(enc.interpOpsPerSample()) * 1e-9,
        benchmark::Counter::kIsRate);
}

Scene &
benchScene()
{
    static Scene s = makeScene("lego");
    return s;
}

void
BM_DenseGridGather(benchmark::State &state)
{
    static DenseGridEncoding grid = [] {
        DenseGridEncoding g(64);
        g.bake(benchScene().field);
        return g;
    }();
    Rng rng(1);
    float feat[kFeatureDim];
    for (auto _ : state) {
        grid.gatherFeature(rng.uniformVec3(), feat);
        benchmark::DoNotOptimize(feat[0]);
    }
}
BENCHMARK(BM_DenseGridGather);

void
BM_HashGridGather(benchmark::State &state)
{
    static HashGridEncoding grid = [] {
        HashGridEncoding g;
        g.bake(benchScene().field);
        return g;
    }();
    Rng rng(2);
    float feat[kFeatureDim];
    for (auto _ : state) {
        grid.gatherFeature(rng.uniformVec3(), feat);
        benchmark::DoNotOptimize(feat[0]);
    }
}
BENCHMARK(BM_HashGridGather);

void
BM_TensoRFGather(benchmark::State &state)
{
    static TensoRFEncoding enc = [] {
        TensoRFConfig cfg;
        cfg.res = 64;
        TensoRFEncoding e(cfg);
        e.bake(benchScene().field);
        return e;
    }();
    Rng rng(3);
    float feat[kFeatureDim];
    for (auto _ : state) {
        enc.gatherFeature(rng.uniformVec3(), feat);
        benchmark::DoNotOptimize(feat[0]);
    }
}
BENCHMARK(BM_TensoRFGather);

void
BM_DenseGridGatherBatch(benchmark::State &state)
{
    static DenseGridEncoding grid = [] {
        DenseGridEncoding g(64);
        g.bake(benchScene().field);
        return g;
    }();
    runGatherBatch(state, grid);
}
BENCHMARK(BM_DenseGridGatherBatch)->Unit(benchmark::kMillisecond);

void
BM_HashGridGatherBatch(benchmark::State &state)
{
    static HashGridEncoding grid = [] {
        HashGridEncoding g;
        g.bake(benchScene().field);
        return g;
    }();
    runGatherBatch(state, grid);
}
BENCHMARK(BM_HashGridGatherBatch)->Unit(benchmark::kMillisecond);

void
BM_TensoRFGatherBatch(benchmark::State &state)
{
    static TensoRFEncoding enc = [] {
        TensoRFConfig cfg;
        cfg.res = 64;
        TensoRFEncoding e(cfg);
        e.bake(benchScene().field);
        return e;
    }();
    runGatherBatch(state, enc);
}
BENCHMARK(BM_TensoRFGatherBatch)->Unit(benchmark::kMillisecond);

/**
 * The decoder-shaped MLP GEMM at a frame-like batch size — fp32 and
 * fp16 weight storage. 2 FLOPs per MAC.
 */
void
runMlpForwardBatch(benchmark::State &state, bool fp16)
{
    Mlp mlp({kFeatureDim + 3, 16, 16, 4}, 1);
    if (fp16)
        mlp.quantizeWeightsFp16();
    const int count = 16384;
    std::vector<float> in(static_cast<std::size_t>(mlp.inputDim()) *
                          count);
    for (std::size_t i = 0; i < in.size(); ++i)
        in[i] = 0.001f * static_cast<float>(i % 997) - 0.5f;
    std::vector<float> out(static_cast<std::size_t>(mlp.outputDim()) *
                           count);
    for (auto _ : state) {
        mlp.forwardBatch(in.data(), out.data(), count);
        benchmark::DoNotOptimize(out[0]);
    }
    state.SetItemsProcessed(state.iterations() * count);
    state.counters["gflops"] = benchmark::Counter(
        static_cast<double>(state.iterations()) * count * 2.0 *
            static_cast<double>(mlp.macsPerInference()) * 1e-9,
        benchmark::Counter::kIsRate);
}

void
BM_MlpForwardBatch(benchmark::State &state)
{
    runMlpForwardBatch(state, /*fp16=*/false);
}
BENCHMARK(BM_MlpForwardBatch)->Unit(benchmark::kMillisecond);

void
BM_MlpForwardBatchFp16(benchmark::State &state)
{
    runMlpForwardBatch(state, /*fp16=*/true);
}
BENCHMARK(BM_MlpForwardBatchFp16)->Unit(benchmark::kMillisecond);

void
BM_DecoderDecode(benchmark::State &state)
{
    Decoder dec({0.4f, 0.8f, 0.45f});
    BakedPoint pt;
    pt.sigma = 25.0f;
    pt.diffuse = {0.6f, 0.4f, 0.3f};
    pt.specular = 0.4f;
    float feat[kFeatureDim];
    encodeBakedPoint(pt, feat);
    Vec3 view = Vec3{0.1f, -0.5f, -1.0f}.normalized();
    for (auto _ : state) {
        DecodedSample s = dec.decode(feat, view);
        benchmark::DoNotOptimize(s.rgb.x);
    }
}
BENCHMARK(BM_DecoderDecode);

void
BM_Compositor(benchmark::State &state)
{
    for (auto _ : state) {
        Compositor c;
        for (int i = 0; i < 64; ++i)
            if (!c.add(4.0f, {0.5f, 0.5f, 0.5f}, 1.0f + i * 0.01f,
                       0.01f))
                break;
        CompositeResult r = c.finish({1.0f, 1.0f, 1.0f});
        benchmark::DoNotOptimize(r.rgb.x);
    }
}
BENCHMARK(BM_Compositor);

void
BM_WarpFrame(benchmark::State &state)
{
    static auto setup = [] {
        Scene scene = benchScene();
        SamplerConfig cfg;
        cfg.stepsAcross = 96;
        cfg.occupancyRes = 32;
        auto model = std::make_unique<NerfModel>(
            scene, std::make_unique<DenseGridEncoding>(48), 4096, cfg);
        OrbitParams orbit;
        orbit.radius = scene.cameraDistance;
        auto traj = orbitTrajectory(orbit, 2);
        Camera ref = Camera::fromFov(96, 96, scene.fovYDeg, traj[0]);
        Camera tgt = ref;
        tgt.pose = traj[1];
        RenderResult r = model->render(ref);
        return std::make_tuple(std::move(model), ref, tgt,
                               std::move(r));
    }();
    auto &[model, ref, tgt, r] = setup;
    for (auto _ : state) {
        WarpOutput w =
            warpFrame(r.image, r.depth, ref, tgt, &model->occupancy(),
                      Vec3{1.0f, 1.0f, 1.0f});
        benchmark::DoNotOptimize(w.stats.warped);
    }
}
BENCHMARK(BM_WarpFrame)->Unit(benchmark::kMicrosecond);

void
BM_LruCacheSink(benchmark::State &state)
{
    Rng rng(4);
    std::vector<MemAccess> trace;
    for (int i = 0; i < 4096; ++i)
        trace.push_back(MemAccess{rng.uniformInt(1u << 24), 18, 0});
    for (auto _ : state) {
        LruCache cache;
        for (const auto &a : trace)
            cache.onAccess(a);
        benchmark::DoNotOptimize(cache.stats().misses);
    }
}
BENCHMARK(BM_LruCacheSink)->Unit(benchmark::kMicrosecond);

void
BM_DramSink(benchmark::State &state)
{
    Rng rng(5);
    std::vector<MemAccess> trace;
    for (int i = 0; i < 4096; ++i)
        trace.push_back(MemAccess{rng.uniformInt(1u << 24), 18, 0});
    for (auto _ : state) {
        DramModel dram;
        for (const auto &a : trace)
            dram.onAccess(a);
        benchmark::DoNotOptimize(dram.stats().randomAccesses);
    }
}
BENCHMARK(BM_DramSink)->Unit(benchmark::kMicrosecond);

void
BM_BankConflictSim(benchmark::State &state)
{
    Rng rng(6);
    for (auto _ : state) {
        BankConflictSim sim;
        for (std::uint32_t ray = 0; ray < 64; ++ray) {
            for (int i = 0; i < 32; ++i)
                sim.onAccess(
                    MemAccess{rng.uniformInt(1u << 16) * 32, 32, ray});
            sim.onRayEnd(ray);
        }
        sim.onFlush();
        benchmark::DoNotOptimize(sim.stats().stalls);
    }
}
BENCHMARK(BM_BankConflictSim)->Unit(benchmark::kMicrosecond);

} // namespace
