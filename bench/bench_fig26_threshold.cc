/**
 * @file
 * Fig. 26 reproduction: the warping-threshold heuristic ϕ on the
 * challenging 1 FPS Ignatius sequence. Lowering ϕ re-renders more
 * pixels: quality rises toward the baseline while the speedup falls.
 * The paper picks ϕ = 4°: quality within 0.1 dB at 4.3x speedup.
 */

#include "bench_util.hh"

using namespace cicero;
using namespace cicero::bench;

int
main()
{
    banner("Fig. 26", "warping threshold ϕ on the 1 FPS sequence");

    Scene scene = makeScene("ignatius");
    PerformanceModel pm;

    for (ModelKind kind : mainModelKinds()) {
        auto model = fullModel(kind, scene);
        auto dense = sceneOrbit(scene, 30 * 10, 20.0f);
        auto traj = decimate(dense, 30);
        Camera cam = qualityCamera(scene, Pose{}, 56);

        std::vector<Image> gt;
        for (const Pose &pose : traj) {
            Camera c = cam;
            c.pose = pose;
            gt.push_back(renderGroundTruth(scene, c, 224).image);
        }
        WorkloadInputs in =
            probeWorkload(*model, traj, probeOptions(16));
        FramePrice base = pm.priceLocal(SystemVariant::Baseline, in);

        Table table({"phi deg", "PSNR dB", "rerender %", "speedup x"});
        for (float phi : {1.0f, 2.0f, 4.0f, 8.0f, 16.0f, 180.0f}) {
            SparwConfig cfg;
            cfg.window = 16;
            cfg.dtSeconds = 1.0f;
            cfg.warp.maxAngleDeg = phi;
            SparwPipeline pipe(*model, cam, cfg);
            SparwRun run = pipe.run(traj);

            Summary q;
            for (std::size_t i = 0; i < traj.size(); ++i)
                q.add(std::min(60.0, psnr(run.frames[i].image, gt[i])));

            // Price with the measured sparse fraction under this ϕ.
            WorkloadInputs sized = in;
            double frac = run.meanRerender();
            sized.sparsePerFrame = in.fullFrame.scaled(frac);
            sized.sparseStreamPlan.ritEntries =
                static_cast<std::uint64_t>(
                    in.fullStreamPlan.ritEntries * frac);
            double speed =
                base.timeMs /
                pm.priceLocal(SystemVariant::Cicero, sized).timeMs;

            table.row()
                .cell(phi, 0)
                .cell(q.mean(), 2)
                .cell(100.0 * frac, 1)
                .cell(speed, 1);
        }
        std::printf("\n%s\n", modelName(kind));
        table.print();
    }
    std::printf("\npaper: at ϕ=4° quality is within 0.1 dB of baseline "
                "at 4.3x speedup; larger ϕ trades quality for speed.\n");
    return 0;
}
