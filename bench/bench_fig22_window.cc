/**
 * @file
 * Fig. 22 reproduction: sensitivity of CICERO's speedup and quality to
 * the warping window, in both scenarios, on Instant-NGP.
 *
 * Paper: quality decreases gradually with the window but stays above
 * DS-2 through window 21; local speedup plateaus and dips past window
 * ~26 as disocclusions grow; remote speedup rises nearly linearly until
 * ~16, where on-device work stops being hidden.
 */

#include "bench_util.hh"

using namespace cicero;
using namespace cicero::bench;

int
main()
{
    banner("Fig. 22", "warping-window sensitivity (Instant-NGP)");

    Scene scene = makeScene("lego");
    auto model = fullModel(ModelKind::InstantNgp, scene);
    auto traj = sceneOrbit(scene, 33);
    Camera cam = qualityCamera(scene, traj[0], 64);
    PerformanceModel pm;

    // Ground truth once.
    std::vector<Image> gt;
    for (const Pose &pose : traj) {
        Camera c = cam;
        c.pose = pose;
        gt.push_back(renderGroundTruth(scene, c, 256).image);
    }
    auto meanPsnr = [&](const SparwRun &run) {
        Summary s;
        for (std::size_t i = 0; i < traj.size(); ++i)
            s.add(std::min(60.0, psnr(run.frames[i].image, gt[i])));
        return s.mean();
    };

    // DS-2 quality line (the red dashed line in the figure).
    SparwConfig dsCfg;
    SparwPipeline dsPipe(*model, cam, dsCfg);
    double ds2Psnr = meanPsnr(dsPipe.runDownsampled(traj, 2));

    FramePrice baseLocal, baseRemote;
    {
        WorkloadInputs in = probeWorkload(*model, traj, probeOptions(16));
        baseLocal = pm.priceLocal(SystemVariant::Baseline, in);
        baseRemote = pm.priceRemote(SystemVariant::Baseline, in);
    }

    Table table({"window", "PSNR dB", "local x", "remote x",
                 "rerender %"});
    for (int window : {1, 6, 11, 16, 21, 26, 31}) {
        SparwConfig cfg;
        cfg.window = window;
        SparwPipeline pipe(*model, cam, cfg);
        SparwRun run = pipe.run(traj);

        WorkloadInputs in =
            probeWorkload(*model, traj, probeOptions(window));
        double local =
            baseLocal.timeMs /
            pm.priceLocal(SystemVariant::Cicero, in).timeMs;
        double remote =
            baseRemote.timeMs /
            pm.priceRemote(SystemVariant::Cicero, in).timeMs;
        table.row()
            .cell(window)
            .cell(meanPsnr(run), 2)
            .cell(local, 1)
            .cell(remote, 1)
            .cell(100.0 * run.meanRerender(), 2);
    }
    table.print();
    std::printf("\nDS-2 quality line: %.2f dB. Paper: quality falls "
                "slowly with window (still above DS-2 at 21); local "
                "speedup plateaus as sparse work grows; remote speedup "
                "climbs until the on-device time stops hiding (~16).\n",
                ds2Psnr);
    return 0;
}
