/**
 * @file
 * Fig. 17 reproduction: speedup and energy saving of a *pure software*
 * Cicero (SPARW + fully-streaming rendering, no GU hardware) running
 * entirely on the mobile GPU, against the DS-2 baseline. The paper
 * reports 8.0x speedup / 7.9x energy for Cicero-16 vs 4.0x for DS-2.
 */

#include "bench_util.hh"

using namespace cicero;
using namespace cicero::bench;

namespace {

/** All-GPU frame time (I+G+F on the GPU; no NPU). */
double
gpuFrameMs(const GpuModel &gpu, const WorkloadInputs &in)
{
    return gpu.timeNerfFrame(in.fullFrame, in.gatherProfile).totalMs();
}

/** All-GPU reference frame with software fully-streaming gathering. */
double
gpuFsRefMs(const GpuModel &gpu, const WorkloadInputs &in)
{
    GpuStageTimes t =
        gpu.timeNerfFrame(in.fullFrame, in.gatherProfile);
    const StreamPlan &plan = in.fullStreamPlan;
    double streamMs = plan.streamedBytes /
                      (gpu.config().dram.bandwidthGBs * 1e9) * 1e3;
    double issueMs = plan.ritEntries * 8.0 /
                     (0.4 * gpu.config().fetchIssueRate) * 1e3;
    return t.indexMs + std::max(streamMs, issueMs) + t.mlpMs +
           t.compositeMs;
}

double
gpuSparseMs(const GpuModel &gpu, const WorkloadInputs &in)
{
    return gpu.timeNerfFrame(in.sparsePerFrame, in.gatherProfile)
               .totalMs() *
           gpu.config().sparseDispatchOverhead;
}

} // namespace

int
main()
{
    banner("Fig. 17", "software-only Cicero on the GPU vs DS-2");

    Scene scene = makeScene("lego");
    GpuModel gpu;

    Table table({"model", "Cicero-6 x", "Cicero-16 x", "DS-2 x",
                 "E-save c16 x"});
    Summary s16;
    for (ModelKind kind : mainModelKinds()) {
        auto model = fullModel(kind, scene);
        auto traj = sceneOrbit(scene, 18);
        WorkloadInputs in = probeWorkload(*model, traj, probeOptions());

        double base = gpuFrameMs(gpu, in);
        double refFs = gpuFsRefMs(gpu, in);
        double sparse = gpuSparseMs(gpu, in);
        double warp = gpu.warpTimeMs(in.warpPointsPerFrame * 2);

        auto ciceroMs = [&](int window) {
            return refFs / window + sparse + warp;
        };
        double c6 = base / ciceroMs(6);
        double c16 = base / ciceroMs(16);
        // DS-2: every frame at quarter resolution.
        double ds2 = base / (base / 4.0);
        // GPU energy tracks busy time.
        double e16 = c16;
        s16.add(c16);
        table.row()
            .cell(modelName(kind))
            .cell(c6, 1)
            .cell(c16, 1)
            .cell(ds2, 1)
            .cell(e16, 1);
    }
    table.print();
    std::printf("\nmean Cicero-16 speedup: %.1fx (paper: 8.0x speedup, "
                "7.9x energy; DS-2: 4.0x). Energy follows busy time on "
                "the GPU, as in the paper.\n",
                s16.mean());
    return 0;
}
