/**
 * @file
 * Self-gating bench for the replay-driven DSE subsystem. Builds a tiny
 * corpus (capture + manifest), then enforces the subsystem's two
 * identity contracts and exits nonzero if either fails:
 *
 *  1. replay-vs-live: every accelerator stack (GPU, NPU, GU,
 *     NeuRex/NGPC baselines) produces bit-identical stats JSON whether
 *     fed the live render stream or the persisted trace.
 *  2. parallel-vs-serial: a pool-sharded sweep emits byte-identical
 *     result JSON to a serial run of the same grid.
 *
 * The final line is a machine-readable JSON summary for CI.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench_util.hh"
#include "dse/corpus.hh"
#include "dse/driver.hh"

using namespace cicero;
using namespace cicero::bench;

namespace {

/** Capture one orbit frame into @p path with its workload summary. */
void
captureFrame(const NerfModel &model, const Scene &scene,
             const Camera &cam, const std::string &path)
{
    TraceFileMeta meta;
    meta.scene = scene.name;
    meta.encoding = model.encoding().name();
    meta.model = "dvgo";
    meta.width = cam.width;
    meta.height = cam.height;
    meta.threads = static_cast<std::uint32_t>(parallelThreadCount());
    meta.featureBytes = static_cast<std::uint32_t>(
        model.encoding().featureDim() * kBytesPerChannel);
    meta.storageMode = model.encoding().featuresFp16()
                           ? TraceStorageMode::Fp16
                           : TraceStorageMode::Fp32;

    TraceFileWriter writer(path, meta);
    TraceWorkloadDescriptor desc;
    desc.work = model.traceWorkload(cam, &writer);
    desc.plan = model.encoding().streamingFootprint(
        model.collectSamplePositions(cam));
    desc.vertexBytes = meta.featureBytes;
    writer.setWorkloadSummary(toSummary(desc));
    writer.close();
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;

    banner("DSE", "replay-driven design-space exploration gates");

    const int frames = quick ? 1 : 2;
    const int res = 32;

    char dirTemplate[] = "/tmp/cicero_dse_XXXXXX";
    const char *dir = mkdtemp(dirTemplate);
    if (!dir) {
        std::fprintf(stderr, "bench_dse: mkdtemp failed\n");
        return 1;
    }

    Scene scene = makeScene("lego");
    ModelBuildOptions opts;
    opts.preset = ModelPreset::Fast;
    auto model = buildModel(ModelKind::DirectVoxGO, scene, opts);
    model->encoding().quantizeFeaturesFp16();
    auto traj = sceneOrbit(scene, frames);

    dse::Corpus corpus(dir);
    std::vector<Camera> cams;
    for (int f = 0; f < frames; ++f) {
        Camera cam = Camera::fromFov(res, res, scene.fovYDeg, traj[f]);
        cams.push_back(cam);
        dse::CorpusEntry entry;
        entry.id = "lego_dvgo_" + std::to_string(res) + "_f" +
                   std::to_string(f);
        entry.file = entry.id + ".ctrace";
        entry.scene = scene.name;
        entry.model = "dvgo";
        entry.encoding = model->encoding().name();
        entry.res = static_cast<std::uint32_t>(res);
        entry.frame = static_cast<std::uint32_t>(f);
        entry.fp16 = true;
        captureFrame(*model, scene, cam, corpus.tracePath(entry));
        corpus.add(std::move(entry));
    }
    corpus.save();

    // Gate 1: replayed accelerator stats bit-identical to live.
    TraceFileReader reader(corpus.tracePath(corpus.entries().front()));
    TraceWorkloadDescriptor live = measureWorkload(*model, cams[0]);
    TraceWorkloadDescriptor replayed = workloadFromTrace(reader);
    TraceSourceFn liveSrc = liveSource(*model, cams[0]);
    TraceSourceFn fileSrc = fileSource(reader);

    struct Gate
    {
        const char *name;
        std::string liveJson;
        std::string replayJson;
    };
    Gate gates[] = {
        {"gpu", statsJson(runGpuStack(liveSrc, live)),
         statsJson(runGpuStack(fileSrc, replayed))},
        {"npu", statsJson(runNpuStack(liveSrc, live)),
         statsJson(runNpuStack(fileSrc, replayed))},
        {"gu", statsJson(runGuStack(liveSrc, live)),
         statsJson(runGuStack(fileSrc, replayed))},
        {"baselines", statsJson(runBaselineStack(liveSrc, live)),
         statsJson(runBaselineStack(fileSrc, replayed))},
    };
    bool replayMatchesLive = true;
    for (const Gate &g : gates) {
        bool same = g.liveJson == g.replayJson;
        replayMatchesLive = replayMatchesLive && same;
        std::printf("  %-10s replay==live: %s\n", g.name,
                    same ? "yes" : "NO");
        if (!same)
            std::printf("    live:   %s\n    replay: %s\n",
                        g.liveJson.c_str(), g.replayJson.c_str());
    }

    // Gate 2: pool-sharded sweep byte-identical to serial, on a
    // 2 x 2 x 2 grid. Pin 4 workers so the sharded path really runs
    // multi-threaded even on small CI machines.
    setParallelThreadCount(4);
    dse::SweepAxes axes;
    axes.cacheMb = {1.0, 2.0};
    axes.guVftKb = {32, 64};
    axes.dramGBs = {12.8, 25.6};
    dse::DseDriver driver(axes);
    dse::DseResult parallelRun = driver.run(corpus, true);
    dse::DseResult serialRun = driver.run(corpus, false);
    bool parallelMatchesSerial =
        parallelRun.json() == serialRun.json();
    std::printf("  sweep %zu x %zu parallel==serial: %s (threads=%d)\n",
                parallelRun.traceCount, parallelRun.configCount,
                parallelMatchesSerial ? "yes" : "NO",
                parallelThreadCount());
    setParallelThreadCount(0);

    std::size_t frontier = 0;
    for (const auto &s : parallelRun.summaries)
        frontier += s.pareto ? 1 : 0;
    std::printf("  pareto frontier: %zu of %zu configs\n", frontier,
                parallelRun.configCount);

    // Clean up the temp corpus.
    for (const auto &entry : corpus.entries())
        std::remove(corpus.tracePath(entry).c_str());
    std::remove((std::string(dir) + "/corpus.json").c_str());
    std::remove(dir);

    std::printf("{\"bench\": \"dse\", \"traces\": %zu, \"configs\": %zu, "
                "\"pareto\": %zu, \"replay_matches_live\": %s, "
                "\"parallel_matches_serial\": %s}\n",
                parallelRun.traceCount, parallelRun.configCount,
                frontier, replayMatchesLive ? "true" : "false",
                parallelMatchesSerial ? "true" : "false");
    return (replayMatchesLive && parallelMatchesSerial) ? 0 : 1;
}
