/**
 * @file
 * Ablations of Cicero's design choices (DESIGN.md):
 *
 *  A. Reference pose selection — extrapolated off-trajectory (Cicero)
 *     vs holding the last known pose vs oracle mid-window pose: how
 *     close extrapolation gets to the oracle in disocclusion terms.
 *  B. MVoxel size — RIT entries and boundary (partial-interpolation)
 *     entries vs MVoxel edge: why 8^3-vertex chunks are a good point.
 *  C. Warp-interleaving width — how GPU thread-level parallelism
 *     destroys DRAM locality (the assumption behind Fig. 4's numbers).
 */

#include "bench_util.hh"
#include "cicero/pose_extrapolation.hh"
#include "memory/dram_model.hh"

using namespace cicero;
using namespace cicero::bench;

namespace {

void
ablationReferencePose()
{
    std::printf("\n[A] reference pose selection (window 8, 30 FPS)\n");
    Scene scene = makeScene("lego");
    auto model = buildModel(ModelKind::DirectVoxGO, scene);
    auto traj = sceneOrbit(scene, 16);
    const int window = 8;
    const int k = 8; // second window start

    Camera cam = qualityCamera(scene, traj[0], 72);

    Pose extrapolated = extrapolateReferencePose(
        traj[k - 2], traj[k - 1], 1.0f / 30.0f, window);
    Pose held = traj[k - 1];
    Pose oracle = traj[k + window / 2];

    Table table(
        {"reference", "mean rerender %", "mean overlap %"});
    for (auto [name, pose] :
         {std::pair<const char *, Pose>{"extrapolated (Cicero)",
                                        extrapolated},
          {"hold last pose", held},
          {"oracle mid-window", oracle}}) {
        Camera ref = cam;
        ref.pose = pose;
        RenderResult r = model->render(ref);
        Summary rerender, overlap;
        for (int i = k; i < k + window; ++i) {
            Camera tgt = cam;
            tgt.pose = traj[i];
            WarpOutput w =
                warpFrame(r.image, r.depth, ref, tgt,
                          &model->occupancy(), scene.background);
            rerender.add(100.0 * w.stats.rerenderFraction());
            overlap.add(100.0 * (1.0 - w.stats.rerenderFraction()));
        }
        table.row().cell(name).cell(rerender.mean(), 2).cell(
            overlap.mean(), 1);
    }
    table.print();
    std::printf("at video rate the pose choices are nearly equivalent "
                "in disocclusion terms (smooth orbit, small window "
                "drift) — extrapolation's real payoff is scheduling: "
                "only off-trajectory references let reference and "
                "target rendering overlap (Fig. 11b), regardless of "
                "these fractions.\n");
}

void
ablationMVoxelSize()
{
    std::printf("\n[B] MVoxel size vs RIT overhead (DirectVoxGO)\n");
    Scene scene = makeScene("lego");
    ModelBuildOptions opts;
    opts.preset = ModelPreset::Full;
    opts.gridLayout = GridLayout::MVoxelBlocked;
    auto model = buildModel(ModelKind::DirectVoxGO, scene, opts);
    Camera cam = Camera::fromFov(64, 64, scene.fovYDeg,
                                 sceneOrbit(scene, 1)[0]);
    auto positions = model->collectSamplePositions(cam);
    auto *grid =
        dynamic_cast<const DenseGridEncoding *>(&model->encoding());

    Table table({"edge (verts)", "chunk KB", "RIT entries",
                 "partial %", "streamed MB"});
    for (int edge : {2, 4, 8, 16, 32}) {
        DenseGridEncoding layout(grid->voxelsPerAxis(),
                                 GridLayout::MVoxelBlocked, edge);
        StreamPlan plan = layout.streamingFootprint(positions);
        double partial =
            100.0 * (static_cast<double>(plan.ritEntries) -
                     positions.size()) /
            plan.ritEntries;
        table.row()
            .cell(edge)
            .cell(layout.mvoxelBytes() / 1024.0, 1)
            .cell(plan.ritEntries)
            .cell(partial, 1)
            .cell(plan.streamedBytes / 1048576.0, 1);
    }
    table.print();
    std::printf("small chunks multiply partial (boundary) entries; big "
                "chunks waste streamed bytes on untouched vertices and "
                "stop fitting the VFT. 8^3 (the paper's choice) sits in "
                "the efficient middle.\n");
}

void
ablationInterleave()
{
    std::printf("\n[C] GPU thread interleaving vs DRAM locality\n");
    Scene scene = makeScene("lego");
    ModelBuildOptions opts;
    opts.preset = ModelPreset::Full;
    auto model = buildModel(ModelKind::DirectVoxGO, scene, opts);
    Camera cam = Camera::fromFov(48, 48, scene.fovYDeg,
                                 sceneOrbit(scene, 1)[0]);

    Table table({"concurrent rays", "non-streaming %"});
    for (std::uint32_t ways : {1u, 4u, 16u, 64u, 256u}) {
        DramModel dram;
        WarpInterleaver interleaver(ways);
        interleaver.addSink(&dram);
        model->traceWorkload(cam, &interleaver);
        table.row().cell(std::uint64_t{ways}).cell(
            100.0 * dram.stats().nonStreamingFraction(), 1);
    }
    table.print();
    std::printf("a single in-order ray stream looks deceptively "
                "streaming; realistic thread counts destroy the "
                "locality, which is what Fig. 4 measures on silicon.\n");
}

} // namespace

int
main()
{
    banner("Ablations", "design-choice studies");
    ablationReferencePose();
    ablationMVoxelSize();
    ablationInterleave();
    return 0;
}
