/**
 * @file
 * Fig. 7 reproduction: fraction of target-frame pixels covered by
 * warping a temporally adjacent reference frame, per Synthetic-NeRF
 * stand-in scene. The paper reports > 98% overlap (std 1.7%) at video
 * rate, i.e. < 2% of pixels require re-rendering; real-world scenes
 * show 4.3-4.9% non-warpable pixels.
 */

#include "bench_util.hh"

using namespace cicero;
using namespace cicero::bench;

int
main()
{
    banner("Fig. 7", "inter-frame overlap across scenes (30 FPS)");

    Table table({"scene", "reusable %", "re-render %", "void %"});
    Summary overlap;
    auto evalScene = [&](const std::string &name) {
        Scene scene = makeScene(name);
        auto model = buildModel(ModelKind::DirectVoxGO, scene);
        auto traj = sceneOrbit(scene, 2);
        Camera ref = qualityCamera(scene, traj[0], 96);
        Camera tgt = ref;
        tgt.pose = traj[1];
        RenderResult r = model->render(ref);
        WarpOutput w = warpFrame(r.image, r.depth, ref, tgt,
                                 &model->occupancy(), scene.background);
        // "Overlap" in the paper's sense: pixels that need no NeRF
        // rendering (warped + void).
        double reuse = 100.0 * (1.0 - w.stats.rerenderFraction());
        overlap.add(reuse);
        table.row()
            .cell(name)
            .cell(reuse, 1)
            .cell(100.0 * w.stats.rerenderFraction(), 2)
            .cell(100.0 * w.stats.voidHoles / w.stats.totalPixels, 1);
    };

    for (const auto &name : syntheticSceneNames())
        evalScene(name);
    table.print();
    std::printf("\nsynthetic mean reusable: %.1f%% (std %.1f) — paper: "
                ">98%% (std 1.7%%)\n\n",
                overlap.mean(), overlap.stddev());

    Table rw({"scene", "reusable %", "re-render %", "paper re-render"});
    for (const auto &name : realWorldSceneNames()) {
        Scene scene = makeScene(name);
        auto model = buildModel(ModelKind::DirectVoxGO, scene);
        auto traj = sceneOrbit(scene, 2);
        Camera ref = qualityCamera(scene, traj[0], 96);
        Camera tgt = ref;
        tgt.pose = traj[1];
        RenderResult r = model->render(ref);
        WarpOutput w = warpFrame(r.image, r.depth, ref, tgt,
                                 &model->occupancy(), scene.background);
        rw.row()
            .cell(name)
            .cell(100.0 * (1.0 - w.stats.rerenderFraction()), 1)
            .cell(100.0 * w.stats.rerenderFraction(), 2)
            .cell(name == "bonsai" ? "4.3%" : "4.9%");
    }
    rw.print();
    return 0;
}
