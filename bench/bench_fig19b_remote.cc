/**
 * @file
 * Fig. 19b reproduction: the remote-rendering scenario — reference
 * frames rendered on a tethered 2080 Ti-class workstation over a
 * 10 MB/s, 100 nJ/B wireless link; target frames locally.
 *
 * Paper: SPARW 3.1x, SPARW+FS 3.8x, CICERO 8.0x speedup over the
 * fully-offloaded baseline; the baseline is the most device-energy
 * efficient (it only pays wireless reception).
 */

#include "bench_util.hh"

using namespace cicero;
using namespace cicero::bench;

int
main()
{
    banner("Fig. 19b", "remote rendering: speedup & energy vs baseline");

    Scene scene = makeScene("lego");
    PerformanceModel pm;

    Table table({"model", "variant", "ms/frame", "speedup x",
                 "device mJ", "comm ms"});
    Summary ciceroSpeed;
    for (ModelKind kind : mainModelKinds()) {
        auto model = fullModel(kind, scene);
        auto traj = sceneOrbit(scene, 18);
        WorkloadInputs in = probeWorkload(*model, traj, probeOptions(16));

        FramePrice base = pm.priceRemote(SystemVariant::Baseline, in);
        for (SystemVariant v :
             {SystemVariant::Baseline, SystemVariant::Sparw,
              SystemVariant::SparwFs, SystemVariant::Cicero}) {
            FramePrice p = pm.priceRemote(v, in);
            double speed = base.timeMs / p.timeMs;
            if (v == SystemVariant::Cicero)
                ciceroSpeed.add(speed);
            table.row()
                .cell(modelName(kind))
                .cell(variantName(v))
                .cell(p.timeMs, 1)
                .cell(speed, 1)
                .cell(p.energyNj * 1e-6, 1)
                .cell(p.otherMs, 2);
        }
    }
    table.print();
    std::printf("\nmean CICERO remote speedup: %.1fx (paper: 8.0x; "
                "SPARW 3.1x, +FS 3.8x). Note the baseline's device "
                "energy is wireless reception only — the paper's "
                "observation that full offload wins on energy.\n",
                ciceroSpeed.mean());
    return 0;
}
