/**
 * @file
 * Fig. 24 reproduction: Cicero vs the prior Instant-NGP accelerators
 * NeuRex (ISCA'23) and NGPC (ISCA'23), all normalized to the mobile
 * GPU baseline.
 *
 * Paper: Cicero without SPARW is ~2.0x faster than NeuRex (bank
 * conflicts removed) and on par with NGPC (which needs an unrealistic
 * 16 MB on-chip buffer where Cicero streams with 32 KB); with SPARW,
 * Cicero reaches 16.4x / 8.2x over NeuRex / NGPC.
 */

#include "accel/baseline_accels.hh"
#include "bench_util.hh"

using namespace cicero;
using namespace cicero::bench;

int
main()
{
    banner("Fig. 24", "Cicero vs NeuRex vs NGPC on Instant-NGP");

    Scene scene = makeScene("lego");
    auto model = fullModel(ModelKind::InstantNgp, scene);
    auto traj = sceneOrbit(scene, 18);
    WorkloadInputs in = probeWorkload(*model, traj, probeOptions(16));

    PerformanceModel pm;
    GpuModel gpu;
    double gpuMs =
        gpu.timeNerfFrame(in.fullFrame, in.gatherProfile).totalMs();

    NeurexModel neurex;
    NgpcModel ngpc;
    double neurexMs =
        neurex.price(in.fullFrame, in.bankConflictRate).timeMs;
    double ngpcMs = ngpc.price(in.fullFrame).timeMs;
    double ciceroNoSparwMs =
        pm.priceFullFrame(SystemVariant::Cicero, in).timeMs;
    double ciceroMs = pm.priceLocal(SystemVariant::Cicero, in).timeMs;

    Table table({"design", "ms/frame", "vs GPU x", "on-chip buffer"});
    table.row().cell("GPU baseline").cell(gpuMs, 1).cell(1.0, 1).cell(
        "2 MB cache");
    table.row()
        .cell("NeuRex")
        .cell(neurexMs, 1)
        .cell(gpuMs / neurexMs, 1)
        .cell("64 KB");
    table.row()
        .cell("NGPC")
        .cell(ngpcMs, 1)
        .cell(gpuMs / ngpcMs, 1)
        .cell("16 MB");
    table.row()
        .cell("Cicero w/o SPARW")
        .cell(ciceroNoSparwMs, 1)
        .cell(gpuMs / ciceroNoSparwMs, 1)
        .cell("32 KB VFT");
    table.row()
        .cell("Cicero-16")
        .cell(ciceroMs, 1)
        .cell(gpuMs / ciceroMs, 1)
        .cell("32 KB VFT");
    table.print();

    std::printf("\nratios: Cicero w/o SPARW vs NeuRex %.1fx (paper "
                "2.0x); vs NGPC %.1fx (paper ~1x); Cicero-16 vs NeuRex "
                "%.1fx (paper 16.4x), vs NGPC %.1fx (paper 8.2x).\n",
                neurexMs / ciceroNoSparwMs, ngpcMs / ciceroNoSparwMs,
                neurexMs / ciceroMs, ngpcMs / ciceroMs);
    return 0;
}
