/**
 * @file
 * Fig. 20 reproduction: Feature Gathering in isolation — the Gathering
 * Unit vs GPU execution. The paper reports a 72.2x average speedup
 * (182.4x on Instant-NGP, whose hash lookups conflict worst) and that
 * the GU contributes ~99.9% of the gathering energy reduction.
 */

#include "bench_util.hh"

using namespace cicero;
using namespace cicero::bench;

int
main()
{
    banner("Fig. 20", "feature gathering: GU vs GPU");

    Scene scene = makeScene("lego");
    PerformanceModel pm;

    Table table({"model", "GPU ms", "GU ms", "speedup x", "GPU mJ",
                 "GU mJ", "E-save x"});
    Summary speed, esave;
    for (ModelKind kind : allModelKinds()) {
        auto model = fullModel(kind, scene);
        auto traj = sceneOrbit(scene, 4);
        WorkloadInputs in = probeWorkload(*model, traj, probeOptions());
        auto g = pm.priceGatherOnly(in);
        speed.add(g.gpuMs / g.guMs);
        esave.add(g.gpuEnergyNj / g.guEnergyNj);
        table.row()
            .cell(modelName(kind))
            .cell(g.gpuMs, 1)
            .cell(g.guMs, 2)
            .cell(g.gpuMs / g.guMs, 1)
            .cell(g.gpuEnergyNj * 1e-6, 1)
            .cell(g.guEnergyNj * 1e-6, 2)
            .cell(g.gpuEnergyNj / g.guEnergyNj, 1);
    }
    table.print();
    std::printf("\nmean gather speedup: %.1fx, energy reduction %.1fx "
                "(paper: 72.2x speedup; GU contributes 99.9%% of the "
                "energy reduction; Instant-NGP benefits most).\n",
                speed.mean(), esave.mean());
    return 0;
}
