/**
 * @file
 * Fig. 18 reproduction: GPU execution-time distribution of software
 * Cicero (full-frame NeRF vs sparse NeRF vs warping/others) at warping
 * windows 6 and 16, plus DS-2 for contrast. The paper reports 86.1% of
 * time in full-frame NeRF at window 6, falling to 49.7% at window 16
 * while sparse NeRF rises to 48.9%.
 */

#include "bench_util.hh"

using namespace cicero;
using namespace cicero::bench;

int
main()
{
    banner("Fig. 18", "GPU execution distribution of software Cicero");

    Scene scene = makeScene("lego");
    GpuModel gpu;
    auto model = fullModel(ModelKind::DirectVoxGO, scene);
    auto traj = sceneOrbit(scene, 18);
    WorkloadInputs in = probeWorkload(*model, traj, probeOptions());

    GpuStageTimes t = gpu.timeNerfFrame(in.fullFrame, in.gatherProfile);
    double refMs = t.totalMs();
    double sparseMs =
        gpu.timeNerfFrame(in.sparsePerFrame, in.gatherProfile)
            .totalMs() *
        gpu.config().sparseDispatchOverhead;
    double warpMs = gpu.warpTimeMs(in.warpPointsPerFrame * 2);

    Table table({"config", "full-frame %", "sparse %", "others %",
                 "ms/frame"});
    for (int window : {6, 16}) {
        double full = refMs / window;
        double total = full + sparseMs + warpMs;
        table.row()
            .cell("Cicero-" + std::to_string(window))
            .cell(100.0 * full / total, 1)
            .cell(100.0 * sparseMs / total, 1)
            .cell(100.0 * warpMs / total, 1)
            .cell(total, 1);
    }
    table.row()
        .cell("DS-2")
        .cell(100.0, 1)
        .cell(0.0, 1)
        .cell(0.0, 1)
        .cell(refMs / 4.0, 1);
    table.print();
    std::printf("\npaper: Cicero-6 spends 86.1%% in full-frame NeRF; at "
                "window 16 it falls to 49.7%% with sparse NeRF at 48.9%%; "
                "warping ('others') is negligible. The bottleneck remains "
                "NeRF rendering, not warping.\n");
    return 0;
}
