/**
 * @file
 * Fig. 4 reproduction: fraction of non-continuous (non-streaming) DRAM
 * accesses during Feature Gathering across NeRF algorithms. The paper
 * measures > 81% on average for the pixel-centric order.
 */

#include "bench_util.hh"
#include "memory/dram_model.hh"

using namespace cicero;
using namespace cicero::bench;

int
main()
{
    banner("Fig. 4", "non-streaming DRAM access in feature gathering");

    Scene scene = makeScene("lego");
    auto traj = sceneOrbit(scene, 2);

    Table table({"model", "non-streaming % (ours)", "accesses (M)",
                 "paper"});
    Summary mean;
    for (ModelKind kind : allModelKinds()) {
        auto model = fullModel(kind, scene, GridLayout::Linear);
        Camera cam = Camera::fromFov(64, 64, scene.fovYDeg, traj[0]);
        DramModel dram;
        WarpInterleaver interleaver(32);
        interleaver.addSink(&dram);
        model->traceWorkload(cam, &interleaver);
        double pct = 100.0 * dram.stats().nonStreamingFraction();
        mean.add(pct);
        table.row()
            .cell(modelName(kind))
            .cell(pct, 1)
            .cell(dram.stats().accesses / 1e6, 1)
            .cell(">81% avg");
    }
    table.print();
    std::printf("\nmean: %.1f%% non-streaming (paper: >81%% average). "
                "Our dense-grid traces coalesce corner pairs the paper's "
                "byte-granular measurement separates; the ordering across "
                "algorithms and the dominance of random traffic match.\n",
                mean.mean());
    return 0;
}
