/**
 * @file
 * Fig. 19a reproduction: end-to-end speedup and normalized energy of
 * SPARW / SPARW+FS / CICERO over the baseline SoC (GPU + NPU) in the
 * local-rendering scenario, warping window 16.
 *
 * Paper: SPARW 8.1x / 8.1x (speed/energy), SPARW+FS adds 1.2x / 1.6x,
 * full CICERO reaches 28.2x / 37.8x.
 */

#include "bench_util.hh"

using namespace cicero;
using namespace cicero::bench;

int
main()
{
    banner("Fig. 19a", "local rendering: speedup & energy vs baseline");

    Scene scene = makeScene("lego");
    PerformanceModel pm;

    Table table({"model", "variant", "ms/frame", "speedup x",
                 "norm energy", "E-save x"});
    Summary ciceroSpeed, ciceroEnergy;
    for (ModelKind kind : mainModelKinds()) {
        auto model = fullModel(kind, scene);
        auto traj = sceneOrbit(scene, 18);
        WorkloadInputs in = probeWorkload(*model, traj, probeOptions(16));

        FramePrice base = pm.priceLocal(SystemVariant::Baseline, in);
        for (SystemVariant v :
             {SystemVariant::Baseline, SystemVariant::Sparw,
              SystemVariant::SparwFs, SystemVariant::Cicero}) {
            FramePrice p = pm.priceLocal(v, in);
            double speed = base.timeMs / p.timeMs;
            double esave = base.energyNj / p.energyNj;
            if (v == SystemVariant::Cicero) {
                ciceroSpeed.add(speed);
                ciceroEnergy.add(esave);
            }
            table.row()
                .cell(modelName(kind))
                .cell(variantName(v))
                .cell(p.timeMs, 1)
                .cell(speed, 1)
                .cell(p.energyNj / base.energyNj, 3)
                .cell(esave, 1);
        }
    }
    table.print();
    std::printf("\nmean CICERO: %.1fx speedup, %.1fx energy saving "
                "(paper: 28.2x / 37.8x).\n",
                ciceroSpeed.mean(), ciceroEnergy.mean());
    return 0;
}
