/**
 * @file
 * Fig. 21 reproduction: decomposition of the DRAM energy reduction of
 * fully-streaming rendering into (a) traffic reduction — each voxel is
 * read once instead of re-fetched on every cache miss — and (b) the
 * conversion of the remaining traffic from random to streaming bursts.
 * The paper attributes 84.5% of the saving to traffic reduction and
 * 15.5% to streaming conversion.
 */

#include "bench_util.hh"

using namespace cicero;
using namespace cicero::bench;

int
main()
{
    banner("Fig. 21", "DRAM energy-saving decomposition");

    Scene scene = makeScene("lego");
    GpuModel gpu;
    EnergyConstants energy;

    Table table({"model", "baseline GB", "FS MB", "traffic %",
                 "streaming %", "total save x"});
    Summary trafficShare;
    for (ModelKind kind : allModelKinds()) {
        auto model = fullModel(kind, scene);
        auto traj = sceneOrbit(scene, 4);
        WorkloadInputs in = probeWorkload(*model, traj, probeOptions());

        // Baseline DRAM traffic: miss-driven transactions at the
        // measured random/streaming mix.
        double baseBytes = static_cast<double>(
            gpu.gatherDramBytes(in.fullFrame, in.gatherProfile));
        double rf = in.gatherProfile.randomFraction;
        double pricePerByte = rf * energy.dramRandomPjPerByte +
                              (1.0 - rf) * energy.dramStreamPjPerByte;
        double baseNj = baseBytes * pricePerByte * 1e-3;

        // FS traffic: streamed MVoxels once + hashed-level residue.
        const StreamPlan &plan = in.fullStreamPlan;
        double fsBytes = static_cast<double>(plan.streamedBytes +
                                             plan.randomBytes);
        double fsNj =
            plan.streamedBytes * energy.dramStreamPjPerByte * 1e-3 +
            plan.randomBytes * energy.dramRandomPjPerByte * 1e-3;

        double saving = baseNj - fsNj;
        // Two effects compose: fewer bytes move (traffic reduction) and
        // the bytes that move become streaming. Attribute by Shapley
        // value (average over both application orders), which is
        // order-independent.
        double fsPricePerByte =
            fsBytes > 0.0 ? fsNj * 1e3 / fsBytes
                          : energy.dramStreamPjPerByte;
        double trafficFirst =
            (baseBytes - fsBytes) * pricePerByte * 1e-3;
        double trafficSecond =
            (baseBytes - fsBytes) * fsPricePerByte * 1e-3;
        double trafficNj = 0.5 * (trafficFirst + trafficSecond);
        double streamNj = saving - trafficNj;
        double tShare = 100.0 * trafficNj / saving;
        trafficShare.add(tShare);

        table.row()
            .cell(modelName(kind))
            .cell(baseBytes / 1e9, 2)
            .cell(fsBytes / 1e6, 1)
            .cell(tShare, 1)
            .cell(100.0 * streamNj / saving, 1)
            .cell(baseNj / fsNj, 1);
    }
    table.print();
    std::printf("\nmean traffic-reduction share: %.1f%% (paper: 84.5%% "
                "traffic reduction, 15.5%% streaming conversion).\n",
                trafficShare.mean());
    return 0;
}
