/**
 * @file
 * Fig. 5 reproduction: miss rate of a 2 MB on-chip buffer during
 * Feature Gathering, across NeRF algorithms. The paper assumes oracle
 * replacement and reports an average of 38% (up to 92%); we report both
 * the Belady oracle and LRU for comparison.
 */

#include "bench_util.hh"
#include "memory/cache_model.hh"

using namespace cicero;
using namespace cicero::bench;

int
main()
{
    banner("Fig. 5", "2 MB buffer miss rate in feature gathering");

    Scene scene = makeScene("lego");
    auto traj = sceneOrbit(scene, 2);

    Table table({"model", "oracle miss %", "LRU miss %", "model MB",
                 "paper avg"});
    Summary mean;
    for (ModelKind kind : allModelKinds()) {
        auto model = fullModel(kind, scene, GridLayout::Linear);
        Camera cam = Camera::fromFov(64, 64, scene.fovYDeg, traj[0]);

        LruCache lru;
        BeladyCache belady;
        WarpInterleaver interleaver(32);
        interleaver.addSink(&lru);
        interleaver.addSink(&belady);
        model->traceWorkload(cam, &interleaver);

        double oracle = 100.0 * belady.simulate().missRate();
        double lruPct = 100.0 * lru.stats().missRate();
        mean.add(oracle);
        table.row()
            .cell(modelName(kind))
            .cell(oracle, 1)
            .cell(lruPct, 1)
            .cell(model->modelBytes() / 1048576.0, 1)
            .cell("38% (up to 92%)");
    }
    table.print();
    std::printf("\nmean oracle miss rate: %.1f%%. The irregular reuse "
                "that defeats a 2 MB buffer is present; absolute rates "
                "track our reduced-scale scenes.\n",
                mean.mean());
    return 0;
}
