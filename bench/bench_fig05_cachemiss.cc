/**
 * @file
 * Fig. 5 reproduction: miss rate of a 2 MB on-chip buffer during
 * Feature Gathering, across NeRF algorithms. The paper assumes oracle
 * replacement and reports an average of 38% (up to 92%); we report both
 * the Belady oracle and LRU for comparison.
 *
 * Capture-once / replay-many: each model's gather stream is rendered
 * once into an in-memory .ctrace (the trace persistence subsystem) and
 * the cache stack consumes the persisted replay — the render cost is
 * paid once however many memory configs are swept, and the replayed
 * statistics are bit-identical to a live run.
 */

#include "bench_util.hh"
#include "memory/replay.hh"

using namespace cicero;
using namespace cicero::bench;

int
main()
{
    banner("Fig. 5", "2 MB buffer miss rate in feature gathering");

    Scene scene = makeScene("lego");
    auto traj = sceneOrbit(scene, 2);

    Table table({"model", "oracle miss %", "LRU miss %", "model MB",
                 "trace %raw", "paper avg"});
    Summary mean;
    for (ModelKind kind : allModelKinds()) {
        auto model = fullModel(kind, scene, GridLayout::Linear);
        Camera cam = Camera::fromFov(64, 64, scene.fovYDeg, traj[0]);

        // Render once into a compressed in-memory trace file...
        TraceFileMeta meta;
        meta.scene = scene.name;
        meta.encoding = model->encoding().name();
        meta.model = modelName(kind);
        meta.width = meta.height = 64;
        meta.threads = static_cast<std::uint32_t>(parallelThreadCount());
        meta.featureBytes = static_cast<std::uint32_t>(
            model->encoding().featureDim() * kBytesPerChannel);
        std::vector<std::uint8_t> ctrace;
        {
            TraceFileWriter writer(ctrace, meta);
            model->traceWorkload(cam, &writer);
            writer.close();
        }

        // ...and sweep the cache stack from the persisted replay.
        TraceFileReader reader(ctrace);
        CacheStackResult res = runCacheStack(fileSource(reader));

        double oracle = 100.0 * res.belady.missRate();
        double lruPct = 100.0 * res.lru.missRate();
        mean.add(oracle);
        table.row()
            .cell(modelName(kind))
            .cell(oracle, 1)
            .cell(lruPct, 1)
            .cell(model->modelBytes() / 1048576.0, 1)
            .cell(100.0 * reader.compressionRatio(), 1)
            .cell("38% (up to 92%)");
    }
    table.print();
    std::printf("\nmean oracle miss rate: %.1f%%. The irregular reuse "
                "that defeats a 2 MB buffer is present; absolute rates "
                "track our reduced-scale scenes.\n",
                mean.mean());
    return 0;
}
