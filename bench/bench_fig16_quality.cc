/**
 * @file
 * Fig. 16 reproduction: rendering quality (PSNR vs ground truth) of
 * Baseline full-frame NeRF, Cicero-6, Cicero-16, DS-2 and Temp-16,
 * across the three main algorithms, on (a) the eight synthetic scenes
 * and (b) the two real-world stand-ins.
 *
 * Paper expectations: Cicero-6 within 1.0 dB of baseline; Cicero-16
 * ~1.3 dB below but still above DS-2 and Temp-16 on synthetic scenes;
 * Temp-16 worst (it accumulates warping error).
 */

#include "bench_util.hh"

using namespace cicero;
using namespace cicero::bench;

namespace {

struct QualityRow
{
    Summary baseline, cicero6, cicero16, ds2, temp16;
};

void
evalScene(ModelKind kind, const std::string &sceneName, QualityRow &row,
          int frames, int res)
{
    Scene scene = makeScene(sceneName);
    auto model = fullModel(kind, scene, GridLayout::Linear);
    auto traj = sceneOrbit(scene, frames);
    Camera cam = qualityCamera(scene, traj[0], res);

    // Ground-truth frames rendered once per scene.
    std::vector<Image> gt;
    for (const Pose &pose : traj) {
        Camera c = cam;
        c.pose = pose;
        gt.push_back(renderGroundTruth(scene, c, 256).image);
    }
    auto meanPsnr = [&](const SparwRun &run) {
        Summary s;
        for (std::size_t i = 0; i < traj.size(); ++i)
            s.add(std::min(60.0, psnr(run.frames[i].image, gt[i])));
        return s.mean();
    };

    {
        Summary s;
        for (std::size_t i = 0; i < traj.size(); ++i) {
            Camera c = cam;
            c.pose = traj[i];
            s.add(std::min(60.0, psnr(model->render(c).image, gt[i])));
        }
        row.baseline.add(s.mean());
    }
    SparwConfig c6;
    c6.window = 6;
    row.cicero6.add(meanPsnr(SparwPipeline(*model, cam, c6).run(traj)));
    SparwConfig c16;
    c16.window = 16;
    SparwPipeline pipe16(*model, cam, c16);
    row.cicero16.add(meanPsnr(pipe16.run(traj)));
    row.ds2.add(meanPsnr(pipe16.runDownsampled(traj, 2)));
    row.temp16.add(meanPsnr(pipe16.runTemporal(traj)));
}

void
printRows(const std::vector<std::pair<std::string, QualityRow>> &rows)
{
    Table table({"model", "Baseline", "Cicero-6", "Cicero-16", "DS-2",
                 "Temp-16", "drop@6 (dB)"});
    for (const auto &[name, r] : rows) {
        table.row()
            .cell(name)
            .cell(r.baseline.mean(), 2)
            .cell(r.cicero6.mean(), 2)
            .cell(r.cicero16.mean(), 2)
            .cell(r.ds2.mean(), 2)
            .cell(r.temp16.mean(), 2)
            .cell(r.baseline.mean() - r.cicero6.mean(), 2);
    }
    table.print();
}

} // namespace

int
main(int argc, char **argv)
{
    banner("Fig. 16", "rendering quality: PSNR vs ground truth");
    // --quick restricts to two scenes for fast iteration.
    bool quick = argc > 1 && std::string(argv[1]) == "--quick";
    std::vector<std::string> scenes =
        quick ? std::vector<std::string>{"lego", "chair"}
              : syntheticSceneNames();

    std::printf("\n(a) Synthetic scenes (%zu scenes, 24 frames @30FPS)\n",
                scenes.size());
    std::vector<std::pair<std::string, QualityRow>> rows;
    for (ModelKind kind : mainModelKinds()) {
        QualityRow row;
        for (const auto &name : scenes)
            evalScene(kind, name, row, 24, 64);
        rows.emplace_back(modelName(kind), row);
    }
    printRows(rows);
    std::printf("paper (a): Cicero-6 within 1.0 dB of baseline; "
                "Cicero-16 ~1.3 dB below; Temp-16 worst.\n");

    std::printf("\n(b) Real-world stand-ins (30 FPS captures)\n");
    std::vector<std::pair<std::string, QualityRow>> rwRows;
    for (ModelKind kind : mainModelKinds()) {
        QualityRow row;
        for (const auto &name : realWorldSceneNames())
            evalScene(kind, name, row, 24, 64);
        rwRows.emplace_back(modelName(kind), row);
    }
    printRows(rwRows);
    std::printf("paper (b) averages: Baseline 37.7, Cicero-6 36.9, "
                "Cicero-16 36.6, DS-2 36.8, Temp-16 36.0 dB.\n");
    return 0;
}
