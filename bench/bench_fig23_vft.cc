/**
 * @file
 * Fig. 23 reproduction: sensitivity of GU energy to the VFT buffer
 * size. MVoxels are resized to fill the buffer, so larger buffers mean
 * fewer, larger chunks but costlier per-access SRAM; the paper finds
 * energy flat from 8 KB to 64 KB and rising beyond.
 */

#include "bench_util.hh"

using namespace cicero;
using namespace cicero::bench;

int
main()
{
    banner("Fig. 23", "GU energy vs VFT buffer size");

    Scene scene = makeScene("lego");
    auto model = fullModel(ModelKind::DirectVoxGO, scene);
    auto traj = sceneOrbit(scene, 2);
    Camera cam = Camera::fromFov(64, 64, scene.fovYDeg, traj[0]);
    auto positions = model->collectSamplePositions(cam);
    auto *grid =
        dynamic_cast<const DenseGridEncoding *>(&model->encoding());
    const std::uint32_t vertexBytes = grid->vertexBytes();
    const double k = (800.0 * 800.0) / (64.0 * 64.0);

    Table table({"VFT KB", "MVoxel edge", "GU uJ", "normalized"});
    double baselineEnergy = -1.0;
    for (int kb : {8, 16, 32, 64, 128, 256}) {
        std::uint64_t vftBytes = static_cast<std::uint64_t>(kb) << 10;
        int edge = GatheringUnitModel::mvoxelEdgeForBuffer(vftBytes,
                                                           vertexBytes);
        // Rebuild the footprint with matching MVoxel geometry (layout
        // only; no re-bake needed for address accounting).
        DenseGridEncoding layout(grid->voxelsPerAxis(),
                                 GridLayout::MVoxelBlocked, edge);
        StreamPlan plan = layout.streamingFootprint(positions);
        plan.ritEntries = static_cast<std::uint64_t>(plan.ritEntries * k);
        plan.ritBytes = static_cast<std::uint64_t>(plan.ritBytes * k);

        GatheringUnitConfig cfg;
        cfg.vftBytes = vftBytes;
        GatheringUnitModel gu(cfg);
        GuCost cost = gu.price(plan, vertexBytes);
        if (baselineEnergy < 0.0)
            baselineEnergy = cost.energyNj;
        table.row()
            .cell(kb)
            .cell(edge)
            .cell(cost.energyNj * 1e-3, 1)
            .cell(cost.energyNj / baselineEnergy, 2);
    }
    table.print();
    std::printf("\npaper: roughly constant 8-64 KB, rising beyond as "
                "larger SRAM arrays cost more per access.\n");
    return 0;
}
