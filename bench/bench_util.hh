/**
 * @file
 * Shared helpers for the figure-reproduction benches: standard scene /
 * model / trajectory setup at bench scale, workload probing, and table
 * headers that print the paper's reported value next to ours.
 */

#ifndef CICERO_BENCH_BENCH_UTIL_HH
#define CICERO_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>
#include <vector>

#include "cicero/probe.hh"
#include "cicero/sparw.hh"
#include "common/stats.hh"
#include "nerf/models.hh"
#include "scene/trajectory.hh"

namespace cicero::bench {

/** Print a bench banner. */
inline void
banner(const std::string &figure, const std::string &what)
{
    std::printf("=== %s: %s ===\n", figure.c_str(), what.c_str());
}

/** Build the standard 30 FPS orbit for a scene. */
inline std::vector<Pose>
sceneOrbit(const Scene &scene, int frames, float degPerSecond = 20.0f)
{
    OrbitParams orbit;
    orbit.radius = scene.cameraDistance;
    orbit.degPerSecond = degPerSecond;
    return orbitTrajectory(orbit, frames);
}

/** Build a Full-preset model for (kind, scene). */
inline std::unique_ptr<NerfModel>
fullModel(ModelKind kind, const Scene &scene,
          GridLayout layout = GridLayout::MVoxelBlocked)
{
    ModelBuildOptions opts;
    opts.preset = ModelPreset::Full;
    opts.gridLayout = layout;
    return buildModel(kind, scene, opts);
}

/** Default probe options used across the performance benches. */
inline ProbeOptions
probeOptions(int window = 16)
{
    ProbeOptions opts;
    opts.traceRes = 64;
    opts.targetRes = 800;
    opts.window = window;
    return opts;
}

/** Camera at bench quality resolution. */
inline Camera
qualityCamera(const Scene &scene, const Pose &pose, int res = 72)
{
    return Camera::fromFov(res, res, scene.fovYDeg, pose);
}

/**
 * Mean PSNR of a SPARW run against per-frame ground truth, capped at
 * 60 dB per frame so infinities do not dominate.
 */
inline double
meanPsnrVsGroundTruth(const Scene &scene, const Camera &intrinsics,
                      const std::vector<Pose> &traj,
                      const SparwRun &run, int gtSteps = 256)
{
    Summary s;
    for (std::size_t i = 0; i < traj.size(); ++i) {
        Camera cam = intrinsics;
        cam.pose = traj[i];
        RenderResult gt = renderGroundTruth(scene, cam, gtSteps);
        s.add(std::min(60.0, psnr(run.frames[i].image, gt.image)));
    }
    return s.mean();
}

/** Mean PSNR of full (baseline) NeRF rendering against ground truth. */
inline double
baselinePsnr(const Scene &scene, const NerfModel &model,
             const Camera &intrinsics, const std::vector<Pose> &traj,
             int gtSteps = 256)
{
    Summary s;
    for (const Pose &pose : traj) {
        Camera cam = intrinsics;
        cam.pose = pose;
        RenderResult gt = renderGroundTruth(scene, cam, gtSteps);
        RenderResult r = model.render(cam);
        s.add(std::min(60.0, psnr(r.image, gt.image)));
    }
    return s.mean();
}

} // namespace cicero::bench

#endif // CICERO_BENCH_BENCH_UTIL_HH
