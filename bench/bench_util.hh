/**
 * @file
 * Shared helpers for the figure-reproduction benches: standard scene /
 * model / trajectory setup at bench scale, workload probing, and table
 * headers that print the paper's reported value next to ours.
 */

#ifndef CICERO_BENCH_BENCH_UTIL_HH
#define CICERO_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>
#include <vector>

#include "cicero/probe.hh"
#include "cicero/sparw.hh"
#include "common/parallel.hh"
#include "common/stats.hh"
#include "nerf/models.hh"
#include "scene/trajectory.hh"

namespace cicero::bench {

/** Print a bench banner. */
inline void
banner(const std::string &figure, const std::string &what)
{
    std::printf("=== %s: %s ===\n", figure.c_str(), what.c_str());
}

/** Build the standard 30 FPS orbit for a scene. */
inline std::vector<Pose>
sceneOrbit(const Scene &scene, int frames, float degPerSecond = 20.0f)
{
    OrbitParams orbit;
    orbit.radius = scene.cameraDistance;
    orbit.degPerSecond = degPerSecond;
    return orbitTrajectory(orbit, frames);
}

/** Build a Full-preset model for (kind, scene). */
inline std::unique_ptr<NerfModel>
fullModel(ModelKind kind, const Scene &scene,
          GridLayout layout = GridLayout::MVoxelBlocked)
{
    ModelBuildOptions opts;
    opts.preset = ModelPreset::Full;
    opts.gridLayout = layout;
    return buildModel(kind, scene, opts);
}

/** Default probe options used across the performance benches. */
inline ProbeOptions
probeOptions(int window = 16)
{
    ProbeOptions opts;
    opts.traceRes = 64;
    opts.targetRes = 800;
    opts.window = window;
    return opts;
}

/** Camera at bench quality resolution. */
inline Camera
qualityCamera(const Scene &scene, const Pose &pose, int res = 72)
{
    return Camera::fromFov(res, res, scene.fovYDeg, pose);
}

/**
 * Mean of a per-frame metric over a trajectory. Frames are
 * independent; parallelForOuter picks frame- vs row-level
 * parallelism, and per-frame values summarize in frame order either
 * way, so the mean is deterministic. @p metric receives the frame's
 * camera and index.
 */
template <typename Fn>
inline double
meanFrameMetric(const Camera &intrinsics, const std::vector<Pose> &traj,
                Fn &&metric)
{
    std::vector<double> vals(traj.size(), 0.0);
    parallelForOuter(static_cast<std::int64_t>(traj.size()),
                     [&](std::int64_t i) {
                         Camera cam = intrinsics;
                         cam.pose = traj[i];
                         vals[i] = metric(cam, static_cast<std::size_t>(i));
                     });
    Summary s;
    for (double v : vals)
        s.add(v);
    return s.mean();
}

/**
 * Mean PSNR of a SPARW run against per-frame ground truth, capped at
 * 60 dB per frame so infinities do not dominate.
 */
inline double
meanPsnrVsGroundTruth(const Scene &scene, const Camera &intrinsics,
                      const std::vector<Pose> &traj,
                      const SparwRun &run, int gtSteps = 256)
{
    return meanFrameMetric(
        intrinsics, traj, [&](const Camera &cam, std::size_t i) {
            RenderResult gt = renderGroundTruth(scene, cam, gtSteps);
            return std::min(60.0, psnr(run.frames[i].image, gt.image));
        });
}

/** Mean PSNR of full (baseline) NeRF rendering against ground truth. */
inline double
baselinePsnr(const Scene &scene, const NerfModel &model,
             const Camera &intrinsics, const std::vector<Pose> &traj,
             int gtSteps = 256)
{
    return meanFrameMetric(
        intrinsics, traj, [&](const Camera &cam, std::size_t) {
            RenderResult gt = renderGroundTruth(scene, cam, gtSteps);
            RenderResult r = model.render(cam);
            return std::min(60.0, psnr(r.image, gt.image));
        });
}

} // namespace cicero::bench

#endif // CICERO_BENCH_BENCH_UTIL_HH
