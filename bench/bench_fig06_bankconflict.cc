/**
 * @file
 * Fig. 6 reproduction: SRAM bank conflict rate of Feature Gathering
 * under the feature-major layout (16 banks, 16 concurrent ray queries),
 * plus the paper's two sensitivity observations: more concurrent rays
 * conflict more, more banks conflict less. The channel-major column
 * shows Cicero's layout eliminating conflicts outright.
 */

#include "bench_util.hh"
#include "memory/sram_bank_model.hh"

using namespace cicero;
using namespace cicero::bench;

namespace {

double
conflictRate(NerfModel &model, const Camera &cam, std::uint32_t banks,
             std::uint32_t rays, SramLayout layout)
{
    SramBankConfig cfg;
    cfg.numBanks = banks;
    cfg.concurrentRays = rays;
    cfg.featureBytes = model.encoding().featureDim() * kBytesPerChannel;
    cfg.layout = layout;
    BankConflictSim sim(cfg);
    model.traceWorkload(cam, &sim);
    return 100.0 * sim.stats().conflictRate();
}

} // namespace

int
main()
{
    banner("Fig. 6",
           "bank conflict rate (16 banks, 16 concurrent rays)");

    Scene scene = makeScene("lego");
    auto traj = sceneOrbit(scene, 2);

    Table table({"model", "feat-major 16r %", "feat-major 64r %",
                 "64 banks %", "channel-major %"});
    Summary mean;
    for (ModelKind kind : allModelKinds()) {
        auto model = fullModel(kind, scene, GridLayout::Linear);
        Camera cam = Camera::fromFov(48, 48, scene.fovYDeg, traj[0]);
        double base =
            conflictRate(*model, cam, 16, 16, SramLayout::FeatureMajor);
        double rays64 =
            conflictRate(*model, cam, 16, 64, SramLayout::FeatureMajor);
        double banks64 =
            conflictRate(*model, cam, 64, 16, SramLayout::FeatureMajor);
        double cm =
            conflictRate(*model, cam, 16, 16, SramLayout::ChannelMajor);
        mean.add(base);
        table.row()
            .cell(modelName(kind))
            .cell(base, 1)
            .cell(rays64, 1)
            .cell(banks64, 1)
            .cell(cm, 1);
    }
    table.print();
    std::printf("\nmean feature-major conflict rate: %.1f%% (paper: 52%% "
                "average, EfficientNeRF up to 83%%; Instant-NGP grows to "
                "80%% at 64 rays). Channel-major is structurally zero.\n",
                mean.mean());
    return 0;
}
