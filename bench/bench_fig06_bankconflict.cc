/**
 * @file
 * Fig. 6 reproduction: SRAM bank conflict rate of Feature Gathering
 * under the feature-major layout (16 banks, 16 concurrent ray queries),
 * plus the paper's two sensitivity observations: more concurrent rays
 * conflict more, more banks conflict less. The channel-major column
 * shows Cicero's layout eliminating conflicts outright.
 *
 * Capture-once / replay-many: the four bank configurations per model
 * used to cost four full functional renders; now the gather stream is
 * rendered once into an in-memory .ctrace and each configuration
 * replays the persisted trace — same statistics, one render.
 */

#include "bench_util.hh"
#include "memory/replay.hh"

using namespace cicero;
using namespace cicero::bench;

namespace {

double
conflictRate(const TraceFileReader &trace, std::uint32_t banks,
             std::uint32_t rays, SramLayout layout)
{
    SramBankConfig cfg;
    cfg.numBanks = banks;
    cfg.concurrentRays = rays;
    cfg.featureBytes = trace.meta().featureBytes;
    cfg.layout = layout;
    return 100.0 *
           runBankStack(fileSource(trace), cfg).stats.conflictRate();
}

} // namespace

int
main()
{
    banner("Fig. 6",
           "bank conflict rate (16 banks, 16 concurrent rays)");

    Scene scene = makeScene("lego");
    auto traj = sceneOrbit(scene, 2);

    Table table({"model", "feat-major 16r %", "feat-major 64r %",
                 "64 banks %", "channel-major %"});
    Summary mean;
    for (ModelKind kind : allModelKinds()) {
        auto model = fullModel(kind, scene, GridLayout::Linear);
        Camera cam = Camera::fromFov(48, 48, scene.fovYDeg, traj[0]);

        // One render per model; four configs replay the persisted trace.
        TraceFileMeta meta;
        meta.scene = scene.name;
        meta.encoding = model->encoding().name();
        meta.model = modelName(kind);
        meta.width = meta.height = 48;
        meta.threads = static_cast<std::uint32_t>(parallelThreadCount());
        meta.featureBytes = static_cast<std::uint32_t>(
            model->encoding().featureDim() * kBytesPerChannel);
        std::vector<std::uint8_t> ctrace;
        {
            TraceFileWriter writer(ctrace, meta);
            model->traceWorkload(cam, &writer);
            writer.close();
        }
        TraceFileReader trace(ctrace);

        double base =
            conflictRate(trace, 16, 16, SramLayout::FeatureMajor);
        double rays64 =
            conflictRate(trace, 16, 64, SramLayout::FeatureMajor);
        double banks64 =
            conflictRate(trace, 64, 16, SramLayout::FeatureMajor);
        double cm =
            conflictRate(trace, 16, 16, SramLayout::ChannelMajor);
        mean.add(base);
        table.row()
            .cell(modelName(kind))
            .cell(base, 1)
            .cell(rays64, 1)
            .cell(banks64, 1)
            .cell(cm, 1);
    }
    table.print();
    std::printf("\nmean feature-major conflict rate: %.1f%% (paper: 52%% "
                "average, EfficientNeRF up to 83%%; Instant-NGP grows to "
                "80%% at 64 rays). Channel-major is structurally zero.\n",
                mean.mean());
    return 0;
}
