/**
 * @file
 * Fig. 2 reproduction: frame rate vs model size for six NeRF models on
 * the mobile GPU at 800x800 — none approaches the 60 FPS target, and
 * model sizes far exceed on-chip SRAM.
 *
 * Implemented models are priced by the calibrated GPU model from their
 * nominal per-frame work; MobileNeRF and Baking(SNeRG) are
 * rasterization-style pipelines outside this repo's scope and carry the
 * paper's published operating points for context.
 */

#include "accel/gpu_model.hh"
#include "bench_util.hh"

using namespace cicero;
using namespace cicero::bench;

namespace {

/** Published Fig. 2 operating points (approximate, for reference). */
double
paperFps(const std::string &name)
{
    if (name == "Instant-NGP")
        return 0.17; // ~6 s per 800x800 frame (Sec. I)
    if (name == "DirectVoxGO")
        return 0.8; // Sec. I
    if (name == "TensoRF")
        return 0.6;
    if (name == "EfficientNeRF")
        return 1.2;
    if (name == "MobileNeRF")
        return 15.0;
    if (name == "Baking(SNeRG)")
        return 1.7;
    return 0.0;
}

} // namespace

int
main()
{
    banner("Fig. 2", "frame rate vs model size (800x800, mobile GPU)");

    GpuModel gpu;
    const double rays = 800.0 * 800.0;
    // Characterization-average gather behaviour (Figs. 4-5).
    GatherProfile profile{0.38, 0.81};

    Table table({"model", "size (MB)", "FPS (ours)", "FPS (paper)",
                 "60FPS?"});
    for (const ModelSpec &spec : nominalModelSpecs()) {
        double fps;
        if (spec.implemented) {
            StageWork w;
            w.rays = static_cast<std::uint64_t>(rays);
            w.samples = static_cast<std::uint64_t>(
                rays * spec.samplesPerRay);
            w.indexOps = static_cast<std::uint64_t>(
                w.samples * spec.indexOpsPerSample);
            w.vertexFetches = static_cast<std::uint64_t>(
                w.samples * spec.fetchesPerSample);
            w.gatherBytes = static_cast<std::uint64_t>(
                w.vertexFetches * spec.bytesPerFetch);
            w.interpOps = static_cast<std::uint64_t>(
                w.samples * spec.interpOpsPerSample);
            // A third of marched samples reach the MLP (occupancy).
            w.mlpMacs = static_cast<std::uint64_t>(
                w.samples * spec.mlpMacsPerSample / 3.0);
            w.compositeOps = w.samples;
            fps = 1000.0 / gpu.timeNerfFrame(w, profile).totalMs();
        } else {
            fps = paperFps(spec.name); // published point, not simulated
        }
        table.row()
            .cell(spec.name + (spec.implemented ? "" : " (published)"))
            .cell(spec.modelMB, 0)
            .cell(fps, 2)
            .cell(paperFps(spec.name), 2)
            .cell(fps >= 60.0 ? "yes" : "no");
    }
    table.print();
    std::printf("\nShape check: every model is far below 60 FPS and far "
                "above on-chip SRAM capacity (1-3 MB), matching the "
                "paper's motivation.\n");
    return 0;
}
