/**
 * @file
 * Render-engine throughput bench: rays/s of the full NeRF render path
 * at 128x128, serial (1 thread) vs the parallel tile engine, emitted
 * as one JSON object so BENCH_*.json trajectories can track the
 * speedup across PRs. Also proves the parallel output is bit-identical
 * to the serial one — the determinism contract of the engine.
 *
 * Since PR 2 the object additionally reports:
 *  - batched-gather vs scalar-gather samples/s for each encoding
 *    (gatherFeatureBatch must not lose to per-sample gatherFeature);
 *  - traced-run rays/s, 1 thread vs N threads through RayTraceBuffer,
 *    with the trace streams checked byte-identical.
 *
 * Since PR 4 the object carries a "simd_backend" field (the backend
 * the process dispatches to by default) and a "simd" section:
 * compiled-backend-vs-forced-scalar samples/s and GFLOP/s for the MLP
 * forwardBatch kernel and each encoding's batched gather (single
 * process, runtime backend override — the same binary measures both
 * sides), with the fp32 outputs checked bit-identical across backends.
 *
 * Since PR 5 a "pipeline" section reports SPARW frames/s under the
 * two-phase vs the pipelined (Fig. 11b overlap) batch schedule on the
 * work-stealing scheduler, tagged with the scheduler mode, plus an
 * idle-time-fraction estimate per schedule; the two schedules' frames
 * are checked bit-identical.
 *
 * The speedups scale with physical cores; on a single-core runner the
 * parallel paths time alike and those sections degenerate to a smoke
 * test (the SIMD section is single-core by construction and measures
 * real kernel speedup everywhere).
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <vector>

#include "bench_util.hh"
#include "cicero/sparw.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "common/simd.hh"
#include "nerf/dense_grid.hh"
#include "nerf/hash_grid.hh"
#include "nerf/tensorf.hh"

using namespace cicero;
using namespace cicero::bench;

namespace {

double
secondsOf(const std::function<void()> &fn, int reps)
{
    double best = 1e30;
    for (int r = 0; r < reps; ++r) {
        auto t0 = std::chrono::steady_clock::now();
        fn();
        auto t1 = std::chrono::steady_clock::now();
        best = std::min(best,
                        std::chrono::duration<double>(t1 - t0).count());
    }
    return best;
}

bool
identical(const Image &a, const Image &b)
{
    if (a.pixelCount() != b.pixelCount())
        return false;
    for (std::size_t i = 0; i < a.pixelCount(); ++i)
        if (a.at(i).x != b.at(i).x || a.at(i).y != b.at(i).y ||
            a.at(i).z != b.at(i).z)
            return false;
    return true;
}

bool
identicalTraces(const std::vector<MemAccess> &a,
                const std::vector<MemAccess> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (a[i].addr != b[i].addr || a[i].bytes != b[i].bytes ||
            a[i].rayId != b[i].rayId)
            return false;
    return true;
}

/** Per-encoding scalar-vs-batched gather comparison. */
struct GatherResult
{
    std::string name;
    double scalarS = 0.0;
    double batchS = 0.0;
    bool identical = false;
};

GatherResult
benchGather(const Encoding &enc, const std::vector<Vec3> &pos, int reps)
{
    const int n = static_cast<int>(pos.size());
    const int dim = enc.featureDim();
    std::vector<float> scalarOut(static_cast<std::size_t>(n) * dim);
    std::vector<float> batchOut(scalarOut.size());

    GatherResult r;
    r.name = enc.name();
    r.scalarS = secondsOf(
        [&] {
            for (int i = 0; i < n; ++i)
                enc.gatherFeature(pos[i],
                                  scalarOut.data() +
                                      static_cast<std::size_t>(i) * dim);
        },
        reps);
    r.batchS = secondsOf(
        [&] { enc.gatherFeatureBatch(pos.data(), n, batchOut.data()); },
        reps);
    // The batch buffer is channel-major; line the scalar results up
    // before the bit-compare.
    std::vector<float> scalarSoA(scalarOut.size());
    simd::transposeToChannelMajor(scalarOut.data(), n, dim,
                                  scalarSoA.data());
    r.identical = scalarSoA == batchOut;
    return r;
}

/** One kernel's SIMD-vs-forced-scalar measurement. */
struct SimdKernelResult
{
    std::string name;
    double simdS = 0.0;
    double scalarS = 0.0;
    double items = 0.0;
    double flopsPerItem = 0.0;
    bool identical = false;
};

/**
 * Time @p run under the compiled backend (forced explicitly, so a
 * CICERO_SIMD=scalar environment cannot turn the "simd" leg into a
 * second scalar measurement) and under the forced-scalar override,
 * bit-comparing the @p check buffer between the two.
 */
SimdKernelResult
benchSimdKernel(const std::string &name, double items,
                double flopsPerItem,
                const std::function<void()> &run,
                const std::vector<float> &check, int reps)
{
    SimdKernelResult r;
    r.name = name;
    r.items = items;
    r.flopsPerItem = flopsPerItem;
    simd::setSimdBackendOverride(false); // compiled backend
    run(); // warm up + populate check
    std::vector<float> simdOut = check;
    r.simdS = secondsOf(run, reps);
    simd::setSimdBackendOverride(true); // scalar reference
    run();
    std::vector<float> scalarOut = check;
    r.scalarS = secondsOf(run, reps);
    simd::setSimdBackendOverride(false, /*reset=*/true);
    r.identical = simdOut == scalarOut;
    return r;
}

} // namespace

int
main()
{
    banner("throughput",
           "tile-parallel render engine + batched gather, 128x128");

    Scene scene = makeScene("lego");
    auto model = buildModel(ModelKind::DirectVoxGO, scene);

    const int res = 128;
    std::vector<Pose> traj = sceneOrbit(scene, 2);
    Camera cam = Camera::fromFov(res, res, scene.fovYDeg, traj[0]);
    const double rays = static_cast<double>(res) * res;

    // Warm up once (bakes TLS buffers, faults pages).
    RenderResult warm = model->render(cam);
    (void)warm;

    // ---- functional render: serial vs parallel ----------------------
    setParallelThreadCount(1);
    RenderResult serialOut = model->render(cam);
    double serialS =
        secondsOf([&] { serialOut = model->render(cam); }, 3);

    setParallelThreadCount(0); // CICERO_THREADS / hardware_concurrency
    const int threads = parallelThreadCount();
    RenderResult parallelOut = model->render(cam);
    double parallelS =
        secondsOf([&] { parallelOut = model->render(cam); }, 3);

    const bool bitIdentical =
        identical(serialOut.image, parallelOut.image) &&
        serialOut.work.samples == parallelOut.work.samples &&
        serialOut.work.mlpMacs == parallelOut.work.mlpMacs;
    const double speedup = parallelS > 0.0 ? serialS / parallelS : 0.0;

    // ---- traced run: serial vs buffered-parallel capture ------------
    const int traceRes = 64;
    Camera traceCam =
        Camera::fromFov(traceRes, traceRes, scene.fovYDeg, traj[0]);
    const double traceRays = static_cast<double>(traceRes) * traceRes;

    setParallelThreadCount(1);
    TraceRecorder traceSerial;
    model->traceWorkload(traceCam, &traceSerial);
    double tracedSerialS = secondsOf(
        [&] {
            TraceRecorder rec;
            model->traceWorkload(traceCam, &rec);
        },
        3);

    setParallelThreadCount(0);
    TraceRecorder traceParallel;
    model->traceWorkload(traceCam, &traceParallel);
    double tracedParallelS = secondsOf(
        [&] {
            TraceRecorder rec;
            model->traceWorkload(traceCam, &rec);
        },
        3);

    const bool traceIdentical =
        identicalTraces(traceSerial.trace(), traceParallel.trace());
    const double tracedSpeedup =
        tracedParallelS > 0.0 ? tracedSerialS / tracedParallelS : 0.0;

    // ---- batched vs scalar gather, per encoding ---------------------
    // Single-thread, pure gather kernel: positions of a typical frame's
    // sample set, gathered per-sample vs through one batch call.
    setParallelThreadCount(1);
    std::vector<Vec3> positions;
    {
        Rng rng(17);
        positions.resize(200000);
        for (Vec3 &p : positions)
            p = rng.uniformVec3();
    }

    std::vector<GatherResult> gathers;
    std::vector<SimdKernelResult> simdKernels;
    {
        DenseGridEncoding dense(96, GridLayout::MVoxelBlocked);
        dense.bake(scene.field);
        gathers.push_back(benchGather(dense, positions, 3));

        HashGridEncoding hash{HashGridConfig{}};
        hash.bake(scene.field);
        gathers.push_back(benchGather(hash, positions, 3));

        TensoRFConfig tcfg;
        tcfg.res = 64;
        tcfg.ranks = 2;
        tcfg.alsIters = 1;
        TensoRFEncoding tensorf(tcfg);
        tensorf.bake(scene.field);
        gathers.push_back(benchGather(tensorf, positions, 3));

        // ---- SIMD kernel layer: compiled backend vs forced scalar ---
        // Same binary, runtime override: measures the explicit vector
        // kernels against their scalar references and proves the fp32
        // outputs bit-identical across backends.
        const int n = static_cast<int>(positions.size());
        const Encoding *encs[] = {&dense, &hash, &tensorf};
        std::vector<float> featOut(static_cast<std::size_t>(n) *
                                   kFeatureDim);
        for (const Encoding *enc : encs) {
            simdKernels.push_back(benchSimdKernel(
                "gather_" + enc->name(), n,
                static_cast<double>(enc->interpOpsPerSample()),
                [&] {
                    enc->gatherFeatureBatch(positions.data(), n,
                                            featOut.data());
                },
                featOut, 3));
        }

        // The decoder-shaped MLP (12 -> 16 -> 16 -> 4) at a frame-like
        // batch size; 2 FLOPs per MAC.
        Mlp mlp({kFeatureDim + 3, 16, 16, 4}, 1);
        const int mlpCount = 16384;
        std::vector<float> mlpIn(static_cast<std::size_t>(mlp.inputDim()) *
                                 mlpCount);
        for (std::size_t i = 0; i < mlpIn.size(); ++i)
            mlpIn[i] = 0.001f * static_cast<float>(i % 997) - 0.5f;
        std::vector<float> mlpOut(
            static_cast<std::size_t>(mlp.outputDim()) * mlpCount);
        simdKernels.push_back(benchSimdKernel(
            "mlp_forward_batch", mlpCount,
            2.0 * static_cast<double>(mlp.macsPerInference()),
            [&] {
                mlp.forwardBatch(mlpIn.data(), mlpOut.data(), mlpCount);
            },
            mlpOut, 5));
    }
    bool gatherIdentical = true;
    for (const GatherResult &g : gathers)
        gatherIdentical = gatherIdentical && g.identical;
    bool simdIdentical = true;
    for (const SimdKernelResult &k : simdKernels)
        simdIdentical = simdIdentical && k.identical;

    // ---- SPARW batch schedule: two-phase vs pipelined ---------------
    // Same trajectory through both schedules of the work-stealing
    // scheduler: the pipelined one overlaps window w+1's reference
    // render with window w's warp + sparse frames (Fig. 11b), so its
    // frames/s should beat the two-phase barrier walk on a multi-core
    // runner (a 1-thread serial run supplies the total-work baseline
    // for the idle-fraction estimate). Output is checked bit-identical
    // between the schedules — overlap must never change pixels.
    setParallelThreadCount(0);
    const int sparwThreads = parallelThreadCount();
    const int sparwRes = 64;
    SparwConfig twoPhaseCfg;
    twoPhaseCfg.window = 2;
    twoPhaseCfg.schedule = SparwSchedule::TwoPhase;
    SparwConfig pipelinedCfg = twoPhaseCfg;
    pipelinedCfg.schedule = SparwSchedule::Pipelined;
    // At least two pool-width window batches, so the pipeline has a
    // next batch to overlap with for most of the run.
    const int sparwFrames =
        std::max(8, 2 * sparwThreads * twoPhaseCfg.window);
    std::vector<Pose> sparwTraj = sceneOrbit(scene, sparwFrames);
    Camera sparwCam =
        Camera::fromFov(sparwRes, sparwRes, scene.fovYDeg, sparwTraj[0]);
    SparwPipeline twoPhase(*model, sparwCam, twoPhaseCfg);
    SparwPipeline pipelined(*model, sparwCam, pipelinedCfg);

    setParallelThreadCount(1);
    SparwRun sparwSerial = twoPhase.run(sparwTraj);
    double sparwSerialS = secondsOf([&] { twoPhase.run(sparwTraj); }, 2);

    setParallelThreadCount(0);
    SparwRun sparwTwoPhase = twoPhase.run(sparwTraj);
    double twoPhaseS = secondsOf([&] { twoPhase.run(sparwTraj); }, 2);
    SparwRun sparwPipelined = pipelined.run(sparwTraj);
    double pipelinedS = secondsOf([&] { pipelined.run(sparwTraj); }, 2);

    bool sparwIdentical =
        sparwSerial.frames.size() == sparwTwoPhase.frames.size() &&
        sparwSerial.frames.size() == sparwPipelined.frames.size();
    for (std::size_t i = 0; sparwIdentical && i < sparwSerial.frames.size();
         ++i)
        sparwIdentical =
            identical(sparwSerial.frames[i].image,
                      sparwTwoPhase.frames[i].image) &&
            identical(sparwSerial.frames[i].image,
                      sparwPipelined.frames[i].image);

    // Idle-time fraction of the pool during a run: 1 - busy/capacity,
    // with the 1-thread wall time as the total-work estimate. Lower is
    // better; the pipelined schedule's gain is two-phase idle reclaimed
    // by overlap.
    auto idleFraction = [&](double wallS) {
        if (wallS <= 0.0 || sparwThreads <= 0)
            return 0.0;
        double frac = 1.0 - sparwSerialS / (sparwThreads * wallS);
        return std::min(1.0, std::max(0.0, frac));
    };
    auto fps = [&](double wallS) {
        return wallS > 0.0 ? sparwFrames / wallS : 0.0;
    };

    // ---- JSON -------------------------------------------------------
    std::printf("{\"bench\": \"render_throughput\", "
                "\"simd_backend\": \"%s\", "
                "\"resolution\": %d, "
                "\"threads\": %d, "
                "\"serial_s\": %.6f, "
                "\"parallel_s\": %.6f, "
                "\"rays_per_s_serial\": %.1f, "
                "\"rays_per_s_parallel\": %.1f, "
                "\"speedup\": %.3f, "
                "\"bit_identical\": %s, "
                "\"traced\": {\"resolution\": %d, "
                "\"serial_s\": %.6f, \"parallel_s\": %.6f, "
                "\"rays_per_s_serial\": %.1f, "
                "\"rays_per_s_parallel\": %.1f, "
                "\"speedup\": %.3f, \"stream_identical\": %s}, "
                "\"gather\": {",
                simd::backendName(simd::activeBackend()), res, threads,
                serialS, parallelS, rays / serialS,
                rays / parallelS, speedup,
                bitIdentical ? "true" : "false", traceRes, tracedSerialS,
                tracedParallelS, traceRays / tracedSerialS,
                traceRays / tracedParallelS, tracedSpeedup,
                traceIdentical ? "true" : "false");
    for (std::size_t i = 0; i < gathers.size(); ++i) {
        const GatherResult &g = gathers[i];
        const double n = static_cast<double>(positions.size());
        std::printf("%s\"%s\": {\"scalar_samples_per_s\": %.1f, "
                    "\"batched_samples_per_s\": %.1f, "
                    "\"batch_speedup\": %.3f, "
                    "\"bit_identical\": %s}",
                    i ? ", " : "", g.name.c_str(), n / g.scalarS,
                    n / g.batchS,
                    g.batchS > 0.0 ? g.scalarS / g.batchS : 0.0,
                    g.identical ? "true" : "false");
    }
    std::printf("}, \"pipeline\": {\"scheduler\": \"%s\", "
                "\"resolution\": %d, \"frames\": %d, \"window\": %d, "
                "\"threads\": %d, "
                "\"serial_s\": %.6f, "
                "\"two_phase_s\": %.6f, \"pipelined_s\": %.6f, "
                "\"fps_serial\": %.2f, "
                "\"fps_two_phase\": %.2f, \"fps_pipelined\": %.2f, "
                "\"pipeline_speedup\": %.3f, "
                "\"idle_frac_two_phase\": %.3f, "
                "\"idle_frac_pipelined\": %.3f, "
                "\"bit_identical\": %s}",
                parallelSchedulerName(), sparwRes, sparwFrames,
                twoPhaseCfg.window, sparwThreads, sparwSerialS,
                twoPhaseS, pipelinedS, fps(sparwSerialS),
                fps(twoPhaseS), fps(pipelinedS),
                pipelinedS > 0.0 ? twoPhaseS / pipelinedS : 0.0,
                idleFraction(twoPhaseS), idleFraction(pipelinedS),
                sparwIdentical ? "true" : "false");
    std::printf(", \"simd\": {");
    for (std::size_t i = 0; i < simdKernels.size(); ++i) {
        const SimdKernelResult &k = simdKernels[i];
        const double flops = k.items * k.flopsPerItem;
        std::printf("%s\"%s\": {\"samples_per_s_simd\": %.1f, "
                    "\"samples_per_s_scalar\": %.1f, "
                    "\"gflops_simd\": %.3f, "
                    "\"gflops_scalar\": %.3f, "
                    "\"speedup\": %.3f, "
                    "\"bit_identical\": %s}",
                    i ? ", " : "", k.name.c_str(), k.items / k.simdS,
                    k.items / k.scalarS, flops / k.simdS / 1e9,
                    flops / k.scalarS / 1e9,
                    k.simdS > 0.0 ? k.scalarS / k.simdS : 0.0,
                    k.identical ? "true" : "false");
    }
    std::printf("}}\n");

    setParallelThreadCount(0);
    // The exit code gates only on correctness (bit/stream identity);
    // perf ratios live in the JSON for the BENCH trajectory to track —
    // a noisy runner must not turn a timing wobble into a red build.
    const bool ok = bitIdentical && traceIdentical && gatherIdentical &&
                    simdIdentical && sparwIdentical;
    return ok ? 0 : 1;
}
