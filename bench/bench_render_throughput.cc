/**
 * @file
 * Render-engine throughput bench: rays/s of the full NeRF render path
 * at 128x128, serial (1 thread) vs the parallel tile engine, emitted
 * as one JSON object so BENCH_*.json trajectories can track the
 * speedup across PRs. Also proves the parallel output is bit-identical
 * to the serial one — the determinism contract of the engine.
 *
 * The speedup scales with physical cores; on a single-core runner the
 * two paths time alike and the bench degenerates to a smoke test.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>

#include "bench_util.hh"
#include "common/parallel.hh"

using namespace cicero;
using namespace cicero::bench;

namespace {

double
secondsOf(const std::function<void()> &fn, int reps)
{
    double best = 1e30;
    for (int r = 0; r < reps; ++r) {
        auto t0 = std::chrono::steady_clock::now();
        fn();
        auto t1 = std::chrono::steady_clock::now();
        best = std::min(best,
                        std::chrono::duration<double>(t1 - t0).count());
    }
    return best;
}

bool
identical(const Image &a, const Image &b)
{
    if (a.pixelCount() != b.pixelCount())
        return false;
    for (std::size_t i = 0; i < a.pixelCount(); ++i)
        if (a.at(i).x != b.at(i).x || a.at(i).y != b.at(i).y ||
            a.at(i).z != b.at(i).z)
            return false;
    return true;
}

} // namespace

int
main()
{
    banner("throughput", "tile-parallel render engine, 128x128");

    Scene scene = makeScene("lego");
    auto model = buildModel(ModelKind::DirectVoxGO, scene);

    const int res = 128;
    std::vector<Pose> traj = sceneOrbit(scene, 2);
    Camera cam = Camera::fromFov(res, res, scene.fovYDeg, traj[0]);
    const double rays = static_cast<double>(res) * res;

    // Warm up once (bakes TLS buffers, faults pages).
    RenderResult warm = model->render(cam);
    (void)warm;

    setParallelThreadCount(1);
    RenderResult serialOut = model->render(cam);
    double serialS =
        secondsOf([&] { serialOut = model->render(cam); }, 3);

    setParallelThreadCount(0); // CICERO_THREADS / hardware_concurrency
    const int threads = parallelThreadCount();
    RenderResult parallelOut = model->render(cam);
    double parallelS =
        secondsOf([&] { parallelOut = model->render(cam); }, 3);

    const bool bitIdentical =
        identical(serialOut.image, parallelOut.image) &&
        serialOut.work.samples == parallelOut.work.samples &&
        serialOut.work.mlpMacs == parallelOut.work.mlpMacs;

    const double speedup = parallelS > 0.0 ? serialS / parallelS : 0.0;
    std::printf("{\"bench\": \"render_throughput\", "
                "\"resolution\": %d, "
                "\"threads\": %d, "
                "\"serial_s\": %.6f, "
                "\"parallel_s\": %.6f, "
                "\"rays_per_s_serial\": %.1f, "
                "\"rays_per_s_parallel\": %.1f, "
                "\"speedup\": %.3f, "
                "\"bit_identical\": %s}\n",
                res, threads, serialS, parallelS, rays / serialS,
                rays / parallelS, speedup,
                bitIdentical ? "true" : "false");

    setParallelThreadCount(0);
    return bitIdentical ? 0 : 1;
}
