/**
 * @file
 * Render-engine throughput bench: rays/s of the full NeRF render path
 * at 128x128, serial (1 thread) vs the parallel tile engine, emitted
 * as one JSON object so BENCH_*.json trajectories can track the
 * speedup across PRs. Also proves the parallel output is bit-identical
 * to the serial one — the determinism contract of the engine.
 *
 * Since PR 2 the object additionally reports:
 *  - batched-gather vs scalar-gather samples/s for each encoding
 *    (gatherFeatureBatch must not lose to per-sample gatherFeature);
 *  - traced-run rays/s, 1 thread vs N threads through RayTraceBuffer,
 *    with the trace streams checked byte-identical.
 *
 * Since PR 4 the object carries a "simd_backend" field (the backend
 * the process dispatches to by default) and a "simd" section:
 * compiled-backend-vs-forced-scalar samples/s and GFLOP/s for the MLP
 * forwardBatch kernel and each encoding's batched gather (single
 * process, runtime backend override — the same binary measures both
 * sides), with the fp32 outputs checked bit-identical across backends.
 *
 * Since PR 5 a "pipeline" section reports SPARW frames/s under the
 * window-loop schedules on the work-stealing scheduler, tagged with
 * the scheduler mode; all schedules' frames are checked bit-identical.
 *
 * Since PR 6 the pipeline section runs on a *straggler* trajectory
 * (one window's reference ~4x costlier than the rest — the case that
 * separates the per-window dependency-graph schedule from the batch
 * pipeline), adds the dependency-graph leg, replaces the wall-clock
 * idle-time estimates with measured scheduler counters (steals, idle
 * wakeups, measured idle fraction, overflow migrations,
 * dependency-stall time; the old estimate fields remain one release,
 * marked deprecated), and adds a "realtime" subsection: deadline-miss
 * and fallback rates of runRealtime() at a zero, a frame-paced, and an
 * unlimited budget, with the two deterministic extremes bit-compared
 * against runDownsampled() and run().
 *
 * --quick cuts repetitions and kernel batch sizes for the CI smoke
 * step; every bit-identity check still runs.
 *
 * The speedups scale with physical cores; on a single-core runner the
 * parallel paths time alike and those sections degenerate to a smoke
 * test (the SIMD section is single-core by construction and measures
 * real kernel speedup everywhere).
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "cicero/sparw.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "common/simd.hh"
#include "nerf/dense_grid.hh"
#include "nerf/hash_grid.hh"
#include "nerf/tensorf.hh"

using namespace cicero;
using namespace cicero::bench;

namespace {

double
secondsOf(const std::function<void()> &fn, int reps)
{
    double best = 1e30;
    for (int r = 0; r < reps; ++r) {
        auto t0 = std::chrono::steady_clock::now();
        fn();
        auto t1 = std::chrono::steady_clock::now();
        best = std::min(best,
                        std::chrono::duration<double>(t1 - t0).count());
    }
    return best;
}

bool
identical(const Image &a, const Image &b)
{
    if (a.pixelCount() != b.pixelCount())
        return false;
    for (std::size_t i = 0; i < a.pixelCount(); ++i)
        if (a.at(i).x != b.at(i).x || a.at(i).y != b.at(i).y ||
            a.at(i).z != b.at(i).z)
            return false;
    return true;
}

bool
identicalTraces(const std::vector<MemAccess> &a,
                const std::vector<MemAccess> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (a[i].addr != b[i].addr || a[i].bytes != b[i].bytes ||
            a[i].rayId != b[i].rayId)
            return false;
    return true;
}

/** Per-encoding scalar-vs-batched gather comparison. */
struct GatherResult
{
    std::string name;
    double scalarS = 0.0;
    double batchS = 0.0;
    bool identical = false;
};

GatherResult
benchGather(const Encoding &enc, const std::vector<Vec3> &pos, int reps)
{
    const int n = static_cast<int>(pos.size());
    const int dim = enc.featureDim();
    std::vector<float> scalarOut(static_cast<std::size_t>(n) * dim);
    std::vector<float> batchOut(scalarOut.size());

    GatherResult r;
    r.name = enc.name();
    r.scalarS = secondsOf(
        [&] {
            for (int i = 0; i < n; ++i)
                enc.gatherFeature(pos[i],
                                  scalarOut.data() +
                                      static_cast<std::size_t>(i) * dim);
        },
        reps);
    r.batchS = secondsOf(
        [&] { enc.gatherFeatureBatch(pos.data(), n, batchOut.data()); },
        reps);
    // The batch buffer is channel-major; line the scalar results up
    // before the bit-compare.
    std::vector<float> scalarSoA(scalarOut.size());
    simd::transposeToChannelMajor(scalarOut.data(), n, dim,
                                  scalarSoA.data());
    r.identical = scalarSoA == batchOut;
    return r;
}

/** One kernel's SIMD-vs-forced-scalar measurement. */
struct SimdKernelResult
{
    std::string name;
    double simdS = 0.0;
    double scalarS = 0.0;
    double items = 0.0;
    double flopsPerItem = 0.0;
    bool identical = false;
};

/**
 * Time @p run under the compiled backend (forced explicitly, so a
 * CICERO_SIMD=scalar environment cannot turn the "simd" leg into a
 * second scalar measurement) and under the forced-scalar override,
 * bit-comparing the @p check buffer between the two.
 */
SimdKernelResult
benchSimdKernel(const std::string &name, double items,
                double flopsPerItem,
                const std::function<void()> &run,
                const std::vector<float> &check, int reps)
{
    SimdKernelResult r;
    r.name = name;
    r.items = items;
    r.flopsPerItem = flopsPerItem;
    simd::setSimdBackendOverride(false); // compiled backend
    run(); // warm up + populate check
    std::vector<float> simdOut = check;
    r.simdS = secondsOf(run, reps);
    simd::setSimdBackendOverride(true); // scalar reference
    run();
    std::vector<float> scalarOut = check;
    r.scalarS = secondsOf(run, reps);
    simd::setSimdBackendOverride(false, /*reset=*/true);
    r.identical = simdOut == scalarOut;
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == "--quick")
            quick = true;

    banner("throughput",
           "tile-parallel render engine + batched gather, 128x128");

    const int reps = quick ? 1 : 3;

    Scene scene = makeScene("lego");
    auto model = buildModel(ModelKind::DirectVoxGO, scene);

    const int res = 128;
    std::vector<Pose> traj = sceneOrbit(scene, 2);
    Camera cam = Camera::fromFov(res, res, scene.fovYDeg, traj[0]);
    const double rays = static_cast<double>(res) * res;

    // Warm up once (bakes TLS buffers, faults pages).
    RenderResult warm = model->render(cam);
    (void)warm;

    // ---- functional render: serial vs parallel ----------------------
    setParallelThreadCount(1);
    RenderResult serialOut = model->render(cam);
    double serialS =
        secondsOf([&] { serialOut = model->render(cam); }, reps);

    setParallelThreadCount(0); // CICERO_THREADS / hardware_concurrency
    const int threads = parallelThreadCount();
    RenderResult parallelOut = model->render(cam);
    double parallelS =
        secondsOf([&] { parallelOut = model->render(cam); }, reps);

    const bool bitIdentical =
        identical(serialOut.image, parallelOut.image) &&
        serialOut.work.samples == parallelOut.work.samples &&
        serialOut.work.mlpMacs == parallelOut.work.mlpMacs;
    const double speedup = parallelS > 0.0 ? serialS / parallelS : 0.0;

    // ---- traced run: serial vs buffered-parallel capture ------------
    const int traceRes = 64;
    Camera traceCam =
        Camera::fromFov(traceRes, traceRes, scene.fovYDeg, traj[0]);
    const double traceRays = static_cast<double>(traceRes) * traceRes;

    setParallelThreadCount(1);
    TraceRecorder traceSerial;
    model->traceWorkload(traceCam, &traceSerial);
    double tracedSerialS = secondsOf(
        [&] {
            TraceRecorder rec;
            model->traceWorkload(traceCam, &rec);
        },
        reps);

    setParallelThreadCount(0);
    TraceRecorder traceParallel;
    model->traceWorkload(traceCam, &traceParallel);
    double tracedParallelS = secondsOf(
        [&] {
            TraceRecorder rec;
            model->traceWorkload(traceCam, &rec);
        },
        reps);

    const bool traceIdentical =
        identicalTraces(traceSerial.trace(), traceParallel.trace());
    const double tracedSpeedup =
        tracedParallelS > 0.0 ? tracedSerialS / tracedParallelS : 0.0;

    // ---- batched vs scalar gather, per encoding ---------------------
    // Single-thread, pure gather kernel: positions of a typical frame's
    // sample set, gathered per-sample vs through one batch call.
    setParallelThreadCount(1);
    std::vector<Vec3> positions;
    {
        Rng rng(17);
        positions.resize(quick ? 50000 : 200000);
        for (Vec3 &p : positions)
            p = rng.uniformVec3();
    }

    std::vector<GatherResult> gathers;
    std::vector<SimdKernelResult> simdKernels;
    {
        DenseGridEncoding dense(96, GridLayout::MVoxelBlocked);
        dense.bake(scene.field);
        gathers.push_back(benchGather(dense, positions, reps));

        HashGridEncoding hash{HashGridConfig{}};
        hash.bake(scene.field);
        gathers.push_back(benchGather(hash, positions, reps));

        TensoRFConfig tcfg;
        tcfg.res = 64;
        tcfg.ranks = 2;
        tcfg.alsIters = 1;
        TensoRFEncoding tensorf(tcfg);
        tensorf.bake(scene.field);
        gathers.push_back(benchGather(tensorf, positions, reps));

        // ---- SIMD kernel layer: compiled backend vs forced scalar ---
        // Same binary, runtime override: measures the explicit vector
        // kernels against their scalar references and proves the fp32
        // outputs bit-identical across backends.
        const int n = static_cast<int>(positions.size());
        const Encoding *encs[] = {&dense, &hash, &tensorf};
        std::vector<float> featOut(static_cast<std::size_t>(n) *
                                   kFeatureDim);
        for (const Encoding *enc : encs) {
            simdKernels.push_back(benchSimdKernel(
                "gather_" + enc->name(), n,
                static_cast<double>(enc->interpOpsPerSample()),
                [&] {
                    enc->gatherFeatureBatch(positions.data(), n,
                                            featOut.data());
                },
                featOut, reps));
        }

        // The decoder-shaped MLP (12 -> 16 -> 16 -> 4) at a frame-like
        // batch size; 2 FLOPs per MAC.
        Mlp mlp({kFeatureDim + 3, 16, 16, 4}, 1);
        const int mlpCount = quick ? 4096 : 16384;
        std::vector<float> mlpIn(static_cast<std::size_t>(mlp.inputDim()) *
                                 mlpCount);
        for (std::size_t i = 0; i < mlpIn.size(); ++i)
            mlpIn[i] = 0.001f * static_cast<float>(i % 997) - 0.5f;
        std::vector<float> mlpOut(
            static_cast<std::size_t>(mlp.outputDim()) * mlpCount);
        simdKernels.push_back(benchSimdKernel(
            "mlp_forward_batch", mlpCount,
            2.0 * static_cast<double>(mlp.macsPerInference()),
            [&] {
                mlp.forwardBatch(mlpIn.data(), mlpOut.data(), mlpCount);
            },
            mlpOut, quick ? 1 : 5));
    }
    bool gatherIdentical = true;
    for (const GatherResult &g : gathers)
        gatherIdentical = gatherIdentical && g.identical;
    bool simdIdentical = true;
    for (const SimdKernelResult &k : simdKernels)
        simdIdentical = simdIdentical && k.identical;

    // ---- SPARW schedules on a straggler trajectory ------------------
    // Same trajectory through all three window-loop schedules of the
    // work-stealing scheduler. The trajectory dips toward the scene for
    // the two poses one mid-run window extrapolates its reference from,
    // making that window's reference render several times costlier than
    // the rest: under the batch pipeline the straggler gates the whole
    // next batch's lookahead, while the dependency-graph schedule lets
    // every other window stream past it. Output is checked
    // bit-identical across all schedules and the serial run — overlap
    // must never change pixels.
    setParallelThreadCount(0);
    const int sparwThreads = parallelThreadCount();
    const int sparwRes = 64;
    SparwConfig twoPhaseCfg;
    twoPhaseCfg.window = 2;
    twoPhaseCfg.schedule = SparwSchedule::TwoPhase;
    SparwConfig pipelinedCfg = twoPhaseCfg;
    pipelinedCfg.schedule = SparwSchedule::Pipelined;
    SparwConfig depGraphCfg = twoPhaseCfg;
    depGraphCfg.schedule = SparwSchedule::DependencyGraph;
    // At least two pool-width window batches, so the pipeline has a
    // next batch to overlap with for most of the run.
    const int sparwFrames =
        std::max(8, 2 * sparwThreads * twoPhaseCfg.window);
    std::vector<Pose> sparwTraj = sceneOrbit(scene, sparwFrames);
    const int numWindows =
        (sparwFrames + twoPhaseCfg.window - 1) / twoPhaseCfg.window;
    // Pull the two poses that window `stragglerWindow` extrapolates its
    // reference from to ~0.22x the orbit radius: the predicted
    // reference lands close to the scene, where rays collect several
    // times more samples.
    const int stragglerWindow = numWindows / 2;
    for (int k = stragglerWindow * twoPhaseCfg.window - 2;
         k < stragglerWindow * twoPhaseCfg.window; ++k)
        if (k >= 0)
            sparwTraj[k].pos = sparwTraj[k].pos * 0.22f;
    Camera sparwCam =
        Camera::fromFov(sparwRes, sparwRes, scene.fovYDeg, sparwTraj[0]);
    SparwPipeline twoPhase(*model, sparwCam, twoPhaseCfg);
    SparwPipeline pipelined(*model, sparwCam, pipelinedCfg);
    SparwPipeline depGraph(*model, sparwCam, depGraphCfg);
    const int sparwReps = quick ? 1 : 2;

    setParallelThreadCount(1);
    SparwRun sparwSerial = twoPhase.run(sparwTraj);
    double sparwSerialS =
        secondsOf([&] { twoPhase.run(sparwTraj); }, sparwReps);

    // Each leg is timed (best of reps), then bracketed once between a
    // counter snapshot and a delta so the JSON reports *measured*
    // scheduler behaviour for exactly one run of that schedule.
    // Snapshot-delta (not reset-snapshot): concurrent measurers — a
    // bench_serve in the same process, another bench thread — can't
    // yank this bracket's baseline, and this bracket can't zero
    // theirs.
    struct SchedMeasure
    {
        double wallS = 0.0;
        SchedulerCounters c;
    };
    auto measureCounters = [&](const std::function<void()> &fn) {
        SchedMeasure m;
        const SchedulerCounters base = parallelSchedulerCounters();
        auto t0 = std::chrono::steady_clock::now();
        fn();
        auto t1 = std::chrono::steady_clock::now();
        m.wallS = std::chrono::duration<double>(t1 - t0).count();
        m.c = parallelSchedulerCountersSince(base);
        return m;
    };
    auto idleFracMeasured = [&](const SchedMeasure &m) {
        if (m.wallS <= 0.0 || sparwThreads <= 0)
            return 0.0;
        double capacityNs = sparwThreads * m.wallS * 1e9;
        return std::min(1.0, static_cast<double>(m.c.idleNanos) /
                                 capacityNs);
    };

    setParallelThreadCount(0);
    SparwRun sparwTwoPhase = twoPhase.run(sparwTraj);
    double twoPhaseS =
        secondsOf([&] { twoPhase.run(sparwTraj); }, sparwReps);
    SchedMeasure twoPhaseM =
        measureCounters([&] { twoPhase.run(sparwTraj); });
    SparwRun sparwPipelined = pipelined.run(sparwTraj);
    double pipelinedS =
        secondsOf([&] { pipelined.run(sparwTraj); }, sparwReps);
    SchedMeasure pipelinedM =
        measureCounters([&] { pipelined.run(sparwTraj); });
    SparwRun sparwDepGraph = depGraph.run(sparwTraj);
    double depGraphS =
        secondsOf([&] { depGraph.run(sparwTraj); }, sparwReps);
    SchedMeasure depGraphM =
        measureCounters([&] { depGraph.run(sparwTraj); });

    bool sparwIdentical =
        sparwSerial.frames.size() == sparwTwoPhase.frames.size() &&
        sparwSerial.frames.size() == sparwPipelined.frames.size() &&
        sparwSerial.frames.size() == sparwDepGraph.frames.size();
    for (std::size_t i = 0; sparwIdentical && i < sparwSerial.frames.size();
         ++i)
        sparwIdentical =
            identical(sparwSerial.frames[i].image,
                      sparwTwoPhase.frames[i].image) &&
            identical(sparwSerial.frames[i].image,
                      sparwPipelined.frames[i].image) &&
            identical(sparwSerial.frames[i].image,
                      sparwDepGraph.frames[i].image);

    // How much costlier the straggler reference really was (median
    // reference = 1.0).
    double stragglerCost = 0.0;
    {
        std::vector<std::uint64_t> refSamples;
        for (const SparwReference &r : sparwSerial.references)
            refSamples.push_back(r.work.samples);
        if (!refSamples.empty()) {
            std::vector<std::uint64_t> sorted = refSamples;
            std::sort(sorted.begin(), sorted.end());
            double median =
                static_cast<double>(sorted[sorted.size() / 2]);
            if (median > 0.0)
                stragglerCost = static_cast<double>(
                                    refSamples[stragglerWindow]) /
                                median;
        }
    }

    auto fps = [&](double wallS) {
        return wallS > 0.0 ? sparwFrames / wallS : 0.0;
    };

    // ---- real-time mode: deadline-driven SPARW ----------------------
    // Three budgets through runRealtime(): unlimited (must reproduce
    // run() bit for bit — every reference lands in time), zero (must
    // reproduce runDownsampled() frame images bit for bit — every
    // window falls back), and a paced budget near the measured
    // per-frame cost (the interesting regime: miss/fallback rates are
    // machine-dependent and reported, not gated).
    SparwRun dsBaseline = depGraph.runDownsampled(
        sparwTraj, SparwRealtimeConfig{}.fallbackFactor);

    SparwRealtimeConfig rtUnlimitedCfg;
    rtUnlimitedCfg.frameBudgetS = 1e9f;
    SparwRealtimeRun rtUnlimited =
        depGraph.runRealtime(sparwTraj, rtUnlimitedCfg);
    bool rtUnlimitedIdentical =
        rtUnlimited.run.frames.size() == sparwSerial.frames.size();
    for (std::size_t i = 0;
         rtUnlimitedIdentical && i < sparwSerial.frames.size(); ++i)
        rtUnlimitedIdentical = identical(rtUnlimited.run.frames[i].image,
                                         sparwSerial.frames[i].image);

    SparwRealtimeConfig rtZeroCfg;
    rtZeroCfg.frameBudgetS = 0.0f;
    SparwRealtimeRun rtZero = depGraph.runRealtime(sparwTraj, rtZeroCfg);
    bool rtZeroMatchesDs =
        rtZero.run.frames.size() == dsBaseline.frames.size() &&
        rtZero.deadline.fallbackFrames == sparwFrames;
    for (std::size_t i = 0;
         rtZeroMatchesDs && i < dsBaseline.frames.size(); ++i)
        rtZeroMatchesDs = identical(rtZero.run.frames[i].image,
                                    dsBaseline.frames[i].image);

    SparwRealtimeConfig rtPacedCfg;
    rtPacedCfg.frameBudgetS = static_cast<float>(
        twoPhaseS > 0.0 ? 0.9 * twoPhaseS / sparwFrames : 1.0 / 30.0);
    SparwRealtimeRun rtPaced = depGraph.runRealtime(sparwTraj, rtPacedCfg);

    const bool realtimeOk = rtUnlimitedIdentical && rtZeroMatchesDs;

    // ---- JSON -------------------------------------------------------
    std::printf("{\"bench\": \"render_throughput\", "
                "\"simd_backend\": \"%s\", "
                "\"resolution\": %d, "
                "\"threads\": %d, "
                "\"serial_s\": %.6f, "
                "\"parallel_s\": %.6f, "
                "\"rays_per_s_serial\": %.1f, "
                "\"rays_per_s_parallel\": %.1f, "
                "\"speedup\": %.3f, "
                "\"bit_identical\": %s, "
                "\"traced\": {\"resolution\": %d, "
                "\"serial_s\": %.6f, \"parallel_s\": %.6f, "
                "\"rays_per_s_serial\": %.1f, "
                "\"rays_per_s_parallel\": %.1f, "
                "\"speedup\": %.3f, \"stream_identical\": %s}, "
                "\"gather\": {",
                simd::backendName(simd::activeBackend()), res, threads,
                serialS, parallelS, rays / serialS,
                rays / parallelS, speedup,
                bitIdentical ? "true" : "false", traceRes, tracedSerialS,
                tracedParallelS, traceRays / tracedSerialS,
                traceRays / tracedParallelS, tracedSpeedup,
                traceIdentical ? "true" : "false");
    for (std::size_t i = 0; i < gathers.size(); ++i) {
        const GatherResult &g = gathers[i];
        const double n = static_cast<double>(positions.size());
        std::printf("%s\"%s\": {\"scalar_samples_per_s\": %.1f, "
                    "\"batched_samples_per_s\": %.1f, "
                    "\"batch_speedup\": %.3f, "
                    "\"bit_identical\": %s}",
                    i ? ", " : "", g.name.c_str(), n / g.scalarS,
                    n / g.batchS,
                    g.batchS > 0.0 ? g.scalarS / g.batchS : 0.0,
                    g.identical ? "true" : "false");
    }
    std::printf("}, \"pipeline\": {\"scheduler\": \"%s\", "
                "\"resolution\": %d, \"frames\": %d, \"window\": %d, "
                "\"threads\": %d, "
                "\"straggler_window\": %d, "
                "\"straggler_ref_cost\": %.2f, "
                "\"serial_s\": %.6f, "
                "\"two_phase_s\": %.6f, \"pipelined_s\": %.6f, "
                "\"dep_graph_s\": %.6f, "
                "\"fps_serial\": %.2f, "
                "\"fps_two_phase\": %.2f, \"fps_pipelined\": %.2f, "
                "\"fps_dep_graph\": %.2f, "
                "\"pipeline_speedup\": %.3f, "
                "\"dep_graph_speedup_vs_pipelined\": %.3f, "
                "\"bit_identical\": %s",
                parallelSchedulerName(), sparwRes, sparwFrames,
                twoPhaseCfg.window, sparwThreads, stragglerWindow,
                stragglerCost, sparwSerialS,
                twoPhaseS, pipelinedS, depGraphS, fps(sparwSerialS),
                fps(twoPhaseS), fps(pipelinedS), fps(depGraphS),
                pipelinedS > 0.0 ? twoPhaseS / pipelinedS : 0.0,
                depGraphS > 0.0 ? pipelinedS / depGraphS : 0.0,
                sparwIdentical ? "true" : "false");
    // Counter-based breakdown of one measured run per schedule: these
    // are what the scheduler actually did, replacing the wall-clock
    // idle estimates above.
    {
        struct NamedMeasure
        {
            const char *name;
            const SchedMeasure *m;
        } legs[] = {{"two_phase", &twoPhaseM},
                    {"pipelined", &pipelinedM},
                    {"dep_graph", &depGraphM}};
        std::printf(", \"counters\": {");
        for (std::size_t i = 0; i < 3; ++i) {
            const SchedulerCounters &c = legs[i].m->c;
            std::printf(
                "%s\"%s\": {\"wall_s\": %.6f, "
                "\"idle_frac\": %.3f, "
                "\"steals\": %llu, \"idle_wakeups\": %llu, "
                "\"idle_ms\": %.3f, "
                "\"overflow_migrations\": %llu, "
                "\"tasks\": %llu, \"dep_tasks\": %llu, "
                "\"dep_stall_ms\": %.3f}",
                i ? ", " : "", legs[i].name, legs[i].m->wallS,
                idleFracMeasured(*legs[i].m),
                static_cast<unsigned long long>(c.steals),
                static_cast<unsigned long long>(c.idleWakeups),
                c.idleNanos / 1e6,
                static_cast<unsigned long long>(c.overflowMigrations),
                static_cast<unsigned long long>(c.tasksExecuted),
                static_cast<unsigned long long>(c.depTasksSubmitted),
                c.depStallNanos / 1e6);
        }
        std::printf("}");
    }
    std::printf(
        ", \"realtime\": {"
        "\"unlimited_budget_matches_run\": %s, "
        "\"zero_budget_matches_downsampled\": %s, "
        "\"frame_budget_ms\": %.3f, "
        "\"frames\": %d, \"deadline_misses\": %d, "
        "\"miss_rate\": %.3f, \"fallback_frames\": %d, "
        "\"fallback_rate\": %.3f, \"predicted_refs\": %d, "
        "\"wall_s\": %.6f}}",
        rtUnlimitedIdentical ? "true" : "false",
        rtZeroMatchesDs ? "true" : "false",
        rtPacedCfg.frameBudgetS * 1e3, rtPaced.deadline.frames,
        rtPaced.deadline.deadlineMisses, rtPaced.deadline.missRate(),
        rtPaced.deadline.fallbackFrames, rtPaced.deadline.fallbackRate(),
        rtPaced.deadline.predictedReferences, rtPaced.deadline.wallS);
    std::printf(", \"simd\": {");
    for (std::size_t i = 0; i < simdKernels.size(); ++i) {
        const SimdKernelResult &k = simdKernels[i];
        const double flops = k.items * k.flopsPerItem;
        std::printf("%s\"%s\": {\"samples_per_s_simd\": %.1f, "
                    "\"samples_per_s_scalar\": %.1f, "
                    "\"gflops_simd\": %.3f, "
                    "\"gflops_scalar\": %.3f, "
                    "\"speedup\": %.3f, "
                    "\"bit_identical\": %s}",
                    i ? ", " : "", k.name.c_str(), k.items / k.simdS,
                    k.items / k.scalarS, flops / k.simdS / 1e9,
                    flops / k.scalarS / 1e9,
                    k.simdS > 0.0 ? k.scalarS / k.simdS : 0.0,
                    k.identical ? "true" : "false");
    }
    std::printf("}}\n");

    setParallelThreadCount(0);
    // The exit code gates only on correctness (bit/stream identity);
    // perf ratios live in the JSON for the BENCH trajectory to track —
    // a noisy runner must not turn a timing wobble into a red build.
    const bool ok = bitIdentical && traceIdentical && gatherIdentical &&
                    simdIdentical && sparwIdentical && realtimeOk;
    return ok ? 0 : 1;
}
