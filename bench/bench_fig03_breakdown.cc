/**
 * @file
 * Fig. 3 reproduction: normalized execution-time breakdown of the three
 * NeRF stages (Indexing / Feature Gathering / Feature Computation) on
 * the mobile GPU, across four algorithms. The paper reports Feature
 * Gathering > 56% of execution on average.
 */

#include "accel/gpu_model.hh"
#include "bench_util.hh"
#include "memory/cache_model.hh"

using namespace cicero;
using namespace cicero::bench;

int
main()
{
    banner("Fig. 3", "execution breakdown across NeRF algorithms");

    Scene scene = makeScene("lego");
    auto traj = sceneOrbit(scene, 2);
    GpuModel gpu;
    ProbeOptions opts = probeOptions();

    Table table({"model", "I %", "G %", "F %", "total ms", "FPS"});
    Summary gatherShare;
    for (ModelKind kind : allModelKinds()) {
        auto model = fullModel(kind, scene, GridLayout::Linear);
        WorkloadInputs in = probeFullFrame(*model, traj[0], opts);
        GpuStageTimes t =
            gpu.timeNerfFrame(in.fullFrame, in.gatherProfile);
        double total = t.totalMs();
        double g = 100.0 * t.gatherMs / total;
        gatherShare.add(g);
        table.row()
            .cell(modelName(kind))
            .cell(100.0 * t.indexMs / total, 1)
            .cell(g, 1)
            .cell(100.0 * (t.mlpMs + t.compositeMs) / total, 1)
            .cell(total, 0)
            .cell(1000.0 / total, 2);
    }
    table.print();
    std::printf("\nmean Feature Gathering share: %.1f%% "
                "(paper: >56%% on average)\n",
                gatherShare.mean());
    return 0;
}
