/**
 * @file
 * Shared helpers for the test suite: a minimal fast-to-bake scene and
 * small model builders.
 */

#ifndef CICERO_TESTS_TEST_UTIL_HH
#define CICERO_TESTS_TEST_UTIL_HH

#include "nerf/models.hh"
#include "scene/scene.hh"
#include "scene/trajectory.hh"

namespace cicero::test {

/** A tiny diffuse scene (one sphere, one ground slab): fast to bake. */
inline Scene
tinyScene()
{
    Scene s;
    s.name = "tiny";
    Primitive sphere;
    sphere.shape = PrimShape::Sphere;
    sphere.center = {0.0f, 0.0f, 0.0f};
    sphere.size = {0.45f, 0.45f, 0.45f};
    sphere.albedo = {0.8f, 0.3f, 0.2f};
    s.field.addPrimitive(sphere);
    Primitive slab;
    slab.shape = PrimShape::Box;
    slab.center = {0.0f, -0.7f, 0.0f};
    slab.size = {0.9f, 0.05f, 0.9f};
    slab.albedo = {0.3f, 0.5f, 0.7f};
    s.field.addPrimitive(slab);
    return s;
}

/**
 * The same geometry as tinyScene() but with a strongly specular sphere,
 * so warping-quality comparisons isolate view dependence.
 */
inline Scene
tinySpecularScene()
{
    Scene s = tinyScene();
    s.name = "tiny-specular";
    Scene t;
    t.name = s.name;
    for (Primitive p : s.field.primitives()) {
        if (p.shape == PrimShape::Sphere) {
            p.specular = 0.8f;
            p.shininess = 12.0f;
        }
        t.field.addPrimitive(p);
    }
    return t;
}

/** A small dense-grid model over the tiny scene. */
inline std::unique_ptr<NerfModel>
tinyModel(GridLayout layout = GridLayout::Linear, int gridRes = 32)
{
    Scene s = tinyScene();
    SamplerConfig sampler;
    sampler.stepsAcross = 64;
    sampler.occupancyRes = 24;
    return std::make_unique<NerfModel>(
        s, std::make_unique<DenseGridEncoding>(gridRes, layout), 4096,
        sampler);
}

/** A short orbit around the tiny scene. */
inline std::vector<Pose>
tinyOrbit(int frames, float degPerSecond = 20.0f)
{
    OrbitParams p;
    p.radius = 2.5f;
    p.degPerSecond = degPerSecond;
    return orbitTrajectory(p, frames);
}

/** Small camera aimed at the origin. */
inline Camera
tinyCamera(int res = 48, const Pose *pose = nullptr)
{
    Pose p = pose ? *pose
                  : Pose::lookAt({0.0f, 0.5f, 2.5f}, {0.0f, 0.0f, 0.0f},
                                 {0.0f, 1.0f, 0.0f});
    return Camera::fromFov(res, res, 40.0f, p);
}

} // namespace cicero::test

#endif // CICERO_TESTS_TEST_UTIL_HH
