/**
 * @file
 * Fuzz-style robustness tests for the minijson parser: deterministic
 * byte mutations of valid documents, pathological nesting, and typed
 * error offsets. The contract under test: any byte string either
 * parses to a DOM or throws JsonParseError — never a crash, hang or
 * stack overflow. CI additionally runs this suite under ASan+UBSan.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "dse/minijson.hh"

namespace cicero::dse {
namespace {

const char kValidDoc[] =
    R"({"name": "sweep-a", "iters": 32, "scale": 0.75,)"
    R"( "flags": [true, false, null],)"
    R"( "nested": {"keys": ["a", "b\nc", "\u0041\u00e9"],)"
    R"( "neg": -12, "exp": 1.5e3},)"
    R"( "empty_obj": {}, "empty_arr": []})";

TEST(MiniJsonFuzzTest, ValidDocumentParses)
{
    JsonValue doc = parseJson(kValidDoc);
    ASSERT_TRUE(doc.isObject());
    EXPECT_EQ(doc.find("name")->asString("name"), "sweep-a");
    EXPECT_EQ(doc.find("iters")->asU64("iters"), 32u);
    EXPECT_EQ(doc.find("flags")->asArray("flags").size(), 3u);
    const JsonValue *nested = doc.find("nested");
    ASSERT_NE(nested, nullptr);
    EXPECT_EQ(nested->find("exp")->asNumber("exp"), 1500.0);
    EXPECT_EQ(nested->find("keys")->asArray("keys")[2].str,
              "A\xc3\xa9"); // \u0041 \u00e9 -> UTF-8
}

TEST(MiniJsonFuzzTest, DeepNestingFailsTypedNotByStackOverflow)
{
    // Under the cap: fine.
    std::string ok(100, '[');
    ok += "1";
    ok += std::string(100, ']');
    EXPECT_NO_THROW(parseJson(ok));

    // Past the cap: typed rejection, not a stack overflow. 100k levels
    // would smash the stack without the depth guard.
    for (std::size_t depth : {kJsonMaxDepth + 1, std::size_t(100000)}) {
        std::string deep(depth, '[');
        deep += "1";
        deep += std::string(depth, ']');
        EXPECT_THROW(parseJson(deep), JsonParseError) << depth;

        std::string deepObj;
        for (std::size_t i = 0; i < depth; ++i)
            deepObj += "{\"k\":";
        deepObj += "1";
        deepObj += std::string(depth, '}');
        EXPECT_THROW(parseJson(deepObj), JsonParseError) << depth;
    }
}

TEST(MiniJsonFuzzTest, ByteMutationFuzzThrowsTypedOrParses)
{
    // Deterministic LCG so any failure reproduces exactly.
    std::uint64_t rng = 0x243f6a8885a308d3ull;
    auto next = [&rng] {
        rng = rng * 6364136223846793005ull + 1442695040888963407ull;
        return rng >> 33;
    };

    const std::string clean = kValidDoc;
    for (int iter = 0; iter < 2000; ++iter) {
        std::string fuzzed = clean;
        const int edits = 1 + static_cast<int>(next() % 4);
        for (int e = 0; e < edits; ++e) {
            const std::size_t pos = next() % fuzzed.size();
            switch (next() % 3) {
            case 0: // flip
                fuzzed[pos] = static_cast<char>(
                    fuzzed[pos] ^ static_cast<char>(1 + next() % 255));
                break;
            case 1: // delete
                fuzzed.erase(pos, 1);
                break;
            default: // insert a random byte
                fuzzed.insert(pos, 1,
                              static_cast<char>(next() % 256));
                break;
            }
            if (fuzzed.empty())
                fuzzed = "x";
        }
        try {
            (void)parseJson(fuzzed);
        } catch (const JsonParseError &e) {
            // Typed, and the offset points inside (or just past) the
            // document.
            EXPECT_LE(e.offset(), fuzzed.size()) << "iter " << iter;
        }
        // Any other escape fails the test.
    }
}

TEST(MiniJsonFuzzTest, TruncationsOfValidDocAreTyped)
{
    const std::string clean = kValidDoc;
    for (std::size_t keep = 0; keep < clean.size(); ++keep) {
        const std::string cut = clean.substr(0, keep);
        EXPECT_THROW(parseJson(cut), JsonParseError) << "keep " << keep;
    }
}

TEST(MiniJsonFuzzTest, ErrorOffsetPointsAtTheProblem)
{
    try {
        parseJson(R"({"a":})");
        FAIL() << "expected JsonParseError";
    } catch (const JsonParseError &e) {
        EXPECT_EQ(e.offset(), 5u);
        EXPECT_NE(std::string(e.what()).find("byte 5"),
                  std::string::npos);
    }

    try {
        parseJson("[1, 2,, 3]");
        FAIL() << "expected JsonParseError";
    } catch (const JsonParseError &e) {
        EXPECT_EQ(e.offset(), 6u);
    }

    // Trailing garbage after a complete document is an error too.
    EXPECT_THROW(parseJson("{} x"), JsonParseError);
}

TEST(MiniJsonFuzzTest, HostileScalarsAreTyped)
{
    for (const char *doc : {
             "",           // empty input
             "  ",         // whitespace only
             "\"unterminated",
             "\"bad \\q escape\"",
             "\"\\u12\"",  // short unicode escape
             "01",         // leading zero
             "1.",         // dangling fraction
             "1e",         // dangling exponent
             "-",          // lone sign
             "+1",         // plus sign not allowed
             "tru",        // truncated keyword
             "nulll",      // trailing garbage fused to keyword
             "{\"a\" 1}",  // missing colon
             "{1: 2}",     // non-string key
             "[1 2]",      // missing comma
             "\x80\xff",   // raw high bytes
         }) {
        EXPECT_THROW(parseJson(doc), JsonParseError) << "doc: " << doc;
    }
}

} // namespace
} // namespace cicero::dse
