/**
 * @file
 * Tests for the model factory and nominal characterization specs.
 */

#include <gtest/gtest.h>

#include "nerf/hash_grid.hh"
#include "nerf/models.hh"
#include "nerf/tensorf.hh"
#include "test_util.hh"

namespace cicero {
namespace {

TEST(ModelFactoryTest, NamesAndLists)
{
    EXPECT_STREQ(modelName(ModelKind::InstantNgp), "Instant-NGP");
    EXPECT_STREQ(modelName(ModelKind::DirectVoxGO), "DirectVoxGO");
    EXPECT_STREQ(modelName(ModelKind::TensoRF), "TensoRF");
    EXPECT_STREQ(modelName(ModelKind::EfficientNeRF), "EfficientNeRF");
    EXPECT_EQ(allModelKinds().size(), 4u);
    EXPECT_EQ(mainModelKinds().size(), 3u);
}

TEST(ModelFactoryTest, KindsGetMatchingEncodings)
{
    Scene scene = test::tinyScene();
    auto ngp = buildModel(ModelKind::InstantNgp, scene);
    auto dvgo = buildModel(ModelKind::DirectVoxGO, scene);
    auto tensorf = buildModel(ModelKind::TensoRF, scene);
    EXPECT_NE(dynamic_cast<const HashGridEncoding *>(&ngp->encoding()),
              nullptr);
    EXPECT_NE(
        dynamic_cast<const DenseGridEncoding *>(&dvgo->encoding()),
        nullptr);
    EXPECT_NE(
        dynamic_cast<const TensoRFEncoding *>(&tensorf->encoding()),
        nullptr);
}

TEST(ModelFactoryTest, FullPresetIsBigger)
{
    Scene scene = test::tinyScene();
    ModelBuildOptions fast;
    ModelBuildOptions full;
    full.preset = ModelPreset::Full;
    auto a = buildModel(ModelKind::DirectVoxGO, scene, fast);
    auto b = buildModel(ModelKind::DirectVoxGO, scene, full);
    EXPECT_GT(b->modelBytes(), a->modelBytes());
}

TEST(ModelFactoryTest, LayoutOptionPropagates)
{
    Scene scene = test::tinyScene();
    ModelBuildOptions opts;
    opts.gridLayout = GridLayout::MVoxelBlocked;
    auto model = buildModel(ModelKind::DirectVoxGO, scene, opts);
    auto *grid =
        dynamic_cast<const DenseGridEncoding *>(&model->encoding());
    ASSERT_NE(grid, nullptr);
    EXPECT_EQ(grid->layout(), GridLayout::MVoxelBlocked);
}

TEST(ModelFactoryTest, NominalMlpMacsOrdering)
{
    // EfficientNeRF distills to a small MLP; DirectVoxGO's shallow
    // RGBNet is the largest per-sample among our four.
    EXPECT_LT(nominalMlpMacs(ModelKind::EfficientNeRF),
              nominalMlpMacs(ModelKind::DirectVoxGO));
    EXPECT_GT(nominalMlpMacs(ModelKind::InstantNgp), 0u);
}

TEST(ModelSpecTest, ImplementedSpecsHaveWorkParameters)
{
    for (const ModelSpec &spec : nominalModelSpecs()) {
        if (!spec.implemented)
            continue;
        EXPECT_GT(spec.samplesPerRay, 0.0) << spec.name;
        EXPECT_GT(spec.fetchesPerSample, 0.0) << spec.name;
        EXPECT_GT(spec.mlpMacsPerSample, 0.0) << spec.name;
    }
}

TEST(ModelSpecTest, SizesSpanThePaperRange)
{
    // Fig. 2's x-axis covers ~10 MB to ~10 GB.
    double lo = 1e18, hi = 0.0;
    for (const ModelSpec &spec : nominalModelSpecs()) {
        lo = std::min(lo, spec.modelMB);
        hi = std::max(hi, spec.modelMB);
    }
    EXPECT_LT(lo, 100.0);
    EXPECT_GT(hi, 1000.0);
}

TEST(ModelFactoryTest, SeedChangesDecoderResidualOnly)
{
    Scene scene = test::tinyScene();
    ModelBuildOptions a, b;
    a.seed = 1;
    b.seed = 2;
    auto ma = buildModel(ModelKind::DirectVoxGO, scene, a);
    auto mb = buildModel(ModelKind::DirectVoxGO, scene, b);
    Camera cam = test::tinyCamera(24);
    RenderResult ra = ma->render(cam);
    RenderResult rb = mb->render(cam);
    // Different residual seeds: images differ slightly but agree
    // strongly (the residual amplitude is small).
    EXPECT_GT(psnr(ra.image, rb.image), 35.0);
    EXPECT_LT(psnr(ra.image, rb.image), 1e9);
}

} // namespace
} // namespace cicero
